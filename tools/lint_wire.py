#!/usr/bin/env python3
"""Wire-safety linter for the frame protocol.

The serving stack's hard-won rule: raw buffer access on NETWORK BYTES —
memcpy in or out of a wire buffer, subscripting a payload/frame pointer,
pointer arithmetic on one — is allowed only inside
src/serve/net/frame.cpp, whose readers bounds-check every length against
the remaining buffer before touching a byte. Everywhere else in
src/serve must go through frame.cpp's encode_*/decode_*/peek_* API, so a
malformed length can never index past a buffer outside the one file
built to be suspicious.

Checked patterns (in src/serve/**/*.{cpp,h}, except net/frame.cpp):

  * ``memcpy(`` / ``std::memcpy(``            any raw copy
  * ``<wire-name>[``                          subscript on a wire buffer
  * ``<wire-name> +`` / ``+ <wire-name>``     pointer arithmetic on one

where <wire-name> is an identifier conventionally holding network bytes:
payload, frame, rpayload, wire_bytes.

A site that is genuinely safe (e.g. splitting header from payload AFTER
decode_header validated the frame length) carries a waiver — on the
same line or the line directly above:

    // lint-wire: <reason>

The reason is mandatory; a bare waiver is itself a violation. CI runs
this linter on every push (the static-analysis job) and ctest registers
it as `lint_wire`; `--self-test` proves the linter still catches a
seeded violation (`lint_wire_selftest`).

Exit status: 0 clean, 1 violations found, 2 usage/internal error.
"""

import argparse
import os
import re
import sys
import tempfile

# Identifiers that hold network bytes by convention across src/serve.
WIRE_NAMES = r"(?:payload|frame|rpayload|wire_bytes)"

# Each pattern must match OUTSIDE comments/strings (handled by stripping
# below). Word boundaries keep e.g. `frame_len` or `FrameHeader` clean.
PATTERNS = [
    (re.compile(r"\bmemcpy\s*\("), "memcpy on raw bytes"),
    (re.compile(rf"\b{WIRE_NAMES}\s*\["), "subscript on a wire buffer"),
    (re.compile(rf"\b{WIRE_NAMES}\s*\+(?!\+)"), "pointer arithmetic on a wire buffer"),
    (re.compile(rf"(?<!\+)\+\s*{WIRE_NAMES}\b"), "pointer arithmetic on a wire buffer"),
]

WAIVER = re.compile(r"//\s*lint-wire:\s*(?P<reason>.*?)\s*$")

# The one file allowed to touch raw wire bytes.
EXEMPT = os.path.join("src", "serve", "net", "frame.cpp")

STRING_OR_CHAR = re.compile(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'')
LINE_COMMENT = re.compile(r"//.*$")


def strip_code(line: str, in_block_comment: bool):
    """Return (code-only text, still-in-block-comment) for one line."""
    out = []
    i = 0
    while i < len(line):
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block_comment = False
            continue
        start = line.find("/*", i)
        if start < 0:
            out.append(line[i:])
            break
        out.append(line[i:start])
        i = start + 2
        in_block_comment = True
    code = "".join(out)
    code = STRING_OR_CHAR.sub('""', code)
    code = LINE_COMMENT.sub("", code)
    return code, in_block_comment


def lint_file(path: str, display_path: str):
    """Return a list of (line_no, message) violations for one file."""
    violations = []
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return [(0, f"unreadable: {e}")]

    in_block = False
    prev_raw = ""
    for no, raw in enumerate(lines, start=1):
        code, in_block = strip_code(raw, in_block)
        waiver = WAIVER.search(raw) or WAIVER.search(prev_raw)
        prev_raw = raw
        hits = [msg for pat, msg in PATTERNS if pat.search(code)]
        if not hits:
            # A waiver with nothing to waive on this or the next line is
            # noise that rots; flag the bare ones on their own line.
            if WAIVER.search(raw) and not code.strip():
                nxt, _ = strip_code(lines[no] if no < len(lines) else "", in_block)
                if not any(p.search(nxt) for p, _ in PATTERNS):
                    violations.append((no, "waiver without a waivable site"))
            continue
        if waiver:
            if not waiver.group("reason"):
                violations.append((no, "waiver missing its reason"))
            continue
        for msg in hits:
            violations.append(
                (no, f"{msg} outside {EXEMPT} (waive with '// lint-wire: <reason>' if safe)")
            )
    return [(n, m) for n, m in violations]


def lint_tree(root: str):
    serve_dir = os.path.join(root, "src", "serve")
    if not os.path.isdir(serve_dir):
        print(f"lint_wire: no such directory: {serve_dir}", file=sys.stderr)
        return 2
    failures = 0
    for dirpath, _dirnames, filenames in sorted(os.walk(serve_dir)):
        for name in sorted(filenames):
            if not name.endswith((".cpp", ".h")):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root)
            if rel == EXEMPT:
                continue
            for line_no, msg in lint_file(path, rel):
                print(f"{rel}:{line_no}: {msg}")
                failures += 1
    if failures:
        print(f"lint_wire: {failures} violation(s)", file=sys.stderr)
        return 1
    return 0


SELF_TEST_CASES = [
    # (source, expect_clean)
    ("std::memcpy(out, payload, len);\n", False),
    ("uint32_t v = payload[4];\n", False),
    ("const uint8_t* body = frame + kHeaderSize;\n", False),
    # Waived with a reason: allowed.
    (
        "// lint-wire: header already validated by decode_header\n"
        "const uint8_t* body = frame + kHeaderSize;\n",
        True,
    ),
    # Waiver without a reason: still a violation.
    ("uint32_t v = payload[4];  // lint-wire:\n", False),
    # Patterns inside comments/strings must not fire.
    ('// memcpy(payload, x, n) is forbidden here\nconst char* s = "payload[0]";\n', True),
    # Innocent identifiers sharing a prefix.
    ("size_t frame_len = hdr.payload_len; ++frames; f(frame_len + 1);\n", True),
]


def self_test():
    failed = 0
    for idx, (source, expect_clean) in enumerate(SELF_TEST_CASES):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "case.cpp")
            with open(path, "w", encoding="utf-8") as f:
                f.write(source)
            violations = lint_file(path, "case.cpp")
            clean = not violations
            if clean != expect_clean:
                failed += 1
                print(
                    f"self-test case {idx}: expected "
                    f"{'clean' if expect_clean else 'violation'}, got "
                    f"{violations or 'clean'}\n  source: {source!r}",
                    file=sys.stderr,
                )
    if failed:
        print(f"lint_wire self-test: {failed} case(s) failed", file=sys.stderr)
        return 1
    print(f"lint_wire self-test: all {len(SELF_TEST_CASES)} cases passed")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: the checkout containing this script)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the linter catches seeded violations, then exit",
    )
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()
    return lint_tree(args.root)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
