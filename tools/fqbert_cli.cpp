// fqbert_cli — command-line front end for the full FQ-BERT workflow.
//
//   fqbert_cli train    --task sst2|mnli --out model.bin [--fast]
//   fqbert_cli quantize --task sst2|mnli --model model.bin --out fq.bin
//                       [--bits N] [--no-clip] [--no-softmax-quant]
//                       [--no-ln-quant] [--no-scale-quant] [--fast]
//   fqbert_cli eval     --task sst2|mnli --engine fq.bin
//   fqbert_cli info     --engine fq.bin
//   fqbert_cli estimate [--device zcu102|zcu111] [--pes N] [--mults M]
//                       [--seq S]
//   fqbert_cli serve    --engine fq.bin | --task sst2|mnli [--fast]
//                       [--listen PORT [--bind ADDR]]
//                       [--workers N] [--batch B] [--wait-us U]
//                       [--clients C] [--requests R] [--deadline-ms D]
//                       [--seq-mix 12,16,24] [--seed S]
//   fqbert_cli loadgen  serve options, plus
//                       [--connect HOST:PORT]
//                       [--batch-sweep 1,8,16] [--worker-sweep 1,2,4]
//   fqbert_cli proxy    --listen PORT [--bind ADDR]
//                       --backend HOST:PORT=model[,model...] ...
//                       [--policy explicit|hash] [--pool N]
//                       [--health-interval-ms I] [--health-timeout-ms T]
//                       [--call-timeout-ms C] [--drain-timeout-ms D]
//
// `train` produces a float checkpoint; `quantize` runs QAT fine-tuning,
// calibration and conversion, then saves the deployable integer engine;
// `eval` measures integer-engine accuracy; `info` dumps an engine's
// configuration and size; `estimate` prints accelerator latency /
// resources / power for BERT-base; `serve` runs the dynamic-batching
// server — under a closed-loop synthetic client by default, or as a
// network service on --listen (stop with Ctrl-C); `loadgen` sweeps
// batch/worker configurations over the closed-loop client, or drives a
// remote `serve --listen` instance over the wire with --connect;
// `proxy` runs the shard-aware routing proxy in front of N backend
// `serve --listen` hosts (versioned placement table — explicit pins or
// consistent hashing — health checks, failover, live membership via
// `admin --add-backend/--remove-backend/--move-model`; clients connect
// to it exactly as to a single server).
//
// Option parsing is strict: unknown options, stray positionals, and
// malformed or out-of-range numeric values are all one-line errors with
// exit code 2 — a typo never silently runs with defaults.
#include <algorithm>
#include <charconv>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <thread>

#include "accel/accelerator.h"
#include "core/model_size.h"
#include "pipeline/pipeline.h"
#include "serve/debug_text.h"
#include "serve/flight_recorder.h"
#include "serve/loadgen.h"
#include "serve/metrics_http.h"
#include "serve/metrics_text.h"
#include "serve/net/transport_client.h"
#include "serve/net/transport_server.h"
#include "serve/router/model_router.h"
#include "serve/server.h"
#include "serve/shard/shard_proxy.h"
#include "serve/trace.h"

using namespace fqbert;
using namespace fqbert::pipeline;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: fqbert_cli <train|quantize|eval|info|estimate|serve|"
               "loadgen|admin|proxy> [options]\n"
               "  train    --task sst2|mnli --out model.bin [--fast]\n"
               "  quantize --task sst2|mnli --model model.bin --out fq.bin\n"
               "           [--bits N] [--mapped] [--no-clip]\n"
               "           [--no-softmax-quant] [--no-ln-quant]\n"
               "           [--no-scale-quant] [--fast]\n"
               "  eval     --task sst2|mnli --engine fq.bin\n"
               "  info     --engine fq.bin\n"
               "  estimate [--device zcu102|zcu111] [--pes N] [--mults M] "
               "[--seq S]\n"
               "  serve    --engine fq.bin | --task sst2|mnli [--fast]\n"
               "           [--listen PORT [--bind ADDR] [--metrics PORT]\n"
               "            [--model NAME=FILE[@int8,int4...] ...]\n"
               "            [--tier-fallback strict|default]]\n"
               "           [--workers N] [--batch B] [--wait-us U]\n"
               "           [--clients C] [--requests R] [--deadline-ms D]\n"
               "           [--seq-mix 12,16,24] [--seed S]\n"
               "  loadgen  serve options plus [--connect HOST:PORT\n"
               "           [--model NAME ...] [--tier N]]\n"
               "           [--trace-every N]    (per-stage trace samples)\n"
               "           [--latency-csv FILE] (per-request rows, remote)\n"
               "           [--batch-sweep 1,8,16] [--worker-sweep 1,2,4]\n"
               "  admin    --connect HOST:PORT [--timeout-ms T]\n"
               "           [--load NAME=FILE[@intN] ...] (empty FILE derives)\n"
               "           [--unload NAME[@intN] ...]\n"
               "           [--add-backend HOST:PORT=model[@intN][,...] ...]\n"
               "           [--remove-backend HOST:PORT ...] (drains first)\n"
               "           [--move-model NAME[@intN]=FROM,TO[,FILE] ...]\n"
               "           [--placement]        (proxy placement table)\n"
               "           [--list] [--stats NAME[@intN] ...]\n"
               "           [--events [--since-ns N]] (flight-recorder dump)\n"
               "  proxy    --listen PORT [--bind ADDR] [--metrics PORT]\n"
               "           --backend HOST:PORT=model[@intN][,model...] ...\n"
               "           [--policy explicit|hash] [--pool N]\n"
               "           [--health-interval-ms I] [--health-timeout-ms T]\n"
               "           [--call-timeout-ms C] [--drain-timeout-ms D]\n");
  return 2;
}

/// One-line parse error + usage, exit 2 (satellite contract: malformed
/// flags never abort via uncaught exceptions or run with defaults).
[[noreturn]] void parse_fail(const std::string& message) {
  std::fprintf(stderr, "fqbert_cli: %s\n", message.c_str());
  usage();
  std::exit(2);
}

struct Args {
  std::string command;
  /// Every occurrence of each option, in command-line order (repeatable
  /// options like `--model name=path` keep them all; single-valued
  /// options read the last, so later flags win).
  std::map<std::string, std::vector<std::string>> named;
  bool flag(const std::string& name) const { return named.count(name) > 0; }
  std::string get(const std::string& name, const std::string& dflt = "") const {
    auto it = named.find(name);
    return it == named.end() ? dflt : it->second.back();
  }
  const std::vector<std::string>& values(const std::string& name) const {
    static const std::vector<std::string> empty;
    auto it = named.find(name);
    return it == named.end() ? empty : it->second;
  }
};

/// Per-subcommand vocabulary: which --options exist and whether they
/// consume a value. Anything else is rejected.
struct OptionSpec {
  const char* name;
  bool takes_value;
};

const std::map<std::string, std::vector<OptionSpec>>& command_options() {
  static const std::map<std::string, std::vector<OptionSpec>> specs = {
      {"train", {{"task", true}, {"out", true}, {"fast", false}}},
      {"quantize",
       {{"task", true},
        {"model", true},
        {"out", true},
        {"bits", true},
        {"mapped", false},
        {"no-clip", false},
        {"no-softmax-quant", false},
        {"no-ln-quant", false},
        {"no-scale-quant", false},
        {"fast", false}}},
      {"eval", {{"task", true}, {"engine", true}, {"fast", false}}},
      {"info", {{"engine", true}}},
      {"estimate",
       {{"device", true}, {"pes", true}, {"mults", true}, {"seq", true}}},
      {"serve",
       {{"engine", true},
        {"task", true},
        {"fast", false},
        {"listen", true},
        {"bind", true},
        {"metrics", true},
        {"model", true},
        {"tier-fallback", true},
        {"workers", true},
        {"batch", true},
        {"wait-us", true},
        {"granularity", true},
        {"clients", true},
        {"requests", true},
        {"deadline-ms", true},
        {"seq-mix", true},
        {"seed", true}}},
      {"loadgen",
       {{"engine", true},
        {"task", true},
        {"fast", false},
        {"connect", true},
        {"model", true},
        {"tier", true},
        {"workers", true},
        {"batch", true},
        {"wait-us", true},
        {"granularity", true},
        {"clients", true},
        {"requests", true},
        {"deadline-ms", true},
        {"seq-mix", true},
        {"seed", true},
        {"trace-every", true},
        {"latency-csv", true},
        {"batch-sweep", true},
        {"worker-sweep", true}}},
      {"admin",
       {{"connect", true},
        {"timeout-ms", true},
        {"load", true},
        {"unload", true},
        {"add-backend", true},
        {"remove-backend", true},
        {"move-model", true},
        {"placement", false},
        {"list", false},
        {"stats", true},
        {"events", false},
        {"since-ns", true}}},
      {"proxy",
       {{"listen", true},
        {"bind", true},
        {"metrics", true},
        {"backend", true},
        {"policy", true},
        {"pool", true},
        {"health-interval-ms", true},
        {"health-timeout-ms", true},
        {"call-timeout-ms", true},
        {"connect-timeout-ms", true},
        {"drain-timeout-ms", true}}},
  };
  return specs;
}

/// Strict parse: every token after the subcommand must be a known
/// --option of that subcommand; valued options always consume the next
/// token (so negative numbers work as values), flags never do.
Args parse(int argc, char** argv) {
  Args a;
  if (argc > 1) a.command = argv[1];
  const auto spec_it = command_options().find(a.command);
  if (spec_it == command_options().end()) return a;  // main() prints usage
  const std::vector<OptionSpec>& spec = spec_it->second;

  for (int i = 2; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0)
      parse_fail(a.command + ": unexpected positional argument '" + token +
                 "'");
    const std::string key = token.substr(2);
    const OptionSpec* opt = nullptr;
    for (const OptionSpec& s : spec)
      if (key == s.name) {
        opt = &s;
        break;
      }
    if (opt == nullptr)
      parse_fail(a.command + ": unknown option --" + key);
    if (opt->takes_value) {
      if (i + 1 >= argc)
        parse_fail(a.command + ": option --" + key + " needs a value");
      a.named[key].push_back(argv[++i]);
    } else {
      a.named[key] = {"1"};
    }
  }
  return a;
}

/// Checked integer parse: the whole string must be a number in
/// [min, max]; anything else is a one-line error + usage, exit 2.
long long parse_int(const std::string& name, const std::string& value,
                    long long min, long long max) {
  long long parsed = 0;
  const char* begin = value.data();
  const char* end = begin + value.size();
  const auto [ptr, ec] = std::from_chars(begin, end, parsed);
  if (ec != std::errc() || ptr != end || value.empty())
    parse_fail("--" + name + ": '" + value + "' is not an integer");
  if (parsed < min || parsed > max)
    parse_fail("--" + name + ": " + value + " out of range [" +
               std::to_string(min) + ", " + std::to_string(max) + "]");
  return parsed;
}

long long int_opt(const Args& a, const std::string& name, long long dflt,
                  long long min, long long max) {
  const auto it = a.named.find(name);
  return it == a.named.end() ? dflt
                             : parse_int(name, it->second.back(), min, max);
}

/// Options that the selected mode of a subcommand would silently
/// ignore are rejected outright — same contract as unknown options.
void reject_options(const Args& a, const std::string& mode,
                    std::initializer_list<const char*> names) {
  for (const char* name : names)
    if (a.flag(name))
      parse_fail(a.command + " " + mode + ": option --" + name +
                 " does not apply (it would be ignored)");
}

/// Comma-separated integers with the same checked parse per element.
/// Defined edge semantics, locked in by tests/test_serve_net.cpp:
/// empty input and empty elements ("", "12,", ",,") simply contribute
/// nothing — "" yields an empty list (loadgen then falls back to the
/// engine's max_seq_len).
std::vector<int64_t> parse_int_list(const std::string& name,
                                    const std::string& csv, long long min,
                                    long long max) {
  std::vector<int64_t> out;
  size_t pos = 0;
  while (pos <= csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > pos)
      out.push_back(parse_int(name, csv.substr(pos, comma - pos), min, max));
    pos = comma + 1;
  }
  return out;
}

/// Resolve the serving engine: --engine loads a file into the registry
/// (loaded once; all workers share the immutable instance); --task
/// trains+quantizes a demo engine in-memory. Returns nullptr (after
/// printing) on failure.
std::shared_ptr<const core::FqBertModel> resolve_engine(
    const Args& a, serve::EngineRegistry& registry, const char* name) {
  const std::string engine_path = a.get("engine");
  if (!engine_path.empty()) {
    if (!registry.register_file(name, engine_path)) {
      std::fprintf(stderr, "cannot load engine %s\n", engine_path.c_str());
      return nullptr;
    }
    return registry.get(name);
  }
  const std::string task_name = a.get("task");
  if (task_name.empty()) return nullptr;
  std::printf("no --engine given: training a %s demo engine (%s mode)...\n",
              task_name.c_str(), a.flag("fast") ? "fast" : "full");
  return build_and_register_engine(registry, name, task_name,
                                   core::FqQuantConfig::full(),
                                   a.flag("fast"));
}

serve::ServerConfig server_config_from(const Args& a) {
  serve::ServerConfig cfg;
  cfg.num_workers = static_cast<int>(int_opt(a, "workers", 2, 1, 1024));
  cfg.batcher.max_batch = int_opt(a, "batch", 8, 1, 4096);
  cfg.batcher.max_wait =
      serve::Micros(int_opt(a, "wait-us", 2000, 0, 3600LL * 1000 * 1000));
  cfg.batcher.bucket_granularity = int_opt(a, "granularity", 8, 1, 4096);
  return cfg;
}

serve::LoadgenConfig loadgen_config_from(const Args& a) {
  serve::LoadgenConfig cfg;
  cfg.num_clients = static_cast<int>(int_opt(a, "clients", 8, 1, 4096));
  cfg.requests_per_client =
      static_cast<int>(int_opt(a, "requests", 200, 1, 100000000));
  // Lengths beyond the engine's max_seq_len are clamped per request by
  // synth_example, so the mix needs no engine shape here.
  cfg.seq_len_mix =
      parse_int_list("seq-mix", a.get("seq-mix", "12,16,24"), 1, 1 << 16);
  cfg.seed = static_cast<uint64_t>(int_opt(a, "seed", 1, 0, 1LL << 62));
  cfg.trace_every =
      static_cast<int>(int_opt(a, "trace-every", 0, 0, 100000000));
  const long long deadline_ms =
      int_opt(a, "deadline-ms", 0, 0, 86400LL * 1000);
  if (deadline_ms > 0)
    cfg.deadline_budget = serve::Micros(deadline_ms * 1000);
  return cfg;
}

void print_latency_line(const serve::ServeStats::Report& st) {
  std::printf("latency : p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, p99.9 %.2f "
              "ms, max %.2f ms (queue %.2f ms mean; %llu lifetime samples)\n",
              st.p50_ms, st.p95_ms, st.p99_ms, st.p999_ms, st.max_ms,
              st.mean_queue_ms,
              static_cast<unsigned long long>(st.latency_samples));
}

/// Per-stage breakdown of the loadgen's sampled traces: a few full
/// example timelines, then the mean offset of every stage seen. Stage
/// offsets are relative to each hop's first event, so through a proxy
/// the backend stages already sit inside the proxy timeline.
void print_trace_samples(const serve::LoadgenReport& lg) {
  if (lg.traces.empty()) return;
  const size_t show = std::min<size_t>(3, lg.traces.size());
  std::printf("traces  : %zu sampled, first %zu shown\n", lg.traces.size(),
              show);
  for (size_t i = 0; i < show; ++i) {
    const serve::TraceSample& t = lg.traces[i];
    std::printf("  trace %016llx (wall %lld us):",
                static_cast<unsigned long long>(t.trace_id),
                static_cast<long long>(t.wall_us));
    for (const serve::TraceEvent& ev : t.stages)
      std::printf(" %s +%lld", serve::trace_stage_name(ev.stage),
                  static_cast<long long>(ev.t_us));
    std::printf(" us\n");
  }
  // Mean offset per stage across every sample, in stage-code order
  // (receipt -> forward -> admission -> batch -> worker -> response).
  int64_t sum[serve::kLastTraceStage + 1] = {};
  uint64_t n[serve::kLastTraceStage + 1] = {};
  for (const serve::TraceSample& t : lg.traces)
    for (const serve::TraceEvent& ev : t.stages) {
      const auto s = static_cast<size_t>(ev.stage);
      if (s <= serve::kLastTraceStage) {
        sum[s] += ev.t_us;
        ++n[s];
      }
    }
  std::printf("  stage means:");
  for (size_t s = 0; s <= serve::kLastTraceStage; ++s)
    if (n[s] > 0)
      std::printf(" %s %.0f us (n=%llu)",
                  serve::trace_stage_name(
                      static_cast<serve::TraceStage>(s)),
                  static_cast<double>(sum[s]) / static_cast<double>(n[s]),
                  static_cast<unsigned long long>(n[s]));
  std::printf("\n");
}

void print_balance_line(const serve::ServeStats::Report& st) {
  std::printf("balance : admitted %llu = completed %llu + timed out %llu + "
              "failed %llu  [%s]\n",
              static_cast<unsigned long long>(st.admitted),
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(st.timed_out),
              static_cast<unsigned long long>(st.failed),
              st.accounting_balances() ? "OK" : "MISMATCH");
}

void print_serve_report(const serve::LoadgenReport& lg,
                        const serve::ServeStats::Report& st) {
  std::printf("loadgen : %llu sent, %llu ok, %llu rejected, %llu timed out, "
              "%llu failed in %.2fs\n",
              static_cast<unsigned long long>(lg.sent),
              static_cast<unsigned long long>(lg.ok),
              static_cast<unsigned long long>(lg.rejected),
              static_cast<unsigned long long>(lg.timed_out),
              static_cast<unsigned long long>(lg.failed), lg.wall_s);
  std::printf("server  : %.1f req/s, batch occupancy %.2f over %llu "
              "batches\n",
              lg.throughput_rps(), st.mean_batch_occupancy,
              static_cast<unsigned long long>(st.batches));
  print_latency_line(st);
  print_balance_line(st);
}

volatile std::sig_atomic_t g_stop_requested = 0;

void handle_stop_signal(int) { g_stop_requested = 1; }

/// Split a `NAME=VALUE` option ("--load sst2=fq.bin", "--model m=f.bin").
void parse_name_value(const std::string& option, const std::string& token,
                      std::string* name, std::string* value) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size())
    parse_fail("--" + option + ": expected NAME=FILE, got '" + token + "'");
  *name = token.substr(0, eq);
  *value = token.substr(eq + 1);
}

/// Split a trailing precision-tier suffix off `token`: "X@int4" and
/// "X@4" yield (X, 4); no '@' yields (token, 0). A malformed suffix is
/// an argv error — tiers are weight bit-widths in [2, 8].
void parse_tier_suffix(const std::string& option, const std::string& token,
                       std::string* base, int* tier) {
  const size_t at = token.rfind('@');
  if (at == std::string::npos) {
    *base = token;
    *tier = 0;
    return;
  }
  *base = token.substr(0, at);
  std::string t = token.substr(at + 1);
  if (t.rfind("int", 0) == 0) t = t.substr(3);
  if (t.size() != 1 || t[0] < '2' || t[0] > '8')
    parse_fail("--" + option + ": malformed tier suffix in '" + token +
               "' (expected @intN or @N with N in [2, 8])");
  *tier = t[0] - '0';
}

/// Split `HOST:PORT` (--connect, and the address half of --backend).
void parse_host_port(const std::string& target, std::string* host,
                     uint16_t* port, const std::string& option = "connect") {
  const size_t colon = target.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= target.size())
    parse_fail("--" + option + ": expected HOST:PORT, got '" + target + "'");
  *host = target.substr(0, colon);
  *port = static_cast<uint16_t>(
      parse_int(option, target.substr(colon + 1), 1, 65535));
}

/// Per-lane accounting table for the shutdown report: one row per
/// (model, tier) lane, each of which must balance independently.
void print_per_model_table(const serve::ModelRouter& router) {
  const auto stats = router.all_stats();
  std::printf("%-20s %10s %10s %10s %8s %8s %8s %9s\n", "lane", "admitted",
              "completed", "timed-out", "failed", "p50 ms", "p95 ms",
              "balance");
  for (const auto& row : stats) {
    const std::string lane = row.model + "@int" + std::to_string(row.tier);
    const auto& st = row.report;
    std::printf("%-20s %10llu %10llu %10llu %8llu %8.2f %8.2f %9s\n",
                lane.c_str(), static_cast<unsigned long long>(st.admitted),
                static_cast<unsigned long long>(st.completed),
                static_cast<unsigned long long>(st.timed_out),
                static_cast<unsigned long long>(st.failed), st.p50_ms,
                st.p95_ms, st.accounting_balances() ? "OK" : "MISMATCH");
  }
  if (router.unknown_model_rejections() > 0)
    std::printf("(+%llu requests rejected for unknown model names)\n",
                static_cast<unsigned long long>(
                    router.unknown_model_rejections()));
  if (router.unknown_tier_rejections() > 0)
    std::printf("(+%llu requests rejected for unserved precision tiers)\n",
                static_cast<unsigned long long>(
                    router.unknown_tier_rejections()));
}

/// `serve --listen`: run the multi-model router as a network service
/// until SIGINT / SIGTERM, then drain and print the per-model report.
/// Lanes come from repeated `--model name=path`, or from
/// --engine/--task as the single model "default"; more can be
/// hot-loaded at runtime through `fqbert_cli admin`.
int run_listen_server(const Args& a, const serve::ServerConfig& scfg) {
  serve::EngineRegistry registry;
  serve::RouterConfig rcfg;
  rcfg.num_workers = scfg.num_workers;
  rcfg.queue = scfg.queue;
  rcfg.batcher = scfg.batcher;
  const std::string fallback = a.get("tier-fallback", "strict");
  if (fallback == "default")
    rcfg.tier_fallback = serve::TierFallback::kFallbackToDefault;
  else if (fallback != "strict")
    parse_fail("--tier-fallback: expected 'strict' or 'default', got '" +
               fallback + "'");
  serve::ModelRouter router(registry, rcfg);

  const std::vector<std::string>& model_specs = a.values("model");
  if (!model_specs.empty()) {
    if (a.flag("engine") || a.flag("task"))
      parse_fail("serve --listen: --model cannot be combined with "
                 "--engine/--task (the latter define the single model "
                 "'default')");
    // --fast only shapes --task demo training; with --model files it
    // would be silently ignored.
    reject_options(a, "--model", {"fast"});
    // Parse (and validate) ALL specs before loading the first engine:
    // a duplicated NAME is an argv error ("last one wins" would
    // silently serve a different engine than half the command line
    // says), and it must not cost an engine load first. A spec may
    // carry a tier list — `sst2=fq.bin@int8,int4` serves the file's
    // checkpoint as int8 AND an int4 tier derived from it.
    struct ModelSpec {
      std::string name;
      std::string path;
      std::vector<int> tiers;  // empty = the file's native tier only
    };
    std::vector<ModelSpec> models;
    std::set<std::string> model_names;
    for (const std::string& spec : model_specs) {
      std::string name, value;
      parse_name_value("model", spec, &name, &value);
      if (!model_names.insert(name).second)
        parse_fail("--model: model '" + name +
                   "' given more than once (each NAME maps to exactly one "
                   "FILE)");
      ModelSpec m;
      m.name = std::move(name);
      const size_t at = value.find('@');
      m.path = value.substr(0, at);
      if (m.path.empty())
        parse_fail("--model: empty FILE in '" + spec + "'");
      if (at != std::string::npos) {
        std::set<int> seen_tiers;
        std::string csv = value.substr(at + 1);
        size_t pos = 0;
        while (pos <= csv.size()) {
          size_t comma = csv.find(',', pos);
          if (comma == std::string::npos) comma = csv.size();
          std::string base;
          int tier = 0;
          std::string element("@");
          element += csv.substr(pos, comma - pos);
          parse_tier_suffix("model", element, &base, &tier);
          if (!seen_tiers.insert(tier).second)
            parse_fail("--model: tier int" + std::to_string(tier) +
                       " repeated in '" + spec + "'");
          m.tiers.push_back(tier);
          pos = comma + 1;
        }
      }
      models.push_back(std::move(m));
    }
    for (const auto& m : models) {
      std::string error;
      // First listed tier loads from the file (derived there if it is
      // not the checkpoint's native width); the rest are minted from
      // the registered default without re-reading the file.
      const int first = m.tiers.empty() ? 0 : m.tiers.front();
      if (!router.load_model(m.name, m.path, &error, first)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
      }
      for (size_t i = 1; i < m.tiers.size(); ++i) {
        if (!router.load_model(m.name, "", &error, m.tiers[i])) {
          std::fprintf(stderr, "%s\n", error.c_str());
          return 1;
        }
      }
    }
  } else {
    if (!resolve_engine(a, registry, "default")) return usage();
    std::string error;
    if (!router.add_model("default", &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
  }
  router.start();

  serve::net::TransportConfig tcfg;
  tcfg.bind_address = a.get("bind", "127.0.0.1");
  tcfg.port =
      static_cast<uint16_t>(int_opt(a, "listen", 0, 0, 65535));
  serve::net::TransportServer transport(router, tcfg);
  if (!transport.start()) {
    std::fprintf(stderr, "transport failed to start\n");
    return 1;
  }

  // Black box first: from here on a crash dumps the journal to stderr.
  serve::FlightRecorder::instance().install_crash_handler();

  serve::MetricsHttpServer metrics(
      [&router] { return serve::render_router_metrics(router); });
  metrics.add_endpoint("/debug/events", [](const std::string& query) {
    return serve::render_debug_events(
        serve::FlightRecorder::instance(),
        serve::debug_query_u64(query, "since_ns", 0),
        serve::debug_query_u64(query, "max", 0));
  });
  metrics.add_endpoint("/debug/slow", [](const std::string&) {
    return serve::render_debug_slow(serve::FlightRecorder::instance());
  });
  metrics.add_endpoint("/debug/lanes", [&router](const std::string&) {
    return serve::render_debug_lanes(router);
  });
  if (a.flag("metrics")) {
    const auto metrics_port =
        static_cast<uint16_t>(int_opt(a, "metrics", 0, 0, 65535));
    if (!metrics.start(tcfg.bind_address, metrics_port)) {
      std::fprintf(stderr, "metrics endpoint failed to start\n");
      return 1;
    }
    std::printf("metrics on http://%s:%u/metrics (debug: /debug/events "
                "/debug/slow /debug/lanes)\n",
                tcfg.bind_address.c_str(), metrics.port());
  }

  std::string names;
  for (const std::string& n : router.model_names()) {
    std::string tiers;
    for (const int t : router.served_tiers(n))
      tiers += (tiers.empty() ? "" : ",") + ("int" + std::to_string(t));
    names += (names.empty() ? "" : ", ") + n + "@" + tiers;
  }
  std::printf("listening on %s:%u — models [%s] (default: %s), %d workers, "
              "max batch %lld, max wait %lld us; Ctrl-C to stop\n",
              tcfg.bind_address.c_str(), transport.port(), names.c_str(),
              router.default_model().c_str(), rcfg.num_workers,
              static_cast<long long>(rcfg.batcher.max_batch),
              static_cast<long long>(rcfg.batcher.max_wait.count()));
  std::fflush(stdout);

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  while (!g_stop_requested)
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::printf("\nshutting down...\n");
  metrics.stop();
  transport.stop();
  router.shutdown(/*drain=*/true);
  const serve::net::TransportServer::Counters net = transport.counters();
  std::printf("transport: %llu connections (%llu closed, %llu protocol "
              "errors, %llu overflow closes), %llu frames in, %llu frames "
              "out over %.1fs\n",
              static_cast<unsigned long long>(net.accepted),
              static_cast<unsigned long long>(net.closed),
              static_cast<unsigned long long>(net.protocol_errors),
              static_cast<unsigned long long>(net.overflow_closes),
              static_cast<unsigned long long>(net.frames_in),
              static_cast<unsigned long long>(net.frames_out),
              router.uptime_s());
  print_per_model_table(router);
  return 0;
}

int cmd_serve(const Args& a) {
  // Validate every numeric flag before the (potentially expensive)
  // engine resolution: a typo must not cost a demo-engine train first.
  serve::ServerConfig scfg = server_config_from(a);
  if (a.flag("listen")) {
    // The network mode has no built-in client loop; accepting its
    // options would silently ignore them.
    reject_options(a, "--listen",
                   {"clients", "requests", "deadline-ms", "seq-mix", "seed"});
    return run_listen_server(a, scfg);
  }
  // --model defines router lanes and --metrics scrapes a live service;
  // only the network mode runs either.
  reject_options(a, "(closed-loop)", {"model", "metrics"});
  serve::LoadgenConfig lcfg = loadgen_config_from(a);

  serve::EngineRegistry registry;
  auto engine = resolve_engine(a, registry, "default");
  if (!engine) return usage();

  std::printf("serving '%s': %d workers, max batch %lld, max wait %lld us, "
              "%d closed-loop clients x %d requests (hw threads: %u)\n",
              a.get("engine", a.get("task")).c_str(), scfg.num_workers,
              static_cast<long long>(scfg.batcher.max_batch),
              static_cast<long long>(scfg.batcher.max_wait.count()),
              lcfg.num_clients, lcfg.requests_per_client,
              std::thread::hardware_concurrency());

  serve::InferenceServer server(registry, "default", scfg);
  if (!server.start()) {
    std::fprintf(stderr, "server failed to start\n");
    return 1;
  }
  const serve::LoadgenReport lg =
      serve::run_loadgen(server, engine->config(), lcfg);
  server.shutdown(/*drain=*/true);
  print_serve_report(lg, server.stats().report());
  return 0;
}

/// `loadgen --latency-csv`: one row per request. Stage timestamps (only
/// present on traced requests) pack into the last column as
/// `stage:t_us|stage:t_us` so the file stays one-row-per-request.
bool write_latency_csv(const std::string& path,
                       const std::vector<serve::RequestRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "loadgen: cannot write '%s'\n", path.c_str());
    return false;
  }
  std::fprintf(f, "trace_id,model,tier,status,latency_us,stages\n");
  for (const auto& r : records) {
    std::fprintf(f, "%llu,%s,%u,%s,%lld,",
                 static_cast<unsigned long long>(r.trace_id),
                 r.model.empty() ? "<default>" : r.model.c_str(),
                 static_cast<unsigned>(r.tier),
                 serve::request_status_name(r.status),
                 static_cast<long long>(r.latency_us));
    for (size_t i = 0; i < r.stages.size(); ++i)
      std::fprintf(f, "%s%s:%lld", i == 0 ? "" : "|",
                   serve::trace_stage_name(r.stages[i].stage),
                   static_cast<long long>(r.stages[i].t_us));
    std::fputc('\n', f);
  }
  const bool ok = std::fclose(f) == 0;
  if (!ok)
    std::fprintf(stderr, "loadgen: error writing '%s'\n", path.c_str());
  return ok;
}

/// `loadgen --connect`: drive a remote `serve --listen` across the wire
/// with the same closed-loop client model. Repeated `--model NAME`
/// options build a multi-model traffic mix over the router's lanes (no
/// --model = the server's default model).
int run_remote_loadgen(const Args& a) {
  // The engine and the serving/sweep knobs live on the remote server;
  // accepting them here would silently ignore them.
  reject_options(a, "--connect",
                 {"engine", "task", "fast", "workers", "batch", "wait-us",
                  "granularity", "batch-sweep", "worker-sweep"});
  std::string host;
  uint16_t port = 0;
  parse_host_port(a.get("connect"), &host, &port);

  // Probe each target model's shape (bounded waits: a dead or hung
  // server fails the probe instead of blocking loadgen forever).
  serve::net::TransportClient probe;
  probe.set_timeouts(serve::Micros(5'000'000), serve::Micros(30'000'000));
  if (!probe.connect(host, port)) {
    std::fprintf(stderr, "%s\n", probe.error().c_str());
    return 1;
  }
  // --tier pins every request in the mix to one precision tier (the
  // per-model shape probe validates the server actually serves it).
  const auto tier =
      static_cast<uint8_t>(int_opt(a, "tier", 0, 0, 8));
  if (tier == 1)
    parse_fail("--tier: 1 is not a weight bit-width (use 0 for the "
               "default tier, or 2..8)");
  std::vector<std::string> mix = a.values("model");
  if (mix.empty()) mix.push_back("");  // the server's default model
  std::vector<serve::RemoteModelTarget> targets;
  for (const std::string& name : mix) {
    const std::optional<nn::BertConfig> info = probe.query_info(name, tier);
    if (!info) {
      const std::string tier_note =
          tier != 0 ? " tier int" + std::to_string(tier) : std::string();
      std::fprintf(stderr, "info query for model '%s'%s failed: %s\n",
                   name.c_str(), tier_note.c_str(), probe.error().c_str());
      return 1;
    }
    targets.push_back({name, *info, tier});
  }
  probe.close();

  serve::LoadgenConfig lcfg = loadgen_config_from(a);
  const std::string csv_path = a.get("latency-csv", "");
  lcfg.collect_records = !csv_path.empty();
  std::string names;
  for (const auto& t : targets)
    names += (names.empty() ? "" : ", ") +
             (t.name.empty() ? std::string("<default>") : t.name);
  std::printf("remote loadgen -> %s:%u (models: %s; first engine: L=%lld "
              "hidden=%lld max_seq=%lld classes=%lld): %d clients x %d "
              "requests\n",
              host.c_str(), port, names.c_str(),
              static_cast<long long>(targets.front().config.num_layers),
              static_cast<long long>(targets.front().config.hidden),
              static_cast<long long>(targets.front().config.max_seq_len),
              static_cast<long long>(targets.front().config.num_classes),
              lcfg.num_clients, lcfg.requests_per_client);
  const serve::LoadgenReport lg =
      serve::run_loadgen_remote(host, port, targets, lcfg);
  std::printf("loadgen : %llu sent, %llu ok, %llu rejected, %llu timed out, "
              "%llu failed in %.2fs (%.1f req/s)\n",
              static_cast<unsigned long long>(lg.sent),
              static_cast<unsigned long long>(lg.ok),
              static_cast<unsigned long long>(lg.rejected),
              static_cast<unsigned long long>(lg.timed_out),
              static_cast<unsigned long long>(lg.failed), lg.wall_s,
              lg.throughput_rps());
  if (lg.latency_us.count() > 0)
    std::printf("client  : p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, p99.9 "
                "%.2f ms, max %.2f ms (%llu ok responses)\n",
                lg.latency_ms(0.50), lg.latency_ms(0.95), lg.latency_ms(0.99),
                lg.latency_ms(0.999),
                static_cast<double>(lg.latency_us.max_us()) / 1000.0,
                static_cast<unsigned long long>(lg.latency_us.count()));
  print_trace_samples(lg);
  if (!csv_path.empty()) {
    if (!write_latency_csv(csv_path, lg.records)) return 1;
    std::printf("latency : %zu rows -> %s\n", lg.records.size(),
                csv_path.c_str());
  }
  return lg.failed == 0 ? 0 : 1;
}

/// `admin --connect`: drive the router's control plane over the wire.
/// Executes loads, then unloads, then --list, then --stats queries;
/// exit 0 only when every operation succeeded.
int cmd_admin(const Args& a) {
  if (!a.flag("connect")) return usage();
  if (a.flag("since-ns") && !a.flag("events"))
    parse_fail("--since-ns only filters an --events dump");
  std::string host;
  uint16_t port = 0;
  parse_host_port(a.get("connect"), &host, &port);
  const long long timeout_ms =
      int_opt(a, "timeout-ms", 30000, 0, 3600LL * 1000);

  serve::net::TransportClient client;
  // Loads read engine files and unloads drain lanes server-side, so the
  // receive timeout must cover real work — but a hung server must not
  // hang the admin CLI.
  client.set_timeouts(serve::Micros(timeout_ms * 1000),
                      serve::Micros(timeout_ms * 1000));
  if (!client.connect(host, port)) {
    std::fprintf(stderr, "%s\n", client.error().c_str());
    return 1;
  }

  bool all_ok = true;
  for (const std::string& spec : a.values("load")) {
    std::string name, value, path;
    int tier = 0;
    parse_name_value("load", spec, &name, &value);
    // `sst2=fq.bin@int4` loads/derives that tier; `sst2=@int4` derives
    // it server-side from the model's already-loaded default tier.
    parse_tier_suffix("load", value, &path, &tier);
    if (path.empty() && tier == 0)
      parse_fail("--load: '" + spec + "' names neither a FILE nor a tier");
    std::string message;
    const bool ok = client.load_model(name, path, &message,
                                      static_cast<uint8_t>(tier));
    std::printf("load %s: %s\n", spec.c_str(),
                ok ? message.c_str()
                   : (message.empty() ? client.error().c_str()
                                      : message.c_str()));
    all_ok = all_ok && ok;
    if (!client.connected()) break;  // transport gone; stop cleanly
  }
  for (const std::string& spec : a.values("unload")) {
    std::string name;
    int tier = 0;
    parse_tier_suffix("unload", spec, &name, &tier);
    std::string message;
    const bool ok = client.unload_model(name, &message,
                                        static_cast<uint8_t>(tier));
    std::printf("unload %s: %s\n", spec.c_str(),
                ok ? message.c_str()
                   : (message.empty() ? client.error().c_str()
                                      : message.c_str()));
    all_ok = all_ok && ok;
    if (!client.connected()) break;
  }
  // Proxy placement plane (v5): membership changes first (an added
  // backend can then host a --move-model target in the same command),
  // then moves, then the read-only --placement dump.
  for (const std::string& spec : a.values("add-backend")) {
    std::string address, model_csv;
    parse_name_value("add-backend", spec, &address, &model_csv);
    std::string host;
    uint16_t port = 0;
    parse_host_port(address, &host, &port, "add-backend");
    std::vector<serve::net::WireModelEntry> cells;
    size_t pos = 0;
    while (pos <= model_csv.size()) {
      size_t comma = model_csv.find(',', pos);
      if (comma == std::string::npos) comma = model_csv.size();
      if (comma == pos)
        parse_fail("--add-backend: empty model name in '" + spec + "'");
      std::string name;
      int tier = 0;
      parse_tier_suffix("add-backend", model_csv.substr(pos, comma - pos),
                        &name, &tier);
      cells.push_back({name, static_cast<uint8_t>(tier)});
      pos = comma + 1;
    }
    std::string message;
    const bool ok = client.add_backend(host, port, cells, &message);
    std::printf("add-backend %s: %s\n", spec.c_str(),
                ok ? message.c_str()
                   : (message.empty() ? client.error().c_str()
                                      : message.c_str()));
    all_ok = all_ok && ok;
    if (!client.connected()) break;
  }
  for (const std::string& spec : a.values("remove-backend")) {
    std::string host;
    uint16_t port = 0;
    parse_host_port(spec, &host, &port, "remove-backend");
    std::string message;
    const bool ok = client.remove_backend(spec, &message);
    std::printf("remove-backend %s: %s\n", spec.c_str(),
                ok ? message.c_str()
                   : (message.empty() ? client.error().c_str()
                                      : message.c_str()));
    all_ok = all_ok && ok;
    if (!client.connected()) break;
  }
  for (const std::string& spec : a.values("move-model")) {
    std::string lane, value;
    parse_name_value("move-model", spec, &lane, &value);
    std::string model;
    int tier = 0;
    parse_tier_suffix("move-model", lane, &model, &tier);
    // FROM,TO[,FILE] — the first two commas delimit; FILE keeps any
    // further commas (paths are opaque).
    const size_t c1 = value.find(',');
    if (c1 == std::string::npos || c1 == 0 || c1 + 1 >= value.size())
      parse_fail("--move-model: expected NAME[@intN]=FROM,TO[,FILE], got '" +
                 spec + "'");
    size_t c2 = value.find(',', c1 + 1);
    if (c2 == std::string::npos) c2 = value.size();
    const std::string from = value.substr(0, c1);
    const std::string to = value.substr(c1 + 1, c2 - c1 - 1);
    const std::string path =
        c2 < value.size() ? value.substr(c2 + 1) : std::string();
    if (to.empty())
      parse_fail("--move-model: empty TO address in '" + spec + "'");
    std::string message;
    const bool ok = client.move_model(model, static_cast<uint8_t>(tier),
                                      from, to, path, &message);
    std::printf("move-model %s: %s\n", spec.c_str(),
                ok ? message.c_str()
                   : (message.empty() ? client.error().c_str()
                                      : message.c_str()));
    all_ok = all_ok && ok;
    if (!client.connected()) break;
  }
  if (a.flag("placement") && client.connected()) {
    const auto placement = client.get_placement();
    if (!placement) {
      std::fprintf(stderr, "placement failed: %s\n", client.error().c_str());
      all_ok = false;
    } else {
      std::printf("placement: epoch %llu, policy %s, default model '%s', "
                  "%zu backend(s):\n",
                  static_cast<unsigned long long>(placement->epoch),
                  serve::shard::placement_policy_name(
                      static_cast<serve::shard::PlacementPolicy>(
                          placement->policy)),
                  placement->default_model.c_str(),
                  placement->backends.size());
      for (const auto& b : placement->backends) {
        std::string cells;
        for (const auto& cell : b.models) {
          cells += (cells.empty() ? "" : ", ") + cell.name;
          if (cell.tier != 0) cells += "@int" + std::to_string(cell.tier);
        }
        std::printf("  %-22s %-8s [%s]\n", b.address.c_str(),
                    serve::shard::backend_state_name(
                        static_cast<serve::shard::BackendState>(b.state)),
                    cells.c_str());
      }
    }
  }
  if (a.flag("list") && client.connected()) {
    const auto entries = client.list_models_tiered();
    if (!entries) {
      std::fprintf(stderr, "list failed: %s\n", client.error().c_str());
      all_ok = false;
    } else {
      std::printf("%zu serving lane(s):\n", entries->size());
      for (const auto& e : *entries)
        if (e.tier != 0)
          std::printf("  %s@int%u\n", e.name.c_str(), e.tier);
        else
          std::printf("  %s\n", e.name.c_str());
    }
  }
  for (const std::string& spec : a.values("stats")) {
    if (!client.connected()) break;
    std::string name;
    int tier = 0;
    parse_tier_suffix("stats", spec, &name, &tier);
    const auto stats = client.query_stats(name,
                                          static_cast<uint8_t>(tier));
    if (!stats) {
      std::fprintf(stderr, "stats %s: %s\n", spec.c_str(),
                   client.error().c_str());
      all_ok = false;
      continue;
    }
    const serve::ServeStats::Report& st = stats->report;
    const std::string lane =
        stats->tier != 0
            ? stats->model + "@int" + std::to_string(stats->tier)
            : stats->model;
    std::printf("stats %s: admitted %llu, completed %llu, timed out %llu, "
                "failed %llu, batches %llu (occupancy %.2f) [%s]\n",
                lane.c_str(),
                static_cast<unsigned long long>(st.admitted),
                static_cast<unsigned long long>(st.completed),
                static_cast<unsigned long long>(st.timed_out),
                static_cast<unsigned long long>(st.failed),
                static_cast<unsigned long long>(st.batches),
                st.mean_batch_occupancy,
                st.accounting_balances() ? "OK" : "MISMATCH");
    std::printf("  latency: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, p99.9 "
                "%.2f ms, max %.2f ms (queue %.2f ms mean; %llu samples)\n",
                st.p50_ms, st.p95_ms, st.p99_ms, st.p999_ms, st.max_ms,
                st.mean_queue_ms,
                static_cast<unsigned long long>(st.latency_samples));
  }
  if (a.flag("events") && client.connected()) {
    const uint64_t since_ns = static_cast<uint64_t>(int_opt(
        a, "since-ns", 0, 0, std::numeric_limits<long long>::max()));
    const auto events = client.dump_events(since_ns, 0);
    if (!events) {
      std::fprintf(stderr, "events failed: %s\n", client.error().c_str());
      all_ok = false;
    } else {
      // Through a proxy this is the merged fleet journal (proxy + every
      // reachable backend), already ordered by monotonic timestamp.
      std::printf("%zu flight-recorder event(s):\n", events->size());
      for (const auto& ev : *events)
        std::printf("  t=%-16llu %-16s tag=%-24s trace=%llu tier=%u "
                    "detail=%u a=%u b=%llu\n",
                    static_cast<unsigned long long>(ev.t_ns),
                    serve::flight_event_type_name(
                        static_cast<serve::FlightEventType>(ev.type)),
                    ev.tag.empty() ? "-" : ev.tag.c_str(),
                    static_cast<unsigned long long>(ev.trace_id),
                    static_cast<unsigned>(ev.tier),
                    static_cast<unsigned>(ev.detail), ev.a,
                    static_cast<unsigned long long>(ev.b));
    }
  }
  if (!client.connected() && all_ok) {
    std::fprintf(stderr, "connection lost: %s\n", client.error().c_str());
    all_ok = false;
  }
  return all_ok ? 0 : 1;
}

/// `proxy`: run the shard-aware routing proxy in front of N backend
/// `serve --listen` hosts until SIGINT / SIGTERM, then print the
/// forwarding counters and the final backend health table.
int cmd_proxy(const Args& a) {
  const std::vector<std::string>& backend_specs = a.values("backend");
  if (backend_specs.empty())
    parse_fail("proxy: at least one --backend HOST:PORT=model[,model...] "
               "is required");
  // A proxy on a random ephemeral port is unreachable by the clients
  // it exists for; usage declares --listen PORT required, so enforce it.
  if (!a.flag("listen"))
    parse_fail("proxy: --listen PORT is required");

  serve::shard::ShardProxyConfig cfg;
  cfg.bind_address = a.get("bind", "127.0.0.1");
  // Minimum 1: --listen 0 would bind a random ephemeral port, which is
  // exactly the unreachable-proxy mistake requiring --listen prevents.
  cfg.port = static_cast<uint16_t>(int_opt(a, "listen", 0, 1, 65535));
  cfg.pool_capacity =
      static_cast<size_t>(int_opt(a, "pool", 4, 1, 1024));
  cfg.health_interval = serve::Micros(
      int_opt(a, "health-interval-ms", 500, 1, 3600LL * 1000) * 1000);
  cfg.health_timeout = serve::Micros(
      int_opt(a, "health-timeout-ms", 1000, 1, 3600LL * 1000) * 1000);
  cfg.call_timeout = serve::Micros(
      int_opt(a, "call-timeout-ms", 30000, 1, 3600LL * 1000) * 1000);
  cfg.connect_timeout = serve::Micros(
      int_opt(a, "connect-timeout-ms", 2000, 1, 3600LL * 1000) * 1000);
  cfg.drain_timeout = serve::Micros(
      int_opt(a, "drain-timeout-ms", 10000, 0, 3600LL * 1000) * 1000);
  const std::string policy = a.get("policy", "explicit");
  if (policy == "hash")
    cfg.policy = serve::shard::PlacementPolicy::kConsistentHash;
  else if (policy != "explicit")
    parse_fail("--policy: expected 'explicit' or 'hash', got '" + policy +
               "'");

  serve::shard::ShardProxy proxy(cfg);
  std::set<std::string> seen_addresses;
  for (const std::string& spec : backend_specs) {
    std::string address, model_csv;
    parse_name_value("backend", spec, &address, &model_csv);
    if (!seen_addresses.insert(address).second)
      parse_fail("--backend: backend '" + address + "' given more than once");
    std::string host;
    uint16_t port = 0;
    parse_host_port(address, &host, &port, "backend");
    // Comma-split model list; empty elements and duplicates within one
    // backend are argv errors, not silently-dropped entries.
    std::vector<std::string> models;
    size_t pos = 0;
    while (pos <= model_csv.size()) {
      size_t comma = model_csv.find(',', pos);
      if (comma == std::string::npos) comma = model_csv.size();
      if (comma == pos)
        parse_fail("--backend: empty model name in '" + spec + "'");
      models.push_back(model_csv.substr(pos, comma - pos));
      pos = comma + 1;
    }
    std::string error;
    if (!proxy.add_backend(host, port, models, &error))
      parse_fail("--backend: " + error);
  }
  if (!proxy.start()) {
    std::fprintf(stderr, "proxy failed to start\n");
    return 1;
  }

  serve::FlightRecorder::instance().install_crash_handler();

  serve::MetricsHttpServer metrics(
      [&proxy] { return serve::render_proxy_metrics(proxy); });
  // The proxy journals its own health transitions and failover retries;
  // /debug/slow and /debug/lanes are router-side views, so the proxy
  // exposes the event feed plus its live placement table.
  metrics.add_endpoint("/debug/events", [](const std::string& query) {
    return serve::render_debug_events(
        serve::FlightRecorder::instance(),
        serve::debug_query_u64(query, "since_ns", 0),
        serve::debug_query_u64(query, "max", 0));
  });
  metrics.add_endpoint("/debug/placement", [&proxy](const std::string&) {
    return serve::render_debug_placement(proxy);
  });
  if (a.flag("metrics")) {
    const auto metrics_port =
        static_cast<uint16_t>(int_opt(a, "metrics", 0, 0, 65535));
    if (!metrics.start(cfg.bind_address, metrics_port)) {
      std::fprintf(stderr, "metrics endpoint failed to start\n");
      return 1;
    }
    std::printf("metrics on http://%s:%u/metrics (debug: /debug/events "
                "/debug/placement)\n",
                cfg.bind_address.c_str(), metrics.port());
  }

  std::printf("shard proxy on %s:%u — %zu backend(s), default model '%s', "
              "health every %lld ms; Ctrl-C to stop\n",
              cfg.bind_address.c_str(), proxy.port(), backend_specs.size(),
              proxy.default_model().c_str(),
              static_cast<long long>(cfg.health_interval.count() / 1000));
  for (const auto& b : proxy.backend_status()) {
    std::string models;
    for (const std::string& m : b.models)
      models += (models.empty() ? "" : ", ") + m;
    std::printf("  backend %-22s [%s]\n", b.address.c_str(), models.c_str());
  }
  std::fflush(stdout);

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  while (!g_stop_requested)
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::printf("\nshutting down...\n");
  metrics.stop();
  proxy.stop();
  const serve::shard::ShardProxy::Counters c = proxy.counters();
  std::printf("proxy   : %llu connections, %llu served (%llu failovers, "
              "%llu exhausted, %llu unknown model), %llu admin frames, "
              "%llu protocol errors, %llu health transitions\n",
              static_cast<unsigned long long>(c.accepted),
              static_cast<unsigned long long>(c.served),
              static_cast<unsigned long long>(c.failovers),
              static_cast<unsigned long long>(c.exhausted),
              static_cast<unsigned long long>(c.unknown_model),
              static_cast<unsigned long long>(c.admin_frames),
              static_cast<unsigned long long>(c.protocol_errors),
              static_cast<unsigned long long>(c.health_transitions));
  std::printf("%-22s %-8s %10s %10s %10s %10s %6s\n", "backend", "state",
              "forwarded", "fwd-fail", "health-ok", "health-bad", "recov");
  for (const auto& b : proxy.backend_status())
    std::printf("%-22s %-8s %10llu %10llu %10llu %10llu %6llu\n",
                b.address.c_str(),
                serve::shard::backend_state_name(b.state),
                static_cast<unsigned long long>(b.forwarded),
                static_cast<unsigned long long>(b.forward_failures),
                static_cast<unsigned long long>(b.health_ok),
                static_cast<unsigned long long>(b.health_failed),
                static_cast<unsigned long long>(b.recoveries));
  return 0;
}

int cmd_loadgen(const Args& a) {
  if (a.flag("connect")) return run_remote_loadgen(a);
  // The traffic mix routes by model name — and trace ids (which the
  // per-stage CSV columns need) ride v3 frames — over the wire only.
  reject_options(a, "(local)", {"model", "trace-every", "latency-csv"});

  const std::vector<int64_t> batches =
      parse_int_list("batch-sweep", a.get("batch-sweep", "1,8,16"), 1, 4096);
  const std::vector<int64_t> workers =
      parse_int_list("worker-sweep", a.get("worker-sweep", "1,2"), 1, 1024);
  serve::LoadgenConfig lcfg = loadgen_config_from(a);

  serve::EngineRegistry registry;
  auto engine = resolve_engine(a, registry, "default");
  if (!engine) return usage();

  std::printf("%-8s %-6s %10s %9s %9s %9s %10s\n", "workers", "batch",
              "req/s", "p50 ms", "p95 ms", "p99 ms", "occupancy");
  for (const int64_t w : workers) {
    for (const int64_t b : batches) {
      serve::ServerConfig scfg = server_config_from(a);
      scfg.num_workers = static_cast<int>(w);
      scfg.batcher.max_batch = b;
      serve::InferenceServer server(registry, "default", scfg);
      if (!server.start()) {
        std::fprintf(stderr, "server failed to start\n");
        return 1;
      }
      const serve::LoadgenReport lg =
          serve::run_loadgen(server, engine->config(), lcfg);
      server.shutdown(/*drain=*/true);
      const serve::ServeStats::Report st = server.stats().report();
      std::printf("%-8lld %-6lld %10.1f %9.2f %9.2f %9.2f %10.2f\n",
                  static_cast<long long>(w), static_cast<long long>(b),
                  lg.throughput_rps(), st.p50_ms, st.p95_ms, st.p99_ms,
                  st.mean_batch_occupancy);
    }
  }
  return 0;
}

int cmd_train(const Args& a) {
  const std::string task_name = a.get("task");
  const std::string out = a.get("out");
  if (task_name.empty() || out.empty()) return usage();
  TaskData task = make_named_task(task_name, a.flag("fast"));
  auto model = train_float(task, a.flag("fast"), 7, /*verbose=*/true,
                           /*cache_dir=*/"");
  nn::save_state(*model, out);
  std::printf("float model saved to %s (eval acc %.2f%%)\n", out.c_str(),
              model->accuracy(task.eval));
  return 0;
}

int cmd_quantize(const Args& a) {
  const std::string task_name = a.get("task");
  const std::string model_path = a.get("model");
  const std::string out = a.get("out");
  if (task_name.empty() || model_path.empty() || out.empty()) return usage();
  const bool fast = a.flag("fast");
  TaskData task = make_named_task(task_name, fast);

  Rng rng(1);
  nn::BertModel model(mini_config(task.num_classes), rng);
  if (!nn::load_state(model, model_path)) {
    std::fprintf(stderr, "cannot load float model %s\n", model_path.c_str());
    return 1;
  }

  FqQuantConfig cfg = FqQuantConfig::full();
  cfg.weight_bits = static_cast<int>(int_opt(a, "bits", 4, 2, 8));
  if (a.flag("no-clip")) cfg.clip = quant::ClipMode::kNone;
  if (a.flag("no-softmax-quant")) cfg.quantize_softmax = false;
  if (a.flag("no-ln-quant")) cfg.quantize_layernorm = false;
  if (a.flag("no-scale-quant")) cfg.quantize_scales = false;

  std::printf("QAT fine-tuning (w%d/a%d)...\n", cfg.weight_bits, cfg.act_bits);
  core::FqBertModel engine = quantize_pipeline(model, task, cfg, fast);
  // --mapped writes the FQBERT02 mmap layout (weights 64-byte aligned
  // after the metadata), so serving loads it zero-copy and N server
  // processes share one physical copy of the weight pages.
  const bool ok = a.flag("mapped") ? engine.save_mapped(out)
                                   : engine.save(out);
  if (!ok) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("quantized engine saved to %s%s (eval acc %.2f%%)\n",
              out.c_str(), a.flag("mapped") ? " (mmap layout)" : "",
              engine.accuracy(task.eval));
  return 0;
}

int cmd_eval(const Args& a) {
  const std::string task_name = a.get("task");
  const std::string engine_path = a.get("engine");
  if (task_name.empty() || engine_path.empty()) return usage();
  TaskData task = make_named_task(task_name, a.flag("fast"));
  core::FqBertModel engine = core::FqBertModel::load_any(engine_path);
  std::printf("%s accuracy: %.2f%% (eval), %.2f%% (train)\n",
              task.name.c_str(), engine.accuracy(task.eval),
              engine.accuracy(task.train));
  if (!task.eval_extra.empty())
    std::printf("%s-mismatched accuracy: %.2f%%\n", task.name.c_str(),
                engine.accuracy(task.eval_extra));
  return 0;
}

int cmd_info(const Args& a) {
  const std::string engine_path = a.get("engine");
  if (engine_path.empty()) return usage();
  core::FqBertModel engine = core::FqBertModel::load_any(engine_path);
  const auto& c = engine.config();
  const auto& q = engine.quant_config();
  std::printf("FQ-BERT engine: %s\n", engine_path.c_str());
  std::printf("  model: L=%lld hidden=%lld heads=%lld ffn=%lld vocab=%lld "
              "classes=%lld\n",
              static_cast<long long>(c.num_layers),
              static_cast<long long>(c.hidden),
              static_cast<long long>(c.num_heads),
              static_cast<long long>(c.ffn_dim),
              static_cast<long long>(c.vocab_size),
              static_cast<long long>(c.num_classes));
  std::printf("  quant: w%d/a%d clip=%s scale8=%d softmaxLUT=%d intLN=%d\n",
              q.weight_bits, q.act_bits,
              q.clip == quant::ClipMode::kPercentile ? "percentile" : "none",
              q.quantize_scales, q.quantize_softmax, q.quantize_layernorm);
  const auto size = engine.size_report();
  std::printf("  size: %.1f KB quantized (%.2fx vs float)\n",
              size.quant_bytes / 1024.0, size.compression_ratio());
  for (size_t l = 0; l < engine.encoder_layers().size(); ++l) {
    const auto& layer = engine.encoder_layers()[l];
    std::printf("  layer %zu scales: in=%.3f q=%.3f k=%.3f v=%.3f out=%.3f\n",
                l, layer.in_scale, layer.q_scale, layer.k_scale,
                layer.v_scale, layer.out_scale);
  }
  return 0;
}

int cmd_estimate(const Args& a) {
  accel::FpgaDevice dev = a.get("device", "zcu102") == "zcu111"
                              ? accel::FpgaDevice::zcu111()
                              : accel::FpgaDevice::zcu102();
  accel::AcceleratorConfig cfg;
  cfg.pes_per_pu = static_cast<int>(int_opt(a, "pes", 8, 1, 4096));
  cfg.bim_mults = static_cast<int>(int_opt(a, "mults", 16, 1, 65536));
  const int64_t seq = int_opt(a, "seq", 128, 1, 100000);
  const auto rep = accel::evaluate(cfg, dev, nn::BertConfig::bert_base(2), seq);
  std::printf("accelerator estimate on %s, (N,M)=(%d,%d), seq %lld:\n",
              dev.name.c_str(), cfg.pes_per_pu, cfg.bim_mults,
              static_cast<long long>(seq));
  std::printf("  resources: %lld DSP, %lld BRAM18K, %lld FF, %lld LUT%s\n",
              static_cast<long long>(rep.resources.dsp48),
              static_cast<long long>(rep.resources.bram18k),
              static_cast<long long>(rep.resources.ff),
              static_cast<long long>(rep.resources.lut),
              rep.resources.fits(dev) ? "" : "  [DOES NOT FIT]");
  std::printf("  latency: %.2f ms  power: %.1f W  efficiency: %.2f fps/W\n",
              rep.latency.total_ms, rep.power_w, rep.fps_per_w);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  try {
    if (a.command == "train") return cmd_train(a);
    if (a.command == "quantize") return cmd_quantize(a);
    if (a.command == "eval") return cmd_eval(a);
    if (a.command == "info") return cmd_info(a);
    if (a.command == "estimate") return cmd_estimate(a);
    if (a.command == "serve") return cmd_serve(a);
    if (a.command == "loadgen") return cmd_loadgen(a);
    if (a.command == "admin") return cmd_admin(a);
    if (a.command == "proxy") return cmd_proxy(a);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
