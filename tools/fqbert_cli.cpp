// fqbert_cli — command-line front end for the full FQ-BERT workflow.
//
//   fqbert_cli train    --task sst2|mnli --out model.bin [--fast]
//   fqbert_cli quantize --task sst2|mnli --model model.bin --out fq.bin
//                       [--bits N] [--no-clip] [--no-softmax-quant]
//                       [--no-ln-quant] [--no-scale-quant] [--fast]
//   fqbert_cli eval     --task sst2|mnli --engine fq.bin
//   fqbert_cli info     --engine fq.bin
//   fqbert_cli estimate [--device zcu102|zcu111] [--pes N] [--mults M]
//                       [--seq S]
//   fqbert_cli serve    --engine fq.bin | --task sst2|mnli [--fast]
//                       [--workers N] [--batch B] [--wait-us U]
//                       [--clients C] [--requests R] [--deadline-ms D]
//                       [--seq-mix 12,16,24]
//   fqbert_cli loadgen  same options as serve, plus
//                       [--batch-sweep 1,8,16] [--worker-sweep 1,2,4]
//
// `train` produces a float checkpoint; `quantize` runs QAT fine-tuning,
// calibration and conversion, then saves the deployable integer engine;
// `eval` measures integer-engine accuracy; `info` dumps an engine's
// configuration and size; `estimate` prints accelerator latency /
// resources / power for BERT-base; `serve` runs the dynamic-batching
// server under a closed-loop synthetic client and prints the serving
// report; `loadgen` sweeps batch/worker configurations over the same
// closed-loop client and prints a throughput table.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>

#include "accel/accelerator.h"
#include "core/model_size.h"
#include "pipeline/pipeline.h"
#include "serve/loadgen.h"
#include "serve/server.h"

using namespace fqbert;
using namespace fqbert::pipeline;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> named;
  bool flag(const std::string& name) const { return named.count(name) > 0; }
  std::string get(const std::string& name, const std::string& dflt = "") const {
    auto it = named.find(name);
    return it == named.end() ? dflt : it->second;
  }
};

Args parse(int argc, char** argv) {
  Args a;
  if (argc > 1) a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      a.named[key] = argv[++i];
    } else {
      a.named[key] = "1";
    }
  }
  return a;
}

int usage() {
  std::fprintf(stderr,
               "usage: fqbert_cli <train|quantize|eval|info|estimate|serve|"
               "loadgen> [options]\n"
               "  train    --task sst2|mnli --out model.bin [--fast]\n"
               "  quantize --task sst2|mnli --model model.bin --out fq.bin\n"
               "           [--bits N] [--no-clip] [--no-softmax-quant]\n"
               "           [--no-ln-quant] [--no-scale-quant] [--fast]\n"
               "  eval     --task sst2|mnli --engine fq.bin\n"
               "  info     --engine fq.bin\n"
               "  estimate [--device zcu102|zcu111] [--pes N] [--mults M] "
               "[--seq S]\n"
               "  serve    --engine fq.bin | --task sst2|mnli [--fast]\n"
               "           [--workers N] [--batch B] [--wait-us U]\n"
               "           [--clients C] [--requests R] [--deadline-ms D]\n"
               "           [--seq-mix 12,16,24]\n"
               "  loadgen  serve options plus [--batch-sweep 1,8,16]\n"
               "           [--worker-sweep 1,2,4]\n");
  return 2;
}

std::vector<int64_t> parse_int_list(const std::string& csv) {
  std::vector<int64_t> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > pos) {
      try {
        out.push_back(std::stoll(csv.substr(pos, comma - pos)));
      } catch (const std::exception&) {
        throw std::invalid_argument("not a comma-separated integer list: " +
                                    csv);
      }
    }
    pos = comma + 1;
  }
  return out;
}

/// Resolve the serving engine: --engine loads a file into the registry
/// (loaded once; all workers share the immutable instance); --task
/// trains+quantizes a demo engine in-memory. Returns nullptr (after
/// printing) on failure.
std::shared_ptr<const core::FqBertModel> resolve_engine(
    const Args& a, serve::EngineRegistry& registry, const char* name) {
  const std::string engine_path = a.get("engine");
  if (!engine_path.empty()) {
    if (!registry.register_file(name, engine_path)) {
      std::fprintf(stderr, "cannot load engine %s\n", engine_path.c_str());
      return nullptr;
    }
    return registry.get(name);
  }
  const std::string task_name = a.get("task");
  if (task_name.empty()) return nullptr;
  std::printf("no --engine given: training a %s demo engine (%s mode)...\n",
              task_name.c_str(), a.flag("fast") ? "fast" : "full");
  return build_and_register_engine(registry, name, task_name,
                                   core::FqQuantConfig::full(),
                                   a.flag("fast"));
}

serve::ServerConfig server_config_from(const Args& a) {
  serve::ServerConfig cfg;
  cfg.num_workers = std::stoi(a.get("workers", "2"));
  cfg.batcher.max_batch = std::stoll(a.get("batch", "8"));
  cfg.batcher.max_wait =
      serve::Micros(std::stoll(a.get("wait-us", "2000")));
  cfg.batcher.bucket_granularity = std::stoll(a.get("granularity", "8"));
  return cfg;
}

serve::LoadgenConfig loadgen_config_from(const Args& a,
                                         const nn::BertConfig& model_cfg) {
  serve::LoadgenConfig cfg;
  cfg.num_clients = std::stoi(a.get("clients", "8"));
  cfg.requests_per_client = std::stoi(a.get("requests", "200"));
  cfg.seq_len_mix = parse_int_list(a.get("seq-mix", "12,16,24"));
  for (int64_t& s : cfg.seq_len_mix)
    s = std::min(s, model_cfg.max_seq_len);
  const long long deadline_ms = std::stoll(a.get("deadline-ms", "0"));
  if (deadline_ms > 0)
    cfg.deadline_budget = serve::Micros(deadline_ms * 1000);
  return cfg;
}

void print_serve_report(const serve::LoadgenReport& lg,
                        const serve::ServeStats::Report& st) {
  std::printf("loadgen : %llu sent, %llu ok, %llu rejected, %llu timed out, "
              "%llu failed in %.2fs\n",
              static_cast<unsigned long long>(lg.sent),
              static_cast<unsigned long long>(lg.ok),
              static_cast<unsigned long long>(lg.rejected),
              static_cast<unsigned long long>(lg.timed_out),
              static_cast<unsigned long long>(lg.failed), lg.wall_s);
  std::printf("server  : %.1f req/s, batch occupancy %.2f over %llu "
              "batches\n",
              lg.throughput_rps(), st.mean_batch_occupancy,
              static_cast<unsigned long long>(st.batches));
  std::printf("latency : p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, max %.2f "
              "ms (queue %.2f ms mean; window of %llu samples)\n",
              st.p50_ms, st.p95_ms, st.p99_ms, st.max_ms, st.mean_queue_ms,
              static_cast<unsigned long long>(st.latency_samples));
  std::printf("balance : admitted %llu = completed %llu + timed out %llu + "
              "failed %llu  [%s]\n",
              static_cast<unsigned long long>(st.admitted),
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(st.timed_out),
              static_cast<unsigned long long>(st.failed),
              st.accounting_balances() ? "OK" : "MISMATCH");
}

int cmd_serve(const Args& a) {
  serve::EngineRegistry registry;
  auto engine = resolve_engine(a, registry, "default");
  if (!engine) return usage();

  serve::ServerConfig scfg = server_config_from(a);
  serve::LoadgenConfig lcfg = loadgen_config_from(a, engine->config());

  std::printf("serving '%s': %d workers, max batch %lld, max wait %lld us, "
              "%d closed-loop clients x %d requests (hw threads: %u)\n",
              a.get("engine", a.get("task")).c_str(), scfg.num_workers,
              static_cast<long long>(scfg.batcher.max_batch),
              static_cast<long long>(scfg.batcher.max_wait.count()),
              lcfg.num_clients, lcfg.requests_per_client,
              std::thread::hardware_concurrency());

  serve::InferenceServer server(registry, "default", scfg);
  if (!server.start()) {
    std::fprintf(stderr, "server failed to start\n");
    return 1;
  }
  const serve::LoadgenReport lg =
      serve::run_loadgen(server, engine->config(), lcfg);
  server.shutdown(/*drain=*/true);
  print_serve_report(lg, server.stats().report());
  return 0;
}

int cmd_loadgen(const Args& a) {
  serve::EngineRegistry registry;
  auto engine = resolve_engine(a, registry, "default");
  if (!engine) return usage();

  const std::vector<int64_t> batches =
      parse_int_list(a.get("batch-sweep", "1,8,16"));
  const std::vector<int64_t> workers =
      parse_int_list(a.get("worker-sweep", "1,2"));
  serve::LoadgenConfig lcfg = loadgen_config_from(a, engine->config());

  std::printf("%-8s %-6s %10s %9s %9s %9s %10s\n", "workers", "batch",
              "req/s", "p50 ms", "p95 ms", "p99 ms", "occupancy");
  for (const int64_t w : workers) {
    for (const int64_t b : batches) {
      serve::ServerConfig scfg = server_config_from(a);
      scfg.num_workers = static_cast<int>(w);
      scfg.batcher.max_batch = b;
      serve::InferenceServer server(registry, "default", scfg);
      if (!server.start()) {
        std::fprintf(stderr, "server failed to start\n");
        return 1;
      }
      const serve::LoadgenReport lg =
          serve::run_loadgen(server, engine->config(), lcfg);
      server.shutdown(/*drain=*/true);
      const serve::ServeStats::Report st = server.stats().report();
      std::printf("%-8lld %-6lld %10.1f %9.2f %9.2f %9.2f %10.2f\n",
                  static_cast<long long>(w), static_cast<long long>(b),
                  lg.throughput_rps(), st.p50_ms, st.p95_ms, st.p99_ms,
                  st.mean_batch_occupancy);
    }
  }
  return 0;
}

int cmd_train(const Args& a) {
  const std::string task_name = a.get("task");
  const std::string out = a.get("out");
  if (task_name.empty() || out.empty()) return usage();
  TaskData task = make_named_task(task_name, a.flag("fast"));
  auto model = train_float(task, a.flag("fast"), 7, /*verbose=*/true,
                           /*cache_dir=*/"");
  nn::save_state(*model, out);
  std::printf("float model saved to %s (eval acc %.2f%%)\n", out.c_str(),
              model->accuracy(task.eval));
  return 0;
}

int cmd_quantize(const Args& a) {
  const std::string task_name = a.get("task");
  const std::string model_path = a.get("model");
  const std::string out = a.get("out");
  if (task_name.empty() || model_path.empty() || out.empty()) return usage();
  const bool fast = a.flag("fast");
  TaskData task = make_named_task(task_name, fast);

  Rng rng(1);
  nn::BertModel model(mini_config(task.num_classes), rng);
  if (!nn::load_state(model, model_path)) {
    std::fprintf(stderr, "cannot load float model %s\n", model_path.c_str());
    return 1;
  }

  FqQuantConfig cfg = FqQuantConfig::full();
  cfg.weight_bits = std::stoi(a.get("bits", "4"));
  if (a.flag("no-clip")) cfg.clip = quant::ClipMode::kNone;
  if (a.flag("no-softmax-quant")) cfg.quantize_softmax = false;
  if (a.flag("no-ln-quant")) cfg.quantize_layernorm = false;
  if (a.flag("no-scale-quant")) cfg.quantize_scales = false;

  std::printf("QAT fine-tuning (w%d/a%d)...\n", cfg.weight_bits, cfg.act_bits);
  core::FqBertModel engine = quantize_pipeline(model, task, cfg, fast);
  if (!engine.save(out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("quantized engine saved to %s (eval acc %.2f%%)\n", out.c_str(),
              engine.accuracy(task.eval));
  return 0;
}

int cmd_eval(const Args& a) {
  const std::string task_name = a.get("task");
  const std::string engine_path = a.get("engine");
  if (task_name.empty() || engine_path.empty()) return usage();
  TaskData task = make_named_task(task_name, a.flag("fast"));
  core::FqBertModel engine = core::FqBertModel::load(engine_path);
  std::printf("%s accuracy: %.2f%% (eval), %.2f%% (train)\n",
              task.name.c_str(), engine.accuracy(task.eval),
              engine.accuracy(task.train));
  if (!task.eval_extra.empty())
    std::printf("%s-mismatched accuracy: %.2f%%\n", task.name.c_str(),
                engine.accuracy(task.eval_extra));
  return 0;
}

int cmd_info(const Args& a) {
  const std::string engine_path = a.get("engine");
  if (engine_path.empty()) return usage();
  core::FqBertModel engine = core::FqBertModel::load(engine_path);
  const auto& c = engine.config();
  const auto& q = engine.quant_config();
  std::printf("FQ-BERT engine: %s\n", engine_path.c_str());
  std::printf("  model: L=%lld hidden=%lld heads=%lld ffn=%lld vocab=%lld "
              "classes=%lld\n",
              static_cast<long long>(c.num_layers),
              static_cast<long long>(c.hidden),
              static_cast<long long>(c.num_heads),
              static_cast<long long>(c.ffn_dim),
              static_cast<long long>(c.vocab_size),
              static_cast<long long>(c.num_classes));
  std::printf("  quant: w%d/a%d clip=%s scale8=%d softmaxLUT=%d intLN=%d\n",
              q.weight_bits, q.act_bits,
              q.clip == quant::ClipMode::kPercentile ? "percentile" : "none",
              q.quantize_scales, q.quantize_softmax, q.quantize_layernorm);
  const auto size = engine.size_report();
  std::printf("  size: %.1f KB quantized (%.2fx vs float)\n",
              size.quant_bytes / 1024.0, size.compression_ratio());
  for (size_t l = 0; l < engine.encoder_layers().size(); ++l) {
    const auto& layer = engine.encoder_layers()[l];
    std::printf("  layer %zu scales: in=%.3f q=%.3f k=%.3f v=%.3f out=%.3f\n",
                l, layer.in_scale, layer.q_scale, layer.k_scale,
                layer.v_scale, layer.out_scale);
  }
  return 0;
}

int cmd_estimate(const Args& a) {
  accel::FpgaDevice dev = a.get("device", "zcu102") == "zcu111"
                              ? accel::FpgaDevice::zcu111()
                              : accel::FpgaDevice::zcu102();
  accel::AcceleratorConfig cfg;
  cfg.pes_per_pu = std::stoi(a.get("pes", "8"));
  cfg.bim_mults = std::stoi(a.get("mults", "16"));
  const int64_t seq = std::stoll(a.get("seq", "128"));
  const auto rep = accel::evaluate(cfg, dev, nn::BertConfig::bert_base(2), seq);
  std::printf("accelerator estimate on %s, (N,M)=(%d,%d), seq %lld:\n",
              dev.name.c_str(), cfg.pes_per_pu, cfg.bim_mults,
              static_cast<long long>(seq));
  std::printf("  resources: %lld DSP, %lld BRAM18K, %lld FF, %lld LUT%s\n",
              static_cast<long long>(rep.resources.dsp48),
              static_cast<long long>(rep.resources.bram18k),
              static_cast<long long>(rep.resources.ff),
              static_cast<long long>(rep.resources.lut),
              rep.resources.fits(dev) ? "" : "  [DOES NOT FIT]");
  std::printf("  latency: %.2f ms  power: %.1f W  efficiency: %.2f fps/W\n",
              rep.latency.total_ms, rep.power_w, rep.fps_per_w);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  try {
    if (a.command == "train") return cmd_train(a);
    if (a.command == "quantize") return cmd_quantize(a);
    if (a.command == "eval") return cmd_eval(a);
    if (a.command == "info") return cmd_info(a);
    if (a.command == "estimate") return cmd_estimate(a);
    if (a.command == "serve") return cmd_serve(a);
    if (a.command == "loadgen") return cmd_loadgen(a);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
