// Frame decoder fuzz: a seeded, deterministic corpus of valid frames of
// every type and BOTH protocol versions is mutated (byte flips,
// truncations, extensions, length-field scribbles) and fed through
// exactly the decode path the server and client run — decode_header
// followed by the type-appropriate payload decoder. The property under
// test is memory safety and strictness, not outcomes: a decoder either
// accepts a byte-identical round trip or rejects, and never reads out
// of bounds (this suite runs under ASan+UBSan in CI). 1000 mutated
// frames plus pure-random blobs per run, all from one fixed seed.
#include <gtest/gtest.h>

#include <cstring>

#include "serve/net/frame.h"
#include "tensor/rng.h"

namespace fqbert::serve::net {
namespace {

/// Run the full server/client-side decode on one byte buffer: header
/// first, then the payload decoder selected by the decoded type and
/// version. Returns true when a complete frame decoded cleanly.
bool decode_anything(const std::vector<uint8_t>& bytes) {
  FrameHeader hdr;
  const DecodeStatus st = decode_header(bytes.data(), bytes.size(), &hdr);
  if (st != DecodeStatus::kFrame) return false;
  if (bytes.size() < kHeaderSize + hdr.payload_len) return false;
  const uint8_t* payload = bytes.data() + kHeaderSize;
  const size_t len = hdr.payload_len;
  switch (hdr.type) {
    case FrameType::kInfoRequest: {
      std::string model;
      return decode_info_request(payload, len, hdr.version, &model);
    }
    case FrameType::kInfoResponse: {
      WireInfo info;
      return decode_info_response(payload, len, hdr.version, &info);
    }
    case FrameType::kServeRequest: {
      WireRequest req;
      return decode_serve_request(payload, len, hdr.version, &req);
    }
    case FrameType::kServeResponse: {
      WireResponse resp;
      return decode_serve_response(payload, len, &resp);
    }
    case FrameType::kLoadModel: {
      std::string name, path;
      return decode_load_model(payload, len, &name, &path);
    }
    case FrameType::kUnloadModel: {
      std::string name;
      return decode_unload_model(payload, len, &name);
    }
    case FrameType::kListModels:
      return len == 0;
    case FrameType::kStatsRequest: {
      std::string name;
      return decode_stats_request(payload, len, &name);
    }
    case FrameType::kAdminResponse: {
      bool ok = false;
      std::string message;
      return decode_admin_response(payload, len, &ok, &message);
    }
    case FrameType::kModelList: {
      std::vector<std::string> names;
      return decode_model_list(payload, len, &names);
    }
    case FrameType::kStatsResponse: {
      WireStats stats;
      return decode_stats_response(payload, len, &stats);
    }
  }
  return false;
}

/// Every frame type under both protocol versions (where a v1 layout
/// exists), with varied payload sizes.
std::vector<std::vector<uint8_t>> build_corpus(Rng& rng) {
  std::vector<std::vector<uint8_t>> corpus;
  auto fresh = [&]() -> std::vector<uint8_t>& {
    corpus.emplace_back();
    return corpus.back();
  };

  nn::BertConfig cfg;
  cfg.vocab_size = 128;
  cfg.hidden = 16;
  cfg.num_layers = 2;
  cfg.num_heads = 2;
  cfg.ffn_dim = 32;
  cfg.max_seq_len = 32;
  cfg.num_classes = 2;

  for (const uint8_t version : {uint8_t{1}, uint8_t{2}}) {
    encode_info_request(version == 2 ? "sst2" : "", fresh(), version);
    WireInfo info;
    info.model = version == 2 ? "sst2" : "";
    info.config = cfg;
    encode_info_response(info, fresh(), version);
    for (const int tokens : {1, 7, 64}) {
      WireRequest req;
      req.correlation_id = rng.randint(0, 1 << 30);
      req.deadline_budget_us = rng.randint(0, 1'000'000);
      req.model = version == 2 ? "model-name" : "";
      for (int i = 0; i < tokens; ++i) {
        req.example.tokens.push_back(
            static_cast<int32_t>(rng.randint(0, 127)));
        req.example.segments.push_back(0);
      }
      encode_serve_request(req, fresh(), version);
    }
    WireResponse resp;
    resp.correlation_id = rng.randint(0, 1 << 30);
    resp.response.status = RequestStatus::kOk;
    resp.response.predicted = 1;
    resp.response.queue_us = 42;
    resp.response.latency_us = 99;
    resp.response.batch_size = 4;
    for (int i = 0; i < 3; ++i)
      resp.response.logits.push_back(0.5f * static_cast<float>(i));
    encode_serve_response(resp, fresh(), version);
  }
  encode_load_model("mnli", "/models/mnli-int4.bin", fresh());
  encode_unload_model("mnli", fresh());
  encode_list_models(fresh());
  encode_stats_request("sst2", fresh());
  encode_admin_response(true, "loaded 'mnli'", fresh());
  encode_admin_response(false, "no such model", fresh());
  encode_model_list({"sst2", "mnli", "qqp"}, fresh());
  WireStats stats;
  stats.model = "sst2";
  stats.report.admitted = 100;
  stats.report.completed = 99;
  stats.report.timed_out = 1;
  stats.report.p50_ms = 2.5;
  stats.report.p95_ms = 7.25;
  encode_stats_response(stats, fresh());
  return corpus;
}

TEST(FrameFuzz, CorpusRoundTripsUnmutated) {
  Rng rng(2024);
  for (const auto& frame : build_corpus(rng))
    EXPECT_TRUE(decode_anything(frame));
}

TEST(FrameFuzz, MutatedFramesNeverCrashOrOverread) {
  Rng rng(424242);  // fixed seed: the run is fully deterministic
  const std::vector<std::vector<uint8_t>> corpus = build_corpus(rng);

  constexpr int kMutations = 1000;
  int accepted = 0, rejected = 0;
  for (int iter = 0; iter < kMutations; ++iter) {
    std::vector<uint8_t> frame =
        corpus[static_cast<size_t>(rng.randint(
            0, static_cast<int64_t>(corpus.size()) - 1))];
    // 1..8 byte scribbles anywhere in the frame (header fields, string
    // lengths, counts, and array bodies all get hit over 1000 runs).
    const int64_t flips = rng.randint(1, 8);
    for (int64_t f = 0; f < flips && !frame.empty(); ++f) {
      const size_t pos = static_cast<size_t>(
          rng.randint(0, static_cast<int64_t>(frame.size()) - 1));
      frame[pos] = static_cast<uint8_t>(rng.randint(0, 255));
    }
    // Sometimes also truncate or extend, so declared lengths disagree
    // with delivered bytes.
    switch (rng.randint(0, 3)) {
      case 0:
        frame.resize(static_cast<size_t>(
            rng.randint(0, static_cast<int64_t>(frame.size()))));
        break;
      case 1:
        for (int64_t e = rng.randint(1, 16); e > 0; --e)
          frame.push_back(static_cast<uint8_t>(rng.randint(0, 255)));
        break;
      default:
        break;
    }
    // Must neither crash nor over-read (ASan/UBSan enforce); outcome is
    // free to be accept (mutation hit a don't-care byte) or reject.
    if (decode_anything(frame))
      ++accepted;
    else
      ++rejected;
  }
  // Sanity on the strictness: the vast majority of random scribbles
  // must be rejected (a codec that accepts most corrupted frames is not
  // validating anything).
  EXPECT_GT(rejected, kMutations / 2)
      << "accepted " << accepted << " of " << kMutations;
}

TEST(FrameFuzz, PureRandomBlobsNeverDecode) {
  Rng rng(777);
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<uint8_t> blob(static_cast<size_t>(rng.randint(0, 256)));
    for (auto& b : blob) b = static_cast<uint8_t>(rng.randint(0, 255));
    // A 4-byte magic + version/type/reserved checks make an accidental
    // valid header astronomically unlikely; assert it outright so a
    // future loosening of decode_header fails loudly here.
    EXPECT_FALSE(decode_anything(blob));
  }
}

TEST(FrameFuzz, HeaderFieldScribblesAreHandledByteExactly) {
  // Every single-byte value in every header position, against a valid
  // v2 serve request: decode must return kFrame / kNeedMore / kError
  // deterministically and payload decoding must stay in bounds.
  Rng rng(11);
  WireRequest req;
  req.correlation_id = 5;
  req.model = "m";
  req.example.tokens = {1, 2, 3};
  req.example.segments = {0, 0, 0};
  std::vector<uint8_t> frame;
  encode_serve_request(req, frame);
  ASSERT_TRUE(decode_anything(frame));
  for (size_t pos = 0; pos < kHeaderSize; ++pos) {
    for (int value = 0; value < 256; ++value) {
      std::vector<uint8_t> mutated = frame;
      mutated[pos] = static_cast<uint8_t>(value);
      (void)decode_anything(mutated);  // bounds-safety is the assertion
    }
  }
}

}  // namespace
}  // namespace fqbert::serve::net
