// Frame decoder fuzz: a seeded, deterministic corpus of valid frames of
// every type and ALL protocol versions is mutated (byte flips,
// truncations, extensions, length-field scribbles) and fed through
// exactly the decode path the server and client run — decode_header
// followed by the type-appropriate payload decoder. The property under
// test is memory safety and strictness, not outcomes: a decoder either
// accepts a byte-identical round trip or rejects, and never reads out
// of bounds (this suite runs under ASan+UBSan in CI). 1000 mutated
// frames plus pure-random blobs per run, all from one fixed seed.
#include <gtest/gtest.h>

#include <cstring>

#include "serve/flight_recorder.h"
#include "serve/net/frame.h"
#include "tensor/rng.h"

namespace fqbert::serve::net {
namespace {

/// Run the full server/client-side decode on one byte buffer: header
/// first, then the payload decoder selected by the decoded type and
/// version. Returns true when a complete frame decoded cleanly.
bool decode_anything(const std::vector<uint8_t>& bytes) {
  FrameHeader hdr;
  const DecodeStatus st = decode_header(bytes.data(), bytes.size(), &hdr);
  if (st != DecodeStatus::kFrame) return false;
  if (bytes.size() < kHeaderSize + hdr.payload_len) return false;
  const uint8_t* payload = bytes.data() + kHeaderSize;
  const size_t len = hdr.payload_len;
  switch (hdr.type) {
    case FrameType::kInfoRequest: {
      std::string model;
      return decode_info_request(payload, len, hdr.version, &model);
    }
    case FrameType::kInfoResponse: {
      WireInfo info;
      return decode_info_response(payload, len, hdr.version, &info);
    }
    case FrameType::kServeRequest: {
      WireRequest req;
      return decode_serve_request(payload, len, hdr.version, &req);
    }
    case FrameType::kServeResponse: {
      // The proxy-side splitter runs on the same raw bytes as the
      // client-side decoder; fuzz both (they must agree on validity
      // for v3+ frames, and the splitter must be equally bounds-safe).
      WireResponse resp;
      const bool decoded =
          decode_serve_response(payload, len, hdr.version, &resp);
      if (hdr.version >= 3) {
        size_t trace_start = 0;
        uint64_t trace_id = 0;
        std::vector<TraceEvent> stages;
        uint8_t tier = 0;
        const bool split = split_serve_response_trace(
            payload, len, hdr.version, &trace_start, &trace_id, &stages,
            &tier);
        EXPECT_EQ(decoded, split);
      }
      return decoded;
    }
    case FrameType::kLoadModel: {
      std::string name, path;
      uint8_t tier = 0;
      return decode_load_model(payload, len, hdr.version, &name, &path,
                               &tier);
    }
    case FrameType::kUnloadModel: {
      std::string name;
      uint8_t tier = 0;
      return decode_unload_model(payload, len, hdr.version, &name, &tier);
    }
    case FrameType::kListModels:
      return len == 0;
    case FrameType::kStatsRequest: {
      std::string name;
      uint8_t tier = 0;
      return decode_stats_request(payload, len, hdr.version, &name, &tier);
    }
    case FrameType::kAdminResponse: {
      bool ok = false;
      std::string message;
      return decode_admin_response(payload, len, &ok, &message);
    }
    case FrameType::kModelList: {
      std::vector<WireModelEntry> entries;
      return decode_model_list(payload, len, hdr.version, &entries);
    }
    case FrameType::kStatsResponse: {
      WireStats stats;
      return decode_stats_response(payload, len, hdr.version, &stats);
    }
    case FrameType::kDumpEvents: {
      uint64_t since_ns = 0;
      uint32_t max_events = 0;
      return decode_dump_events(payload, len, &since_ns, &max_events);
    }
    case FrameType::kEventDump: {
      std::vector<WireEvent> events;
      return decode_event_dump(payload, len, &events);
    }
    case FrameType::kAddBackend: {
      std::string host;
      uint16_t port = 0;
      std::vector<WireModelEntry> models;
      return decode_add_backend(payload, len, &host, &port, &models);
    }
    case FrameType::kRemoveBackend: {
      std::string address;
      return decode_remove_backend(payload, len, &address);
    }
    case FrameType::kMoveModel: {
      std::string model, from, to, path;
      uint8_t tier = 0;
      return decode_move_model(payload, len, &model, &tier, &from, &to,
                               &path);
    }
    case FrameType::kGetPlacement:
      return decode_get_placement(payload, len);
    case FrameType::kPlacement: {
      WirePlacement placement;
      return decode_placement(payload, len, &placement);
    }
  }
  return false;
}

/// Every frame type under both protocol versions (where a v1 layout
/// exists), with varied payload sizes.
std::vector<std::vector<uint8_t>> build_corpus(Rng& rng) {
  std::vector<std::vector<uint8_t>> corpus;
  auto fresh = [&]() -> std::vector<uint8_t>& {
    corpus.emplace_back();
    return corpus.back();
  };

  nn::BertConfig cfg;
  cfg.vocab_size = 128;
  cfg.hidden = 16;
  cfg.num_layers = 2;
  cfg.num_heads = 2;
  cfg.ffn_dim = 32;
  cfg.max_seq_len = 32;
  cfg.num_classes = 2;

  for (const uint8_t version : {uint8_t{1}, uint8_t{2}, uint8_t{3},
                                uint8_t{4}}) {
    encode_info_request(version >= 2 ? "sst2" : "", fresh(), version,
                        version >= 4 ? uint8_t{4} : uint8_t{0});
    WireInfo info;
    info.model = version >= 2 ? "sst2" : "";
    info.tier = version >= 4 ? 8 : 0;
    info.config = cfg;
    encode_info_response(info, fresh(), version);
    for (const int tokens : {1, 7, 64}) {
      WireRequest req;
      req.correlation_id = rng.randint(0, 1 << 30);
      req.deadline_budget_us = rng.randint(0, 1'000'000);
      req.trace_id =
          version >= 3 ? static_cast<uint64_t>(rng.randint(1, 1 << 30)) : 0;
      req.tier = version >= 4 ? uint8_t{4} : uint8_t{0};
      req.model = version >= 2 ? "model-name" : "";
      for (int i = 0; i < tokens; ++i) {
        req.example.tokens.push_back(
            static_cast<int32_t>(rng.randint(0, 127)));
        req.example.segments.push_back(0);
      }
      encode_serve_request(req, fresh(), version);
    }
    WireResponse resp;
    resp.correlation_id = rng.randint(0, 1 << 30);
    resp.response.status = RequestStatus::kOk;
    resp.response.predicted = 1;
    resp.response.queue_us = 42;
    resp.response.latency_us = 99;
    resp.response.batch_size = 4;
    resp.response.tier = version >= 4 ? 4 : 0;
    for (int i = 0; i < 3; ++i)
      resp.response.logits.push_back(0.5f * static_cast<float>(i));
    if (version >= 3) {
      // Both flavors: an untraced v3+ response (empty section) and a
      // fully stamped proxy-spliced timeline.
      encode_serve_response(resp, fresh(), version);
      resp.response.trace_id = static_cast<uint64_t>(rng.randint(1, 1 << 30));
      resp.response.trace = {{TraceStage::kProxyReceived, 0},
                             {TraceStage::kProxyForward, 12},
                             {TraceStage::kProxyRetry, 900},
                             {TraceStage::kAdmitted, 910},
                             {TraceStage::kBatchFormed, 1450},
                             {TraceStage::kWorkerStart, 1500},
                             {TraceStage::kWorkerEnd, 3200},
                             {TraceStage::kResponded, 3250},
                             {TraceStage::kProxyResponse, 3400}};
    }
    encode_serve_response(resp, fresh(), version);
  }
  // Control frames: the pre-v4 layout (no tier suffix) and the v4 one,
  // including a derive-only LOAD (empty path + explicit tier).
  encode_load_model("mnli", "/models/mnli-int4.bin", fresh(),
                    /*version=*/3);
  encode_load_model("mnli", "/models/mnli-int4.bin", fresh(),
                    /*version=*/4, /*tier=*/4);
  encode_load_model("mnli", "", fresh(), /*version=*/4, /*tier=*/4);
  encode_unload_model("mnli", fresh(), /*version=*/3);
  encode_unload_model("mnli", fresh(), /*version=*/4, /*tier=*/4);
  encode_list_models(fresh());
  encode_stats_request("sst2", fresh(), /*version=*/3);
  encode_stats_request("sst2", fresh(), /*version=*/4, /*tier=*/8);
  encode_admin_response(true, "loaded 'mnli'", fresh());
  encode_admin_response(false, "no such model", fresh());
  encode_model_list({{"sst2", 0}, {"mnli", 0}, {"qqp", 0}}, fresh(),
                    /*version=*/3);
  encode_model_list({{"sst2", 8}, {"sst2", 4}, {"qqp", 8}}, fresh(),
                    /*version=*/4);
  WireStats stats;
  stats.model = "sst2";
  stats.report.admitted = 100;
  stats.report.completed = 99;
  stats.report.timed_out = 1;
  stats.report.p50_ms = 2.5;
  stats.report.p95_ms = 7.25;
  encode_stats_response(stats, fresh(), /*version=*/2);
  // v3+ carries the quantile sketch; populate real buckets so mutations
  // hit the bucket count, indices, alpha and zero-count fields.
  for (int i = 0; i < 200; ++i)
    stats.report.latency_sketch.record(rng.randint(1, 5'000'000));
  stats.report.p999_ms = stats.report.latency_sketch.quantile_ms(0.999);
  encode_stats_response(stats, fresh(), /*version=*/3);
  stats.tier = 4;  // v4: per-tier stats rows
  encode_stats_response(stats, fresh(), /*version=*/4);
  // Flight-recorder dump pair: requests with and without a filter, a
  // populated journal dump and the empty-journal answer.
  encode_dump_events(0, 0, fresh(), /*version=*/2);
  encode_dump_events(123'456'789, 256, fresh(), /*version=*/4);
  std::vector<WireEvent> events;
  for (uint32_t i = 0; i < 5; ++i) {
    WireEvent ev;
    ev.t_ns = 1'000'000ull * (i + 1);
    ev.trace_id = i;
    ev.type = static_cast<uint8_t>(i % (kLastFlightEventType + 1));
    ev.tier = i % 2 ? 4 : 0;
    ev.detail = static_cast<uint16_t>(i);
    ev.a = i;
    ev.b = 7ull * i;
    ev.tag = "lane-" + std::to_string(i);
    events.push_back(std::move(ev));
  }
  encode_event_dump(events, fresh(), /*version=*/4);
  encode_event_dump({}, fresh(), /*version=*/2);
  // Proxy-admin plane (v5): membership mutations and both placement
  // shapes (explicit and consistent-hash, healthy and degraded states).
  encode_add_backend("10.0.0.9", 9000, {{"sst2", 0}, {"mnli", 4}}, fresh());
  encode_remove_backend("10.0.0.9:9000", fresh());
  encode_move_model("mnli", 4, "10.0.0.1:9000", "10.0.0.2:9000",
                    "/models/mnli-int4.bin", fresh());
  encode_move_model("mnli", 0, "10.0.0.1:9000", "10.0.0.2:9000", "",
                    fresh());
  encode_get_placement(fresh());
  WirePlacement placement;
  placement.epoch = 7;
  placement.policy = 1;
  placement.default_model = "sst2";
  placement.backends.push_back(
      {"10.0.0.1:9000", 0, {{"sst2", 0}, {"mnli", 8}}});
  placement.backends.push_back({"10.0.0.2:9000", 2, {{"mnli", 4}}});
  encode_placement(placement, fresh());
  return corpus;
}

TEST(FrameFuzz, CorpusRoundTripsUnmutated) {
  Rng rng(2024);
  for (const auto& frame : build_corpus(rng))
    EXPECT_TRUE(decode_anything(frame));
}

TEST(FrameFuzz, MutatedFramesNeverCrashOrOverread) {
  Rng rng(424242);  // fixed seed: the run is fully deterministic
  const std::vector<std::vector<uint8_t>> corpus = build_corpus(rng);

  constexpr int kMutations = 1000;
  int accepted = 0, rejected = 0;
  for (int iter = 0; iter < kMutations; ++iter) {
    std::vector<uint8_t> frame =
        corpus[static_cast<size_t>(rng.randint(
            0, static_cast<int64_t>(corpus.size()) - 1))];
    // 1..8 byte scribbles anywhere in the frame (header fields, string
    // lengths, counts, and array bodies all get hit over 1000 runs).
    const int64_t flips = rng.randint(1, 8);
    for (int64_t f = 0; f < flips && !frame.empty(); ++f) {
      const size_t pos = static_cast<size_t>(
          rng.randint(0, static_cast<int64_t>(frame.size()) - 1));
      frame[pos] = static_cast<uint8_t>(rng.randint(0, 255));
    }
    // Sometimes also truncate or extend, so declared lengths disagree
    // with delivered bytes.
    switch (rng.randint(0, 3)) {
      case 0:
        frame.resize(static_cast<size_t>(
            rng.randint(0, static_cast<int64_t>(frame.size()))));
        break;
      case 1:
        for (int64_t e = rng.randint(1, 16); e > 0; --e)
          frame.push_back(static_cast<uint8_t>(rng.randint(0, 255)));
        break;
      default:
        break;
    }
    // Must neither crash nor over-read (ASan/UBSan enforce); outcome is
    // free to be accept (mutation hit a don't-care byte) or reject.
    if (decode_anything(frame))
      ++accepted;
    else
      ++rejected;
  }
  // Sanity on the strictness: the vast majority of random scribbles
  // must be rejected (a codec that accepts most corrupted frames is not
  // validating anything).
  EXPECT_GT(rejected, kMutations / 2)
      << "accepted " << accepted << " of " << kMutations;
}

TEST(FrameFuzz, PureRandomBlobsNeverDecode) {
  Rng rng(777);
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<uint8_t> blob(static_cast<size_t>(rng.randint(0, 256)));
    for (auto& b : blob) b = static_cast<uint8_t>(rng.randint(0, 255));
    // A 4-byte magic + version/type/reserved checks make an accidental
    // valid header astronomically unlikely; assert it outright so a
    // future loosening of decode_header fails loudly here.
    EXPECT_FALSE(decode_anything(blob));
  }
}

TEST(FrameFuzz, HeaderFieldScribblesAreHandledByteExactly) {
  // Every single-byte value in every header position, against a valid
  // default-version (v4, trace- and tier-carrying) serve request:
  // decode must return kFrame / kNeedMore / kError deterministically
  // and payload decoding must stay in bounds. The version-byte sweep in
  // particular re-reads the v4 payload with v1–v3 offsets — exactly the
  // confusion a hostile client can cause — and must merely reject.
  Rng rng(11);
  WireRequest req;
  req.correlation_id = 5;
  req.trace_id = 77;
  req.tier = 4;
  req.model = "m";
  req.example.tokens = {1, 2, 3};
  req.example.segments = {0, 0, 0};
  std::vector<uint8_t> frame;
  encode_serve_request(req, frame);
  ASSERT_TRUE(decode_anything(frame));
  for (size_t pos = 0; pos < kHeaderSize; ++pos) {
    for (int value = 0; value < 256; ++value) {
      std::vector<uint8_t> mutated = frame;
      mutated[pos] = static_cast<uint8_t>(value);
      (void)decode_anything(mutated);  // bounds-safety is the assertion
    }
  }
}

TEST(FrameFuzz, TraceSectionScribblesStayInBounds) {
  // Same byte-exact sweep over the TRACE SECTION (and, in v4, the
  // trailing resolved-tier byte) of a serve response: stage count,
  // stage codes, timestamps and the tier each get every value, and the
  // decoder + splitter must agree and stay in bounds.
  WireResponse resp;
  resp.correlation_id = 9;
  resp.response.status = RequestStatus::kOk;
  resp.response.logits = {0.1f, 0.9f};
  resp.response.trace_id = 4242;
  resp.response.tier = 8;
  resp.response.trace = {{TraceStage::kAdmitted, 0},
                         {TraceStage::kWorkerEnd, 1500}};
  std::vector<uint8_t> frame;
  encode_serve_response(resp, frame);
  ASSERT_TRUE(decode_anything(frame));
  // logits start at payload offset 37; the trace section follows them.
  const size_t trace_begin =
      kHeaderSize + 37 + 4 * resp.response.logits.size();
  ASSERT_LT(trace_begin, frame.size());
  for (size_t pos = trace_begin; pos < frame.size(); ++pos) {
    for (int value = 0; value < 256; ++value) {
      std::vector<uint8_t> mutated = frame;
      mutated[pos] = static_cast<uint8_t>(value);
      (void)decode_anything(mutated);  // bounds-safety is the assertion
    }
  }
}

TEST(FrameFuzz, HostileTierValuesAreRejected) {
  // The v4 serve-request tier byte sits right after the trace id
  // (payload offset 24). Sweep it through every value: only 0 (default
  // tier) and the weight bit-widths 2..8 may decode; 1 and 9..255 are
  // hostile and must be rejected by decoder and proxy-side peek alike.
  WireRequest req;
  req.correlation_id = 5;
  req.trace_id = 77;
  req.tier = 4;
  req.model = "m";
  req.example.tokens = {1, 2, 3};
  req.example.segments = {0, 0, 0};
  std::vector<uint8_t> frame;
  encode_serve_request(req, frame);
  constexpr size_t kTierPos = kHeaderSize + 24;
  ASSERT_EQ(frame[kTierPos], 4u);
  for (int value = 0; value < 256; ++value) {
    std::vector<uint8_t> mutated = frame;
    mutated[kTierPos] = static_cast<uint8_t>(value);
    const bool valid = wire_tier_valid(static_cast<uint8_t>(value));
    EXPECT_EQ(valid, value == 0 || (value >= 2 && value <= 8));
    EXPECT_EQ(decode_anything(mutated), valid) << "tier byte " << value;
    uint64_t corr = 0, trace = 0;
    uint8_t tier = 0;
    std::string model;
    EXPECT_EQ(peek_serve_request(mutated.data() + kHeaderSize,
                                 mutated.size() - kHeaderSize,
                                 /*version=*/4, &corr, &trace, &tier,
                                 &model),
              valid);
  }
}

TEST(FrameFuzz, HostileEventDumpTypeAndTierBytesAreRejected) {
  // One-event EVENT_DUMP; per-event layout is t_ns(8) trace(8) type(1)
  // tier(1) detail(2) a(4) b(8) tag — so after the u32 count the type
  // byte sits at payload offset 20 and the tier byte at 21. Sweep both
  // through every value: the decoder must accept exactly the journal's
  // event-type range and the wire tier vocabulary, and reject the rest
  // (a hostile shard could otherwise smuggle unprintable types into an
  // admin CLI or /debug merge).
  WireEvent ev;
  ev.t_ns = 42;
  ev.trace_id = 7;
  ev.type = static_cast<uint8_t>(FlightEventType::kBatchFormed);
  ev.tier = 4;
  ev.detail = 1;
  ev.a = 8;
  ev.b = 1500;
  ev.tag = "m0";
  std::vector<uint8_t> frame;
  encode_event_dump({ev}, frame);
  ASSERT_TRUE(decode_anything(frame));
  constexpr size_t kTypePos = kHeaderSize + 4 + 16;
  constexpr size_t kTierPos = kTypePos + 1;
  ASSERT_EQ(frame[kTypePos], static_cast<uint8_t>(FlightEventType::kBatchFormed));
  ASSERT_EQ(frame[kTierPos], 4u);
  for (int value = 0; value < 256; ++value) {
    std::vector<uint8_t> type_mut = frame;
    type_mut[kTypePos] = static_cast<uint8_t>(value);
    EXPECT_EQ(decode_anything(type_mut), value <= kLastFlightEventType)
        << "event type byte " << value;
    std::vector<uint8_t> tier_mut = frame;
    tier_mut[kTierPos] = static_cast<uint8_t>(value);
    EXPECT_EQ(decode_anything(tier_mut),
              wire_tier_valid(static_cast<uint8_t>(value)))
        << "event tier byte " << value;
  }
}

TEST(FrameFuzz, EventDumpLyingCountIsRejectedWithoutOverread) {
  // The count word claims more events than the payload delivers; the
  // size floor must reject before any reserve or read.
  WireEvent ev;
  ev.tag = "x";
  std::vector<uint8_t> frame;
  encode_event_dump({ev}, frame);
  // count is the first payload u32 (little-endian).
  frame[kHeaderSize + 0] = 0xFF;
  frame[kHeaderSize + 1] = 0x0F;
  EXPECT_FALSE(decode_anything(frame));
  // And a count over the protocol cap is rejected outright.
  frame[kHeaderSize + 0] = 0x01;
  frame[kHeaderSize + 1] = 0x10;  // 0x1001 = 4097 > kMaxDumpEvents
  EXPECT_FALSE(decode_anything(frame));
}

}  // namespace
}  // namespace fqbert::serve::net
