// Full-model tests: forward shapes, determinism, serialization,
// end-to-end gradients, loss/optimizer/trainer machinery.
#include <gtest/gtest.h>

#include <cstdio>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"
#include "test_util.h"

namespace fqbert::nn {
namespace {

using fqbert::testing::check_gradients;
using fqbert::testing::make_example;

BertConfig tiny_config() {
  BertConfig c;
  c.vocab_size = 32;
  c.hidden = 8;
  c.num_layers = 2;
  c.num_heads = 2;
  c.ffn_dim = 16;
  c.max_seq_len = 8;
  c.num_classes = 3;
  return c;
}

TEST(BertModel, ForwardShapeAndDeterminism) {
  Rng rng(1);
  BertModel m(tiny_config(), rng);
  Example ex = make_example({1, 5, 9, 2}, 0);
  Tensor l1 = m.forward(ex);
  Tensor l2 = m.forward(ex);
  EXPECT_EQ(l1.numel(), 3);
  EXPECT_EQ(max_abs_diff(l1, l2), 0.0);
}

TEST(BertModel, ParamCountMatchesFormula) {
  Rng rng(2);
  BertConfig c = tiny_config();
  BertModel m(c, rng);
  const int64_t emb = (c.vocab_size + c.max_seq_len + c.num_segments) * c.hidden;
  const int64_t per_layer = 4 * (c.hidden * c.hidden + c.hidden)  // QKVO
                            + c.hidden * c.ffn_dim + c.ffn_dim    // FFN1
                            + c.ffn_dim * c.hidden + c.hidden     // FFN2
                            + 2 * 2 * c.hidden;                   // LN1, LN2
  const int64_t head = c.hidden * c.hidden + c.hidden +
                       c.hidden * c.num_classes + c.num_classes;
  const int64_t emb_ln = 2 * c.hidden;
  EXPECT_EQ(m.num_params(),
            emb + emb_ln + c.num_layers * per_layer + head);
}

TEST(BertModel, RejectsBadHeadDivision) {
  Rng rng(3);
  BertConfig c = tiny_config();
  c.num_heads = 3;
  EXPECT_THROW(BertModel(c, rng), std::invalid_argument);
}

TEST(BertModel, GradCheckThroughWholeModel) {
  Rng rng(4);
  BertConfig c = tiny_config();
  c.num_layers = 1;
  BertModel m(c, rng);
  Example ex = make_example({1, 7, 3}, 2);
  auto loss = [&] {
    Tensor logits = m.forward(ex);
    Tensor dlogits;
    const float l = cross_entropy_with_grad(logits, ex.label, dlogits);
    m.backward(dlogits);
    return l;
  };
  check_gradients(m.params(), loss, 8e-2, 2e-4, 2);
}

TEST(BertModel, SaveLoadRoundTrip) {
  Rng rng(5);
  BertModel a(tiny_config(), rng);
  BertModel b(tiny_config(), rng);  // same shapes, different values
  for (Param* p : b.params())
    for (int64_t i = 0; i < p->value.numel(); ++i) p->value[i] += 0.1f;

  const std::string path = ::testing::TempDir() + "/fqbert_state.bin";
  save_state(a, path);
  ASSERT_TRUE(load_state(b, path));
  Example ex = make_example({1, 2, 3, 4}, 0);
  EXPECT_EQ(max_abs_diff(a.forward(ex), b.forward(ex)), 0.0);
  std::remove(path.c_str());
}

TEST(BertModel, LoadMissingFileFails) {
  Rng rng(6);
  BertModel m(tiny_config(), rng);
  EXPECT_FALSE(load_state(m, "/nonexistent/dir/state.bin"));
}

TEST(StateVector, SizeMismatchThrows) {
  Rng rng(7);
  BertModel m(tiny_config(), rng);
  std::vector<float> v(static_cast<size_t>(m.num_params()) - 1);
  EXPECT_THROW(vector_to_state(m, v), std::runtime_error);
}

TEST(CrossEntropy, LossAndGradient) {
  Tensor logits(Shape{3}, std::vector<float>{2.0f, 0.5f, -1.0f});
  Tensor dl;
  const float loss = cross_entropy_with_grad(logits, 0, dl);
  // p0 = e^2 / (e^2 + e^0.5 + e^-1).
  const double p0 = std::exp(2.0) / (std::exp(2.0) + std::exp(0.5) + std::exp(-1.0));
  EXPECT_NEAR(loss, -std::log(p0), 1e-5);
  EXPECT_NEAR(dl[0], p0 - 1.0, 1e-5);
  double sum = 0;
  for (int64_t i = 0; i < 3; ++i) sum += dl[i];
  EXPECT_NEAR(sum, 0.0, 1e-6);  // gradient of softmax-CE sums to zero
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 with Adam.
  Param w("w", Shape{1});
  w.value[0] = 0.0f;
  AdamConfig cfg;
  cfg.lr = 0.1f;
  cfg.clip_grad_norm = 0.0f;
  Adam opt({&w}, cfg);
  for (int i = 0; i < 300; ++i) {
    w.grad[0] = 2.0f * (w.value[0] - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(w.value[0], 3.0f, 1e-2);
}

TEST(Adam, GradClippingBoundsNorm) {
  Param w("w", Shape{4});
  AdamConfig cfg;
  cfg.lr = 0.0f;  // no movement; we only exercise the clip path
  cfg.clip_grad_norm = 1.0f;
  Adam opt({&w}, cfg);
  for (int64_t i = 0; i < 4; ++i) w.grad[i] = 100.0f;
  opt.step();  // must not crash; gradients consumed
  EXPECT_EQ(w.grad[0], 0.0f);
}

TEST(Trainer, LearnsTinySeparableTask) {
  // Token 10 => class 1, token 20 => class 0; trivially separable.
  Rng rng(8);
  BertConfig c = tiny_config();
  c.num_classes = 2;
  BertModel m(c, rng);
  std::vector<Example> train_set, eval_set;
  Rng drng(99);
  for (int i = 0; i < 60; ++i) {
    const bool pos = drng.flip(0.5);
    Example ex = make_example({1, pos ? 10 : 20, 2}, pos ? 1 : 0);
    (i < 48 ? train_set : eval_set).push_back(ex);
  }
  TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 8;
  tc.adam.lr = 3e-3f;
  TrainResult res = train(m, train_set, eval_set, tc);
  EXPECT_GT(res.final_eval_accuracy, 95.0);
  EXPECT_LT(res.final_train_loss, 0.3);
}

}  // namespace
}  // namespace fqbert::nn
