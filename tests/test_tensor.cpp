// Tensor substrate tests: container semantics, kernels vs naive
// references, initializers, RNG determinism.
#include <gtest/gtest.h>

#include "tensor/rng.h"
#include "tensor/tensor_ops.h"

namespace fqbert {
namespace {

TEST(Tensor, ShapeAndNumel) {
  Tensor t(Shape{3, 4});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.numel(), 12);
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t.dim(1), 4);
  EXPECT_EQ(shape_numel({}), 1);
  EXPECT_THROW(shape_numel({2, -1}), std::invalid_argument);
}

TEST(Tensor, FillAndIndex) {
  Tensor t(Shape{2, 3}, 7.0f);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 7.0f);
  t.at(1, 2) = 3.5f;
  EXPECT_EQ(t[5], 3.5f);
  EXPECT_EQ(t.row(1)[2], 3.5f);
}

TEST(Tensor, Rank3Access) {
  Tensor t(Shape{2, 3, 4});
  t.at(1, 2, 3) = 9.0f;
  EXPECT_EQ(t[1 * 12 + 2 * 4 + 3], 9.0f);
}

TEST(Tensor, ReshapePreservesDataAndChecksCount) {
  Tensor t(Shape{2, 6});
  for (int64_t i = 0; i < 12; ++i) t[i] = static_cast<float>(i);
  Tensor r = t.reshaped(Shape{3, 4});
  EXPECT_EQ(r.dim(0), 3);
  for (int64_t i = 0; i < 12; ++i) EXPECT_EQ(r[i], static_cast<float>(i));
  EXPECT_THROW(t.reshaped(Shape{5, 2}), std::invalid_argument);
}

TEST(Tensor, ConstructFromVectorValidatesSize) {
  EXPECT_NO_THROW(Tensor(Shape{2, 2}, std::vector<float>{1, 2, 3, 4}));
  EXPECT_THROW(Tensor(Shape{2, 2}, std::vector<float>{1, 2, 3}),
               std::invalid_argument);
}

// Naive reference matmul.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  Tensor c(Shape{a.dim(0), b.dim(1)}, 0.0f);
  for (int64_t i = 0; i < a.dim(0); ++i)
    for (int64_t j = 0; j < b.dim(1); ++j)
      for (int64_t k = 0; k < a.dim(1); ++k)
        c.at(i, j) += a.at(i, k) * b.at(k, j);
  return c;
}

TEST(TensorOps, MatmulMatchesNaive) {
  Rng rng(42);
  Tensor a(Shape{17, 23});
  Tensor b(Shape{23, 9});
  fill_normal(a, rng);
  fill_normal(b, rng);
  Tensor c;
  matmul(a, b, c);
  EXPECT_LT(max_abs_diff(c, naive_matmul(a, b)), 1e-4);
}

TEST(TensorOps, MatmulBtMatchesNaive) {
  Rng rng(43);
  Tensor a(Shape{11, 7});
  Tensor bt(Shape{13, 7});  // b = btᵀ
  fill_normal(a, rng);
  fill_normal(bt, rng);
  Tensor b(Shape{7, 13});
  for (int64_t i = 0; i < 13; ++i)
    for (int64_t j = 0; j < 7; ++j) b.at(j, i) = bt.at(i, j);
  Tensor c;
  matmul_bt(a, bt, c);
  EXPECT_LT(max_abs_diff(c, naive_matmul(a, b)), 1e-4);
}

TEST(TensorOps, MatmulAtMatchesNaive) {
  Rng rng(44);
  Tensor at(Shape{9, 5});  // a = atᵀ: [5, 9]
  Tensor b(Shape{9, 6});
  fill_normal(at, rng);
  fill_normal(b, rng);
  Tensor a(Shape{5, 9});
  for (int64_t i = 0; i < 9; ++i)
    for (int64_t j = 0; j < 5; ++j) a.at(j, i) = at.at(i, j);
  Tensor c;
  matmul_at(at, b, c);
  EXPECT_LT(max_abs_diff(c, naive_matmul(a, b)), 1e-4);
}

TEST(TensorOps, MatmulAccumulateAddsOntoC) {
  Rng rng(45);
  Tensor a(Shape{4, 4}), b(Shape{4, 4});
  fill_normal(a, rng);
  fill_normal(b, rng);
  Tensor once;
  matmul(a, b, once);
  Tensor twice = once;
  matmul(a, b, twice, /*accumulate=*/true);
  for (int64_t i = 0; i < once.numel(); ++i)
    EXPECT_NEAR(twice[i], 2.0f * once[i], 1e-4);
}

TEST(TensorOps, ElementwiseHelpers) {
  Tensor a(Shape{2, 2}, std::vector<float>{1, 2, 3, 4});
  Tensor b(Shape{2, 2}, std::vector<float>{4, 3, 2, 1});
  Tensor s = a;
  add_inplace(s, b);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(s[i], 5.0f);
  Tensor d = a;
  sub_inplace(d, b);
  EXPECT_EQ(d[0], -3.0f);
  Tensor m = a;
  mul_inplace(m, b);
  EXPECT_EQ(m[1], 6.0f);
  scale_inplace(m, 0.5f);
  EXPECT_EQ(m[1], 3.0f);
  axpy(d, 2.0f, b);
  EXPECT_EQ(d[0], 5.0f);
}

TEST(TensorOps, RowBiasAndReductions) {
  Tensor a(Shape{2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor bias(Shape{3}, std::vector<float>{10, 20, 30});
  add_row_bias(a, bias);
  EXPECT_EQ(a.at(0, 0), 11.0f);
  EXPECT_EQ(a.at(1, 2), 36.0f);
  EXPECT_FLOAT_EQ(sum(a), 11 + 22 + 33 + 14 + 25 + 36);
  EXPECT_FLOAT_EQ(max_abs(a), 36.0f);
  EXPECT_NEAR(mean(a), (11 + 22 + 33 + 14 + 25 + 36) / 6.0, 1e-5);
}

TEST(TensorOps, Argmax) {
  const float v[5] = {0.1f, -3.0f, 7.0f, 7.0f, 2.0f};
  EXPECT_EQ(argmax(v, 5), 2);  // first of equal maxima
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.randint(0, 1000), b.randint(0, 1000));
    EXPECT_DOUBLE_EQ(a.normal(), b.normal());
  }
}

TEST(Rng, UniformRangeAndFlip) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
  int trues = 0;
  for (int i = 0; i < 10000; ++i) trues += rng.flip(0.3) ? 1 : 0;
  EXPECT_NEAR(trues / 10000.0, 0.3, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, XavierBounds) {
  Rng rng(11);
  Tensor w(Shape{32, 64});
  fill_xavier(w, rng);
  const float bound = std::sqrt(6.0f / (32 + 64));
  EXPECT_LE(max_abs(w), bound);
  EXPECT_GT(max_abs(w), bound * 0.5f);  // actually spreads out
}

}  // namespace
}  // namespace fqbert
