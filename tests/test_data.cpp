// Synthetic dataset tests: determinism, class balance, structural
// invariants of the generators (negation scope, entailment subset
// property, antonym pairing, genre shift).
#include <gtest/gtest.h>

#include <set>

#include "data/synth_tasks.h"

namespace fqbert::data {
namespace {

TEST(Vocab, RoleRangesArePartitioned) {
  Vocab v;
  EXPECT_EQ(v.pos_end, v.neg_begin);
  EXPECT_EQ(v.neg_end, v.negator_begin);
  EXPECT_EQ(v.negator_end, v.intens_begin);
  EXPECT_EQ(v.intens_end, v.content_begin);
  EXPECT_EQ(v.content_end, v.filler_begin);
  EXPECT_EQ(v.filler_end, v.size);
  EXPECT_TRUE(v.is_positive(v.pos_begin));
  EXPECT_FALSE(v.is_positive(v.pos_end));
  EXPECT_TRUE(v.is_filler(v.size - 1));
}

TEST(Vocab, AntonymIsAnInvolutionWithinContent) {
  Vocab v;
  for (int32_t w = v.content_begin; w < v.content_end; ++w) {
    const int32_t a = v.antonym(w);
    EXPECT_TRUE(v.is_content(a));
    EXPECT_NE(a, w);
    EXPECT_EQ(v.antonym(a), w);
  }
}

TEST(Sst2, DeterministicGivenSeed) {
  Sst2Config cfg;
  auto a = make_sst2(cfg, 50, 7);
  auto b = make_sst2(cfg, 50, 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tokens, b[i].tokens);
    EXPECT_EQ(a[i].label, b[i].label);
  }
  auto c = make_sst2(cfg, 50, 8);
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i)
    if (a[i].tokens != c[i].tokens) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Sst2, StructureAndLengthBounds) {
  Sst2Config cfg;
  auto data = make_sst2(cfg, 200, 11);
  for (const Example& ex : data) {
    ASSERT_GE(ex.tokens.size(), 3u);
    EXPECT_EQ(ex.tokens.front(), Vocab::kCls);
    EXPECT_LE(static_cast<int>(ex.tokens.size()), cfg.max_seq_len);
    EXPECT_EQ(ex.tokens.size(), ex.segments.size());
    for (int32_t s : ex.segments) EXPECT_EQ(s, 0);
    EXPECT_TRUE(ex.label == 0 || ex.label == 1);
    // At least one sentiment-bearing token must be present.
    bool has_sentiment = false;
    for (int32_t t : ex.tokens)
      if (cfg.vocab.is_positive(t) || cfg.vocab.is_negative(t))
        has_sentiment = true;
    EXPECT_TRUE(has_sentiment);
  }
}

TEST(Sst2, RoughlyBalanced) {
  Sst2Config cfg;
  auto data = make_sst2(cfg, 2000, 13);
  const double f1 = label_fraction(data, 1);
  EXPECT_GT(f1, 0.40);
  EXPECT_LT(f1, 0.60);
}

TEST(Sst2, ZeroNoiseLabelsFollowLexicalScore) {
  Sst2Config cfg;
  cfg.label_noise = 0.0;
  cfg.p_negator = 0.0;      // without negation the score is a plain count
  cfg.p_intensifier = 0.0;
  auto data = make_sst2(cfg, 300, 17);
  for (const Example& ex : data) {
    int score = 0;
    for (int32_t t : ex.tokens) {
      if (cfg.vocab.is_positive(t)) ++score;
      if (cfg.vocab.is_negative(t)) --score;
    }
    ASSERT_NE(score, 0);
    EXPECT_EQ(ex.label, score > 0 ? 1 : 0);
  }
}

TEST(Mnli, DeterministicAndWellFormed) {
  MnliConfig cfg;
  auto a = make_mnli(cfg, 100, 21);
  auto b = make_mnli(cfg, 100, 21);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tokens, b[i].tokens);
    EXPECT_EQ(a[i].label, b[i].label);
  }
  for (const Example& ex : a) {
    EXPECT_EQ(ex.tokens.front(), Vocab::kCls);
    EXPECT_LE(static_cast<int>(ex.tokens.size()), cfg.max_seq_len);
    // Exactly two separators.
    int seps = 0;
    for (int32_t t : ex.tokens) seps += t == Vocab::kSep ? 1 : 0;
    EXPECT_EQ(seps, 2);
    // Segment ids switch from 0 to 1 exactly once.
    int switches = 0;
    for (size_t i = 1; i < ex.segments.size(); ++i) {
      EXPECT_GE(ex.segments[i], ex.segments[i - 1]);
      switches += ex.segments[i] != ex.segments[i - 1] ? 1 : 0;
    }
    EXPECT_EQ(switches, 1);
    EXPECT_GE(ex.label, 0);
    EXPECT_LE(ex.label, 2);
  }
}

// Split an example back into premise and hypothesis content words.
void split_mnli(const Example& ex, std::vector<int32_t>& premise,
                std::vector<int32_t>& hyp) {
  premise.clear();
  hyp.clear();
  bool in_hyp = false;
  for (size_t i = 1; i < ex.tokens.size(); ++i) {
    if (ex.tokens[i] == Vocab::kSep) {
      in_hyp = true;
      continue;
    }
    (in_hyp ? hyp : premise).push_back(ex.tokens[i]);
  }
}

TEST(Mnli, ZeroNoiseStructuralInvariants) {
  MnliConfig cfg;
  cfg.label_noise = 0.0;
  auto data = make_mnli(cfg, 300, 23);
  Vocab v = cfg.vocab;
  for (const Example& ex : data) {
    std::vector<int32_t> premise, hyp;
    split_mnli(ex, premise, hyp);
    std::set<int32_t> pset(premise.begin(), premise.end());

    int in_premise = 0, antonym_of_premise = 0, novel = 0;
    for (int32_t w : hyp) {
      if (pset.count(w)) {
        ++in_premise;
      } else if (pset.count(v.antonym(w))) {
        ++antonym_of_premise;
      } else {
        ++novel;
      }
    }
    switch (ex.label) {
      case 0:  // entailment: pure subset
        EXPECT_EQ(antonym_of_premise, 0);
        EXPECT_EQ(novel, 0);
        break;
      case 1:  // neutral: exactly one novel word
        EXPECT_EQ(antonym_of_premise, 0);
        EXPECT_EQ(novel, 1);
        break;
      case 2:  // contradiction: exactly one antonym
        EXPECT_EQ(antonym_of_premise, 1);
        EXPECT_EQ(novel, 0);
        break;
      default:
        FAIL();
    }
  }
}

TEST(Mnli, ThreeWayRoughBalance) {
  MnliConfig cfg;
  auto data = make_mnli(cfg, 3000, 29);
  for (int32_t cls = 0; cls < 3; ++cls) {
    const double f = label_fraction(data, cls);
    EXPECT_GT(f, 0.26) << "class " << cls;
    EXPECT_LT(f, 0.40) << "class " << cls;
  }
}

TEST(Mnli, MismatchedGenreShiftsContentDistribution) {
  MnliConfig matched;
  MnliConfig mismatched;
  mismatched.mismatched_genre = true;
  auto a = make_mnli(matched, 500, 31);
  auto b = make_mnli(mismatched, 500, 31);
  Vocab v;
  auto mean_content_id = [&](const std::vector<Example>& data) {
    double sum = 0;
    int64_t n = 0;
    for (const Example& ex : data)
      for (int32_t t : ex.tokens)
        if (v.is_content(t)) {
          sum += t;
          ++n;
        }
    return sum / static_cast<double>(n);
  };
  // The mismatched genre draws from the upper content range.
  EXPECT_GT(mean_content_id(b), mean_content_id(a) + 10.0);
}

TEST(LabelFraction, EmptyDataIsZero) {
  EXPECT_EQ(label_fraction({}, 0), 0.0);
}

}  // namespace
}  // namespace fqbert::data
