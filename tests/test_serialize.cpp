// Serialization round-trip tests: a saved+loaded engine must be
// bit-identical to the original on every input.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/fq_bert.h"
#include "data/synth_tasks.h"
#include "nn/trainer.h"
#include "test_util.h"

namespace fqbert::core {
namespace {

struct EngineFixture {
  std::vector<nn::Example> data;
  std::unique_ptr<nn::BertModel> model;
  std::unique_ptr<FqBertModel> engine;

  EngineFixture() {
    data::Sst2Config dcfg;
    data = data::make_sst2(dcfg, 120, 77);
    nn::BertConfig mcfg;
    mcfg.hidden = 16;
    mcfg.num_layers = 2;
    mcfg.num_heads = 2;
    mcfg.ffn_dim = 32;
    mcfg.num_classes = 2;
    Rng rng(3);
    model = std::make_unique<nn::BertModel>(mcfg, rng);
    nn::TrainConfig tc;
    tc.epochs = 2;
    nn::train(*model, data, data, tc);
    QatBert qat(*model, FqQuantConfig::full());
    qat.calibrate(data);
    engine = std::make_unique<FqBertModel>(FqBertModel::convert(qat));
  }
};

EngineFixture& fixture() {
  static EngineFixture f;
  return f;
}

TEST(Serialize, RoundTripIsBitExact) {
  auto& f = fixture();
  const std::string path = ::testing::TempDir() + "/fq_model.bin";
  ASSERT_TRUE(f.engine->save(path));
  FqBertModel loaded = FqBertModel::load(path);

  for (size_t i = 0; i < 20; ++i) {
    const nn::Example& ex = f.data[i];
    const Tensor a = f.engine->forward(ex);
    const Tensor b = loaded.forward(ex);
    ASSERT_EQ(a.numel(), b.numel());
    for (int64_t j = 0; j < a.numel(); ++j)
      EXPECT_EQ(a[j], b[j]) << "example " << i << " logit " << j;
  }
  std::remove(path.c_str());
}

TEST(Serialize, PreservesConfigAndScales) {
  auto& f = fixture();
  const std::string path = ::testing::TempDir() + "/fq_model2.bin";
  ASSERT_TRUE(f.engine->save(path));
  FqBertModel loaded = FqBertModel::load(path);
  EXPECT_EQ(loaded.config().hidden, f.engine->config().hidden);
  EXPECT_EQ(loaded.config().num_layers, f.engine->config().num_layers);
  EXPECT_EQ(loaded.quant_config().weight_bits,
            f.engine->quant_config().weight_bits);
  ASSERT_EQ(loaded.encoder_layers().size(), f.engine->encoder_layers().size());
  for (size_t l = 0; l < loaded.encoder_layers().size(); ++l) {
    const auto& a = loaded.encoder_layers()[l];
    const auto& b = f.engine->encoder_layers()[l];
    EXPECT_DOUBLE_EQ(a.in_scale, b.in_scale);
    EXPECT_DOUBLE_EQ(a.out_scale, b.out_scale);
    EXPECT_EQ(a.wq.narrow_codes(), b.wq.narrow_codes());
    EXPECT_EQ(a.ffn2.bias_q, b.ffn2.bias_q);
  }
  std::remove(path.c_str());
}

TEST(Serialize, EmbedCodesIdentical) {
  auto& f = fixture();
  const std::string path = ::testing::TempDir() + "/fq_model3.bin";
  ASSERT_TRUE(f.engine->save(path));
  FqBertModel loaded = FqBertModel::load(path);
  EXPECT_EQ(loaded.embed(f.data[0]), f.engine->embed(f.data[0]));
  EXPECT_DOUBLE_EQ(loaded.embed_scale(), f.engine->embed_scale());
  std::remove(path.c_str());
}

TEST(Serialize, RejectsMissingAndGarbageFiles) {
  EXPECT_THROW(FqBertModel::load("/nonexistent/x.bin"), std::runtime_error);
  const std::string path = ::testing::TempDir() + "/garbage.bin";
  {
    std::FILE* fp = std::fopen(path.c_str(), "wb");
    std::fputs("not a model", fp);
    std::fclose(fp);
  }
  EXPECT_THROW(FqBertModel::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, SaveToUnwritablePathFails) {
  auto& f = fixture();
  EXPECT_FALSE(f.engine->save("/nonexistent/dir/model.bin"));
}

}  // namespace
}  // namespace fqbert::core
