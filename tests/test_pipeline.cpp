// Pipeline-library tests: task dispatch, cloning, checkpoint-cache
// keying, and the end-to-end quantize pipeline in fast mode.
#include <gtest/gtest.h>

#include <filesystem>

#include "pipeline/pipeline.h"

namespace fqbert::pipeline {
namespace {

TEST(Pipeline, NamedTaskDispatch) {
  const TaskData sst2 = make_named_task("sst2", /*fast=*/true);
  EXPECT_EQ(sst2.num_classes, 2);
  EXPECT_FALSE(sst2.train.empty());
  EXPECT_TRUE(sst2.eval_extra.empty());

  const TaskData mnli = make_named_task("mnli", /*fast=*/true);
  EXPECT_EQ(mnli.num_classes, 3);
  EXPECT_FALSE(mnli.eval_extra.empty());

  EXPECT_THROW(make_named_task("qqp", true), std::invalid_argument);
}

TEST(Pipeline, TaskExamplesFitMiniConfig) {
  for (const char* name : {"sst2", "mnli"}) {
    const TaskData t = make_named_task(name, /*fast=*/true);
    const BertConfig cfg = mini_config(t.num_classes);
    for (const auto* split : {&t.train, &t.eval, &t.eval_extra}) {
      for (const Example& ex : *split) {
        EXPECT_LE(static_cast<int64_t>(ex.tokens.size()), cfg.max_seq_len);
        for (int32_t tok : ex.tokens) {
          EXPECT_GE(tok, 0);
          EXPECT_LT(tok, cfg.vocab_size);
        }
        EXPECT_LT(ex.label, t.num_classes);
      }
    }
  }
}

TEST(Pipeline, CloneProducesIdenticalForward) {
  const TaskData t = make_named_task("sst2", /*fast=*/true);
  Rng rng(3);
  BertModel a(mini_config(2), rng);
  auto b = clone_model(a, a.config());
  const Tensor la = a.forward(t.eval[0]);
  const Tensor lb = b->forward(t.eval[0]);
  EXPECT_EQ(la[0], lb[0]);
  EXPECT_EQ(la[1], lb[1]);
  // And mutating the clone leaves the original untouched.
  b->params()[0]->value[0] += 1.0f;
  const Tensor la2 = a.forward(t.eval[0]);
  EXPECT_EQ(la[0], la2[0]);
}

TEST(Pipeline, HyperparametersDifferByTask) {
  const TaskData sst2 = make_named_task("sst2", true);
  const TaskData mnli = make_named_task("mnli", true);
  EXPECT_GT(float_epochs_for(mnli, false), float_epochs_for(sst2, false));
  EXPECT_LT(float_lr_for(mnli), float_lr_for(sst2));
  EXPECT_EQ(float_epochs_for(sst2, true), float_epochs_for(mnli, true));
}

TEST(Pipeline, EndToEndFastQuantizePipeline) {
  TaskData t = make_named_task("sst2", /*fast=*/true);
  // Shrink further: this is a wiring test, not an accuracy test.
  t.train.resize(80);
  t.eval.resize(40);
  auto model = train_float(t, /*fast=*/true, 7, false, /*cache_dir=*/"");
  FqBertModel engine =
      quantize_pipeline(*model, t, FqQuantConfig::full(), /*fast=*/true);
  EXPECT_EQ(engine.config().num_classes, 2);
  EXPECT_GE(engine.accuracy(t.eval), 0.0);
  EXPECT_GT(engine.size_report().compression_ratio(), 4.0);
}

TEST(Pipeline, FloatCheckpointCacheIsKeyedOnConfigAndSeed) {
  namespace fs = std::filesystem;
  const std::string cache_dir =
      (fs::temp_directory_path() / "fqbert_cache_key_test").string();
  fs::remove_all(cache_dir);
  fs::create_directories(cache_dir);

  TaskData t = make_named_task("sst2", /*fast=*/true);
  t.train.resize(60);
  t.eval.resize(30);

  (void)train_float(t, /*fast=*/true, /*seed=*/7, false, cache_dir);
  ASSERT_EQ(std::distance(fs::directory_iterator(cache_dir),
                          fs::directory_iterator{}),
            1);

  // Same inputs -> cache hit, still one file.
  (void)train_float(t, /*fast=*/true, /*seed=*/7, false, cache_dir);
  EXPECT_EQ(std::distance(fs::directory_iterator(cache_dir),
                          fs::directory_iterator{}),
            1);

  // A different seed must not adopt the existing checkpoint.
  (void)train_float(t, /*fast=*/true, /*seed=*/8, false, cache_dir);
  EXPECT_EQ(std::distance(fs::directory_iterator(cache_dir),
                          fs::directory_iterator{}),
            2);

  // A different dataset size (what concurrent fast/full runs differ in)
  // gets its own key too.
  TaskData t2 = t;
  t2.train.resize(40);
  (void)train_float(t2, /*fast=*/true, /*seed=*/7, false, cache_dir);
  EXPECT_EQ(std::distance(fs::directory_iterator(cache_dir),
                          fs::directory_iterator{}),
            3);
  fs::remove_all(cache_dir);
}

TEST(Pipeline, MnliGeneratorUsesCompactContentVocab) {
  const auto cfg = mnli_generator_config();
  EXPECT_EQ(cfg.vocab.content_end - cfg.vocab.content_begin, 40);
  // Antonym pairing stays closed under the narrowed range.
  for (int32_t w = cfg.vocab.content_begin; w < cfg.vocab.content_end; ++w) {
    EXPECT_LT(cfg.vocab.antonym(w), cfg.vocab.content_end);
    EXPECT_GE(cfg.vocab.antonym(w), cfg.vocab.content_begin);
  }
}

}  // namespace
}  // namespace fqbert::pipeline
