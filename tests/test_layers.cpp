// Layer-level tests: forward semantics and hand-written backward passes
// verified against central differences.
#include <gtest/gtest.h>

#include "nn/layers.h"
#include "test_util.h"

namespace fqbert::nn {
namespace {

using fqbert::testing::check_gradients;
using fqbert::testing::random_tensor;

TEST(Linear, ForwardMatchesManual) {
  Rng rng(1);
  Linear lin("l", 3, 2, rng);
  lin.weight.value = Tensor(Shape{2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  lin.bias.value = Tensor(Shape{2}, std::vector<float>{0.5f, -0.5f});
  Tensor x(Shape{1, 3}, std::vector<float>{1, 1, 1});
  Tensor y = lin.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 6.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 14.5f);
}

TEST(Linear, GradCheck) {
  Rng rng(2);
  Linear lin("l", 4, 3, rng);
  Tensor x = random_tensor(2, 4, rng);
  auto loss = [&] {
    Tensor y = lin.forward(x);
    float l = 0.0f;
    Tensor dy(y.shape());
    for (int64_t i = 0; i < y.numel(); ++i) {
      l += y[i] * y[i];
      dy[i] = 2.0f * y[i];
    }
    lin.backward(dy);
    return l;
  };
  check_gradients(lin.params(), loss);
}

TEST(Linear, BackwardReturnsInputGradient) {
  Rng rng(3);
  Linear lin("l", 3, 3, rng);
  Tensor x = random_tensor(2, 3, rng);
  // Numeric dL/dx vs analytic, L = sum(y^2).
  Tensor y = lin.forward(x);
  Tensor dy(y.shape());
  for (int64_t i = 0; i < y.numel(); ++i) dy[i] = 2.0f * y[i];
  Tensor dx = lin.backward(dy);
  const float eps = 1e-3f;
  for (int64_t j = 0; j < x.numel(); ++j) {
    Tensor xp = x, xm = x;
    xp[j] += eps;
    xm[j] -= eps;
    float lp = 0, lm = 0;
    Tensor yp = lin.forward(xp);
    for (int64_t i = 0; i < yp.numel(); ++i) lp += yp[i] * yp[i];
    Tensor ym = lin.forward(xm);
    for (int64_t i = 0; i < ym.numel(); ++i) lm += ym[i] * ym[i];
    EXPECT_NEAR((lp - lm) / (2 * eps), dx[j], 2e-2)
        << "input grad index " << j;
  }
}

TEST(LayerNorm, NormalizesRows) {
  Rng rng(4);
  LayerNorm ln("ln", 16);
  Tensor x = random_tensor(3, 16, rng, 5.0f);
  Tensor y = ln.forward(x);
  for (int64_t r = 0; r < 3; ++r) {
    double mu = 0, var = 0;
    for (int64_t c = 0; c < 16; ++c) mu += y.at(r, c);
    mu /= 16;
    for (int64_t c = 0; c < 16; ++c) var += (y.at(r, c) - mu) * (y.at(r, c) - mu);
    var /= 16;
    EXPECT_NEAR(mu, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(LayerNorm, GradCheck) {
  Rng rng(5);
  LayerNorm ln("ln", 8);
  // Non-trivial gamma/beta.
  fill_uniform(ln.gamma.value, rng, 0.5f, 1.5f);
  fill_uniform(ln.beta.value, rng, -0.5f, 0.5f);
  Tensor x = random_tensor(2, 8, rng);
  auto loss = [&] {
    Tensor y = ln.forward(x);
    float l = 0.0f;
    Tensor dy(y.shape());
    for (int64_t i = 0; i < y.numel(); ++i) {
      l += std::sin(0.7f * static_cast<float>(i)) * y[i];
      dy[i] = std::sin(0.7f * static_cast<float>(i));
    }
    ln.backward(dy);
    return l;
  };
  check_gradients(ln.params(), loss, 5e-2, 1e-4, 6);
}

TEST(LayerNorm, InputGradCheck) {
  Rng rng(6);
  LayerNorm ln("ln", 8);
  Tensor x = random_tensor(1, 8, rng, 2.0f);
  Tensor y = ln.forward(x);
  Tensor dy(y.shape(), 1.0f);
  for (int64_t i = 0; i < dy.numel(); ++i)
    dy[i] = static_cast<float>(i % 3) - 1.0f;
  Tensor dx = ln.backward(dy);
  const float eps = 1e-3f;
  for (int64_t j = 0; j < 8; ++j) {
    Tensor xp = x, xm = x;
    xp[j] += eps;
    xm[j] -= eps;
    float lp = 0, lm = 0;
    Tensor yp = ln.forward(xp);
    for (int64_t i = 0; i < 8; ++i) lp += dy[i] * yp[i];
    Tensor ym = ln.forward(xm);
    for (int64_t i = 0; i < 8; ++i) lm += dy[i] * ym[i];
    EXPECT_NEAR((lp - lm) / (2 * eps), dx[j], 5e-3);
  }
}

TEST(Embedding, LookupAndScatterAddGrad) {
  Rng rng(7);
  Embedding emb("e", 10, 4, rng);
  std::vector<int32_t> ids{3, 7, 3};
  Tensor out = emb.forward(ids);
  for (int64_t c = 0; c < 4; ++c) {
    EXPECT_EQ(out.at(0, c), emb.table.value.at(3, c));
    EXPECT_EQ(out.at(1, c), emb.table.value.at(7, c));
    EXPECT_EQ(out.at(2, c), emb.table.value.at(3, c));
  }
  Tensor dy(Shape{3, 4}, 1.0f);
  emb.backward(dy);
  // Token 3 appears twice: gradient 2; token 7 once: gradient 1.
  for (int64_t c = 0; c < 4; ++c) {
    EXPECT_EQ(emb.table.grad.at(3, c), 2.0f);
    EXPECT_EQ(emb.table.grad.at(7, c), 1.0f);
    EXPECT_EQ(emb.table.grad.at(0, c), 0.0f);
  }
}

TEST(Gelu, ValueAndDerivative) {
  EXPECT_NEAR(Gelu::value(0.0f), 0.0f, 1e-6);
  // GELU(x) -> x for large x, -> 0 for very negative x.
  EXPECT_NEAR(Gelu::value(6.0f), 6.0f, 1e-3);
  EXPECT_NEAR(Gelu::value(-6.0f), 0.0f, 1e-3);
  // Derivative vs finite differences.
  for (float x : {-3.0f, -1.0f, -0.3f, 0.0f, 0.5f, 1.7f, 3.0f}) {
    const float eps = 1e-3f;
    const float num = (Gelu::value(x + eps) - Gelu::value(x - eps)) / (2 * eps);
    EXPECT_NEAR(Gelu::derivative(x), num, 1e-3) << "x=" << x;
  }
}

TEST(Gelu, BackwardUsesCachedInput) {
  Gelu g;
  Tensor x(Shape{1, 3}, std::vector<float>{-1.0f, 0.0f, 2.0f});
  g.forward(x);
  Tensor dy(Shape{1, 3}, 1.0f);
  Tensor dx = g.backward(dy);
  for (int64_t i = 0; i < 3; ++i)
    EXPECT_NEAR(dx[i], Gelu::derivative(x[i]), 1e-6);
}

TEST(Tanh, ForwardBackward) {
  Tanh t;
  Tensor x(Shape{1, 2}, std::vector<float>{0.5f, -1.2f});
  Tensor y = t.forward(x);
  EXPECT_NEAR(y[0], std::tanh(0.5f), 1e-6);
  Tensor dy(Shape{1, 2}, 1.0f);
  Tensor dx = t.backward(dy);
  EXPECT_NEAR(dx[0], 1.0f - std::tanh(0.5f) * std::tanh(0.5f), 1e-6);
}

TEST(Softmax, RowsSumToOneAndOrderPreserved) {
  Rng rng(8);
  Tensor x = fqbert::testing::random_tensor(4, 7, rng, 3.0f);
  Tensor p = x;
  softmax_rows(p);
  for (int64_t r = 0; r < 4; ++r) {
    double s = 0;
    for (int64_t c = 0; c < 7; ++c) {
      s += p.at(r, c);
      EXPECT_GT(p.at(r, c), 0.0f);
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
    // Rank preservation.
    for (int64_t c = 1; c < 7; ++c)
      EXPECT_EQ(x.at(r, c) > x.at(r, c - 1), p.at(r, c) > p.at(r, c - 1));
  }
}

TEST(Softmax, StableUnderLargeInputs) {
  Tensor x(Shape{1, 3}, std::vector<float>{1000.0f, 1001.0f, 999.0f});
  softmax_rows(x);
  EXPECT_TRUE(std::isfinite(x[0]));
  EXPECT_GT(x[1], x[0]);
}

TEST(Softmax, BackwardMatchesNumeric) {
  Rng rng(9);
  Tensor x = fqbert::testing::random_tensor(2, 5, rng);
  Tensor p = x;
  softmax_rows(p);
  Tensor dp(Shape{2, 5});
  for (int64_t i = 0; i < 10; ++i) dp[i] = static_cast<float>(i) * 0.1f;
  Tensor dx = softmax_rows_backward(p, dp);
  const float eps = 1e-3f;
  for (int64_t j = 0; j < 10; ++j) {
    Tensor xp = x, xm = x;
    xp[j] += eps;
    xm[j] -= eps;
    softmax_rows(xp);
    softmax_rows(xm);
    float lp = 0, lm = 0;
    for (int64_t i = 0; i < 10; ++i) {
      lp += dp[i] * xp[i];
      lm += dp[i] * xm[i];
    }
    EXPECT_NEAR((lp - lm) / (2 * eps), dx[j], 1e-3);
  }
}

// Linear weight hook: a trivial doubling hook exercises the STE path.
class DoublingHook : public TensorHook {
 public:
  Tensor apply(const Tensor& x) override {
    Tensor y = x;
    scale_inplace(y, 2.0f);
    return y;
  }
};

TEST(Linear, WeightHookAffectsForwardOnly) {
  Rng rng(10);
  Linear lin("l", 2, 2, rng);
  Tensor x(Shape{1, 2}, std::vector<float>{1.0f, 1.0f});
  Tensor y0 = lin.forward(x);
  DoublingHook hook;
  lin.weight_hook = &hook;
  Tensor y1 = lin.forward(x);
  for (int64_t i = 0; i < 2; ++i)
    EXPECT_NEAR(y1[i] - lin.bias.value[i], 2.0f * (y0[i] - lin.bias.value[i]),
                1e-5);
}

}  // namespace
}  // namespace fqbert::nn
