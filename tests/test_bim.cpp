// BIM datapath tests (paper Fig. 4): exhaustive bit-exactness of the
// split 8x8 multiplication, Type A == Type B equivalence, cycle
// accounting, sign-flag handling.
#include <gtest/gtest.h>

#include "accel/bim.h"
#include "core/int_kernels.h"
#include "tensor/rng.h"

namespace fqbert::accel {
namespace {

TEST(Bim, RejectsBadMultiplierCounts) {
  EXPECT_THROW(Bim(3, BimType::kTypeA), std::invalid_argument);
  EXPECT_THROW(Bim(0, BimType::kTypeA), std::invalid_argument);
  EXPECT_THROW(Bim(1, BimType::kTypeA), std::invalid_argument);
  EXPECT_NO_THROW(Bim(2, BimType::kTypeA));
  EXPECT_NO_THROW(Bim(16, BimType::kTypeB));
}

TEST(Bim, LanesPerMode) {
  Bim b(16, BimType::kTypeA);
  EXPECT_EQ(b.lanes(BimMode::k8x4), 16);
  EXPECT_EQ(b.lanes(BimMode::k8x8), 8);
}

TEST(Bim, Exhaustive8x8SplitEqualsNativeProduct) {
  // Every (a, w) in int8 x int8: the nibble-split multiply must equal the
  // native product. This is the bit-fusion correctness core.
  Bim ta(2, BimType::kTypeA);
  Bim tb(2, BimType::kTypeB);
  for (int a = -128; a <= 127; ++a) {
    for (int w = -128; w <= 127; ++w) {
      const int8_t av = static_cast<int8_t>(a);
      const int8_t wv = static_cast<int8_t>(w);
      const int32_t want = a * w;
      EXPECT_EQ(ta.dot_8x8({&av, 1}, {&wv, 1}), want) << a << "*" << w;
      EXPECT_EQ(tb.dot_8x8({&av, 1}, {&wv, 1}), want) << a << "*" << w;
    }
  }
}

TEST(Bim, Exhaustive8x8UnsignedActivation) {
  // Softmax probabilities: activation bits interpreted as unsigned.
  Bim b(2, BimType::kTypeA);
  for (int a = 0; a <= 255; ++a) {
    for (int w = -128; w <= 127; w += 3) {
      const int8_t av = static_cast<int8_t>(static_cast<uint8_t>(a));
      const int8_t wv = static_cast<int8_t>(w);
      EXPECT_EQ(b.dot_8x8({&av, 1}, {&wv, 1}, /*a_signed=*/false), a * w);
    }
  }
}

TEST(Bim, Exhaustive8x4Signed) {
  Bim b(2, BimType::kTypeA);
  for (int a = -128; a <= 127; ++a) {
    for (int w = -8; w <= 7; ++w) {
      const int8_t av = static_cast<int8_t>(a);
      const int8_t wv = static_cast<int8_t>(w);
      EXPECT_EQ(b.dot_8x4({&av, 1}, {&wv, 1}), a * w);
    }
  }
}

class BimTypeEquivalence
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(BimTypeEquivalence, TypeAEqualsTypeBOnRandomVectors) {
  const int m = std::get<0>(GetParam());
  const bool a_signed = std::get<1>(GetParam());
  Bim ta(m, BimType::kTypeA);
  Bim tb(m, BimType::kTypeB);
  Rng rng(static_cast<uint64_t>(m) * 1000 + (a_signed ? 1 : 0));
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<int8_t> a(static_cast<size_t>(m / 2)), w(a.size());
    for (auto& v : a) v = static_cast<int8_t>(rng.randint(-128, 127));
    for (auto& v : w) v = static_cast<int8_t>(rng.randint(-128, 127));
    const int32_t ra = ta.dot_8x8(a, w, a_signed);
    const int32_t rb = tb.dot_8x8(a, w, a_signed);
    EXPECT_EQ(ra, rb);
    // And both equal the plain int dot product.
    int32_t want = 0;
    for (size_t i = 0; i < a.size(); ++i) {
      const int32_t av = a_signed ? a[i] : static_cast<uint8_t>(a[i]);
      want += av * w[i];
    }
    EXPECT_EQ(ra, want);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BimTypeEquivalence,
    ::testing::Combine(::testing::Values(2, 4, 8, 16, 32),
                       ::testing::Bool()),
    [](const auto& info) {
      return "m" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_signed" : "_unsigned");
    });

TEST(Bim, DotCyclesMatchCeilDiv) {
  Bim b(16, BimType::kTypeA);
  Rng rng(7);
  std::vector<int8_t> a(100), w(100);
  for (auto& v : a) v = static_cast<int8_t>(rng.randint(-128, 127));
  for (auto& v : w) v = static_cast<int8_t>(rng.randint(-8, 7));
  int64_t cycles = 0;
  b.dot(a, w, BimMode::k8x4, &cycles);
  EXPECT_EQ(cycles, (100 + 15) / 16);
  b.dot(a, w, BimMode::k8x8, &cycles);
  EXPECT_EQ(cycles, (100 + 7) / 8);
}

TEST(Bim, LongDotMatchesReference) {
  Bim b(8, BimType::kTypeB);
  Rng rng(9);
  std::vector<int8_t> a(768), w(768);
  for (auto& v : a) v = static_cast<int8_t>(rng.randint(-128, 127));
  for (auto& v : w) v = static_cast<int8_t>(rng.randint(-8, 7));
  int32_t want = 0;
  for (size_t i = 0; i < a.size(); ++i)
    want += static_cast<int32_t>(a[i]) * w[i];
  EXPECT_EQ(b.dot(a, w, BimMode::k8x4), want);
}

TEST(BimMatmul, MatchesIntKernel8x4) {
  Bim b(16, BimType::kTypeA);
  Rng rng(11);
  const int64_t rows = 5, k = 37, cols = 7;
  std::vector<int8_t> a(static_cast<size_t>(rows * k));
  std::vector<int8_t> w(static_cast<size_t>(cols * k));
  for (auto& v : a) v = static_cast<int8_t>(rng.randint(-128, 127));
  for (auto& v : w) v = static_cast<int8_t>(rng.randint(-8, 7));
  std::vector<int32_t> via_bim, via_kernel;
  bim_matmul_wt(b, BimMode::k8x4, a, w, via_bim, rows, k, cols);
  core::int_matmul_wt(a, w, via_kernel, rows, k, cols);
  EXPECT_EQ(via_bim, via_kernel);
}

TEST(BimMatmul, MatchesIntKernel8x8) {
  Bim b(8, BimType::kTypeB);
  Rng rng(13);
  const int64_t rows = 4, k = 19, cols = 6;
  std::vector<int8_t> a(static_cast<size_t>(rows * k));
  std::vector<int8_t> w(static_cast<size_t>(cols * k));
  for (auto& v : a) v = static_cast<int8_t>(rng.randint(-128, 127));
  for (auto& v : w) v = static_cast<int8_t>(rng.randint(-128, 127));
  std::vector<int32_t> via_bim, via_kernel;
  bim_matmul_wt(b, BimMode::k8x8, a, w, via_bim, rows, k, cols);
  core::int_matmul_wt(a, w, via_kernel, rows, k, cols);
  EXPECT_EQ(via_bim, via_kernel);
}

TEST(BimMatmul, CycleCountFormula) {
  Bim b(16, BimType::kTypeA);
  const int64_t rows = 3, k = 33, cols = 4;
  std::vector<int8_t> a(static_cast<size_t>(rows * k), 1);
  std::vector<int8_t> w(static_cast<size_t>(cols * k), 1);
  std::vector<int32_t> acc;
  const int64_t cycles = bim_matmul_wt(b, BimMode::k8x4, a, w, acc, rows, k, cols);
  EXPECT_EQ(cycles, rows * cols * ((k + 15) / 16));
}

}  // namespace
}  // namespace fqbert::accel
