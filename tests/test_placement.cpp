// PlacementTable semantics: the RCU snapshot contract (immutability,
// epoch-per-mutation), explicit-policy declaration ordering, mutator
// validation (duplicate add, last-replica remove refusal, move
// preconditions), and the consistent-hash ring laws — most importantly
// the ISSUE acceptance property that a joining backend remaps ONLY the
// key range its own ring points claim.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "serve/shard/placement.h"

namespace fqbert::serve::shard {
namespace {

std::vector<PlacementCell> cells(std::initializer_list<PlacementCell> list) {
  return std::vector<PlacementCell>(list);
}

std::vector<std::string> names(const std::vector<PlacementCell>& cs) {
  std::vector<std::string> out;
  for (const PlacementCell& c : cs) out.push_back(c.name);
  return out;
}

TEST(PlacementTable, StartsEmptyAtEpochZero) {
  PlacementTable table;
  const auto snap = table.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->epoch, 0u);
  EXPECT_EQ(snap->policy, PlacementPolicy::kExplicit);
  EXPECT_TRUE(snap->member_order.empty());
  EXPECT_TRUE(snap->by_model.empty());
  EXPECT_TRUE(snap->candidates("anything", 42).empty());
}

TEST(PlacementTable, EveryMutationBumpsTheEpochByOne) {
  PlacementTable table;
  EXPECT_EQ(table.epoch(), 0u);
  ASSERT_TRUE(table.add_backend("a:1", cells({{"m", 0}})));
  EXPECT_EQ(table.epoch(), 1u);
  ASSERT_TRUE(table.add_backend("b:1", cells({{"m", 0}})));
  EXPECT_EQ(table.epoch(), 2u);
  ASSERT_TRUE(table.move_model("m", 0, "a:1", "b:1"));
  EXPECT_EQ(table.epoch(), 3u);
  ASSERT_TRUE(table.remove_backend("a:1"));
  EXPECT_EQ(table.epoch(), 4u);
}

TEST(PlacementTable, SnapshotsAreImmutableAcrossMutation) {
  PlacementTable table;
  ASSERT_TRUE(table.add_backend("a:1", cells({{"m", 0}})));
  const std::shared_ptr<const PlacementSnapshot> before = table.snapshot();
  ASSERT_TRUE(table.add_backend("b:1", cells({{"m", 0}, {"n", 4}})));

  // The held generation still describes the world as it was.
  EXPECT_EQ(before->epoch, 1u);
  EXPECT_EQ(before->member_order, std::vector<std::string>{"a:1"});
  EXPECT_FALSE(before->has_backend("b:1"));
  EXPECT_FALSE(before->has_model("n"));

  const auto after = table.snapshot();
  EXPECT_EQ(after->epoch, 2u);
  EXPECT_TRUE(after->has_backend("b:1"));
  EXPECT_TRUE(after->has_model("n"));
}

TEST(PlacementTable, ExplicitPolicyKeepsJoinOrderForEveryRouteKey) {
  PlacementTable table(PlacementPolicy::kExplicit);
  ASSERT_TRUE(table.add_backend("a:1", cells({{"m", 0}})));
  ASSERT_TRUE(table.add_backend("b:1", cells({{"m", 0}})));
  ASSERT_TRUE(table.add_backend("c:1", cells({{"m", 0}})));
  const auto snap = table.snapshot();
  const std::vector<std::string> expect = {"a:1", "b:1", "c:1"};
  for (const uint64_t key : {0ull, 1ull, 777ull, ~0ull}) {
    EXPECT_EQ(names(snap->candidates("m", key)), expect)
        << "explicit order must not depend on the route key";
  }
  EXPECT_TRUE(snap->candidates("nope", 3).empty());
}

TEST(PlacementTable, AddBackendValidation) {
  PlacementTable table;
  std::string error;
  EXPECT_FALSE(table.add_backend("", cells({{"m", 0}}), &error));
  EXPECT_EQ(error, "backend address must be non-empty");
  EXPECT_FALSE(table.add_backend("a:1", {}, &error));
  EXPECT_EQ(error, "backend must declare at least one model");
  ASSERT_TRUE(table.add_backend("a:1", cells({{"m", 0}})));
  EXPECT_FALSE(table.add_backend("a:1", cells({{"n", 0}}), &error));
  EXPECT_EQ(error, "backend a:1 is already a member");
  EXPECT_EQ(table.epoch(), 1u) << "failed mutations must not burn epochs";
}

TEST(PlacementTable, RemoveRefusesTheLastReplica) {
  PlacementTable table;
  ASSERT_TRUE(table.add_backend("a:1", cells({{"m", 0}, {"n", 0}})));
  ASSERT_TRUE(table.add_backend("b:1", cells({{"m", 0}})));
  std::string error;
  // a:1 is the only holder of "n": removing it would strand the model.
  EXPECT_FALSE(table.remove_backend("a:1", &error));
  EXPECT_EQ(error,
            "backend a:1 is the last replica of model 'n'; move it first");
  // But b:1 only duplicates "m", so it can go.
  EXPECT_TRUE(table.remove_backend("b:1", &error));
  EXPECT_FALSE(table.snapshot()->has_backend("b:1"));
  EXPECT_FALSE(table.remove_backend("b:1", &error));
  EXPECT_EQ(error, "backend b:1 is not a member");
}

TEST(PlacementTable, MoveModelValidationAndCellTransfer) {
  PlacementTable table;
  ASSERT_TRUE(table.add_backend("a:1", cells({{"m", 0}, {"m", 4}})));
  ASSERT_TRUE(table.add_backend("b:1", cells({{"x", 0}})));
  std::string error;
  EXPECT_FALSE(table.move_model("m", 0, "ghost:1", "b:1", &error));
  EXPECT_EQ(error, "source backend ghost:1 is not a member");
  EXPECT_FALSE(table.move_model("m", 0, "a:1", "ghost:1", &error));
  EXPECT_EQ(error, "target backend ghost:1 is not a member");
  EXPECT_FALSE(table.move_model("m", 0, "a:1", "a:1", &error));
  EXPECT_EQ(error, "source and target backend are the same");
  EXPECT_FALSE(table.move_model("x", 0, "a:1", "b:1", &error));
  EXPECT_EQ(error, "backend a:1 does not serve model 'x'");
  EXPECT_FALSE(table.move_model("m", 8, "a:1", "b:1", &error));
  EXPECT_EQ(error, "backend a:1 does not serve model 'm' at that tier");

  // Only the named tier moves; the other tier of "m" stays put.
  ASSERT_TRUE(table.move_model("m", 4, "a:1", "b:1", &error)) << error;
  const auto snap = table.snapshot();
  EXPECT_EQ(snap->by_backend.at("a:1"), cells({{"m", 0}}));
  EXPECT_EQ(snap->by_backend.at("b:1"), cells({{"x", 0}, {"m", 4}}));
}

TEST(PlacementTable, EmptiedSourceStaysAMemberUntilRemoved) {
  PlacementTable table;
  ASSERT_TRUE(table.add_backend("a:1", cells({{"m", 0}})));
  ASSERT_TRUE(table.add_backend("b:1", cells({{"n", 0}})));
  ASSERT_TRUE(table.move_model("m", 0, "a:1", "b:1"));
  const auto snap = table.snapshot();
  // a:1 serves nothing now but remains addressable (it can receive
  // moves back); only REMOVE_BACKEND evicts it.
  EXPECT_TRUE(snap->has_backend("a:1"));
  EXPECT_TRUE(snap->by_backend.at("a:1").empty());
  const std::vector<std::string> expect_members = {"a:1", "b:1"};
  EXPECT_EQ(snap->member_order, expect_members);
  EXPECT_TRUE(table.remove_backend("a:1"));
  EXPECT_FALSE(table.snapshot()->has_backend("a:1"));
}

TEST(PlacementTable, MoveCollapsesDuplicateCellsOnTheTarget) {
  PlacementTable table;
  ASSERT_TRUE(table.add_backend("a:1", cells({{"m", 0}})));
  ASSERT_TRUE(table.add_backend("b:1", cells({{"m", 0}})));
  ASSERT_TRUE(table.move_model("m", 0, "a:1", "b:1"));
  const auto snap = table.snapshot();
  EXPECT_EQ(snap->by_backend.at("b:1"), cells({{"m", 0}}))
      << "target already served the cell; the move must not duplicate it";
  EXPECT_EQ(snap->by_model.at("m").size(), 1u);
}

TEST(HashRing, OrderedWalkYieldsEveryBackendExactlyOnce) {
  HashRing ring;
  const std::vector<std::string> members = {"a:1", "b:1", "c:1", "d:1"};
  for (const std::string& m : members) ring.add(m);
  for (uint64_t key = 0; key < 257; ++key) {
    const std::vector<std::string> order = ring.ordered(placement_mix(key));
    ASSERT_EQ(order.size(), members.size());
    const std::set<std::string> distinct(order.begin(), order.end());
    EXPECT_EQ(distinct.size(), members.size());
  }
}

TEST(HashRing, LayoutIsDeterministicAcrossInstances) {
  HashRing a, b;
  for (const char* m : {"x:1", "y:1", "z:1"}) {
    a.add(m);
    b.add(m);
  }
  for (uint64_t key = 0; key < 64; ++key) {
    EXPECT_EQ(a.ordered(placement_mix(key)), b.ordered(placement_mix(key)));
  }
}

// The ISSUE acceptance property: under consistent hashing, a joining
// backend takes over ONLY the arcs its own points claim. For every
// route key, the owner either stays what it was or becomes the new
// backend — no key moves between two pre-existing backends.
TEST(PlacementTable, ConsistentHashJoinRemapsOnlyItsOwnRange) {
  constexpr int kKeys = 4096;
  PlacementTable table(PlacementPolicy::kConsistentHash);
  ASSERT_TRUE(table.add_backend("a:1", cells({{"m", 0}})));
  ASSERT_TRUE(table.add_backend("b:1", cells({{"m", 0}})));
  ASSERT_TRUE(table.add_backend("c:1", cells({{"m", 0}})));

  std::map<uint64_t, std::string> owner_before;
  {
    const auto snap = table.snapshot();
    for (uint64_t key = 0; key < kKeys; ++key) {
      const auto order = snap->candidates("m", placement_mix(key));
      ASSERT_FALSE(order.empty());
      owner_before[key] = order.front().name;
    }
  }

  ASSERT_TRUE(table.add_backend("d:1", cells({{"m", 0}})));
  const auto snap = table.snapshot();
  int moved = 0;
  for (uint64_t key = 0; key < kKeys; ++key) {
    const auto order = snap->candidates("m", placement_mix(key));
    ASSERT_EQ(order.size(), 4u);
    const std::string& owner_after = order.front().name;
    if (owner_after != owner_before[key]) {
      EXPECT_EQ(owner_after, "d:1")
          << "key " << key << " moved between pre-existing backends "
          << owner_before[key] << " -> " << owner_after;
      ++moved;
    }
  }
  // The joiner owns roughly 1/4 of the keyspace; with 64 vnodes the
  // spread is loose, so assert a wide band rather than the mean.
  EXPECT_GT(moved, kKeys / 16) << "the joiner took essentially no keys";
  EXPECT_LT(moved, kKeys / 2) << "the joiner remapped far beyond its share";
}

// Symmetric property on leave: removing a backend reassigns only the
// keys it owned; everything else keeps its owner.
TEST(PlacementTable, ConsistentHashLeaveMovesOnlyTheLeaversKeys) {
  constexpr int kKeys = 4096;
  PlacementTable table(PlacementPolicy::kConsistentHash);
  ASSERT_TRUE(table.add_backend("a:1", cells({{"m", 0}})));
  ASSERT_TRUE(table.add_backend("b:1", cells({{"m", 0}})));
  ASSERT_TRUE(table.add_backend("c:1", cells({{"m", 0}})));

  std::map<uint64_t, std::string> owner_before;
  {
    const auto snap = table.snapshot();
    for (uint64_t key = 0; key < kKeys; ++key) {
      owner_before[key] =
          snap->candidates("m", placement_mix(key)).front().name;
    }
  }

  ASSERT_TRUE(table.remove_backend("c:1"));
  const auto snap = table.snapshot();
  for (uint64_t key = 0; key < kKeys; ++key) {
    const std::string owner_after =
        snap->candidates("m", placement_mix(key)).front().name;
    if (owner_before[key] != "c:1") {
      EXPECT_EQ(owner_after, owner_before[key])
          << "key " << key << " was not owned by the leaver yet moved";
    } else {
      EXPECT_NE(owner_after, "c:1");
    }
  }
}

TEST(PlacementTable, ConsistentHashFailoverOrderIsTheClockwiseWalk) {
  PlacementTable table(PlacementPolicy::kConsistentHash);
  ASSERT_TRUE(table.add_backend("a:1", cells({{"m", 0}})));
  ASSERT_TRUE(table.add_backend("b:1", cells({{"m", 0}})));
  ASSERT_TRUE(table.add_backend("c:1", cells({{"m", 0}})));
  const auto snap = table.snapshot();
  // candidates() must agree with the model's ring for every key, and
  // different keys must (somewhere in the keyspace) pick different
  // primaries — the whole point of ring placement.
  std::set<std::string> primaries;
  for (uint64_t key = 0; key < 512; ++key) {
    const uint64_t mixed = placement_mix(key);
    const auto order = names(snap->candidates("m", mixed));
    EXPECT_EQ(order, snap->rings.at("m").ordered(mixed));
    primaries.insert(order.front());
  }
  EXPECT_EQ(primaries.size(), 3u);
}

TEST(PlacementTable, PolicyNamesAreStable) {
  EXPECT_STREQ(placement_policy_name(PlacementPolicy::kExplicit), "explicit");
  EXPECT_STREQ(placement_policy_name(PlacementPolicy::kConsistentHash),
               "consistent_hash");
}

TEST(PlacementTable, HashIsStableAcrossRuns) {
  // Ring layouts must be reproducible run-to-run (tests and operator
  // expectations both lean on it); lock the two hash primitives.
  EXPECT_EQ(placement_hash("127.0.0.1:9000"), placement_hash("127.0.0.1:9000"));
  EXPECT_NE(placement_hash("127.0.0.1:9000"), placement_hash("127.0.0.1:9001"));
  EXPECT_EQ(placement_mix(0), placement_mix(0));
  EXPECT_NE(placement_mix(1), placement_mix(2));
}

}  // namespace
}  // namespace fqbert::serve::shard
