// Structural PE/PU tests: bit-exact outputs through the PE datapath and
// cycle accounting consistent with the analytical performance model.
#include <gtest/gtest.h>

#include "accel/pe.h"
#include "tensor/rng.h"

namespace fqbert::accel {
namespace {

TEST(Pe, DotMatchesPlainAccumulation) {
  Pe pe(16, BimType::kTypeA);
  Rng rng(1);
  std::vector<int8_t> a(100), w(100);
  for (auto& v : a) v = static_cast<int8_t>(rng.randint(-128, 127));
  for (auto& v : w) v = static_cast<int8_t>(rng.randint(-8, 7));
  PeCycleStats st;
  const int32_t got = pe.dot(a, w, BimMode::k8x4, st);
  int32_t want = 0;
  for (size_t i = 0; i < a.size(); ++i)
    want += static_cast<int32_t>(a[i]) * w[i];
  EXPECT_EQ(got, want);
  EXPECT_EQ(st.bim_cycles, (100 + 15) / 16);
  EXPECT_EQ(st.quant_cycles, Pe::kQuantLatency);
  EXPECT_EQ(st.stalls, 0);  // dot longer than the quant pipeline
}

TEST(Pe, ShortDotExposesQuantLatency) {
  Pe pe(16, BimType::kTypeA);
  std::vector<int8_t> a(8, 1), w(8, 1);
  PeCycleStats st;
  pe.dot(a, w, BimMode::k8x4, st);
  EXPECT_EQ(st.bim_cycles, 1);
  EXPECT_EQ(st.stalls, Pe::kQuantLatency - 1);
}

TEST(Pu, MatmulBitExactAndCycleFormula) {
  Pu pu(8, 16, BimType::kTypeB);
  Rng rng(2);
  const int64_t rows = 6, k = 64, cols = 20;
  std::vector<int8_t> a(static_cast<size_t>(rows * k));
  std::vector<int8_t> w(static_cast<size_t>(cols * k));
  for (auto& v : a) v = static_cast<int8_t>(rng.randint(-128, 127));
  for (auto& v : w) v = static_cast<int8_t>(rng.randint(-8, 7));

  std::vector<int32_t> got, want;
  const int64_t cycles = pu.matmul(a, w, got, rows, k, cols, BimMode::k8x4);
  core::int_matmul_wt(a, w, want, rows, k, cols);
  EXPECT_EQ(got, want);

  // Tiles: per row ceil(20/8)=3; per tile max PE cycles = ceil(64/16)=4.
  EXPECT_EQ(cycles, rows * 3 * 4);
}

TEST(Pu, Mode8x8HalvesLanes) {
  Pu pu(4, 8, BimType::kTypeA);
  Rng rng(3);
  const int64_t rows = 2, k = 32, cols = 4;
  std::vector<int8_t> a(static_cast<size_t>(rows * k));
  std::vector<int8_t> w(static_cast<size_t>(cols * k));
  for (auto& v : a) v = static_cast<int8_t>(rng.randint(-128, 127));
  for (auto& v : w) v = static_cast<int8_t>(rng.randint(-128, 127));
  std::vector<int32_t> got, want;
  const int64_t cycles = pu.matmul(a, w, got, rows, k, cols, BimMode::k8x8);
  core::int_matmul_wt(a, w, want, rows, k, cols);
  EXPECT_EQ(got, want);
  // One tile per row (4 cols over 4 PEs), ceil(32/4)=8 cycles each.
  EXPECT_EQ(cycles, rows * 8);
}

TEST(Pu, UnsignedActivations) {
  Pu pu(2, 4, BimType::kTypeA);
  const int64_t rows = 1, k = 3, cols = 2;
  // Probabilities 200, 255, 0 (as raw bytes) times signed weights.
  std::vector<int8_t> a{static_cast<int8_t>(200), static_cast<int8_t>(255),
                        0};
  std::vector<int8_t> w{1, -1, 5, 2, 3, -7};
  std::vector<int32_t> got;
  pu.matmul(a, w, got, rows, k, cols, BimMode::k8x8, /*a_signed=*/false);
  EXPECT_EQ(got[0], 200 * 1 + 255 * -1 + 0 * 5);
  EXPECT_EQ(got[1], 200 * 2 + 255 * 3 + 0 * -7);
}

}  // namespace
}  // namespace fqbert::accel
