// Randomized bit-identity fuzz for the unified panel-kernel inference
// path.
//
// Since PR 2 every inference entry point — QuantLinear::forward_i8,
// FqEncoderLayer::forward, FqBertModel::forward and forward_batch —
// runs the 4-row panel kernel (int_matmul_wt_panel). The paper-
// reference kernel int_matmul_wt survives purely as the oracle: this
// suite re-implements the seed's scalar encoder path on top of it and
// asserts the production path is bit-identical across every
// rows % 4 remainder (row counts 1..9), ragged batch shapes, and both
// int4 and int8 weight widths.
#include <gtest/gtest.h>

#include "core/fq_bert.h"
#include "fq_oracle.h"
#include "tensor/rng.h"

namespace fqbert::core {
namespace {

using nn::BertConfig;
using nn::BertModel;
using nn::Example;

BertConfig fuzz_config() {
  BertConfig c;
  c.vocab_size = 128;
  c.hidden = 16;
  c.num_layers = 2;
  c.num_heads = 2;
  c.ffn_dim = 32;
  c.max_seq_len = 16;
  c.num_classes = 2;
  return c;
}

/// Random well-formed example of EXACT length `len` (synth_example
/// clamps to >=2, which would skip the rows==1 remainder case).
Example rand_example(Rng& rng, int64_t len, const BertConfig& config) {
  Example ex;
  ex.tokens.resize(static_cast<size_t>(len));
  ex.tokens[0] = 0;  // CLS anchor
  for (int64_t i = 1; i < len; ++i)
    ex.tokens[static_cast<size_t>(i)] =
        static_cast<int32_t>(rng.randint(1, config.vocab_size - 1));
  ex.segments.assign(static_cast<size_t>(len), 0);
  return ex;
}

/// Calibrated engine over random weights (accuracy irrelevant; the
/// integer pipeline is fully exercised).
FqBertModel build_engine(int weight_bits, uint64_t seed) {
  const BertConfig config = fuzz_config();
  Rng rng(seed);
  BertModel model(config, rng);
  FqQuantConfig qcfg = FqQuantConfig::full();
  qcfg.weight_bits = weight_bits;
  QatBert qat(model, qcfg);
  std::vector<Example> calib;
  Rng data_rng(seed + 1);
  for (int i = 0; i < 12; ++i)
    calib.push_back(
        rand_example(data_rng, 3 + (i % 5) * 3, config));
  qat.calibrate(calib);
  return FqBertModel::convert(qat);
}

using oracle::OracleLayer;
using oracle::OracleLinear;
using oracle::OracleModel;

void expect_logits_eq(const Tensor& want, const Tensor& got,
                      const std::string& what) {
  ASSERT_EQ(want.numel(), got.numel()) << what;
  for (int64_t j = 0; j < want.numel(); ++j)
    EXPECT_EQ(want[j], got[j]) << what << " logit " << j;
}

// ---------------------------------------------------------------------------
// QuantLinear: panel kernel vs oracle over every rows % 4 remainder
// ---------------------------------------------------------------------------

void fuzz_quant_linear(int weight_bits) {
  const FqBertModel engine = build_engine(weight_bits, 31);
  Rng rng(77);
  for (const FqEncoderLayer& layer : engine.encoder_layers()) {
    for (const QuantLinear* ql : {&layer.wq, &layer.wo, &layer.ffn1,
                                  &layer.ffn2}) {
      const OracleLinear ol(*ql);
      for (int64_t rows = 1; rows <= 9; ++rows) {
        std::vector<int8_t> x(static_cast<size_t>(rows * ql->in));
        for (auto& v : x)
          v = static_cast<int8_t>(rng.randint(-128, 127));
        std::vector<int8_t> want, got;
        oracle::oracle_linear(ol, x, want, rows);
        ql->forward_i8(x, got, rows);
        EXPECT_EQ(want, got)
            << "w" << weight_bits << " rows " << rows << " ("
            << ql->in << "->" << ql->out << ")";
      }
    }
  }
}

TEST(ForwardFuzz, QuantLinearMatchesOracleInt4) { fuzz_quant_linear(4); }
TEST(ForwardFuzz, QuantLinearMatchesOracleInt8) { fuzz_quant_linear(8); }

// ---------------------------------------------------------------------------
// Full model: forward() and forward_batch() vs the scalar oracle
// ---------------------------------------------------------------------------

void fuzz_model(int weight_bits, uint64_t seed) {
  const FqBertModel engine = build_engine(weight_bits, seed);
  const OracleModel om(engine);
  const BertConfig config = fuzz_config();
  Rng rng(seed * 13 + 5);

  // Every sequence length 1..9 (each rows % 4 remainder of the panel
  // kernel, including the sub-panel 1..3 cases) plus a few longer ones.
  for (int64_t s_len : {1, 2, 3, 4, 5, 6, 7, 8, 9, 13, 16}) {
    const Example ex = rand_example(rng, s_len, config);
    const Tensor want = oracle::oracle_forward(om, ex);
    expect_logits_eq(want, engine.forward(ex),
                     "forward len " + std::to_string(ex.tokens.size()));
  }

  // Ragged batches with random lengths: forward_batch row totals sweep
  // the remainders too, and each member must match its oracle logits.
  for (int iter = 0; iter < 8; ++iter) {
    const size_t batch_size = 1 + static_cast<size_t>(rng.randint(0, 4));
    std::vector<Example> batch;
    for (size_t i = 0; i < batch_size; ++i)
      batch.push_back(
          rand_example(rng, 1 + rng.randint(0, 8), config));
    const std::vector<Tensor> got = engine.forward_batch(batch);
    ASSERT_EQ(got.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      const Tensor want = oracle::oracle_forward(om, batch[i]);
      expect_logits_eq(want, got[i],
                       "batch iter " + std::to_string(iter) + " member " +
                           std::to_string(i) + " len " +
                           std::to_string(batch[i].tokens.size()));
    }
  }
}

TEST(ForwardFuzz, ModelMatchesOracleInt4) { fuzz_model(4, 101); }
TEST(ForwardFuzz, ModelMatchesOracleInt8) { fuzz_model(8, 202); }

// The layer-level entry point (used by the accelerator simulator) stays
// bit-identical too.
TEST(ForwardFuzz, EncoderLayerMatchesOracleAcrossRemainders) {
  const FqBertModel engine = build_engine(4, 303);
  const BertConfig config = fuzz_config();
  const FqEncoderLayer& layer = engine.encoder_layers()[0];
  const OracleLayer ol(layer);
  Rng rng(404);
  for (int64_t s_len = 1; s_len <= 9; ++s_len) {
    const Example ex = rand_example(rng, s_len, config);
    const std::vector<int8_t> x = engine.embed(ex);
    const int64_t rows = static_cast<int64_t>(ex.tokens.size());
    std::vector<int8_t> want, got;
    oracle::oracle_layer_forward(ol, x, want, rows);
    layer.forward(x, got, rows);
    EXPECT_EQ(want, got) << "s_len " << rows;
  }
}

}  // namespace
}  // namespace fqbert::core
