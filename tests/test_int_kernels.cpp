// Integer kernel tests: matmuls vs wide-accumulator references and the
// requantize epilogue.
#include <gtest/gtest.h>

#include "core/int_kernels.h"
#include "tensor/rng.h"

namespace fqbert::core {
namespace {

TEST(IntMatmulWt, MatchesNaive) {
  Rng rng(1);
  const int64_t m = 7, k = 33, n = 5;
  std::vector<int8_t> a(static_cast<size_t>(m * k));
  std::vector<int8_t> w(static_cast<size_t>(n * k));
  for (auto& v : a) v = static_cast<int8_t>(rng.randint(-128, 127));
  for (auto& v : w) v = static_cast<int8_t>(rng.randint(-8, 7));
  std::vector<int32_t> acc;
  int_matmul_wt(a, w, acc, m, k, n);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      int64_t want = 0;
      for (int64_t p = 0; p < k; ++p)
        want += static_cast<int64_t>(a[static_cast<size_t>(i * k + p)]) *
                w[static_cast<size_t>(j * k + p)];
      EXPECT_EQ(acc[static_cast<size_t>(i * n + j)], want);
    }
  }
}

TEST(IntMatmulPv, UnsignedProbsTimesSignedV) {
  Rng rng(2);
  const int64_t m = 4, k = 9, n = 6;
  std::vector<int32_t> p(static_cast<size_t>(m * k));
  std::vector<int8_t> v(static_cast<size_t>(k * n));
  for (auto& x : p) x = static_cast<int32_t>(rng.randint(0, 255));
  for (auto& x : v) x = static_cast<int8_t>(rng.randint(-128, 127));
  std::vector<int32_t> acc;
  int_matmul_pv(p, v, acc, m, k, n);
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) {
      int64_t want = 0;
      for (int64_t q = 0; q < k; ++q)
        want += static_cast<int64_t>(p[static_cast<size_t>(i * k + q)]) *
                v[static_cast<size_t>(q * n + j)];
      EXPECT_EQ(acc[static_cast<size_t>(i * n + j)], want);
    }
}

TEST(RequantizeI8, AppliesBiasScaleAndSaturation) {
  const quant::Requantizer rq = quant::Requantizer::from_scale(0.01);
  std::vector<int32_t> acc{100, -100, 50000, -50000, 0, 449};
  std::vector<int32_t> bias{0, 0, 0, 0, 100, 1};
  std::vector<int8_t> out;
  requantize_i8(acc, bias, rq, out, 1, 6);
  EXPECT_EQ(out[0], 1);      // 100*0.01
  EXPECT_EQ(out[1], -1);
  EXPECT_EQ(out[2], 127);    // saturated high
  EXPECT_EQ(out[3], -127);   // saturated low (symmetric grid)
  EXPECT_EQ(out[4], 1);      // (0+100)*0.01
  EXPECT_EQ(out[5], 5);      // round(4.5) away from zero
}

TEST(RequantizeI8, EmptyBiasMeansZero) {
  const quant::Requantizer rq = quant::Requantizer::from_scale(0.5);
  std::vector<int32_t> acc{10, -7};
  std::vector<int8_t> out;
  requantize_i8(acc, {}, rq, out, 1, 2);
  EXPECT_EQ(out[0], 5);
  EXPECT_EQ(out[1], -4);  // -3.5 rounds away from zero
}

TEST(IntMatmul, ZeroSizedEdges) {
  std::vector<int8_t> a, w;
  std::vector<int32_t> acc;
  int_matmul_wt(a, w, acc, 0, 0, 0);
  EXPECT_TRUE(acc.empty());
}

}  // namespace
}  // namespace fqbert::core
