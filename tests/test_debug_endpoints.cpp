// /debug introspection plane tests: every endpoint returns well-formed
// JSON while traffic is in flight, the slow-exemplar store honors its
// threshold semantics (a slower-than-bound request appears exactly
// once, stages monotone), the DUMP_EVENTS control frame round-trips
// over a real transport, and the hardened metrics listener drops
// stalling (slow-loris) clients and over-long request lines.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "serve/debug_text.h"
#include "serve/flight_recorder.h"
#include "serve/loadgen.h"
#include "serve/metrics_http.h"
#include "serve/net/transport_client.h"
#include "serve/net/transport_server.h"
#include "serve/router/model_router.h"
#include "serve/shard/shard_proxy.h"

namespace fqbert::serve {
namespace {

using core::FqBertModel;
using core::FqQuantConfig;
using core::QatBert;
using nn::BertConfig;
using nn::BertModel;
using nn::Example;

BertConfig tiny_config() {
  BertConfig c;
  c.vocab_size = 128;
  c.hidden = 16;
  c.num_layers = 2;
  c.num_heads = 2;
  c.ffn_dim = 32;
  c.max_seq_len = 32;
  c.num_classes = 2;
  return c;
}

std::shared_ptr<const FqBertModel> build_engine(uint64_t seed) {
  const BertConfig config = tiny_config();
  Rng rng(seed);
  BertModel model(config, rng);
  QatBert qat(model, FqQuantConfig::full());
  std::vector<Example> calib;
  Rng data_rng(seed * 31 + 7);
  for (int i = 0; i < 12; ++i)
    calib.push_back(synth_example(data_rng, 4 + (i % 3) * 6, config));
  qat.calibrate(calib);
  return std::make_shared<const FqBertModel>(FqBertModel::convert(qat));
}

// ---------------------------------------------------------------------------
// Minimal strict JSON acceptor (RFC 8259 subset: no leading zeros
// check, but full structure, string escapes and number shape). The
// /debug endpoints hand-assemble their bodies, so "it parses" is the
// property under test — a library would be overkill and a dependency.
// ---------------------------------------------------------------------------
class JsonAcceptor {
 public:
  explicit JsonAcceptor(std::string_view s) : s_(s) {}
  bool accept() {
    skip_ws();
    return value() && (skip_ws(), pos_ == s_.size());
  }

 private:
  bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }
  bool literal(const char* word) {
    const size_t n = std::strlen(word);
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  bool string() {
    if (!eat('"')) return false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i)
            if (pos_ >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_++])))
              return false;
        } else if (std::strchr("\"\\/bfnrt", esc) == nullptr) {
          return false;
        }
      }
    }
    return false;  // unterminated
  }
  bool number() {
    const size_t start = pos_;
    if (eat('-')) {}
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
    if (eat('.'))
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
    return pos_ > start && s_[pos_ - 1] != '-';
  }
  bool value() {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }
  bool object() {
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':') || !value()) return false;
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }
  bool array() {
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  std::string_view s_;
  size_t pos_ = 0;
};

std::string http_exchange(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  (void)!::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
    out.append(buf, static_cast<size_t>(n));
  ::close(fd);
  return out;
}

/// GET `path`, require 200 + application/json, return the body.
std::string get_json_body(uint16_t port, const std::string& path) {
  const std::string response = http_exchange(
      port, "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << path;
  EXPECT_NE(response.find("application/json"), std::string::npos) << path;
  const size_t at = response.find("\r\n\r\n");
  EXPECT_NE(at, std::string::npos) << path;
  return at == std::string::npos ? "" : response.substr(at + 4);
}

/// Wire the three /debug endpoints exactly like `serve --listen` does.
void add_debug_endpoints(MetricsHttpServer& metrics, ModelRouter& router) {
  metrics.add_endpoint("/debug/events", [](const std::string& query) {
    return render_debug_events(FlightRecorder::instance(),
                               debug_query_u64(query, "since_ns", 0),
                               debug_query_u64(query, "max", 0));
  });
  metrics.add_endpoint("/debug/slow", [](const std::string&) {
    return render_debug_slow(FlightRecorder::instance());
  });
  metrics.add_endpoint("/debug/lanes", [&router](const std::string&) {
    return render_debug_lanes(router);
  });
}

TEST(DebugEndpoints, WellFormedJsonUnderConcurrentTraffic) {
  EngineRegistry registry;
  registry.register_model("m0", build_engine(42));
  RouterConfig rcfg;
  rcfg.num_workers = 2;
  rcfg.batcher.max_batch = 4;
  rcfg.batcher.max_wait = Micros(200);
  ModelRouter router(registry, rcfg);
  ASSERT_TRUE(router.add_model("m0"));
  ASSERT_TRUE(router.start());

  MetricsHttpServer metrics(
      [] { return std::string("fqbert_up 1\n"); });
  add_debug_endpoints(metrics, router);
  ASSERT_TRUE(metrics.start("127.0.0.1", 0));

  // Concurrent traffic: two closed-loop clients keep the journal, the
  // exemplar store and the lane depths moving while we scrape.
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c)
    clients.emplace_back([&router, c] {
      Rng rng(100 + static_cast<uint64_t>(c));
      for (int i = 0; i < 30; ++i)
        (void)router
            .submit("m0", synth_example(rng, 8, tiny_config()))
            .get();
    });

  for (int round = 0; round < 8; ++round) {
    for (const char* path : {"/debug/events", "/debug/slow", "/debug/lanes"}) {
      const std::string body = get_json_body(metrics.port(), path);
      EXPECT_TRUE(JsonAcceptor(body).accept())
          << path << " returned invalid JSON: " << body;
    }
  }
  for (std::thread& t : clients) t.join();

  // Steady-state content checks once traffic settled.
  const std::string events = get_json_body(metrics.port(), "/debug/events");
  EXPECT_NE(events.find("\"events\":["), std::string::npos);
  EXPECT_NE(events.find("\"type\":\"admitted\""), std::string::npos);
  EXPECT_NE(events.find("\"type\":\"batch_formed\""), std::string::npos);
  EXPECT_NE(events.find("\"tag\":\"m0\""), std::string::npos);

  const std::string lanes = get_json_body(metrics.port(), "/debug/lanes");
  EXPECT_TRUE(JsonAcceptor(lanes).accept()) << lanes;
  EXPECT_NE(lanes.find("\"model\":\"m0\""), std::string::npos);
  EXPECT_NE(lanes.find("\"high_watermark\":"), std::string::npos);

  // The query contract: an in-the-future since_ns empties the view, a
  // max bound caps it (count mirrors the array's length).
  const std::string none = get_json_body(
      metrics.port(),
      "/debug/events?since_ns=18446744073709551615");
  EXPECT_NE(none.find("\"count\":0"), std::string::npos) << none;
  const std::string capped =
      get_json_body(metrics.port(), "/debug/events?max=3");
  EXPECT_NE(capped.find("\"count\":3"), std::string::npos) << capped;

  metrics.stop();
  router.shutdown(/*drain=*/true);
}

TEST(DebugEndpoints, SlowExemplarAppearsExactlyOnceWithMonotoneStages) {
  FlightRecorder& rec = FlightRecorder::instance();
  rec.clear_slow_exemplars();
  rec.set_slow_threshold_us(1);  // every real request clears 1 us

  EngineRegistry registry;
  registry.register_model("m0", build_engine(42));
  RouterConfig rcfg;
  rcfg.num_workers = 1;
  ModelRouter router(registry, rcfg);
  ASSERT_TRUE(router.add_model("m0"));
  ASSERT_TRUE(router.start());

  Rng rng(7);
  const uint64_t kTrace = 0xBEEF;
  ASSERT_EQ(router
                .submit("m0", synth_example(rng, 8, tiny_config()),
                        std::nullopt, nullptr, kTrace)
                .get()
                .status,
            RequestStatus::kOk);
  router.shutdown(/*drain=*/true);

  const auto exemplars = rec.slow_exemplars();
  int hits = 0;
  for (const SlowExemplar& ex : exemplars) {
    if (ex.trace_id != kTrace) continue;
    ++hits;
    EXPECT_EQ(ex.model, "m0");
    EXPECT_GE(ex.latency_us, rec.slow_threshold_us());
    ASSERT_GE(ex.stages.size(), 2u) << "per-stage breakdown missing";
    for (size_t i = 1; i < ex.stages.size(); ++i)
      EXPECT_LE(ex.stages[i - 1].t_us, ex.stages[i].t_us)
          << "stages must be monotone";
  }
  EXPECT_EQ(hits, 1) << "the slow request must appear exactly once";

  // And the JSON view renders it with the decimal-string trace id.
  const std::string body = render_debug_slow(rec);
  EXPECT_TRUE(JsonAcceptor(body).accept()) << body;
  EXPECT_NE(body.find("\"trace_id\":\"" + std::to_string(kTrace) + "\""),
            std::string::npos)
      << body;
  rec.set_slow_threshold_us(0);
  rec.clear_slow_exemplars();
}

TEST(DebugEndpoints, DumpEventsRoundTripsOverTransport) {
  EngineRegistry registry;
  registry.register_model("m0", build_engine(42));
  RouterConfig rcfg;
  rcfg.num_workers = 1;
  ModelRouter router(registry, rcfg);
  ASSERT_TRUE(router.add_model("m0"));
  ASSERT_TRUE(router.start());
  net::TransportServer transport(router, {});
  ASSERT_TRUE(transport.start());

  const uint64_t t0 = flight_now_ns();
  net::TransportClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", transport.port()));
  Rng rng(11);
  const uint64_t kTrace = mint_trace_id();
  for (int i = 0; i < 3; ++i) {
    const auto resp =
        client.call(synth_example(rng, 8, tiny_config()), std::nullopt, "m0",
                    i == 0 ? kTrace : 0);
    ASSERT_TRUE(resp.has_value());
    ASSERT_EQ(resp->status, RequestStatus::kOk);
  }

  const auto events = client.dump_events(t0);
  ASSERT_TRUE(events.has_value()) << client.error();
  ASSERT_FALSE(events->empty());
  bool saw_admitted = false, saw_batch = false, saw_trace = false;
  for (size_t i = 0; i < events->size(); ++i) {
    const net::WireEvent& ev = (*events)[i];
    EXPECT_GE(ev.t_ns, t0);
    if (i > 0) {
      EXPECT_LE((*events)[i - 1].t_ns, ev.t_ns);
    }
    EXPECT_LE(ev.type, kLastFlightEventType);
    const auto type = static_cast<FlightEventType>(ev.type);
    if (type == FlightEventType::kRequestAdmitted && ev.tag == "m0")
      saw_admitted = true;
    if (type == FlightEventType::kBatchFormed) saw_batch = true;
    if (ev.trace_id == kTrace) saw_trace = true;
  }
  EXPECT_TRUE(saw_admitted);
  EXPECT_TRUE(saw_batch);
  EXPECT_TRUE(saw_trace) << "the traced request must join the journal";

  // since_ns in the future: a valid, empty dump — not an error.
  const auto none = client.dump_events(flight_now_ns() + 3'600'000'000'000ull);
  ASSERT_TRUE(none.has_value()) << client.error();
  EXPECT_TRUE(none->empty());

  // max_events caps the dump to the most recent K.
  const auto capped = client.dump_events(t0, 2);
  ASSERT_TRUE(capped.has_value()) << client.error();
  EXPECT_EQ(capped->size(), 2u);
  EXPECT_EQ(capped->back().t_ns, events->back().t_ns);

  client.close();
  transport.stop();
  router.shutdown(/*drain=*/true);
}

TEST(DebugEndpoints, PlacementEndpointRendersTheLiveTable) {
  EngineRegistry registry;
  registry.register_model("m0", build_engine(42));
  registry.register_model("m1", build_engine(43));
  RouterConfig rcfg;
  rcfg.num_workers = 1;
  ModelRouter router(registry, rcfg);
  ASSERT_TRUE(router.add_model("m0"));
  ASSERT_TRUE(router.add_model("m1"));
  ASSERT_TRUE(router.start());
  net::TransportServer transport(router, {});
  ASSERT_TRUE(transport.start());

  shard::ShardProxyConfig pcfg;
  pcfg.connect_timeout = Micros(500'000);
  pcfg.health_interval = Micros(3'600'000'000);
  shard::ShardProxy proxy(pcfg);
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", transport.port(),
                                {"m0", "m1@int4"}));
  ASSERT_TRUE(proxy.start());

  MetricsHttpServer metrics([] { return std::string("fqbert_up 1\n"); });
  // Registered exactly as `fqbert_cli proxy` wires it.
  metrics.add_endpoint("/debug/placement", [&proxy](const std::string&) {
    return render_debug_placement(proxy);
  });
  ASSERT_TRUE(metrics.start("127.0.0.1", 0));

  const std::string body =
      get_json_body(metrics.port(), "/debug/placement");
  EXPECT_TRUE(JsonAcceptor(body).accept())
      << "/debug/placement returned invalid JSON: " << body;
  EXPECT_NE(body.find("\"epoch\":1"), std::string::npos) << body;
  EXPECT_NE(body.find("\"policy\":\"explicit\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"default_model\":\"m0\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"address\":\"127.0.0.1:" +
                      std::to_string(transport.port()) + "\""),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("\"model\":\"m1\",\"tier\":4"), std::string::npos)
      << body;
  EXPECT_NE(body.find("\"state\":\""), std::string::npos) << body;

  // A live placement change is visible on the very next scrape.
  std::string error;
  ASSERT_TRUE(proxy.admin_move_model("m1", 4, proxy.backend_status()[0].address,
                                     proxy.backend_status()[0].address, "",
                                     &error) == false);
  const std::string again =
      get_json_body(metrics.port(), "/debug/placement");
  EXPECT_TRUE(JsonAcceptor(again).accept()) << again;
  EXPECT_NE(again.find("\"epoch\":1"), std::string::npos)
      << "a refused mutation must not bump the rendered epoch: " << again;

  metrics.stop();
  proxy.stop();
  transport.stop();
  router.shutdown(/*drain=*/true);
}

TEST(MetricsHttpHardening, StallingClientIsDroppedAtTheDeadline) {
  MetricsHttpServer server([] { return std::string("up 1\n"); });
  HttpLimits limits;
  limits.request_deadline_ms = 150;
  server.set_limits(limits);
  ASSERT_TRUE(server.start("127.0.0.1", 0));

  // A slow-loris client: open, send half a request line, then stall.
  const auto t0 = std::chrono::steady_clock::now();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char* partial = "GET /met";
  ASSERT_GT(::send(fd, partial, std::strlen(partial), MSG_NOSIGNAL), 0);
  // Block on the response: the server must hang up at the deadline
  // without answering, long before this test's own timeout.
  char buf[64];
  const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  ::close(fd);
  EXPECT_LE(n, 0) << "a stalled request must never be answered";
  EXPECT_GE(elapsed, 100);
  EXPECT_LT(elapsed, 2000) << "the absolute deadline did not fire";

  // The listener survives and still serves well-behaved clients.
  EXPECT_NE(
      http_exchange(server.port(), "GET /metrics HTTP/1.1\r\n\r\n")
          .find("200 OK"),
      std::string::npos);
  server.stop();
}

TEST(MetricsHttpHardening, OverlongRequestLineIsDropped) {
  MetricsHttpServer server([] { return std::string("up 1\n"); });
  HttpLimits limits;
  limits.request_deadline_ms = 500;
  limits.max_request_line = 64;
  server.set_limits(limits);
  ASSERT_TRUE(server.start("127.0.0.1", 0));

  // A 64-byte-cap listener must drop a kilobyte request line — whether
  // the newline ever arrives or not — without answering.
  const std::string long_path(1024, 'A');
  EXPECT_EQ(http_exchange(server.port(),
                          "GET /" + long_path + " HTTP/1.1\r\n\r\n"),
            "");
  EXPECT_EQ(http_exchange(server.port(), long_path), "");

  // An in-bounds request still works afterwards.
  EXPECT_NE(
      http_exchange(server.port(), "GET /metrics HTTP/1.1\r\n\r\n")
          .find("200 OK"),
      std::string::npos);
  server.stop();
}

}  // namespace
}  // namespace fqbert::serve
