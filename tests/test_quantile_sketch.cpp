// QuantileSketch semantics: the merge laws the fleet-wide STATS
// aggregation leans on (associativity, commutativity, identity of the
// empty sketch, merge-of-parts == sketch-of-pool bit-for-bit), the
// relative-error guarantee checked against a sorted-sample oracle, the
// zero/negative bucket, exact max tracking, and the v3 wire round trip
// through encode/decode_stats_response.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "serve/net/frame.h"
#include "serve/quantile_sketch.h"
#include "serve/stats.h"
#include "tensor/rng.h"

namespace fqbert::serve {
namespace {

/// Exact quantile oracle: nearest-rank over the sorted samples.
int64_t oracle_quantile(std::vector<int64_t> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const size_t rank = static_cast<size_t>(
      std::min<double>(static_cast<double>(samples.size()) - 1.0,
                       std::max(0.0, q * static_cast<double>(samples.size()) -
                                         0.5)));
  return samples[rank];
}

std::vector<int64_t> lognormal_ish_samples(uint64_t seed, int n) {
  // Heavy-ish tail without needing a real distribution: mix three
  // deterministic bands so quantiles land in different buckets.
  Rng rng(seed);
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int64_t band = rng.randint(0, 99);
    if (band < 80)
      out.push_back(rng.randint(100, 2'000));          // body
    else if (band < 97)
      out.push_back(rng.randint(2'000, 50'000));       // shoulder
    else
      out.push_back(rng.randint(50'000, 2'000'000));   // tail
  }
  return out;
}

TEST(QuantileSketch, RelativeErrorBoundAgainstSortedOracle) {
  const std::vector<int64_t> samples = lognormal_ish_samples(7, 20'000);
  QuantileSketch sketch;
  for (const int64_t v : samples) sketch.record(v);
  ASSERT_EQ(sketch.count(), samples.size());

  for (const double q : {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99,
                         0.999}) {
    const double truth = static_cast<double>(oracle_quantile(samples, q));
    const double got = static_cast<double>(sketch.quantile_us(q));
    // The guarantee is relative: |got - truth| <= alpha * truth, padded
    // slightly for the nearest-rank vs bucket-boundary convention gap.
    EXPECT_NEAR(got, truth, 2.5 * sketch.alpha() * truth + 1.0)
        << "q=" << q;
  }
  // q == 1 is the exact max, not a bucket representative.
  EXPECT_EQ(sketch.quantile_us(1.0),
            *std::max_element(samples.begin(), samples.end()));
}

TEST(QuantileSketch, MergeOfPartsIsBitForBitTheSketchOfThePool) {
  const std::vector<int64_t> samples = lognormal_ish_samples(11, 9'000);

  QuantileSketch pooled;
  for (const int64_t v : samples) pooled.record(v);

  // Split three ways, sketch each part, merge.
  QuantileSketch parts[3];
  for (size_t i = 0; i < samples.size(); ++i)
    parts[i % 3].record(samples[i]);

  QuantileSketch merged;
  merged.merge(parts[0]);
  merged.merge(parts[1]);
  merged.merge(parts[2]);
  EXPECT_TRUE(merged == pooled);

  // Commutativity: any merge order yields the identical sketch.
  QuantileSketch reversed;
  reversed.merge(parts[2]);
  reversed.merge(parts[1]);
  reversed.merge(parts[0]);
  EXPECT_TRUE(reversed == pooled);

  // Associativity: (a + b) + c == a + (b + c).
  QuantileSketch ab;
  ab.merge(parts[0]);
  ab.merge(parts[1]);
  QuantileSketch ab_c = ab;
  ab_c.merge(parts[2]);
  QuantileSketch bc;
  bc.merge(parts[1]);
  bc.merge(parts[2]);
  QuantileSketch a_bc = parts[0];
  a_bc.merge(bc);
  EXPECT_TRUE(ab_c == a_bc);
  EXPECT_TRUE(ab_c == pooled);
}

TEST(QuantileSketch, EmptySketchIsTheMergeIdentity) {
  QuantileSketch some;
  some.record(123);
  some.record(456'789);
  const QuantileSketch before = some;

  QuantileSketch empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.quantile_us(0.5), 0);

  some.merge(empty);  // right identity
  EXPECT_TRUE(some == before);

  QuantileSketch other;
  other.merge(before);  // left identity
  EXPECT_TRUE(other == before);

  QuantileSketch both;
  both.merge(empty);  // empty + empty stays empty
  EXPECT_EQ(both.count(), 0u);
}

TEST(QuantileSketch, ZeroAndNegativeValuesLandInTheZeroBucket) {
  QuantileSketch sketch;
  sketch.record(0);
  sketch.record(-5);  // clock glitch
  sketch.record(1'000);
  EXPECT_EQ(sketch.count(), 3u);
  EXPECT_EQ(sketch.zero_count(), 2u);
  // Two of three samples are <= 0, so the median is the zero bucket.
  EXPECT_EQ(sketch.quantile_us(0.5), 0);
  EXPECT_EQ(sketch.quantile_us(1.0), 1'000);

  // An all-zero sketch has well-defined quantiles.
  QuantileSketch zeros;
  zeros.record(0);
  zeros.record(0);
  EXPECT_EQ(zeros.quantile_us(0.99), 0);
  EXPECT_EQ(zeros.max_us(), 0);
}

TEST(QuantileSketch, SurvivesTheV3StatsWireRoundTrip) {
  net::WireStats stats;
  stats.model = "m1";
  ServeStats collector;
  Rng rng(13);
  for (int i = 0; i < 3'000; ++i) {
    collector.record_admitted();
    collector.record_batch(2);
    collector.record_response(rng.randint(50, 500'000), 10);
  }
  stats.report = collector.report();
  ASSERT_GT(stats.report.latency_sketch.count(), 0u);

  std::vector<uint8_t> frame;
  net::encode_stats_response(stats, frame);
  net::FrameHeader hdr;
  ASSERT_EQ(net::decode_header(frame.data(), frame.size(), &hdr),
            net::DecodeStatus::kFrame);
  net::WireStats back;
  ASSERT_TRUE(net::decode_stats_response(frame.data() + net::kHeaderSize,
                                         hdr.payload_len, hdr.version,
                                         &back));
  // The decoded sketch is the same object, bucket for bucket — a
  // STATS fan-out over the wire merges as exactly as an in-process one.
  EXPECT_TRUE(back.report.latency_sketch == stats.report.latency_sketch);
  EXPECT_EQ(back.report.p999_ms, stats.report.p999_ms);
  EXPECT_EQ(back.report.max_ms, stats.report.max_ms);

  // A v2 encode has no sketch: the decoded report falls back to the
  // quantile fields alone and flags itself via the empty sketch.
  std::vector<uint8_t> v2frame;
  net::encode_stats_response(stats, v2frame, /*version=*/2);
  net::FrameHeader v2hdr;
  ASSERT_EQ(net::decode_header(v2frame.data(), v2frame.size(), &v2hdr),
            net::DecodeStatus::kFrame);
  net::WireStats v2back;
  ASSERT_TRUE(net::decode_stats_response(v2frame.data() + net::kHeaderSize,
                                         v2hdr.payload_len, v2hdr.version,
                                         &v2back));
  EXPECT_EQ(v2back.report.latency_sketch.count(), 0u);
  EXPECT_EQ(v2back.report.p50_ms, stats.report.p50_ms);
  EXPECT_EQ(v2back.report.latency_samples, stats.report.latency_samples);
}

TEST(QuantileSketch, FromPartsToleratesHostileBucketLists) {
  // Duplicated and out-of-order indices merge rather than corrupt.
  const QuantileSketch rebuilt = QuantileSketch::from_parts(
      QuantileSketch::kDefaultAlpha, /*zero_count=*/1, /*max_us=*/10'000,
      {{50, 2}, {10, 1}, {50, 3}, {-3, 4}});
  EXPECT_EQ(rebuilt.count(), 1u + 2u + 1u + 3u + 4u);
  EXPECT_EQ(rebuilt.buckets().at(50), 5u);
  EXPECT_EQ(rebuilt.max_us(), 10'000);
  int64_t prev = 0;
  for (const double q : {0.1, 0.5, 0.9, 0.99, 1.0}) {
    const int64_t v = rebuilt.quantile_us(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace fqbert::serve
