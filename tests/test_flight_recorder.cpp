// FlightRecorder unit coverage: ring round-trips, wrap semantics, the
// since_ns / max_events snapshot contract, the slow-exemplar top-K
// store, the enabled switch, concurrent writers (the TSan CI job runs
// this suite), and the async-signal-safe dump format.
//
// The recorder is a process-lifetime singleton shared by every test in
// this binary, so each test isolates itself by capturing
// flight_now_ns() first and snapshotting with since_ns — older events
// from other tests fall out of view instead of needing a reset API.
#include "serve/flight_recorder.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace fqbert::serve {
namespace {

FlightRecorder& rec() { return FlightRecorder::instance(); }

/// The events this test recorded: snapshot since `t0`, filtered to one
/// distinguishing tag.
std::vector<FlightEvent> mine(uint64_t t0, const char* tag,
                              size_t max_events = 0) {
  std::vector<FlightEvent> out;
  for (const FlightEvent& ev : rec().snapshot(
           t0, max_events == 0 ? FlightRecorder::kDefaultSnapshotMax
                               : max_events))
    if (std::strcmp(ev.tag, tag) == 0) out.push_back(ev);
  return out;
}

TEST(FlightEventTypeName, StableAndBounded) {
  EXPECT_STREQ("admitted",
               flight_event_type_name(FlightEventType::kRequestAdmitted));
  EXPECT_STREQ("batch_formed",
               flight_event_type_name(FlightEventType::kBatchFormed));
  EXPECT_STREQ("failover_retry",
               flight_event_type_name(FlightEventType::kFailoverRetry));
  EXPECT_STREQ("unknown", flight_event_type_name(static_cast<FlightEventType>(
                              kLastFlightEventType + 1)));
  EXPECT_STREQ("unknown",
               flight_event_type_name(static_cast<FlightEventType>(255)));
}

TEST(FlightRecorder, RecordRoundTripsEveryField) {
  const uint64_t t0 = flight_now_ns();
  rec().record(FlightEventType::kBatchFormed, "frt_roundtrip", 0xABCD1234u,
               /*tier=*/4, /*detail=*/7, /*a=*/16, /*b=*/4200);
  const auto events = mine(t0, "frt_roundtrip");
  ASSERT_EQ(events.size(), 1u);
  const FlightEvent& ev = events.front();
  EXPECT_GE(ev.t_ns, t0);
  EXPECT_EQ(ev.trace_id, 0xABCD1234u);
  EXPECT_EQ(ev.type, static_cast<uint8_t>(FlightEventType::kBatchFormed));
  EXPECT_EQ(ev.tier, 4);
  EXPECT_EQ(ev.detail, 7);
  EXPECT_EQ(ev.a, 16u);
  EXPECT_EQ(ev.b, 4200u);
}

TEST(FlightRecorder, LongTagTruncatesNulTerminated) {
  const uint64_t t0 = flight_now_ns();
  const std::string tag(60, 'x');
  rec().record(FlightEventType::kModelLoaded, tag);
  bool found = false;
  for (const FlightEvent& ev : rec().snapshot(t0)) {
    if (ev.tag[0] != 'x') continue;
    found = true;
    EXPECT_EQ(std::strlen(ev.tag), sizeof(ev.tag) - 1);
    EXPECT_EQ(std::string(ev.tag), std::string(sizeof(ev.tag) - 1, 'x'));
  }
  EXPECT_TRUE(found);
}

TEST(FlightRecorder, SinceNsFiltersOlderEvents) {
  const uint64_t t0 = flight_now_ns();
  rec().record(FlightEventType::kRequestAdmitted, "frt_since", 1);
  const auto first = mine(t0, "frt_since");
  ASSERT_EQ(first.size(), 1u);
  // Strictly after the first event's stamp: only the second survives.
  const uint64_t t1 = first.front().t_ns + 1;
  rec().record(FlightEventType::kRequestAdmitted, "frt_since", 2);
  const auto events = mine(t1, "frt_since");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events.front().trace_id, 2u);
}

TEST(FlightRecorder, SnapshotCapKeepsMostRecentAndSorted) {
  const uint64_t t0 = flight_now_ns();
  for (uint64_t i = 0; i < 8; ++i)
    rec().record(FlightEventType::kRequestAdmitted, "frt_cap", i + 1);
  // A global cap of 3 (single-threaded here, so all 8 share one ring)
  // must keep exactly the newest 3, still timestamp-ordered.
  const auto events = rec().snapshot(t0, 3);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].trace_id, 6u);
  EXPECT_EQ(events[1].trace_id, 7u);
  EXPECT_EQ(events[2].trace_id, 8u);
  EXPECT_LE(events[0].t_ns, events[1].t_ns);
  EXPECT_LE(events[1].t_ns, events[2].t_ns);
}

TEST(FlightRecorder, RingWrapKeepsNewestCapacityEvents) {
  const uint64_t t0 = flight_now_ns();
  constexpr uint64_t kTotal = FlightRecorder::kRingCapacity + 50;
  // A dedicated thread gets its own ring (possibly one released by an
  // earlier test's thread — since_ns filters that occupant's events).
  std::thread writer([&] {
    for (uint64_t i = 0; i < kTotal; ++i)
      rec().record(FlightEventType::kRequestAdmitted, "frt_wrap", i + 1);
  });
  writer.join();
  const auto events = mine(t0, "frt_wrap");
  ASSERT_EQ(events.size(), FlightRecorder::kRingCapacity);
  // The oldest 50 were overwritten; the newest survives.
  EXPECT_EQ(events.front().trace_id, 51u);
  EXPECT_EQ(events.back().trace_id, kTotal);
}

TEST(FlightRecorder, SlowStoreKeepsTopKSlowestFirst) {
  rec().clear_slow_exemplars();
  rec().set_slow_threshold_us(0);
  const size_t k = FlightRecorder::kSlowK;
  for (size_t i = 0; i < k + 4; ++i)
    rec().note_slow("m", 8, i + 1, static_cast<int64_t>(100 + 10 * i),
                    {{TraceStage::kAdmitted, 0}});
  const auto slow = rec().slow_exemplars();
  ASSERT_EQ(slow.size(), k);
  // Slowest-first; the 4 fastest entries were evicted.
  EXPECT_EQ(slow.front().latency_us, 100 + 10 * static_cast<int64_t>(k + 3));
  EXPECT_EQ(slow.back().latency_us, 140);
  for (size_t i = 1; i < slow.size(); ++i)
    EXPECT_GE(slow[i - 1].latency_us, slow[i].latency_us);
  // Full store: a candidate below the retained floor cannot place.
  EXPECT_FALSE(rec().slow_candidate(139));
  EXPECT_TRUE(rec().slow_candidate(141));
  rec().clear_slow_exemplars();
}

TEST(FlightRecorder, SlowThresholdRejectsFastRequests) {
  rec().clear_slow_exemplars();
  rec().set_slow_threshold_us(10'000);
  EXPECT_FALSE(rec().slow_candidate(9'999));
  rec().note_slow("m", 0, 1, 9'999, {});
  EXPECT_TRUE(rec().slow_exemplars().empty());
  EXPECT_TRUE(rec().slow_candidate(10'000));
  rec().note_slow("m", 0, 2, 10'000, {});
  EXPECT_EQ(rec().slow_exemplars().size(), 1u);
  rec().set_slow_threshold_us(0);  // restore the always-sample default
  rec().clear_slow_exemplars();
}

TEST(FlightRecorder, DisabledRecordsNothing) {
  const uint64_t t0 = flight_now_ns();
  rec().set_enabled(false);
  rec().record(FlightEventType::kRequestAdmitted, "frt_disabled");
  EXPECT_FALSE(rec().slow_candidate(1'000'000));
  rec().set_enabled(true);
  EXPECT_TRUE(mine(t0, "frt_disabled").empty());
}

TEST(FlightRecorder, ConcurrentWritersAndSnapshots) {
  const uint64_t t0 = flight_now_ns();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        rec().record(FlightEventType::kWorkerEnd, "frt_stress",
                     static_cast<uint64_t>(t) << 32 | static_cast<uint32_t>(i),
                     8, 0, 1, static_cast<uint64_t>(i));
        if (i % 512 == 0)
          rec().note_slow("frt_stress", 8, 1, 100 + i % 50, {});
      }
    });
  // Snapshots and slow reads race the writers on purpose: the TSan CI
  // job runs this suite and must stay clean.
  for (int i = 0; i < 50; ++i) {
    (void)rec().snapshot(t0);
    (void)rec().slow_exemplars();
  }
  for (std::thread& t : writers) t.join();
  rec().clear_slow_exemplars();
  const auto events = mine(t0, "frt_stress");
  EXPECT_FALSE(events.empty());
  EXPECT_LE(events.size(),
            static_cast<size_t>(kThreads) * FlightRecorder::kRingCapacity);
  for (size_t i = 1; i < events.size(); ++i)
    EXPECT_LE(events[i - 1].t_ns, events[i].t_ns);
}

TEST(FlightRecorder, DumpToFdWritesBannerEventsAndTail) {
  rec().record(FlightEventType::kHealthTransition, "frt_dump_tag", 0x99, 8,
               0x21, 0, 0);
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  rec().dump_to_fd(fileno(f));
  std::fflush(f);
  std::rewind(f);
  std::string dump;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) dump.append(buf, n);
  std::fclose(f);
  EXPECT_NE(dump.find("==== FQBERT FLIGHT RECORDER DUMP ===="),
            std::string::npos);
  EXPECT_NE(dump.find("build: "), std::string::npos);
  // The freshly recorded event is within the last 64 of this thread's
  // ring, so the dump must carry it — with its type name and hex trace.
  EXPECT_NE(dump.find("type=health_transition tag=frt_dump_tag"),
            std::string::npos);
  EXPECT_NE(dump.find("trace=0x99"), std::string::npos);
  EXPECT_NE(dump.find("==== END FLIGHT RECORDER DUMP ===="),
            std::string::npos);
}

}  // namespace
}  // namespace fqbert::serve
