// Multi-tenant model router tests: several engines served from ONE
// process must be bit-identical to dedicated single-model servers; hot
// LOAD/UNLOAD under live wire traffic must leave every lane's
// accounting balanced (admitted == completed + timed_out + failed) and
// never wedge other lanes; protocol-v1 clients must keep being served
// on the default model; and EngineRegistry::unregister must be safe
// under concurrent get/register/unregister.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <thread>

#include "serve/loadgen.h"
#include "serve/net/transport_client.h"
#include "serve/net/transport_server.h"
#include "serve/router/model_router.h"
#include "serve/server.h"

namespace fqbert::serve {
namespace {

using core::FqBertModel;
using core::FqQuantConfig;
using core::QatBert;
using nn::BertConfig;
using nn::BertModel;
using nn::Example;

/// Random-weight calibrated engine of an arbitrary tiny shape —
/// different seeds/shapes give different logits, which is exactly what
/// routing tests need to prove requests hit the right model.
std::shared_ptr<const FqBertModel> make_engine(const BertConfig& config,
                                               uint64_t seed) {
  Rng rng(seed);
  BertModel model(config, rng);
  QatBert qat(model, FqQuantConfig::full());
  std::vector<Example> calib;
  Rng data_rng(seed * 31 + 7);
  for (int i = 0; i < 12; ++i)
    calib.push_back(synth_example(data_rng, 4 + (i % 3) * 5, config));
  qat.calibrate(calib);
  return std::make_shared<const FqBertModel>(FqBertModel::convert(qat));
}

BertConfig shape_a() {
  BertConfig c;
  c.vocab_size = 128;
  c.hidden = 16;
  c.num_layers = 2;
  c.num_heads = 2;
  c.ffn_dim = 32;
  c.max_seq_len = 32;
  c.num_classes = 2;
  return c;
}

/// Deliberately a different shape from A (vocab, width, classes, max
/// length) so cross-model routing mistakes cannot decode as valid.
BertConfig shape_b() {
  BertConfig c;
  c.vocab_size = 64;
  c.hidden = 24;
  c.num_layers = 2;
  c.num_heads = 3;
  c.ffn_dim = 48;
  c.max_seq_len = 20;
  c.num_classes = 3;
  return c;
}

struct TwoEngines {
  std::shared_ptr<const FqBertModel> a = make_engine(shape_a(), 1001);
  std::shared_ptr<const FqBertModel> b = make_engine(shape_b(), 2002);
};

TwoEngines& engines() {
  static TwoEngines e;
  return e;
}

RouterConfig fast_router_config(int workers = 2) {
  RouterConfig cfg;
  cfg.num_workers = workers;
  cfg.batcher.max_batch = 4;
  cfg.batcher.max_wait = Micros(500);
  return cfg;
}

// ---------------------------------------------------------------------------
// Acceptance: one router == K dedicated servers, bit for bit.
// ---------------------------------------------------------------------------

TEST(ModelRouter, TwoModelsBitIdenticalToDedicatedServers) {
  // One process, two lanes, shared workers.
  EngineRegistry registry;
  registry.register_model("a", engines().a);
  registry.register_model("b", engines().b);
  ModelRouter router(registry, fast_router_config());
  ASSERT_TRUE(router.add_model("a"));
  ASSERT_TRUE(router.add_model("b"));
  ASSERT_TRUE(router.start());

  // Two dedicated single-model servers (the pre-router deployment).
  ServerConfig scfg;
  scfg.num_workers = 1;
  scfg.batcher.max_batch = 4;
  scfg.batcher.max_wait = Micros(500);
  EngineRegistry reg_a, reg_b;
  reg_a.register_model("a", engines().a);
  reg_b.register_model("b", engines().b);
  InferenceServer server_a(reg_a, "a", scfg);
  InferenceServer server_b(reg_b, "b", scfg);
  ASSERT_TRUE(server_a.start());
  ASSERT_TRUE(server_b.start());

  constexpr int kPerModel = 40;
  std::atomic<int> mismatches{0};
  auto drive = [&](const char* model, const BertConfig& cfg,
                   InferenceServer& dedicated, uint64_t seed) {
    Rng rng(seed);
    for (int i = 0; i < kPerModel; ++i) {
      const Example ex =
          synth_example(rng, 2 + rng.randint(0, cfg.max_seq_len - 2), cfg);
      ServeResponse via_router = router.submit(model, ex).get();
      ServeResponse via_dedicated = dedicated.submit(ex).get();
      if (via_router.status != RequestStatus::kOk ||
          via_dedicated.status != RequestStatus::kOk ||
          via_router.logits != via_dedicated.logits ||
          via_router.predicted != via_dedicated.predicted)
        mismatches.fetch_add(1);
    }
  };
  // Both models concurrently: lane isolation under interleaved batches.
  std::thread ta(drive, "a", shape_a(), std::ref(server_a), 11);
  std::thread tb(drive, "b", shape_b(), std::ref(server_b), 22);
  ta.join();
  tb.join();
  EXPECT_EQ(mismatches.load(), 0);

  server_a.shutdown();
  server_b.shutdown();
  router.shutdown();
  for (const auto& [name, lane_tier, st] : router.all_stats()) {
    EXPECT_TRUE(st.accounting_balances()) << name;
    EXPECT_EQ(st.completed, kPerModel) << name;
  }
}

// ---------------------------------------------------------------------------
// In-process routing edges.
// ---------------------------------------------------------------------------

TEST(ModelRouter, UnknownModelRejectsImmediately) {
  EngineRegistry registry;
  registry.register_model("a", engines().a);
  ModelRouter router(registry, fast_router_config());
  ASSERT_TRUE(router.add_model("a"));
  ASSERT_TRUE(router.start());

  Rng rng(5);
  AdmitResult admit;
  auto fut = router.submit("nope", synth_example(rng, 8, shape_a()),
                           std::nullopt, &admit);
  EXPECT_EQ(admit, AdmitResult::kUnknownModel);
  EXPECT_EQ(fut.get().status, RequestStatus::kRejectedUnknownModel);
  EXPECT_EQ(router.unknown_model_rejections(), 1u);

  // The empty name routes to the default model (first lane added).
  EXPECT_EQ(router.default_model(), "a");
  auto ok = router.submit("", synth_example(rng, 8, shape_a()));
  EXPECT_EQ(ok.get().status, RequestStatus::kOk);
  router.shutdown();
}

TEST(ModelRouter, PerLaneShapeValidation) {
  // A request valid for B (seq 20, 3 segments worth of ids) but not for
  // A must be judged against the lane it routes to, not some global
  // shape.
  EngineRegistry registry;
  registry.register_model("a", engines().a);
  registry.register_model("b", engines().b);
  ModelRouter router(registry, fast_router_config());
  ASSERT_TRUE(router.add_model("a"));
  ASSERT_TRUE(router.add_model("b"));
  ASSERT_TRUE(router.start());

  Example too_long_for_b;
  too_long_for_b.tokens.assign(32, 1);  // A allows 32, B caps at 20
  too_long_for_b.segments.assign(32, 0);
  EXPECT_EQ(router.submit("a", too_long_for_b).get().status,
            RequestStatus::kOk);
  EXPECT_EQ(router.submit("b", too_long_for_b).get().status,
            RequestStatus::kRejectedInvalid);
  router.shutdown();
}

TEST(ModelRouter, UnloadDrainsOnlyItsLane) {
  EngineRegistry registry;
  registry.register_model("a", engines().a);
  registry.register_model("b", engines().b);
  ModelRouter router(registry, fast_router_config(1));
  ASSERT_TRUE(router.add_model("a"));
  ASSERT_TRUE(router.add_model("b"));
  ASSERT_TRUE(router.start());

  // Park work on both lanes, then unload B: its futures must all
  // resolve (drain), while A keeps serving afterwards.
  Rng rng(7);
  std::vector<std::future<ServeResponse>> b_futures;
  for (int i = 0; i < 12; ++i)
    b_futures.push_back(
        router.submit("b", synth_example(rng, 6, shape_b())));
  ASSERT_TRUE(router.unload_model("b"));
  // A running unload DRAINS: every admitted request completes (the
  // abort path only exists for never-started/stopped routers), so kOk
  // strictly — anything else means drained work was dropped.
  for (auto& fut : b_futures)
    EXPECT_EQ(fut.get().status, RequestStatus::kOk);
  EXPECT_FALSE(router.has_model("b"));
  EXPECT_FALSE(registry.contains("b"));
  // B is gone; A is untouched.
  EXPECT_EQ(router.submit("b", synth_example(rng, 6, shape_b()))
                .get()
                .status,
            RequestStatus::kRejectedUnknownModel);
  EXPECT_EQ(router.submit("a", synth_example(rng, 8, shape_a()))
                .get()
                .status,
            RequestStatus::kOk);
  router.shutdown();
}

// ---------------------------------------------------------------------------
// Acceptance: hot LOAD/UNLOAD under live wire traffic, per-lane balance.
// ---------------------------------------------------------------------------

TEST(ModelRouterWire, HotLoadUnloadUnderLiveTraffic) {
  // Serialize C so the control plane can hot-load it from a file.
  const std::string c_path = ::testing::TempDir() + "router_model_c.bin";
  ASSERT_TRUE(engines().b->save(c_path));

  EngineRegistry registry;
  registry.register_model("a", engines().a);
  registry.register_model("b", engines().b);
  ModelRouter router(registry, fast_router_config());
  ASSERT_TRUE(router.add_model("a"));
  ASSERT_TRUE(router.add_model("b"));
  ASSERT_TRUE(router.start());
  net::TransportConfig tcfg;
  tcfg.port = 0;
  net::TransportServer transport(router, tcfg);
  ASSERT_TRUE(transport.start());
  const uint16_t port = transport.port();

  // Live background traffic over A and B for the whole test.
  std::atomic<bool> stop{false};
  std::atomic<int> transport_failures{0};
  auto traffic = [&](const std::string& model, const BertConfig& cfg,
                     uint64_t seed) {
    net::TransportClient client;
    if (!client.connect("127.0.0.1", port)) {
      transport_failures.fetch_add(1);
      return;
    }
    Rng rng(seed);
    while (!stop.load()) {
      const auto resp =
          client.call(synth_example(rng, 4 + rng.randint(0, 8), cfg),
                      std::nullopt, model);
      if (!resp || resp->status != RequestStatus::kOk)
        transport_failures.fetch_add(1);
    }
  };
  std::thread ta(traffic, "a", shape_a(), 101);
  std::thread tb(traffic, "b", shape_b(), 202);

  // Control plane on its own connection: load C, serve it, unload it —
  // several times, all under the live A/B traffic.
  net::TransportClient admin;
  ASSERT_TRUE(admin.connect("127.0.0.1", port)) << admin.error();
  Rng rng(303);
  for (int round = 0; round < 3; ++round) {
    std::string message;
    ASSERT_TRUE(admin.load_model("c", c_path, &message)) << message;
    // Double-load must fail in-band without killing the connection.
    EXPECT_FALSE(admin.load_model("c", c_path, &message));
    EXPECT_TRUE(admin.connected());

    const auto names = admin.list_models();
    ASSERT_TRUE(names.has_value()) << admin.error();
    EXPECT_EQ(names->size(), 3u);  // a, b, c

    // C must actually serve (same weights as B: spot-check equality).
    const Example ex = synth_example(rng, 6, shape_b());
    const auto via_c = admin.call(ex, std::nullopt, "c");
    ASSERT_TRUE(via_c.has_value()) << admin.error();
    ASSERT_EQ(via_c->status, RequestStatus::kOk);
    const Tensor expect = engines().b->forward(ex);
    ASSERT_EQ(static_cast<size_t>(expect.numel()), via_c->logits.size());
    for (int64_t j = 0; j < expect.numel(); ++j)
      EXPECT_EQ(expect[j], via_c->logits[static_cast<size_t>(j)]);

    // C's lane must balance before it disappears (nothing in flight on
    // it: this admin connection is its only traffic source).
    const auto c_stats = admin.query_stats("c");
    ASSERT_TRUE(c_stats.has_value()) << admin.error();
    EXPECT_TRUE(c_stats->report.accounting_balances());

    ASSERT_TRUE(admin.unload_model("c", &message)) << message;
    EXPECT_FALSE(admin.unload_model("c", &message));  // already gone
    EXPECT_TRUE(admin.connected());

    // Unloaded: rejected in-band, not a transport error.
    const auto after = admin.call(ex, std::nullopt, "c");
    ASSERT_TRUE(after.has_value()) << admin.error();
    EXPECT_EQ(after->status, RequestStatus::kRejectedUnknownModel);
  }

  stop = true;
  ta.join();
  tb.join();
  EXPECT_EQ(transport_failures.load(), 0);

  transport.stop();
  router.shutdown(/*drain=*/true);
  // Every surviving lane balances; the A/B lanes were never disturbed.
  const auto stats = router.all_stats();
  ASSERT_EQ(stats.size(), 2u);
  for (const auto& [name, lane_tier, st] : stats) {
    EXPECT_TRUE(st.accounting_balances())
        << name << ": admitted " << st.admitted << " completed "
        << st.completed << " timed_out " << st.timed_out << " failed "
        << st.failed;
    EXPECT_GT(st.completed, 0u) << name;
  }
  EXPECT_EQ(router.unknown_model_rejections(), 3u);  // one per round
  std::remove(c_path.c_str());
}

// ---------------------------------------------------------------------------
// Acceptance: protocol-v1 clients still get served on the default model.
// ---------------------------------------------------------------------------

TEST(ModelRouterWire, V1ClientServedOnDefaultModel) {
  EngineRegistry registry;
  registry.register_model("a", engines().a);
  registry.register_model("b", engines().b);
  ModelRouter router(registry, fast_router_config());
  ASSERT_TRUE(router.add_model("a"));  // default
  ASSERT_TRUE(router.add_model("b"));
  ASSERT_TRUE(router.start());
  net::TransportConfig tcfg;
  tcfg.port = 0;
  net::TransportServer transport(router, tcfg);
  ASSERT_TRUE(transport.start());

  // A client pinned to protocol v1 emits exactly the pre-router wire
  // format: no model strings anywhere.
  net::TransportClient v1(/*protocol_version=*/1);
  ASSERT_TRUE(v1.connect("127.0.0.1", transport.port())) << v1.error();
  const auto info = v1.query_info();
  ASSERT_TRUE(info.has_value()) << v1.error();
  EXPECT_EQ(info->hidden, shape_a().hidden);
  EXPECT_EQ(info->max_seq_len, shape_a().max_seq_len);

  Rng rng(77);
  for (int i = 0; i < 10; ++i) {
    const Example ex = synth_example(rng, 5 + i, shape_a());
    const auto resp = v1.call(ex);
    ASSERT_TRUE(resp.has_value()) << v1.error();
    ASSERT_EQ(resp->status, RequestStatus::kOk);
    const Tensor expect = engines().a->forward(ex);
    ASSERT_EQ(static_cast<size_t>(expect.numel()), resp->logits.size());
    for (int64_t j = 0; j < expect.numel(); ++j)
      EXPECT_EQ(expect[j], resp->logits[static_cast<size_t>(j)]);
  }
  // v1 cannot address models or the control plane by construction.
  EXPECT_FALSE(v1.call(synth_example(rng, 5, shape_a()), std::nullopt, "b")
                   .has_value());
  EXPECT_TRUE(v1.connected());  // rejected client-side, socket untouched
  EXPECT_FALSE(v1.query_info("b").has_value());  // would silently misroute
  EXPECT_TRUE(v1.connected());
  EXPECT_FALSE(v1.list_models().has_value());

  // With the default lane unloaded, a v1 request resolves to an
  // unknown model server-side — but that status postdates v1, so the
  // wire must degrade it to a v1-era rejection instead of sending a
  // byte old decoders treat as malformed.
  ASSERT_TRUE(router.unload_model("a"));
  const auto resp = v1.call(synth_example(rng, 5, shape_a()));
  ASSERT_TRUE(resp.has_value()) << v1.error();
  EXPECT_EQ(resp->status, RequestStatus::kRejectedInvalid);

  transport.stop();
  router.shutdown();
}

TEST(ModelRouter, LoadRefusedOnceShutdown) {
  const std::string path = ::testing::TempDir() + "router_model_s.bin";
  ASSERT_TRUE(engines().a->save(path));
  EngineRegistry registry;
  registry.register_model("a", engines().a);
  ModelRouter router(registry, fast_router_config());
  ASSERT_TRUE(router.add_model("a"));
  ASSERT_TRUE(router.start());
  router.shutdown();
  // A lane published after the shutdown snapshot would never drain and
  // would hang the worker-exit condition; it must be refused instead.
  std::string error;
  EXPECT_FALSE(router.load_model("late", path, &error));
  EXPECT_FALSE(router.has_model("late"));
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Wire control plane details.
// ---------------------------------------------------------------------------

TEST(ModelRouterWire, AdminFailuresAreInBand) {
  EngineRegistry registry;
  registry.register_model("a", engines().a);
  ModelRouter router(registry, fast_router_config());
  ASSERT_TRUE(router.add_model("a"));
  ASSERT_TRUE(router.start());
  net::TransportConfig tcfg;
  tcfg.port = 0;
  net::TransportServer transport(router, tcfg);
  ASSERT_TRUE(transport.start());

  net::TransportClient admin;
  ASSERT_TRUE(admin.connect("127.0.0.1", transport.port()));
  std::string message;
  // Unloadable file: failure message travels in-band.
  EXPECT_FALSE(admin.load_model("x", "/nonexistent/engine.bin", &message));
  EXPECT_FALSE(message.empty());
  EXPECT_TRUE(admin.connected());
  EXPECT_EQ(admin.error_kind(), net::ClientError::kNone);
  // Stats/info for unknown models likewise.
  EXPECT_FALSE(admin.query_stats("ghost").has_value());
  EXPECT_TRUE(admin.connected());
  EXPECT_FALSE(admin.query_info("ghost").has_value());
  EXPECT_TRUE(admin.connected());
  // And the connection still serves admin + data requests afterwards.
  const auto names = admin.list_models();
  ASSERT_TRUE(names.has_value());
  EXPECT_EQ(names->size(), 1u);
  Rng rng(9);
  const auto resp = admin.call(synth_example(rng, 8, shape_a()));
  ASSERT_TRUE(resp.has_value()) << admin.error();
  EXPECT_EQ(resp->status, RequestStatus::kOk);

  transport.stop();
  router.shutdown();
}

TEST(ModelRouterWire, RecvTimeoutSurfacesAsTimedOut) {
  // A listener that accepts but never answers: the client's receive
  // timeout must fire with a clean kTimedOut, not block forever.
  net::TransportClient client;
  client.set_timeouts(Micros(1'000'000), Micros(150'000));

  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          &len),
            0);

  ASSERT_TRUE(client.connect("127.0.0.1", ntohs(addr.sin_port)))
      << client.error();
  const auto t0 = Clock::now();
  EXPECT_FALSE(client.query_info().has_value());
  EXPECT_EQ(client.error_kind(), net::ClientError::kTimedOut);
  EXPECT_FALSE(client.connected());  // a half-read stream cannot resync
  const auto waited =
      std::chrono::duration_cast<Micros>(Clock::now() - t0);
  EXPECT_LT(waited.count(), 5'000'000);  // bounded, not forever
  ::close(listen_fd);
}

// ---------------------------------------------------------------------------
// Satellite: EngineRegistry::unregister + thread safety.
// ---------------------------------------------------------------------------

TEST(EngineRegistry, UnregisterRemovesOnlyTheName) {
  EngineRegistry registry;
  registry.register_model("a", engines().a);
  std::shared_ptr<const FqBertModel> held = registry.get("a");
  ASSERT_TRUE(held);
  EXPECT_TRUE(registry.unregister("a"));
  EXPECT_FALSE(registry.contains("a"));
  EXPECT_EQ(registry.get("a"), nullptr);
  EXPECT_FALSE(registry.unregister("a"));  // second time: unknown
  // Existing holders keep the engine alive and usable.
  Rng rng(3);
  const Example ex = synth_example(rng, 6, shape_a());
  EXPECT_NO_THROW({ (void)held->forward(ex); });
}

TEST(EngineRegistry, ConcurrentGetRegisterUnregister) {
  EngineRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  std::atomic<uint64_t> hits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string name = "m" + std::to_string(t % 3);
      for (int i = 0; i < kIters; ++i) {
        switch ((t + i) % 4) {
          case 0:
            registry.register_model(name,
                                    (t % 2) ? engines().a : engines().b);
            break;
          case 1:
            if (registry.get(name)) hits.fetch_add(1);
            break;
          case 2:
            registry.unregister(name);
            break;
          case 3: {
            // names()/contains()/source_path() race the writers too.
            const auto names = registry.names();
            for (const auto& n : names) (void)registry.source_path(n);
            (void)registry.contains(name);
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // No crash/race (ASan/TSan-clean) and every surviving name resolves.
  for (const auto& name : registry.names())
    EXPECT_NE(registry.get(name), nullptr) << name;
}

}  // namespace
}  // namespace fqbert::serve
