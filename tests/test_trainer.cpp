// Trainer behaviour tests: schedule shape, gradient accumulation,
// epoch callbacks, determinism under fixed seeds.
#include <gtest/gtest.h>

#include "nn/trainer.h"
#include "test_util.h"

namespace fqbert::nn {
namespace {

using fqbert::testing::make_example;

BertConfig tiny() {
  BertConfig c;
  c.vocab_size = 16;
  c.hidden = 8;
  c.num_layers = 1;
  c.num_heads = 2;
  c.ffn_dim = 16;
  c.max_seq_len = 8;
  c.num_classes = 2;
  return c;
}

std::vector<Example> tiny_data(int n) {
  std::vector<Example> out;
  Rng rng(5);
  for (int i = 0; i < n; ++i) {
    const bool pos = rng.flip(0.5);
    out.push_back(make_example({1, pos ? 8 : 9, 2}, pos ? 1 : 0));
  }
  return out;
}

TEST(Trainer, EpochCallbackFiresEveryEpoch) {
  Rng rng(1);
  BertModel m(tiny(), rng);
  auto data = tiny_data(24);
  TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 8;
  std::vector<int> seen;
  tc.on_epoch = [&](int e, double loss, double acc) {
    seen.push_back(e);
    EXPECT_GE(loss, 0.0);
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 100.0);
  };
  train(m, data, data, tc);
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Trainer, StepCountMatchesBatches) {
  Rng rng(2);
  BertModel m(tiny(), rng);
  auto data = tiny_data(20);  // 20/8 -> 3 batches per epoch
  TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 8;
  const TrainResult r = train(m, data, data, tc);
  EXPECT_EQ(r.steps, 2 * 3);
}

TEST(Trainer, DeterministicGivenSeeds) {
  auto run = [] {
    Rng rng(3);
    BertModel m(tiny(), rng);
    auto data = tiny_data(16);
    TrainConfig tc;
    tc.epochs = 2;
    tc.batch_size = 4;
    train(m, data, data, tc);
    return state_to_vector(m);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << i;
}

TEST(Trainer, DifferentShuffleSeedDiverges) {
  auto run = [](uint64_t shuffle_seed) {
    Rng rng(3);
    BertModel m(tiny(), rng);
    auto data = tiny_data(16);
    TrainConfig tc;
    tc.epochs = 2;
    tc.batch_size = 4;
    tc.shuffle_seed = shuffle_seed;
    train(m, data, data, tc);
    return state_to_vector(m);
  };
  const auto a = run(1);
  const auto b = run(2);
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Trainer, LossDecreasesOnSeparableData) {
  Rng rng(4);
  BertModel m(tiny(), rng);
  auto data = tiny_data(32);
  TrainConfig tc;
  tc.epochs = 10;
  tc.batch_size = 8;
  tc.adam.lr = 3e-3f;
  std::vector<double> losses;
  tc.on_epoch = [&](int, double loss, double) { losses.push_back(loss); };
  train(m, data, data, tc);
  EXPECT_LT(losses.back(), losses.front() * 0.7);
}

TEST(Trainer, ZeroGradAfterTraining) {
  // The optimizer consumes gradients every step; after train() returns
  // all parameter grads must be zeroed (no stale accumulation).
  Rng rng(6);
  BertModel m(tiny(), rng);
  auto data = tiny_data(8);
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 8;
  train(m, data, data, tc);
  for (Param* p : m.params())
    for (int64_t i = 0; i < p->grad.numel(); ++i)
      ASSERT_EQ(p->grad[i], 0.0f) << p->name;
}

}  // namespace
}  // namespace fqbert::nn
