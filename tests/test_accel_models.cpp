// Accelerator model tests: Table III resources/latency and Table IV
// power/efficiency reproduce the paper's operating points, and the
// analytic models behave sanely away from them.
#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "platform/platform.h"

namespace fqbert::accel {
namespace {

const nn::BertConfig kBertBase = nn::BertConfig::bert_base(2);
constexpr int64_t kSeqLen = 128;

// ------------------------------ resources ---------------------------------

TEST(ResourceModel, Zcu102_8_16_MatchesTable3) {
  const auto r = ResourceModel::estimate(AcceleratorConfig::zcu102_8_16(),
                                         FpgaDevice::zcu102());
  EXPECT_NEAR(static_cast<double>(r.dsp48), 1751, 1751 * 0.02);
  EXPECT_NEAR(static_cast<double>(r.ff), 124433, 124433 * 0.02);
  EXPECT_NEAR(static_cast<double>(r.lut), 123157, 123157 * 0.02);
  EXPECT_NEAR(static_cast<double>(r.bram18k), 838, 838 * 0.02);
  EXPECT_TRUE(r.fits(FpgaDevice::zcu102()));
}

TEST(ResourceModel, Zcu102_16_8_MatchesTable3) {
  const auto r = ResourceModel::estimate(AcceleratorConfig::zcu102_16_8(),
                                         FpgaDevice::zcu102());
  EXPECT_NEAR(static_cast<double>(r.dsp48), 1671, 1671 * 0.02);
  EXPECT_NEAR(static_cast<double>(r.ff), 151010, 151010 * 0.02);
  EXPECT_NEAR(static_cast<double>(r.lut), 154192, 154192 * 0.02);
  EXPECT_NEAR(static_cast<double>(r.bram18k), 877, 877 * 0.02);
}

TEST(ResourceModel, Zcu111_16_16_MatchesTable3) {
  const auto r = ResourceModel::estimate(AcceleratorConfig::zcu111_16_16(),
                                         FpgaDevice::zcu111());
  EXPECT_NEAR(static_cast<double>(r.dsp48), 3287, 3287 * 0.02);
  EXPECT_NEAR(static_cast<double>(r.ff), 201469, 201469 * 0.02);
  EXPECT_NEAR(static_cast<double>(r.lut), 189724, 189724 * 0.02);
  EXPECT_NEAR(static_cast<double>(r.bram18k), 679, 679 * 0.02);
  EXPECT_GT(r.uram, 0);
  EXPECT_TRUE(r.fits(FpgaDevice::zcu111()));
}

TEST(ResourceModel, DspDominatedUtilization) {
  // "the DSP usage is very high for the targeted FPGA" (Sec. IV-C).
  const auto cfg = AcceleratorConfig::zcu102_8_16();
  const auto dev = FpgaDevice::zcu102();
  const auto r = ResourceModel::estimate(cfg, dev);
  const double dsp_util = r.dsp_utilization(dev);
  EXPECT_GT(dsp_util, 0.6);
  EXPECT_GT(dsp_util, static_cast<double>(r.lut) / dev.lut);
  EXPECT_GT(dsp_util, static_cast<double>(r.ff) / dev.ff);
}

TEST(ResourceModel, TypeBCostsMoreLogicSameDsp) {
  auto a = AcceleratorConfig::zcu102_8_16();
  auto b = a;
  b.bim_type_a = 0;
  const auto ra = ResourceModel::estimate(a, FpgaDevice::zcu102());
  const auto rb = ResourceModel::estimate(b, FpgaDevice::zcu102());
  EXPECT_EQ(ra.dsp48, rb.dsp48);
  EXPECT_GT(rb.lut, ra.lut);
  EXPECT_GT(rb.ff, ra.ff);
}

TEST(ResourceModel, ScalesWithPes) {
  auto small = AcceleratorConfig::zcu102_8_16();
  auto big = small;
  big.pes_per_pu = 16;
  const auto rs = ResourceModel::estimate(small, FpgaDevice::zcu102());
  const auto rb = ResourceModel::estimate(big, FpgaDevice::zcu102());
  EXPECT_GT(rb.dsp48, rs.dsp48);
  EXPECT_GT(rb.ff, rs.ff);
}

// ------------------------------- latency ----------------------------------

TEST(PerfModel, Zcu102_8_16_LatencyNearTable3) {
  PerfModel pm(AcceleratorConfig::zcu102_8_16(), FpgaDevice::zcu102());
  const auto rep = pm.estimate(kBertBase, kSeqLen);
  EXPECT_NEAR(rep.total_ms, 43.89, 43.89 * 0.06);
}

TEST(PerfModel, Zcu102_16_8_LatencyNearTable3) {
  PerfModel pm(AcceleratorConfig::zcu102_16_8(), FpgaDevice::zcu102());
  const auto rep = pm.estimate(kBertBase, kSeqLen);
  EXPECT_NEAR(rep.total_ms, 45.35, 45.35 * 0.06);
}

TEST(PerfModel, Zcu111_16_16_LatencyNearTable3) {
  PerfModel pm(AcceleratorConfig::zcu111_16_16(), FpgaDevice::zcu111());
  const auto rep = pm.estimate(kBertBase, kSeqLen);
  EXPECT_NEAR(rep.total_ms, 23.79, 23.79 * 0.06);
}

TEST(PerfModel, DoublingMultipliersNearlyHalvesLatency) {
  PerfModel small(AcceleratorConfig::zcu102_8_16(), FpgaDevice::zcu102());
  PerfModel big(AcceleratorConfig::zcu111_16_16(), FpgaDevice::zcu111());
  const double r = big.estimate(kBertBase, kSeqLen).total_ms /
                   small.estimate(kBertBase, kSeqLen).total_ms;
  EXPECT_GT(r, 0.45);
  EXPECT_LT(r, 0.62);  // "nearly twice the performance" (Sec. IV-C)
}

TEST(PerfModel, OverlapNeverSlower) {
  PerfModel pm(AcceleratorConfig::zcu102_8_16(), FpgaDevice::zcu102());
  const auto with = pm.estimate(kBertBase, kSeqLen);
  const auto without = pm.estimate_no_overlap(kBertBase, kSeqLen);
  EXPECT_LT(with.total_ms, without.total_ms);
  // With enough bandwidth the transfer is almost fully hidden
  // ("completely overlapped by computing").
  EXPECT_LT((without.total_ms - with.total_ms) / without.total_ms, 0.5);
}

TEST(PerfModel, MatmulCyclesFormula) {
  PerfModel pm(AcceleratorConfig::zcu102_8_16(), FpgaDevice::zcu102());
  // outputs=128*768 over 96 PEs = 1024 tiles; ceil(768/16)=48 + 2 fill.
  EXPECT_EQ(pm.matmul_cycles(128, 768, 768, false), 1024 * 50);
  // 8x8 mode: lanes = 8.
  EXPECT_EQ(pm.matmul_cycles(128, 768, 768, true), 1024 * 98);
}

TEST(PerfModel, StagesCoverFig5Sequence) {
  PerfModel pm(AcceleratorConfig::zcu102_8_16(), FpgaDevice::zcu102());
  const auto rep = pm.estimate(kBertBase, kSeqLen);
  ASSERT_EQ(rep.stages.size(), 11u);
  EXPECT_EQ(rep.stages[0].name, "X*Wq");
  EXPECT_EQ(rep.stages[3].name, "Q*K^T");
  EXPECT_EQ(rep.stages[4].name, "Softmax");
  EXPECT_EQ(rep.stages[5].name, "Attn*V");
  EXPECT_EQ(rep.stages[10].name, "Add&LN2");
  // FFN stages stream the largest weight tiles -> most sub-stages.
  EXPECT_GT(rep.stages[8].sub_stages, rep.stages[0].sub_stages);
  // Total adds up.
  int64_t sum = 0;
  for (const auto& st : rep.stages) sum += st.total_cycles;
  EXPECT_EQ(sum, rep.cycles_per_layer);
  EXPECT_EQ(rep.total_cycles, rep.cycles_per_layer * 12);
}

TEST(PerfModel, LongerSequencesCostMore) {
  PerfModel pm(AcceleratorConfig::zcu102_8_16(), FpgaDevice::zcu102());
  EXPECT_LT(pm.estimate(kBertBase, 64).total_ms,
            pm.estimate(kBertBase, 128).total_ms);
  EXPECT_LT(pm.estimate(kBertBase, 128).total_ms,
            pm.estimate(kBertBase, 256).total_ms);
}

// ------------------------------ power / table 4 ----------------------------

TEST(PowerModel, MatchesPaperWithinTenPercent) {
  const double p102 = PowerModel::estimate_w(
      AcceleratorConfig::zcu102_8_16(), FpgaDevice::zcu102());
  const double p111 = PowerModel::estimate_w(
      AcceleratorConfig::zcu111_16_16(), FpgaDevice::zcu111());
  EXPECT_NEAR(p102, 9.8, 0.98);
  EXPECT_NEAR(p111, 13.2, 1.32);
}

TEST(PlatformModels, LatenciesNearTable4) {
  const double flops = platform::bert_flops(kBertBase, kSeqLen);
  EXPECT_GT(flops, 20e9);  // ">20 GFLOPs" (intro)
  const auto cpu = platform::PlatformModel::cpu_i7_8700();
  const auto gpu = platform::PlatformModel::gpu_k80();
  EXPECT_NEAR(cpu.latency_ms(flops), 145.06, 145.06 * 0.05);
  EXPECT_NEAR(gpu.latency_ms(flops), 27.84, 27.84 * 0.05);
}

TEST(Table4, EfficiencyRatiosHold) {
  const double flops = platform::bert_flops(kBertBase, kSeqLen);
  const auto cpu = platform::PlatformModel::cpu_i7_8700();
  const auto gpu = platform::PlatformModel::gpu_k80();
  const auto fpga = evaluate(AcceleratorConfig::zcu111_16_16(),
                             FpgaDevice::zcu111(), kBertBase, kSeqLen);
  const double cpu_eff = cpu.fps_per_w(flops);
  const double gpu_eff = gpu.fps_per_w(flops);
  // Paper: 3.18 fps/W; 28.91x over CPU; 12.72x over GPU.
  EXPECT_NEAR(fpga.fps_per_w, 3.18, 3.18 * 0.08);
  EXPECT_NEAR(fpga.fps_per_w / cpu_eff, 28.91, 28.91 * 0.15);
  EXPECT_NEAR(fpga.fps_per_w / gpu_eff, 12.72, 12.72 * 0.15);
}

TEST(Table4, GpuBeatsZcu102OnLatencyButLosesOnEfficiency) {
  const double flops = platform::bert_flops(kBertBase, kSeqLen);
  const auto gpu = platform::PlatformModel::gpu_k80();
  const auto z102 = evaluate(AcceleratorConfig::zcu102_8_16(),
                             FpgaDevice::zcu102(), kBertBase, kSeqLen);
  EXPECT_LT(gpu.latency_ms(flops), z102.latency.total_ms);
  EXPECT_GT(z102.fps_per_w, gpu.fps_per_w(flops) * 5.0);
}

TEST(Table4, Zcu111BeatsGpuOnLatencyToo) {
  const double flops = platform::bert_flops(kBertBase, kSeqLen);
  const auto gpu = platform::PlatformModel::gpu_k80();
  const auto z111 = evaluate(AcceleratorConfig::zcu111_16_16(),
                             FpgaDevice::zcu111(), kBertBase, kSeqLen);
  EXPECT_LT(z111.latency.total_ms, gpu.latency_ms(flops));
}

}  // namespace
}  // namespace fqbert::accel
