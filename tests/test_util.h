// Shared helpers for the FQ-BERT test suite.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/bert.h"
#include "nn/loss.h"
#include "tensor/tensor_ops.h"

namespace fqbert::testing {

/// Central-difference gradient check: perturbs every parameter scalar of
/// `params` and compares d(loss)/d(param) against the accumulated
/// analytic gradient. `loss_fn` must run forward+backward (accumulating
/// grads) and return the loss; gradients are zeroed here between probes.
inline void check_gradients(std::vector<nn::Param*> params,
                            const std::function<float()>& loss_fn,
                            double rel_tol = 5e-2, double abs_tol = 4e-4,
                            int max_probes_per_param = 4) {
  // Analytic gradients.
  for (nn::Param* p : params) p->zero_grad();
  loss_fn();

  std::vector<Tensor> analytic;
  analytic.reserve(params.size());
  for (nn::Param* p : params) analytic.push_back(p->grad);

  const float eps = 1e-3f;
  for (size_t pi = 0; pi < params.size(); ++pi) {
    nn::Param* p = params[pi];
    const int64_t n = p->value.numel();
    const int64_t stride = std::max<int64_t>(1, n / max_probes_per_param);
    for (int64_t j = 0; j < n; j += stride) {
      const float saved = p->value[j];
      p->value[j] = saved + eps;
      for (nn::Param* q : params) q->zero_grad();
      const double lp = loss_fn();
      p->value[j] = saved - eps;
      for (nn::Param* q : params) q->zero_grad();
      const double lm = loss_fn();
      p->value[j] = saved;
      const double numeric = (lp - lm) / (2.0 * eps);
      const double analytic_g = analytic[pi][j];
      const double denom =
          std::max(std::fabs(numeric), std::fabs(analytic_g));
      // Absolute floor covers float32 finite-difference noise (~1e-4 for
      // O(1) losses at eps=1e-3).
      EXPECT_NEAR(numeric, analytic_g, rel_tol * denom + abs_tol)
          << "param " << p->name << " index " << j;
    }
  }
  for (nn::Param* p : params) p->zero_grad();
}

/// Random [rows, cols] tensor.
inline Tensor random_tensor(int64_t rows, int64_t cols, Rng& rng,
                            float stddev = 1.0f) {
  Tensor t(Shape{rows, cols});
  fill_normal(t, rng, 0.0f, stddev);
  return t;
}

/// A tiny deterministic classification example.
inline nn::Example make_example(std::vector<int32_t> tokens, int32_t label) {
  nn::Example ex;
  ex.tokens = std::move(tokens);
  ex.segments.assign(ex.tokens.size(), 0);
  ex.label = label;
  return ex;
}

}  // namespace fqbert::testing
