// QAT instrumentation and integer-engine integration tests.
//
// These are the end-to-end checks behind Tables I and II: a small model
// is trained in float, instrumented, calibrated, converted, and the
// integer-only engine must (a) be self-consistent, (b) track the
// fake-quantized model closely, and (c) respond correctly to the
// per-part ablation toggles.
#include <gtest/gtest.h>

#include "accel/functional.h"
#include "core/fq_bert.h"
#include "data/synth_tasks.h"
#include "nn/trainer.h"
#include "test_util.h"

namespace fqbert::core {
namespace {

using data::Sst2Config;
using nn::BertConfig;
using nn::BertModel;
using nn::Example;

BertConfig small_config() {
  BertConfig c;
  c.vocab_size = 512;
  c.hidden = 16;
  c.num_layers = 2;
  c.num_heads = 2;
  c.ffn_dim = 32;
  c.max_seq_len = 32;
  c.num_classes = 2;
  return c;
}

/// Train a small float model once for the whole test suite.
struct TrainedFixture {
  BertConfig config = small_config();
  std::unique_ptr<BertModel> model;
  std::vector<Example> train_set, eval_set;

  TrainedFixture() {
    Sst2Config dcfg;
    dcfg.label_noise = 0.0;
    train_set = data::make_sst2(dcfg, 220, 1001);
    eval_set = data::make_sst2(dcfg, 80, 2002);
    Rng rng(5);
    model = std::make_unique<BertModel>(config, rng);
    nn::TrainConfig tc;
    tc.epochs = 5;
    tc.batch_size = 16;
    tc.adam.lr = 2e-3f;
    nn::train(*model, train_set, eval_set, tc);
  }
};

TrainedFixture& fixture() {
  static TrainedFixture f;
  return f;
}

TEST(Qat, AttachDetachLeavesModelUnchanged) {
  auto& f = fixture();
  const Example& ex = f.eval_set[0];
  const Tensor before = f.model->forward(ex);
  {
    QatBert qat(*f.model, FqQuantConfig::full());
    // Hook installed: the forward changes.
    const Tensor hooked = f.model->forward(ex);
    (void)hooked;
  }
  const Tensor after = f.model->forward(ex);
  EXPECT_EQ(max_abs_diff(before, after), 0.0);
}

TEST(Qat, BaselineConfigInstallsNothing) {
  auto& f = fixture();
  const Example& ex = f.eval_set[0];
  const Tensor before = f.model->forward(ex);
  QatBert qat(*f.model, FqQuantConfig::baseline());
  const Tensor during = f.model->forward(ex);
  EXPECT_EQ(max_abs_diff(before, during), 0.0);
  EXPECT_THROW(FqBertModel::convert(qat), std::invalid_argument);
}

TEST(Qat, FakeQuantChangesForwardButNotCatastrophically) {
  auto& f = fixture();
  QatBert qat(*f.model, FqQuantConfig::full());
  qat.calibrate(f.train_set);
  const double float_acc = [&] {
    QatBert detached_scope(*f.model, FqQuantConfig::baseline());
    return f.model->accuracy(f.eval_set);
  }();
  // With hooks installed, accuracy may drop but should stay in the same
  // regime (w4/a8 QAT-style quantization is mild).
  const double fq_acc = f.model->accuracy(f.eval_set);
  EXPECT_GT(fq_acc, float_acc - 25.0);
}

TEST(Qat, CalibrationInitializesAllObservers) {
  auto& f = fixture();
  QatBert qat(*f.model, FqQuantConfig::full());
  qat.calibrate({f.train_set.begin(), f.train_set.begin() + 8});
  // Conversion would throw if any observer were uninitialized.
  EXPECT_NO_THROW(FqBertModel::convert(qat));
}

TEST(FqEngine, ConvertAndRunProducesFiniteLogits) {
  auto& f = fixture();
  QatBert qat(*f.model, FqQuantConfig::full());
  qat.calibrate(f.train_set);
  FqBertModel engine = FqBertModel::convert(qat);
  for (int i = 0; i < 5; ++i) {
    Tensor logits = engine.forward(f.eval_set[static_cast<size_t>(i)]);
    ASSERT_EQ(logits.numel(), 2);
    EXPECT_TRUE(std::isfinite(logits[0]));
    EXPECT_TRUE(std::isfinite(logits[1]));
  }
}

TEST(FqEngine, TracksFakeQuantModelPredictions) {
  auto& f = fixture();
  QatBert qat(*f.model, FqQuantConfig::full());
  qat.calibrate(f.train_set);
  qat.set_training(false);
  FqBertModel engine = FqBertModel::convert(qat);

  int agree = 0;
  const int n = 60;
  for (int i = 0; i < n; ++i) {
    const Example& ex = f.eval_set[static_cast<size_t>(i % f.eval_set.size())];
    const int32_t a = engine.predict(ex);
    Tensor logits = f.model->forward(ex);  // fake-quant model
    const int32_t b = static_cast<int32_t>(argmax(logits.data(), 2));
    agree += a == b ? 1 : 0;
  }
  // The integer engine and the fake-quant model share grids; small
  // rounding-path differences may flip a few near-ties.
  EXPECT_GE(agree, n * 8 / 10);
}

TEST(FqEngine, QuantizedAccuracyWithinAFewPointsOfFloat) {
  auto& f = fixture();
  const double float_acc = f.model->accuracy(f.eval_set);
  QatBert qat(*f.model, FqQuantConfig::full());
  qat.calibrate(f.train_set);
  FqBertModel engine = FqBertModel::convert(qat);
  const double q_acc = engine.accuracy(f.eval_set);
  EXPECT_GT(q_acc, float_acc - 20.0)
      << "float " << float_acc << " quant " << q_acc;
}

TEST(FqEngine, EmbedCodesOnGrid) {
  auto& f = fixture();
  QatBert qat(*f.model, FqQuantConfig::full());
  qat.calibrate(f.train_set);
  FqBertModel engine = FqBertModel::convert(qat);
  const auto codes = engine.embed(f.eval_set[0]);
  EXPECT_EQ(codes.size(),
            f.eval_set[0].tokens.size() * static_cast<size_t>(f.config.hidden));
  EXPECT_GT(engine.embed_scale(), 0.0);
}

TEST(FqEngine, AblationtogglesSelectKernels) {
  auto& f = fixture();
  FqQuantConfig with_int = FqQuantConfig::full();
  FqQuantConfig without_int = FqQuantConfig::full();
  without_int.quantize_softmax = false;
  without_int.quantize_layernorm = false;

  QatBert qat1(*f.model, with_int);
  qat1.calibrate(f.train_set);
  FqBertModel e1 = FqBertModel::convert(qat1);
  EXPECT_TRUE(e1.encoder_layers()[0].use_int_softmax);
  EXPECT_TRUE(e1.encoder_layers()[0].use_int_layernorm);

  QatBert qat2(*f.model, without_int);
  qat2.calibrate(f.train_set);
  FqBertModel e2 = FqBertModel::convert(qat2);
  EXPECT_FALSE(e2.encoder_layers()[0].use_int_softmax);
  EXPECT_FALSE(e2.encoder_layers()[0].use_int_layernorm);

  // Both run and produce sane predictions.
  EXPECT_GE(e2.accuracy({f.eval_set.begin(), f.eval_set.begin() + 20}), 0.0);
}

TEST(FqEngine, ScaleQuantizationRoundsScales) {
  auto& f = fixture();
  FqQuantConfig cfg = FqQuantConfig::full();
  cfg.quantize_scales = true;
  QatBert qat(*f.model, cfg);
  qat.calibrate(f.train_set);
  FqBertModel engine = FqBertModel::convert(qat);
  for (const auto& layer : engine.encoder_layers()) {
    // Every activation scale must be exactly 8-bit representable.
    for (double s : {layer.in_scale, layer.q_scale, layer.k_scale,
                     layer.v_scale, layer.ffn_in_scale, layer.out_scale}) {
      EXPECT_DOUBLE_EQ(s, quant::quantize_scale_8bit(s));
    }
  }
}

TEST(FqEngine, WeightCodesWithinInt4Grid) {
  auto& f = fixture();
  QatBert qat(*f.model, FqQuantConfig::full());
  qat.calibrate(f.train_set);
  FqBertModel engine = FqBertModel::convert(qat);
  for (const auto& layer : engine.encoder_layers()) {
    for (const auto* ql : {&layer.wq, &layer.wk, &layer.wv, &layer.wo,
                           &layer.ffn1, &layer.ffn2}) {
      const std::vector<int8_t> codes = ql->narrow_codes();
      ASSERT_EQ(codes.size(), static_cast<size_t>(ql->in * ql->out));
      for (int8_t c : codes) {
        EXPECT_GE(c, -7);
        EXPECT_LE(c, 7);
      }
      // int4 weights sit in 1-byte resident storage.
      EXPECT_TRUE(ql->narrow_storage());
      // Packed form halves the byte count.
      EXPECT_EQ(ql->packed_weights().size(), (codes.size() + 1) / 2);
    }
  }
}

TEST(FunctionalSim, BimDatapathBitExactWithEngine) {
  auto& f = fixture();
  QatBert qat(*f.model, FqQuantConfig::full());
  qat.calibrate(f.train_set);
  FqBertModel engine = FqBertModel::convert(qat);
  const Example& ex = f.eval_set[0];
  const int64_t s_len = static_cast<int64_t>(ex.tokens.size());

  const auto x = engine.embed(ex);
  const auto& layer = engine.encoder_layers()[0];

  std::vector<int8_t> y_engine;
  layer.forward(x, y_engine, s_len);

  for (accel::BimType type : {accel::BimType::kTypeA, accel::BimType::kTypeB}) {
    accel::Bim bim(16, type);
    std::vector<int8_t> y_bim;
    const auto stats = accel::run_layer_on_bim(layer, bim, x, y_bim, s_len);
    EXPECT_EQ(y_engine, y_bim) << "BIM type mismatch";
    EXPECT_GT(stats.bim_cycles_8x4, 0);
    EXPECT_GT(stats.bim_cycles_8x8, 0);
    EXPECT_GT(stats.mac_count, 0);
  }
}

TEST(FunctionalSim, CycleCountsMatchLaneArithmetic) {
  auto& f = fixture();
  QatBert qat(*f.model, FqQuantConfig::full());
  qat.calibrate(f.train_set);
  FqBertModel engine = FqBertModel::convert(qat);
  const Example& ex = f.eval_set[1];
  const int64_t s = static_cast<int64_t>(ex.tokens.size());
  const auto x = engine.embed(ex);
  const auto& layer = engine.encoder_layers()[0];

  accel::Bim bim(8, accel::BimType::kTypeA);
  std::vector<int8_t> y;
  const auto stats = accel::run_layer_on_bim(layer, bim, x, y, s);

  const int64_t h = layer.hidden, fd = layer.ffn_dim, dh = layer.head_dim;
  const int64_t heads = layer.num_heads;
  auto cd = [](int64_t a, int64_t b) { return (a + b - 1) / b; };
  // 8x4: four H*H projections + two FFN matmuls.
  const int64_t want_84 =
      4 * s * h * cd(h, 8) + s * fd * cd(h, 8) + s * h * cd(fd, 8);
  // 8x8: QK^T and Attn*V per head, lanes = M/2 = 4.
  const int64_t want_88 =
      heads * (s * s * cd(dh, 4) + s * dh * cd(s, 4));
  EXPECT_EQ(stats.bim_cycles_8x4, want_84);
  EXPECT_EQ(stats.bim_cycles_8x8, want_88);
}

}  // namespace
}  // namespace fqbert::core
