// Precision-tier serving tests: one logical model bound to an ordered
// set of weight bit-widths. The acceptance bar, per tier:
//
//  * a derived tier served through the router is BIT-IDENTICAL to a
//    dedicated server loading that derived engine as-quantized from
//    disk (derivation happens once, at registration — never per
//    request);
//  * an int4 derivation resides in <= ~half the weight bytes of its
//    int8 parent;
//  * mmap-loaded (FQBERT02) engines are bit-identical to their stream
//    ancestors and survive a forward fuzz against the seed's scalar
//    oracle;
//  * one tier can be hot-minted and hot-unloaded over the wire while
//    its SIBLING tier keeps serving, each lane's accounting balancing
//    independently;
//  * protocol v1-v3 clients — whose frames have no tier field — keep
//    being served on the model's default tier;
//  * EngineRegistry::register_file REPLACES an existing (name, tier)
//    binding atomically under live forward traffic (the regression
//    this PR fixes: it used to refuse, so a re-push of a retrained
//    engine needed a full unregister window).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/fq_bert.h"
#include "fq_oracle.h"
#include "serve/loadgen.h"
#include "serve/net/transport_client.h"
#include "serve/net/transport_server.h"
#include "serve/router/model_router.h"
#include "serve/server.h"

namespace fqbert::serve {
namespace {

using core::FqBertModel;
using core::FqQuantConfig;
using core::QatBert;
using nn::BertConfig;
using nn::BertModel;
using nn::Example;

BertConfig tier_shape() {
  BertConfig c;
  c.vocab_size = 128;
  c.hidden = 16;
  c.num_layers = 2;
  c.num_heads = 2;
  c.ffn_dim = 32;
  c.max_seq_len = 24;
  c.num_classes = 2;
  return c;
}

/// A visibly different shape, so a registry replace is observable from
/// the engine a reader resolves.
BertConfig other_shape() {
  BertConfig c = tier_shape();
  c.hidden = 24;
  c.num_heads = 3;
  c.ffn_dim = 48;
  c.num_classes = 3;
  return c;
}

/// Calibrated random-weight engine at an explicit native weight width.
FqBertModel build_engine(const BertConfig& config, int weight_bits,
                         uint64_t seed) {
  Rng rng(seed);
  BertModel model(config, rng);
  FqQuantConfig qcfg = FqQuantConfig::full();
  qcfg.weight_bits = weight_bits;
  QatBert qat(model, qcfg);
  std::vector<Example> calib;
  Rng data_rng(seed * 31 + 7);
  for (int i = 0; i < 12; ++i)
    calib.push_back(synth_example(data_rng, 4 + (i % 3) * 5, config));
  qat.calibrate(calib);
  return FqBertModel::convert(qat);
}

/// The shared int8 parent every test derives from (engines are
/// immutable after conversion, so one instance is safe to share).
std::shared_ptr<const FqBertModel> int8_parent() {
  static auto engine = std::make_shared<const FqBertModel>(
      build_engine(tier_shape(), 8, 4001));
  return engine;
}

RouterConfig fast_router_config(int workers = 2) {
  RouterConfig cfg;
  cfg.num_workers = workers;
  cfg.batcher.max_batch = 4;
  cfg.batcher.max_wait = Micros(500);
  return cfg;
}

void expect_logits_eq(const Tensor& want, const std::vector<float>& got,
                      const std::string& what) {
  ASSERT_EQ(static_cast<size_t>(want.numel()), got.size()) << what;
  for (int64_t j = 0; j < want.numel(); ++j)
    EXPECT_EQ(want[j], got[static_cast<size_t>(j)]) << what << " logit " << j;
}

// ---------------------------------------------------------------------------
// Tier derivation: range math, identity, memory.
// ---------------------------------------------------------------------------

TEST(PrecisionTiers, DeriveAtNativeWidthIsIdentity) {
  const FqBertModel derived = int8_parent()->derive_tier(8);
  Rng rng(11);
  for (int i = 0; i < 8; ++i) {
    const Example ex = synth_example(rng, 4 + i * 2, tier_shape());
    const Tensor want = int8_parent()->forward(ex);
    const Tensor got = derived.forward(ex);
    ASSERT_EQ(want.numel(), got.numel());
    for (int64_t j = 0; j < want.numel(); ++j)
      EXPECT_EQ(want[j], got[j]) << "example " << i << " logit " << j;
  }
}

TEST(PrecisionTiers, Int4TierHalvesResidentWeightBytes) {
  // The acceptance bound: the derived int4 tier must cost at most
  // ~half the resident weight memory of its int8 parent. Both widths
  // store int8 codes per element here (narrow storage kicks in at
  // <= 4 bits, the parent's 8-bit codes need int16), so the ratio is
  // exactly one half.
  const FqBertModel int4 = int8_parent()->derive_tier(4);
  const size_t parent_bytes = int8_parent()->resident_weight_bytes();
  const size_t tier_bytes = int4.resident_weight_bytes();
  ASSERT_GT(parent_bytes, 0u);
  EXPECT_LE(tier_bytes * 2, parent_bytes);
}

TEST(PrecisionTiers, DerivedTierBitIdenticalToDedicatedServer) {
  // Tiered side: one name, two lanes (native int8 + derived int4).
  EngineRegistry registry;
  registry.register_model("m", int8_parent());
  ASSERT_TRUE(registry.register_derived("m", 4));
  ModelRouter router(registry, fast_router_config());
  ASSERT_TRUE(router.add_model("m"));
  ASSERT_TRUE(router.start());
  EXPECT_EQ(router.served_tiers("m"), (std::vector<int>{4, 8}));
  EXPECT_EQ(router.default_tier("m"), 8);

  // Dedicated side: the SAME derivation serialized and loaded
  // as-quantized — the deployment where each tier is its own server
  // binary reading its own engine file.
  const std::string int4_path = ::testing::TempDir() + "tier_int4.bin";
  ASSERT_TRUE(int8_parent()->derive_tier(4).save(int4_path));
  EngineRegistry reg4;
  ASSERT_TRUE(reg4.register_file("d4", int4_path));
  ServerConfig scfg;
  scfg.num_workers = 1;
  scfg.batcher.max_batch = 4;
  scfg.batcher.max_wait = Micros(500);
  InferenceServer dedicated4(reg4, "d4", scfg);
  ASSERT_TRUE(dedicated4.start());

  Rng rng(21);
  for (int i = 0; i < 32; ++i) {
    const Example ex =
        synth_example(rng, 2 + rng.randint(0, 20), tier_shape());
    ServeResponse tiered =
        router.submit("m", ex, std::nullopt, nullptr, 0, /*tier=*/4).get();
    ServeResponse direct = dedicated4.submit(ex).get();
    ASSERT_EQ(tiered.status, RequestStatus::kOk);
    ASSERT_EQ(direct.status, RequestStatus::kOk);
    EXPECT_EQ(tiered.tier, 4);  // response reports the serving tier
    EXPECT_EQ(tiered.logits, direct.logits) << "example " << i;
    EXPECT_EQ(tiered.predicted, direct.predicted) << "example " << i;
    // And the int8 lane answers exactly like the parent engine.
    ServeResponse native =
        router.submit("m", ex, std::nullopt, nullptr, 0, /*tier=*/8).get();
    ASSERT_EQ(native.status, RequestStatus::kOk);
    EXPECT_EQ(native.tier, 8);
    expect_logits_eq(int8_parent()->forward(ex), native.logits,
                     "native tier");
  }

  dedicated4.shutdown();
  router.shutdown();
  for (const auto& [name, tier, st] : router.all_stats())
    EXPECT_TRUE(st.accounting_balances()) << name << "@" << tier;
  std::remove(int4_path.c_str());
}

TEST(PrecisionTiers, StrictRejectsAndFallbackServesUnknownTier) {
  EngineRegistry registry;
  registry.register_model("m", int8_parent());
  Rng rng(31);
  const Example ex = synth_example(rng, 8, tier_shape());

  {  // Strict (the default): named-but-unserved tier is rejected.
    ModelRouter router(registry, fast_router_config());
    ASSERT_TRUE(router.add_model("m"));
    ASSERT_TRUE(router.start());
    AdmitResult admit;
    auto fut = router.submit("m", ex, std::nullopt, &admit, 0, /*tier=*/2);
    EXPECT_EQ(fut.get().status, RequestStatus::kRejectedUnknownTier);
    EXPECT_EQ(router.unknown_tier_rejections(), 1u);
    EXPECT_EQ(router.unknown_model_rejections(), 0u);
    router.shutdown();
  }
  {  // Fallback policy: same request rides the default tier instead.
    RouterConfig cfg = fast_router_config();
    cfg.tier_fallback = TierFallback::kFallbackToDefault;
    ModelRouter router(registry, cfg);
    ASSERT_TRUE(router.add_model("m"));
    ASSERT_TRUE(router.start());
    ServeResponse resp =
        router.submit("m", ex, std::nullopt, nullptr, 0, /*tier=*/2).get();
    ASSERT_EQ(resp.status, RequestStatus::kOk);
    EXPECT_EQ(resp.tier, 8);  // reports the tier that actually served
    EXPECT_EQ(router.unknown_tier_rejections(), 0u);
    expect_logits_eq(int8_parent()->forward(ex), resp.logits, "fallback");
    router.shutdown();
  }
}

// ---------------------------------------------------------------------------
// FQBERT02 mmap engines: round trip, sniffing, oracle fuzz.
// ---------------------------------------------------------------------------

TEST(MappedEngine, RoundTripBitIdenticalAndSniffed) {
  for (const int bits : {4, 8}) {
    const FqBertModel engine = build_engine(tier_shape(), bits, 5000 + bits);
    const std::string stream_path = ::testing::TempDir() +
                                    "tier_stream_" + std::to_string(bits) +
                                    ".bin";
    const std::string mapped_path = ::testing::TempDir() +
                                    "tier_mapped_" + std::to_string(bits) +
                                    ".bin";
    ASSERT_TRUE(engine.save(stream_path));
    ASSERT_TRUE(engine.save_mapped(mapped_path));

    const FqBertModel via_stream = FqBertModel::load(stream_path);
    const FqBertModel via_map = FqBertModel::load_mapped(mapped_path);
    // load_any must sniff the magic and pick the right decoder.
    const FqBertModel any_stream = FqBertModel::load_any(stream_path);
    const FqBertModel any_map = FqBertModel::load_any(mapped_path);

    // The mapped engine's weights live in the file pages, not the heap,
    // yet resident accounting and outputs match the owned layout.
    EXPECT_EQ(via_map.resident_weight_bytes(),
              engine.resident_weight_bytes());

    Rng rng(static_cast<uint64_t>(900 + bits));
    for (int i = 0; i < 10; ++i) {
      const Example ex = synth_example(rng, 3 + i * 2, tier_shape());
      const Tensor want = engine.forward(ex);
      for (const FqBertModel* loaded :
           {&via_stream, &via_map, &any_stream, &any_map}) {
        const Tensor got = loaded->forward(ex);
        ASSERT_EQ(want.numel(), got.numel());
        for (int64_t j = 0; j < want.numel(); ++j)
          EXPECT_EQ(want[j], got[j])
              << "bits " << bits << " example " << i << " logit " << j;
      }
    }
    std::remove(stream_path.c_str());
    std::remove(mapped_path.c_str());
  }
}

TEST(MappedEngine, MappedForwardMatchesScalarOracleFuzz) {
  // The zero-copy path must not just match its own ancestor — it must
  // match the seed's scalar reference implementation, same as every
  // other inference entry point (tests/test_forward_fuzz.cpp).
  for (const int bits : {4, 8}) {
    const FqBertModel engine = build_engine(tier_shape(), bits, 6100 + bits);
    const std::string path = ::testing::TempDir() + "tier_oracle_" +
                             std::to_string(bits) + ".bin";
    ASSERT_TRUE(engine.save_mapped(path));
    const FqBertModel mapped = FqBertModel::load_mapped(path);
    const core::oracle::OracleModel oracle(mapped);

    Rng rng(static_cast<uint64_t>(7000 + bits));
    for (int i = 0; i < 12; ++i) {
      const int64_t len = 1 + rng.randint(0, tier_shape().max_seq_len - 1);
      Example ex;
      ex.tokens.resize(static_cast<size_t>(len));
      ex.tokens[0] = 0;
      for (int64_t t = 1; t < len; ++t)
        ex.tokens[static_cast<size_t>(t)] = static_cast<int32_t>(
            rng.randint(1, tier_shape().vocab_size - 1));
      ex.segments.assign(static_cast<size_t>(len), 0);

      const Tensor want = core::oracle::oracle_forward(oracle, ex);
      const Tensor got = mapped.forward(ex);
      ASSERT_EQ(want.numel(), got.numel());
      for (int64_t j = 0; j < want.numel(); ++j)
        EXPECT_EQ(want[j], got[j])
            << "bits " << bits << " len " << len << " logit " << j;
    }
    std::remove(path.c_str());
  }
}

TEST(MappedEngine, DeriveTierFromMappedEngine) {
  // A derived tier of a mapped parent owns its codes (the mapping only
  // backs the parent) and matches the derivation of the owned parent.
  const std::string path = ::testing::TempDir() + "tier_map_parent.bin";
  ASSERT_TRUE(int8_parent()->save_mapped(path));
  const FqBertModel mapped = FqBertModel::load_mapped(path);
  const FqBertModel from_mapped = mapped.derive_tier(4);
  const FqBertModel from_owned = int8_parent()->derive_tier(4);
  Rng rng(41);
  for (int i = 0; i < 6; ++i) {
    const Example ex = synth_example(rng, 5 + i * 3, tier_shape());
    const Tensor want = from_owned.forward(ex);
    const Tensor got = from_mapped.forward(ex);
    ASSERT_EQ(want.numel(), got.numel());
    for (int64_t j = 0; j < want.numel(); ++j)
      EXPECT_EQ(want[j], got[j]) << "example " << i << " logit " << j;
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Registry tier bindings.
// ---------------------------------------------------------------------------

TEST(EngineRegistryTiers, TierBindingDefaultsAndRepointing) {
  EngineRegistry registry;
  registry.register_model("m", int8_parent());
  EXPECT_EQ(registry.default_tier("m"), 8);
  EXPECT_FALSE(registry.register_derived("m", 9));   // out of range
  EXPECT_FALSE(registry.register_derived("no", 4));  // unknown name
  ASSERT_TRUE(registry.register_derived("m", 4));
  EXPECT_EQ(registry.tiers("m"), (std::vector<int>{4, 8}));
  // Tier 0 resolves the default (the first registered width).
  EXPECT_EQ(registry.get("m", 0), registry.get("m", 8));
  ASSERT_NE(registry.get("m", 4), nullptr);
  EXPECT_NE(registry.get("m", 4), registry.get("m", 8));
  EXPECT_EQ(registry.get("m", 2), nullptr);  // no implicit fallback
  // Removing the default tier repoints it at the lowest survivor.
  ASSERT_TRUE(registry.unregister_tier("m", 8));
  EXPECT_EQ(registry.default_tier("m"), 4);
  EXPECT_EQ(registry.get("m", 0), registry.get("m", 4));
  EXPECT_FALSE(registry.unregister_tier("m", 8));  // already gone
  ASSERT_TRUE(registry.unregister_tier("m", 4));
  EXPECT_FALSE(registry.contains("m"));  // last tier removes the name
}

TEST(EngineRegistryTiers, RegisterFileReplacesUnderLiveTraffic) {
  // Regression (satellite): register_file over an existing (name,
  // tier) must atomically REPLACE the binding while readers hammer
  // get()+forward — in-flight holders finish on the engine they
  // resolved; nobody crashes, nobody blocks.
  const std::string path_a = ::testing::TempDir() + "replace_a.bin";
  const std::string path_b = ::testing::TempDir() + "replace_b.bin";
  ASSERT_TRUE(int8_parent()->save(path_a));
  ASSERT_TRUE(build_engine(other_shape(), 8, 4242).save(path_b));

  EngineRegistry registry;
  ASSERT_TRUE(registry.register_file("m", path_a));

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(100 + t));
      while (!stop.load()) {
        const auto engine = registry.get("m");
        if (!engine) {
          failures.fetch_add(1);
          continue;
        }
        // Synthesize against the engine ACTUALLY resolved — a replace
        // may have swapped the shape underneath the name.
        const Example ex = synth_example(rng, 6, engine->config());
        if (engine->forward(ex).numel() != engine->config().num_classes)
          failures.fetch_add(1);
      }
    });
  }

  for (int round = 0; round < 20; ++round) {
    const std::string& path = (round % 2 == 0) ? path_b : path_a;
    ASSERT_TRUE(registry.register_file("m", path)) << "round " << round;
    EXPECT_EQ(registry.source_path("m"), path);
  }
  stop = true;
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  // 20 rounds ended on path_a (round 19 odd): the binding and shape
  // reflect the LAST registration.
  EXPECT_EQ(registry.source_path("m"), path_a);
  EXPECT_EQ(registry.get("m")->config().hidden, tier_shape().hidden);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

// ---------------------------------------------------------------------------
// Wire: hot tier mint/unload under live sibling traffic.
// ---------------------------------------------------------------------------

TEST(PrecisionTiersWire, HotTierLoadUnloadLeavesSiblingLaneUndisturbed) {
  EngineRegistry registry;
  registry.register_model("m", int8_parent());
  ModelRouter router(registry, fast_router_config());
  ASSERT_TRUE(router.add_model("m"));
  ASSERT_TRUE(router.start());
  net::TransportConfig tcfg;
  tcfg.port = 0;
  net::TransportServer transport(router, tcfg);
  ASSERT_TRUE(transport.start());
  const uint16_t port = transport.port();

  // Live default-tier traffic for the whole test.
  std::atomic<bool> stop{false};
  std::atomic<int> traffic_failures{0};
  std::thread traffic([&] {
    net::TransportClient client;
    if (!client.connect("127.0.0.1", port)) {
      traffic_failures.fetch_add(1);
      return;
    }
    Rng rng(55);
    while (!stop.load()) {
      const auto resp = client.call(
          synth_example(rng, 4 + rng.randint(0, 8), tier_shape()),
          std::nullopt, "m");
      if (!resp || resp->status != RequestStatus::kOk ||
          resp->tier != 8)
        traffic_failures.fetch_add(1);
    }
  });

  net::TransportClient admin;
  ASSERT_TRUE(admin.connect("127.0.0.1", port)) << admin.error();
  Rng rng(66);
  for (int round = 0; round < 3; ++round) {
    // Before the mint: tier 4 is rejected in-band, tier-specifically.
    const Example ex = synth_example(rng, 8, tier_shape());
    auto before = admin.call(ex, std::nullopt, "m", 0, /*tier=*/4);
    ASSERT_TRUE(before.has_value()) << admin.error();
    EXPECT_EQ(before->status, RequestStatus::kRejectedUnknownTier);

    // Derive-only mint over the wire: empty path + tier.
    std::string message;
    ASSERT_TRUE(admin.load_model("m", "", &message, /*tier=*/4)) << message;
    EXPECT_FALSE(admin.load_model("m", "", &message, 4));  // lane exists
    EXPECT_TRUE(admin.connected());

    const auto entries = admin.list_models_tiered();
    ASSERT_TRUE(entries.has_value()) << admin.error();
    ASSERT_EQ(entries->size(), 2u);  // m@4, m@8
    EXPECT_EQ((*entries)[0].name, "m");
    EXPECT_EQ((*entries)[0].tier, 4);
    EXPECT_EQ((*entries)[1].tier, 8);

    // The minted tier serves, reports itself, and matches the local
    // derivation bit for bit.
    const auto via4 = admin.call(ex, std::nullopt, "m", 0, 4);
    ASSERT_TRUE(via4.has_value()) << admin.error();
    ASSERT_EQ(via4->status, RequestStatus::kOk);
    EXPECT_EQ(via4->tier, 4);
    expect_logits_eq(int8_parent()->derive_tier(4).forward(ex),
                     via4->logits, "minted tier");

    // Its lane has its own stats row, already balancing.
    const auto stats4 = admin.query_stats("m", 4);
    ASSERT_TRUE(stats4.has_value()) << admin.error();
    EXPECT_EQ(stats4->tier, 4);
    EXPECT_TRUE(stats4->report.accounting_balances());
    EXPECT_GE(stats4->report.completed, 1u);

    // Unload ONLY the int4 lane; the int8 sibling never pauses.
    ASSERT_TRUE(admin.unload_model("m", &message, /*tier=*/4)) << message;
    EXPECT_FALSE(admin.unload_model("m", &message, 4));  // already gone
    const auto after = admin.call(ex, std::nullopt, "m", 0, 4);
    ASSERT_TRUE(after.has_value()) << admin.error();
    EXPECT_EQ(after->status, RequestStatus::kRejectedUnknownTier);
    const auto still8 = admin.call(ex, std::nullopt, "m");
    ASSERT_TRUE(still8.has_value()) << admin.error();
    EXPECT_EQ(still8->status, RequestStatus::kOk);
    EXPECT_EQ(still8->tier, 8);
  }

  stop = true;
  traffic.join();
  EXPECT_EQ(traffic_failures.load(), 0);

  transport.stop();
  router.shutdown(/*drain=*/true);
  const auto stats = router.all_stats();
  ASSERT_EQ(stats.size(), 1u);  // only m@8 survives
  for (const auto& [name, tier, st] : stats) {
    EXPECT_EQ(tier, 8);
    EXPECT_TRUE(st.accounting_balances())
        << name << "@" << tier << ": admitted " << st.admitted
        << " completed " << st.completed;
    EXPECT_GT(st.completed, 0u);
  }
  // One pre-mint + one post-unload rejection per round.
  EXPECT_EQ(router.unknown_tier_rejections(), 6u);
}

// ---------------------------------------------------------------------------
// Wire: v1-v3 clients ride the default tier.
// ---------------------------------------------------------------------------

TEST(PrecisionTiersWire, V1ToV3ClientsServedOnDefaultTier) {
  EngineRegistry registry;
  registry.register_model("m", int8_parent());
  ASSERT_TRUE(registry.register_derived("m", 4));
  ModelRouter router(registry, fast_router_config());
  ASSERT_TRUE(router.add_model("m"));
  ASSERT_TRUE(router.start());
  net::TransportConfig tcfg;
  tcfg.port = 0;
  net::TransportServer transport(router, tcfg);
  ASSERT_TRUE(transport.start());

  for (const int version : {1, 2, 3}) {
    net::TransportClient client(version);
    ASSERT_TRUE(client.connect("127.0.0.1", transport.port()))
        << "v" << version << ": " << client.error();
    Rng rng(static_cast<uint64_t>(80 + version));
    for (int i = 0; i < 5; ++i) {
      const Example ex = synth_example(rng, 4 + i * 3, tier_shape());
      // v1 frames carry no model name either; v2+ name it.
      const auto resp = version == 1
                            ? client.call(ex)
                            : client.call(ex, std::nullopt, "m");
      ASSERT_TRUE(resp.has_value())
          << "v" << version << ": " << client.error();
      ASSERT_EQ(resp->status, RequestStatus::kOk);
      // Pre-v4 responses have no tier byte; the field stays 0.
      EXPECT_EQ(resp->tier, 0);
      // Served on the DEFAULT tier (int8), never the int4 sibling.
      std::string label("v");
      label += std::to_string(version);
      expect_logits_eq(int8_parent()->forward(ex), resp->logits, label);
    }
    // A tiered request cannot be expressed pre-v4: the client refuses
    // locally rather than silently dropping the tier.
    EXPECT_FALSE(
        client.call(synth_example(rng, 5, tier_shape()), std::nullopt, "m",
                    0, /*tier=*/4)
            .has_value());
    EXPECT_TRUE(client.connected());
  }

  transport.stop();
  router.shutdown();
}

}  // namespace
}  // namespace fqbert::serve
