// The seed's scalar FQ-BERT inference path, preserved as the oracle
// that tests and benches compare the unified panel-kernel path against.
//
// PR 2 deleted this path from the engine (forward() now delegates to
// the panel kernel); this header is its faithful reconstruction over
// the reference kernel int_matmul_wt: per-call allocations, scalar
// matmuls, and — matching the seed, where int8 codes stayed resident in
// QuantLinear::w_codes — the weight codes are narrowed ONCE at oracle
// construction, never inside a timed or fuzzed call. Shared by
// tests/test_forward_fuzz.cpp and bench/bench_single_latency.cpp so
// there is exactly one reference implementation to keep in sync.
#pragma once

#include <vector>

#include "core/fq_bert.h"
#include "core/int_kernels.h"

namespace fqbert::core::oracle {

/// A QuantLinear plus its resident int8 codes (seed layout).
struct OracleLinear {
  const QuantLinear* ql = nullptr;
  std::vector<int8_t> codes;

  explicit OracleLinear(const QuantLinear& q)
      : ql(&q), codes(q.narrow_codes()) {}
};

struct OracleLayer {
  const FqEncoderLayer* layer = nullptr;
  OracleLinear wq, wk, wv, wo, ffn1, ffn2;

  explicit OracleLayer(const FqEncoderLayer& l)
      : layer(&l), wq(l.wq), wk(l.wk), wv(l.wv), wo(l.wo), ffn1(l.ffn1),
        ffn2(l.ffn2) {}
};

struct OracleModel {
  const FqBertModel* engine = nullptr;
  std::vector<OracleLayer> layers;

  explicit OracleModel(const FqBertModel& e) : engine(&e) {
    layers.reserve(e.encoder_layers().size());
    for (const FqEncoderLayer& l : e.encoder_layers()) layers.emplace_back(l);
  }
};

inline void oracle_linear(const OracleLinear& ol, const std::vector<int8_t>& x,
                          std::vector<int8_t>& y, int64_t rows) {
  std::vector<int32_t> acc;
  int_matmul_wt(x, ol.codes, acc, rows, ol.ql->in, ol.ql->out);
  requantize_i8(acc, ol.ql->bias_q, ol.ql->rq, y, rows, ol.ql->out);
}

/// The seed FqEncoderLayer::forward, verbatim, over the oracle kernel.
inline void oracle_layer_forward(const OracleLayer& ol,
                                 const std::vector<int8_t>& x,
                                 std::vector<int8_t>& y, int64_t s_len) {
  const FqEncoderLayer& layer = *ol.layer;
  const int64_t hidden = layer.hidden;
  const int64_t head_dim = layer.head_dim;

  std::vector<int8_t> q, k, v;
  oracle_linear(ol.wq, x, q, s_len);
  oracle_linear(ol.wk, x, k, s_len);
  oracle_linear(ol.wv, x, v, s_len);

  std::vector<int8_t> ctx(static_cast<size_t>(s_len * hidden));
  std::vector<int8_t> qh(static_cast<size_t>(s_len * head_dim));
  std::vector<int8_t> kh(static_cast<size_t>(s_len * head_dim));
  std::vector<int8_t> vh(static_cast<size_t>(s_len * head_dim));
  std::vector<int32_t> scores, probs, ctx_acc;

  for (int64_t h = 0; h < layer.num_heads; ++h) {
    for (int64_t r = 0; r < s_len; ++r) {
      const int8_t* qrow = q.data() + r * hidden + h * head_dim;
      const int8_t* krow = k.data() + r * hidden + h * head_dim;
      const int8_t* vrow = v.data() + r * hidden + h * head_dim;
      std::copy(qrow, qrow + head_dim, qh.data() + r * head_dim);
      std::copy(krow, krow + head_dim, kh.data() + r * head_dim);
      std::copy(vrow, vrow + head_dim, vh.data() + r * head_dim);
    }
    int_matmul_bt(qh, kh, scores, s_len, head_dim, s_len);
    layer.apply_softmax(scores, probs, s_len);
    int_matmul_pv(probs, vh, ctx_acc, s_len, s_len, head_dim);
    for (int64_t r = 0; r < s_len; ++r) {
      int8_t* crow = ctx.data() + r * hidden + h * head_dim;
      const int32_t* arow = ctx_acc.data() + r * head_dim;
      for (int64_t c = 0; c < head_dim; ++c)
        crow[c] = static_cast<int8_t>(
            quant::saturate_signed(layer.ctx_rq.apply(arow[c]), 8));
    }
  }

  std::vector<int8_t> attn_out;
  oracle_linear(ol.wo, ctx, attn_out, s_len);

  std::vector<int32_t> res(static_cast<size_t>(s_len * hidden));
  for (int64_t i = 0; i < s_len * hidden; ++i)
    res[static_cast<size_t>(i)] =
        static_cast<int32_t>(attn_out[static_cast<size_t>(i)]) +
        layer.res1_rq.apply(x[static_cast<size_t>(i)]);

  std::vector<int8_t> ffn_x;
  layer.apply_layernorm(res, ffn_x, s_len, /*first=*/true);

  std::vector<int8_t> pre, mid, fo;
  oracle_linear(ol.ffn1, ffn_x, pre, s_len);
  mid.resize(pre.size());
  for (size_t i = 0; i < pre.size(); ++i) mid[i] = layer.gelu->apply(pre[i]);
  oracle_linear(ol.ffn2, mid, fo, s_len);

  for (int64_t i = 0; i < s_len * hidden; ++i)
    res[static_cast<size_t>(i)] =
        static_cast<int32_t>(fo[static_cast<size_t>(i)]) +
        layer.res2_rq.apply(ffn_x[static_cast<size_t>(i)]);
  layer.apply_layernorm(res, y, s_len, /*first=*/false);
}

/// Seed encoder stack over the oracle path (x consumed by value, like
/// the seed's ping-pong buffers).
inline void oracle_encoder(const OracleModel& om, std::vector<int8_t> x,
                           std::vector<int8_t>& out, int64_t s_len) {
  std::vector<int8_t> y;
  for (const OracleLayer& ol : om.layers) {
    oracle_layer_forward(ol, x, y, s_len);
    x.swap(y);
  }
  out = std::move(x);
}

/// The seed FqBertModel::forward: embed -> scalar encoder -> head.
inline Tensor oracle_forward(const OracleModel& om, const nn::Example& ex) {
  std::vector<int8_t> out;
  oracle_encoder(om, om.engine->embed(ex), out,
                 static_cast<int64_t>(ex.tokens.size()));
  return om.engine->head(out);
}

}  // namespace fqbert::core::oracle
