// Serving subsystem tests: batched-forward bit-identity, seq-length
// bucketing, max-wait flush, deadline admission, response-to-request
// ordering under concurrent submitters, and shutdown (drain and abort).
#include <gtest/gtest.h>

#include <thread>

#include "pipeline/pipeline.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "test_util.h"

namespace fqbert::serve {
namespace {

using core::FqBertModel;
using core::FqQuantConfig;
using core::QatBert;
using nn::BertConfig;
using nn::BertModel;
using nn::Example;

BertConfig tiny_config() {
  BertConfig c;
  c.vocab_size = 128;
  c.hidden = 16;
  c.num_layers = 2;
  c.num_heads = 2;
  c.ffn_dim = 32;
  c.max_seq_len = 32;
  c.num_classes = 2;
  return c;
}

/// A functional engine without any training: random weights, calibrated
/// observers (accuracy is irrelevant to the serving machinery, the
/// integer pipeline is fully exercised).
struct EngineFixture {
  BertConfig config = tiny_config();
  std::shared_ptr<const FqBertModel> engine;

  EngineFixture() {
    Rng rng(42);
    BertModel model(config, rng);
    QatBert qat(model, FqQuantConfig::full());
    std::vector<Example> calib;
    Rng data_rng(7);
    for (int i = 0; i < 12; ++i)
      calib.push_back(
          synth_example(data_rng, 4 + (i % 3) * 6, config));
    qat.calibrate(calib);
    engine = std::make_shared<const FqBertModel>(FqBertModel::convert(qat));
  }
};

EngineFixture& fixture() {
  static EngineFixture f;
  return f;
}

ServeRequest make_request(uint64_t id, int64_t seq_len,
                          std::optional<Micros> budget = std::nullopt) {
  Rng rng(id * 131 + 7);
  ServeRequest req;
  req.id = id;
  req.example = synth_example(rng, seq_len, fixture().config);
  req.enqueue_time = Clock::now();
  if (budget) req.deadline = req.enqueue_time + *budget;
  return req;
}

// ---------------------------------------------------------------------------
// Batched forward
// ---------------------------------------------------------------------------

TEST(ForwardBatch, BitIdenticalToSingleForwardAcrossMixedLengths) {
  const FqBertModel& engine = *fixture().engine;
  Rng rng(3);
  std::vector<Example> batch;
  for (const int64_t len : {5, 12, 3, 32, 12, 7, 19, 12})
    batch.push_back(synth_example(rng, len, fixture().config));

  const std::vector<Tensor> batched = engine.forward_batch(batch);
  ASSERT_EQ(batched.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const Tensor single = engine.forward(batch[i]);
    ASSERT_EQ(single.numel(), batched[i].numel());
    for (int64_t c = 0; c < single.numel(); ++c)
      EXPECT_EQ(single[c], batched[i][c])
          << "example " << i << " logit " << c;
  }
}

TEST(ForwardBatch, RepeatedCallsReuseScratchConsistently) {
  const FqBertModel& engine = *fixture().engine;
  Rng rng(4);
  // Shrinking then growing batches exercise the grow-only scratch.
  for (const size_t n : {6u, 1u, 8u, 2u}) {
    std::vector<Example> batch;
    for (size_t i = 0; i < n; ++i)
      batch.push_back(synth_example(rng, 4 + 3 * static_cast<int64_t>(i),
                                    fixture().config));
    const std::vector<Tensor> batched = engine.forward_batch(batch);
    for (size_t i = 0; i < n; ++i) {
      const Tensor single = engine.forward(batch[i]);
      for (int64_t c = 0; c < single.numel(); ++c)
        EXPECT_EQ(single[c], batched[i][c]);
    }
  }
}

// ---------------------------------------------------------------------------
// Request queue admission
// ---------------------------------------------------------------------------

TEST(RequestQueue, RejectsExpiredDeadlineAtAdmission) {
  RequestQueue queue(RequestQueueConfig{4});
  ServeRequest dead = make_request(1, 8, Micros(0));
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(queue.submit(std::move(dead)), AdmitResult::kDeadlineExpired);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(RequestQueue, RejectsWhenFullAndAfterClose) {
  RequestQueue queue(RequestQueueConfig{2});
  EXPECT_EQ(queue.submit(make_request(1, 8)), AdmitResult::kOk);
  EXPECT_EQ(queue.submit(make_request(2, 8)), AdmitResult::kOk);
  EXPECT_EQ(queue.submit(make_request(3, 8)), AdmitResult::kQueueFull);
  queue.close();
  EXPECT_EQ(queue.submit(make_request(4, 8)), AdmitResult::kClosed);
  // Pending requests stay drainable after close.
  std::vector<ServeRequest> drained;
  queue.drain_into(drained);
  EXPECT_EQ(drained.size(), 2u);
}

// ---------------------------------------------------------------------------
// Dynamic batcher
// ---------------------------------------------------------------------------

TEST(DynamicBatcher, BucketsBySequenceLength) {
  RequestQueue queue(RequestQueueConfig{64});
  BatcherConfig cfg;
  cfg.max_batch = 4;
  cfg.max_wait = Micros(3600L * 1000 * 1000);  // flush only on max-batch
  cfg.bucket_granularity = 8;
  DynamicBatcher batcher(queue, cfg);

  EXPECT_EQ(batcher.bucket_of(1), 8);
  EXPECT_EQ(batcher.bucket_of(8), 8);
  EXPECT_EQ(batcher.bucket_of(9), 16);

  // Interleave two length classes; each must flush as a homogeneous
  // full batch.
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_EQ(queue.submit(make_request(10 + i, 6)), AdmitResult::kOk);
    ASSERT_EQ(queue.submit(make_request(20 + i, 14)), AdmitResult::kOk);
  }
  for (int b = 0; b < 2; ++b) {
    std::vector<ServeRequest> batch;
    ASSERT_TRUE(batcher.next_batch(batch));
    ASSERT_EQ(batch.size(), 4u);
    const int64_t bucket = batcher.bucket_of(batch[0].seq_len());
    for (const ServeRequest& req : batch)
      EXPECT_EQ(batcher.bucket_of(req.seq_len()), bucket);
  }
  EXPECT_EQ(batcher.pending(), 0u);
}

TEST(DynamicBatcher, MaxWaitFlushesPartialBatch) {
  RequestQueue queue(RequestQueueConfig{64});
  BatcherConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait = Micros(15 * 1000);
  DynamicBatcher batcher(queue, cfg);

  ASSERT_EQ(queue.submit(make_request(1, 8)), AdmitResult::kOk);
  ASSERT_EQ(queue.submit(make_request(2, 8)), AdmitResult::kOk);

  const TimePoint t0 = Clock::now();
  std::vector<ServeRequest> batch;
  ASSERT_TRUE(batcher.next_batch(batch));
  const double waited_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  EXPECT_EQ(batch.size(), 2u);  // flushed without reaching max_batch
  EXPECT_GE(waited_ms, 5.0);    // ...but only after (most of) max_wait
  EXPECT_LE(waited_ms, 5000.0);
}

TEST(DynamicBatcher, DropsExpiredRequestsWithTimeoutStatus) {
  RequestQueue queue(RequestQueueConfig{64});
  BatcherConfig cfg;
  cfg.max_batch = 4;
  cfg.max_wait = Micros(1000);
  ServeStats stats;
  DynamicBatcher batcher(queue, cfg, &stats);

  ServeRequest doomed = make_request(1, 8, Micros(2000));
  std::future<ServeResponse> fut = doomed.promise.get_future();
  ASSERT_EQ(queue.submit(std::move(doomed)), AdmitResult::kOk);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_EQ(queue.submit(make_request(2, 8)), AdmitResult::kOk);

  std::vector<ServeRequest> batch;
  ASSERT_TRUE(batcher.next_batch(batch));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].id, 2u);
  const ServeResponse resp = fut.get();
  EXPECT_EQ(resp.status, RequestStatus::kTimedOut);
  EXPECT_EQ(stats.report().timed_out, 1u);
}

// ---------------------------------------------------------------------------
// End-to-end server
// ---------------------------------------------------------------------------

TEST(InferenceServer, ResponsesMatchRequestsUnderConcurrentSubmitters) {
  EngineRegistry registry;
  registry.register_model("tiny", fixture().engine);

  ServerConfig cfg;
  cfg.num_workers = 2;
  cfg.batcher.max_batch = 4;
  cfg.batcher.max_wait = Micros(500);
  InferenceServer server(registry, "tiny", cfg);
  ASSERT_TRUE(server.start());

  constexpr int kClients = 4, kPerClient = 25;
  std::vector<std::thread> clients;
  std::vector<int> mismatches(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(1000 + c);
      for (int i = 0; i < kPerClient; ++i) {
        Example ex =
            synth_example(rng, 3 + rng.randint(0, 20), fixture().config);
        auto fut = server.submit(ex);
        const ServeResponse resp = fut.get();
        if (resp.status != RequestStatus::kOk) {
          ++mismatches[c];
          continue;
        }
        // The response must carry *this* request's logits, bit-exact.
        const Tensor expect = fixture().engine->forward(ex);
        for (int64_t j = 0; j < expect.numel(); ++j)
          if (expect[j] != resp.logits[static_cast<size_t>(j)])
            ++mismatches[c];
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.shutdown(/*drain=*/true);

  for (int c = 0; c < kClients; ++c) EXPECT_EQ(mismatches[c], 0);
  const ServeStats::Report report = server.stats().report();
  EXPECT_EQ(report.admitted, kClients * kPerClient);
  EXPECT_EQ(report.completed, kClients * kPerClient);
  EXPECT_GE(report.batches, 1u);
}

TEST(InferenceServer, GracefulShutdownDrainsQueue) {
  EngineRegistry registry;
  registry.register_model("tiny", fixture().engine);

  ServerConfig cfg;
  cfg.num_workers = 1;
  cfg.batcher.max_batch = 4;
  cfg.batcher.max_wait = Micros(50 * 1000);  // keep requests queued
  InferenceServer server(registry, "tiny", cfg);
  ASSERT_TRUE(server.start());

  Rng rng(5);
  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 10; ++i)
    futures.push_back(
        server.submit(synth_example(rng, 8, fixture().config)));

  server.shutdown(/*drain=*/true);  // must complete all 10, not fail them
  int ok = 0;
  for (auto& fut : futures) ok += fut.get().status == RequestStatus::kOk;
  EXPECT_EQ(ok, 10);
  EXPECT_EQ(server.stats().report().completed, 10u);

  // Post-shutdown submissions are rejected with kShutdown.
  auto late = server.submit(synth_example(rng, 8, fixture().config));
  EXPECT_EQ(late.get().status, RequestStatus::kShutdown);
}

TEST(InferenceServer, AbortShutdownFailsPendingRequests) {
  EngineRegistry registry;
  registry.register_model("tiny", fixture().engine);

  ServerConfig cfg;
  cfg.num_workers = 1;
  cfg.batcher.max_batch = 64;
  cfg.batcher.max_wait = Micros(3600L * 1000 * 1000);  // never flush
  InferenceServer server(registry, "tiny", cfg);
  ASSERT_TRUE(server.start());

  Rng rng(6);
  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 5; ++i)
    futures.push_back(
        server.submit(synth_example(rng, 8, fixture().config)));

  server.shutdown(/*drain=*/false);
  for (auto& fut : futures)
    EXPECT_EQ(fut.get().status, RequestStatus::kShutdown);
}

TEST(InferenceServer, RejectsMalformedExamplesAtAdmission) {
  EngineRegistry registry;
  registry.register_model("tiny", fixture().engine);
  InferenceServer server(registry, "tiny", ServerConfig{});
  ASSERT_TRUE(server.start());

  Rng rng(11);
  const BertConfig& cfg = fixture().config;
  Example too_long = synth_example(rng, cfg.max_seq_len, cfg);
  too_long.tokens.push_back(1);
  too_long.segments.push_back(0);
  Example bad_token = synth_example(rng, 8, cfg);
  bad_token.tokens[3] = static_cast<int32_t>(cfg.vocab_size);
  Example ragged_segments = synth_example(rng, 8, cfg);
  ragged_segments.segments.pop_back();
  Example empty;

  for (Example* ex : {&too_long, &bad_token, &ragged_segments, &empty}) {
    AdmitResult admit;
    auto fut = server.submit(*ex, std::nullopt, &admit);
    EXPECT_EQ(admit, AdmitResult::kInvalidExample);
    EXPECT_EQ(fut.get().status, RequestStatus::kRejectedInvalid);
  }
  // A well-formed example still sails through on the same server.
  auto ok = server.submit(synth_example(rng, 8, cfg));
  EXPECT_EQ(ok.get().status, RequestStatus::kOk);
  server.shutdown();
  // The rejections are visible server-side, not only in client counts.
  EXPECT_EQ(server.stats().report().rejected_invalid, 4u);
  // Post-shutdown submissions land in the closed counter.
  auto late = server.submit(synth_example(rng, 8, cfg));
  EXPECT_EQ(late.get().status, RequestStatus::kShutdown);
  EXPECT_EQ(server.stats().report().rejected_closed, 1u);
}

TEST(InferenceServer, ZeroWorkerConfigStillServes) {
  EngineRegistry registry;
  registry.register_model("tiny", fixture().engine);
  ServerConfig cfg;
  cfg.num_workers = 0;  // clamped to 1: futures must never hang
  InferenceServer server(registry, "tiny", cfg);
  ASSERT_TRUE(server.start());
  EXPECT_EQ(server.num_workers(), 1u);
  Rng rng(17);
  auto fut = server.submit(synth_example(rng, 8, fixture().config));
  EXPECT_EQ(fut.get().status, RequestStatus::kOk);
  server.shutdown();
}

TEST(InferenceServer, DeadlineRejectionAndStatsCounters) {
  EngineRegistry registry;
  registry.register_model("tiny", fixture().engine);
  InferenceServer server(registry, "tiny", ServerConfig{});
  ASSERT_TRUE(server.start());

  Rng rng(8);
  AdmitResult admit;
  auto fut = server.submit(synth_example(rng, 8, fixture().config),
                           Micros(-1000), &admit);
  EXPECT_EQ(admit, AdmitResult::kDeadlineExpired);
  EXPECT_EQ(fut.get().status, RequestStatus::kRejectedDeadline);
  server.shutdown();
  EXPECT_EQ(server.stats().report().rejected_deadline, 1u);
}

// ---------------------------------------------------------------------------
// Engine registry
// ---------------------------------------------------------------------------

TEST(EngineRegistry, InMemoryEntriesShareOneInstance) {
  EngineRegistry registry;
  registry.register_model("tiny", fixture().engine);
  EXPECT_TRUE(registry.contains("tiny"));
  EXPECT_EQ(registry.get("tiny").get(), fixture().engine.get());
  EXPECT_EQ(registry.source_path("tiny"), "");
  EXPECT_EQ(registry.get("missing"), nullptr);
}

TEST(EngineRegistry, FileBackedEntriesShareOneLoadedInstance) {
  const std::string path = ::testing::TempDir() + "fq_serve_registry.bin";
  ASSERT_TRUE(fixture().engine->save(path));

  EngineRegistry registry;
  ASSERT_TRUE(registry.register_file("disk", path));
  auto r1 = registry.get("disk");
  auto r2 = registry.get("disk");
  ASSERT_NE(r1, nullptr);
  // One load, one weight store, shared by every consumer.
  EXPECT_EQ(r1.get(), r2.get());
  EXPECT_EQ(registry.source_path("disk"), path);

  // The shared instance serves bit-identical logits to the original.
  Rng rng(9);
  const Example ex = synth_example(rng, 10, fixture().config);
  const Tensor a = fixture().engine->forward(ex);
  const Tensor b = r1->forward(ex);
  for (int64_t j = 0; j < a.numel(); ++j) EXPECT_EQ(a[j], b[j]);

  EXPECT_FALSE(registry.register_file("bad", path + ".nope"));
}

TEST(EnginePool, WorkersShareOneEngineInstance) {
  EngineRegistry registry;
  registry.register_model("tiny", fixture().engine);
  const long before = fixture().engine.use_count();

  ServerConfig cfg;
  cfg.num_workers = 4;
  InferenceServer server(registry, "tiny", cfg);
  ASSERT_TRUE(server.start());
  EXPECT_EQ(server.num_workers(), 4u);
  // Registry entry + the pool's single shared handle: starting 4 workers
  // must not create 4 engine copies.
  EXPECT_EQ(fixture().engine.use_count(), before + 1);

  Rng rng(21);
  auto fut = server.submit(synth_example(rng, 8, fixture().config));
  EXPECT_EQ(fut.get().status, RequestStatus::kOk);
  server.shutdown(/*drain=*/true);
}

// ---------------------------------------------------------------------------
// Stats: bounded memory and terminal-state accounting
// ---------------------------------------------------------------------------

TEST(ServeStats, SketchBoundsMemoryOverLongRunsWithLifetimeQuantiles) {
  ServeStats stats;
  // A >=100k-request run: counters stay exact, and the sketch holds a
  // bounded number of buckets while covering EVERY sample (no window).
  constexpr uint64_t kRequests = 200000;
  for (uint64_t i = 0; i < kRequests; ++i) {
    stats.record_admitted();
    stats.record_response(static_cast<int64_t>(1000 + i), 10);
  }
  const ServeStats::Report r = stats.report();
  EXPECT_EQ(r.admitted, kRequests);
  EXPECT_EQ(r.completed, kRequests);
  EXPECT_EQ(r.latency_samples, kRequests);  // lifetime, not a window
  EXPECT_TRUE(r.accounting_balances());
  // Bounded memory: 1ms..201ms spans a few hundred log-buckets at 1%
  // relative error, regardless of sample count.
  EXPECT_LE(r.latency_sketch.buckets().size(), 1024u);
  // Quantiles describe the whole run within the sketch's relative
  // error: true p50 of 1000..200999 us is ~101000 us.
  EXPECT_NEAR(r.p50_ms, 101.0, 101.0 * 3.0 * QuantileSketch::kDefaultAlpha);
  EXPECT_GE(r.p99_ms, r.p95_ms);
  EXPECT_GE(r.max_ms, r.p999_ms);
  EXPECT_DOUBLE_EQ(r.max_ms, (1000.0 + kRequests - 1) / 1000.0);  // exact
}

TEST(ServeStats, ResetClearsSketchAndCounters) {
  ServeStats stats;
  for (int i = 0; i < 10; ++i) stats.record_response(100, 1);
  stats.record_failure();
  stats.reset();
  const ServeStats::Report r = stats.report();
  EXPECT_EQ(r.completed, 0u);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(r.latency_samples, 0u);
  EXPECT_EQ(r.p99_ms, 0.0);
}

TEST(InferenceServer, ShutdownAccountingBalancesExactly) {
  EngineRegistry registry;
  registry.register_model("tiny", fixture().engine);

  ServerConfig cfg;
  cfg.num_workers = 1;
  cfg.batcher.max_batch = 64;
  cfg.batcher.max_wait = Micros(3600L * 1000 * 1000);  // never flush
  InferenceServer server(registry, "tiny", cfg);
  ASSERT_TRUE(server.start());

  Rng rng(13);
  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 7; ++i)
    futures.push_back(
        server.submit(synth_example(rng, 8, fixture().config)));
  server.shutdown(/*drain=*/false);
  for (auto& fut : futures)
    EXPECT_EQ(fut.get().status, RequestStatus::kShutdown);

  const ServeStats::Report r = server.stats().report();
  EXPECT_EQ(r.admitted, 7u);
  EXPECT_EQ(r.failed, 7u);
  EXPECT_EQ(r.completed + r.timed_out + r.failed, r.admitted)
      << "admitted requests must all reach exactly one terminal state";
  EXPECT_TRUE(r.accounting_balances());
}

TEST(InferenceServer, LoadgenAccountingBalancesWithTimeouts) {
  EngineRegistry registry;
  registry.register_model("tiny", fixture().engine);

  ServerConfig cfg;
  cfg.num_workers = 2;
  cfg.batcher.max_batch = 8;
  cfg.batcher.max_wait = Micros(500);
  InferenceServer server(registry, "tiny", cfg);
  ASSERT_TRUE(server.start());

  LoadgenConfig lcfg;
  lcfg.num_clients = 4;
  lcfg.requests_per_client = 50;
  // Tight deadline: some requests expire in queue, exercising the
  // timed-out terminal path alongside completions.
  lcfg.deadline_budget = Micros(1500);
  const LoadgenReport lg = run_loadgen(server, fixture().config, lcfg);
  server.shutdown(/*drain=*/true);

  const ServeStats::Report r = server.stats().report();
  EXPECT_EQ(lg.sent, 200u);
  EXPECT_TRUE(r.accounting_balances())
      << "admitted " << r.admitted << " != completed " << r.completed
      << " + timed_out " << r.timed_out << " + failed " << r.failed;
  // Client-side and server-side views agree.
  EXPECT_EQ(r.completed, lg.ok);
  EXPECT_EQ(r.timed_out, lg.timed_out);
  EXPECT_EQ(r.failed, lg.failed);
}

}  // namespace
}  // namespace fqbert::serve
