// Tests for IntGelu, int4 packing, size accounting, observers and the
// fake-quantization hooks.
#include <gtest/gtest.h>

#include "core/model_size.h"
#include "quant/fake_quant.h"
#include "quant/int_gelu.h"
#include "quant/packing.h"
#include "tensor/tensor_ops.h"

namespace fqbert::quant {
namespace {

// ------------------------------- IntGelu ----------------------------------

TEST(IntGelu, MatchesReferenceOverAllCodes) {
  const double s_in = 20.0, s_out = 35.0;
  IntGelu g(s_in, s_out);
  for (int code = -128; code <= 127; ++code) {
    const double x = code / s_in;
    const double want = std::clamp(
        std::nearbyint(IntGelu::gelu_reference(x) * s_out), -127.0, 127.0);
    const double got = g.apply(static_cast<int8_t>(code));
    EXPECT_EQ(got, want) << "code=" << code;
  }
}

TEST(IntGelu, ZeroMapsToZeroAndLargeNegativeVanishes) {
  IntGelu g(16.0, 16.0);
  EXPECT_EQ(g.apply(0), 0);
  EXPECT_EQ(g.apply(-128), 0);  // gelu(-8) ~ 0
  // Large positive passes through (identity region).
  EXPECT_NEAR(g.apply(127), 127, 1);
}

// ------------------------------- Packing ----------------------------------

TEST(PackInt4, RoundTripAllCodePairs) {
  for (int a = -8; a <= 7; ++a) {
    for (int b = -8; b <= 7; ++b) {
      std::vector<int8_t> codes{static_cast<int8_t>(a),
                                static_cast<int8_t>(b)};
      const auto packed = pack_int4(codes);
      ASSERT_EQ(packed.size(), 1u);
      const auto back = unpack_int4(packed, 2);
      EXPECT_EQ(back[0], a);
      EXPECT_EQ(back[1], b);
    }
  }
}

TEST(PackInt4, OddCountAndBounds) {
  std::vector<int8_t> codes{-8, 7, 3};
  const auto packed = pack_int4(codes);
  EXPECT_EQ(packed.size(), 2u);
  const auto back = unpack_int4(packed, 3);
  EXPECT_EQ(back, codes);
  EXPECT_THROW(pack_int4({static_cast<int8_t>(8)}), std::invalid_argument);
  EXPECT_THROW(unpack_int4(packed, 5), std::invalid_argument);
}

TEST(SizeReport, SubByteRounding) {
  SizeReport r;
  r.add(3, 32, 4);  // 3 int4 values -> 2 bytes
  EXPECT_EQ(r.float_bytes, 12);
  EXPECT_EQ(r.quant_bytes, 2);
}

TEST(ModelSize, BertBaseCompressionMatchesPaper) {
  // Table I: 7.94x for the full FQ-BERT on BERT-base.
  const auto cfg = nn::BertConfig::bert_base(2);
  const auto q = core::FqQuantConfig::full();
  const SizeReport r = core::model_size_report(cfg, q);
  EXPECT_NEAR(r.compression_ratio(), 7.94, 0.12);
  // >320 MB of float parameters, as the intro says.
  EXPECT_GT(r.float_bytes, 320ll * 1024 * 1024);
}

TEST(ModelSize, EightBitWeightsCompressLess) {
  const auto cfg = nn::BertConfig::bert_base(2);
  auto q4 = core::FqQuantConfig::full();
  auto q8 = core::FqQuantConfig::full();
  q8.weight_bits = 8;
  EXPECT_GT(core::model_size_report(cfg, q4).compression_ratio(),
            core::model_size_report(cfg, q8).compression_ratio() * 1.8);
}

// ------------------------------ Observers ---------------------------------

TEST(EmaObserver, TracksWithMomentum) {
  EmaObserver obs(0.9);
  Tensor a(Shape{2}, std::vector<float>{1.0f, -2.0f});
  Tensor b(Shape{2}, std::vector<float>{4.0f, 0.0f});
  obs.observe(a);
  EXPECT_DOUBLE_EQ(obs.value(), 2.0);  // first observation initializes
  obs.observe(b);
  EXPECT_NEAR(obs.value(), 0.9 * 2.0 + 0.1 * 4.0, 1e-12);
  obs.reset();
  EXPECT_FALSE(obs.initialized());
}

TEST(MinMaxObserver, KeepsRunningMax) {
  MinMaxObserver obs;
  Tensor a(Shape{1}, std::vector<float>{3.0f});
  Tensor b(Shape{1}, std::vector<float>{-5.0f});
  Tensor c(Shape{1}, std::vector<float>{1.0f});
  obs.observe(a);
  obs.observe(b);
  obs.observe(c);
  EXPECT_DOUBLE_EQ(obs.value(), 5.0);
}

// ------------------------------ Fake quant --------------------------------

TEST(WeightFakeQuant, NoClipUsesAbsMax) {
  FakeQuantConfig cfg;
  cfg.bits = 4;
  cfg.clip = ClipMode::kNone;
  WeightFakeQuant h(cfg);
  Tensor w(Shape{4}, std::vector<float>{0.1f, -0.5f, 0.2f, 2.0f});
  Tensor out = h.apply(w);
  EXPECT_DOUBLE_EQ(h.last_threshold(), 2.0);
  EXPECT_NEAR(out[3], 2.0f, 1e-6);  // max maps to max code exactly
  // Values are on the grid with step T/7.
  for (int64_t i = 0; i < 4; ++i) {
    const double code = out[i] * h.last_scale();
    EXPECT_NEAR(code, std::nearbyint(code), 1e-4);
  }
}

TEST(WeightFakeQuant, ClipShrinksThreshold) {
  FakeQuantConfig cfg;
  cfg.bits = 4;
  cfg.clip = ClipMode::kPercentile;
  cfg.percentile = 0.9;
  WeightFakeQuant h(cfg);
  Rng rng(3);
  Tensor w(Shape{256});
  fill_normal(w, rng, 0.0f, 0.5f);
  w[0] = 30.0f;
  h.apply(w);
  EXPECT_LT(h.last_threshold(), 5.0);
}

TEST(ActFakeQuant, FreezesWhenNotTraining) {
  FakeQuantConfig cfg;
  cfg.bits = 8;
  ActFakeQuant h(cfg, 0.5);
  Tensor small(Shape{1}, std::vector<float>{1.0f});
  Tensor big(Shape{1}, std::vector<float>{100.0f});
  h.apply(small);
  const double s0 = h.last_scale();
  h.set_training(false);
  h.apply(big);  // observer frozen: scale unchanged
  EXPECT_DOUBLE_EQ(h.last_scale(), s0);
  h.set_training(true);
  h.apply(big);
  EXPECT_LT(h.last_scale(), s0);  // range grew, scale shrank
}

TEST(ActFakeQuant, GradMaskZeroOutsideRange) {
  FakeQuantConfig cfg;
  cfg.bits = 8;
  ActFakeQuant h(cfg, 1.0);
  Tensor x(Shape{3}, std::vector<float>{0.5f, -0.9f, 1.0f});
  h.apply(x);  // range = 1.0
  Tensor probe(Shape{3}, std::vector<float>{0.3f, -1.5f, 0.9f});
  Tensor mask = h.grad_mask(probe);
  EXPECT_EQ(mask[0], 1.0f);
  EXPECT_EQ(mask[1], 0.0f);  // clipped: no gradient
  EXPECT_EQ(mask[2], 1.0f);
}

TEST(FixedGridFakeQuant, UnsignedProbabilityGrid) {
  auto h = FixedGridFakeQuant::unsigned_bits(255.0, 8);
  Tensor p(Shape{4}, std::vector<float>{0.0f, 0.5f, 1.0f, 1.2f});
  Tensor q = h.apply(p);
  EXPECT_EQ(q[0], 0.0f);
  EXPECT_NEAR(q[1], std::nearbyint(0.5 * 255) / 255.0, 1e-7);
  EXPECT_EQ(q[2], 1.0f);
  EXPECT_EQ(q[3], 1.0f);  // clamped to the code range
  Tensor mask = h.grad_mask(p);
  EXPECT_EQ(mask[3], 0.0f);
}

TEST(SoftmaxLutFakeQuant, PreservesRowStructure) {
  SoftmaxLutFakeQuant h;
  Tensor p(Shape{2, 4},
           std::vector<float>{0.7f, 0.2f, 0.05f, 0.05f,
                              0.25f, 0.25f, 0.25f, 0.25f});
  Tensor q = h.apply(p);
  for (int64_t r = 0; r < 2; ++r) {
    double sum = 0;
    for (int64_t c = 0; c < 4; ++c) {
      sum += q.at(r, c);
      EXPECT_GE(q.at(r, c), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0, 0.02);
    // Codes on the /255 grid.
    for (int64_t c = 0; c < 4; ++c) {
      const double code = q.at(r, c) * 255.0;
      EXPECT_NEAR(code, std::nearbyint(code), 1e-4);
    }
  }
  // Order preserved on the peaked row.
  EXPECT_GT(q.at(0, 0), q.at(0, 1));
  EXPECT_GT(q.at(0, 1), q.at(0, 2));
}

}  // namespace
}  // namespace fqbert::quant
