// Concurrency stress for the full serving stack, built to run under
// ThreadSanitizer in CI (the `tsan` job): every shared structure the
// annotations in src/platform/thread_annotations.h protect is exercised
// from several threads AT ONCE — hot LOAD/UNLOAD churning a lane while
// traced wire traffic flows, /metrics scrapes racing the stats
// recorders, and shard-proxy failover racing health checks and
// fleet-stats fan-out. Iterations are bounded (wall-clock stop flags +
// fixed admin cycles) so the whole file stays well under a minute even
// with TSan's ~5-15x slowdown on one core.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/loadgen.h"
#include "serve/metrics_http.h"
#include "serve/metrics_text.h"
#include "serve/net/transport_client.h"
#include "serve/net/transport_server.h"
#include "serve/router/model_router.h"
#include "serve/shard/shard_proxy.h"
#include "serve/trace.h"

namespace fqbert::serve {
namespace {

using core::FqBertModel;
using core::FqQuantConfig;
using core::QatBert;
using nn::BertConfig;
using nn::BertModel;
using nn::Example;

std::shared_ptr<const FqBertModel> make_engine(const BertConfig& config,
                                               uint64_t seed) {
  Rng rng(seed);
  BertModel model(config, rng);
  QatBert qat(model, FqQuantConfig::full());
  std::vector<Example> calib;
  Rng data_rng(seed * 31 + 7);
  for (int i = 0; i < 12; ++i)
    calib.push_back(synth_example(data_rng, 4 + (i % 3) * 5, config));
  qat.calibrate(calib);
  return std::make_shared<const FqBertModel>(FqBertModel::convert(qat));
}

BertConfig tiny_shape() {
  BertConfig c;
  c.vocab_size = 96;
  c.hidden = 16;
  c.num_layers = 2;
  c.num_heads = 2;
  c.ffn_dim = 32;
  c.max_seq_len = 24;
  c.num_classes = 2;
  return c;
}

std::shared_ptr<const FqBertModel>& stress_engine() {
  static std::shared_ptr<const FqBertModel> e = make_engine(tiny_shape(), 4242);
  return e;
}

/// Raw HTTP GET against 127.0.0.1:port, reading to connection close.
std::string http_get(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path +
                          " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  (void)!::send(fd, req.data(), req.size(), MSG_NOSIGNAL);
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
    out.append(buf, static_cast<size_t>(n));
  ::close(fd);
  return out;
}

/// Statuses a request may legitimately come back with while its lane is
/// being churned: the serve path never invents anything else.
bool acceptable_churn_status(RequestStatus s) {
  return s == RequestStatus::kOk ||
         s == RequestStatus::kRejectedUnknownModel ||
         s == RequestStatus::kShutdown || s == RequestStatus::kTimedOut ||
         s == RequestStatus::kEngineError;
}

// ---------------------------------------------------------------------------
// Router stack: hot load/unload + traced wire traffic + /metrics
// scrapes + direct stats snapshots, all concurrent.
// ---------------------------------------------------------------------------

TEST(ConcurrencyStress, RouterHotChurnTracedTrafficAndScrapes) {
  const std::string churn_path =
      ::testing::TempDir() + "stress_churn_engine.bin";
  ASSERT_TRUE(stress_engine()->save(churn_path));

  EngineRegistry registry;
  registry.register_model("base", stress_engine());
  RouterConfig rcfg;
  rcfg.num_workers = 2;
  rcfg.batcher.max_batch = 4;
  rcfg.batcher.max_wait = Micros(300);
  ModelRouter router(registry, rcfg);
  ASSERT_TRUE(router.add_model("base"));
  ASSERT_TRUE(router.start());

  net::TransportServer transport(router, {});
  ASSERT_TRUE(transport.start());
  MetricsHttpServer metrics([&router] {
    return render_router_metrics(router);
  });
  ASSERT_TRUE(metrics.start("127.0.0.1", 0));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ok_calls{0}, traced_ok{0}, scrapes{0};
  std::atomic<bool> bad_status{false};

  // Traced + untraced inference traffic on the stable lane and the
  // churned lane alike (the latter exercises unknown-model rejection
  // racing the lane map).
  std::vector<std::thread> traffic;
  for (int t = 0; t < 2; ++t) {
    traffic.emplace_back([&, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      net::TransportClient client;
      if (!client.connect("127.0.0.1", transport.port())) return;
      for (int i = 0; !stop; ++i) {
        const bool traced = i % 4 == 0;
        const std::string model = i % 3 == 0 ? "churn" : "base";
        Example ex = synth_example(rng, 4 + i % 8, tiny_shape());
        const auto resp =
            client.call(ex, Micros(2'000'000), model,
                        traced ? mint_trace_id() : 0);
        if (!resp) {  // transport failure: reconnect and continue
          if (!client.connect("127.0.0.1", transport.port())) return;
          continue;
        }
        if (!acceptable_churn_status(resp->status)) bad_status = true;
        if (resp->status == RequestStatus::kOk) {
          ++ok_calls;
          if (traced && !resp->trace.empty()) ++traced_ok;
        }
      }
    });
  }

  // Hot load/unload churn on its own admin connection, with LIST and
  // STATS fan-in sprinkled between cycles.
  std::thread admin([&] {
    net::TransportClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", transport.port()));
    for (int cycle = 0; cycle < 10; ++cycle) {
      std::string message;
      EXPECT_TRUE(client.load_model("churn", churn_path, &message))
          << message;
      (void)client.list_models();
      (void)client.query_stats("base");
      EXPECT_TRUE(client.unload_model("churn", &message)) << message;
    }
  });

  // Prometheus scrapes racing the recorders behind the rendered stats.
  std::thread scraper([&] {
    while (!stop) {
      const std::string body = http_get(metrics.port(), "/metrics");
      if (body.find("200 OK") != std::string::npos) ++scrapes;
    }
  });

  // Direct snapshot reader (no HTTP): ServeStats::report vs concurrent
  // recorders, plus the lane-map reads under churn.
  std::thread snapshotter([&] {
    while (!stop) {
      const auto report = router.stats_report("base");
      if (report) {
        // In-flight requests are admitted but not yet terminal, so a
        // concurrent snapshot shows admitted >= the terminal sum; a
        // snapshot where the sum EXCEEDS admissions would mean the
        // sketch/counter recorders tore.
        EXPECT_GE(report->admitted,
                  report->completed + report->timed_out + report->failed);
      }
      (void)router.model_names();
      std::this_thread::yield();
    }
  });

  admin.join();  // the churn cycles bound the test's duration
  stop = true;
  for (std::thread& t : traffic) t.join();
  scraper.join();
  snapshotter.join();

  EXPECT_FALSE(bad_status);
  EXPECT_GT(ok_calls.load(), 0u);
  EXPECT_GT(traced_ok.load(), 0u);
  EXPECT_GT(scrapes.load(), 0u);

  transport.stop();
  metrics.stop();
  router.shutdown(/*drain=*/true);
  std::remove(churn_path.c_str());
}

// ---------------------------------------------------------------------------
// Shard stack: failover (a backend dying mid-traffic) racing health
// probes, fleet-stats fan-out, and backend-status reads.
// ---------------------------------------------------------------------------

/// One in-process backend host: ModelRouter + TransportServer.
struct StressBackend {
  EngineRegistry registry;
  std::unique_ptr<ModelRouter> router;
  std::unique_ptr<net::TransportServer> transport;
  bool stopped = false;

  StressBackend() {
    RouterConfig rcfg;
    rcfg.num_workers = 1;
    rcfg.batcher.max_batch = 4;
    rcfg.batcher.max_wait = Micros(200);
    router = std::make_unique<ModelRouter>(registry, rcfg);
    registry.register_model("shared", stress_engine());
    EXPECT_TRUE(router->add_model("shared"));
    EXPECT_TRUE(router->start());
    transport =
        std::make_unique<net::TransportServer>(*router, net::TransportConfig{});
    EXPECT_TRUE(transport->start());
  }

  uint16_t port() const { return transport->port(); }

  void kill() {
    if (stopped) return;
    transport->stop();
    router->shutdown(/*drain=*/true);
    stopped = true;
  }

  ~StressBackend() { kill(); }
};

TEST(ConcurrencyStress, ProxyFailoverRacesHealthChecksAndStatsFanOut) {
  StressBackend a, b;
  shard::ShardProxyConfig pcfg;
  pcfg.connect_timeout = Micros(500'000);
  pcfg.call_timeout = Micros(5'000'000);
  pcfg.health_interval = Micros(20'000);  // hammer the state machine
  pcfg.health_timeout = Micros(500'000);
  pcfg.suspect_after = 1;
  pcfg.down_after = 2;
  pcfg.recover_after = 2;
  shard::ShardProxy proxy(pcfg);
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", a.port(), {"shared"}));
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", b.port(), {"shared"}));
  ASSERT_TRUE(proxy.start());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ok_calls{0};
  std::atomic<bool> bad_response{false};

  // Traced traffic through the proxy; every call must get SOME terminal
  // response (failover absorbs the dying backend).
  std::vector<std::thread> traffic;
  for (int t = 0; t < 2; ++t) {
    traffic.emplace_back([&, t] {
      Rng rng(2000 + static_cast<uint64_t>(t));
      net::TransportClient client;
      if (!client.connect("127.0.0.1", proxy.port())) return;
      for (int i = 0; !stop; ++i) {
        Example ex = synth_example(rng, 4 + i % 6, tiny_shape());
        const auto resp = client.call(ex, Micros(4'000'000), "shared",
                                      i % 5 == 0 ? mint_trace_id() : 0);
        if (!resp) {
          if (!client.connect("127.0.0.1", proxy.port())) return;
          continue;
        }
        if (resp->status == RequestStatus::kOk)
          ++ok_calls;
        else if (resp->status != RequestStatus::kEngineError)
          // kEngineError is the sanctioned every-replica-failed
          // synthesis; anything else here is a routing bug.
          bad_response = true;
      }
    });
  }

  // Scrape the fleet stats + per-backend status + synchronous health
  // rounds, all racing the data path and the background health loop.
  std::thread scraper([&] {
    while (!stop) {
      (void)proxy.aggregate_stats();
      (void)proxy.backend_status();
      (void)render_proxy_metrics(proxy);
      proxy.check_backends_now();
    }
  });

  // Let traffic flow both-backends for a moment, then kill one.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const uint64_t before_kill = ok_calls.load();
  a.kill();
  // Keep serving through the survivor long enough for failover +
  // health transitions to churn.
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  stop = true;
  for (std::thread& t : traffic) t.join();
  scraper.join();

  EXPECT_FALSE(bad_response);
  EXPECT_GT(ok_calls.load(), before_kill)
      << "no request succeeded after the backend died";
  proxy.stop();
}

}  // namespace
}  // namespace fqbert::serve
