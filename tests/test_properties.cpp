// Cross-module property tests: parameterized sweeps over configuration
// space asserting the invariants the design relies on.
#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "core/model_size.h"
#include "quant/quantizer.h"
#include "tensor/rng.h"

namespace fqbert {
namespace {

// ---------------------------------------------------------------------------
// Quantization error is monotone in bitwidth (Fig. 3's x-axis premise).
// ---------------------------------------------------------------------------

class QuantMonotonicity : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QuantMonotonicity, ErrorShrinksWithMoreBits) {
  Rng rng(GetParam());
  Tensor t(Shape{512});
  fill_normal(t, rng);
  double prev_err = 1e30;
  for (int bits : {2, 3, 4, 6, 8, 12}) {
    const double s = quant::scale_from_threshold(quant::abs_max(t), bits);
    Tensor fq = quant::fake_quantize_tensor(t, s, bits);
    double err = 0;
    for (int64_t i = 0; i < t.numel(); ++i)
      err += std::fabs(fq[i] - t[i]);
    EXPECT_LE(err, prev_err * 1.0001) << "bits=" << bits;
    prev_err = err;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantMonotonicity,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull));

// ---------------------------------------------------------------------------
// Accelerator model properties over the (N, M) configuration space.
// ---------------------------------------------------------------------------

struct NmCase {
  int n;
  int m;
};

class AccelConfigSpace : public ::testing::TestWithParam<NmCase> {};

TEST_P(AccelConfigSpace, LatencyInverseInThroughput) {
  const auto model = nn::BertConfig::bert_base(2);
  accel::AcceleratorConfig cfg;
  cfg.pes_per_pu = GetParam().n;
  cfg.bim_mults = GetParam().m;
  accel::AcceleratorConfig doubled = cfg;
  doubled.pes_per_pu *= 2;
  const auto dev = accel::FpgaDevice::zcu111();
  const double t1 = accel::PerfModel(cfg, dev).estimate(model, 128).fpga_ms;
  const double t2 =
      accel::PerfModel(doubled, dev).estimate(model, 128).fpga_ms;
  // Doubling the PEs must help, but cannot be better than 2x.
  EXPECT_LT(t2, t1);
  EXPECT_GT(t2, t1 * 0.45);
}

TEST_P(AccelConfigSpace, ResourcesScaleMonotonically) {
  accel::AcceleratorConfig cfg;
  cfg.pes_per_pu = GetParam().n;
  cfg.bim_mults = GetParam().m;
  accel::AcceleratorConfig bigger = cfg;
  bigger.bim_mults *= 2;
  const auto dev = accel::FpgaDevice::zcu111();
  const auto r1 = accel::ResourceModel::estimate(cfg, dev);
  const auto r2 = accel::ResourceModel::estimate(bigger, dev);
  EXPECT_GT(r2.dsp48, r1.dsp48);
  EXPECT_GT(r2.ff, r1.ff);
  EXPECT_GT(r2.lut, r1.lut);
}

TEST_P(AccelConfigSpace, PowerGrowsWithResources) {
  accel::AcceleratorConfig cfg;
  cfg.pes_per_pu = GetParam().n;
  cfg.bim_mults = GetParam().m;
  accel::AcceleratorConfig bigger = cfg;
  bigger.pes_per_pu *= 2;
  const auto dev = accel::FpgaDevice::zcu111();
  EXPECT_GT(accel::PowerModel::estimate_w(bigger, dev),
            accel::PowerModel::estimate_w(cfg, dev));
}

TEST_P(AccelConfigSpace, StageCyclesPositiveAndStallFree) {
  const auto model = nn::BertConfig::bert_base(2);
  accel::AcceleratorConfig cfg;
  cfg.pes_per_pu = GetParam().n;
  cfg.bim_mults = GetParam().m;
  const auto rep = accel::PerfModel(cfg, accel::FpgaDevice::zcu111())
                       .estimate(model, 128);
  for (const auto& st : rep.stages) {
    EXPECT_GT(st.compute_cycles, 0) << st.name;
    EXPECT_GE(st.total_cycles, st.compute_cycles) << st.name;
    EXPECT_GE(st.stall_cycles, 0) << st.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AccelConfigSpace,
    ::testing::Values(NmCase{4, 8}, NmCase{8, 8}, NmCase{8, 16},
                      NmCase{16, 8}, NmCase{16, 16}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "m" +
             std::to_string(info.param.m);
    });

// ---------------------------------------------------------------------------
// Compression ratio properties across model shapes.
// ---------------------------------------------------------------------------

class CompressionShape : public ::testing::TestWithParam<int> {};

TEST_P(CompressionShape, RatioBetween4And8ForW4A8) {
  // 4-bit weights bound the ratio by 8x; 32-bit biases and 8-bit LN
  // params keep it below that.
  nn::BertConfig c = nn::BertConfig::bert_base(2);
  c.num_layers = GetParam();
  const auto r = core::model_size_report(c, core::FqQuantConfig::full());
  EXPECT_GT(r.compression_ratio(), 6.0) << "layers=" << GetParam();
  EXPECT_LT(r.compression_ratio(), 8.0) << "layers=" << GetParam();
}

TEST_P(CompressionShape, DepthDilutesRatioTowardPerLayerMix) {
  // Every encoder layer carries 32-bit biases and 8-bit LN parameters
  // alongside its 4-bit weights, so adding layers moves the whole-model
  // ratio *down* toward the per-layer mix (still close to 8x).
  nn::BertConfig shallow = nn::BertConfig::bert_base(2);
  shallow.num_layers = GetParam();
  nn::BertConfig deep = shallow;
  deep.num_layers = GetParam() * 2;
  const auto cfg = core::FqQuantConfig::full();
  const double r_deep = core::model_size_report(deep, cfg).compression_ratio();
  const double r_shallow =
      core::model_size_report(shallow, cfg).compression_ratio();
  EXPECT_LE(r_deep, r_shallow + 1e-9);
  EXPECT_GT(r_deep, r_shallow - 0.1);  // the dilution is small
}

INSTANTIATE_TEST_SUITE_P(Depths, CompressionShape,
                         ::testing::Values(2, 6, 12, 24));

}  // namespace
}  // namespace fqbert
