// Shard proxy tests: forwarding helpers (peek / model rewrite without
// re-decoding payloads), ClientPool reuse-after-error rules, the proxy
// end-to-end (K models split across 2 backends bit-identical to one
// router holding all K, failover across a backend death with zero
// client-visible failures, v1 clients, admin LIST/STATS fan-out with
// exact-mergeable quantile sketches, trace splicing across a failover,
// health state machine down->recovered), and the TransportClient
// recv-timeout regression suite (a connection that times out mid-frame
// is condemned — never reused into reading stale bytes — and a
// trickling peer cannot stretch the whole-frame budget).
#include <gtest/gtest.h>

#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <thread>

#include "serve/flight_recorder.h"
#include "serve/loadgen.h"
#include "serve/net/client_pool.h"
#include "serve/net/transport_client.h"
#include "serve/net/transport_server.h"
#include "serve/router/model_router.h"
#include "serve/server.h"
#include "serve/shard/shard_proxy.h"

namespace fqbert::serve {
namespace {

using core::FqBertModel;
using core::FqQuantConfig;
using core::QatBert;
using nn::BertConfig;
using nn::BertModel;
using nn::Example;

BertConfig tiny_config() {
  BertConfig c;
  c.vocab_size = 128;
  c.hidden = 16;
  c.num_layers = 2;
  c.num_heads = 2;
  c.ffn_dim = 32;
  c.max_seq_len = 32;
  c.num_classes = 2;
  return c;
}

std::shared_ptr<const FqBertModel> build_engine(uint64_t seed) {
  const BertConfig config = tiny_config();
  Rng rng(seed);
  BertModel model(config, rng);
  QatBert qat(model, FqQuantConfig::full());
  std::vector<Example> calib;
  Rng data_rng(seed * 31 + 7);
  for (int i = 0; i < 12; ++i)
    calib.push_back(synth_example(data_rng, 4 + (i % 3) * 6, config));
  qat.calibrate(calib);
  return std::make_shared<const FqBertModel>(FqBertModel::convert(qat));
}

/// Three distinct-weight engines shared by every test (built once).
struct Engines {
  BertConfig config = tiny_config();
  std::shared_ptr<const FqBertModel> e0 = build_engine(42);
  std::shared_ptr<const FqBertModel> e1 = build_engine(43);
  std::shared_ptr<const FqBertModel> e2 = build_engine(44);
};

Engines& engines() {
  static Engines e;
  return e;
}

using NamedEngine =
    std::pair<std::string, std::shared_ptr<const FqBertModel>>;

/// One in-process "backend host": ModelRouter + TransportServer on an
/// ephemeral (or explicitly reused) loopback port.
struct BackendHost {
  EngineRegistry registry;
  std::unique_ptr<ModelRouter> router;
  std::unique_ptr<net::TransportServer> transport;
  bool stopped = false;

  explicit BackendHost(const std::vector<NamedEngine>& models,
                       uint16_t fixed_port = 0) {
    RouterConfig rcfg;
    rcfg.num_workers = 1;
    rcfg.batcher.max_batch = 4;
    rcfg.batcher.max_wait = Micros(200);
    router = std::make_unique<ModelRouter>(registry, rcfg);
    for (const auto& [name, engine] : models) {
      registry.register_model(name, engine);
      EXPECT_TRUE(router->add_model(name));
    }
    EXPECT_TRUE(router->start());
    net::TransportConfig tcfg;
    tcfg.port = fixed_port;
    transport = std::make_unique<net::TransportServer>(*router, tcfg);
    EXPECT_TRUE(transport->start());
  }

  uint16_t port() const { return transport->port(); }

  /// Simulate the host dying: transport torn down, router drained.
  void kill() {
    if (stopped) return;
    transport->stop();
    router->shutdown(/*drain=*/true);
    stopped = true;
  }

  ~BackendHost() { kill(); }
};

shard::ShardProxyConfig fast_proxy_config() {
  shard::ShardProxyConfig cfg;
  cfg.connect_timeout = Micros(500'000);
  cfg.call_timeout = Micros(5'000'000);
  cfg.health_interval = Micros(50'000);
  cfg.health_timeout = Micros(500'000);
  cfg.suspect_after = 1;
  cfg.down_after = 2;
  cfg.recover_after = 2;
  return cfg;
}

/// Raw single-connection server whose behavior is scripted by the test
/// (stalls, trickles) — things a real TransportServer never does.
struct StallServer {
  int listen_fd = -1;
  uint16_t port = 0;
  std::thread thread;

  explicit StallServer(std::function<void(int)> session) {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd, 0);
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd, 4), 0);
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len);
    port = ntohs(bound.sin_port);
    thread = std::thread([this, session = std::move(session)] {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd >= 0) {
        session(fd);
        ::close(fd);
      }
    });
  }

  ~StallServer() {
    ::close(listen_fd);
    if (thread.joinable()) thread.join();
  }
};

std::vector<uint8_t> ok_response_frame(uint64_t correlation,
                                       size_t num_logits) {
  net::WireResponse resp;
  resp.correlation_id = correlation;
  resp.response.status = RequestStatus::kOk;
  resp.response.predicted = 1;
  resp.response.logits.assign(num_logits, 0.5f);
  std::vector<uint8_t> out;
  net::encode_serve_response(resp, out);
  return out;
}

void expect_bit_identical(const ServeResponse& local,
                          const std::optional<ServeResponse>& remote,
                          int* mismatches) {
  if (!remote || remote->status != RequestStatus::kOk ||
      local.status != RequestStatus::kOk ||
      local.logits.size() != remote->logits.size() ||
      local.predicted != remote->predicted) {
    ++*mismatches;
    return;
  }
  for (size_t i = 0; i < local.logits.size(); ++i)
    if (local.logits[i] != remote->logits[i]) ++*mismatches;
}

// ---------------------------------------------------------------------------
// Forwarding helpers: peek / rewrite without re-decoding token arrays
// ---------------------------------------------------------------------------

TEST(FrameForwarding, PeekReadsRoutingFieldsAndValidatesCounts) {
  net::WireRequest req;
  req.correlation_id = 0xFEEDFACEull;
  req.deadline_budget_us = 1234;
  req.model = "m1";
  req.trace_id = 0xABCDull;
  Rng rng(3);
  req.example = synth_example(rng, 11, engines().config);
  std::vector<uint8_t> frame;
  net::encode_serve_request(req, frame);

  uint64_t corr = 0;
  uint64_t trace = 0;
  uint8_t tier = 0;
  std::string model;
  ASSERT_TRUE(net::peek_serve_request(frame.data() + net::kHeaderSize,
                                      frame.size() - net::kHeaderSize,
                                      net::kProtocolVersion, &corr, &trace,
                                      &tier, &model));
  EXPECT_EQ(corr, req.correlation_id);
  EXPECT_EQ(trace, req.trace_id);
  EXPECT_EQ(tier, req.tier);
  EXPECT_EQ(model, "m1");

  // A lying token count must fail the peek (offset 25 + 2 + 2 = 29 for
  // a 2-byte model string in a v4 payload: u64 corr + i64 deadline +
  // u64 trace + u8 tier + u16 len + "m1").
  std::vector<uint8_t> lying = frame;
  lying[net::kHeaderSize + 29] += 1;
  EXPECT_FALSE(net::peek_serve_request(lying.data() + net::kHeaderSize,
                                       lying.size() - net::kHeaderSize,
                                       net::kProtocolVersion, &corr, &trace,
                                       &tier, &model));
}

TEST(FrameForwarding, RewritePreservesExampleBytesAndUpgradesV1) {
  Rng rng(4);
  net::WireRequest req;
  req.correlation_id = 99;
  req.deadline_budget_us = 777;
  req.example = synth_example(rng, 9, engines().config);

  for (const uint8_t version : {uint8_t{1}, uint8_t{2}}) {
    std::vector<uint8_t> frame;
    net::encode_serve_request(req, frame, version);
    std::vector<uint8_t> rewritten;
    ASSERT_TRUE(net::rewrite_serve_request_model(
        frame.data(), frame.size(), "routed", /*trace_id=*/0x1234,
        &rewritten));
    net::FrameHeader hdr;
    ASSERT_EQ(net::decode_header(rewritten.data(), rewritten.size(), &hdr),
              net::DecodeStatus::kFrame);
    EXPECT_EQ(hdr.version, 4);  // v1/v2 inputs upgraded
    net::WireRequest back;
    ASSERT_TRUE(net::decode_serve_request(
        rewritten.data() + net::kHeaderSize, hdr.payload_len, hdr.version,
        &back));
    EXPECT_EQ(back.model, "routed");
    EXPECT_EQ(back.correlation_id, req.correlation_id);
    EXPECT_EQ(back.deadline_budget_us, req.deadline_budget_us);
    // Pre-v3 frames have no trace field: the proxy-minted id is stamped.
    EXPECT_EQ(back.trace_id, 0x1234u);
    EXPECT_EQ(back.example.tokens, req.example.tokens);
    EXPECT_EQ(back.example.segments, req.example.segments);
  }

  // A v3 frame that already carries a client trace id keeps it: the
  // rewrite only fills the field when the client left it zero.
  {
    req.trace_id = 0xBEEFull;
    std::vector<uint8_t> frame;
    net::encode_serve_request(req, frame);
    std::vector<uint8_t> rewritten;
    ASSERT_TRUE(net::rewrite_serve_request_model(
        frame.data(), frame.size(), "routed", /*trace_id=*/0x1234,
        &rewritten));
    net::FrameHeader hdr;
    ASSERT_EQ(net::decode_header(rewritten.data(), rewritten.size(), &hdr),
              net::DecodeStatus::kFrame);
    net::WireRequest back;
    ASSERT_TRUE(net::decode_serve_request(
        rewritten.data() + net::kHeaderSize, hdr.payload_len, hdr.version,
        &back));
    EXPECT_EQ(back.trace_id, 0xBEEFull);
    EXPECT_EQ(back.model, "routed");
    req.trace_id = 0;
  }

  // Non-serve frames are refused.
  std::vector<uint8_t> info;
  net::encode_info_request("", info);
  std::vector<uint8_t> out;
  EXPECT_FALSE(net::rewrite_serve_request_model(info.data(), info.size(),
                                                "routed", /*trace_id=*/1,
                                                &out));
}

// ---------------------------------------------------------------------------
// ClientPool reuse rules
// ---------------------------------------------------------------------------

TEST(ClientPoolRules, ReusesAlignedConnectionsDiscardsBrokenOnes) {
  BackendHost host({{"m0", engines().e0}});
  net::ClientPoolConfig cfg;
  cfg.capacity = 2;
  cfg.recv_timeout = Micros(5'000'000);
  net::ClientPool pool("127.0.0.1", host.port(), cfg);
  Rng rng(9);
  const Example ex = synth_example(rng, 8, engines().config);

  {
    net::ClientPool::Handle h = pool.checkout();
    ASSERT_TRUE(bool(h));
    const auto resp = h->call(ex, std::nullopt, "m0");
    ASSERT_TRUE(resp.has_value()) << h->error();
    EXPECT_EQ(resp->status, RequestStatus::kOk);
  }  // aligned -> pooled
  net::ClientPool::Stats s = pool.stats();
  EXPECT_EQ(s.created, 1u);
  EXPECT_EQ(s.pooled, 1u);
  EXPECT_EQ(s.idle, 1u);

  {
    net::ClientPool::Handle h = pool.checkout();
    ASSERT_TRUE(bool(h));
    // An in-band admin failure consumes its whole frame: the stream is
    // still aligned, so the connection stays reusable.
    EXPECT_FALSE(h->query_stats("no-such-model").has_value());
    EXPECT_EQ(h->error_kind(), net::ClientError::kNone);
    EXPECT_TRUE(h->connected());
  }
  s = pool.stats();
  EXPECT_EQ(s.reused, 1u);
  EXPECT_EQ(s.pooled, 2u);
  EXPECT_EQ(s.idle, 1u);

  {
    net::ClientPool::Handle h = pool.checkout();
    ASSERT_TRUE(bool(h));
    h->close();  // transport gone: must never be pooled again
  }
  s = pool.stats();
  EXPECT_EQ(s.discarded, 1u);
  EXPECT_EQ(s.idle, 0u);

  // Returns beyond capacity are dropped, not hoarded.
  {
    net::ClientPool::Handle a = pool.checkout();
    net::ClientPool::Handle b = pool.checkout();
    net::ClientPool::Handle c = pool.checkout();
    ASSERT_TRUE(bool(a) && bool(b) && bool(c));
  }
  s = pool.stats();
  EXPECT_LE(s.idle, 2u);
  EXPECT_GE(s.discarded, 2u);
}

// ---------------------------------------------------------------------------
// Proxy end-to-end
// ---------------------------------------------------------------------------

TEST(ShardProxy, BitIdenticalToSingleRouterAcrossBackends) {
  Engines& fx = engines();
  BackendHost a({{"m0", fx.e0}, {"m1", fx.e1}});
  BackendHost b({{"m1", fx.e1}, {"m2", fx.e2}});

  // Reference: ONE router holding all three models in-process.
  EngineRegistry ref_registry;
  ref_registry.register_model("m0", fx.e0);
  ref_registry.register_model("m1", fx.e1);
  ref_registry.register_model("m2", fx.e2);
  RouterConfig rcfg;
  rcfg.num_workers = 1;
  ModelRouter reference(ref_registry, rcfg);
  ASSERT_TRUE(reference.add_model("m0"));
  ASSERT_TRUE(reference.add_model("m1"));
  ASSERT_TRUE(reference.add_model("m2"));
  ASSERT_TRUE(reference.start());

  shard::ShardProxy proxy(fast_proxy_config());
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", a.port(), {"m0", "m1"}));
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", b.port(), {"m1", "m2"}));
  ASSERT_TRUE(proxy.start());
  EXPECT_EQ(proxy.default_model(), "m0");
  EXPECT_EQ(proxy.model_names(),
            (std::vector<std::string>{"m0", "m1", "m2"}));

  constexpr int kClients = 2, kPerClient = 30;
  const char* models[3] = {"m0", "m1", "m2"};
  std::vector<int> mismatches(kClients, 0);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      net::TransportClient client;
      if (!client.connect("127.0.0.1", proxy.port())) {
        mismatches[static_cast<size_t>(c)] = kPerClient;
        return;
      }
      Rng rng(900 + c);
      for (int i = 0; i < kPerClient; ++i) {
        const std::string model = models[(c + i) % 3];
        const Example ex =
            synth_example(rng, 2 + rng.randint(0, 30), engines().config);
        const auto remote = client.call(ex, std::nullopt, model);
        const ServeResponse local = reference.submit(model, ex).get();
        expect_bit_identical(local, remote,
                             &mismatches[static_cast<size_t>(c)]);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(mismatches[c], 0);

  const shard::ShardProxy::Counters counters = proxy.counters();
  EXPECT_EQ(counters.served, kClients * kPerClient);
  EXPECT_EQ(counters.exhausted, 0u);
  EXPECT_EQ(counters.unknown_model, 0u);
  EXPECT_EQ(counters.protocol_errors, 0u);

  proxy.stop();
  reference.shutdown(/*drain=*/true);
}

TEST(ShardProxy, FailoverOnBackendDeathZeroClientVisibleFailures) {
  Engines& fx = engines();
  BackendHost a({{"m0", fx.e0}, {"shared", fx.e1}});
  BackendHost b({{"shared", fx.e1}});

  shard::ShardProxy proxy(fast_proxy_config());
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", a.port(), {"m0", "shared"}));
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", b.port(), {"shared"}));
  ASSERT_TRUE(proxy.start());

  net::TransportClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", proxy.port())) << client.error();
  Rng rng(17);
  for (int i = 0; i < 40; ++i) {
    if (i == 15) a.kill();  // primary replica dies mid-load
    const Example ex = synth_example(rng, 8, fx.config);
    const auto resp = client.call(ex, std::nullopt, "shared");
    ASSERT_TRUE(resp.has_value()) << "request " << i << ": "
                                  << client.error();
    EXPECT_EQ(resp->status, RequestStatus::kOk) << "request " << i;
  }
  const shard::ShardProxy::Counters counters = proxy.counters();
  EXPECT_EQ(counters.served, 40u);
  EXPECT_EQ(counters.exhausted, 0u);
  EXPECT_GE(counters.failovers, 1u);  // the death was absorbed, observed

  // A model whose ONLY replica died still gets a terminal response —
  // synthesized kEngineError — never a hang or a dropped connection.
  const auto orphan =
      client.call(synth_example(rng, 8, fx.config), std::nullopt, "m0");
  ASSERT_TRUE(orphan.has_value()) << client.error();
  EXPECT_EQ(orphan->status, RequestStatus::kEngineError);
  EXPECT_GE(proxy.counters().exhausted, 1u);

  // The dead backend's state machine reflects the failures.
  const auto status = proxy.backend_status();
  ASSERT_EQ(status.size(), 2u);
  EXPECT_NE(status[0].state, shard::BackendState::kHealthy);
  EXPECT_GE(status[0].forward_failures, 1u);
  EXPECT_GE(status[1].forwarded, 1u);
}

TEST(ShardProxy, UnknownModelRejectedInBandConnectionStaysUsable) {
  Engines& fx = engines();
  BackendHost a({{"m0", fx.e0}});
  shard::ShardProxy proxy(fast_proxy_config());
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", a.port(), {"m0"}));
  ASSERT_TRUE(proxy.start());

  net::TransportClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", proxy.port()));
  Rng rng(21);
  const Example ex = synth_example(rng, 8, fx.config);
  const auto bad = client.call(ex, std::nullopt, "nope");
  ASSERT_TRUE(bad.has_value()) << client.error();
  EXPECT_EQ(bad->status, RequestStatus::kRejectedUnknownModel);
  EXPECT_EQ(proxy.counters().unknown_model, 1u);

  const auto good = client.call(ex, std::nullopt, "m0");
  ASSERT_TRUE(good.has_value()) << client.error();
  EXPECT_EQ(good->status, RequestStatus::kOk);
}

TEST(ShardProxy, V1ClientServedOnDefaultModelBitIdentically) {
  Engines& fx = engines();
  BackendHost a({{"m0", fx.e0}});
  BackendHost b({{"m0", fx.e0}});  // replica
  shard::ShardProxy proxy(fast_proxy_config());
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", a.port(), {"m0"}));
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", b.port(), {"m0"}));
  ASSERT_TRUE(proxy.start());

  net::TransportClient v1(/*protocol_version=*/1);
  ASSERT_TRUE(v1.connect("127.0.0.1", proxy.port())) << v1.error();
  const auto info = v1.query_info();
  ASSERT_TRUE(info.has_value()) << v1.error();
  EXPECT_EQ(info->hidden, fx.config.hidden);
  EXPECT_EQ(info->max_seq_len, fx.config.max_seq_len);

  Rng rng(33);
  for (int i = 0; i < 5; ++i) {
    const Example ex = synth_example(rng, 6 + i, fx.config);
    const auto resp = v1.call(ex);
    ASSERT_TRUE(resp.has_value()) << v1.error();
    ASSERT_EQ(resp->status, RequestStatus::kOk);
    const Tensor expect = fx.e0->forward(ex);
    ASSERT_EQ(static_cast<size_t>(expect.numel()), resp->logits.size());
    for (int64_t j = 0; j < expect.numel(); ++j)
      EXPECT_EQ(expect[j], resp->logits[static_cast<size_t>(j)]);
  }
}

TEST(ShardProxy, AdminFanOutListStatsAndRefusedLoad) {
  Engines& fx = engines();
  BackendHost a({{"m0", fx.e0}, {"m1", fx.e1}});
  BackendHost b({{"m1", fx.e1}, {"m2", fx.e2}});
  shard::ShardProxy proxy(fast_proxy_config());
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", a.port(), {"m0", "m1"}));
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", b.port(), {"m1", "m2"}));
  ASSERT_TRUE(proxy.start());

  // Put traffic on m1 on BOTH backends directly, so the fan-out has
  // something non-trivial to aggregate.
  Rng rng(55);
  for (const uint16_t port : {a.port(), b.port()}) {
    net::TransportClient direct;
    ASSERT_TRUE(direct.connect("127.0.0.1", port));
    for (int i = 0; i < 3; ++i) {
      const auto resp = direct.call(synth_example(rng, 8, fx.config),
                                    std::nullopt, "m1");
      ASSERT_TRUE(resp.has_value() && resp->status == RequestStatus::kOk);
    }
  }

  net::TransportClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", proxy.port()));

  // LIST fans out and returns the union of backend model sets.
  const auto list = client.list_models();
  ASSERT_TRUE(list.has_value()) << client.error();
  EXPECT_EQ(*list, (std::vector<std::string>{"m0", "m1", "m2"}));

  // STATS fans out to m1's replicas and sums their counters.
  const auto stats = client.query_stats("m1");
  ASSERT_TRUE(stats.has_value()) << client.error();
  const uint64_t truth_admitted = a.router->stats_report("m1")->admitted +
                                  b.router->stats_report("m1")->admitted;
  EXPECT_EQ(stats->model, "m1");
  EXPECT_EQ(stats->report.admitted, truth_admitted);
  EXPECT_EQ(stats->report.admitted, 6u);
  EXPECT_TRUE(stats->report.accounting_balances());

  // LOAD/UNLOAD are refused in-band; the connection stays usable.
  std::string message;
  EXPECT_FALSE(client.load_model("x", "/tmp/nope.bin", &message));
  EXPECT_NE(message.find("not routed"), std::string::npos) << message;
  EXPECT_EQ(client.error_kind(), net::ClientError::kNone);
  EXPECT_FALSE(client.unload_model("m1", &message));
  EXPECT_TRUE(client.connected());

  // STATS for a name outside the placement table fails in-band.
  EXPECT_FALSE(client.query_stats("zzz").has_value());
  EXPECT_EQ(client.error_kind(), net::ClientError::kNone);
  EXPECT_TRUE(client.list_models().has_value());  // still usable
}

TEST(ShardProxy, StatsFanOutQuantilesExactlyMergeBackendSketches) {
  Engines& fx = engines();
  BackendHost a({{"m0", fx.e0}, {"m1", fx.e1}});
  BackendHost b({{"m1", fx.e1}, {"m2", fx.e2}});
  shard::ShardProxy proxy(fast_proxy_config());
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", a.port(), {"m0", "m1"}));
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", b.port(), {"m1", "m2"}));
  ASSERT_TRUE(proxy.start());

  // Traffic on every model through the proxy, plus direct traffic on
  // m1's replicas so its two shards hold genuinely different samples.
  net::TransportClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", proxy.port()));
  Rng rng(83);
  const char* models[3] = {"m0", "m1", "m2"};
  for (int i = 0; i < 45; ++i) {
    const auto resp = client.call(
        synth_example(rng, 2 + rng.randint(0, 30), fx.config), std::nullopt,
        models[i % 3]);
    ASSERT_TRUE(resp.has_value()) << client.error();
    ASSERT_EQ(resp->status, RequestStatus::kOk);
  }
  for (const uint16_t port : {a.port(), b.port()}) {
    net::TransportClient direct;
    ASSERT_TRUE(direct.connect("127.0.0.1", port));
    for (int i = 0; i < 5; ++i) {
      const auto resp = direct.call(synth_example(rng, 8, fx.config),
                                    std::nullopt, "m1");
      ASSERT_TRUE(resp.has_value() && resp->status == RequestStatus::kOk);
    }
  }

  // For each model: merge the per-backend sketches locally (ground
  // truth read straight off the routers) and demand the proxy's
  // fanned-out aggregate match bit-for-bit — merge of sketches must
  // equal the sketch of the pooled samples, including over the wire.
  for (const char* model : models) {
    QuantileSketch merged;
    uint64_t admitted = 0, samples = 0;
    for (BackendHost* host : {&a, &b}) {
      const auto part = host->router->stats_report(model);
      if (!part.has_value()) continue;
      merged.merge(part->latency_sketch);
      admitted += part->admitted;
      samples += part->latency_samples;
    }
    ASSERT_GT(samples, 0u) << model;

    const auto agg = client.query_stats(model);
    ASSERT_TRUE(agg.has_value()) << model << ": " << client.error();
    EXPECT_EQ(agg->report.admitted, admitted);
    EXPECT_EQ(agg->report.latency_samples, samples);
    EXPECT_TRUE(agg->report.accounting_balances());
    EXPECT_TRUE(agg->report.latency_sketch == merged) << model;
    EXPECT_EQ(agg->report.p50_ms, merged.quantile_ms(0.50)) << model;
    EXPECT_EQ(agg->report.p95_ms, merged.quantile_ms(0.95)) << model;
    EXPECT_EQ(agg->report.p99_ms, merged.quantile_ms(0.99)) << model;
    EXPECT_EQ(agg->report.p999_ms, merged.quantile_ms(0.999)) << model;
    EXPECT_EQ(agg->report.max_ms, merged.quantile_ms(1.0)) << model;
  }
}

TEST(ShardProxy, TraceSurvivesFailoverWithMonotonicStages) {
  Engines& fx = engines();
  BackendHost a({{"shared", fx.e1}});
  BackendHost b({{"shared", fx.e1}});

  shard::ShardProxyConfig cfg = fast_proxy_config();
  cfg.health_interval = Micros(3'600'000'000);  // no background repair:
  // the dead backend stays eligible, so the forward attempt on it
  // deterministically fails over inside the traced request.
  shard::ShardProxy proxy(cfg);
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", a.port(), {"shared"}));
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", b.port(), {"shared"}));
  ASSERT_TRUE(proxy.start());

  net::TransportClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", proxy.port()));
  Rng rng(91);

  // Healthy path first: the proxy splices its own stages around the
  // backend's, one id end-to-end.
  const uint64_t warm_id = mint_trace_id();
  const auto warm = client.call(synth_example(rng, 8, fx.config),
                                std::nullopt, "shared", warm_id);
  ASSERT_TRUE(warm.has_value()) << client.error();
  ASSERT_EQ(warm->status, RequestStatus::kOk);
  EXPECT_EQ(warm->trace_id, warm_id);
  ASSERT_GE(warm->trace.size(), 6u);
  EXPECT_EQ(warm->trace.front().stage, TraceStage::kProxyReceived);
  EXPECT_EQ(warm->trace.front().t_us, 0);
  EXPECT_EQ(warm->trace.back().stage, TraceStage::kProxyResponse);

  // Kill every backend the proxy might try first, then trace through
  // the failover. Up to a handful of attempts in case the rotation
  // starts on the surviving replica.
  a.kill();
  bool saw_retry = false;
  for (int i = 0; i < 6 && !saw_retry; ++i) {
    const uint64_t tid = mint_trace_id();
    const TimePoint sent_at = Clock::now();
    const auto resp = client.call(synth_example(rng, 8, fx.config),
                                  std::nullopt, "shared", tid);
    const int64_t wall_us =
        std::chrono::duration_cast<Micros>(Clock::now() - sent_at).count();
    ASSERT_TRUE(resp.has_value()) << client.error();
    ASSERT_EQ(resp->status, RequestStatus::kOk);
    EXPECT_EQ(resp->trace_id, tid);
    ASSERT_FALSE(resp->trace.empty());

    int64_t prev = 0;
    int admissions = 0, forwards = 0;
    for (const TraceEvent& ev : resp->trace) {
      EXPECT_GE(ev.t_us, prev);  // one monotonic spliced timeline
      prev = ev.t_us;
      if (ev.stage == TraceStage::kAdmitted) ++admissions;
      if (ev.stage == TraceStage::kProxyForward ||
          ev.stage == TraceStage::kProxyRetry)
        ++forwards;
      if (ev.stage == TraceStage::kProxyRetry) saw_retry = true;
    }
    EXPECT_LE(prev, wall_us);  // stages fit the client-observed wall
    EXPECT_EQ(resp->trace.front().stage, TraceStage::kProxyReceived);
    EXPECT_EQ(resp->trace.back().stage, TraceStage::kProxyResponse);
    // Only the SUCCESSFUL attempt's backend stages are spliced in.
    EXPECT_EQ(admissions, 1);
    EXPECT_GE(forwards, 1);
  }
  EXPECT_TRUE(saw_retry) << "no traced request observed the failover";
  EXPECT_GE(proxy.counters().failovers, 1u);
}

TEST(ShardProxy, HealthStateMachineMarksDownAndRecovers) {
  Engines& fx = engines();
  auto host = std::make_unique<BackendHost>(
      std::vector<NamedEngine>{{"m0", fx.e0}});
  const uint16_t backend_port = host->port();

  shard::ShardProxyConfig cfg = fast_proxy_config();
  cfg.health_interval = Micros(3'600'000'000);  // driven manually below
  cfg.health_timeout = Micros(300'000);
  cfg.connect_timeout = Micros(300'000);
  shard::ShardProxy proxy(cfg);
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", backend_port, {"m0"}));
  ASSERT_TRUE(proxy.start());

  proxy.check_backends_now();
  auto status = proxy.backend_status();
  EXPECT_EQ(status[0].state, shard::BackendState::kHealthy);
  EXPECT_GE(status[0].health_ok, 1u);

  host->kill();
  host.reset();
  proxy.check_backends_now();  // failure 1 -> suspect (suspect_after=1)
  EXPECT_EQ(proxy.backend_status()[0].state, shard::BackendState::kSuspect);
  proxy.check_backends_now();  // failure 2 -> down (down_after=2)
  EXPECT_EQ(proxy.backend_status()[0].state, shard::BackendState::kDown);

  // While down, a serve request still gets a terminal response (the
  // down backend is tried as a last resort, fails, synthesized error).
  net::TransportClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", proxy.port()));
  Rng rng(61);
  const auto down_resp =
      client.call(synth_example(rng, 8, fx.config), std::nullopt, "m0");
  ASSERT_TRUE(down_resp.has_value()) << client.error();
  EXPECT_EQ(down_resp->status, RequestStatus::kEngineError);

  // Backend returns on the SAME port: recover_after successes flip it
  // back to healthy and count a recovery.
  host = std::make_unique<BackendHost>(
      std::vector<NamedEngine>{{"m0", fx.e0}}, backend_port);
  ASSERT_EQ(host->port(), backend_port);
  proxy.check_backends_now();
  proxy.check_backends_now();
  status = proxy.backend_status();
  EXPECT_EQ(status[0].state, shard::BackendState::kHealthy);
  EXPECT_GE(status[0].recoveries, 1u);
  EXPECT_GE(proxy.counters().health_transitions, 3u);

  const auto resp =
      client.call(synth_example(rng, 8, fx.config), std::nullopt, "m0");
  ASSERT_TRUE(resp.has_value()) << client.error();
  EXPECT_EQ(resp->status, RequestStatus::kOk);

  proxy.stop();
}

TEST(ShardProxy, StaleParkedConnectionsNeverFailRequestsOrHealth) {
  Engines& fx = engines();
  auto host = std::make_unique<BackendHost>(
      std::vector<NamedEngine>{{"m0", fx.e0}});
  const uint16_t backend_port = host->port();

  shard::ShardProxyConfig cfg = fast_proxy_config();
  cfg.health_interval = Micros(3'600'000'000);  // no background repair
  shard::ShardProxy proxy(cfg);
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", backend_port, {"m0"}));
  ASSERT_TRUE(proxy.start());

  net::TransportClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", proxy.port()));
  Rng rng(71);
  const Example ex = synth_example(rng, 8, fx.config);
  const auto warm = client.call(ex, std::nullopt, "m0");
  ASSERT_TRUE(warm.has_value() && warm->status == RequestStatus::kOk);

  // Restart the backend on the same port: the connection parked in the
  // proxy's pool is now dead, but that says nothing about the backend.
  host->kill();
  host = std::make_unique<BackendHost>(
      std::vector<NamedEngine>{{"m0", fx.e0}}, backend_port);
  ASSERT_EQ(host->port(), backend_port);

  // The stale lease must be discarded and retried on a fresh dial —
  // no synthesized failure, no forward_failures, no health downgrade.
  const auto resp = client.call(ex, std::nullopt, "m0");
  ASSERT_TRUE(resp.has_value()) << client.error();
  EXPECT_EQ(resp->status, RequestStatus::kOk);
  EXPECT_EQ(proxy.counters().exhausted, 0u);
  EXPECT_EQ(proxy.counters().failovers, 0u);
  const auto status = proxy.backend_status();
  EXPECT_EQ(status[0].forward_failures, 0u);
  EXPECT_EQ(status[0].state, shard::BackendState::kHealthy);
}

TEST(ShardProxy, LoadgenDrivesTheProxyUnchanged) {
  Engines& fx = engines();
  BackendHost a({{"m0", fx.e0}, {"m1", fx.e1}});
  BackendHost b({{"m1", fx.e1}});
  shard::ShardProxy proxy(fast_proxy_config());
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", a.port(), {"m0", "m1"}));
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", b.port(), {"m1"}));
  ASSERT_TRUE(proxy.start());

  LoadgenConfig lcfg;
  lcfg.num_clients = 3;
  lcfg.requests_per_client = 30;
  const std::vector<RemoteModelTarget> targets = {{"m0", fx.config},
                                                  {"m1", fx.config}};
  const LoadgenReport lg =
      run_loadgen_remote("127.0.0.1", proxy.port(), targets, lcfg);
  EXPECT_EQ(lg.sent, 90u);
  EXPECT_EQ(lg.ok, 90u);
  EXPECT_EQ(lg.failed, 0u);
  EXPECT_EQ(lg.rejected, 0u);
}

TEST(ShardProxy, RejectsBadPlacementDeclarations) {
  shard::ShardProxy proxy;
  std::string error;
  EXPECT_TRUE(proxy.add_backend("127.0.0.1", 19001, {"m0"}, &error));
  EXPECT_FALSE(proxy.add_backend("127.0.0.1", 19001, {"m1"}, &error));
  EXPECT_NE(error.find("twice"), std::string::npos);
  EXPECT_FALSE(proxy.add_backend("127.0.0.1", 19002, {}, &error));
  EXPECT_FALSE(proxy.add_backend("127.0.0.1", 19003, {"a", "a"}, &error));
  EXPECT_NE(error.find("repeated"), std::string::npos);
  EXPECT_FALSE(proxy.add_backend("127.0.0.1", 19004, {""}, &error));
}

// ---------------------------------------------------------------------------
// Dynamic placement control plane: live membership over the wire,
// zero-drop migration under traffic, fan-out resilience, connection
// retirement, and the plain-backend refusal of proxy-admin frames.
// ---------------------------------------------------------------------------

std::string addr_of(const BackendHost& host) {
  return "127.0.0.1:" + std::to_string(host.port());
}

size_t open_fd_count() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  size_t n = 0;
  while (::readdir(dir) != nullptr) ++n;
  ::closedir(dir);
  return n;
}

TEST(DynamicPlacement, WireAddBackendRoutesNewModelLive) {
  Engines& fx = engines();
  BackendHost a({{"m0", fx.e0}});
  BackendHost b({{"m1", fx.e1}});
  shard::ShardProxy proxy(fast_proxy_config());
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", a.port(), {"m0"}));
  ASSERT_TRUE(proxy.start());

  net::TransportClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", proxy.port())) << client.error();
  Rng rng(101);
  const Example ex = synth_example(rng, 8, fx.config);

  // Before the join the model is unknown — in-band rejection.
  const auto before = client.call(ex, std::nullopt, "m1");
  ASSERT_TRUE(before.has_value()) << client.error();
  EXPECT_EQ(before->status, RequestStatus::kRejectedUnknownModel);

  const auto p0 = client.get_placement();
  ASSERT_TRUE(p0.has_value()) << client.error();
  EXPECT_EQ(p0->epoch, proxy.placement_epoch());
  ASSERT_EQ(p0->backends.size(), 1u);

  std::string message;
  ASSERT_TRUE(client.add_backend("127.0.0.1", b.port(), {{"m1", 0}},
                                 &message))
      << message;
  EXPECT_NE(message.find("added at epoch"), std::string::npos) << message;

  // The SAME client connection routes the new model immediately — no
  // proxy restart, no reconnect.
  const auto after = client.call(ex, std::nullopt, "m1");
  ASSERT_TRUE(after.has_value()) << client.error();
  EXPECT_EQ(after->status, RequestStatus::kOk);

  const auto p1 = client.get_placement();
  ASSERT_TRUE(p1.has_value()) << client.error();
  EXPECT_EQ(p1->epoch, p0->epoch + 1);
  ASSERT_EQ(p1->backends.size(), 2u);
  EXPECT_EQ(p1->backends[1].address, addr_of(b));
  ASSERT_EQ(p1->backends[1].models.size(), 1u);
  EXPECT_EQ(p1->backends[1].models[0].name, "m1");

  // Both failure shapes come back in-band; the connection stays usable.
  EXPECT_FALSE(client.add_backend("127.0.0.1", b.port(), {{"m1", 0}},
                                  &message));
  EXPECT_NE(message.find("already a member"), std::string::npos) << message;
  EXPECT_EQ(client.error_kind(), net::ClientError::kNone);
  EXPECT_FALSE(client.add_backend("127.0.0.1", 1, {{"mx", 0}}, &message));
  EXPECT_NE(message.find("unreachable"), std::string::npos) << message;
  EXPECT_TRUE(client.connected());
  EXPECT_EQ(proxy.placement_epoch(), p1->epoch)
      << "failed admin ops must not burn epochs";
}

TEST(DynamicPlacement, WireRemoveBackendDrainsRetiresAndGuardsLastReplica) {
  Engines& fx = engines();
  BackendHost a({{"m0", fx.e0}, {"shared", fx.e1}});
  BackendHost b({{"shared", fx.e1}});
  shard::ShardProxy proxy(fast_proxy_config());
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", a.port(), {"m0", "shared"}));
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", b.port(), {"shared"}));
  ASSERT_TRUE(proxy.start());

  net::TransportClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", proxy.port()));
  Rng rng(103);
  for (int i = 0; i < 6; ++i) {
    const auto resp = client.call(synth_example(rng, 8, fx.config),
                                  std::nullopt, "shared");
    ASSERT_TRUE(resp.has_value() && resp->status == RequestStatus::kOk);
  }

  std::string message;
  // a is the only holder of m0: removing it would strand the model.
  EXPECT_FALSE(client.remove_backend(addr_of(a), &message));
  EXPECT_NE(message.find("last replica"), std::string::npos) << message;
  EXPECT_FALSE(client.remove_backend("10.9.9.9:1", &message));
  EXPECT_NE(message.find("not a member"), std::string::npos) << message;

  ASSERT_TRUE(client.remove_backend(addr_of(b), &message)) << message;
  EXPECT_NE(message.find("drained and removed"), std::string::npos)
      << message;

  const auto status = proxy.backend_status();
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].address, addr_of(a));

  // Traffic keeps flowing on the surviving replica.
  for (int i = 0; i < 6; ++i) {
    const auto resp = client.call(synth_example(rng, 8, fx.config),
                                  std::nullopt, "shared");
    ASSERT_TRUE(resp.has_value()) << client.error();
    EXPECT_EQ(resp->status, RequestStatus::kOk);
  }
}

// The tentpole acceptance: a model migrates between backends while
// clients hammer it, and not one request fails. A request that
// resolved placement just before the epoch flip re-resolves against
// the new table instead of erroring.
TEST(DynamicPlacement, MoveModelZeroDropUnderConcurrentTraffic) {
  Engines& fx = engines();
  // Both hosts pre-load the mover engine; the placement table only
  // knows about a's copy until the move flips it.
  BackendHost a({{"m0", fx.e0}, {"mover", fx.e1}});
  BackendHost b({{"m0", fx.e0}, {"mover", fx.e1}});
  shard::ShardProxy proxy(fast_proxy_config());
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", a.port(), {"m0", "mover"}));
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", b.port(), {"m0"}));
  ASSERT_TRUE(proxy.start());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<int> completed{0};
  std::vector<std::thread> traffic;
  for (int t = 0; t < 2; ++t) {
    traffic.emplace_back([&, t] {
      net::TransportClient client;
      if (!client.connect("127.0.0.1", proxy.port())) {
        ++failures;
        return;
      }
      Rng rng(200 + t);
      while (!stop) {
        const auto resp = client.call(synth_example(rng, 8, fx.config),
                                      std::nullopt, "mover");
        if (!resp.has_value() || resp->status != RequestStatus::kOk)
          ++failures;
        else
          ++completed;
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  net::TransportClient admin;
  ASSERT_TRUE(admin.connect("127.0.0.1", proxy.port()));
  std::string message;
  const bool moved = admin.move_model("mover", 0, addr_of(a), addr_of(b),
                                      "", &message);
  EXPECT_TRUE(moved) << message;
  EXPECT_NE(message.find("moved from"), std::string::npos) << message;
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  stop = true;
  for (std::thread& t : traffic) t.join();

  EXPECT_EQ(failures.load(), 0) << "client-visible failures during the move";
  EXPECT_GT(completed.load(), 20);

  // The cell now lives on b only, and a's router really unloaded it.
  const auto placement = admin.get_placement();
  ASSERT_TRUE(placement.has_value());
  for (const auto& backend : placement->backends) {
    bool has_mover = false;
    for (const auto& cell : backend.models)
      if (cell.name == "mover") has_mover = true;
    EXPECT_EQ(has_mover, backend.address == addr_of(b)) << backend.address;
  }
  const std::vector<std::string> a_models = a.router->model_names();
  EXPECT_EQ(std::count(a_models.begin(), a_models.end(), "mover"), 0)
      << "source engine was not unloaded";

  // Moving a cell the source no longer holds fails in-band.
  EXPECT_FALSE(admin.move_model("mover", 0, addr_of(a), addr_of(b), "",
                                &message));
  EXPECT_NE(message.find("does not serve"), std::string::npos) << message;
}

// Satellite regression: LIST/STATS fan-out against a routing snapshot
// must tolerate a backend that died (or was retired) mid-fan-out —
// skip it and aggregate the reachable share, never fail the whole op.
TEST(DynamicPlacement, FanOutSkipsUnreachableBackends) {
  Engines& fx = engines();
  BackendHost a({{"m0", fx.e0}, {"m1", fx.e1}});
  BackendHost b({{"m1", fx.e1}, {"m2", fx.e2}});
  shard::ShardProxy proxy(fast_proxy_config());
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", a.port(), {"m0", "m1"}));
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", b.port(), {"m1", "m2"}));
  ASSERT_TRUE(proxy.start());

  net::TransportClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", proxy.port()));
  Rng rng(105);
  for (int i = 0; i < 4; ++i) {
    const auto resp = client.call(synth_example(rng, 8, fx.config),
                                  std::nullopt, "m1");
    ASSERT_TRUE(resp.has_value() && resp->status == RequestStatus::kOk);
  }
  const uint64_t a_admitted = a.router->stats_report("m1")->admitted;

  b.kill();  // dead, but still a placement member

  // LIST returns the union of the REACHABLE backends.
  const auto list = client.list_models();
  ASSERT_TRUE(list.has_value()) << client.error();
  EXPECT_EQ(*list, (std::vector<std::string>{"m0", "m1"}));

  // STATS aggregates the reachable replica's share instead of failing.
  const auto stats = client.query_stats("m1");
  ASSERT_TRUE(stats.has_value()) << client.error();
  EXPECT_EQ(stats->report.admitted, a_admitted);

  // The dead backend still cannot be removed while it is the last
  // replica of m2 — placement refuses to strand a model even when its
  // only holder is unreachable.
  std::string message;
  EXPECT_FALSE(client.remove_backend(addr_of(b), &message));
  EXPECT_NE(message.find("last replica"), std::string::npos) << message;
}

// Satellite: pooled connections to a removed backend are closed at
// retirement and never reused; repeated join/leave cycles do not leak
// file descriptors (exact under ASan, which aborts on leaks anyway).
TEST(DynamicPlacement, AddRemoveCyclesRetireConnectionsWithoutFdLeaks) {
  Engines& fx = engines();
  BackendHost stable({{"m0", fx.e0}});
  BackendHost extra({{"m0", fx.e0}});

  shard::ShardProxyConfig cfg = fast_proxy_config();
  cfg.health_interval = Micros(3'600'000'000);  // no probe churn: fd
  // counts below must only move with pool lifecycle events.
  cfg.policy = shard::PlacementPolicy::kConsistentHash;  // spread route
  // keys across both members so the joiner's pool really opens
  // connections (explicit policy would pin every key to the primary).
  shard::ShardProxy proxy(cfg);
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", stable.port(), {"m0"}));
  ASSERT_TRUE(proxy.start());

  net::TransportClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", proxy.port()));
  Rng rng(107);
  uint64_t extra_forwarded = 0;
  const auto cycle = [&] {
    std::string error;
    ASSERT_TRUE(proxy.admin_add_backend("127.0.0.1", extra.port(), {"m0"},
                                        &error))
        << error;
    for (int i = 0; i < 16; ++i) {
      const auto resp = client.call(synth_example(rng, 8, fx.config),
                                    std::nullopt, "m0");
      ASSERT_TRUE(resp.has_value()) << client.error();
      ASSERT_EQ(resp->status, RequestStatus::kOk);
    }
    for (const auto& row : proxy.backend_status())
      if (row.address == addr_of(extra)) extra_forwarded += row.forwarded;
    ASSERT_TRUE(proxy.admin_remove_backend(addr_of(extra), &error)) << error;
    ASSERT_EQ(proxy.backend_status().size(), 1u);
  };

  cycle();  // warm: both pools at steady state before the baseline
  const size_t baseline = open_fd_count();
  for (int i = 0; i < 4; ++i) cycle();
  EXPECT_LE(open_fd_count(), baseline + 2)
      << "join/leave cycles leak descriptors";
  EXPECT_GT(extra_forwarded, 0u)
      << "the transient backend never took traffic; the retirement path "
         "was not exercised";
}

TEST(DynamicPlacement, PlainBackendRefusesAdminFramesInBand) {
  Engines& fx = engines();
  BackendHost host({{"m0", fx.e0}});

  net::TransportClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", host.port()));
  std::string message;
  EXPECT_FALSE(client.add_backend("127.0.0.1", 9999, {{"x", 0}}, &message));
  EXPECT_NE(message.find("targets a shard proxy"), std::string::npos)
      << message;
  EXPECT_EQ(client.error_kind(), net::ClientError::kNone);
  EXPECT_FALSE(client.remove_backend("x:1", &message));
  EXPECT_FALSE(client.move_model("m", 0, "a:1", "b:1", "", &message));
  EXPECT_FALSE(client.get_placement().has_value());
  // Every refusal was in-band: the connection still serves.
  EXPECT_TRUE(client.connected());
  EXPECT_TRUE(client.query_info("m0").has_value()) << client.error();

  // A version-pinned v4 client cannot emit the frames at all — the
  // client refuses loudly instead of sending an alien type.
  net::TransportClient v4(/*protocol_version=*/4);
  ASSERT_TRUE(v4.connect("127.0.0.1", host.port()));
  EXPECT_FALSE(v4.add_backend("127.0.0.1", 9999, {{"x", 0}}, &message));
  EXPECT_NE(v4.error().find("requires protocol v5"), std::string::npos);
}

// Satellite: membership and placement changes land in the flight
// recorder with their epoch stamps, so `admin --events` shows the
// control-plane history next to the data-path journal.
TEST(DynamicPlacement, PlacementChangesAppearInTheFlightJournal) {
  Engines& fx = engines();
  BackendHost a({{"m0", fx.e0}, {"x", fx.e1}});
  BackendHost b({{"m0", fx.e0}, {"x", fx.e1}});
  BackendHost c({{"m0", fx.e0}});
  shard::ShardProxy proxy(fast_proxy_config());
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", a.port(), {"m0", "x"}));
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", b.port(), {"m0"}));
  ASSERT_TRUE(proxy.start());

  std::string error;
  ASSERT_TRUE(proxy.admin_add_backend("127.0.0.1", c.port(), {"m0"}, &error))
      << error;
  ASSERT_TRUE(proxy.admin_move_model("x", 0, addr_of(a), addr_of(b), "",
                                     &error))
      << error;
  ASSERT_TRUE(proxy.admin_remove_backend(addr_of(c), &error)) << error;

  net::TransportClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", proxy.port()));
  const auto events = client.dump_events(0, 0);
  ASSERT_TRUE(events.has_value()) << client.error();
  bool saw_add = false, saw_move = false, saw_remove = false;
  for (const auto& ev : *events) {
    if (ev.type == static_cast<uint8_t>(FlightEventType::kBackendAdded) &&
        ev.tag == addr_of(c)) {
      saw_add = true;
      EXPECT_GT(ev.b, 0u) << "epoch stamp missing";
    }
    if (ev.type ==
            static_cast<uint8_t>(FlightEventType::kPlacementChanged) &&
        ev.tag == "x")
      saw_move = true;
    if (ev.type == static_cast<uint8_t>(FlightEventType::kBackendRemoved) &&
        ev.tag == addr_of(c))
      saw_remove = true;
  }
  EXPECT_TRUE(saw_add);
  EXPECT_TRUE(saw_move);
  EXPECT_TRUE(saw_remove);
  EXPECT_EQ(proxy.counters().placement_changes, 3u);
}

// ---------------------------------------------------------------------------
// TransportClient recv-timeout regression (satellite bugfix): a timeout
// mid-frame condemns the connection, and a trickling peer cannot
// stretch the budget.
// ---------------------------------------------------------------------------

TEST(TransportTimeoutRegression, MidFrameTimeoutCondemnsTheConnection) {
  std::atomic<bool> release{false};
  StallServer server([&](int fd) {
    uint8_t buf[4096];
    (void)!::recv(fd, buf, sizeof(buf), 0);  // the request frame
    const std::vector<uint8_t> frame = ok_response_frame(1, 4);
    // Header plus all but the last 4 payload bytes, then stall.
    (void)!::send(fd, frame.data(), frame.size() - 4, MSG_NOSIGNAL);
    while (!release)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    // The bytes a desynchronized client would misread as a fresh
    // stream: the stalled frame's tail plus a complete second frame.
    (void)!::send(fd, frame.data() + frame.size() - 4, 4, MSG_NOSIGNAL);
    const std::vector<uint8_t> second = ok_response_frame(2, 4);
    (void)!::send(fd, second.data(), second.size(), MSG_NOSIGNAL);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  });

  net::TransportClient client;
  client.set_timeouts(Micros(1'000'000), Micros(200'000));
  ASSERT_TRUE(client.connect("127.0.0.1", server.port)) << client.error();
  Rng rng(5);
  const Example ex = synth_example(rng, 8, engines().config);
  const auto resp = client.call(ex);
  EXPECT_FALSE(resp.has_value());
  EXPECT_EQ(client.error_kind(), net::ClientError::kTimedOut);
  // The half-read stream is condemned: closed, never reused.
  EXPECT_FALSE(client.connected());

  release = true;
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // A second call must refuse up front — NOT read the stale tail bytes
  // as a fresh header (which a reused socket would have produced).
  const auto resp2 = client.call(ex);
  EXPECT_FALSE(resp2.has_value());
  EXPECT_EQ(client.error_kind(), net::ClientError::kIo);
  EXPECT_EQ(client.error(), "not connected");
}

TEST(TransportTimeoutRegression, TricklingPeerCannotStretchTheFrameBudget) {
  std::atomic<bool> stop{false};
  StallServer server([&](int fd) {
    uint8_t buf[4096];
    (void)!::recv(fd, buf, sizeof(buf), 0);
    // ~300 bytes delivered one per 20 ms: a per-recv() timeout would
    // reset every byte and hold the call for ~6 s; the whole-frame
    // budget must cut it off at ~250 ms.
    const std::vector<uint8_t> frame = ok_response_frame(1, 64);
    for (size_t i = 0; i < frame.size() && !stop; ++i) {
      if (::send(fd, frame.data() + i, 1, MSG_NOSIGNAL) != 1) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  net::TransportClient client;
  client.set_timeouts(Micros(1'000'000), Micros(250'000));
  ASSERT_TRUE(client.connect("127.0.0.1", server.port)) << client.error();
  Rng rng(6);
  const auto t0 = std::chrono::steady_clock::now();
  const auto resp = client.call(synth_example(rng, 8, engines().config));
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  stop = true;
  EXPECT_FALSE(resp.has_value());
  EXPECT_EQ(client.error_kind(), net::ClientError::kTimedOut);
  EXPECT_FALSE(client.connected());
  EXPECT_LT(elapsed_s, 1.5) << "per-recv timeout reset by the trickle";
}

}  // namespace
}  // namespace fqbert::serve
