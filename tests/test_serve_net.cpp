// Network transport tests: frame codec round trips and strict-decode
// rejections, loopback integration (TransportServer on an ephemeral
// port driven by TransportClient threads, responses bit-identical to
// in-process submit()), malformed/truncated/oversized frames (decode
// rejects, connection closes, server stays up), client disconnect
// before response, and the synth_example/valid_example edge audit.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <thread>

#include "serve/loadgen.h"
#include "serve/net/transport_client.h"
#include "serve/net/transport_server.h"
#include "serve/router/model_router.h"
#include "serve/server.h"

namespace fqbert::serve {
namespace {

using core::FqBertModel;
using core::FqQuantConfig;
using core::QatBert;
using nn::BertConfig;
using nn::BertModel;
using nn::Example;

BertConfig tiny_config() {
  BertConfig c;
  c.vocab_size = 128;
  c.hidden = 16;
  c.num_layers = 2;
  c.num_heads = 2;
  c.ffn_dim = 32;
  c.max_seq_len = 32;
  c.num_classes = 2;
  return c;
}

/// Random-weight calibrated engine (accuracy irrelevant; the integer
/// pipeline and the wire path are what is exercised).
struct EngineFixture {
  BertConfig config = tiny_config();
  std::shared_ptr<const FqBertModel> engine;

  EngineFixture() {
    Rng rng(42);
    BertModel model(config, rng);
    QatBert qat(model, FqQuantConfig::full());
    std::vector<Example> calib;
    Rng data_rng(7);
    for (int i = 0; i < 12; ++i)
      calib.push_back(synth_example(data_rng, 4 + (i % 3) * 6, config));
    qat.calibrate(calib);
    engine = std::make_shared<const FqBertModel>(FqBertModel::convert(qat));
  }
};

EngineFixture& fixture() {
  static EngineFixture f;
  return f;
}

/// In-process router (one "tiny" lane = the default model) + transport
/// on an ephemeral loopback port.
struct NetFixture {
  EngineRegistry registry;
  std::unique_ptr<ModelRouter> router;
  std::unique_ptr<net::TransportServer> transport;

  explicit NetFixture(ServerConfig cfg = {}) {
    registry.register_model("tiny", fixture().engine);
    RouterConfig rcfg;
    rcfg.num_workers = cfg.num_workers;
    rcfg.queue = cfg.queue;
    rcfg.batcher = cfg.batcher;
    router = std::make_unique<ModelRouter>(registry, rcfg);
    EXPECT_TRUE(router->add_model("tiny"));
    EXPECT_TRUE(router->start());
    net::TransportConfig tcfg;
    tcfg.port = 0;  // ephemeral
    transport = std::make_unique<net::TransportServer>(*router, tcfg);
    EXPECT_TRUE(transport->start());
  }

  ~NetFixture() {
    // Transport first: its completion threads drain in-flight futures,
    // which needs a router that still completes them.
    transport->stop();
    router->shutdown(/*drain=*/true);
  }

  uint16_t port() const { return transport->port(); }
};

/// Raw loopback socket for writing hostile bytes the TransportClient
/// would never produce.
struct RawConn {
  int fd = -1;

  bool connect(uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    timeval tv{/*tv_sec=*/5, /*tv_usec=*/0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }

  bool send_bytes(const std::vector<uint8_t>& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// True when the server closes the connection (EOF within the recv
  /// timeout), discarding any data it sent first.
  bool closed_by_server() {
    uint8_t buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n == 0) return true;
      if (n < 0) return false;  // timeout / error: still open
    }
  }

  /// Read exactly n bytes (for well-formed response frames).
  bool recv_exact(uint8_t* out, size_t n) {
    size_t got = 0;
    while (got < n) {
      const ssize_t r = ::recv(fd, out + got, n - got, 0);
      if (r <= 0) return false;
      got += static_cast<size_t>(r);
    }
    return true;
  }

  void close() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  ~RawConn() { close(); }
};

/// The server must still answer a fresh well-formed client.
void expect_server_alive(NetFixture& net) {
  net::TransportClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", net.port())) << client.error();
  Rng rng(99);
  const auto resp = client.call(synth_example(rng, 8, fixture().config));
  ASSERT_TRUE(resp.has_value()) << client.error();
  EXPECT_EQ(resp->status, RequestStatus::kOk);
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

TEST(FrameCodec, ServeRequestRoundTripsExactly) {
  net::WireRequest req;
  req.correlation_id = 0xDEADBEEFCAFEBABEull;
  req.deadline_budget_us = 123456789;
  req.model = "tiny";
  Rng rng(1);
  req.example = synth_example(rng, 17, fixture().config);
  std::vector<uint8_t> frame;
  net::encode_serve_request(req, frame);

  net::FrameHeader hdr;
  ASSERT_EQ(net::decode_header(frame.data(), frame.size(), &hdr),
            net::DecodeStatus::kFrame);
  ASSERT_EQ(hdr.type, net::FrameType::kServeRequest);
  ASSERT_EQ(hdr.version, net::kProtocolVersion);
  ASSERT_EQ(frame.size(), net::kHeaderSize + hdr.payload_len);
  net::WireRequest back;
  ASSERT_TRUE(net::decode_serve_request(frame.data() + net::kHeaderSize,
                                        hdr.payload_len, hdr.version, &back));
  EXPECT_EQ(back.correlation_id, req.correlation_id);
  EXPECT_EQ(back.deadline_budget_us, req.deadline_budget_us);
  EXPECT_EQ(back.model, req.model);
  EXPECT_EQ(back.example.tokens, req.example.tokens);
  EXPECT_EQ(back.example.segments, req.example.segments);
}

TEST(FrameCodec, V1ServeRequestRoundTripsWithoutModel) {
  net::WireRequest req;
  req.correlation_id = 99;
  req.deadline_budget_us = 1000;
  Rng rng(4);
  req.example = synth_example(rng, 9, fixture().config);
  std::vector<uint8_t> frame;
  net::encode_serve_request(req, frame, /*version=*/1);

  net::FrameHeader hdr;
  ASSERT_EQ(net::decode_header(frame.data(), frame.size(), &hdr),
            net::DecodeStatus::kFrame);
  ASSERT_EQ(hdr.version, 1);
  net::WireRequest back;
  back.model = "stale";  // must be cleared by a v1 decode
  ASSERT_TRUE(net::decode_serve_request(frame.data() + net::kHeaderSize,
                                        hdr.payload_len, hdr.version, &back));
  EXPECT_EQ(back.correlation_id, req.correlation_id);
  EXPECT_TRUE(back.model.empty());
  EXPECT_EQ(back.example.tokens, req.example.tokens);
  // A v1 frame carrying a control type is a header-level error.
  std::vector<uint8_t> control;
  net::encode_list_models(control);
  control[4] = 1;  // rewrite version to 1
  EXPECT_EQ(net::decode_header(control.data(), control.size(), &hdr),
            net::DecodeStatus::kError);
}

TEST(FrameCodec, ServeResponseRoundTripsBitExactLogits) {
  net::WireResponse resp;
  resp.correlation_id = 7;
  resp.response.status = RequestStatus::kOk;
  resp.response.predicted = 1;
  resp.response.queue_us = 42;
  resp.response.latency_us = 4242;
  resp.response.batch_size = 8;
  resp.response.logits = {1.5f, -2.25f, 3.0e-7f, -0.0f};
  std::vector<uint8_t> frame;
  net::encode_serve_response(resp, frame);

  net::FrameHeader hdr;
  ASSERT_EQ(net::decode_header(frame.data(), frame.size(), &hdr),
            net::DecodeStatus::kFrame);
  net::WireResponse back;
  ASSERT_TRUE(net::decode_serve_response(frame.data() + net::kHeaderSize,
                                         hdr.payload_len, hdr.version, &back));
  EXPECT_EQ(back.correlation_id, 7u);
  EXPECT_EQ(back.response.status, RequestStatus::kOk);
  ASSERT_EQ(back.response.logits.size(), resp.response.logits.size());
  for (size_t i = 0; i < resp.response.logits.size(); ++i) {
    // Bit-exact, not approximately equal: compare the bit patterns.
    uint32_t a, b;
    std::memcpy(&a, &resp.response.logits[i], 4);
    std::memcpy(&b, &back.response.logits[i], 4);
    EXPECT_EQ(a, b) << "logit " << i;
  }
}

TEST(FrameCodec, HeaderRejectsCorruption) {
  std::vector<uint8_t> frame;
  net::encode_info_request("", frame);
  net::FrameHeader hdr;
  ASSERT_EQ(net::decode_header(frame.data(), frame.size(), &hdr),
            net::DecodeStatus::kFrame);

  auto corrupt = [&](size_t off, uint8_t value) {
    std::vector<uint8_t> bad = frame;
    bad[off] = value;
    return net::decode_header(bad.data(), bad.size(), &hdr);
  };
  EXPECT_EQ(corrupt(0, 0x00), net::DecodeStatus::kError);  // magic
  EXPECT_EQ(corrupt(4, 99), net::DecodeStatus::kError);    // version
  EXPECT_EQ(corrupt(5, 0), net::DecodeStatus::kError);     // type 0
  EXPECT_EQ(corrupt(5, 200), net::DecodeStatus::kError);   // unknown type
  EXPECT_EQ(corrupt(6, 1), net::DecodeStatus::kError);     // reserved
  // payload_len over the hard cap.
  std::vector<uint8_t> oversized = frame;
  const uint32_t huge = net::kMaxPayload + 1;
  std::memcpy(oversized.data() + 8, &huge, 4);  // little-endian host in CI
  EXPECT_EQ(net::decode_header(oversized.data(), oversized.size(), &hdr),
            net::DecodeStatus::kError);
  // Short reads are "need more", not errors.
  EXPECT_EQ(net::decode_header(frame.data(), 5, &hdr),
            net::DecodeStatus::kNeedMore);
}

TEST(FrameCodec, PayloadDecodersRejectLyingLengths) {
  net::WireRequest req;
  req.correlation_id = 1;
  Rng rng(2);
  req.example = synth_example(rng, 8, fixture().config);
  std::vector<uint8_t> frame;
  net::encode_serve_request(req, frame);
  const uint8_t* payload = frame.data() + net::kHeaderSize;
  const size_t len = frame.size() - net::kHeaderSize;
  constexpr uint8_t kV = net::kProtocolVersion;
  net::WireRequest out;

  // Truncated payload.
  EXPECT_FALSE(net::decode_serve_request(payload, len - 1, kV, &out));
  // Trailing garbage beyond the declared arrays.
  std::vector<uint8_t> padded(payload, payload + len);
  padded.push_back(0);
  EXPECT_FALSE(
      net::decode_serve_request(padded.data(), padded.size(), kV, &out));
  // num_tokens lying about the remaining bytes (the field sits at
  // offset 26 in a v3 payload with an empty model string: u64 corr +
  // i64 deadline + u64 trace + u16 string length).
  std::vector<uint8_t> lying(payload, payload + len);
  lying[26] = static_cast<uint8_t>(lying[26] + 1);
  EXPECT_FALSE(
      net::decode_serve_request(lying.data(), lying.size(), kV, &out));
  // Absurd num_tokens must fail before any allocation-sized resize.
  std::vector<uint8_t> absurd(payload, payload + len);
  absurd[26] = 0xFF;
  absurd[27] = 0xFF;
  absurd[28] = 0xFF;
  absurd[29] = 0x7F;
  EXPECT_FALSE(
      net::decode_serve_request(absurd.data(), absurd.size(), kV, &out));
  // A model-string length running past the payload end.
  std::vector<uint8_t> overrun(payload, payload + len);
  overrun[24] = 0xFF;
  overrun[25] = 0x00;  // claims a 255-byte model name
  EXPECT_FALSE(
      net::decode_serve_request(overrun.data(), overrun.size(), kV, &out));
  // Empty payload.
  EXPECT_FALSE(net::decode_serve_request(payload, 0, kV, &out));
}

// ---------------------------------------------------------------------------
// Loopback integration
// ---------------------------------------------------------------------------

TEST(TransportLoopback, InfoAdvertisesEngineShape) {
  NetFixture net;
  net::TransportClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", net.port())) << client.error();
  const auto info = client.query_info();
  ASSERT_TRUE(info.has_value()) << client.error();
  const BertConfig& expect = fixture().config;
  EXPECT_EQ(info->vocab_size, expect.vocab_size);
  EXPECT_EQ(info->hidden, expect.hidden);
  EXPECT_EQ(info->num_layers, expect.num_layers);
  EXPECT_EQ(info->num_heads, expect.num_heads);
  EXPECT_EQ(info->ffn_dim, expect.ffn_dim);
  EXPECT_EQ(info->max_seq_len, expect.max_seq_len);
  EXPECT_EQ(info->num_segments, expect.num_segments);
  EXPECT_EQ(info->num_classes, expect.num_classes);
}

TEST(TransportLoopback, ResponsesBitIdenticalToInProcessAcrossThreads) {
  ServerConfig cfg;
  cfg.num_workers = 2;
  cfg.batcher.max_batch = 4;
  cfg.batcher.max_wait = Micros(500);
  NetFixture net(cfg);

  constexpr int kClients = 4, kPerClient = 25;
  std::vector<int> mismatches(kClients, 0);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      net::TransportClient client;
      if (!client.connect("127.0.0.1", net.port())) {
        mismatches[c] = kPerClient;
        return;
      }
      Rng rng(500 + c);
      for (int i = 0; i < kPerClient; ++i) {
        const Example ex =
            synth_example(rng, 2 + rng.randint(0, 30), fixture().config);
        const auto remote = client.call(ex);
        if (!remote || remote->status != RequestStatus::kOk) {
          ++mismatches[c];
          continue;
        }
        // The wire response must carry bit-identical logits to an
        // in-process submit of the very same example (routed through
        // the empty name -> default lane).
        auto local = net.router->submit("", ex).get();
        if (local.status != RequestStatus::kOk ||
            local.logits.size() != remote->logits.size()) {
          ++mismatches[c];
          continue;
        }
        for (size_t j = 0; j < local.logits.size(); ++j)
          if (local.logits[j] != remote->logits[j]) ++mismatches[c];
        if (remote->predicted != local.predicted) ++mismatches[c];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(mismatches[c], 0);

  const auto counters = net.transport->counters();
  EXPECT_EQ(counters.protocol_errors, 0u);
  EXPECT_GE(counters.frames_in, kClients * kPerClient);
}

TEST(TransportLoopback, PipelinedRequestsOnOneConnectionAllAnswered) {
  NetFixture net;
  RawConn conn;
  ASSERT_TRUE(conn.connect(net.port()));

  // Three requests back-to-back in one write; responses may complete in
  // any order, so match by correlation id.
  Rng rng(31);
  std::vector<uint8_t> burst;
  std::map<uint64_t, Example> sent;
  for (uint64_t id = 1; id <= 3; ++id) {
    net::WireRequest req;
    req.correlation_id = id;
    req.example = synth_example(rng, 6 + 4 * static_cast<int64_t>(id),
                                fixture().config);
    sent[id] = req.example;
    net::encode_serve_request(req, burst);
  }
  ASSERT_TRUE(conn.send_bytes(burst));

  std::map<uint64_t, ServeResponse> got;
  for (int i = 0; i < 3; ++i) {
    uint8_t header[net::kHeaderSize];
    ASSERT_TRUE(conn.recv_exact(header, net::kHeaderSize));
    net::FrameHeader hdr;
    ASSERT_EQ(net::decode_header(header, net::kHeaderSize, &hdr),
              net::DecodeStatus::kFrame);
    ASSERT_EQ(hdr.type, net::FrameType::kServeResponse);
    std::vector<uint8_t> payload(hdr.payload_len);
    ASSERT_TRUE(conn.recv_exact(payload.data(), payload.size()));
    net::WireResponse resp;
    ASSERT_TRUE(net::decode_serve_response(payload.data(), payload.size(),
                                           hdr.version, &resp));
    got[resp.correlation_id] = resp.response;
  }
  ASSERT_EQ(got.size(), 3u);
  for (const auto& [id, ex] : sent) {
    ASSERT_TRUE(got.count(id));
    EXPECT_EQ(got[id].status, RequestStatus::kOk);
    const Tensor expect = fixture().engine->forward(ex);
    ASSERT_EQ(static_cast<size_t>(expect.numel()), got[id].logits.size());
    for (int64_t j = 0; j < expect.numel(); ++j)
      EXPECT_EQ(expect[j], got[id].logits[static_cast<size_t>(j)]);
  }
}

TEST(TransportLoopback, V1AndV2PinnedClientsServedByV3Server) {
  NetFixture net;
  Rng rng(77);
  const Example ex = synth_example(rng, 8, fixture().config);
  const Tensor expect = fixture().engine->forward(ex);
  for (const uint8_t version : {uint8_t{1}, uint8_t{2}}) {
    net::TransportClient client(version);
    ASSERT_TRUE(client.connect("127.0.0.1", net.port())) << client.error();
    const auto resp = client.call(ex);
    ASSERT_TRUE(resp.has_value())
        << "v" << int(version) << ": " << client.error();
    EXPECT_EQ(resp->status, RequestStatus::kOk);
    ASSERT_EQ(static_cast<size_t>(expect.numel()), resp->logits.size());
    for (int64_t j = 0; j < expect.numel(); ++j)
      EXPECT_EQ(expect[j], resp->logits[static_cast<size_t>(j)]);
    // Pre-v3 peers never see the trace section.
    EXPECT_EQ(resp->trace_id, 0u);
    EXPECT_TRUE(resp->trace.empty());
    // v2 clients can still read stats off the v3 server; the sketch
    // extension is a v3-only suffix (STATS itself is a v2+ control
    // frame, so v1 has no stats path to break).
    if (version >= 2) {
      const auto stats = client.query_stats();
      ASSERT_TRUE(stats.has_value()) << client.error();
      EXPECT_GE(stats->report.completed, 1u);
      EXPECT_EQ(stats->report.latency_sketch.count(), 0u);  // v2 wire
    }
  }
  EXPECT_EQ(net.transport->counters().protocol_errors, 0u);
}

TEST(TransportLoopback, TracedRequestCarriesMonotonicStages) {
  NetFixture net;
  net::TransportClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", net.port())) << client.error();
  Rng rng(78);
  const Example ex = synth_example(rng, 8, fixture().config);

  const uint64_t tid = mint_trace_id();
  ASSERT_NE(tid, 0u);
  const TimePoint sent_at = Clock::now();
  const auto resp = client.call(ex, std::nullopt, "", tid);
  const int64_t wall_us =
      std::chrono::duration_cast<Micros>(Clock::now() - sent_at).count();
  ASSERT_TRUE(resp.has_value()) << client.error();
  EXPECT_EQ(resp->status, RequestStatus::kOk);
  EXPECT_EQ(resp->trace_id, tid);

  // Admission -> batch -> worker start/end -> responded, timestamps
  // relative to admission, never decreasing, and bounded by the wall
  // latency the client itself observed.
  ASSERT_GE(resp->trace.size(), 4u);
  EXPECT_EQ(resp->trace.front().stage, TraceStage::kAdmitted);
  EXPECT_EQ(resp->trace.front().t_us, 0);
  EXPECT_EQ(resp->trace.back().stage, TraceStage::kResponded);
  int64_t prev = 0;
  for (const TraceEvent& ev : resp->trace) {
    EXPECT_GE(ev.t_us, prev);
    prev = ev.t_us;
  }
  EXPECT_LE(prev, wall_us);

  // Untraced requests on the same connection stay untraced.
  const auto plain = client.call(ex);
  ASSERT_TRUE(plain.has_value()) << client.error();
  EXPECT_EQ(plain->trace_id, 0u);
  EXPECT_TRUE(plain->trace.empty());
}

TEST(TransportLoopback, MalformedFramesCloseConnectionServerStaysUp) {
  NetFixture net;

  std::vector<std::vector<uint8_t>> hostile;
  // Bad magic, full header's worth of bytes.
  hostile.push_back(std::vector<uint8_t>(net::kHeaderSize, 0xAB));
  // Right magic, wrong version.
  {
    std::vector<uint8_t> f;
    net::encode_info_request("", f);
    f[4] = 99;
    hostile.push_back(f);
  }
  // Reserved bits set.
  {
    std::vector<uint8_t> f;
    net::encode_info_request("", f);
    f[6] = 1;
    hostile.push_back(f);
  }
  // Oversized payload declaration (> kMaxPayload).
  {
    std::vector<uint8_t> f;
    net::encode_info_request("", f);
    f[8] = 0xFF;
    f[9] = 0xFF;
    f[10] = 0xFF;
    f[11] = 0x7F;
    hostile.push_back(f);
  }
  // Serve request whose num_tokens lies about the payload size.
  {
    net::WireRequest req;
    req.correlation_id = 5;
    Rng rng(3);
    req.example = synth_example(rng, 8, fixture().config);
    std::vector<uint8_t> f;
    net::encode_serve_request(req, f);
    // num_tokens += 2, arrays unchanged (offset 26: u64 corr + i64
    // deadline + u64 trace + empty model string).
    f[net::kHeaderSize + 26] += 2;
    hostile.push_back(f);
  }
  // Info request whose model-string length points past the payload.
  {
    std::vector<uint8_t> f;
    net::encode_info_request("", f);
    f[8] = 4;  // declare 4 payload bytes
    f.insert(f.end(), {0xFF, 0x00, 3, 4});  // strlen 255 > remaining
    hostile.push_back(f);
  }
  // v1 frame carrying a v2-only control type.
  {
    std::vector<uint8_t> f;
    net::encode_list_models(f);
    f[4] = 1;
    hostile.push_back(f);
  }
  // Load-model frame with an empty model name.
  {
    std::vector<uint8_t> f;
    net::encode_load_model("", "/tmp/nope.bin", f);
    hostile.push_back(f);
  }
  // A response frame sent client->server (illegal direction).
  {
    net::WireResponse resp;
    resp.correlation_id = 9;
    std::vector<uint8_t> f;
    net::encode_serve_response(resp, f);
    hostile.push_back(f);
  }

  for (size_t i = 0; i < hostile.size(); ++i) {
    RawConn conn;
    ASSERT_TRUE(conn.connect(net.port())) << "case " << i;
    ASSERT_TRUE(conn.send_bytes(hostile[i])) << "case " << i;
    EXPECT_TRUE(conn.closed_by_server()) << "case " << i;
  }
  EXPECT_EQ(net.transport->counters().protocol_errors, hostile.size());
  expect_server_alive(net);
}

TEST(TransportLoopback, TruncatedFramesThenDisconnectLeaveServerUp) {
  NetFixture net;
  // Half a header, then hangup.
  {
    RawConn conn;
    ASSERT_TRUE(conn.connect(net.port()));
    ASSERT_TRUE(conn.send_bytes({0x54, 0x42, 0x51}));
    conn.close();
  }
  // Valid header declaring 100 payload bytes, only 10 delivered.
  {
    std::vector<uint8_t> f;
    net::encode_info_request("", f);
    f[8] = 100;
    f.insert(f.end(), 10, 0x00);
    RawConn conn;
    ASSERT_TRUE(conn.connect(net.port()));
    ASSERT_TRUE(conn.send_bytes(f));
    conn.close();
  }
  // A truncated frame is not a protocol error until completed — the
  // peer vanishing mid-frame is just a disconnect.
  expect_server_alive(net);
  EXPECT_EQ(net.transport->counters().protocol_errors, 0u);
}

TEST(TransportLoopback, ClientDisconnectBeforeResponseDropsItQuietly) {
  ServerConfig cfg;
  cfg.batcher.max_wait = Micros(20 * 1000);  // response arrives "late"
  NetFixture net(cfg);
  {
    RawConn conn;
    ASSERT_TRUE(conn.connect(net.port()));
    net::WireRequest req;
    req.correlation_id = 77;
    Rng rng(8);
    req.example = synth_example(rng, 8, fixture().config);
    std::vector<uint8_t> f;
    net::encode_serve_request(req, f);
    ASSERT_TRUE(conn.send_bytes(f));
    conn.close();  // gone before the batcher even flushes
  }
  // The request still completes server-side; the response is dropped on
  // the floor instead of crashing the loop or leaking the connection.
  expect_server_alive(net);
  const auto report = net.router->stats_report("tiny");
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->accounting_balances());
  EXPECT_EQ(net.transport->counters().protocol_errors, 0u);
}

TEST(TransportLoopback, ServingRejectionsTravelTheWire) {
  NetFixture net;
  net::TransportClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", net.port())) << client.error();

  // Over max_seq_len (wire-legal, serving-invalid).
  Example too_long;
  too_long.tokens.assign(
      static_cast<size_t>(fixture().config.max_seq_len + 1), 1);
  too_long.segments.assign(too_long.tokens.size(), 0);
  auto resp = client.call(too_long);
  ASSERT_TRUE(resp.has_value()) << client.error();
  EXPECT_EQ(resp->status, RequestStatus::kRejectedInvalid);

  // Ragged segments round-trip to admission (the codec does not repair
  // them) and are rejected there.
  Rng rng(12);
  Example ragged = synth_example(rng, 8, fixture().config);
  ragged.segments.pop_back();
  resp = client.call(ragged);
  ASSERT_TRUE(resp.has_value()) << client.error();
  EXPECT_EQ(resp->status, RequestStatus::kRejectedInvalid);

  // A hopeless deadline comes back as a deadline/timeout status, not a
  // hang and not kOk.
  resp = client.call(synth_example(rng, 8, fixture().config), Micros(1));
  ASSERT_TRUE(resp.has_value()) << client.error();
  EXPECT_NE(resp->status, RequestStatus::kOk);

  // The same connection still serves a good request afterwards.
  resp = client.call(synth_example(rng, 8, fixture().config));
  ASSERT_TRUE(resp.has_value()) << client.error();
  EXPECT_EQ(resp->status, RequestStatus::kOk);
}

TEST(TransportLoopback, RemoteLoadgenClosedLoopZeroFailures) {
  ServerConfig cfg;
  cfg.num_workers = 2;
  cfg.batcher.max_batch = 8;
  cfg.batcher.max_wait = Micros(500);
  NetFixture net(cfg);

  LoadgenConfig lcfg;
  lcfg.num_clients = 4;
  lcfg.requests_per_client = 50;
  const LoadgenReport lg =
      run_loadgen_remote("127.0.0.1", net.port(), fixture().config, lcfg);
  EXPECT_EQ(lg.sent, 200u);
  EXPECT_EQ(lg.ok, 200u);
  EXPECT_EQ(lg.failed, 0u);
  EXPECT_EQ(lg.rejected, 0u);
}

// ---------------------------------------------------------------------------
// synth_example / valid_example edge audit (satellite): a synthesized
// example must be admissible at both ends of the length range, and the
// empty seq-mix fallback must stay defined.
// ---------------------------------------------------------------------------

TEST(SynthExampleEdges, AdmittedAtSeqLenTwoAndMax) {
  EngineRegistry registry;
  registry.register_model("tiny", fixture().engine);
  InferenceServer server(registry, "tiny", ServerConfig{});
  ASSERT_TRUE(server.start());

  Rng rng(23);
  const BertConfig& cfg = fixture().config;
  // Requested lengths below 2 and above max_seq_len clamp into range
  // instead of producing inadmissible examples.
  for (const int64_t len : {int64_t{2}, cfg.max_seq_len, int64_t{1},
                            int64_t{0}, cfg.max_seq_len + 10}) {
    const Example ex = synth_example(rng, len, cfg);
    EXPECT_GE(static_cast<int64_t>(ex.tokens.size()), 2);
    EXPECT_LE(static_cast<int64_t>(ex.tokens.size()), cfg.max_seq_len);
    AdmitResult admit;
    auto fut = server.submit(ex, std::nullopt, &admit);
    EXPECT_EQ(admit, AdmitResult::kOk) << "requested len " << len;
    EXPECT_EQ(fut.get().status, RequestStatus::kOk) << "requested len "
                                                    << len;
  }
  server.shutdown();
}

TEST(SynthExampleEdges, DegenerateConfigsProduceWellFormedExamples) {
  // max_seq_len = 1 and vocab_size = 1 used to feed inverted ranges to
  // std::clamp / randint (UB); they must now yield the only admissible
  // shape: a single CLS token.
  BertConfig tiny = tiny_config();
  tiny.max_seq_len = 1;
  tiny.vocab_size = 1;
  Rng rng(3);
  for (const int64_t requested : {int64_t{0}, int64_t{1}, int64_t{50}}) {
    const Example ex = synth_example(rng, requested, tiny);
    ASSERT_EQ(ex.tokens.size(), 1u);
    EXPECT_EQ(ex.tokens[0], 0);
    ASSERT_EQ(ex.segments.size(), 1u);
    EXPECT_EQ(ex.segments[0], 0);
  }
}

TEST(SynthExampleEdges, EmptySeqMixFallsBackToMaxSeqLen) {
  EngineRegistry registry;
  registry.register_model("tiny", fixture().engine);
  InferenceServer server(registry, "tiny", ServerConfig{});
  ASSERT_TRUE(server.start());

  LoadgenConfig lcfg;
  lcfg.num_clients = 1;
  lcfg.requests_per_client = 3;
  lcfg.seq_len_mix.clear();  // e.g. `--seq-mix ""` / a list of commas
  const LoadgenReport lg =
      run_loadgen(server, fixture().config, lcfg);
  server.shutdown();
  EXPECT_EQ(lg.sent, 3u);
  EXPECT_EQ(lg.ok, 3u);  // max_seq_len examples are admissible
}

}  // namespace
}  // namespace fqbert::serve
