// Requantizer (Eq. 5) and fixed-point helper tests: the integer
// multiply-shift must track the real-valued scaling to within one code.
#include <gtest/gtest.h>

#include <cmath>

#include "quant/fixed_point.h"
#include "tensor/rng.h"

namespace fqbert::quant {
namespace {

TEST(Saturate, SignedAndUnsigned) {
  EXPECT_EQ(saturate_signed(300, 8), 127);
  EXPECT_EQ(saturate_signed(-300, 8), -127);
  EXPECT_EQ(saturate_signed(5, 8), 5);
  EXPECT_EQ(saturate_signed(7, 4), 7);
  EXPECT_EQ(saturate_signed(8, 4), 7);
  EXPECT_EQ(saturate_unsigned(-3, 8), 0);
  EXPECT_EQ(saturate_unsigned(256, 8), 255);
}

TEST(RoundingShift, HalfAwayFromZero) {
  EXPECT_EQ(rounding_shift_right(5, 1), 3);    // 2.5 -> 3
  EXPECT_EQ(rounding_shift_right(-5, 1), -3);  // -2.5 -> -3
  EXPECT_EQ(rounding_shift_right(4, 1), 2);
  EXPECT_EQ(rounding_shift_right(-4, 1), -2);
  EXPECT_EQ(rounding_shift_right(7, 2), 2);    // 1.75 -> 2
  EXPECT_EQ(rounding_shift_right(1, 0), 1);
  EXPECT_EQ(rounding_shift_right(3, -2), 12);  // negative shift = left
}

TEST(Requantizer, RejectsNonPositiveScale) {
  EXPECT_THROW(Requantizer::from_scale(0.0), std::invalid_argument);
  EXPECT_THROW(Requantizer::from_scale(-1.0), std::invalid_argument);
}

TEST(Requantizer, EffectiveScaleCloseToRequested) {
  for (double m : {0.5, 0.001, 0.9999, 2.5, 123.456, 1e-6}) {
    const Requantizer rq = Requantizer::from_scale(m);
    EXPECT_NEAR(rq.effective_scale() / m, 1.0, 1e-9) << "m=" << m;
    EXPECT_GE(rq.multiplier, 1 << 30);
  }
}

class RequantizerSweep
    : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(RequantizerSweep, MatchesRealRoundingWithinOneCode) {
  const double m = std::get<0>(GetParam());
  Rng rng(std::get<1>(GetParam()));
  const Requantizer rq = Requantizer::from_scale(m);
  for (int i = 0; i < 2000; ++i) {
    const int64_t acc = rng.randint(-2000000, 2000000);
    const int32_t got = rq.apply(acc);
    const double want = static_cast<double>(acc) * m;
    // Integer result within one code of the exact real product, and
    // exactly equal to rounding the effective (Q31) scale.
    EXPECT_LE(std::fabs(got - want), 1.0) << "acc=" << acc << " m=" << m;
    const double eff = static_cast<double>(acc) * rq.effective_scale();
    EXPECT_LE(std::fabs(got - eff), 0.5 + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scales, RequantizerSweep,
    ::testing::Values(std::make_tuple(0.0001, 1ull),
                      std::make_tuple(0.01, 2ull),
                      std::make_tuple(0.4999, 3ull),
                      std::make_tuple(0.5, 4ull),
                      std::make_tuple(0.75, 5ull),
                      std::make_tuple(1.0, 6ull),
                      std::make_tuple(1.5, 7ull),
                      std::make_tuple(37.5, 8ull)));

TEST(Requantizer, ExactPowersOfTwo) {
  // m = 2^-k must be exact for accumulators that divide evenly.
  const Requantizer rq = Requantizer::from_scale(1.0 / 256.0);
  EXPECT_EQ(rq.apply(256), 1);
  EXPECT_EQ(rq.apply(512), 2);
  EXPECT_EQ(rq.apply(-256), -1);
  EXPECT_EQ(rq.apply(128), 1);  // 0.5 rounds away from zero
  EXPECT_EQ(rq.apply(0), 0);
}

TEST(Requantizer, IdentityScale) {
  const Requantizer rq = Requantizer::from_scale(1.0);
  for (int64_t v : {-1000ll, -1ll, 0ll, 1ll, 31337ll}) {
    EXPECT_EQ(rq.apply(v), v);
  }
}

}  // namespace
}  // namespace fqbert::quant
