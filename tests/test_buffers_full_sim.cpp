// Buffer-plan and full-model functional simulation tests.
#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "accel/buffers.h"
#include "accel/full_sim.h"
#include "data/synth_tasks.h"
#include "nn/trainer.h"

namespace fqbert::accel {
namespace {

TEST(Buffers, BertBasePlanFitsZcu102) {
  const auto cfg = AcceleratorConfig::zcu102_8_16();
  const auto plan = plan_buffers(nn::BertConfig::bert_base(2), 128, cfg);
  // Q/K/V + attention matrix dominate: 12*128*128 + max(3*128*768,
  // 128*3072) = 196608 + 393216.
  EXPECT_EQ(plan.intermediate_bytes, 196608 + 393216);
  EXPECT_EQ(plan.input_bytes, 128 * 768);
  EXPECT_TRUE(buffers_fit(plan, cfg, FpgaDevice::zcu102()));
}

TEST(Buffers, StructuralBramNearCalibratedModel) {
  // The structural plan and the calibrated ResourceModel must agree on
  // the order of magnitude (the calibrated figure includes HLS overheads
  // like FIFOs that the plan does not enumerate).
  const auto cfg = AcceleratorConfig::zcu102_8_16();
  const auto plan = plan_buffers(nn::BertConfig::bert_base(2), 128, cfg);
  const int64_t structural = plan.bram18k(cfg.total_pes());
  const auto calibrated =
      ResourceModel::estimate(cfg, FpgaDevice::zcu102()).bram18k;
  EXPECT_GT(structural, calibrated / 3);
  EXPECT_LT(structural, calibrated * 3);
}

TEST(Buffers, LongerSequenceNeedsMoreIntermediate) {
  const auto cfg = AcceleratorConfig::zcu102_8_16();
  const auto a = plan_buffers(nn::BertConfig::bert_base(2), 64, cfg);
  const auto b = plan_buffers(nn::BertConfig::bert_base(2), 256, cfg);
  EXPECT_LT(a.intermediate_bytes, b.intermediate_bytes);
  EXPECT_LT(a.total_bytes(), b.total_bytes());
}

TEST(Buffers, PsumScalesWithPes) {
  auto small = AcceleratorConfig::zcu102_8_16();
  auto big = small;
  big.pes_per_pu = 32;
  const auto m = nn::BertConfig::bert_base(2);
  EXPECT_LT(plan_buffers(m, 128, small).psum_bytes,
            plan_buffers(m, 128, big).psum_bytes);
}

class FullSimFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::Sst2Config dcfg;
    data_ = new std::vector<nn::Example>(data::make_sst2(dcfg, 150, 7));
    nn::BertConfig mcfg;
    mcfg.hidden = 16;
    mcfg.num_layers = 2;
    mcfg.num_heads = 2;
    mcfg.ffn_dim = 32;
    mcfg.num_classes = 2;
    Rng rng(5);
    auto model = std::make_unique<nn::BertModel>(mcfg, rng);
    nn::TrainConfig tc;
    tc.epochs = 2;
    nn::train(*model, *data_, *data_, tc);
    core::QatBert qat(*model, core::FqQuantConfig::full());
    qat.calibrate(*data_);
    engine_ = new core::FqBertModel(core::FqBertModel::convert(qat));
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete data_;
  }
  static core::FqBertModel* engine_;
  static std::vector<nn::Example>* data_;
};

core::FqBertModel* FullSimFixture::engine_ = nullptr;
std::vector<nn::Example>* FullSimFixture::data_ = nullptr;

TEST_F(FullSimFixture, LogitsBitExactWithEngine) {
  const auto cfg = AcceleratorConfig::zcu102_8_16();
  for (int i = 0; i < 10; ++i) {
    const nn::Example& ex = (*data_)[static_cast<size_t>(i)];
    const auto rep = run_full_model(*engine_, ex, cfg);
    const Tensor want = engine_->forward(ex);
    ASSERT_EQ(rep.logits.numel(), want.numel());
    for (int64_t j = 0; j < want.numel(); ++j)
      EXPECT_EQ(rep.logits[j], want[j]) << "example " << i;
    EXPECT_EQ(rep.predicted, engine_->predict(ex));
  }
}

TEST_F(FullSimFixture, CycleAccountingPositiveAndConsistent) {
  const auto cfg = AcceleratorConfig::zcu102_8_16();
  const auto rep = run_full_model(*engine_, (*data_)[0], cfg);
  EXPECT_GT(rep.total_pe_cycles, 0);
  EXPECT_GT(rep.total_special_cycles, 0);
  EXPECT_GT(rep.fpga_ms, 0.0);
  int64_t sum = 0;
  for (const auto& st : rep.per_layer) sum += st.pe_cycles;
  EXPECT_EQ(sum, rep.total_pe_cycles);
}

TEST_F(FullSimFixture, MoreParallelismFewerCycles) {
  auto small = AcceleratorConfig::zcu102_8_16();
  auto big = AcceleratorConfig::zcu111_16_16();
  const auto a = run_full_model(*engine_, (*data_)[0], small);
  const auto b = run_full_model(*engine_, (*data_)[0], big);
  EXPECT_GE(a.total_pe_cycles, b.total_pe_cycles);
  // Bit-exactness is configuration-independent.
  for (int64_t j = 0; j < a.logits.numel(); ++j)
    EXPECT_EQ(a.logits[j], b.logits[j]);
}

TEST_F(FullSimFixture, TypeBMatchesTypeA) {
  auto ta = AcceleratorConfig::zcu102_8_16();
  auto tb = ta;
  tb.bim_type_a = 0;
  const auto a = run_full_model(*engine_, (*data_)[1], ta);
  const auto b = run_full_model(*engine_, (*data_)[1], tb);
  for (int64_t j = 0; j < a.logits.numel(); ++j)
    EXPECT_EQ(a.logits[j], b.logits[j]);
  EXPECT_EQ(a.total_pe_cycles, b.total_pe_cycles);
}

}  // namespace
}  // namespace fqbert::accel
