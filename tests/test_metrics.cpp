// /metrics exposition tests: the renderers produce structurally valid
// Prometheus text (every sample line parses, every family has HELP and
// TYPE heads, label values escaped), the counters they report balance
// the same way the wire STATS do, and MetricsHttpServer serves the
// rendered body over real HTTP GET — including the 404/405/garbage
// paths a port scanner will exercise.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstring>
#include <optional>
#include <set>
#include <sstream>
#include <string>

#include "serve/build_info.h"
#include "serve/loadgen.h"
#include "serve/metrics_http.h"
#include "serve/metrics_text.h"
#include "serve/net/transport_server.h"
#include "serve/router/model_router.h"
#include "serve/shard/shard_proxy.h"

namespace fqbert::serve {
namespace {

using core::FqBertModel;
using core::FqQuantConfig;
using core::QatBert;
using nn::BertConfig;
using nn::BertModel;
using nn::Example;

BertConfig tiny_config() {
  BertConfig c;
  c.vocab_size = 128;
  c.hidden = 16;
  c.num_layers = 2;
  c.num_heads = 2;
  c.ffn_dim = 32;
  c.max_seq_len = 32;
  c.num_classes = 2;
  return c;
}

std::shared_ptr<const FqBertModel> build_engine(uint64_t seed) {
  const BertConfig config = tiny_config();
  Rng rng(seed);
  BertModel model(config, rng);
  QatBert qat(model, FqQuantConfig::full());
  std::vector<Example> calib;
  Rng data_rng(seed * 31 + 7);
  for (int i = 0; i < 12; ++i)
    calib.push_back(synth_example(data_rng, 4 + (i % 3) * 6, config));
  qat.calibrate(calib);
  return std::make_shared<const FqBertModel>(FqBertModel::convert(qat));
}

/// Raw HTTP exchange against 127.0.0.1:port: send `request`, read to
/// connection close, return everything.
std::string http_exchange(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  (void)!::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
    out.append(buf, static_cast<size_t>(n));
  ::close(fd);
  return out;
}

std::string http_get(uint16_t port, const std::string& path) {
  return http_exchange(port, "GET " + path + " HTTP/1.1\r\n"
                             "Host: localhost\r\nAccept: */*\r\n\r\n");
}

/// Value of one exposition series, matched on the exact
/// `name{labels}` prefix before the space.
std::optional<double> series_value(const std::string& text,
                                   const std::string& series) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (line.rfind(series + " ", 0) == 0)
      return std::stod(line.substr(series.size() + 1));
  return std::nullopt;
}

/// Structural validation of the whole exposition body: comment lines
/// are HELP/TYPE heads, sample lines are `name[{labels}] value` with a
/// legal metric name, balanced braces and a parseable value, and every
/// sampled family was declared by a TYPE head first.
void expect_valid_exposition(const std::string& text) {
  std::set<std::string> typed;
  std::istringstream in(text);
  std::string line;
  int samples = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      const bool help = line.rfind("# HELP ", 0) == 0;
      const bool type = line.rfind("# TYPE ", 0) == 0;
      ASSERT_TRUE(help || type) << line;
      const std::string rest = line.substr(7);
      const size_t sp = rest.find(' ');
      ASSERT_NE(sp, std::string::npos) << line;
      if (type) typed.insert(rest.substr(0, sp));
      continue;
    }
    // Sample line.
    const size_t brace = line.find('{');
    std::string name;
    size_t value_at;
    if (brace != std::string::npos) {
      name = line.substr(0, brace);
      const size_t close = line.find('}', brace);
      ASSERT_NE(close, std::string::npos) << line;
      ASSERT_LT(close + 1, line.size()) << line;
      ASSERT_EQ(line[close + 1], ' ') << line;
      value_at = close + 2;
      // Label pairs: key="value" with escaped quotes inside.
      const std::string labels = line.substr(brace + 1, close - brace - 1);
      ASSERT_FALSE(labels.empty()) << line;
      ASSERT_EQ(std::count(labels.begin(), labels.end(), '='),
                std::count(labels.begin(), labels.end(), ',') + 1)
          << line;
    } else {
      const size_t sp = line.find(' ');
      ASSERT_NE(sp, std::string::npos) << line;
      name = line.substr(0, sp);
      value_at = sp + 1;
    }
    ASSERT_FALSE(name.empty()) << line;
    for (const char c : name)
      ASSERT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_')
          << line;
    size_t parsed = 0;
    const std::string value = line.substr(value_at);
    EXPECT_NO_THROW({
      (void)std::stod(value, &parsed);
      EXPECT_EQ(parsed, value.size()) << line;
    }) << line;
    // _count samples belong to their summary family's TYPE head.
    std::string family = name;
    const size_t suffix = family.rfind("_count");
    if (suffix != std::string::npos && suffix == family.size() - 6)
      family = family.substr(0, suffix);
    EXPECT_TRUE(typed.count(name) || typed.count(family))
        << "sample without TYPE head: " << line;
    ++samples;
  }
  EXPECT_GT(samples, 0);
}

TEST(MetricsHttp, ServesRenderedBodyAndRejectsEverythingElse) {
  int scrapes = 0;
  MetricsHttpServer server([&scrapes] {
    ++scrapes;
    return std::string("fqbert_up 1\n");
  });
  ASSERT_TRUE(server.start("127.0.0.1", 0));
  ASSERT_NE(server.port(), 0);

  const std::string ok = http_get(server.port(), "/metrics");
  EXPECT_NE(ok.find("HTTP/1.1 200 OK"), std::string::npos) << ok;
  EXPECT_NE(ok.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(ok.find("Content-Length: 12"), std::string::npos) << ok;
  EXPECT_NE(ok.find("fqbert_up 1\n"), std::string::npos);
  EXPECT_EQ(scrapes, 1);

  // Query strings are the same endpoint.
  const std::string with_query = http_get(server.port(), "/metrics?x=1");
  EXPECT_NE(with_query.find("200 OK"), std::string::npos);

  // Unknown path, wrong method, line noise: the renderer never runs.
  EXPECT_NE(http_get(server.port(), "/").find("404"), std::string::npos);
  EXPECT_NE(http_exchange(server.port(),
                          "POST /metrics HTTP/1.1\r\n\r\n")
                .find("405"),
            std::string::npos);
  EXPECT_EQ(http_exchange(server.port(), "\x01\x02garbage\r\n\r\n")
                .find("200"),
            std::string::npos);
  EXPECT_EQ(scrapes, 2);

  // The listener survives all of the above and still answers.
  EXPECT_NE(http_get(server.port(), "/metrics").find("200 OK"),
            std::string::npos);
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(MetricsText, RouterExpositionIsValidAndBalances) {
  EngineRegistry registry;
  registry.register_model("m0", build_engine(42));
  registry.register_model("m1", build_engine(43));
  RouterConfig rcfg;
  rcfg.num_workers = 1;
  rcfg.batcher.max_batch = 4;
  rcfg.batcher.max_wait = Micros(200);
  ModelRouter router(registry, rcfg);
  ASSERT_TRUE(router.add_model("m0"));
  ASSERT_TRUE(router.add_model("m1"));
  ASSERT_TRUE(router.start());

  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const auto resp =
        router.submit(i % 2 ? "m1" : "m0",
                      synth_example(rng, 8, tiny_config()))
            .get();
    ASSERT_EQ(resp.status, RequestStatus::kOk);
  }

  const std::string text = render_router_metrics(router);
  expect_valid_exposition(text);

  // The build-identity gauge leads the exposition: constant 1, all four
  // identity labels present and matching the process's own build info.
  EXPECT_EQ(text.rfind("# HELP fqbert_build_info", 0), 0u);
  EXPECT_EQ(series_value(text, std::string("fqbert_build_info{version=\"") +
                                   build_version() + "\",git_sha=\"" +
                                   build_git_sha() + "\",compiler=\"" +
                                   build_compiler() + "\",sanitizer=\"" +
                                   build_sanitizer() + "\"}"),
            1.0);

  // Lanes scrape as (model, tier) rows; FqQuantConfig::full() engines
  // carry 4-bit weights, so the default lane scrapes as tier="4".
  for (const char* model : {"m0", "m1"}) {
    const std::string m =
        std::string("{model=\"") + model + "\",tier=\"4\"";
    const auto admitted =
        series_value(text, "fqbert_requests_total" + m +
                               ",outcome=\"admitted\"}");
    const auto completed =
        series_value(text, "fqbert_requests_total" + m +
                               ",outcome=\"completed\"}");
    const auto timed_out =
        series_value(text, "fqbert_requests_total" + m +
                               ",outcome=\"timed_out\"}");
    const auto failed = series_value(
        text, "fqbert_requests_total" + m + ",outcome=\"failed\"}");
    ASSERT_TRUE(admitted && completed && timed_out && failed) << text;
    EXPECT_EQ(*admitted, 10.0);
    // The accounting invariant holds in the exposition, not just the
    // wire STATS: admitted == completed + timed_out + failed.
    EXPECT_EQ(*admitted, *completed + *timed_out + *failed);
    // The summary quantiles and their sample count are present.
    EXPECT_TRUE(series_value(text, "fqbert_latency_ms" + m +
                                       ",quantile=\"0.999\"}"));
    EXPECT_EQ(series_value(text, "fqbert_latency_ms_count" + m + "}"),
              *completed);
    EXPECT_EQ(series_value(text, "fqbert_queue_depth" + m + "}"), 0.0);
  }
  EXPECT_TRUE(series_value(text, "fqbert_workers"));
  EXPECT_TRUE(series_value(text, "fqbert_uptime_seconds"));

  router.shutdown(/*drain=*/true);
}

TEST(MetricsText, EndToEndScrapeOverHttpMatchesRouterState) {
  EngineRegistry registry;
  registry.register_model("m0", build_engine(42));
  RouterConfig rcfg;
  rcfg.num_workers = 1;
  ModelRouter router(registry, rcfg);
  ASSERT_TRUE(router.add_model("m0"));
  ASSERT_TRUE(router.start());

  MetricsHttpServer metrics(
      [&router] { return render_router_metrics(router); });
  ASSERT_TRUE(metrics.start("127.0.0.1", 0));

  Rng rng(9);
  for (int i = 0; i < 7; ++i)
    ASSERT_EQ(router.submit("m0", synth_example(rng, 8, tiny_config()))
                  .get()
                  .status,
              RequestStatus::kOk);

  const std::string response = http_get(metrics.port(), "/metrics");
  const size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = response.substr(body_at + 4);
  expect_valid_exposition(body);
  EXPECT_EQ(series_value(body,
                         "fqbert_requests_total{model=\"m0\",tier=\"4\","
                         "outcome=\"completed\"}"),
            7.0);

  metrics.stop();
  router.shutdown(/*drain=*/true);
}

TEST(MetricsText, ProxyExpositionCoversBackendsAndFleetQuantiles) {
  EngineRegistry reg_a, reg_b;
  const auto engine = build_engine(42);
  reg_a.register_model("m0", engine);
  reg_b.register_model("m0", engine);
  RouterConfig rcfg;
  rcfg.num_workers = 1;
  ModelRouter router_a(reg_a, rcfg), router_b(reg_b, rcfg);
  ASSERT_TRUE(router_a.add_model("m0") && router_a.start());
  ASSERT_TRUE(router_b.add_model("m0") && router_b.start());
  net::TransportServer transport_a(router_a, {});
  net::TransportServer transport_b(router_b, {});
  ASSERT_TRUE(transport_a.start() && transport_b.start());

  shard::ShardProxyConfig pcfg;
  pcfg.health_interval = Micros(3'600'000'000);
  shard::ShardProxy proxy(pcfg);
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", transport_a.port(), {"m0"}));
  ASSERT_TRUE(proxy.add_backend("127.0.0.1", transport_b.port(), {"m0"}));
  ASSERT_TRUE(proxy.start());

  LoadgenConfig lcfg;
  lcfg.num_clients = 2;
  lcfg.requests_per_client = 10;
  const LoadgenReport lg = run_loadgen_remote(
      "127.0.0.1", proxy.port(), {{"m0", tiny_config()}}, lcfg);
  ASSERT_EQ(lg.ok, 20u);

  const std::string text = render_proxy_metrics(proxy);
  expect_valid_exposition(text);
  // The proxy exposition carries the same build-identity gauge as a
  // backend's own /metrics, so fleet dashboards can join on it.
  EXPECT_NE(text.find(std::string("fqbert_build_info{version=\"") +
                      build_version() + "\""),
            std::string::npos);
  EXPECT_EQ(series_value(text, "fqbert_proxy_served_total"), 20.0);
  EXPECT_EQ(series_value(text, "fqbert_proxy_exhausted_total"), 0.0);

  // Exactly one state per backend is hot, and both are healthy.
  for (const auto& status : proxy.backend_status()) {
    const std::string be = "{backend=\"" + status.address + "\"";
    double hot = 0.0;
    for (const char* state : {"healthy", "suspect", "down"}) {
      const auto v = series_value(text, "fqbert_backend_state" + be +
                                            ",state=\"" + state + "\"}");
      ASSERT_TRUE(v.has_value()) << text;
      hot += *v;
    }
    EXPECT_EQ(hot, 1.0);
    EXPECT_EQ(series_value(text, "fqbert_backend_state" + be +
                                     ",state=\"healthy\"}"),
              1.0);
  }

  // Fleet-wide per-model stats rode in via the STATS fan-out: the
  // completed count across both backends is every loadgen success.
  // Generic (un-pinned) placement declarations aggregate under
  // tier="0" — the backend's default lane.
  EXPECT_EQ(series_value(text,
                         "fqbert_requests_total{model=\"m0\",tier=\"0\","
                         "outcome=\"completed\"}"),
            20.0);
  EXPECT_TRUE(series_value(
      text, "fqbert_latency_ms{model=\"m0\",tier=\"0\",quantile=\"0.999\"}"));

  proxy.stop();
  router_a.shutdown(true);
  router_b.shutdown(true);
}

}  // namespace
}  // namespace fqbert::serve
