// Integer LayerNorm tests (paper Sec. III-B "LN Core"), including the
// bit-serial square root and the scale-invariance property the kernel
// exploits.
#include <gtest/gtest.h>

#include <cmath>

#include "quant/int_layernorm.h"
#include "tensor/rng.h"

namespace fqbert::quant {
namespace {

TEST(Isqrt64, ExactOnSmallSweep) {
  for (uint64_t v = 0; v < 70000; ++v) {
    const auto r = static_cast<uint64_t>(isqrt64(v));
    EXPECT_LE(r * r, v);
    EXPECT_GT((r + 1) * (r + 1), v);
  }
}

TEST(Isqrt64, LargeValues) {
  for (uint64_t v : {1ull << 40, (1ull << 52) + 12345, 999999999999999ull}) {
    const auto r = static_cast<uint64_t>(isqrt64(v));
    EXPECT_LE(r * r, v);
    EXPECT_GT((r + 1) * (r + 1), v);
  }
  EXPECT_EQ(isqrt64(0), 0u);
  EXPECT_EQ(isqrt64(1), 1u);
  EXPECT_EQ(isqrt64(4), 2u);
}

std::vector<float> ref_layernorm(const std::vector<int32_t>& x,
                                 const std::vector<float>& gamma,
                                 const std::vector<float>& beta) {
  const size_t h = gamma.size();
  double mu = 0;
  for (int32_t v : x) mu += v;
  mu /= static_cast<double>(h);
  double var = 0;
  for (int32_t v : x) var += (v - mu) * (v - mu);
  var /= static_cast<double>(h);
  const double inv = var > 0 ? 1.0 / std::sqrt(var) : 0.0;
  std::vector<float> out(h);
  for (size_t i = 0; i < h; ++i)
    out[i] = static_cast<float>((x[i] - mu) * inv * gamma[i] + beta[i]);
  return out;
}

TEST(IntLayerNorm, MatchesFloatReferenceWithinQuantError) {
  Rng rng(5);
  const int64_t h = 64;
  std::vector<float> gamma(h), beta(h);
  for (auto& g : gamma) g = static_cast<float>(rng.uniform(0.6, 1.4));
  for (auto& b : beta) b = static_cast<float>(rng.uniform(-0.3, 0.3));
  const double out_scale = 40.0;
  IntLayerNorm ln(gamma, beta, out_scale);

  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int32_t> x(h);
    for (auto& v : x) v = static_cast<int32_t>(rng.randint(-200, 200));
    std::vector<int8_t> out(h);
    ln.apply_row(x.data(), out.data());
    const std::vector<float> ref = ref_layernorm(x, gamma, beta);
    for (int64_t i = 0; i < h; ++i) {
      const double got = out[static_cast<size_t>(i)] / out_scale;
      // Error budget: output grid step + Q6 gamma quantization + Q10
      // xhat truncation. |xhat| <= sqrt(h), gamma error <= 2^-7.
      const double budget =
          0.5 / out_scale + std::fabs(ref[static_cast<size_t>(i)]) * 0.02 +
          0.05;
      EXPECT_NEAR(got, ref[static_cast<size_t>(i)], budget)
          << "trial " << trial << " i " << i;
    }
  }
}

TEST(IntLayerNorm, ScaleInvariance) {
  // (x - mu)/sigma is invariant to scaling all codes by a constant; the
  // integer kernel must agree with itself across input scalings (up to
  // rounding of the scaled inputs).
  Rng rng(6);
  const int64_t h = 32;
  std::vector<float> gamma(h, 1.0f), beta(h, 0.0f);
  IntLayerNorm ln(gamma, beta, 50.0);
  std::vector<int32_t> x(h), x4(h);
  for (int64_t i = 0; i < h; ++i) {
    x[static_cast<size_t>(i)] = static_cast<int32_t>(rng.randint(-100, 100));
    x4[static_cast<size_t>(i)] = 4 * x[static_cast<size_t>(i)];
  }
  std::vector<int8_t> a(h), b(h);
  ln.apply_row(x.data(), a.data());
  ln.apply_row(x4.data(), b.data());
  for (int64_t i = 0; i < h; ++i)
    EXPECT_NEAR(a[static_cast<size_t>(i)], b[static_cast<size_t>(i)], 1)
        << "i=" << i;
}

TEST(IntLayerNorm, ConstantRowEmitsBeta) {
  const int64_t h = 16;
  std::vector<float> gamma(h, 1.3f);
  std::vector<float> beta(h);
  for (int64_t i = 0; i < h; ++i)
    beta[static_cast<size_t>(i)] = 0.1f * static_cast<float>(i - 8);
  const double out_scale = 60.0;
  IntLayerNorm ln(gamma, beta, out_scale);
  std::vector<int32_t> x(h, 42);
  std::vector<int8_t> out(h);
  ln.apply_row(x.data(), out.data());
  for (int64_t i = 0; i < h; ++i) {
    EXPECT_NEAR(out[static_cast<size_t>(i)] / out_scale,
                beta[static_cast<size_t>(i)], 0.6 / out_scale + 1e-3);
  }
}

TEST(IntLayerNorm, OutputSaturatesToInt8) {
  const int64_t h = 8;
  std::vector<float> gamma(h, 10.0f);  // force overflow (clamped to Q6 max)
  std::vector<float> beta(h, 0.0f);
  IntLayerNorm ln(gamma, beta, 127.0);
  std::vector<int32_t> x(h);
  for (int64_t i = 0; i < h; ++i)
    x[static_cast<size_t>(i)] = i < 4 ? -100 : 100;
  std::vector<int8_t> out(h);
  ln.apply_row(x.data(), out.data());
  for (int64_t i = 0; i < h; ++i) {
    EXPECT_GE(out[static_cast<size_t>(i)], -127);
    EXPECT_LE(out[static_cast<size_t>(i)], 127);
  }
  EXPECT_EQ(out[0], -127);  // actually saturated
  EXPECT_EQ(out[7], 127);
}

TEST(IntLayerNorm, GammaQ6CodesStored) {
  std::vector<float> gamma{1.0f, -0.5f, 1.984375f, 3.0f};
  std::vector<float> beta(4, 0.0f);
  IntLayerNorm ln(gamma, beta, 10.0);
  EXPECT_EQ(ln.gamma_q()[0], 64);    // 1.0 * 2^6
  EXPECT_EQ(ln.gamma_q()[1], -32);   // -0.5 * 2^6
  EXPECT_EQ(ln.gamma_q()[2], 127);   // max Q6 code
  EXPECT_EQ(ln.gamma_q()[3], 127);   // saturated
}

TEST(IntLayerNorm, RejectsMismatchedParams) {
  std::vector<float> gamma(4, 1.0f), beta(3, 0.0f);
  EXPECT_THROW(IntLayerNorm(gamma, beta, 10.0), std::invalid_argument);
}

TEST(IntLayerNorm, MultiRowApply) {
  const int64_t h = 8, rows = 3;
  std::vector<float> gamma(h, 1.0f), beta(h, 0.0f);
  IntLayerNorm ln(gamma, beta, 30.0);
  Rng rng(9);
  std::vector<int32_t> x(static_cast<size_t>(rows * h));
  for (auto& v : x) v = static_cast<int32_t>(rng.randint(-50, 50));
  std::vector<int8_t> out;
  ln.apply(x, out, rows);
  ASSERT_EQ(out.size(), static_cast<size_t>(rows * h));
  // Row 1 computed independently: equal to apply_row on that slice.
  std::vector<int8_t> row1(h);
  ln.apply_row(x.data() + h, row1.data());
  for (int64_t i = 0; i < h; ++i)
    EXPECT_EQ(out[static_cast<size_t>(h + i)], row1[static_cast<size_t>(i)]);
}

}  // namespace
}  // namespace fqbert::quant
