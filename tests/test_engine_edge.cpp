// Integer-engine edge cases: degenerate shapes, extreme inputs,
// saturation behaviour, and quantize-config corners.
#include <gtest/gtest.h>

#include "core/fq_bert.h"
#include "nn/trainer.h"
#include "test_util.h"

namespace fqbert::core {
namespace {

using fqbert::testing::make_example;

nn::BertConfig edge_config(int64_t layers, int64_t hidden, int64_t heads,
                           int64_t ffn) {
  nn::BertConfig c;
  c.vocab_size = 32;
  c.hidden = hidden;
  c.num_layers = layers;
  c.num_heads = heads;
  c.ffn_dim = ffn;
  c.max_seq_len = 16;
  c.num_classes = 2;
  return c;
}

/// Build a calibrated engine from a lightly trained model.
FqBertModel build_engine(const nn::BertConfig& cfg,
                         const std::vector<nn::Example>& data,
                         const FqQuantConfig& qcfg) {
  Rng rng(11);
  nn::BertModel model(cfg, rng);
  nn::TrainConfig tc;
  tc.epochs = 1;
  nn::train(model, data, data, tc);
  QatBert qat(model, qcfg);
  qat.calibrate(data);
  return FqBertModel::convert(qat);
}

std::vector<nn::Example> small_data() {
  std::vector<nn::Example> out;
  Rng rng(9);
  for (int i = 0; i < 24; ++i) {
    std::vector<int32_t> toks{1};
    const int len = static_cast<int>(rng.randint(2, 10));
    for (int j = 0; j < len; ++j)
      toks.push_back(static_cast<int32_t>(rng.randint(4, 31)));
    toks.push_back(2);
    out.push_back(make_example(toks, static_cast<int32_t>(rng.randint(0, 1))));
  }
  return out;
}

TEST(EngineEdge, SingleLayerSingleHead) {
  const auto data = small_data();
  FqBertModel e =
      build_engine(edge_config(1, 8, 1, 16), data, FqQuantConfig::full());
  for (int i = 0; i < 5; ++i) {
    const Tensor l = e.forward(data[static_cast<size_t>(i)]);
    EXPECT_TRUE(std::isfinite(l[0]));
    EXPECT_TRUE(std::isfinite(l[1]));
  }
}

TEST(EngineEdge, SequenceLengthOne) {
  // A lone [CLS] token: attention over a single position (softmax of a
  // 1-element row must be exactly probability 1).
  const auto data = small_data();
  FqBertModel e =
      build_engine(edge_config(2, 8, 2, 16), data, FqQuantConfig::full());
  nn::Example ex = make_example({1}, 0);
  const Tensor l = e.forward(ex);
  EXPECT_TRUE(std::isfinite(l[0]));
  EXPECT_TRUE(std::isfinite(l[1]));
}

TEST(EngineEdge, MaxLengthSequence) {
  const auto data = small_data();
  const auto cfg = edge_config(1, 8, 2, 16);
  FqBertModel e = build_engine(cfg, data, FqQuantConfig::full());
  std::vector<int32_t> toks(static_cast<size_t>(cfg.max_seq_len), 5);
  toks[0] = 1;
  const Tensor l = e.forward(make_example(toks, 0));
  EXPECT_TRUE(std::isfinite(l[0]));
}

TEST(EngineEdge, RepeatedTokenSequencesAreHandled) {
  // All-identical tokens make rows of the residual nearly constant —
  // exercising the integer LayerNorm's small-variance path.
  const auto data = small_data();
  FqBertModel e =
      build_engine(edge_config(2, 16, 2, 32), data, FqQuantConfig::full());
  for (int32_t tok : {4, 17, 31}) {
    std::vector<int32_t> toks(8, tok);
    toks[0] = 1;
    const Tensor l = e.forward(make_example(toks, 0));
    EXPECT_TRUE(std::isfinite(l[0])) << "token " << tok;
  }
}

TEST(EngineEdge, EightBitWeightsAlsoWork) {
  const auto data = small_data();
  FqQuantConfig q = FqQuantConfig::full();
  q.weight_bits = 8;
  FqBertModel e = build_engine(edge_config(1, 8, 2, 16), data, q);
  for (const auto& layer : e.encoder_layers()) {
    const std::vector<int8_t> codes = layer.wq.narrow_codes();
    for (int8_t c : codes) {
      EXPECT_GE(c, -127);
      EXPECT_LE(c, 127);
    }
    // 8-bit codes live in int16 resident storage and are NOT
    // nibble-packed on the wire.
    EXPECT_FALSE(layer.wq.narrow_storage());
    EXPECT_EQ(layer.wq.packed_weights().size(), codes.size());
  }
  EXPECT_TRUE(std::isfinite(e.forward(data[0])[0]));
}

TEST(EngineEdge, TwoBitWeightsRunAndSaturateGracefully) {
  const auto data = small_data();
  FqQuantConfig q = FqQuantConfig::full();
  q.weight_bits = 2;
  FqBertModel e = build_engine(edge_config(1, 8, 2, 16), data, q);
  for (const auto& layer : e.encoder_layers())
    for (int8_t c : layer.wq.narrow_codes()) {
      EXPECT_GE(c, -1);
      EXPECT_LE(c, 1);
    }
  EXPECT_TRUE(std::isfinite(e.forward(data[0])[0]));
}

TEST(EngineEdge, PredictionsConsistentAcrossCalls) {
  const auto data = small_data();
  FqBertModel e =
      build_engine(edge_config(2, 8, 2, 16), data, FqQuantConfig::full());
  for (int i = 0; i < 5; ++i) {
    const int32_t a = e.predict(data[static_cast<size_t>(i)]);
    const int32_t b = e.predict(data[static_cast<size_t>(i)]);
    EXPECT_EQ(a, b);  // pure integer path: bit-level determinism
  }
}

TEST(EngineEdge, AccuracyOnEmptySetIsZero) {
  const auto data = small_data();
  FqBertModel e =
      build_engine(edge_config(1, 8, 1, 16), data, FqQuantConfig::full());
  EXPECT_EQ(e.accuracy({}), 0.0);
}

}  // namespace
}  // namespace fqbert::core
