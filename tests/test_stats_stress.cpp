// ServeStats under concurrency (the ROADMAP flags the 64Ki latency
// ring as a soft spot): snapshots taken while many writers hammer the
// collector must not tear, crash, or corrupt the ring (run under
// ASan/UBSan in CI), and the windowed percentiles must stay inside the
// recorded value range. Plus unit coverage for the shard-level
// Report::aggregate merge the proxy's STATS fan-out uses.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "serve/stats.h"

namespace fqbert::serve {
namespace {

TEST(StatsStress, ConcurrentRecordersAndSnapshotsStayConsistent) {
  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  constexpr uint64_t kOpsPerWriter = 20'000;
  constexpr int64_t kMinLatency = 100, kMaxLatency = 5'000;

  ServeStats stats(/*latency_window=*/1024);
  std::atomic<bool> done{false};
  std::atomic<uint64_t> snapshots{0};

  // Readers snapshot continuously while writers are active; every
  // intermediate report must already be internally consistent.
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!done) {
        const ServeStats::Report rep = stats.report();
        ++snapshots;
        // Terminal states never exceed admissions (each writer admits
        // BEFORE recording the terminal outcome).
        ASSERT_GE(rep.admitted, rep.completed + rep.timed_out + rep.failed);
        ASSERT_LE(rep.latency_samples, 1024u);
        // Percentiles are interpolations over recorded values only.
        if (rep.latency_samples > 0) {
          ASSERT_GE(rep.p50_ms, static_cast<double>(kMinLatency) / 1000.0);
          ASSERT_LE(rep.max_ms, static_cast<double>(kMaxLatency) / 1000.0);
          ASSERT_LE(rep.p50_ms, rep.p95_ms);
          ASSERT_LE(rep.p95_ms, rep.p99_ms);
          ASSERT_LE(rep.p99_ms, rep.max_ms);
        }
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (uint64_t i = 0; i < kOpsPerWriter; ++i) {
        stats.record_admitted();
        // Every admitted op reaches exactly one terminal state.
        switch ((static_cast<uint64_t>(w) * 31 + i) % 8) {
          case 6:
            stats.record_timeout();
            break;
          case 7:
            stats.record_failure();
            break;
          default: {
            const int64_t latency =
                kMinLatency +
                static_cast<int64_t>((i * 37 + static_cast<uint64_t>(w)) %
                                     (kMaxLatency - kMinLatency + 1));
            stats.record_batch(1 + i % 4);
            stats.record_response(latency, latency / 2);
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done = true;
  for (std::thread& t : readers) t.join();
  EXPECT_GT(snapshots, 0u);

  const ServeStats::Report total = stats.report();
  EXPECT_EQ(total.admitted, kWriters * kOpsPerWriter);
  EXPECT_TRUE(total.accounting_balances());
  EXPECT_EQ(total.latency_samples, 1024u);  // window, not history
  EXPECT_GT(total.completed, 0u);
  EXPECT_GT(total.timed_out, 0u);
  EXPECT_GT(total.failed, 0u);
}

TEST(StatsStress, WindowWrapsWithoutLosingCounterExactness) {
  ServeStats stats(/*latency_window=*/64);
  for (int i = 0; i < 1000; ++i) {
    stats.record_admitted();
    stats.record_response(1000 + i, 10);
  }
  const ServeStats::Report rep = stats.report();
  EXPECT_EQ(rep.completed, 1000u);         // exact lifetime counter
  EXPECT_EQ(rep.latency_samples, 64u);     // bounded window
  // The window holds the most recent samples: percentiles reflect the
  // tail of the stream, not its start.
  EXPECT_GE(rep.p50_ms, (1000.0 + 936.0) / 1000.0);
}

TEST(StatsAggregate, SumsCountersAndWeightsQuantiles) {
  ServeStats::Report a;
  a.admitted = 10;
  a.completed = 8;
  a.timed_out = 1;
  a.failed = 1;
  a.batches = 4;
  a.latency_samples = 8;
  a.mean_batch_occupancy = 2.0;
  a.mean_queue_ms = 1.0;
  a.p50_ms = 2.0;
  a.p95_ms = 4.0;
  a.p99_ms = 5.0;
  a.max_ms = 6.0;

  ServeStats::Report b;
  b.admitted = 30;
  b.completed = 24;
  b.timed_out = 3;
  b.failed = 3;
  b.batches = 12;
  b.latency_samples = 24;
  b.mean_batch_occupancy = 2.5;
  b.mean_queue_ms = 2.0;
  b.p50_ms = 4.0;
  b.p95_ms = 8.0;
  b.p99_ms = 9.0;
  b.max_ms = 5.0;

  const ServeStats::Report agg = ServeStats::aggregate({a, b});
  EXPECT_EQ(agg.admitted, 40u);
  EXPECT_EQ(agg.completed, 32u);
  EXPECT_EQ(agg.timed_out, 4u);
  EXPECT_EQ(agg.failed, 4u);
  EXPECT_TRUE(agg.accounting_balances());
  EXPECT_EQ(agg.batches, 16u);
  EXPECT_EQ(agg.latency_samples, 32u);
  // Weighted by batches: (2.0*4 + 2.5*12) / 16.
  EXPECT_DOUBLE_EQ(agg.mean_batch_occupancy, 2.375);
  // Weighted by completions: (1.0*8 + 2.0*24) / 32.
  EXPECT_DOUBLE_EQ(agg.mean_queue_ms, 1.75);
  // Sample-weighted percentile merge: (2*8 + 4*24) / 32.
  EXPECT_DOUBLE_EQ(agg.p50_ms, 3.5);
  EXPECT_DOUBLE_EQ(agg.max_ms, 6.0);  // true max, not weighted

  // Aggregating nothing is a clean zero report.
  const ServeStats::Report empty = ServeStats::aggregate({});
  EXPECT_EQ(empty.admitted, 0u);
  EXPECT_EQ(empty.p50_ms, 0.0);
}

}  // namespace
}  // namespace fqbert::serve
