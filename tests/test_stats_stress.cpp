// ServeStats under concurrency: snapshots taken while many writers
// hammer the collector must not tear, crash, or corrupt the latency
// sketch (run under ASan/UBSan in CI), and every intermediate report's
// quantiles must stay inside the recorded value range (within the
// sketch's relative error). Plus unit coverage for the shard-level
// Report::aggregate merge the proxy's STATS fan-out uses — both the
// exact sketch-merge path and the sample-weighted fallback for reports
// decoded from pre-sketch wire peers.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "serve/stats.h"

namespace fqbert::serve {
namespace {

TEST(StatsStress, ConcurrentRecordersAndSnapshotsStayConsistent) {
  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  constexpr uint64_t kOpsPerWriter = 20'000;
  constexpr int64_t kMinLatency = 100, kMaxLatency = 5'000;
  // Sketch quantiles are within alpha relative error of true ones, so
  // range checks get a matching margin.
  const double kLo =
      static_cast<double>(kMinLatency) / 1000.0 *
      (1.0 - 2.0 * QuantileSketch::kDefaultAlpha);
  const double kHi =
      static_cast<double>(kMaxLatency) / 1000.0 *
      (1.0 + 2.0 * QuantileSketch::kDefaultAlpha);

  ServeStats stats;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> snapshots{0};

  // Readers snapshot continuously while writers are active; every
  // intermediate report must already be internally consistent.
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!done) {
        const ServeStats::Report rep = stats.report();
        ++snapshots;
        // Terminal states never exceed admissions (each writer admits
        // BEFORE recording the terminal outcome).
        ASSERT_GE(rep.admitted, rep.completed + rep.timed_out + rep.failed);
        // Lifetime sketch: one sample per completion, no window.
        ASSERT_EQ(rep.latency_samples, rep.latency_sketch.count());
        ASSERT_LE(rep.latency_samples, rep.completed);
        if (rep.latency_samples > 0) {
          ASSERT_GE(rep.p50_ms, kLo);
          ASSERT_LE(rep.max_ms, kHi);
          ASSERT_LE(rep.p50_ms, rep.p95_ms);
          ASSERT_LE(rep.p95_ms, rep.p99_ms);
          ASSERT_LE(rep.p99_ms, rep.p999_ms);
          ASSERT_LE(rep.p999_ms, rep.max_ms);
        }
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (uint64_t i = 0; i < kOpsPerWriter; ++i) {
        stats.record_admitted();
        // Every admitted op reaches exactly one terminal state.
        switch ((static_cast<uint64_t>(w) * 31 + i) % 8) {
          case 6:
            stats.record_timeout();
            break;
          case 7:
            stats.record_failure();
            break;
          default: {
            const int64_t latency =
                kMinLatency +
                static_cast<int64_t>((i * 37 + static_cast<uint64_t>(w)) %
                                     (kMaxLatency - kMinLatency + 1));
            stats.record_batch(1 + i % 4);
            stats.record_response(latency, latency / 2);
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done = true;
  for (std::thread& t : readers) t.join();
  EXPECT_GT(snapshots, 0u);

  const ServeStats::Report total = stats.report();
  EXPECT_EQ(total.admitted, kWriters * kOpsPerWriter);
  EXPECT_TRUE(total.accounting_balances());
  // Lifetime samples: every completion is in the sketch, not a window.
  EXPECT_EQ(total.latency_samples, total.completed);
  EXPECT_EQ(total.latency_sketch.count(), total.completed);
  EXPECT_GT(total.completed, 0u);
  EXPECT_GT(total.timed_out, 0u);
  EXPECT_GT(total.failed, 0u);
}

TEST(StatsStress, LifetimeQuantilesTrackTheWholeStream) {
  ServeStats stats;
  for (int i = 0; i < 1000; ++i) {
    stats.record_admitted();
    stats.record_response(1000 + i, 10);
  }
  const ServeStats::Report rep = stats.report();
  EXPECT_EQ(rep.completed, 1000u);          // exact lifetime counter
  EXPECT_EQ(rep.latency_samples, 1000u);    // sketch covers ALL samples
  // True p50 of 1000..1999 us is ~1500 us; the sketch is within its
  // relative error of that — unlike the old 64Ki ring, early samples
  // are never evicted.
  EXPECT_NEAR(rep.p50_ms, 1.5, 1.5 * 3.0 * QuantileSketch::kDefaultAlpha);
  // Max is tracked exactly, not bucket-rounded.
  EXPECT_DOUBLE_EQ(rep.max_ms, 1.999);
}

TEST(StatsAggregate, MergedSketchQuantilesEqualPooledSamples) {
  // Two replicas record disjoint halves of one sample stream; the
  // aggregate must be bit-for-bit the single collector over the pool.
  ServeStats shard_a, shard_b, pooled;
  for (int i = 0; i < 5000; ++i) {
    const int64_t latency = 50 + (i * 977) % 20000;
    ServeStats& shard = (i % 2 == 0) ? shard_a : shard_b;
    shard.record_admitted();
    shard.record_batch(2);
    shard.record_response(latency, latency / 4);
    pooled.record_admitted();
    pooled.record_batch(2);
    pooled.record_response(latency, latency / 4);
  }
  const ServeStats::Report agg =
      ServeStats::aggregate({shard_a.report(), shard_b.report()});
  const ServeStats::Report truth = pooled.report();
  EXPECT_TRUE(agg.latency_sketch == truth.latency_sketch);
  EXPECT_EQ(agg.p50_ms, truth.p50_ms);
  EXPECT_EQ(agg.p95_ms, truth.p95_ms);
  EXPECT_EQ(agg.p99_ms, truth.p99_ms);
  EXPECT_EQ(agg.p999_ms, truth.p999_ms);
  EXPECT_EQ(agg.max_ms, truth.max_ms);
  EXPECT_EQ(agg.latency_samples, truth.latency_samples);
  EXPECT_TRUE(agg.accounting_balances());

  // Merging in an idle replica changes nothing.
  ServeStats idle;
  const ServeStats::Report with_idle = ServeStats::aggregate(
      {shard_a.report(), idle.report(), shard_b.report()});
  EXPECT_TRUE(with_idle.latency_sketch == truth.latency_sketch);
  EXPECT_EQ(with_idle.p999_ms, truth.p999_ms);
}

TEST(StatsAggregate, SumsCountersAndFallsBackForSketchlessPeers) {
  // Reports hand-built WITHOUT sketches model a pre-sketch wire peer:
  // counters still sum exactly; quantiles degrade to the old
  // sample-weighted merge.
  ServeStats::Report a;
  a.admitted = 10;
  a.completed = 8;
  a.timed_out = 1;
  a.failed = 1;
  a.batches = 4;
  a.latency_samples = 8;
  a.mean_batch_occupancy = 2.0;
  a.mean_queue_ms = 1.0;
  a.p50_ms = 2.0;
  a.p95_ms = 4.0;
  a.p99_ms = 5.0;
  a.p999_ms = 5.5;
  a.max_ms = 6.0;

  ServeStats::Report b;
  b.admitted = 30;
  b.completed = 24;
  b.timed_out = 3;
  b.failed = 3;
  b.batches = 12;
  b.latency_samples = 24;
  b.mean_batch_occupancy = 2.5;
  b.mean_queue_ms = 2.0;
  b.p50_ms = 4.0;
  b.p95_ms = 8.0;
  b.p99_ms = 9.0;
  b.p999_ms = 9.5;
  b.max_ms = 5.0;

  const ServeStats::Report agg = ServeStats::aggregate({a, b});
  EXPECT_EQ(agg.admitted, 40u);
  EXPECT_EQ(agg.completed, 32u);
  EXPECT_EQ(agg.timed_out, 4u);
  EXPECT_EQ(agg.failed, 4u);
  EXPECT_TRUE(agg.accounting_balances());
  EXPECT_EQ(agg.batches, 16u);
  EXPECT_EQ(agg.latency_samples, 32u);
  // Weighted by batches: (2.0*4 + 2.5*12) / 16.
  EXPECT_DOUBLE_EQ(agg.mean_batch_occupancy, 2.375);
  // Weighted by completions: (1.0*8 + 2.0*24) / 32.
  EXPECT_DOUBLE_EQ(agg.mean_queue_ms, 1.75);
  // Sample-weighted percentile merge: (2*8 + 4*24) / 32.
  EXPECT_DOUBLE_EQ(agg.p50_ms, 3.5);
  EXPECT_DOUBLE_EQ(agg.max_ms, 6.0);  // true max, not weighted

  // Aggregating nothing is a clean zero report.
  const ServeStats::Report empty = ServeStats::aggregate({});
  EXPECT_EQ(empty.admitted, 0u);
  EXPECT_EQ(empty.p50_ms, 0.0);
}

}  // namespace
}  // namespace fqbert::serve
