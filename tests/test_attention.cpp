// Attention and encoder-layer tests: structural properties plus
// end-to-end gradient checks through the full attention datapath.
#include <gtest/gtest.h>

#include "nn/encoder.h"
#include "test_util.h"

namespace fqbert::nn {
namespace {

using fqbert::testing::check_gradients;
using fqbert::testing::random_tensor;

TEST(HeadSlice, RoundTrip) {
  Rng rng(1);
  Tensor x = random_tensor(3, 8, rng);
  Tensor rebuilt(Shape{3, 8}, 0.0f);
  for (int64_t h = 0; h < 4; ++h) {
    Tensor part = head_slice(x, h, 2);
    EXPECT_EQ(part.dim(0), 3);
    EXPECT_EQ(part.dim(1), 2);
    head_unslice_add(rebuilt, part, h, 2);
  }
  EXPECT_LT(max_abs_diff(x, rebuilt), 1e-7);
}

TEST(RowsBlock, CopyAndSet) {
  Rng rng(2);
  Tensor x = random_tensor(6, 4, rng);
  Tensor blk = rows_block(x, 2, 3);
  EXPECT_EQ(blk.dim(0), 3);
  for (int64_t r = 0; r < 3; ++r)
    for (int64_t c = 0; c < 4; ++c) EXPECT_EQ(blk.at(r, c), x.at(r + 2, c));
  Tensor y(Shape{6, 4}, 0.0f);
  set_rows_block(y, blk, 1);
  for (int64_t r = 0; r < 3; ++r)
    for (int64_t c = 0; c < 4; ++c) EXPECT_EQ(y.at(r + 1, c), x.at(r + 2, c));
}

TEST(Attention, OutputShapeAndProbRows) {
  Rng rng(3);
  MultiHeadSelfAttention attn("a", 8, 2, rng);
  Tensor x = random_tensor(5, 8, rng);
  Tensor y = attn.forward(x);
  EXPECT_EQ(y.dim(0), 5);
  EXPECT_EQ(y.dim(1), 8);
  const Tensor& probs = attn.last_probs();
  EXPECT_EQ(probs.dim(0), 2 * 5);
  EXPECT_EQ(probs.dim(1), 5);
  for (int64_t r = 0; r < probs.dim(0); ++r) {
    double s = 0;
    for (int64_t c = 0; c < probs.dim(1); ++c) s += probs.at(r, c);
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Attention, RejectsIndivisibleHeads) {
  Rng rng(4);
  EXPECT_THROW(MultiHeadSelfAttention("a", 10, 3, rng),
               std::invalid_argument);
}

TEST(Attention, GradCheck) {
  Rng rng(5);
  MultiHeadSelfAttention attn("a", 4, 2, rng);
  Tensor x = random_tensor(3, 4, rng);
  auto loss = [&] {
    Tensor y = attn.forward(x);
    float l = 0.0f;
    Tensor dy(y.shape());
    for (int64_t i = 0; i < y.numel(); ++i) {
      const float w = std::cos(0.3f * static_cast<float>(i));
      l += w * y[i];
      dy[i] = w;
    }
    attn.backward(dy);
    return l;
  };
  // abs_tol floor: the K-projection bias has an exactly-zero analytic
  // gradient (softmax is invariant to per-query constant score shifts),
  // so the comparison there is pure float32 finite-difference noise.
  check_gradients(attn.params(), loss, 6e-2, 5e-4, 3);
}

TEST(Attention, InputGradCheck) {
  Rng rng(6);
  MultiHeadSelfAttention attn("a", 4, 2, rng);
  Tensor x = random_tensor(3, 4, rng);
  Tensor y = attn.forward(x);
  Tensor dy(y.shape(), 0.0f);
  for (int64_t i = 0; i < dy.numel(); ++i)
    dy[i] = 0.1f * static_cast<float>(i % 5);
  Tensor dx = attn.backward(dy);
  const float eps = 1e-3f;
  for (int64_t j = 0; j < x.numel(); j += 3) {
    Tensor xp = x, xm = x;
    xp[j] += eps;
    xm[j] -= eps;
    Tensor yp = attn.forward(xp);
    Tensor ym = attn.forward(xm);
    float lp = 0, lm = 0;
    for (int64_t i = 0; i < dy.numel(); ++i) {
      lp += dy[i] * yp[i];
      lm += dy[i] * ym[i];
    }
    EXPECT_NEAR((lp - lm) / (2 * eps), dx[j], 5e-3) << "index " << j;
  }
}

TEST(EncoderLayer, ForwardShapeAndResidualEffect) {
  Rng rng(7);
  EncoderLayer enc("e", 8, 2, 16, rng);
  Tensor x = random_tensor(4, 8, rng);
  Tensor y = enc.forward(x);
  EXPECT_EQ(y.dim(0), 4);
  EXPECT_EQ(y.dim(1), 8);
  // Post-LN output rows are normalized.
  for (int64_t r = 0; r < 4; ++r) {
    double mu = 0;
    for (int64_t c = 0; c < 8; ++c) mu += y.at(r, c);
    EXPECT_NEAR(mu / 8.0, 0.0, 1e-4);
  }
}

TEST(EncoderLayer, GradCheck) {
  Rng rng(8);
  EncoderLayer enc("e", 4, 2, 8, rng);
  Tensor x = random_tensor(2, 4, rng);
  auto loss = [&] {
    Tensor y = enc.forward(x);
    float l = 0.0f;
    Tensor dy(y.shape());
    for (int64_t i = 0; i < y.numel(); ++i) {
      const float w = std::sin(0.9f * static_cast<float>(i) + 0.2f);
      l += w * y[i];
      dy[i] = w;
    }
    enc.backward(dy);
    return l;
  };
  check_gradients(enc.params(), loss, 8e-2, 2e-4, 2);
}

TEST(EncoderLayer, DeterministicForward) {
  Rng rng(9);
  EncoderLayer enc("e", 8, 2, 16, rng);
  Tensor x = random_tensor(4, 8, rng);
  Tensor y1 = enc.forward(x);
  Tensor y2 = enc.forward(x);
  EXPECT_EQ(max_abs_diff(y1, y2), 0.0);
}

}  // namespace
}  // namespace fqbert::nn
