// Quantizer primitive tests, including parameterized sweeps over
// bitwidths (the property-style tests behind Fig. 3's x-axis).
#include <gtest/gtest.h>

#include "quant/quantizer.h"
#include "tensor/rng.h"
#include "tensor/tensor_ops.h"

namespace fqbert::quant {
namespace {

TEST(QuantGrid, SymmetricLimits) {
  EXPECT_EQ(qmax_signed(8), 127);
  EXPECT_EQ(qmax_signed(4), 7);
  EXPECT_EQ(qmax_signed(2), 1);
  EXPECT_EQ(qmax_unsigned(8), 255);
  EXPECT_THROW(qmax_signed(1), std::invalid_argument);
  EXPECT_THROW(qmax_signed(33), std::invalid_argument);
}

TEST(QuantGrid, ScaleFromThreshold) {
  // Eq. 2: s = (2^{k-1}-1)/T.
  EXPECT_DOUBLE_EQ(scale_from_threshold(1.0, 8), 127.0);
  EXPECT_DOUBLE_EQ(scale_from_threshold(2.0, 4), 3.5);
  EXPECT_DOUBLE_EQ(scale_from_threshold(0.0, 8), 1.0);  // degenerate
}

TEST(QuantValue, RoundsToNearestAndClamps) {
  const double s = 127.0;  // threshold 1.0, 8 bits
  EXPECT_EQ(quantize_value(0.0f, s, 8), 0);
  EXPECT_EQ(quantize_value(1.0f, s, 8), 127);
  EXPECT_EQ(quantize_value(-1.0f, s, 8), -127);
  EXPECT_EQ(quantize_value(10.0f, s, 8), 127);    // clamp high
  EXPECT_EQ(quantize_value(-10.0f, s, 8), -127);  // clamp low (symmetric)
  EXPECT_EQ(quantize_value(0.5f / 127.0f, s, 8), 0);   // rounds to even 0
  EXPECT_EQ(quantize_value(0.6f / 127.0f, s, 8), 1);
}

TEST(QuantValue, SymmetryNoZeroPoint) {
  const double s = scale_from_threshold(3.0, 6);
  for (float x : {0.1f, 0.7f, 1.3f, 2.9f}) {
    EXPECT_EQ(quantize_value(-x, s, 6), -quantize_value(x, s, 6));
  }
}

class QuantRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(QuantRoundTrip, ErrorBoundedByHalfStep) {
  const int bits = GetParam();
  Rng rng(100 + bits);
  Tensor t(Shape{64, 16});
  fill_uniform(t, rng, -2.0f, 2.0f);
  const double threshold = abs_max(t);
  const double s = scale_from_threshold(threshold, bits);
  Tensor fq = fake_quantize_tensor(t, s, bits);
  // Everything inside the clip range reconstructs within half a step.
  const double half_step = 0.5 / s + 1e-7;
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_LE(std::fabs(fq[i] - t[i]), half_step) << "bits=" << bits;
  }
}

TEST_P(QuantRoundTrip, FakeQuantIsIdempotent) {
  const int bits = GetParam();
  Rng rng(200 + bits);
  Tensor t(Shape{32, 8});
  fill_normal(t, rng);
  const double s = scale_from_threshold(abs_max(t), bits);
  Tensor once = fake_quantize_tensor(t, s, bits);
  Tensor twice = fake_quantize_tensor(once, s, bits);
  EXPECT_LT(max_abs_diff(once, twice), 1e-7) << "bits=" << bits;
}

TEST_P(QuantRoundTrip, CodeCountBounded) {
  const int bits = GetParam();
  Rng rng(300 + bits);
  Tensor t(Shape{128, 8});
  fill_normal(t, rng);
  const double s = scale_from_threshold(abs_max(t), bits);
  Int32Tensor codes;
  quantize_tensor(t, s, bits, codes);
  for (int64_t i = 0; i < codes.numel(); ++i) {
    EXPECT_LE(std::abs(codes[i]), qmax_signed(bits));
  }
}

INSTANTIATE_TEST_SUITE_P(Bitwidths, QuantRoundTrip,
                         ::testing::Values(2, 3, 4, 6, 8),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

TEST(Percentile, MatchesSortedDefinition) {
  Tensor t(Shape{10}, std::vector<float>{-9, 8, -7, 6, -5, 4, -3, 2, -1, 0});
  EXPECT_FLOAT_EQ(abs_percentile(t, 1.0), 9.0f);
  EXPECT_FLOAT_EQ(abs_percentile(t, 0.0), 0.0f);
  // q=0.5 over |t| sorted {0..9}: index floor(0.5*9)=4 -> value 4.
  EXPECT_FLOAT_EQ(abs_percentile(t, 0.5), 4.0f);
}

TEST(Percentile, ClipThresholdDispatch) {
  Tensor t(Shape{4}, std::vector<float>{1, -2, 3, -100});
  EXPECT_FLOAT_EQ(clip_threshold(t, ClipMode::kNone, 0.9), 100.0f);
  EXPECT_LT(clip_threshold(t, ClipMode::kPercentile, 0.7), 100.0f);
}

TEST(Percentile, ClipShrinksQuantErrorForOutliers) {
  // A tensor with one huge outlier: clipping gives a finer grid for the
  // bulk of values (the Fig. 3 CLIP-vs-NO_CLIP mechanism).
  Rng rng(55);
  Tensor t(Shape{1024});
  fill_normal(t, rng, 0.0f, 0.1f);
  t[0] = 50.0f;  // outlier
  const int bits = 4;
  const double s_noclip = scale_from_threshold(abs_max(t), bits);
  const double s_clip =
      scale_from_threshold(abs_percentile(t, 0.995), bits);
  Tensor fq_noclip = fake_quantize_tensor(t, s_noclip, bits);
  Tensor fq_clip = fake_quantize_tensor(t, s_clip, bits);
  double err_noclip = 0, err_clip = 0;
  for (int64_t i = 1; i < t.numel(); ++i) {  // exclude the outlier itself
    err_noclip += std::fabs(fq_noclip[i] - t[i]);
    err_clip += std::fabs(fq_clip[i] - t[i]);
  }
  EXPECT_LT(err_clip, err_noclip * 0.25);
}

TEST(Int8Storage, RejectsWideBits) {
  Tensor t(Shape{4}, 0.5f);
  Int8Tensor d;
  EXPECT_THROW(quantize_tensor_i8(t, 1.0, 16, d), std::invalid_argument);
}

TEST(Int8Storage, RoundTripThroughDequant) {
  Rng rng(77);
  Tensor t(Shape{16, 4});
  fill_normal(t, rng);
  const double s = scale_from_threshold(abs_max(t), 8);
  Int8Tensor codes;
  quantize_tensor_i8(t, s, 8, codes);
  Tensor back;
  dequantize_tensor(codes, s, back);
  EXPECT_LT(max_abs_diff(back, fake_quantize_tensor(t, s, 8)), 1e-7);
}

TEST(ScaleQuantization, EightBitMantissa) {
  // The quantized scale is within 2^-8 relative error and exactly
  // representable as (m/256) * 2^e.
  for (double s : {127.0, 0.034, 3.7, 1000.5, 1e-4}) {
    const double q = quantize_scale_8bit(s);
    EXPECT_NEAR(q / s, 1.0, 1.0 / 256.0) << "s=" << s;
    int e;
    const double f = std::frexp(q, &e);
    const double mant = f * 256.0;
    EXPECT_NEAR(mant, std::nearbyint(mant), 1e-9);
  }
  EXPECT_EQ(quantize_scale_8bit(0.0), 0.0);
}

}  // namespace
}  // namespace fqbert::quant
