// Integer LUT softmax tests (paper Sec. III-B "Softmax Core").
#include <gtest/gtest.h>

#include <cmath>

#include "quant/int_softmax.h"
#include "tensor/rng.h"

namespace fqbert::quant {
namespace {

TEST(IntSoftmaxLut, TableEndpointsAndMonotonicity) {
  IntSoftmax sm(10.0);
  const auto& lut = sm.lut();
  EXPECT_EQ(lut[0], 255);  // exp(0) = 1 -> code 255
  EXPECT_LE(lut[IntSoftmax::kLutSize - 1], 1);  // exp(-range) ~ 0
  for (int i = 1; i < IntSoftmax::kLutSize; ++i)
    EXPECT_LE(lut[i], lut[i - 1]);  // monotone non-increasing
}

TEST(IntSoftmaxLut, TableValuesMatchExp) {
  IntSoftmax sm(25.0);
  for (int i = 0; i < IntSoftmax::kLutSize; i += 17) {
    const double expect = 255.0 * std::exp(-i * IntSoftmax::kStep);
    EXPECT_NEAR(sm.lut()[static_cast<size_t>(i)], expect, 0.51);
  }
}

TEST(IntSoftmax, UniformInputGivesUniformOutput) {
  IntSoftmax sm(32.0);
  std::vector<int32_t> x(8, 100);
  std::vector<int32_t> p;
  sm.apply(x, p, 1, 8);
  for (int32_t v : p) EXPECT_EQ(v, p[0]);
  // Each ~ 255/8 = 31.9.
  EXPECT_NEAR(p[0], 32, 1);
}

TEST(IntSoftmax, ShiftInvariance) {
  // Softmax is invariant to adding a constant to all inputs; the integer
  // pipeline relies on exactly this (max subtraction).
  IntSoftmax sm(16.0);
  Rng rng(3);
  std::vector<int32_t> x(12), shifted(12);
  for (int i = 0; i < 12; ++i) {
    x[static_cast<size_t>(i)] = static_cast<int32_t>(rng.randint(-100, 100));
    shifted[static_cast<size_t>(i)] = x[static_cast<size_t>(i)] + 913;
  }
  std::vector<int32_t> p1, p2;
  sm.apply(x, p1, 1, 12);
  sm.apply(shifted, p2, 1, 12);
  EXPECT_EQ(p1, p2);
}

class IntSoftmaxScaleSweep : public ::testing::TestWithParam<double> {};

TEST_P(IntSoftmaxScaleSweep, CloseToFloatReference) {
  const double scale = GetParam();
  IntSoftmax sm(scale);
  Rng rng(17);
  const int64_t cols = 32;
  std::vector<int32_t> x(cols);
  std::vector<float> xf(cols), ref(cols);
  double max_err = 0.0;
  for (int trial = 0; trial < 50; ++trial) {
    for (int64_t c = 0; c < cols; ++c) {
      // Scores on the integer grid for this scale; real values in [-4, 4].
      const double real = rng.uniform(-4.0, 4.0);
      x[static_cast<size_t>(c)] =
          static_cast<int32_t>(std::nearbyint(real * scale));
      xf[static_cast<size_t>(c)] =
          static_cast<float>(x[static_cast<size_t>(c)] / scale);
    }
    std::vector<int32_t> p;
    sm.apply(x, p, 1, cols);
    softmax_reference(xf.data(), ref.data(), cols);
    for (int64_t c = 0; c < cols; ++c) {
      const double got = p[static_cast<size_t>(c)] / IntSoftmax::output_scale();
      max_err = std::max(max_err, std::fabs(got - ref[static_cast<size_t>(c)]));
    }
  }
  // 8-bit numerator + 8-bit output: worst case a few codes of error.
  EXPECT_LT(max_err, 0.02) << "scale=" << scale;
}

INSTANTIATE_TEST_SUITE_P(Scales, IntSoftmaxScaleSweep,
                         ::testing::Values(4.0, 16.0, 64.0, 256.0, 1024.0));

TEST(IntSoftmax, RowSumsNearOne) {
  IntSoftmax sm(20.0);
  Rng rng(23);
  const int64_t rows = 16, cols = 24;
  std::vector<int32_t> x(static_cast<size_t>(rows * cols));
  for (auto& v : x) v = static_cast<int32_t>(rng.randint(-150, 150));
  std::vector<int32_t> p;
  sm.apply(x, p, rows, cols);
  for (int64_t r = 0; r < rows; ++r) {
    int64_t sum = 0;
    for (int64_t c = 0; c < cols; ++c) {
      const int32_t v = p[static_cast<size_t>(r * cols + c)];
      EXPECT_GE(v, 0);
      EXPECT_LE(v, 255);
      sum += v;
    }
    // Sum of codes ~ 255 (within rounding of each entry).
    EXPECT_NEAR(static_cast<double>(sum), 255.0, cols * 0.5 + 2);
  }
}

TEST(IntSoftmax, RankPreservedForSpreadInputs) {
  // With inputs spaced by more than one LUT step, larger score => larger
  // probability (ties can appear only within a step).
  const double scale = 64.0;
  IntSoftmax sm(scale);
  std::vector<int32_t> x{-200, -100, 0, 50, 100, 210};
  std::vector<int32_t> p;
  sm.apply(x, p, 1, static_cast<int64_t>(x.size()));
  for (size_t i = 1; i < x.size(); ++i) EXPECT_GE(p[i], p[i - 1]);
  EXPECT_GT(p.back(), p.front());
}

TEST(IntSoftmax, MaxElementDominatesAfterLargeGap) {
  const double scale = 32.0;
  IntSoftmax sm(scale);
  // Gap of 8.0 real units: everything except the max underflows the LUT.
  std::vector<int32_t> x{0, -256, -256, -256};
  std::vector<int32_t> p;
  sm.apply(x, p, 1, 4);
  EXPECT_GE(p[0], 250);
  for (size_t i = 1; i < 4; ++i) EXPECT_LE(p[i], 2);
}

}  // namespace
}  // namespace fqbert::quant
