// Network transport overhead: client-observed closed-loop latency of
// the SAME ModelRouter lane driven (a) in-process through submit(),
// (b) across the loopback TCP transport over ONE persistent
// TransportClient connection — the wire cost loadgen's per-thread
// persistent clients pay — and (c) reconnecting per request, the
// pre-PR-4 loadgen behavior kept here as a guardrail: the bench FAILS
// if the persistent path's p50 ever stops beating the reconnecting
// path. Responses are verified identical across paths while measuring.
//
//   ./build/bench/bench_net_overhead [--fast]
#include <algorithm>
#include <chrono>

#include "bench_common.h"
#include "serve/loadgen.h"
#include "serve/net/transport_client.h"
#include "serve/net/transport_server.h"
#include "serve/router/model_router.h"

namespace {

using namespace fqbert;
using namespace fqbert::bench;
using serve::Micros;

struct LatencyStats {
  double p50_us = 0, p99_us = 0, mean_us = 0, rps = 0;
};

LatencyStats summarize(std::vector<double>& us, double wall_s) {
  std::sort(us.begin(), us.end());
  LatencyStats s;
  if (us.empty()) return s;
  s.p50_us = us[us.size() / 2];
  s.p99_us = us[std::min(us.size() - 1, us.size() * 99 / 100)];
  double sum = 0;
  for (const double v : us) sum += v;
  s.mean_us = sum / static_cast<double>(us.size());
  s.rps = static_cast<double>(us.size()) / wall_s;
  return s;
}

std::vector<nn::Example> make_workload(const nn::BertConfig& cfg, int count,
                                       uint64_t seed) {
  const std::vector<int64_t> mix = {12, 16, 24};
  Rng rng(seed);
  std::vector<nn::Example> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i)
    out.push_back(serve::synth_example(rng, rng.choice(mix), cfg));
  return out;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = fast_mode(argc, argv);
  const int requests = fast ? 500 : 4000;

  std::printf("building serving engine (fast pipeline)...\n");
  serve::EngineRegistry registry;
  auto engine = pipeline::build_and_register_engine(
      registry, "bench", "sst2", core::FqQuantConfig::full(), /*fast=*/true);
  const nn::BertConfig& mcfg = engine->config();
  const std::vector<nn::Example> workload =
      make_workload(mcfg, requests, 1234);

  // Immediate flush: a single closed-loop client would otherwise pay
  // max_wait on every request in BOTH paths, drowning the wire cost
  // this bench isolates.
  serve::RouterConfig rcfg;
  rcfg.num_workers = 1;
  rcfg.batcher.max_batch = 8;
  rcfg.batcher.max_wait = Micros(0);

  serve::ModelRouter router(registry, rcfg);
  if (!router.add_model("bench")) return 1;
  router.start();
  serve::net::TransportConfig tcfg;
  tcfg.port = 0;
  serve::net::TransportServer transport(router, tcfg);
  if (!transport.start()) return 1;

  print_rule();
  std::printf("closed-loop single client, %d requests, seq mix 12/16/24, "
              "1 worker, max_wait 0\n",
              requests);

  // Warm up both paths (engine scratch, connection, caches).
  serve::net::TransportClient client;
  if (!client.connect("127.0.0.1", transport.port())) {
    std::fprintf(stderr, "connect failed: %s\n", client.error().c_str());
    return 1;
  }
  for (int i = 0; i < 50; ++i) {
    (void)router.submit("bench", workload[static_cast<size_t>(i)]).get();
    (void)client.call(workload[static_cast<size_t>(i)]);
  }

  // (a) in-process submit().
  std::vector<double> local_us;
  local_us.reserve(workload.size());
  double t0 = now_s();
  std::vector<serve::ServeResponse> local_responses;
  local_responses.reserve(workload.size());
  for (const nn::Example& ex : workload) {
    const double s = now_s();
    local_responses.push_back(router.submit("bench", ex).get());
    local_us.push_back((now_s() - s) * 1e6);
  }
  const double local_wall = now_s() - t0;

  // (b) loopback TCP round trip, verifying bit-identical logits.
  std::vector<double> remote_us;
  remote_us.reserve(workload.size());
  uint64_t mismatches = 0, failures = 0;
  t0 = now_s();
  for (size_t i = 0; i < workload.size(); ++i) {
    const double s = now_s();
    const auto resp = client.call(workload[i]);
    remote_us.push_back((now_s() - s) * 1e6);
    if (!resp || resp->status != serve::RequestStatus::kOk) {
      ++failures;
      continue;
    }
    const serve::ServeResponse& local = local_responses[i];
    if (resp->logits != local.logits || resp->predicted != local.predicted)
      ++mismatches;
  }
  const double remote_wall = now_s() - t0;

  // (c) loopback TCP, reconnecting per request (the pre-persistent
  // loadgen behavior): connect + round trip + teardown every time.
  std::vector<double> reconnect_us;
  reconnect_us.reserve(workload.size());
  uint64_t reconnect_failures = 0;
  t0 = now_s();
  for (size_t i = 0; i < workload.size(); ++i) {
    serve::net::TransportClient per_request;
    const double s = now_s();
    const bool ok = per_request.connect("127.0.0.1", transport.port()) &&
                    per_request.call(workload[i]).has_value();
    reconnect_us.push_back((now_s() - s) * 1e6);
    if (!ok) ++reconnect_failures;
  }
  const double reconnect_wall = now_s() - t0;

  transport.stop();
  router.shutdown(/*drain=*/true);

  LatencyStats local = summarize(local_us, local_wall);
  LatencyStats remote = summarize(remote_us, remote_wall);
  LatencyStats reconnect = summarize(reconnect_us, reconnect_wall);
  print_rule();
  std::printf("%-22s %10s %10s %10s %10s\n", "path", "p50 us", "p99 us",
              "mean us", "req/s");
  std::printf("%-22s %10.1f %10.1f %10.1f %10.1f\n", "in-process submit()",
              local.p50_us, local.p99_us, local.mean_us, local.rps);
  std::printf("%-22s %10.1f %10.1f %10.1f %10.1f\n", "loopback persistent",
              remote.p50_us, remote.p99_us, remote.mean_us, remote.rps);
  std::printf("%-22s %10.1f %10.1f %10.1f %10.1f\n", "loopback reconnect",
              reconnect.p50_us, reconnect.p99_us, reconnect.mean_us,
              reconnect.rps);
  print_rule();
  std::printf("loopback overhead: p50 %+.1f us (%.2fx), mean %+.1f us; "
              "responses: %llu transport failures, %llu mismatches vs "
              "in-process\n",
              remote.p50_us - local.p50_us,
              local.p50_us > 0 ? remote.p50_us / local.p50_us : 0.0,
              remote.mean_us - local.mean_us,
              static_cast<unsigned long long>(failures),
              static_cast<unsigned long long>(mismatches));
  std::printf("persistent connection saves %+.1f us p50 vs "
              "reconnect-per-request (%llu reconnect failures)\n",
              reconnect.p50_us - remote.p50_us,
              static_cast<unsigned long long>(reconnect_failures));
  const bool persistent_wins = remote.p50_us < reconnect.p50_us;
  if (!persistent_wins)
    std::printf("FAIL: persistent p50 (%.1f us) did not beat "
                "reconnect-per-request p50 (%.1f us)\n",
                remote.p50_us, reconnect.p50_us);
  return failures == 0 && mismatches == 0 && reconnect_failures == 0 &&
                 persistent_wins
             ? 0
             : 1;
}
