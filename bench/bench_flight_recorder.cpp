// Flight-recorder performance contract. The journal is always-on in
// production, so this bench does not merely report — it FAILS (exit 1)
// a Release build that breaks either bound:
//
//   1. record() must cost <= 100 ns/event on the hot path (thread-local
//      ring lookup + clock_gettime + uncontended mutex + slot write);
//   2. the InferenceServer's p50 with the recorder enabled must stay
//      within 2% of the same server with record() short-circuited
//      (set_enabled(false) — the A/B switch exists for this bench).
//
// The A/B runs interleave off,on,off,on,...,off and each ON run is
// judged against the geometric mean of its neighboring OFF runs, so a
// monotone machine-speed trend cancels to first order; the verdict is
// the median ratio across ON runs, gated at the 2% bound plus a noise
// floor the bench measures on itself (the same estimator applied to
// OFF-vs-OFF runs, where the true delta is zero by construction). The
// gates only arm under NDEBUG: a Debug or sanitizer build is allowed
// to be slow, and prints results only.
//
//   ./build/bench/bench_flight_recorder [--fast]
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/flight_recorder.h"
#include "serve/loadgen.h"
#include "serve/server.h"

namespace {

using namespace fqbert;
using namespace fqbert::bench;
using serve::FlightEventType;
using serve::FlightRecorder;

constexpr double kMaxNsPerEvent = 100.0;
constexpr double kMaxP50Penalty = 0.02;  // 2%

/// One timed burst of record() calls; returns ns/event.
double record_burst_ns(size_t iters) {
  FlightRecorder& rec = FlightRecorder::instance();
  const uint64_t t0 = serve::flight_now_ns();
  for (size_t i = 0; i < iters; ++i)
    rec.record(FlightEventType::kRequestAdmitted, "bench", /*trace_id=*/i,
               /*tier=*/8, /*detail=*/0, /*a=*/static_cast<uint32_t>(i),
               /*b=*/i);
  const uint64_t t1 = serve::flight_now_ns();
  return static_cast<double>(t1 - t0) / static_cast<double>(iters);
}

/// One closed-loop serve run; returns the exact sample p50 in ms,
/// computed from the raw per-request rows. The server's own sketch is
/// mergeable-but-bucketed (~6% relative error per bucket), far coarser
/// than the 2% bound this bench enforces, so it cannot be the ruler.
double serve_p50_ms(serve::EngineRegistry& registry,
                    const nn::BertConfig& mcfg,
                    const serve::LoadgenConfig& lcfg) {
  // max_wait = 0: flush whatever is queued. A real hold-back timer
  // makes the latency distribution bimodal around the flush boundary —
  // a microsecond-level perturbation flips requests across it and moves
  // the p50 by whole percents, which would drown the effect this bench
  // is actually bounding.
  serve::ServerConfig scfg;
  scfg.num_workers = 2;
  scfg.batcher.max_batch = 8;
  scfg.batcher.max_wait = serve::Micros(0);
  serve::InferenceServer server(registry, "bench", scfg);
  server.start();
  const serve::LoadgenReport report = serve::run_loadgen(server, mcfg, lcfg);
  server.shutdown(/*drain=*/true);
  std::vector<int64_t> lat;
  lat.reserve(report.records.size());
  for (const serve::RequestRecord& r : report.records)
    if (r.status == serve::RequestStatus::kOk) lat.push_back(r.latency_us);
  if (lat.empty()) return 0.0;
  std::sort(lat.begin(), lat.end());
  return static_cast<double>(lat[lat.size() / 2]) / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = fast_mode(argc, argv);
  FlightRecorder& rec = FlightRecorder::instance();

  // --- contract 1: raw cost per event -------------------------------
  const size_t burst = fast ? 200'000 : 1'000'000;
  const int trials = fast ? 3 : 5;
  (void)record_burst_ns(burst / 10);  // warm the ring claim + caches
  double best_ns = record_burst_ns(burst);
  for (int t = 1; t < trials; ++t)
    best_ns = std::min(best_ns, record_burst_ns(burst));
  std::printf("record(): %.1f ns/event (min of %d x %zu, bound %.0f)\n",
              best_ns, trials, burst, kMaxNsPerEvent);

  // --- contract 2: end-to-end p50 delta -----------------------------
  print_rule();
  std::printf("building serving engine (fast pipeline)...\n");
  serve::EngineRegistry registry;
  auto engine = pipeline::build_and_register_engine(
      registry, "bench", "sst2", core::FqQuantConfig::full(), /*fast=*/true);
  const nn::BertConfig& mcfg = engine->config();

  // Light load on purpose: a deep closed-loop queue would amplify every
  // scheduling hiccup into the p50 (queueing delay swamps service
  // time), drowning a small per-request overhead. Two clients keep the
  // latency compute-dominated, which is exactly where a recorder tax
  // would show.
  serve::LoadgenConfig lcfg;
  lcfg.num_clients = 4;
  lcfg.requests_per_client = fast ? 150 : 300;
  lcfg.seq_len_mix = {12, 16, 24};
  lcfg.collect_records = true;  // exact sample p50, not the sketch

  // Drift-cancelling interleave: runs alternate off,on,off,on,...,off
  // and each ON run is compared against the geometric mean of its two
  // neighboring OFF runs. A monotone warm-up or cool-down trend (the
  // dominant error on a one-core container, where it otherwise leaks
  // straight into a naive pairwise comparison) cancels to first order;
  // the median across ON runs then shrugs off the odd outlier burst.
  const int on_runs = fast ? 6 : 10;
  std::printf("serve A/B: %d on-runs interleaved with %d off-runs, "
              "%d clients x %d requests (hw threads: %u)\n",
              on_runs, on_runs + 1, lcfg.num_clients,
              lcfg.requests_per_client,
              std::thread::hardware_concurrency());
  (void)serve_p50_ms(registry, mcfg, lcfg);  // warm-up run, discarded
  std::vector<double> off_p50(on_runs + 1), on_p50(on_runs);
  for (int k = 0; k <= on_runs; ++k) {
    rec.set_enabled(false);
    off_p50[k] = serve_p50_ms(registry, mcfg, lcfg);
    rec.set_enabled(true);
    if (k < on_runs) on_p50[k] = serve_p50_ms(registry, mcfg, lcfg);
  }
  std::vector<double> ratios;
  for (int k = 0; k < on_runs; ++k) {
    const double off_interp = std::sqrt(off_p50[k] * off_p50[k + 1]);
    if (off_interp > 0.0) ratios.push_back(on_p50[k] / off_interp);
    std::printf("  on %.3f ms vs off %.3f/%.3f ms (%+.2f%%)\n", on_p50[k],
                off_p50[k], off_p50[k + 1],
                off_interp > 0.0 ? (on_p50[k] / off_interp - 1.0) * 100.0
                                 : 0.0);
  }
  std::sort(ratios.begin(), ratios.end());
  const double median_ratio =
      ratios.empty() ? 1.0 : ratios[ratios.size() / 2];
  const double penalty = median_ratio - 1.0;

  // Self-calibrated noise floor: apply the SAME estimator to a signal
  // known to be null — each interior OFF run judged against the
  // geometric mean of its OFF neighbors. The median |deviation| is what
  // this machine's scheduler noise produces when nothing changed, so
  // the gate arms at bound + floor: tight on a quiet CI runner (floor
  // near zero, the 2% contract bites as written), honest on a noisy
  // shared box (refuses to false-alarm below its own resolution).
  std::vector<double> null_dev;
  for (int k = 1; k < on_runs; ++k) {
    const double interp = std::sqrt(off_p50[k - 1] * off_p50[k + 1]);
    if (interp > 0.0) null_dev.push_back(std::fabs(off_p50[k] / interp - 1.0));
  }
  std::sort(null_dev.begin(), null_dev.end());
  const double noise_floor =
      null_dev.empty() ? 0.0 : null_dev[null_dev.size() / 2];
  const double effective_bound = kMaxP50Penalty + noise_floor;
  std::printf("p50 delta: %+.2f%% median of %zu on-runs (bound %+.0f%% + "
              "%.2f%% off-vs-off noise floor = %+.2f%%)\n",
              penalty * 100.0, ratios.size(), kMaxP50Penalty * 100.0,
              noise_floor * 100.0, effective_bound * 100.0);

  // --- gates (Release only) -----------------------------------------
  bool ok = true;
#ifdef NDEBUG
  if (best_ns > kMaxNsPerEvent) {
    std::fprintf(stderr,
                 "FAIL: record() costs %.1f ns/event (> %.0f); the "
                 "always-on journal is no longer free enough\n",
                 best_ns, kMaxNsPerEvent);
    ok = false;
  }
  if (penalty > effective_bound) {
    std::fprintf(stderr,
                 "FAIL: serve p50 moved %+.2f%% with the recorder on "
                 "(> %+.0f%% bound + %.2f%% measured noise floor)\n",
                 penalty * 100.0, kMaxP50Penalty * 100.0,
                 noise_floor * 100.0);
    ok = false;
  }
#else
  std::printf("(debug/sanitizer build: perf gates not armed)\n");
#endif
  if (ok) std::printf("PASS\n");
  return ok ? 0 : 1;
}
