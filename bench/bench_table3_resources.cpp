// Table III reproduction: resource consumption and latency for the three
// accelerator operating points (H = 12 PUs; BERT-base, seq len 128).
//
//   paper (N,M)   BRAM18K  DSP48E  FF      LUT     Latency(ms)
//   ZCU102 total  1824     2520    548160  274080  -
//   (8,16)        838      1751    124433  123157  43.89
//   (16,8)        877      1671    151010  154192  45.35
//   ZCU111 total  2160     4272    850560  425280  -
//   (16,16)       679*     3287    201469  189724  23.79
#include <cstdio>

#include "accel/accelerator.h"

using namespace fqbert;
using namespace fqbert::accel;

namespace {

void print_device_row(const FpgaDevice& d) {
  std::printf("%-8s %9lld %8lld %9lld %9lld %12s\n", d.name.c_str(),
              static_cast<long long>(d.bram18k),
              static_cast<long long>(d.dsp48), static_cast<long long>(d.ff),
              static_cast<long long>(d.lut), "-");
}

void print_config_row(const AcceleratorConfig& cfg, const FpgaDevice& dev,
                      const nn::BertConfig& model) {
  const AcceleratorReport rep = evaluate(cfg, dev, model, 128);
  char name[32];
  std::snprintf(name, sizeof(name), "(%d,%d)%s", cfg.pes_per_pu,
                cfg.bim_mults, rep.resources.uram > 0 ? "*" : "");
  std::printf("%-8s %9lld %8lld %9lld %9lld %12.2f\n", name,
              static_cast<long long>(rep.resources.bram18k),
              static_cast<long long>(rep.resources.dsp48),
              static_cast<long long>(rep.resources.ff),
              static_cast<long long>(rep.resources.lut),
              rep.latency.total_ms);
}

}  // namespace

int main() {
  const nn::BertConfig model = nn::BertConfig::bert_base(2);
  std::printf("=== Table III: resource consumption and latency ===\n");
  std::printf("(H = 12 PUs, BERT-base, batch 1, seq len 128, 214 MHz)\n\n");
  std::printf("%-8s %9s %8s %9s %9s %12s\n", "(N, M)", "BRAM18K", "DSP48E",
              "FF", "LUT", "Latency(ms)");
  for (int i = 0; i < 62; ++i) std::putchar('-');
  std::putchar('\n');

  print_device_row(FpgaDevice::zcu102());
  print_config_row(AcceleratorConfig::zcu102_8_16(), FpgaDevice::zcu102(),
                   model);
  print_config_row(AcceleratorConfig::zcu102_16_8(), FpgaDevice::zcu102(),
                   model);
  print_device_row(FpgaDevice::zcu111());
  print_config_row(AcceleratorConfig::zcu111_16_16(), FpgaDevice::zcu111(),
                   model);
  std::printf("* URAM used for large buffers (not counted as BRAM18K)\n\n");

  std::printf("paper:  (8,16)  838/1751/124433/123157, 43.89 ms\n");
  std::printf("paper:  (16,8)  877/1671/151010/154192, 45.35 ms\n");
  std::printf("paper: (16,16)  679/3287/201469/189724, 23.79 ms\n\n");

  // Scalability sweep beyond the paper's points.
  std::printf("Scalability sweep (ZCU111, latency in ms):\n");
  std::printf("%-10s %10s %10s %10s\n", "(N, M)", "DSP48E", "fits?",
              "Latency");
  for (int n : {4, 8, 16, 32}) {
    for (int m : {8, 16}) {
      AcceleratorConfig cfg;
      cfg.pes_per_pu = n;
      cfg.bim_mults = m;
      const auto rep = evaluate(cfg, FpgaDevice::zcu111(), model, 128);
      std::printf("(%2d,%2d)    %10lld %10s %10.2f\n", n, m,
                  static_cast<long long>(rep.resources.dsp48),
                  rep.resources.fits(FpgaDevice::zcu111()) ? "yes" : "NO",
                  rep.latency.total_ms);
    }
  }
  return 0;
}
