// Serving throughput: dynamic batching and engine-pool scaling.
//
// Three measurements over the same synthetic request mix:
//   1. sequential batch-1 baseline — a bare loop over forward(), the
//      single-stream deployment the paper's latency numbers describe;
//   2. engine-level batched throughput — forward_batch() on ragged
//      packed batches, isolating the packed-matmul win from the
//      serving machinery;
//   3. the InferenceServer under a closed-loop client, sweeping
//      worker count x max batch over a seq-length mix.
//
// Since PR 2, forward() runs the very same panel kernel as
// forward_batch, so on one core the engine-level batching gain shrinks
// to amortized per-call overhead (~1.0-1.1x); batching's remaining
// value is scheduling (latency shaping under load) and multi-worker
// scaling on multi-core hosts. bench_single_latency measures the
// batch-1 win of the unified path itself.
//
// The serving engine is built through the regular fast pipeline (train
// -> QAT -> convert); accuracy is irrelevant here, throughput is not.
//
//   ./build/bench/bench_serve_throughput [--fast]
#include <chrono>
#include <thread>

#include "bench_common.h"
#include "serve/loadgen.h"
#include "serve/server.h"

namespace {

using namespace fqbert;
using namespace fqbert::bench;
using serve::Micros;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<nn::Example> make_workload(const nn::BertConfig& cfg,
                                       const std::vector<int64_t>& mix,
                                       int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<nn::Example> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i)
    out.push_back(serve::synth_example(rng, rng.choice(mix), cfg));
  return out;
}

double sequential_rps(const core::FqBertModel& engine,
                      const std::vector<nn::Example>& workload) {
  const double t0 = now_s();
  for (const nn::Example& ex : workload) (void)engine.forward(ex);
  return static_cast<double>(workload.size()) / (now_s() - t0);
}

double batched_rps(const core::FqBertModel& engine,
                   const std::vector<nn::Example>& workload,
                   int64_t batch_size) {
  std::vector<const nn::Example*> batch;
  const double t0 = now_s();
  for (size_t i = 0; i < workload.size(); i += batch_size) {
    batch.clear();
    for (size_t j = i; j < std::min(workload.size(), i + batch_size); ++j)
      batch.push_back(&workload[j]);
    (void)engine.forward_batch(batch);
  }
  return static_cast<double>(workload.size()) / (now_s() - t0);
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = fast_mode(argc, argv);
  const int requests_per_client = fast ? 40 : 150;

  std::printf("building serving engine (fast pipeline)...\n");
  serve::EngineRegistry registry;
  auto engine = pipeline::build_and_register_engine(
      registry, "bench", "sst2", core::FqQuantConfig::full(), /*fast=*/true);
  const nn::BertConfig& mcfg = engine->config();

  const std::vector<int64_t> seq_mix = {12, 16, 24};
  const std::vector<nn::Example> workload =
      make_workload(mcfg, seq_mix, fast ? 200 : 600, 99);

  print_rule();
  std::printf("engine-level throughput (no serving machinery), %zu "
              "requests, seq mix 12/16/24\n",
              workload.size());
  (void)sequential_rps(*engine, workload);  // warm caches
  const double seq_rps = sequential_rps(*engine, workload);
  std::printf("  sequential forward()     : %8.1f ex/s   <- batch-1 "
              "baseline\n",
              seq_rps);
  for (const int64_t b : {8, 16, 32}) {
    const double rps = batched_rps(*engine, workload, b);
    std::printf("  forward_batch(batch=%-2lld) : %8.1f ex/s   (%.2fx)\n",
                static_cast<long long>(b), rps, rps / seq_rps);
  }

  print_rule();
  std::printf("InferenceServer, closed loop: 16 clients x %d requests "
              "(hw threads: %u)\n",
              requests_per_client, std::thread::hardware_concurrency());
  std::printf("%-8s %-6s %10s %9s %9s %9s %10s %9s\n", "workers", "batch",
              "req/s", "p50 ms", "p95 ms", "p99 ms", "occupancy",
              "vs seq");

  serve::LoadgenConfig lcfg;
  lcfg.num_clients = 16;
  lcfg.requests_per_client = requests_per_client;
  lcfg.seq_len_mix = seq_mix;

  double batch1_rps = 0.0, batched8_rps = 0.0;
  std::vector<double> best_by_workers;
  for (const int64_t workers : {1, 2, 4}) {
    double best = 0.0;
    for (const int64_t max_batch : {1, 8, 16}) {
      serve::ServerConfig scfg;
      scfg.num_workers = static_cast<int>(workers);
      scfg.batcher.max_batch = max_batch;
      scfg.batcher.max_wait = Micros(2000);
      scfg.batcher.bucket_granularity = 8;

      serve::InferenceServer server(registry, "bench", scfg);
      server.start();
      const serve::LoadgenReport lg =
          serve::run_loadgen(server, mcfg, lcfg);
      server.shutdown(/*drain=*/true);
      const serve::ServeStats::Report st = server.stats().report();
      std::printf("%-8lld %-6lld %10.1f %9.2f %9.2f %9.2f %10.2f %8.2fx\n",
                  static_cast<long long>(workers),
                  static_cast<long long>(max_batch), lg.throughput_rps(),
                  st.p50_ms, st.p95_ms, st.p99_ms,
                  st.mean_batch_occupancy, lg.throughput_rps() / seq_rps);
      if (workers == 1 && max_batch == 1) batch1_rps = lg.throughput_rps();
      if (workers == 1 && max_batch == 8) batched8_rps = lg.throughput_rps();
      best = std::max(best, lg.throughput_rps());
    }
    best_by_workers.push_back(best);
  }

  print_rule();
  std::printf("dynamic batching (batch=8) vs sequential batch-1 baseline: "
              "%.2fx  (%s)\n",
              batched8_rps / seq_rps,
              batched8_rps > seq_rps ? "FASTER" : "slower");
  std::printf("dynamic batching (batch=8) vs batch-1 serving:             "
              "%.2fx\n",
              batch1_rps > 0.0 ? batched8_rps / batch1_rps : 0.0);
  std::printf("best throughput by worker count: 1w %.1f, 2w %.1f, 4w %.1f "
              "req/s\n",
              best_by_workers[0], best_by_workers[1], best_by_workers[2]);
  if (std::thread::hardware_concurrency() <= 1)
    std::printf("note: 1 hardware thread — worker scaling needs cores; "
                "expect flat-to-noisy scaling here.\n");
  return 0;
}
