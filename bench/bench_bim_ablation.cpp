// Fig. 4 ablation: BIM Type A (shift at the adder-tree output) vs Type B
// (shift-add per multiplier pair).
//
// The paper states the two are functionally identical and that Type A
// "can save more resources, though this need[s] to rearrange the input
// data". This bench (a) proves bit-exact equivalence over a large random
// sweep, (b) compares modeled resource costs, and (c) measures host-side
// simulation throughput of both variants and both bit modes.
#include <chrono>
#include <cstdio>

#include "accel/bim.h"
#include "accel/resource_model.h"
#include "tensor/rng.h"

using namespace fqbert;
using namespace fqbert::accel;

namespace {

double mac_rate(const Bim& bim, BimMode mode, int64_t macs) {
  Rng rng(1);
  const int lanes = bim.lanes(mode);
  std::vector<int8_t> a(static_cast<size_t>(lanes)), w(a.size());
  for (auto& v : a) v = static_cast<int8_t>(rng.randint(-128, 127));
  for (auto& v : w)
    v = static_cast<int8_t>(mode == BimMode::k8x4 ? rng.randint(-8, 7)
                                                  : rng.randint(-128, 127));
  volatile int64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  int64_t local = 0;
  for (int64_t i = 0; i < macs / lanes; ++i) {
    local += mode == BimMode::k8x4 ? bim.dot_8x4(a, w) : bim.dot_8x8(a, w);
  }
  sink = local;
  (void)sink;
  const auto t1 = std::chrono::steady_clock::now();
  const double sec = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(macs) / sec / 1e6;
}

}  // namespace

int main() {
  std::printf("=== Fig. 4 ablation: BIM Type A vs Type B ===\n\n");

  // (a) Equivalence sweep.
  int64_t checked = 0, mismatches = 0;
  for (int m : {4, 8, 16, 32}) {
    Bim ta(m, BimType::kTypeA);
    Bim tb(m, BimType::kTypeB);
    Rng rng(static_cast<uint64_t>(m));
    for (int trial = 0; trial < 20000; ++trial) {
      std::vector<int8_t> a(static_cast<size_t>(m / 2)), w(a.size());
      for (auto& v : a) v = static_cast<int8_t>(rng.randint(-128, 127));
      for (auto& v : w) v = static_cast<int8_t>(rng.randint(-128, 127));
      const bool s = rng.flip(0.5);
      if (ta.dot_8x8(a, w, s) != tb.dot_8x8(a, w, s)) ++mismatches;
      ++checked;
    }
  }
  std::printf("equivalence sweep: %lld random 8x8 dot products, "
              "%lld mismatches %s\n\n",
              static_cast<long long>(checked),
              static_cast<long long>(mismatches),
              mismatches == 0 ? "(bit-exact)" : "(FAIL)");

  // (b) Resource comparison at the paper's (8,16) point.
  auto cfg_a = AcceleratorConfig::zcu102_8_16();
  auto cfg_b = cfg_a;
  cfg_b.bim_type_a = 0;
  const auto dev = FpgaDevice::zcu102();
  const auto ra = ResourceModel::estimate(cfg_a, dev);
  const auto rb = ResourceModel::estimate(cfg_b, dev);
  std::printf("%-10s %8s %8s %8s\n", "variant", "DSP48E", "FF", "LUT");
  std::printf("%-10s %8lld %8lld %8lld\n", "Type A",
              static_cast<long long>(ra.dsp48), static_cast<long long>(ra.ff),
              static_cast<long long>(ra.lut));
  std::printf("%-10s %8lld %8lld %8lld\n", "Type B",
              static_cast<long long>(rb.dsp48), static_cast<long long>(rb.ff),
              static_cast<long long>(rb.lut));
  std::printf("Type B overhead: +%lld FF, +%lld LUT "
              "(per-pair shift-adders)\n\n",
              static_cast<long long>(rb.ff - ra.ff),
              static_cast<long long>(rb.lut - ra.lut));

  // (c) Host simulation throughput.
  std::printf("%-10s %12s %18s\n", "variant", "mode", "sim MMAC/s (host)");
  for (BimType type : {BimType::kTypeA, BimType::kTypeB}) {
    Bim bim(16, type);
    const char* tname = type == BimType::kTypeA ? "Type A" : "Type B";
    std::printf("%-10s %12s %18.1f\n", tname, "8x4",
                mac_rate(bim, BimMode::k8x4, 32'000'000));
    std::printf("%-10s %12s %18.1f\n", tname, "8x8",
                mac_rate(bim, BimMode::k8x8, 16'000'000));
  }
  std::printf("\n8x8 mode runs at half the MAC rate of 8x4 mode on the "
              "same BIM,\nmatching the paper's bit-split design (M/2 "
              "pairs per cycle).\n");
  return 0;
}
