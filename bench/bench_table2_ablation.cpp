// Table II reproduction: cumulative quantization ablation on synth-SST2.
//
//   paper:  w/a  scale  softmax  layernorm  ->  accuracy
//           -    -      -        -              92.32
//           x    -      -        -              91.63
//           x    x      -        -              91.28
//           x    x      x        -              91.86   <- softmax *helps*
//           x    x      x        x              91.51
//
// Each row quantizes one more part; the model is QAT fine-tuned under
// that configuration and then converted to the integer engine, whose
// accuracy is reported (the engine is what the FPGA executes).
#include "bench_common.h"

using namespace fqbert;
using namespace fqbert::bench;

int main(int argc, char** argv) {
  const bool fast = fast_mode(argc, argv);
  std::printf("=== Table II: quantization ablation on SST-2 ===%s\n\n",
              fast ? " [--fast]" : "");

  TaskData task = make_sst2_task(fast);
  auto float_model = train_float(task, fast);
  const double float_acc = float_model->accuracy(task.eval);

  struct Row {
    bool wa, scale, softmax, layernorm;
  };
  const Row rows[] = {
      {false, false, false, false},
      {true, false, false, false},
      {true, true, false, false},
      {true, true, true, false},
      {true, true, true, true},
  };

  std::printf("%-6s %-6s %-8s %-10s %10s\n", "w/a", "scale", "softmax",
              "layernorm", "accuracy");
  print_rule(46);
  for (const Row& r : rows) {
    double acc;
    if (!r.wa) {
      acc = float_acc;
    } else {
      FqQuantConfig cfg;
      cfg.quantize_weights_acts = true;
      cfg.quantize_scales = r.scale;
      cfg.quantize_softmax = r.softmax;
      cfg.quantize_layernorm = r.layernorm;
      FqBertModel engine = quantize_pipeline(*float_model, task, cfg, fast);
      acc = engine.accuracy(task.eval);
    }
    auto mark = [](bool b) { return b ? "x" : "-"; };
    std::printf("%-6s %-6s %-8s %-10s %10.2f\n", mark(r.wa), mark(r.scale),
                mark(r.softmax), mark(r.layernorm), acc);
  }
  print_rule(46);
  std::printf("paper:  92.32 / 91.63 / 91.28 / 91.86 / 91.51\n");
  std::printf("(note the non-monotone row: quantizing softmax can *improve* "
              "accuracy)\n");
  return 0;
}
