// Multi-tenant router bench: K models served by ONE ModelRouter process
// (one shared worker set, per-model lanes) versus K dedicated
// single-model InferenceServers — the pre-router deployment shape. The
// same closed-loop per-model client streams drive both setups; every
// response from the router is verified bit-identical to the dedicated
// server's response for the same example, and per-model p50/p95 plus
// aggregate throughput are reported for both.
//
//   ./build/bench/bench_multi_model [--fast]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "bench_common.h"
#include "serve/loadgen.h"
#include "serve/router/model_router.h"

namespace {

using namespace fqbert;
using namespace fqbert::bench;
using serve::Micros;

struct ModelSpec {
  std::string name;
  nn::BertConfig config;
  std::shared_ptr<const core::FqBertModel> engine;
};

/// Random-weight calibrated engines: accuracy is irrelevant here, the
/// integer serving path and its cost are shape-driven. Distinct seeds
/// give distinct logits so cross-model routing errors cannot hide.
ModelSpec make_model(const std::string& name, int64_t hidden,
                     int64_t num_heads, int64_t max_seq_len, uint64_t seed) {
  ModelSpec spec;
  spec.name = name;
  spec.config.vocab_size = 256;
  spec.config.hidden = hidden;
  spec.config.num_layers = 2;
  spec.config.num_heads = num_heads;
  spec.config.ffn_dim = hidden * 2;
  spec.config.max_seq_len = max_seq_len;
  spec.config.num_classes = 2;
  Rng rng(seed);
  nn::BertModel model(spec.config, rng);
  core::QatBert qat(model, core::FqQuantConfig::full());
  std::vector<nn::Example> calib;
  Rng data_rng(seed + 1);
  for (int i = 0; i < 12; ++i)
    calib.push_back(
        serve::synth_example(data_rng, 6 + (i % 3) * 4, spec.config));
  qat.calibrate(calib);
  spec.engine = std::make_shared<const core::FqBertModel>(
      core::FqBertModel::convert(qat));
  return spec;
}

struct PerModelResult {
  double p50_ms = 0, p95_ms = 0;
  uint64_t ok = 0;
};

PerModelResult summarize(std::vector<double>& ms) {
  std::sort(ms.begin(), ms.end());
  PerModelResult r;
  r.ok = ms.size();
  if (ms.empty()) return r;
  r.p50_ms = ms[ms.size() / 2];
  r.p95_ms = ms[std::min(ms.size() - 1, ms.size() * 95 / 100)];
  return r;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = fast_mode(argc, argv);
  const int per_model = fast ? 150 : 1000;
  constexpr int kClientsPerModel = 2;

  std::printf("building 3 engines (distinct shapes/weights)...\n");
  std::vector<ModelSpec> models;
  models.push_back(make_model("sst2-small", 32, 2, 32, 11));
  models.push_back(make_model("sst2-wide", 64, 4, 32, 22));
  models.push_back(make_model("mnli-short", 48, 3, 16, 33));
  const size_t K = models.size();

  // Pre-generate identical per-model workloads for both setups.
  std::vector<std::vector<nn::Example>> workloads(K);
  for (size_t m = 0; m < K; ++m) {
    Rng rng(1000 + m);
    for (int i = 0; i < per_model; ++i)
      workloads[m].push_back(serve::synth_example(
          rng, 4 + rng.randint(0, models[m].config.max_seq_len - 4),
          models[m].config));
  }

  serve::BatcherConfig batcher;
  batcher.max_batch = 8;
  batcher.max_wait = Micros(200);

  // -------------------------------------------------------------------
  // Setup A: K dedicated single-model servers, 1 worker each.
  // -------------------------------------------------------------------
  std::vector<serve::EngineRegistry> registries(K);
  std::vector<std::unique_ptr<serve::InferenceServer>> dedicated;
  for (size_t m = 0; m < K; ++m) {
    registries[m].register_model(models[m].name, models[m].engine);
    serve::ServerConfig scfg;
    scfg.num_workers = 1;
    scfg.batcher = batcher;
    dedicated.push_back(std::make_unique<serve::InferenceServer>(
        registries[m], models[m].name, scfg));
    if (!dedicated.back()->start()) return 1;
  }

  std::vector<std::vector<serve::ServeResponse>> dedicated_responses(K);
  std::vector<std::vector<double>> dedicated_ms(K);
  for (size_t m = 0; m < K; ++m) {
    dedicated_responses[m].resize(workloads[m].size());
    dedicated_ms[m].reserve(workloads[m].size());
  }
  double t0 = now_s();
  {
    std::vector<std::thread> threads;
    for (size_t m = 0; m < K; ++m) {
      for (int c = 0; c < kClientsPerModel; ++c) {
        threads.emplace_back([&, m, c] {
          for (size_t i = static_cast<size_t>(c);
               i < workloads[m].size();
               i += kClientsPerModel) {
            const double s = now_s();
            dedicated_responses[m][i] =
                dedicated[m]->submit(workloads[m][i]).get();
            const double ms = (now_s() - s) * 1e3;
            static std::mutex mu;
            std::lock_guard<std::mutex> lock(mu);
            dedicated_ms[m].push_back(ms);
          }
        });
      }
    }
    for (auto& t : threads) t.join();
  }
  const double dedicated_wall = now_s() - t0;
  for (auto& server : dedicated) server->shutdown(/*drain=*/true);

  // -------------------------------------------------------------------
  // Setup B: ONE router process, K lanes, K shared workers.
  // -------------------------------------------------------------------
  serve::EngineRegistry registry;
  for (const ModelSpec& spec : models)
    registry.register_model(spec.name, spec.engine);
  serve::RouterConfig rcfg;
  rcfg.num_workers = static_cast<int>(K);
  rcfg.batcher = batcher;
  serve::ModelRouter router(registry, rcfg);
  for (const ModelSpec& spec : models)
    if (!router.add_model(spec.name)) return 1;
  router.start();

  std::atomic<uint64_t> mismatches{0};
  std::vector<std::vector<double>> router_ms(K);
  t0 = now_s();
  {
    std::vector<std::thread> threads;
    for (size_t m = 0; m < K; ++m) {
      router_ms[m].reserve(workloads[m].size());
      for (int c = 0; c < kClientsPerModel; ++c) {
        threads.emplace_back([&, m, c] {
          for (size_t i = static_cast<size_t>(c);
               i < workloads[m].size();
               i += kClientsPerModel) {
            const double s = now_s();
            const serve::ServeResponse resp =
                router.submit(models[m].name, workloads[m][i]).get();
            const double ms = (now_s() - s) * 1e3;
            // Bit-for-bit against the dedicated server's answer.
            const serve::ServeResponse& ref = dedicated_responses[m][i];
            if (resp.status != serve::RequestStatus::kOk ||
                ref.status != serve::RequestStatus::kOk ||
                resp.logits != ref.logits ||
                resp.predicted != ref.predicted)
              mismatches.fetch_add(1);
            static std::mutex mu;
            std::lock_guard<std::mutex> lock(mu);
            router_ms[m].push_back(ms);
          }
        });
      }
    }
    for (auto& t : threads) t.join();
  }
  const double router_wall = now_s() - t0;
  router.shutdown(/*drain=*/true);

  // -------------------------------------------------------------------
  // Report.
  // -------------------------------------------------------------------
  print_rule();
  std::printf("%zu models x %d requests, %d closed-loop clients per model, "
              "batch %lld, max_wait %lld us (hw threads: %u)\n",
              K, per_model, kClientsPerModel,
              static_cast<long long>(batcher.max_batch),
              static_cast<long long>(batcher.max_wait.count()),
              std::thread::hardware_concurrency());
  print_rule();
  std::printf("%-14s %-26s %-26s\n", "", "K dedicated servers",
              "one router, K lanes");
  std::printf("%-14s %8s %8s %8s %8s %8s %8s\n", "model", "p50 ms",
              "p95 ms", "ok", "p50 ms", "p95 ms", "ok");
  for (size_t m = 0; m < K; ++m) {
    const PerModelResult d = summarize(dedicated_ms[m]);
    const PerModelResult r = summarize(router_ms[m]);
    std::printf("%-14s %8.2f %8.2f %8llu %8.2f %8.2f %8llu\n",
                models[m].name.c_str(), d.p50_ms, d.p95_ms,
                static_cast<unsigned long long>(d.ok), r.p50_ms, r.p95_ms,
                static_cast<unsigned long long>(r.ok));
  }
  print_rule();
  const double total = static_cast<double>(K) * per_model;
  std::printf("aggregate: %.1f req/s dedicated vs %.1f req/s router "
              "(%.2fx); %llu bit-mismatches\n",
              total / dedicated_wall, total / router_wall,
              dedicated_wall / router_wall,
              static_cast<unsigned long long>(mismatches.load()));
  bool balanced = true;
  for (const auto& [name, lane_tier, st] : router.all_stats()) {
    if (!st.accounting_balances()) {
      std::printf("UNBALANCED lane %s@int%d\n", name.c_str(), lane_tier);
      balanced = false;
    }
  }
  std::printf("per-lane accounting: %s\n",
              balanced ? "all balanced" : "MISMATCH");
  return mismatches.load() == 0 && balanced ? 0 : 1;
}
