// Single-request latency: the unified panel-kernel forward() vs the
// seed's scalar reference path.
//
// PR 2 collapsed the single-request path onto the 4-row panel int8
// kernel that previously only the batched serving path used. The
// baseline is the seed scalar path preserved in tests/fq_oracle.h
// (per-call allocations, int_matmul_wt, weight codes resident in int8
// exactly as the seed kept them — narrowed once at setup, never inside
// the timed loop). Per sequence length this measures:
//
//   1. encoder-only latency (the integer stack the panel kernel
//      accelerates — the acceptance metric is >= 2x here);
//   2. end-to-end forward() latency (embed + encoder + float head),
//      which dilutes the win with the CPU-side float stages.
//
// Outputs also include a bit-identity check over the measured inputs —
// speed claims are meaningless if the fast path drifted.
//
//   ./build/bench/bench_single_latency [--fast]
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "fq_oracle.h"
#include "serve/loadgen.h"

namespace {

using namespace fqbert;
using namespace fqbert::bench;
using core::oracle::OracleModel;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void panel_encoder(const core::FqBertModel& engine,
                   const std::vector<int8_t>& x, std::vector<int8_t>& out,
                   int64_t s_len) {
  std::vector<int8_t> a = x, b;
  for (const core::FqEncoderLayer& layer : engine.encoder_layers()) {
    layer.forward(a, b, s_len);
    a.swap(b);
  }
  out = std::move(a);
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = fast_mode(argc, argv);

  std::printf("building engine (fast pipeline)...\n");
  serve::EngineRegistry registry;
  auto engine = pipeline::build_and_register_engine(
      registry, "bench", "sst2", core::FqQuantConfig::full(), /*fast=*/true);
  const OracleModel om(*engine);  // seed scalar baseline (resident codes)
  const nn::BertConfig& mcfg = engine->config();
  std::printf("model: L=%lld hidden=%lld heads=%lld ffn=%lld\n",
              static_cast<long long>(mcfg.num_layers),
              static_cast<long long>(mcfg.hidden),
              static_cast<long long>(mcfg.num_heads),
              static_cast<long long>(mcfg.ffn_dim));

  const int iters = fast ? 60 : 300;
  Rng rng(7);

  print_rule();
  std::printf("encoder-only single-request latency (%d iters/point)\n", iters);
  std::printf("%-8s %14s %14s %9s   %s\n", "seq_len", "scalar us/req",
              "panel us/req", "speedup", "bit-identical");
  double worst = 1e9, geo = 0.0;
  int points = 0;
  for (const int64_t s_len : {1, 2, 3, 4, 6, 8, 12, 16, 24, 32}) {
    const nn::Example ex = serve::synth_example(
        rng, std::max<int64_t>(2, s_len), mcfg);
    const int64_t rows = static_cast<int64_t>(ex.tokens.size());
    const std::vector<int8_t> x = engine->embed(ex);
    std::vector<int8_t> y_scalar, y_panel;

    core::oracle::oracle_encoder(om, x, y_scalar, rows);  // warm
    panel_encoder(*engine, x, y_panel, rows);             // warm
    const bool identical = y_scalar == y_panel;

    // Best-of-3 trials per path: the container shares its single core,
    // so min is the honest steady-state number.
    auto time_us = [&](auto&& fn) {
      double best = 1e30;
      for (int trial = 0; trial < 3; ++trial) {
        const double t0 = now_s();
        for (int i = 0; i < iters; ++i) fn();
        best = std::min(best, (now_s() - t0) * 1e6 / iters);
      }
      return best;
    };
    const double scalar_us = time_us(
        [&] { core::oracle::oracle_encoder(om, x, y_scalar, rows); });
    const double panel_us =
        time_us([&] { panel_encoder(*engine, x, y_panel, rows); });

    const double speedup = scalar_us / panel_us;
    worst = std::min(worst, speedup);
    geo += std::log(speedup);
    ++points;
    std::printf("%-8lld %14.1f %14.1f %8.2fx   %s\n",
                static_cast<long long>(rows), scalar_us, panel_us, speedup,
                identical ? "yes" : "NO — BUG");
  }
  std::printf("geomean %.2fx, worst %.2fx  (acceptance: >= 2x)\n",
              std::exp(geo / points), worst);

  print_rule();
  std::printf("end-to-end forward() latency, seq mix 12/16/24 "
              "(embed + encoder + float head)\n");
  std::vector<nn::Example> mix;
  for (int i = 0; i < (fast ? 100 : 300); ++i)
    mix.push_back(serve::synth_example(
        rng, std::vector<int64_t>{12, 16, 24}[static_cast<size_t>(i % 3)],
        mcfg));
  for (const nn::Example& ex : mix) (void)engine->forward(ex);  // warm
  double t0 = now_s();
  for (const nn::Example& ex : mix)
    (void)core::oracle::oracle_forward(om, ex);
  const double scalar_us = (now_s() - t0) * 1e6 / mix.size();
  t0 = now_s();
  for (const nn::Example& ex : mix) (void)engine->forward(ex);
  const double panel_us = (now_s() - t0) * 1e6 / mix.size();
  std::printf("  scalar reference : %9.1f us/req\n", scalar_us);
  std::printf("  unified forward(): %9.1f us/req  (%.2fx)\n", panel_us,
              scalar_us / panel_us);
  return 0;
}
