// Fig. 5 ablation: the stage/sub-stage dataflow schedule.
//
// Prints the per-stage cycle breakdown of one encoder layer (compute vs
// weight transfer vs exposed stall), then ablates (a) double buffering
// of the weight buffer and (b) the weight-buffer size, showing when the
// off-chip transfer stops being "completely overlapped by computing".
#include <cstdio>

#include "accel/perf_model.h"

using namespace fqbert;
using namespace fqbert::accel;

int main() {
  const nn::BertConfig model = nn::BertConfig::bert_base(2);
  const int64_t seq = 128;

  const auto cfg = AcceleratorConfig::zcu102_8_16();
  const auto dev = FpgaDevice::zcu102();
  PerfModel pm(cfg, dev);

  std::printf("=== Fig. 5: dataflow schedule trace (ZCU102 (8,16)) ===\n\n");
  const LatencyReport rep = pm.estimate(model, seq);
  std::printf("%-12s %10s %10s %8s %10s %6s %10s\n", "stage", "compute",
              "transfer", "stall", "total", "subs", "weight KB");
  for (int i = 0; i < 72; ++i) std::putchar('-');
  std::putchar('\n');
  for (const auto& st : rep.stages) {
    std::printf("%-12s %10lld %10lld %8lld %10lld %6d %10.1f\n",
                st.name.c_str(), static_cast<long long>(st.compute_cycles),
                static_cast<long long>(st.transfer_cycles),
                static_cast<long long>(st.stall_cycles),
                static_cast<long long>(st.total_cycles), st.sub_stages,
                static_cast<double>(st.weight_bytes) / 1024.0);
  }
  for (int i = 0; i < 72; ++i) std::putchar('-');
  std::putchar('\n');
  std::printf("per layer: %lld cycles; 12 layers: %.2f ms @ %.0f MHz "
              "(+%.2f ms CPU side)\n\n",
              static_cast<long long>(rep.cycles_per_layer), rep.fpga_ms,
              cfg.clock_mhz, rep.cpu_side_ms);

  // (a) double-buffering ablation.
  const LatencyReport no_ovl = pm.estimate_no_overlap(model, seq);
  std::printf("double buffering ON : %8.2f ms\n", rep.total_ms);
  std::printf("double buffering OFF: %8.2f ms  (+%.1f%%)\n\n", no_ovl.total_ms,
              100.0 * (no_ovl.total_ms - rep.total_ms) / rep.total_ms);

  // (b) weight-buffer size sweep.
  std::printf("weight-buffer size sweep (overlap on):\n");
  std::printf("%10s %12s %14s\n", "buffer KB", "latency ms", "stall cyc/layer");
  for (int kb : {16, 32, 64, 128, 256, 512, 1024}) {
    AcceleratorConfig c = cfg;
    c.weight_buffer_bytes = static_cast<int64_t>(kb) * 1024;
    const auto r = PerfModel(c, dev).estimate(model, seq);
    int64_t stalls = 0;
    for (const auto& st : r.stages) stalls += st.stall_cycles;
    std::printf("%10d %12.2f %14lld\n", kb, r.total_ms,
                static_cast<long long>(stalls));
  }

  // (c) AXI bandwidth sweep: when does transfer stop hiding?
  std::printf("\nAXI bandwidth sweep (bytes/cycle):\n");
  std::printf("%10s %12s %12s\n", "B/cycle", "latency ms", "bound by");
  for (double bpc : {2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    FpgaDevice d = dev;
    d.axi_bytes_per_cycle = bpc;
    const auto r = PerfModel(cfg, d).estimate(model, seq);
    int64_t stalls = 0;
    for (const auto& st : r.stages) stalls += st.stall_cycles;
    std::printf("%10.0f %12.2f %12s\n", bpc, r.total_ms,
                stalls > r.cycles_per_layer / 10 ? "transfer" : "compute");
  }
  return 0;
}
