// Precision-tier serving bench: ONE logical model (the tuned synthetic
// SST-2 engine) served at several weight bit-widths from one router,
// measuring what each tier costs and what it gives up:
//
//  * per-tier closed-loop serving latency (p50/p95) and throughput;
//  * per-tier resident weight bytes (the int4 derivation must sit at
//    <= half its int8 parent — the bound the narrow-storage layout
//    guarantees);
//  * per-tier synthetic-task accuracy (tier derivation trades accuracy
//    for memory; the table shows the trade explicitly);
//  * zero-copy page sharing: two processes load_mapped() the SAME
//    FQBERT02 file, fault in every weight page, and read their own
//    /proc/self/smaps for the mapping — with both alive, each sees
//    Pss ~= Rss/2, the kernel's own statement that the weight pages
//    are physically shared.
//
//   ./build/bench/bench_precision_tiers [--fast]
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "bench_common.h"
#include "serve/loadgen.h"
#include "serve/router/model_router.h"

namespace {

using namespace fqbert;
using namespace fqbert::bench;
using serve::Micros;

struct Pct {
  double p50_ms = 0, p95_ms = 0;
};

Pct summarize(std::vector<double>& ms) {
  std::sort(ms.begin(), ms.end());
  Pct r;
  if (ms.empty()) return r;
  r.p50_ms = ms[ms.size() / 2];
  r.p95_ms = ms[std::min(ms.size() - 1, ms.size() * 95 / 100)];
  return r;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Rss/Pss (kB) of every /proc/self/smaps mapping whose path contains
/// `needle`. Pss is proportional: a page mapped by N processes
/// contributes size/N — the kernel's own sharing accounting.
struct MapUsage {
  long rss_kb = 0, pss_kb = 0;
};

MapUsage smaps_usage(const std::string& needle) {
  MapUsage usage;
  std::ifstream smaps("/proc/self/smaps");
  std::string line;
  bool in_target = false;
  while (std::getline(smaps, line)) {
    // Mapping headers look like "addr-addr perms off dev inode path";
    // field lines like "Rss:   123 kB". Headers always contain '-'
    // before the first space, field lines a ':'.
    const bool header = line.find('-') != std::string::npos &&
                        line.find('-') < line.find(' ');
    if (header) {
      in_target = line.find(needle) != std::string::npos;
      continue;
    }
    if (!in_target) continue;
    long kb = 0;
    if (std::sscanf(line.c_str(), "Rss: %ld kB", &kb) == 1)
      usage.rss_kb += kb;
    else if (std::sscanf(line.c_str(), "Pss: %ld kB", &kb) == 1)
      usage.pss_kb += kb;
  }
  return usage;
}

/// Fork `n` children that each mmap-load `path`, fault in every weight
/// page (full forwards), rendezvous so ALL mappings are alive at once,
/// then report their own Rss/Pss for the mapping. Returns one usage
/// row per child.
std::vector<MapUsage> measure_shared_mapping(const std::string& path,
                                             const nn::BertConfig& config,
                                             int n) {
  struct Child {
    pid_t pid = -1;
    int ready_fd = -1, go_fd = -1, result_fd = -1;
  };
  std::vector<Child> children(static_cast<size_t>(n));
  for (Child& child : children) {
    int ready[2], go[2], result[2];
    if (pipe(ready) != 0 || pipe(go) != 0 || pipe(result) != 0) return {};
    const pid_t pid = fork();
    if (pid < 0) return {};
    if (pid == 0) {
      close(ready[0]);
      close(go[1]);
      close(result[0]);
      {
        const core::FqBertModel engine = core::FqBertModel::load_mapped(path);
        // Touch every weight page: forwards sweep all layer weights.
        Rng rng(99);
        for (int i = 0; i < 3; ++i)
          (void)engine.forward(serve::synth_example(rng, 12, config));
        char token = 'r';
        if (write(ready[1], &token, 1) != 1) _exit(2);
        if (read(go[0], &token, 1) != 1) _exit(3);
        const MapUsage usage = smaps_usage(path);
        if (write(result[1], &usage, sizeof(usage)) != sizeof(usage))
          _exit(4);
        // Hold the mapping until EVERY sibling has measured — exiting
        // here would unmap and hand the survivor sole ownership of the
        // pages (Pss == Rss), erasing the evidence.
        if (read(go[0], &token, 1) != 1) _exit(5);
      }
      _exit(0);
    }
    close(ready[1]);
    close(go[0]);
    close(result[1]);
    child.pid = pid;
    child.ready_fd = ready[0];
    child.go_fd = go[1];
    child.result_fd = result[0];
  }
  // Barrier: every child has mapped + touched before anyone measures,
  // so Pss reflects the fully shared state.
  for (Child& child : children) {
    char token = 0;
    if (read(child.ready_fd, &token, 1) != 1) return {};
  }
  for (Child& child : children) {
    char token = 'g';
    if (write(child.go_fd, &token, 1) != 1) return {};
  }
  std::vector<MapUsage> rows;
  for (Child& child : children) {
    MapUsage usage;
    if (read(child.result_fd, &usage, sizeof(usage)) == sizeof(usage))
      rows.push_back(usage);
  }
  // All measured: release the mappings and reap.
  for (Child& child : children) {
    char token = 'x';
    (void)!write(child.go_fd, &token, 1);
    close(child.ready_fd);
    close(child.go_fd);
    close(child.result_fd);
    int status = 0;
    waitpid(child.pid, &status, 0);
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = fast_mode(argc, argv);
  const int per_tier = fast ? 200 : 1000;
  constexpr int kClients = 2;
  const std::vector<int> kTiers = {8, 4, 2};

  std::printf("training + quantizing the int8 parent (sst2%s)...\n",
              fast ? ", fast" : "");
  TaskData task = make_sst2_task(fast);
  auto float_model = train_float(task, fast);
  FqQuantConfig qcfg = FqQuantConfig::full();
  qcfg.weight_bits = 8;
  auto parent = std::make_shared<const core::FqBertModel>(
      quantize_pipeline(*float_model, task, qcfg, fast));
  const nn::BertConfig config = parent->config();

  // Every lower tier is DERIVED from the int8 parent — quantizer range
  // math on the resident codes, exactly what the registry mints.
  struct TierRow {
    int bits = 0;
    std::shared_ptr<const core::FqBertModel> engine;
    double accuracy = 0;
    size_t weight_bytes = 0;
    Pct latency;
    uint64_t ok = 0;
  };
  std::vector<TierRow> rows;
  for (const int bits : kTiers) {
    TierRow row;
    row.bits = bits;
    row.engine = bits == 8 ? parent
                           : std::make_shared<const core::FqBertModel>(
                                 parent->derive_tier(bits));
    row.accuracy = row.engine->accuracy(task.eval);
    row.weight_bytes = row.engine->resident_weight_bytes();
    rows.push_back(std::move(row));
  }

  // One router, one model name, one lane per tier.
  serve::EngineRegistry registry;
  registry.register_model("sst2", parent);
  for (const int bits : kTiers)
    if (bits != 8 && !registry.register_derived("sst2", bits)) return 1;
  serve::RouterConfig rcfg;
  rcfg.num_workers = 2;
  rcfg.batcher.max_batch = 8;
  rcfg.batcher.max_wait = Micros(200);
  serve::ModelRouter router(registry, rcfg);
  if (!router.add_model("sst2") || !router.start()) return 1;

  // Identical pre-generated workload per tier: the latency delta
  // between rows is the tier, nothing else.
  std::vector<nn::Example> workload;
  {
    Rng rng(424);
    for (int i = 0; i < per_tier; ++i)
      workload.push_back(serve::synth_example(
          rng, 4 + rng.randint(0, config.max_seq_len - 4), config));
  }
  std::atomic<uint64_t> wrong_tier{0};
  for (TierRow& row : rows) {
    std::vector<double> ms;
    ms.reserve(workload.size());
    std::mutex ms_mu;
    std::atomic<uint64_t> ok{0};
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        for (size_t i = static_cast<size_t>(c); i < workload.size();
             i += kClients) {
          const double s = now_s();
          const serve::ServeResponse resp =
              router.submit("sst2", workload[i], std::nullopt, nullptr, 0,
                            row.bits)
                  .get();
          const double wall = (now_s() - s) * 1e3;
          if (resp.status == serve::RequestStatus::kOk) {
            ok.fetch_add(1);
            if (resp.tier != row.bits) wrong_tier.fetch_add(1);
          }
          std::lock_guard<std::mutex> lock(ms_mu);
          ms.push_back(wall);
        }
      });
    }
    for (auto& t : threads) t.join();
    row.latency = summarize(ms);
    row.ok = ok.load();
  }
  router.shutdown(/*drain=*/true);
  bool balanced = true;
  for (const auto& [name, tier, st] : router.all_stats())
    if (!st.accounting_balances()) {
      std::printf("UNBALANCED lane %s@int%d\n", name.c_str(), tier);
      balanced = false;
    }

  // ---------------------------------------------------------------
  // Zero-copy sharing: two processes, one FQBERT02 file.
  // ---------------------------------------------------------------
  const std::string mapped_path = "/tmp/fqbert_bench_tiers_int8.fq2";
  if (!parent->save_mapped(mapped_path)) return 1;
  const std::vector<MapUsage> shared =
      measure_shared_mapping(mapped_path, config, 2);
  std::remove(mapped_path.c_str());

  // ---------------------------------------------------------------
  // Report.
  // ---------------------------------------------------------------
  print_rule();
  std::printf("one model, %zu tiers, %d requests/tier, %d closed-loop "
              "clients, batch %lld\n",
              kTiers.size(), per_tier, kClients,
              static_cast<long long>(rcfg.batcher.max_batch));
  print_rule();
  std::printf("%-6s %10s %12s %10s %10s %8s\n", "tier", "accuracy",
              "weights KB", "p50 ms", "p95 ms", "ok");
  const size_t int8_bytes = rows.front().weight_bytes;
  size_t int4_bytes = int8_bytes;
  for (const TierRow& row : rows) {
    if (row.bits == 4) int4_bytes = row.weight_bytes;
    std::printf("int%-3d %9.1f%% %12.1f %10.3f %10.3f %8llu\n", row.bits,
                row.accuracy,
                static_cast<double>(row.weight_bytes) / 1024.0,
                row.latency.p50_ms, row.latency.p95_ms,
                static_cast<unsigned long long>(row.ok));
  }
  print_rule();
  const bool memory_bound = int4_bytes * 2 <= int8_bytes;
  std::printf("int4 resident weights: %.1f%% of int8 (bound: <= 50%%) %s\n",
              100.0 * static_cast<double>(int4_bytes) /
                  static_cast<double>(int8_bytes),
              memory_bound ? "OK" : "VIOLATED");

  bool pages_shared = shared.size() == 2;
  for (size_t i = 0; i < shared.size(); ++i) {
    std::printf("process %zu mapping: Rss %ld kB, Pss %ld kB\n", i + 1,
                shared[i].rss_kb, shared[i].pss_kb);
    // Fully private would read Pss == Rss; two sharers read ~Rss/2.
    // 0.75 leaves headroom for the few pages only one process touched.
    if (shared[i].rss_kb <= 0 ||
        static_cast<double>(shared[i].pss_kb) >
            0.75 * static_cast<double>(shared[i].rss_kb))
      pages_shared = false;
  }
  std::printf("mmap page sharing (Pss ~= Rss/2 with 2 processes): %s\n",
              pages_shared ? "OK" : "NOT SHARED");
  std::printf("tier routing: %llu responses served on the wrong tier\n",
              static_cast<unsigned long long>(wrong_tier.load()));

  return balanced && memory_bound && pages_shared && wrong_tier.load() == 0
             ? 0
             : 1;
}
