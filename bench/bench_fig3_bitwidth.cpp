// Fig. 3 reproduction: impact of the weight quantization bitwidth on
// accuracy, with tuned clip thresholds (CLIP) vs plain abs-max
// (NO_CLIP), on synth-SST2 and synth-MNLI.
//
//   paper (SST-2):  32: 92.32/92.32  8: 91.74/91.28  6: 92.09/91.86
//                    4: 91.63/89.33  2: 83.26/77.64   (CLIP/NO_CLIP)
//   paper (MNLI):   32: 84.19/84.19  8: 83.11/83.51  6: 82.89/82.80
//                    4: 83.21/79.91  2: 71.90/48.58
//
// Expected shape: flat until ~6 bits, small drop at 4, collapse at 2;
// CLIP increasingly important as bits shrink.
#include "bench_common.h"

using namespace fqbert;
using namespace fqbert::bench;

namespace {

double accuracy_at(BertModel& float_model, const TaskData& task, int bits,
                   quant::ClipMode clip, bool fast) {
  if (bits == 32) return float_model.accuracy(task.eval);
  FqQuantConfig cfg;  // weights/activations only, like Fig. 3
  cfg.weight_bits = bits;
  cfg.clip = clip;
  cfg.clip_percentile = bits <= 4 ? 0.995 : 0.999;
  auto model = clone_model(float_model, float_model.config());
  QatBert qat(*model, cfg);
  const double acc = qat_finetune(qat, task, fast);
  return acc;
}

void run_task(const TaskData& task, bool fast) {
  std::printf("[%s]\n", task.name.c_str());
  auto float_model = train_float(task, fast);
  std::printf("%-8s %10s %10s\n", "bits", "CLIP", "NO_CLIP");
  print_rule(32);
  for (int bits : {32, 8, 6, 4, 2}) {
    const double with_clip = accuracy_at(*float_model, task, bits,
                                         quant::ClipMode::kPercentile, fast);
    const double no_clip = bits == 32
                               ? with_clip
                               : accuracy_at(*float_model, task, bits,
                                             quant::ClipMode::kNone, fast);
    std::printf("%-8d %10.2f %10.2f\n", bits, with_clip, no_clip);
  }
  print_rule(32);
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = fast_mode(argc, argv);
  std::printf("=== Fig. 3: accuracy vs weight quantization bitwidth ===\n");
  std::printf("(QAT fine-tuning from the float model at each bitwidth; "
              "activations stay 8-bit)%s\n\n",
              fast ? " [--fast]" : "");
  run_task(make_sst2_task(fast), fast);
  std::printf("\n");
  run_task(make_mnli_task(fast), fast);
  std::printf(
      "\npaper shape: accuracy flat to ~6 bits, drops at 4, collapses at 2;\n"
      "CLIP beats NO_CLIP and the gap widens as bitwidth shrinks.\n");
  return 0;
}
