// Shard proxy overhead and correctness: K models split across 2
// backend TransportServers behind one ShardProxy must be bit-identical
// to ONE ModelRouter holding all K models, and the added hop (client ->
// proxy -> backend -> proxy -> client vs client -> backend) is
// measured. Also reports failover behavior: one backend is killed
// mid-run and every request for a replicated model must still succeed.
//
//   ./build/bench/bench_shard_proxy [--fast]
#include <algorithm>
#include <chrono>

#include "bench_common.h"
#include "serve/loadgen.h"
#include "serve/net/transport_client.h"
#include "serve/net/transport_server.h"
#include "serve/router/model_router.h"
#include "serve/shard/shard_proxy.h"

namespace {

using namespace fqbert;
using namespace fqbert::bench;
using serve::Micros;

nn::BertConfig tiny_config() {
  nn::BertConfig c;
  c.vocab_size = 128;
  c.hidden = 16;
  c.num_layers = 2;
  c.num_heads = 2;
  c.ffn_dim = 32;
  c.max_seq_len = 32;
  c.num_classes = 2;
  return c;
}

std::shared_ptr<const core::FqBertModel> build_engine(uint64_t seed) {
  const nn::BertConfig config = tiny_config();
  Rng rng(seed);
  nn::BertModel model(config, rng);
  core::QatBert qat(model, core::FqQuantConfig::full());
  std::vector<nn::Example> calib;
  Rng data_rng(seed * 131 + 3);
  for (int i = 0; i < 12; ++i)
    calib.push_back(serve::synth_example(data_rng, 4 + (i % 3) * 6, config));
  qat.calibrate(calib);
  return std::make_shared<const core::FqBertModel>(
      core::FqBertModel::convert(qat));
}

struct BackendHost {
  serve::EngineRegistry registry;
  std::unique_ptr<serve::ModelRouter> router;
  std::unique_ptr<serve::net::TransportServer> transport;
  bool stopped = false;

  explicit BackendHost(
      const std::vector<std::pair<
          std::string, std::shared_ptr<const core::FqBertModel>>>& models) {
    serve::RouterConfig rcfg;
    rcfg.num_workers = 1;
    rcfg.batcher.max_batch = 8;
    rcfg.batcher.max_wait = Micros(0);
    router = std::make_unique<serve::ModelRouter>(registry, rcfg);
    for (const auto& [name, engine] : models) {
      registry.register_model(name, engine);
      router->add_model(name);
    }
    router->start();
    serve::net::TransportConfig tcfg;
    tcfg.port = 0;
    transport = std::make_unique<serve::net::TransportServer>(*router, tcfg);
    transport->start();
  }

  void kill() {
    if (stopped) return;
    transport->stop();
    router->shutdown(/*drain=*/true);
    stopped = true;
  }
  ~BackendHost() { kill(); }
};

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double p50(std::vector<double>& us) {
  if (us.empty()) return 0.0;
  std::sort(us.begin(), us.end());
  return us[us.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = fast_mode(argc, argv);
  const int requests = fast ? 300 : 2000;
  const nn::BertConfig config = tiny_config();

  std::printf("building 3 tiny engines (random-weight, calibrated)...\n");
  auto e0 = build_engine(42), e1 = build_engine(43), e2 = build_engine(44);

  // Reference: ONE router holding all 3 models, fronted by a transport.
  serve::EngineRegistry ref_registry;
  ref_registry.register_model("m0", e0);
  ref_registry.register_model("m1", e1);
  ref_registry.register_model("m2", e2);
  serve::RouterConfig rcfg;
  rcfg.num_workers = 1;
  rcfg.batcher.max_batch = 8;
  rcfg.batcher.max_wait = Micros(0);
  serve::ModelRouter reference(ref_registry, rcfg);
  reference.add_model("m0");
  reference.add_model("m1");
  reference.add_model("m2");
  reference.start();
  serve::net::TransportConfig ref_tcfg;
  ref_tcfg.port = 0;
  serve::net::TransportServer ref_transport(reference, ref_tcfg);
  if (!ref_transport.start()) return 1;

  // Shard: m0+m1 on backend A, m1+m2 on backend B (m1 replicated),
  // one proxy in front.
  BackendHost a({{"m0", e0}, {"m1", e1}});
  BackendHost b({{"m1", e1}, {"m2", e2}});
  serve::shard::ShardProxyConfig pcfg;
  pcfg.health_interval = Micros(100'000);
  serve::shard::ShardProxy proxy(pcfg);
  if (!proxy.add_backend("127.0.0.1", a.transport->port(), {"m0", "m1"}) ||
      !proxy.add_backend("127.0.0.1", b.transport->port(), {"m1", "m2"}) ||
      !proxy.start())
    return 1;

  const char* models[3] = {"m0", "m1", "m2"};
  std::vector<nn::Example> workload;
  Rng rng(1234);
  const std::vector<int64_t> mix = {12, 16, 24};
  for (int i = 0; i < requests; ++i)
    workload.push_back(serve::synth_example(rng, rng.choice(mix), config));

  print_rule();
  std::printf("closed-loop single client, %d requests round-robin over "
              "m0/m1/m2, 2 backends + proxy vs 1 router\n",
              requests);

  serve::net::TransportClient direct, proxied;
  if (!direct.connect("127.0.0.1", ref_transport.port()) ||
      !proxied.connect("127.0.0.1", proxy.port())) {
    std::fprintf(stderr, "connect failed\n");
    return 1;
  }
  for (int i = 0; i < 30; ++i) {  // warm both paths + pooled conns
    (void)direct.call(workload[static_cast<size_t>(i)], std::nullopt,
                      models[i % 3]);
    (void)proxied.call(workload[static_cast<size_t>(i)], std::nullopt,
                       models[i % 3]);
  }

  // (a) straight to the single router.
  std::vector<double> direct_us;
  std::vector<serve::ServeResponse> direct_responses;
  direct_us.reserve(workload.size());
  direct_responses.reserve(workload.size());
  uint64_t failures = 0;
  for (size_t i = 0; i < workload.size(); ++i) {
    const double s = now_s();
    const auto resp =
        direct.call(workload[i], std::nullopt, models[i % 3]);
    direct_us.push_back((now_s() - s) * 1e6);
    if (!resp || resp->status != serve::RequestStatus::kOk) {
      ++failures;
      direct_responses.emplace_back();
      continue;
    }
    direct_responses.push_back(*resp);
  }

  // (b) through the proxy, verifying bit-identical logits.
  std::vector<double> proxy_us;
  proxy_us.reserve(workload.size());
  uint64_t mismatches = 0;
  for (size_t i = 0; i < workload.size(); ++i) {
    const double s = now_s();
    const auto resp =
        proxied.call(workload[i], std::nullopt, models[i % 3]);
    proxy_us.push_back((now_s() - s) * 1e6);
    if (!resp || resp->status != serve::RequestStatus::kOk) {
      ++failures;
      continue;
    }
    if (resp->logits != direct_responses[i].logits ||
        resp->predicted != direct_responses[i].predicted)
      ++mismatches;
  }

  // (c) failover drill: kill backend A mid-stream; every m1 request
  // (replicated on B) must still succeed.
  const int drill = fast ? 60 : 300;
  uint64_t drill_failures = 0;
  for (int i = 0; i < drill; ++i) {
    if (i == drill / 3) a.kill();
    const auto resp = proxied.call(workload[static_cast<size_t>(i)],
                                   std::nullopt, "m1");
    if (!resp || resp->status != serve::RequestStatus::kOk)
      ++drill_failures;
  }
  const serve::shard::ShardProxy::Counters counters = proxy.counters();

  proxy.stop();
  a.kill();
  b.kill();
  ref_transport.stop();
  reference.shutdown(/*drain=*/true);

  const double direct_p50 = p50(direct_us);
  const double proxy_p50 = p50(proxy_us);
  print_rule();
  std::printf("%-26s %10s\n", "path", "p50 us");
  std::printf("%-26s %10.1f\n", "client -> router", direct_p50);
  std::printf("%-26s %10.1f\n", "client -> proxy -> router", proxy_p50);
  print_rule();
  std::printf("proxy hop: %+.1f us p50 (%.2fx); %llu mismatches, %llu "
              "transport failures\n",
              proxy_p50 - direct_p50,
              direct_p50 > 0 ? proxy_p50 / direct_p50 : 0.0,
              static_cast<unsigned long long>(mismatches),
              static_cast<unsigned long long>(failures));
  std::printf("failover drill: %d m1 requests across a backend death, %llu "
              "client-visible failures (proxy: %llu failovers, %llu "
              "exhausted)\n",
              drill, static_cast<unsigned long long>(drill_failures),
              static_cast<unsigned long long>(counters.failovers),
              static_cast<unsigned long long>(counters.exhausted));
  const bool ok = mismatches == 0 && failures == 0 && drill_failures == 0 &&
                  counters.failovers >= 1;
  if (!ok) std::printf("FAIL\n");
  return ok ? 0 : 1;
}
