// Shared helpers for the table/figure reproduction benches. The actual
// workflow (task construction, training, QAT, conversion) lives in the
// pipeline library (src/pipeline); this header only adds bench-side
// conveniences.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "pipeline/pipeline.h"

namespace fqbert::bench {

using namespace fqbert::pipeline;  // NOLINT: bench TU convenience

/// --fast on the command line shrinks datasets/epochs ~4x for smoke runs.
inline bool fast_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--fast") == 0) return true;
  return std::getenv("FQBERT_FAST") != nullptr;
}

inline void print_rule(int width = 72) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace fqbert::bench
