// Table IV reproduction: latency, power and energy efficiency of CPU,
// GPU, and the two FPGA accelerators (batch 1, seq len 128).
//
//   paper:            CPU      GPU      ZCU102   ZCU111
//   Latency (ms)      145.06   27.84    43.89    23.79
//   Power (W)         65       143      9.8      13.2
//   fps/W             0.11     0.25     2.32     3.18
//   => 28.91x over CPU, 12.72x over GPU (ZCU111)
#include <cstdio>

#include "accel/accelerator.h"
#include "platform/platform.h"

using namespace fqbert;

int main() {
  const nn::BertConfig model = nn::BertConfig::bert_base(2);
  const int64_t seq = 128;
  const double flops = platform::bert_flops(model, seq);

  const auto cpu = platform::PlatformModel::cpu_i7_8700();
  const auto gpu = platform::PlatformModel::gpu_k80();
  const auto z102 = accel::evaluate(accel::AcceleratorConfig::zcu102_8_16(),
                                    accel::FpgaDevice::zcu102(), model, seq);
  const auto z111 = accel::evaluate(accel::AcceleratorConfig::zcu111_16_16(),
                                    accel::FpgaDevice::zcu111(), model, seq);

  std::printf("=== Table IV: performance comparison on CPU, GPU, FPGA ===\n");
  std::printf("(BERT-base, batch 1, seq len 128; %.1f GFLOPs/inference)\n\n",
              flops / 1e9);
  std::printf("%-14s %10s %10s %10s %10s\n", "", "CPU", "GPU", "ZCU102",
              "ZCU111");
  for (int i = 0; i < 58; ++i) std::putchar('-');
  std::putchar('\n');
  std::printf("%-14s %10.2f %10.2f %10.2f %10.2f\n", "Latency(ms)",
              cpu.latency_ms(flops), gpu.latency_ms(flops),
              z102.latency.total_ms, z111.latency.total_ms);
  std::printf("%-14s %10.1f %10.1f %10.1f %10.1f\n", "Power(W)", cpu.power_w,
              gpu.power_w, z102.power_w, z111.power_w);
  std::printf("%-14s %10.2f %10.2f %10.2f %10.2f\n", "fps/W",
              cpu.fps_per_w(flops), gpu.fps_per_w(flops), z102.fps_per_w,
              z111.fps_per_w);
  for (int i = 0; i < 58; ++i) std::putchar('-');
  std::putchar('\n');
  std::printf("paper:         145.06/65/0.11  27.84/143/0.25  "
              "43.89/9.8/2.32  23.79/13.2/3.18\n\n");

  std::printf("ZCU111 vs CPU: %.2fx latency, %.2fx fps/W "
              "(paper: 6.10x, 28.91x)\n",
              cpu.latency_ms(flops) / z111.latency.total_ms,
              z111.fps_per_w / cpu.fps_per_w(flops));
  std::printf("ZCU111 vs GPU: %.2fx latency, %.2fx fps/W "
              "(paper: 1.17x, 12.72x)\n",
              gpu.latency_ms(flops) / z111.latency.total_ms,
              z111.fps_per_w / gpu.fps_per_w(flops));
  return 0;
}
