// Host kernel microbenchmarks (google-benchmark): float vs integer
// arithmetic for the operations FQ-BERT quantizes. These are the
// measured companions to the analytical platform models — they show the
// *mechanism* behind the paper's efficiency claims (narrow integer
// arithmetic is cheaper than fp32) on real hardware we do have.
#include <benchmark/benchmark.h>

#include "accel/bim.h"
#include "core/int_kernels.h"
#include "quant/int_layernorm.h"
#include "quant/int_softmax.h"
#include "tensor/tensor_ops.h"

namespace {

using namespace fqbert;

void BM_FloatMatmul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a(Shape{n, n}), b(Shape{n, n}), c;
  fill_normal(a, rng);
  fill_normal(b, rng);
  for (auto _ : state) {
    matmul_bt(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_FloatMatmul)->Arg(64)->Arg(128)->Arg(256);

void BM_Int8Matmul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  std::vector<int8_t> a(static_cast<size_t>(n * n)), w(a.size());
  for (auto& v : a) v = static_cast<int8_t>(rng.randint(-128, 127));
  for (auto& v : w) v = static_cast<int8_t>(rng.randint(-8, 7));
  std::vector<int32_t> acc;
  for (auto _ : state) {
    core::int_matmul_wt(a, w, acc, n, n, n);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Int8Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_FloatSoftmaxRow(benchmark::State& state) {
  const int64_t cols = state.range(0);
  Rng rng(3);
  std::vector<float> x(static_cast<size_t>(cols)), out(x.size());
  for (auto& v : x) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    quant::softmax_reference(x.data(), out.data(), cols);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * cols);
}
BENCHMARK(BM_FloatSoftmaxRow)->Arg(128)->Arg(512);

void BM_IntLutSoftmaxRow(benchmark::State& state) {
  const int64_t cols = state.range(0);
  Rng rng(4);
  quant::IntSoftmax sm(64.0);
  std::vector<int32_t> x(static_cast<size_t>(cols)), out(x.size());
  for (auto& v : x) v = static_cast<int32_t>(rng.randint(-200, 200));
  for (auto _ : state) {
    sm.apply_row(x.data(), out.data(), cols);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * cols);
}
BENCHMARK(BM_IntLutSoftmaxRow)->Arg(128)->Arg(512);

void BM_IntLayerNormRow(benchmark::State& state) {
  const int64_t h = state.range(0);
  Rng rng(5);
  std::vector<float> gamma(static_cast<size_t>(h), 1.0f);
  std::vector<float> beta(static_cast<size_t>(h), 0.0f);
  quant::IntLayerNorm ln(gamma, beta, 40.0);
  std::vector<int32_t> x(static_cast<size_t>(h));
  for (auto& v : x) v = static_cast<int32_t>(rng.randint(-200, 200));
  std::vector<int8_t> out(static_cast<size_t>(h));
  for (auto _ : state) {
    ln.apply_row(x.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * h);
}
BENCHMARK(BM_IntLayerNormRow)->Arg(768);

void BM_BimDot8x4(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  accel::Bim bim(m, accel::BimType::kTypeA);
  Rng rng(6);
  std::vector<int8_t> a(768), w(768);
  for (auto& v : a) v = static_cast<int8_t>(rng.randint(-128, 127));
  for (auto& v : w) v = static_cast<int8_t>(rng.randint(-8, 7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bim.dot(a, w, accel::BimMode::k8x4));
  }
  state.SetItemsProcessed(state.iterations() * 768);
}
BENCHMARK(BM_BimDot8x4)->Arg(8)->Arg(16);

void BM_BimDot8x8(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  accel::Bim bim(m, accel::BimType::kTypeA);
  Rng rng(7);
  std::vector<int8_t> a(768), w(768);
  for (auto& v : a) v = static_cast<int8_t>(rng.randint(-128, 127));
  for (auto& v : w) v = static_cast<int8_t>(rng.randint(-128, 127));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bim.dot(a, w, accel::BimMode::k8x8));
  }
  state.SetItemsProcessed(state.iterations() * 768);
}
BENCHMARK(BM_BimDot8x8)->Arg(8)->Arg(16);

void BM_Requantize(benchmark::State& state) {
  Rng rng(8);
  const int64_t n = 768;
  std::vector<int32_t> acc(static_cast<size_t>(n)), bias(acc.size(), 3);
  for (auto& v : acc) v = static_cast<int32_t>(rng.randint(-100000, 100000));
  const auto rq = quant::Requantizer::from_scale(0.0021);
  std::vector<int8_t> out;
  for (auto _ : state) {
    core::requantize_i8(acc, bias, rq, out, 1, n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Requantize);

}  // namespace

BENCHMARK_MAIN();
