// Extension study (beyond the paper's fixed seq len 128): latency and
// energy efficiency across sequence lengths and effective batch sizes,
// on all three accelerator operating points plus the CPU/GPU baselines.
//
// The paper evaluates only batch 1 / seq 128; this sweep shows where the
// attention stages (quadratic in S) overtake the FFN stages (linear in
// S), and how the platform ranking shifts with workload size — the
// deployment questions an edge user asks next.
#include <cstdio>

#include "accel/accelerator.h"
#include "platform/platform.h"

using namespace fqbert;
using namespace fqbert::accel;

int main() {
  const nn::BertConfig model = nn::BertConfig::bert_base(2);
  const auto cpu = platform::PlatformModel::cpu_i7_8700();
  const auto gpu = platform::PlatformModel::gpu_k80();

  std::printf("=== sequence-length sweep (BERT-base, batch 1) ===\n\n");
  std::printf("%6s %12s %12s %12s %12s %14s\n", "seq", "CPU ms", "GPU ms",
              "ZCU102 ms", "ZCU111 ms", "attn share");
  for (int64_t s : {32, 64, 128, 256, 384, 512}) {
    nn::BertConfig m = model;
    m.max_seq_len = s;
    const double flops = platform::bert_flops(m, s);
    const auto z102 = PerfModel(AcceleratorConfig::zcu102_8_16(),
                                FpgaDevice::zcu102())
                          .estimate(m, s);
    const auto z111 = PerfModel(AcceleratorConfig::zcu111_16_16(),
                                FpgaDevice::zcu111())
                          .estimate(m, s);
    // Attention share of compute cycles (QK^T + softmax + Attn*V).
    int64_t attn = 0, total = 0;
    for (const auto& st : z102.stages) {
      total += st.compute_cycles;
      if (st.name == "Q*K^T" || st.name == "Softmax" || st.name == "Attn*V")
        attn += st.compute_cycles;
    }
    std::printf("%6lld %12.2f %12.2f %12.2f %12.2f %13.1f%%\n",
                static_cast<long long>(s), cpu.latency_ms(flops),
                gpu.latency_ms(flops), z102.total_ms, z111.total_ms,
                100.0 * static_cast<double>(attn) / static_cast<double>(total));
  }

  std::printf("\n=== throughput scaling: batched streams ===\n");
  std::printf("(batch B processed back-to-back; FPGA keeps batch-1 latency "
              "per item,\n the GPU amortizes launch overhead and gains "
              "utilization with B)\n\n");
  std::printf("%6s %16s %16s %16s\n", "B", "GPU fps", "ZCU111 fps",
              "ZCU111/GPU fps/W");
  const double flops = platform::bert_flops(model, 128);
  const auto z111 = PerfModel(AcceleratorConfig::zcu111_16_16(),
                              FpgaDevice::zcu111())
                        .estimate(model, 128);
  const double z111_power = PowerModel::estimate_w(
      AcceleratorConfig::zcu111_16_16(), FpgaDevice::zcu111());
  for (int b : {1, 2, 4, 8, 16, 32}) {
    // GPU batch model: efficiency grows toward ~55% of peak with batch.
    const double gpu_eff = 0.195 + (0.55 - 0.195) *
                                       (1.0 - 1.0 / static_cast<double>(b));
    const double gpu_ms =
        flops * b / (gpu.peak_gflops * 1e9 * gpu_eff) * 1e3 + 1.2;
    const double gpu_fps = 1000.0 * b / gpu_ms;
    const double z_fps = 1000.0 / z111.total_ms;  // latency-bound device
    std::printf("%6d %16.1f %16.1f %16.2f\n", b, gpu_fps, z_fps,
                (z_fps / z111_power) / (gpu_fps / gpu.power_w));
  }
  std::printf("\nThe FPGA's fps/W advantage is a batch-1 (latency-bound, "
              "edge) result;\nlarge batches let the GPU close the "
              "efficiency gap — consistent with the\npaper's framing of "
              "edge inference.\n");
  return 0;
}
