// Table I reproduction: accuracy of FQ-BERT (w4/a8, everything
// quantized) vs the float baseline on synth-SST2, synth-MNLI (matched)
// and synth-MNLI-m (mismatched genre), plus the model compression ratio.
//
//   paper:            w/a   SST-2   MNLI   MNLI-m   Comp. Ratio
//   BERT (fp32)      32/32  92.32   84.19  83.97    1x
//   FQ-BERT           4/8   91.51   81.11  80.36    7.94x
#include "bench_common.h"

#include "core/model_size.h"

using namespace fqbert;
using namespace fqbert::bench;

int main(int argc, char** argv) {
  const bool fast = fast_mode(argc, argv);
  std::printf("=== Table I: accuracy of FQ-BERT and baseline BERT ===\n");
  std::printf("(MiniBERT on synthetic tasks; see DESIGN.md for the "
              "substitution rationale)%s\n\n",
              fast ? " [--fast]" : "");

  // SST-2.
  TaskData sst2 = make_sst2_task(fast);
  auto sst2_float = train_float(sst2, fast);
  const double sst2_fp = sst2_float->accuracy(sst2.eval);
  FqBertModel sst2_fq =
      quantize_pipeline(*sst2_float, sst2, FqQuantConfig::full(), fast);
  const double sst2_q = sst2_fq.accuracy(sst2.eval);

  // MNLI (matched + mismatched).
  TaskData mnli = make_mnli_task(fast);
  auto mnli_float = train_float(mnli, fast);
  const double mnli_fp = mnli_float->accuracy(mnli.eval);
  const double mnli_m_fp = mnli_float->accuracy(mnli.eval_extra);
  FqBertModel mnli_fq =
      quantize_pipeline(*mnli_float, mnli, FqQuantConfig::full(), fast);
  const double mnli_q = mnli_fq.accuracy(mnli.eval);
  const double mnli_m_q = mnli_fq.accuracy(mnli.eval_extra);

  // Compression ratio on the *paper's* model (BERT-base accounting) and
  // on the MiniBERT actually measured.
  const double ratio_base =
      core::model_size_report(nn::BertConfig::bert_base(2),
                              FqQuantConfig::full())
          .compression_ratio();
  const double ratio_mini =
      core::model_size_report(mini_config(2), FqQuantConfig::full())
          .compression_ratio();

  print_rule();
  std::printf("%-10s %6s %8s %8s %8s %12s\n", "", "w/a", "SST-2", "MNLI",
              "MNLI-m", "Comp. Ratio");
  print_rule();
  std::printf("%-10s %6s %8.2f %8.2f %8.2f %12s\n", "BERT", "32/32", sst2_fp,
              mnli_fp, mnli_m_fp, "1x");
  std::printf("%-10s %6s %8.2f %8.2f %8.2f %9.2fx\n", "FQ-BERT", "4/8",
              sst2_q, mnli_q, mnli_m_q, ratio_mini);
  print_rule();
  std::printf("paper:     32/32    92.32    84.19    83.97          1x\n");
  std::printf("paper:       4/8    91.51    81.11    80.36       7.94x\n");
  std::printf("\nBERT-base compression ratio (paper's model): %.2fx "
              "(paper: 7.94x)\n", ratio_base);
  std::printf("accuracy drops: SST-2 %.2f (paper 0.81), MNLI %.2f "
              "(paper 3.08), MNLI-m %.2f (paper 3.61)\n",
              sst2_fp - sst2_q, mnli_fp - mnli_q, mnli_m_fp - mnli_m_q);
  return 0;
}
