// Quickstart: the complete FQ-BERT pipeline in ~60 lines.
//
//   1. generate a synthetic sentiment task
//   2. train a small float BERT from scratch
//   3. quantization-aware fine-tune (w4/a8, everything quantized)
//   4. convert to the integer-only engine
//   5. classify a sentence with both models and compare
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "pipeline/pipeline.h"

using namespace fqbert;

int main() {
  // 1. Data: binary sentiment with negation and intensifiers (the tuned
  // generator configuration from the pipeline library).
  data::Sst2Config dcfg = pipeline::sst2_generator_config();
  dcfg.p_negator = 0.0;  // keep the quickstart task easy & the run short;
                         // sentiment_pipeline demos the negation task
  const auto train_set = data::make_sst2(dcfg, 1200, 42);
  const auto eval_set = data::make_sst2(dcfg, 400, 43);

  // 2. A small trainable BERT (2 layers, hidden 64, 4 heads).
  nn::BertConfig mcfg;
  mcfg.vocab_size = dcfg.vocab.size;
  mcfg.hidden = 64;
  mcfg.num_layers = 2;
  mcfg.num_heads = 4;
  mcfg.ffn_dim = 256;
  mcfg.num_classes = 2;
  Rng rng(7);
  nn::BertModel model(mcfg, rng);

  std::printf("training float model (%lld params)...\n",
              static_cast<long long>(model.num_params()));
  nn::TrainConfig tcfg;
  tcfg.epochs = 4;
  tcfg.verbose = true;
  nn::train(model, train_set, eval_set, tcfg);

  // 3. QAT fine-tune with the full FQ-BERT recipe.
  std::printf("QAT fine-tuning (w4/a8 + scale/softmax/LN quantized)...\n");
  core::QatBert qat(model, core::FqQuantConfig::full());
  tcfg.epochs = 2;
  tcfg.adam.lr = 4e-4f;
  nn::train(model, train_set, eval_set, tcfg);
  qat.calibrate(train_set);

  // 4. Integer-only engine.
  core::FqBertModel engine = core::FqBertModel::convert(qat);

  // 5. Compare on evaluation data.
  const double fq_acc = engine.accuracy(eval_set);
  std::printf("\nFQ-BERT (integer engine) accuracy: %.1f%%\n", fq_acc);

  const nn::Example& ex = eval_set.front();
  Tensor fq_logits = engine.forward(ex);
  std::printf("first eval sentence (%zu tokens): label=%d, "
              "FQ-BERT logits = [%.3f, %.3f] -> class %d\n",
              ex.tokens.size(), ex.label, fq_logits[0], fq_logits[1],
              engine.predict(ex));

  const auto size = engine.size_report();
  std::printf("model size: %.1f KB float -> %.1f KB quantized (%.2fx)\n",
              size.float_bytes / 1024.0, size.quant_bytes / 1024.0,
              size.compression_ratio());
  return 0;
}
