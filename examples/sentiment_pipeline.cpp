// End-to-end sentiment deployment demo: train, quantize, then "deploy" —
// run the integer engine on individual sentences, show the Fig. 2 system
// split (CPU-side embedding, FPGA-side integer encoder, CPU-side head)
// and estimate what the accelerator would achieve on this very model.
//
// Build & run:  ./build/examples/sentiment_pipeline
#include <cstdio>

#include "accel/accelerator.h"
#include "pipeline/pipeline.h"

using namespace fqbert;

namespace {

const char* describe_token(const data::Vocab& v, int32_t t) {
  if (t == data::Vocab::kCls) return "[CLS]";
  if (t == data::Vocab::kSep) return "[SEP]";
  if (v.is_positive(t)) return "pos";
  if (v.is_negative(t)) return "neg";
  if (v.is_negator(t)) return "not";
  if (v.is_intensifier(t)) return "very";
  return ".";
}

}  // namespace

int main() {
  const data::Sst2Config dcfg = pipeline::sst2_generator_config();
  // The full tuned task (negation included); the float model is cached,
  // so re-runs and the bench suite share one training.
  pipeline::TaskData task = pipeline::make_sst2_task(/*fast=*/false);
  auto model_ptr = pipeline::train_float(task, /*fast=*/false);
  nn::BertModel& model = *model_ptr;
  const auto& train_set = task.train;
  const auto& eval_set = task.eval;

  core::QatBert qat(model, core::FqQuantConfig::full());
  nn::TrainConfig tc;
  tc.epochs = 2;
  tc.adam.lr = 4e-4f;
  nn::train(model, train_set, eval_set, tc);
  qat.calibrate(train_set);
  core::FqBertModel engine = core::FqBertModel::convert(qat);

  std::printf("deployed FQ-BERT: eval accuracy %.1f%%\n\n",
              engine.accuracy(eval_set));

  // Classify a few sentences, showing the token roles.
  std::printf("sample classifications (role-annotated tokens):\n");
  for (int i = 0; i < 5; ++i) {
    const nn::Example& ex = eval_set[static_cast<size_t>(i)];
    std::printf("  [");
    for (int32_t t : ex.tokens)
      std::printf("%s ", describe_token(dcfg.vocab, t));
    const int32_t pred = engine.predict(ex);
    std::printf("] -> %s (label %s)\n", pred == 1 ? "POSITIVE" : "NEGATIVE",
                ex.label == 1 ? "POSITIVE" : "NEGATIVE");
  }

  // What would this model cost on the accelerator?
  std::printf("\naccelerator estimate for this MiniBERT (seq len 32):\n");
  const auto rep =
      accel::evaluate(accel::AcceleratorConfig::zcu102_8_16(),
                      accel::FpgaDevice::zcu102(), model.config(), 32);
  std::printf("  ZCU102 (8,16): %.3f ms/inference, %.1f W, %.1f fps/W\n",
              rep.latency.total_ms, rep.power_w, rep.fps_per_w);

  const auto size = engine.size_report();
  std::printf("  weights stream per inference: %.1f KB (4-bit packed)\n",
              size.quant_bytes / 1024.0);
  return 0;
}
