// Quantization explorer: post-training quantization (no fine-tuning) of
// a trained model at several weight bitwidths, with CLIP vs NO_CLIP
// thresholds — the interactive companion to Fig. 3.
//
// Build & run:  ./build/examples/quantization_explorer
#include <cstdio>

#include "core/fq_bert.h"
#include "data/synth_tasks.h"
#include "nn/trainer.h"

using namespace fqbert;

int main() {
  data::Sst2Config dcfg;
  dcfg.max_sentiment = 1;
  dcfg.p_negator = 0.0;  // keep the task easy: this demo is about PTQ
  const auto train_set = data::make_sst2(dcfg, 800, 11);
  const auto eval_set = data::make_sst2(dcfg, 300, 12);

  nn::BertConfig mcfg;
  mcfg.hidden = 48;
  mcfg.num_layers = 2;
  mcfg.num_heads = 4;
  mcfg.ffn_dim = 192;
  mcfg.num_classes = 2;
  Rng rng(5);
  nn::BertModel model(mcfg, rng);
  nn::TrainConfig tc;
  tc.epochs = 4;
  nn::train(model, train_set, eval_set, tc);
  const double float_acc = model.accuracy(eval_set);
  std::printf("float accuracy: %.2f%%\n\n", float_acc);

  std::printf("post-training quantization (no fine-tune):\n");
  std::printf("%6s %12s %12s %16s\n", "bits", "CLIP", "NO_CLIP",
              "weight RMS err");
  for (int bits : {8, 6, 4, 3, 2}) {
    double acc[2];
    double rms = 0.0;
    for (int c = 0; c < 2; ++c) {
      core::FqQuantConfig cfg;
      cfg.weight_bits = bits;
      cfg.clip = c == 0 ? quant::ClipMode::kPercentile
                        : quant::ClipMode::kNone;
      cfg.quantize_softmax = true;
      cfg.quantize_layernorm = true;
      core::QatBert qat(model, cfg);
      qat.calibrate(train_set);  // PTQ: calibrate only, no training
      core::FqBertModel engine = core::FqBertModel::convert(qat);
      acc[c] = engine.accuracy(eval_set);
      if (c == 0) {
        // RMS reconstruction error of the first layer's query weights.
        const auto& ql = engine.encoder_layers()[0].wq;
        const std::vector<int8_t> codes = ql.narrow_codes();
        const Tensor& w = model.layers[0]->attn.wq.weight.value;
        double sq = 0;
        for (int64_t i = 0; i < w.numel(); ++i) {
          const double back =
              codes[static_cast<size_t>(i)] / ql.w_scale;
          sq += (back - w[i]) * (back - w[i]);
        }
        rms = std::sqrt(sq / static_cast<double>(w.numel()));
      }
    }
    std::printf("%6d %11.2f%% %11.2f%% %16.5f\n", bits, acc[0], acc[1], rms);
  }
  std::printf("\nExpected shape (Fig. 3): graceful until ~4 bits, collapse "
              "at 2; CLIP dominates at low bitwidths.\n");
  return 0;
}
