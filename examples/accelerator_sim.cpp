// Accelerator simulation walkthrough: evaluate the paper's three FPGA
// operating points on BERT-base, inspect the Fig. 5 schedule, and prove
// the BIM datapath is bit-exact by running a real quantized encoder
// layer through it.
//
// Build & run:  ./build/examples/accelerator_sim
#include <cstdio>

#include "accel/accelerator.h"
#include "accel/functional.h"
#include "core/fq_bert.h"
#include "data/synth_tasks.h"
#include "nn/trainer.h"

using namespace fqbert;
using namespace fqbert::accel;

namespace {

void show_config(const char* label, const AcceleratorConfig& cfg,
                 const FpgaDevice& dev) {
  const auto rep = evaluate(cfg, dev, nn::BertConfig::bert_base(2), 128);
  std::printf("%-18s  %4d PEs x %2d mults  DSP %4lld/%4lld  "
              "%6.2f ms  %5.2f W  %4.2f fps/W\n",
              label, static_cast<int>(cfg.total_pes()), cfg.bim_mults,
              static_cast<long long>(rep.resources.dsp48),
              static_cast<long long>(dev.dsp48), rep.latency.total_ms,
              rep.power_w, rep.fps_per_w);
}

}  // namespace

int main() {
  std::printf("== FQ-BERT accelerator operating points (BERT-base, S=128) ==\n");
  show_config("ZCU102 (8,16)", AcceleratorConfig::zcu102_8_16(),
              FpgaDevice::zcu102());
  show_config("ZCU102 (16,8)", AcceleratorConfig::zcu102_16_8(),
              FpgaDevice::zcu102());
  show_config("ZCU111 (16,16)", AcceleratorConfig::zcu111_16_16(),
              FpgaDevice::zcu111());

  // Stage schedule of the first configuration.
  PerfModel pm(AcceleratorConfig::zcu102_8_16(), FpgaDevice::zcu102());
  const auto rep = pm.estimate(nn::BertConfig::bert_base(2), 128);
  std::printf("\n== Fig. 5 schedule, one encoder layer (cycles) ==\n");
  for (const auto& st : rep.stages) {
    std::printf("  %-12s compute %8lld  transfer %8lld  (%d sub-stages)\n",
                st.name.c_str(), static_cast<long long>(st.compute_cycles),
                static_cast<long long>(st.transfer_cycles), st.sub_stages);
  }

  // Functional (bit-exact) check: a real quantized layer through the BIM.
  std::printf("\n== functional BIM check on a trained quantized layer ==\n");
  data::Sst2Config dcfg;
  const auto train_set = data::make_sst2(dcfg, 200, 1);
  nn::BertConfig mcfg;
  mcfg.hidden = 32;
  mcfg.num_layers = 1;
  mcfg.num_heads = 2;
  mcfg.ffn_dim = 64;
  mcfg.num_classes = 2;
  Rng rng(3);
  nn::BertModel model(mcfg, rng);
  nn::TrainConfig tc;
  tc.epochs = 1;
  nn::train(model, train_set, train_set, tc);

  core::QatBert qat(model, core::FqQuantConfig::full());
  qat.calibrate(train_set);
  core::FqBertModel engine = core::FqBertModel::convert(qat);

  const nn::Example& ex = train_set.front();
  const auto x = engine.embed(ex);
  const auto s_len = static_cast<int64_t>(ex.tokens.size());
  const auto& layer = engine.encoder_layers()[0];

  std::vector<int8_t> y_ref, y_bim;
  layer.forward(x, y_ref, s_len);
  Bim bim(16, BimType::kTypeA);
  const auto stats = run_layer_on_bim(layer, bim, x, y_bim, s_len);

  std::printf("engine vs BIM datapath: %s (%lld MACs, %lld 8x4 + %lld 8x8 "
              "BIM cycles on one PE)\n",
              y_ref == y_bim ? "BIT-EXACT" : "MISMATCH",
              static_cast<long long>(stats.mac_count),
              static_cast<long long>(stats.bim_cycles_8x4),
              static_cast<long long>(stats.bim_cycles_8x8));
  return y_ref == y_bim ? 0 : 1;
}
