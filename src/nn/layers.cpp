#include "nn/layers.h"

namespace fqbert::nn {

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

Linear::Linear(std::string name, int64_t in_features, int64_t out_features,
               Rng& rng)
    : weight(name + ".weight", Shape{out_features, in_features}),
      bias(name + ".bias", Shape{out_features}) {
  fill_xavier(weight.value, rng);
  bias.value.fill(0.0f);
}

Tensor Linear::forward(const Tensor& x) {
  assert(x.rank() == 2 && x.dim(1) == in_features());
  cached_input_ = x;
  hook_active_in_cache_ = weight_hook != nullptr;
  const Tensor& w_eff =
      hook_active_in_cache_
          ? (cached_effective_weight_ = weight_hook->apply(weight.value))
          : weight.value;
  Tensor y;
  matmul_bt(x, w_eff, y);
  add_row_bias(y, bias.value);
  return y;
}

Tensor Linear::backward(const Tensor& dy) {
  assert(dy.rank() == 2 && dy.dim(1) == out_features());
  // db = sum over rows of dy.
  for (int64_t r = 0; r < dy.dim(0); ++r) {
    const float* row = dy.row(r);
    for (int64_t c = 0; c < dy.dim(1); ++c) bias.grad[c] += row[c];
  }
  // dW = dyᵀ x. With a weight hook, the straight-through estimator passes
  // the gradient of the *effective* weight to the raw weight unchanged.
  matmul_at(dy, cached_input_, weight.grad, /*accumulate=*/true);
  // dx = dy W_eff.
  const Tensor& w_eff =
      hook_active_in_cache_ ? cached_effective_weight_ : weight.value;
  Tensor dx;
  matmul(dy, w_eff, dx);
  return dx;
}

void Linear::collect_params(std::vector<Param*>& out) {
  out.push_back(&weight);
  out.push_back(&bias);
}

// ---------------------------------------------------------------------------
// LayerNorm
// ---------------------------------------------------------------------------

LayerNorm::LayerNorm(std::string name, int64_t features, float eps_in)
    : gamma(name + ".gamma", Shape{features}),
      beta(name + ".beta", Shape{features}),
      eps(eps_in) {
  gamma.value.fill(1.0f);
  beta.value.fill(0.0f);
}

Tensor LayerNorm::forward(const Tensor& x) {
  assert(x.rank() == 2 && x.dim(1) == gamma.value.numel());
  const int64_t s = x.dim(0), h = x.dim(1);
  cached_eff_gamma_ =
      gamma_hook != nullptr ? gamma_hook->apply(gamma.value) : gamma.value;
  const Tensor eff_beta =
      beta_hook != nullptr ? beta_hook->apply(beta.value) : beta.value;
  Tensor y(x.shape());
  cached_xhat_ = Tensor(x.shape());
  cached_inv_std_ = Tensor(Shape{s});
  for (int64_t r = 0; r < s; ++r) {
    const float* xr = x.row(r);
    double mu = 0.0;
    for (int64_t c = 0; c < h; ++c) mu += xr[c];
    mu /= static_cast<double>(h);
    double var = 0.0;
    for (int64_t c = 0; c < h; ++c) {
      const double d = xr[c] - mu;
      var += d * d;
    }
    var /= static_cast<double>(h);
    const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps));
    cached_inv_std_[r] = inv_std;
    float* xh = cached_xhat_.row(r);
    float* yr = y.row(r);
    for (int64_t c = 0; c < h; ++c) {
      xh[c] = (xr[c] - static_cast<float>(mu)) * inv_std;
      yr[c] = xh[c] * cached_eff_gamma_[c] + eff_beta[c];
    }
  }
  return y;
}

Tensor LayerNorm::backward(const Tensor& dy) {
  const int64_t s = dy.dim(0), h = dy.dim(1);
  Tensor dx(dy.shape());
  for (int64_t r = 0; r < s; ++r) {
    const float* dyr = dy.row(r);
    const float* xh = cached_xhat_.row(r);
    const float inv_std = cached_inv_std_[r];
    // Parameter grads.
    double sum_dxhat = 0.0, sum_dxhat_xhat = 0.0;
    for (int64_t c = 0; c < h; ++c) {
      gamma.grad[c] += dyr[c] * xh[c];
      beta.grad[c] += dyr[c];
      const double dxh = static_cast<double>(dyr[c]) * cached_eff_gamma_[c];
      sum_dxhat += dxh;
      sum_dxhat_xhat += dxh * xh[c];
    }
    const double inv_h = 1.0 / static_cast<double>(h);
    float* dxr = dx.row(r);
    for (int64_t c = 0; c < h; ++c) {
      const double dxh = static_cast<double>(dyr[c]) * cached_eff_gamma_[c];
      dxr[c] = static_cast<float>(
          inv_std * (dxh - inv_h * sum_dxhat - xh[c] * inv_h * sum_dxhat_xhat));
    }
  }
  return dx;
}

void LayerNorm::collect_params(std::vector<Param*>& out) {
  out.push_back(&gamma);
  out.push_back(&beta);
}

// ---------------------------------------------------------------------------
// Embedding
// ---------------------------------------------------------------------------

Embedding::Embedding(std::string name, int64_t vocab, int64_t dim, Rng& rng)
    : table(name + ".table", Shape{vocab, dim}) {
  fill_normal(table.value, rng, 0.0f, 0.02f);
}

Tensor Embedding::forward(const std::vector<int32_t>& ids) {
  cached_ids_ = ids;
  const int64_t s = static_cast<int64_t>(ids.size());
  const int64_t d = table.value.dim(1);
  const Tensor& tbl =
      weight_hook != nullptr ? (cached_eff_table_ = weight_hook->apply(table.value))
                             : table.value;
  Tensor out(Shape{s, d});
  for (int64_t r = 0; r < s; ++r) {
    assert(ids[r] >= 0 && ids[r] < table.value.dim(0));
    const float* src = tbl.row(ids[r]);
    float* dst = out.row(r);
    std::copy(src, src + d, dst);
  }
  return out;
}

void Embedding::backward(const Tensor& dy) {
  const int64_t s = static_cast<int64_t>(cached_ids_.size());
  const int64_t d = table.value.dim(1);
  assert(dy.dim(0) == s && dy.dim(1) == d);
  for (int64_t r = 0; r < s; ++r) {
    float* grow = table.grad.row(cached_ids_[r]);
    const float* dyr = dy.row(r);
    for (int64_t c = 0; c < d; ++c) grow[c] += dyr[c];
  }
}

void Embedding::collect_params(std::vector<Param*>& out) {
  out.push_back(&table);
}

// ---------------------------------------------------------------------------
// GELU
// ---------------------------------------------------------------------------

namespace {
constexpr float kSqrt2OverPi = 0.7978845608028654f;
constexpr float kGeluCoeff = 0.044715f;
}  // namespace

float Gelu::value(float x) {
  const float u = kSqrt2OverPi * (x + kGeluCoeff * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(u));
}

float Gelu::derivative(float x) {
  const float u = kSqrt2OverPi * (x + kGeluCoeff * x * x * x);
  const float t = std::tanh(u);
  const float sech2 = 1.0f - t * t;
  const float du = kSqrt2OverPi * (1.0f + 3.0f * kGeluCoeff * x * x);
  return 0.5f * (1.0f + t) + 0.5f * x * sech2 * du;
}

Tensor Gelu::forward(const Tensor& x) {
  cached_input_ = x;
  Tensor y(x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) y[i] = value(x[i]);
  return y;
}

Tensor Gelu::backward(const Tensor& dy) {
  assert(dy.same_shape(cached_input_));
  Tensor dx(dy.shape());
  for (int64_t i = 0; i < dy.numel(); ++i)
    dx[i] = dy[i] * derivative(cached_input_[i]);
  return dx;
}

// ---------------------------------------------------------------------------
// Tanh
// ---------------------------------------------------------------------------

Tensor Tanh::forward(const Tensor& x) {
  Tensor y(x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) y[i] = std::tanh(x[i]);
  cached_output_ = y;
  return y;
}

Tensor Tanh::backward(const Tensor& dy) {
  Tensor dx(dy.shape());
  for (int64_t i = 0; i < dy.numel(); ++i)
    dx[i] = dy[i] * (1.0f - cached_output_[i] * cached_output_[i]);
  return dx;
}

// ---------------------------------------------------------------------------
// Softmax
// ---------------------------------------------------------------------------

void softmax_rows(Tensor& x) {
  assert(x.rank() == 2);
  const int64_t rows = x.dim(0), cols = x.dim(1);
  for (int64_t r = 0; r < rows; ++r) {
    float* v = x.row(r);
    float mx = v[0];
    for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, v[c]);
    double sum = 0.0;
    for (int64_t c = 0; c < cols; ++c) {
      v[c] = std::exp(v[c] - mx);
      sum += v[c];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int64_t c = 0; c < cols; ++c) v[c] *= inv;
  }
}

Tensor softmax_rows_backward(const Tensor& probs, const Tensor& dprobs) {
  assert(probs.same_shape(dprobs));
  Tensor dx(probs.shape());
  const int64_t rows = probs.dim(0), cols = probs.dim(1);
  for (int64_t r = 0; r < rows; ++r) {
    const float* p = probs.row(r);
    const float* dp = dprobs.row(r);
    double dot = 0.0;
    for (int64_t c = 0; c < cols; ++c) dot += static_cast<double>(p[c]) * dp[c];
    float* dxr = dx.row(r);
    for (int64_t c = 0; c < cols; ++c)
      dxr[c] = p[c] * (dp[c] - static_cast<float>(dot));
  }
  return dx;
}

}  // namespace fqbert::nn
