#include "nn/encoder.h"

namespace fqbert::nn {

EncoderLayer::EncoderLayer(std::string name, int64_t hidden,
                           int64_t num_heads, int64_t ffn_dim, Rng& rng)
    : attn(name + ".attn", hidden, num_heads, rng),
      ln1(name + ".ln1", hidden),
      ffn1(name + ".ffn1", hidden, ffn_dim, rng),
      ffn2(name + ".ffn2", ffn_dim, hidden, rng),
      ln2(name + ".ln2", hidden) {}

Tensor EncoderLayer::forward(const Tensor& x) {
  cached_x_ = x;
  Tensor xq = input_node.forward(x);
  Tensor a = attn_out_node.forward(attn.forward(xq));
  add_inplace(a, x);  // residual
  Tensor h = ln1.forward(a);
  cached_ln1_out_ = h;

  Tensor f_in = ffn_in_node.forward(h);
  Tensor pre = pre_gelu_node.forward(ffn1.forward(f_in));
  Tensor mid = ffn_mid_node.forward(gelu.forward(pre));
  Tensor f = ffn_out_node.forward(ffn2.forward(mid));
  add_inplace(f, h);  // residual
  return ln2.forward(f);
}

Tensor EncoderLayer::backward(const Tensor& dy) {
  Tensor df = ln2.backward(dy);
  // f = ffn_out(...) + h ; residual splits the gradient.
  Tensor dh = df;
  Tensor dmid = ffn1.backward(pre_gelu_node.backward(gelu.backward(
      ffn_mid_node.backward(ffn2.backward(ffn_out_node.backward(df))))));
  add_inplace(dh, ffn_in_node.backward(dmid));

  Tensor da = ln1.backward(dh);
  // a = attn(...) + x.
  Tensor dx = da;
  add_inplace(dx,
              input_node.backward(attn.backward(attn_out_node.backward(da))));
  return dx;
}

void EncoderLayer::collect_params(std::vector<Param*>& out) {
  attn.collect_params(out);
  ln1.collect_params(out);
  ffn1.collect_params(out);
  ffn2.collect_params(out);
  ln2.collect_params(out);
}

}  // namespace fqbert::nn
