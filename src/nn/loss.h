// Softmax cross-entropy loss for classification heads.
#pragma once

#include <cmath>

#include "tensor/tensor_ops.h"

namespace fqbert::nn {

/// Returns loss value and writes dL/dlogits into dlogits.
inline float cross_entropy_with_grad(const Tensor& logits, int32_t label,
                                     Tensor& dlogits) {
  const int64_t n = logits.numel();
  assert(label >= 0 && label < n);
  float mx = logits[0];
  for (int64_t i = 1; i < n; ++i) mx = std::max(mx, logits[i]);
  double sum = 0.0;
  dlogits = Tensor(logits.shape());
  for (int64_t i = 0; i < n; ++i) {
    dlogits[i] = std::exp(logits[i] - mx);
    sum += dlogits[i];
  }
  const float inv = static_cast<float>(1.0 / sum);
  float loss = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    const float p = dlogits[i] * inv;
    if (i == label) loss = -std::log(std::max(p, 1e-12f));
    dlogits[i] = p - (i == label ? 1.0f : 0.0f);
  }
  return loss;
}

}  // namespace fqbert::nn
