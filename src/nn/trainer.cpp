#include "nn/trainer.h"

#include <cstdio>

namespace fqbert::nn {

TrainResult train(BertModel& model, const std::vector<Example>& train_set,
                  const std::vector<Example>& eval_set,
                  const TrainConfig& config) {
  Adam opt(model.params(), config.adam);
  Rng shuffle_rng(config.shuffle_seed);

  std::vector<size_t> order(train_set.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  const int64_t steps_per_epoch =
      (static_cast<int64_t>(train_set.size()) + config.batch_size - 1) /
      config.batch_size;
  const int64_t total_steps = steps_per_epoch * config.epochs;
  const int64_t warmup_steps = std::max<int64_t>(
      1, static_cast<int64_t>(config.warmup_fraction *
                              static_cast<float>(total_steps)));

  TrainResult result;
  model.zero_grad();

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    shuffle_rng.shuffle(order);
    double epoch_loss = 0.0;
    int64_t seen = 0;

    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(config.batch_size)) {
      const size_t end =
          std::min(order.size(), start + static_cast<size_t>(config.batch_size));
      for (size_t i = start; i < end; ++i) {
        const Example& ex = train_set[order[i]];
        Tensor logits = model.forward(ex);
        Tensor dlogits;
        epoch_loss += cross_entropy_with_grad(logits, ex.label, dlogits);
        model.backward(dlogits);
        ++seen;
      }
      // Linear warmup then linear decay to zero.
      const int64_t step = opt.steps() + 1;
      float lr_scale;
      if (step <= warmup_steps) {
        lr_scale = static_cast<float>(step) / static_cast<float>(warmup_steps);
      } else {
        lr_scale = std::max(
            0.05f, 1.0f - static_cast<float>(step - warmup_steps) /
                              static_cast<float>(total_steps - warmup_steps + 1));
      }
      opt.set_lr(config.adam.lr * lr_scale);
      opt.step(1.0f / static_cast<float>(end - start));
      ++result.steps;
    }

    result.final_train_loss = epoch_loss / static_cast<double>(seen);
    if (config.on_epoch || config.verbose || epoch == config.epochs - 1) {
      const double acc = model.accuracy(eval_set);
      result.final_eval_accuracy = acc;
      if (config.verbose) {
        std::printf("  epoch %d: loss=%.4f eval_acc=%.2f%%\n", epoch + 1,
                    result.final_train_loss, acc);
      }
      if (config.on_epoch) config.on_epoch(epoch, result.final_train_loss, acc);
    }
  }
  return result;
}

}  // namespace fqbert::nn
