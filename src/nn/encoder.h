// BERT encoder layer: self-attention + Add&LN + FFN(GELU) + Add&LN
// (post-norm, as in the original BERT and the paper's Fig. 1).
#pragma once

#include "nn/attention.h"

namespace fqbert::nn {

class EncoderLayer : public Module {
 public:
  EncoderLayer(std::string name, int64_t hidden, int64_t num_heads,
               int64_t ffn_dim, Rng& rng);

  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& dy);

  void collect_params(std::vector<Param*>& out) override;

  MultiHeadSelfAttention attn;
  LayerNorm ln1;
  Linear ffn1;
  Gelu gelu;
  Linear ffn2;
  LayerNorm ln2;

  // Quantization points.
  HookedActivation input_node;     // x entering the attention linears
  HookedActivation attn_out_node;  // attention output before residual add
  HookedActivation ffn_in_node;    // LN1 output entering FFN1
  HookedActivation pre_gelu_node;  // FFN1 output entering GELU
  HookedActivation ffn_mid_node;   // GELU output entering FFN2
  HookedActivation ffn_out_node;   // FFN2 output before residual add

 private:
  Tensor cached_x_;       // layer input (for residual backward shapes)
  Tensor cached_ln1_out_; // residual source of the FFN block
};

}  // namespace fqbert::nn
