// Hooked activation node: an optional fake-quantization point on the
// forward path with straight-through-estimator backward.
//
// The float model is instrumented with these nodes at every place the
// FQ-BERT paper quantizes an intermediate tensor (linear inputs/outputs,
// Q/K before the score product, softmax probabilities, FFN mid
// activations...). With no hook installed the node is the identity and
// costs one branch.
#pragma once

#include "nn/module.h"
#include "tensor/tensor_ops.h"

namespace fqbert::nn {

class HookedActivation {
 public:
  TensorHook* hook = nullptr;

  Tensor forward(const Tensor& x) {
    if (hook == nullptr) return x;
    cached_mask_ = hook->grad_mask(x);
    return hook->apply(x);
  }

  Tensor backward(const Tensor& dy) {
    if (hook == nullptr) return dy;
    assert(dy.same_shape(cached_mask_));
    Tensor dx = dy;
    mul_inplace(dx, cached_mask_);
    return dx;
  }

 private:
  Tensor cached_mask_;
};

}  // namespace fqbert::nn
