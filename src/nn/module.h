// Common building blocks for the trainable NN substrate.
//
// The substrate is deliberately small: modules own their parameters
// (value + gradient pair), store the forward-pass caches they need for
// backprop, and expose the parameter list for the optimizer. There is no
// autograd graph — backward passes are hand-written, which keeps the
// integer/quantized inference path (src/core) auditable against a
// transparent float reference.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace fqbert::nn {

/// A trainable parameter: value plus accumulated gradient.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  Param() = default;
  Param(std::string n, Shape shape)
      : name(std::move(n)), value(shape), grad(shape, 0.0f) {}

  void zero_grad() { grad.fill(0.0f); }
};

/// Hook applied to a tensor on the forward path (e.g. fake quantization
/// for QAT). Gradients are propagated with the straight-through
/// estimator: `grad_mask` returns 1 where the gradient passes and 0
/// where the hook saturated (clipped) the value.
class TensorHook {
 public:
  virtual ~TensorHook() = default;

  /// Transformed tensor used by the consumer.
  virtual Tensor apply(const Tensor& x) = 0;

  /// STE mask for the *input* of apply(); same shape as x. Default: all
  /// ones (pure straight-through).
  virtual Tensor grad_mask(const Tensor& x) {
    return Tensor(x.shape(), 1.0f);
  }
};

/// Base class so containers can gather parameters generically.
class Module {
 public:
  virtual ~Module() = default;

  /// Append raw pointers to every trainable parameter.
  virtual void collect_params(std::vector<Param*>& out) = 0;

  std::vector<Param*> params() {
    std::vector<Param*> out;
    collect_params(out);
    return out;
  }

  void zero_grad() {
    for (Param* p : params()) p->zero_grad();
  }

  /// Total trainable scalar count.
  int64_t num_params() {
    int64_t n = 0;
    for (Param* p : params()) n += p->value.numel();
    return n;
  }
};

}  // namespace fqbert::nn
