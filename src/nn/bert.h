// Full BERT classification model (Fig. 1 of the paper): embeddings
// (token + position + segment, then LayerNorm), a stack of encoder
// layers, a CLS pooler (dense + tanh) and a task classifier head.
//
// This is the float reference model. It is small enough to *train from
// scratch* on the synthetic GLUE-like tasks in src/data, and it carries
// the quantization hook points used for QAT fine-tuning; the integer-only
// engine in src/core is converted from a trained instance of this class.
#pragma once

#include <memory>
#include <vector>

#include "nn/encoder.h"

namespace fqbert::nn {

struct BertConfig {
  int64_t vocab_size = 512;
  int64_t hidden = 64;
  int64_t num_layers = 2;
  int64_t num_heads = 4;
  int64_t ffn_dim = 256;
  int64_t max_seq_len = 32;
  int64_t num_segments = 2;
  int64_t num_classes = 2;

  int64_t head_dim() const { return hidden / num_heads; }

  /// BERT-base shape (paper's latency/resource experiments).
  static BertConfig bert_base(int64_t classes = 2) {
    BertConfig c;
    c.vocab_size = 30522;
    c.hidden = 768;
    c.num_layers = 12;
    c.num_heads = 12;
    c.ffn_dim = 3072;
    c.max_seq_len = 128;
    c.num_classes = classes;
    return c;
  }

  /// Trainable-from-scratch configuration for accuracy experiments.
  static BertConfig mini(int64_t classes = 2) {
    BertConfig c;
    c.num_classes = classes;
    return c;
  }
};

/// One tokenized classification example.
struct Example {
  std::vector<int32_t> tokens;    // includes [CLS] ... [SEP]
  std::vector<int32_t> segments;  // 0 for first sentence, 1 for second
  int32_t label = 0;
};

class BertModel : public Module {
 public:
  BertModel(const BertConfig& config, Rng& rng);

  /// Forward one sequence; returns logits [num_classes].
  Tensor forward(const std::vector<int32_t>& tokens,
                 const std::vector<int32_t>& segments);
  Tensor forward(const Example& ex) { return forward(ex.tokens, ex.segments); }

  /// Backward from dlogits [num_classes]; accumulates all param grads.
  void backward(const Tensor& dlogits);

  void collect_params(std::vector<Param*>& out) override;

  const BertConfig& config() const { return config_; }

  /// Predicted class for one example.
  int32_t predict(const Example& ex);

  /// Classification accuracy over a dataset (%).
  double accuracy(const std::vector<Example>& data);

  Embedding tok_emb;
  Embedding pos_emb;
  Embedding seg_emb;
  LayerNorm emb_ln;
  std::vector<std::unique_ptr<EncoderLayer>> layers;
  Linear pooler;
  Tanh pooler_act;
  Linear classifier;

  // Quantization points around the embedding/pooler boundary.
  HookedActivation emb_node;     // embedding-LN output entering layer 0
  HookedActivation final_node;   // last encoder output entering the pooler
  HookedActivation pooled_node;  // pooler activation entering classifier

 private:
  BertConfig config_;
  int64_t cached_seq_len_ = 0;
};

// -------------------------- serialization ---------------------------------

/// Flatten every parameter value into one vector (optimizer-order).
std::vector<float> state_to_vector(Module& m);

/// Load parameters from a flat vector produced by state_to_vector.
void vector_to_state(Module& m, const std::vector<float>& v);

/// Save/load a flat float vector to a binary file.
void save_state(Module& m, const std::string& path);
bool load_state(Module& m, const std::string& path);

}  // namespace fqbert::nn
