#include "nn/attention.h"

namespace fqbert::nn {

Tensor head_slice(const Tensor& src, int64_t h, int64_t dh) {
  const int64_t s = src.dim(0);
  Tensor out(Shape{s, dh});
  for (int64_t r = 0; r < s; ++r) {
    const float* srow = src.row(r) + h * dh;
    std::copy(srow, srow + dh, out.row(r));
  }
  return out;
}

void head_unslice_add(Tensor& dst, const Tensor& part, int64_t h, int64_t dh) {
  const int64_t s = dst.dim(0);
  assert(part.dim(0) == s && part.dim(1) == dh);
  for (int64_t r = 0; r < s; ++r) {
    float* drow = dst.row(r) + h * dh;
    const float* prow = part.row(r);
    for (int64_t c = 0; c < dh; ++c) drow[c] += prow[c];
  }
}

Tensor rows_block(const Tensor& src, int64_t r0, int64_t n) {
  assert(src.rank() == 2 && r0 >= 0 && r0 + n <= src.dim(0));
  const int64_t cols = src.dim(1);
  Tensor out(Shape{n, cols});
  std::copy(src.row(r0), src.row(r0) + n * cols, out.data());
  return out;
}

void set_rows_block(Tensor& dst, const Tensor& block, int64_t r0) {
  assert(dst.rank() == 2 && block.rank() == 2 && dst.dim(1) == block.dim(1));
  assert(r0 >= 0 && r0 + block.dim(0) <= dst.dim(0));
  std::copy(block.data(), block.data() + block.numel(), dst.row(r0));
}

MultiHeadSelfAttention::MultiHeadSelfAttention(std::string name,
                                               int64_t hidden,
                                               int64_t num_heads, Rng& rng)
    : wq(name + ".wq", hidden, hidden, rng),
      wk(name + ".wk", hidden, hidden, rng),
      wv(name + ".wv", hidden, hidden, rng),
      wo(name + ".wo", hidden, hidden, rng),
      num_heads_(num_heads),
      head_dim_(hidden / num_heads) {
  if (hidden % num_heads != 0) {
    throw std::invalid_argument("hidden must be divisible by num_heads");
  }
}

Tensor MultiHeadSelfAttention::forward(const Tensor& x) {
  const int64_t s = x.dim(0);
  q_ = q_node.forward(wq.forward(x));
  k_ = k_node.forward(wk.forward(x));
  v_ = v_node.forward(wv.forward(x));

  const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  // Stacked scores: rows [h*s, (h+1)*s) belong to head h.
  Tensor scores(Shape{num_heads_ * s, s});
  for (int64_t h = 0; h < num_heads_; ++h) {
    Tensor qh = head_slice(q_, h, head_dim_);
    Tensor kh = head_slice(k_, h, head_dim_);
    Tensor sh;
    matmul_bt(qh, kh, sh);
    scale_inplace(sh, inv_sqrt_dh);
    set_rows_block(scores, sh, h * s);
  }
  softmax_rows(scores);
  raw_probs_ = scores;
  probs_ = probs_node.forward(raw_probs_);

  ctx_ = Tensor(Shape{s, hidden()}, 0.0f);
  for (int64_t h = 0; h < num_heads_; ++h) {
    Tensor ph = rows_block(probs_, h * s, s);
    Tensor vh = head_slice(v_, h, head_dim_);
    Tensor ctx_h;
    matmul(ph, vh, ctx_h);
    head_unslice_add(ctx_, ctx_h, h, head_dim_);
  }
  ctx_ = ctx_node.forward(ctx_);
  return wo.forward(ctx_);
}

Tensor MultiHeadSelfAttention::backward(const Tensor& dy) {
  const int64_t s = dy.dim(0);
  Tensor dctx = ctx_node.backward(wo.backward(dy));

  Tensor dv(v_.shape(), 0.0f);
  Tensor dprobs(probs_.shape());
  for (int64_t h = 0; h < num_heads_; ++h) {
    Tensor ph = rows_block(probs_, h * s, s);
    Tensor vh = head_slice(v_, h, head_dim_);
    Tensor dctx_h = head_slice(dctx, h, head_dim_);
    // ctx_h = ph · vh
    Tensor dph;
    matmul_bt(dctx_h, vh, dph);
    set_rows_block(dprobs, dph, h * s);
    Tensor dvh;
    matmul_at(ph, dctx_h, dvh);
    head_unslice_add(dv, dvh, h, head_dim_);
  }

  // Straight-through across the probs hook, then softmax backward on the
  // raw probabilities.
  Tensor dscores =
      softmax_rows_backward(raw_probs_, probs_node.backward(dprobs));
  const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  scale_inplace(dscores, inv_sqrt_dh);

  Tensor dq(q_.shape(), 0.0f), dk(k_.shape(), 0.0f);
  for (int64_t h = 0; h < num_heads_; ++h) {
    Tensor dsh = rows_block(dscores, h * s, s);
    Tensor qh = head_slice(q_, h, head_dim_);
    Tensor kh = head_slice(k_, h, head_dim_);
    // scores_h = qh · khᵀ
    Tensor dqh;
    matmul(dsh, kh, dqh);
    Tensor dkh;
    matmul_at(dsh, qh, dkh);
    head_unslice_add(dq, dqh, h, head_dim_);
    head_unslice_add(dk, dkh, h, head_dim_);
  }

  Tensor dx = wq.backward(q_node.backward(dq));
  add_inplace(dx, wk.backward(k_node.backward(dk)));
  add_inplace(dx, wv.backward(v_node.backward(dv)));
  return dx;
}

void MultiHeadSelfAttention::collect_params(std::vector<Param*>& out) {
  wq.collect_params(out);
  wk.collect_params(out);
  wv.collect_params(out);
  wo.collect_params(out);
}

}  // namespace fqbert::nn
