// Core trainable layers: Linear, LayerNorm, Embedding, GELU, softmax.
//
// Each layer's forward() caches what its backward() needs; backward()
// accumulates into parameter gradients and returns the gradient w.r.t.
// the layer input. All activations are rank-2 [seq_len, features] —
// batching is done by looping over sequences and accumulating grads,
// which keeps every kernel two-dimensional and easy to verify.
#pragma once

#include <cmath>
#include <cstdint>

#include "nn/module.h"
#include "tensor/rng.h"
#include "tensor/tensor_ops.h"

namespace fqbert::nn {

// ---------------------------------------------------------------------------
// Linear: y = x Wᵀ + b, weight stored [out_features, in_features].
// ---------------------------------------------------------------------------
class Linear : public Module {
 public:
  Linear(std::string name, int64_t in_features, int64_t out_features,
         Rng& rng);

  /// x: [S, in] -> [S, out]. If weight_hook is set, the hooked weight is
  /// used for the product (QAT fake-quantization).
  Tensor forward(const Tensor& x);

  /// dy: [S, out] -> dx: [S, in]; accumulates dW, db.
  Tensor backward(const Tensor& dy);

  void collect_params(std::vector<Param*>& out) override;

  int64_t in_features() const { return weight.value.dim(1); }
  int64_t out_features() const { return weight.value.dim(0); }

  Param weight;
  Param bias;

  /// Optional fake-quant hook on the weight (owned by the caller).
  TensorHook* weight_hook = nullptr;

 private:
  Tensor cached_input_;
  Tensor cached_effective_weight_;  // weight after hook, used in backward
  bool hook_active_in_cache_ = false;
};

// ---------------------------------------------------------------------------
// LayerNorm over the last dimension of a [S, H] tensor.
// ---------------------------------------------------------------------------
class LayerNorm : public Module {
 public:
  LayerNorm(std::string name, int64_t features, float eps = 1e-5f);

  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& dy);

  void collect_params(std::vector<Param*>& out) override;

  Param gamma;
  Param beta;
  float eps;

  /// Optional fake-quant hooks on the affine parameters (the Table II
  /// "layer norm" ablation quantizes gamma/beta to 8-bit fixed point).
  TensorHook* gamma_hook = nullptr;
  TensorHook* beta_hook = nullptr;

 private:
  Tensor cached_xhat_;       // normalized input
  Tensor cached_inv_std_;    // [S] 1/sqrt(var+eps)
  Tensor cached_eff_gamma_;  // gamma after hook (if any)
};

// ---------------------------------------------------------------------------
// Embedding: id lookup with scatter-add backward.
// ---------------------------------------------------------------------------
class Embedding : public Module {
 public:
  Embedding(std::string name, int64_t vocab, int64_t dim, Rng& rng);

  /// ids: length-S token ids -> [S, dim].
  Tensor forward(const std::vector<int32_t>& ids);

  /// Accumulates into the embedding table gradient.
  void backward(const Tensor& dy);

  void collect_params(std::vector<Param*>& out) override;

  Param table;

  /// Optional fake-quant hook on the table (4-bit embedding weights).
  TensorHook* weight_hook = nullptr;

 private:
  std::vector<int32_t> cached_ids_;
  Tensor cached_eff_table_;
};

// ---------------------------------------------------------------------------
// GELU (tanh approximation, as used by BERT).
// ---------------------------------------------------------------------------
class Gelu {
 public:
  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& dy);

  static float value(float x);
  static float derivative(float x);

 private:
  Tensor cached_input_;
};

// ---------------------------------------------------------------------------
// Tanh activation (BERT pooler).
// ---------------------------------------------------------------------------
class Tanh {
 public:
  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& dy);

 private:
  Tensor cached_output_;
};

// ---------------------------------------------------------------------------
// Row-wise softmax with cached output (used inside attention).
// ---------------------------------------------------------------------------

/// In-place, numerically stable row softmax of a rank-2 tensor.
void softmax_rows(Tensor& x);

/// dL/dx given dL/dp and p = softmax(x) (row-wise).
Tensor softmax_rows_backward(const Tensor& probs, const Tensor& dprobs);

}  // namespace fqbert::nn
