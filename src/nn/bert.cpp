#include "nn/bert.h"

#include <fstream>

namespace fqbert::nn {

BertModel::BertModel(const BertConfig& config, Rng& rng)
    : tok_emb("emb.tok", config.vocab_size, config.hidden, rng),
      pos_emb("emb.pos", config.max_seq_len, config.hidden, rng),
      seg_emb("emb.seg", config.num_segments, config.hidden, rng),
      emb_ln("emb.ln", config.hidden),
      pooler("pooler", config.hidden, config.hidden, rng),
      classifier("classifier", config.hidden, config.num_classes, rng),
      config_(config) {
  if (config.hidden % config.num_heads != 0) {
    throw std::invalid_argument("hidden must be divisible by num_heads");
  }
  layers.reserve(static_cast<size_t>(config.num_layers));
  for (int64_t l = 0; l < config.num_layers; ++l) {
    layers.push_back(std::make_unique<EncoderLayer>(
        "enc" + std::to_string(l), config.hidden, config.num_heads,
        config.ffn_dim, rng));
  }
}

Tensor BertModel::forward(const std::vector<int32_t>& tokens,
                          const std::vector<int32_t>& segments) {
  assert(tokens.size() == segments.size());
  assert(static_cast<int64_t>(tokens.size()) <= config_.max_seq_len);
  cached_seq_len_ = static_cast<int64_t>(tokens.size());

  std::vector<int32_t> positions(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i)
    positions[i] = static_cast<int32_t>(i);

  Tensor x = tok_emb.forward(tokens);
  add_inplace(x, pos_emb.forward(positions));
  add_inplace(x, seg_emb.forward(segments));
  x = emb_node.forward(emb_ln.forward(x));

  for (auto& layer : layers) x = layer->forward(x);
  x = final_node.forward(x);

  // CLS pooling: row 0.
  Tensor cls = rows_block(x, 0, 1);
  Tensor pooled = pooled_node.forward(pooler_act.forward(pooler.forward(cls)));
  Tensor logits = classifier.forward(pooled);
  return logits.reshaped(Shape{config_.num_classes});
}

void BertModel::backward(const Tensor& dlogits) {
  Tensor dl = dlogits.reshaped(Shape{1, config_.num_classes});
  Tensor dpooled = pooled_node.backward(classifier.backward(dl));
  Tensor dcls = pooler.backward(pooler_act.backward(dpooled));

  // Scatter CLS gradient back to row 0 of the final hidden states.
  Tensor dx(Shape{cached_seq_len_, config_.hidden}, 0.0f);
  set_rows_block(dx, dcls, 0);
  dx = final_node.backward(dx);

  for (auto it = layers.rbegin(); it != layers.rend(); ++it)
    dx = (*it)->backward(dx);

  dx = emb_ln.backward(emb_node.backward(dx));
  tok_emb.backward(dx);
  pos_emb.backward(dx);
  seg_emb.backward(dx);
}

void BertModel::collect_params(std::vector<Param*>& out) {
  tok_emb.collect_params(out);
  pos_emb.collect_params(out);
  seg_emb.collect_params(out);
  emb_ln.collect_params(out);
  for (auto& layer : layers) layer->collect_params(out);
  pooler.collect_params(out);
  classifier.collect_params(out);
}

int32_t BertModel::predict(const Example& ex) {
  Tensor logits = forward(ex);
  return static_cast<int32_t>(argmax(logits.data(), logits.numel()));
}

double BertModel::accuracy(const std::vector<Example>& data) {
  if (data.empty()) return 0.0;
  int64_t correct = 0;
  for (const Example& ex : data)
    if (predict(ex) == ex.label) ++correct;
  return 100.0 * static_cast<double>(correct) /
         static_cast<double>(data.size());
}

// -------------------------- serialization ---------------------------------

std::vector<float> state_to_vector(Module& m) {
  std::vector<float> out;
  for (Param* p : m.params())
    out.insert(out.end(), p->value.storage().begin(),
               p->value.storage().end());
  return out;
}

void vector_to_state(Module& m, const std::vector<float>& v) {
  size_t off = 0;
  for (Param* p : m.params()) {
    const size_t n = static_cast<size_t>(p->value.numel());
    if (off + n > v.size())
      throw std::runtime_error("state vector too short for module");
    std::copy(v.begin() + static_cast<int64_t>(off),
              v.begin() + static_cast<int64_t>(off + n),
              p->value.storage().begin());
    off += n;
  }
  if (off != v.size())
    throw std::runtime_error("state vector size mismatch for module");
}

void save_state(Module& m, const std::string& path) {
  std::vector<float> v = state_to_vector(m);
  std::ofstream f(path, std::ios::binary);
  const uint64_t n = v.size();
  f.write(reinterpret_cast<const char*>(&n), sizeof(n));
  f.write(reinterpret_cast<const char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(float)));
}

bool load_state(Module& m, const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  uint64_t n = 0;
  f.read(reinterpret_cast<char*>(&n), sizeof(n));
  std::vector<float> v(n);
  f.read(reinterpret_cast<char*>(v.data()),
         static_cast<std::streamsize>(n * sizeof(float)));
  if (!f) return false;
  vector_to_state(m, v);
  return true;
}

}  // namespace fqbert::nn
