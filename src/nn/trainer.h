// Minibatch trainer for BertModel: shuffled epochs, gradient
// accumulation, linear warmup + decay schedule, periodic evaluation.
//
// Used both for from-scratch float training and for quantization-aware
// fine-tuning (the QAT hooks live inside the model; the trainer is
// oblivious to them).
#pragma once

#include <functional>

#include "nn/bert.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace fqbert::nn {

struct TrainConfig {
  int epochs = 6;
  int batch_size = 16;
  AdamConfig adam;
  float warmup_fraction = 0.1f;  // fraction of total steps spent warming up
  uint64_t shuffle_seed = 1234;
  bool verbose = false;
  /// Called after each epoch with (epoch, train_loss, eval_accuracy).
  std::function<void(int, double, double)> on_epoch;
};

struct TrainResult {
  double final_train_loss = 0.0;
  double final_eval_accuracy = 0.0;
  int64_t steps = 0;
};

/// Train (or fine-tune) the model in place.
TrainResult train(BertModel& model, const std::vector<Example>& train_set,
                  const std::vector<Example>& eval_set,
                  const TrainConfig& config);

}  // namespace fqbert::nn
