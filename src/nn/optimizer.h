// Adam optimizer with decoupled weight decay and global grad clipping.
#pragma once

#include <cmath>
#include <vector>

#include "nn/module.h"

namespace fqbert::nn {

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
  float clip_grad_norm = 1.0f;  // <=0 disables clipping
};

class Adam {
 public:
  Adam(std::vector<Param*> params, AdamConfig config)
      : params_(std::move(params)), config_(config), lr_(config.lr) {
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (Param* p : params_) {
      m_.emplace_back(p->value.shape(), 0.0f);
      v_.emplace_back(p->value.shape(), 0.0f);
    }
  }

  /// Apply one update from accumulated gradients (scaled by 1/batch),
  /// then zero the gradients.
  void step(float grad_scale = 1.0f) {
    ++t_;
    clip_gradients(grad_scale);
    const float bc1 = 1.0f - std::pow(config_.beta1, static_cast<float>(t_));
    const float bc2 = 1.0f - std::pow(config_.beta2, static_cast<float>(t_));
    for (size_t i = 0; i < params_.size(); ++i) {
      Param* p = params_[i];
      Tensor& m = m_[i];
      Tensor& v = v_[i];
      for (int64_t j = 0; j < p->value.numel(); ++j) {
        const float g = p->grad[j] * grad_scale;
        m[j] = config_.beta1 * m[j] + (1.0f - config_.beta1) * g;
        v[j] = config_.beta2 * v[j] + (1.0f - config_.beta2) * g * g;
        const float mhat = m[j] / bc1;
        const float vhat = v[j] / bc2;
        p->value[j] -= lr_ * (mhat / (std::sqrt(vhat) + config_.eps) +
                              config_.weight_decay * p->value[j]);
      }
      p->zero_grad();
    }
  }

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }
  int64_t steps() const { return t_; }

 private:
  void clip_gradients(float grad_scale) {
    if (config_.clip_grad_norm <= 0.0f) return;
    double sq = 0.0;
    for (Param* p : params_)
      for (int64_t j = 0; j < p->grad.numel(); ++j) {
        const double g = static_cast<double>(p->grad[j]) * grad_scale;
        sq += g * g;
      }
    const double norm = std::sqrt(sq);
    if (norm <= config_.clip_grad_norm) return;
    const float scale = static_cast<float>(config_.clip_grad_norm / norm);
    for (Param* p : params_) scale_inplace(p->grad, scale);
  }

  std::vector<Param*> params_;
  AdamConfig config_;
  float lr_ = 0.0f;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  int64_t t_ = 0;
};

}  // namespace fqbert::nn
