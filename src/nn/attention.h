// Multi-head self-attention (Vaswani et al.) with hand-written backward.
//
// Layout convention: a sequence is a rank-2 [S, hidden] tensor; heads are
// contiguous column slices of width head_dim. Scores are scaled by
// 1/sqrt(head_dim) as in the paper's Fig. 1 "Scale" box. The attention
// probability matrices of all heads are stacked into one [heads*S, S]
// tensor so the softmax-quantization hook (Table II ablation) is applied
// exactly once per forward.
#pragma once

#include <memory>
#include <vector>

#include "nn/hooks.h"
#include "nn/layers.h"

namespace fqbert::nn {

class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(std::string name, int64_t hidden, int64_t num_heads,
                         Rng& rng);

  /// x: [S, hidden] -> [S, hidden].
  Tensor forward(const Tensor& x);

  /// dy: [S, hidden] -> dx: [S, hidden].
  Tensor backward(const Tensor& dy);

  void collect_params(std::vector<Param*>& out) override;

  int64_t hidden() const { return wq.out_features(); }
  int64_t num_heads() const { return num_heads_; }
  int64_t head_dim() const { return head_dim_; }

  Linear wq, wk, wv, wo;

  // Quantization points (Fig. 2 intermediate buffers: Q, K, V, Attn).
  HookedActivation q_node;      // Q before QKᵀ
  HookedActivation k_node;      // K before QKᵀ
  HookedActivation v_node;      // V before probs·V
  HookedActivation probs_node;  // softmax output ("Attn" matrix)
  HookedActivation ctx_node;    // concatenated context entering Wo

  /// Last (hooked) attention probabilities, stacked [heads*S, S].
  const Tensor& last_probs() const { return probs_; }

 private:
  int64_t num_heads_;
  int64_t head_dim_;

  // Forward caches.
  Tensor q_, k_, v_;   // hooked versions, [S, hidden]
  Tensor raw_probs_;   // softmax output before hook, [heads*S, S]
  Tensor probs_;       // after probs_node, [heads*S, S]
  Tensor ctx_;         // [S, hidden]
};

/// Copy head slice h (columns [h*dh, (h+1)*dh)) of src [S, hidden] into a
/// dense [S, dh] tensor.
Tensor head_slice(const Tensor& src, int64_t h, int64_t dh);

/// Accumulate a dense [S, dh] tensor back into head slice h of dst.
void head_unslice_add(Tensor& dst, const Tensor& part, int64_t h, int64_t dh);

/// Copy rows [r0, r0+n) of src into a new [n, cols] tensor.
Tensor rows_block(const Tensor& src, int64_t r0, int64_t n);

/// Overwrite rows [r0, r0+n) of dst with block.
void set_rows_block(Tensor& dst, const Tensor& block, int64_t r0);

}  // namespace fqbert::nn
