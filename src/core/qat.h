// Quantization-aware-training instrumentation.
//
// QatBert attaches fake-quantization hooks to an existing float BertModel
// according to an FqQuantConfig: weight hooks on every Linear and
// Embedding, EMA activation hooks on every intermediate-tensor node, the
// LUT-emulating hook on the softmax output when quantize_softmax is set,
// and fixed-grid hooks on LayerNorm parameters when quantize_layernorm is
// set. Detaching restores the float model untouched (hooks never mutate
// parameter values).
//
// The same object doubles as the calibration record: after (fine-)
// tuning, the converter in fq_bert.h reads the weight scales and EMA
// activation ranges straight from these hooks to build the integer-only
// engine.
#pragma once

#include <memory>
#include <vector>

#include "core/fq_config.h"
#include "nn/bert.h"
#include "quant/fake_quant.h"

namespace fqbert::core {

/// Per-encoder-layer hook bundle (indices match model.layers).
struct LayerHooks {
  // Weight hooks.
  std::unique_ptr<quant::WeightFakeQuant> wq, wk, wv, wo, ffn1, ffn2;
  // Activation hooks.
  std::unique_ptr<quant::ActFakeQuant> input;     // encoder-layer input
  std::unique_ptr<quant::ActFakeQuant> q, k, v;   // attention operands
  std::unique_ptr<quant::ActFakeQuant> ctx;       // concat output before Wo
  std::unique_ptr<quant::ActFakeQuant> attn_out;  // after Wo
  std::unique_ptr<quant::ActFakeQuant> ffn_in;    // LN1 output
  std::unique_ptr<quant::ActFakeQuant> pre_gelu;  // FFN1 output
  std::unique_ptr<quant::ActFakeQuant> ffn_mid;   // GELU output
  std::unique_ptr<quant::ActFakeQuant> ffn_out;   // FFN2 output
  // Softmax probabilities: exactly one of these is installed.
  std::unique_ptr<quant::SoftmaxLutFakeQuant> probs_lut;
  std::unique_ptr<quant::FixedGridFakeQuant> probs_linear;
  // LayerNorm parameter hooks (quantize_layernorm).
  std::unique_ptr<quant::FixedGridFakeQuant> ln1_gamma, ln1_beta;
  std::unique_ptr<quant::FixedGridFakeQuant> ln2_gamma, ln2_beta;
};

class QatBert {
 public:
  /// Attach hooks to the model. The model must outlive this object.
  QatBert(nn::BertModel& model, const FqQuantConfig& config);
  ~QatBert() { detach(); }

  QatBert(const QatBert&) = delete;
  QatBert& operator=(const QatBert&) = delete;

  /// Switch all EMA observers between update (training) and frozen mode.
  void set_training(bool training);

  /// Run forward passes over a calibration set to populate EMA ranges
  /// without touching weights.
  void calibrate(const std::vector<nn::Example>& data);

  /// Remove every hook from the model.
  void detach();

  nn::BertModel& model() { return model_; }
  const FqQuantConfig& config() const { return config_; }

  // Calibration record accessors (used by the converter).
  const LayerHooks& layer_hooks(size_t l) const { return *layer_hooks_[l]; }
  quant::WeightFakeQuant& tok_emb_hook() { return *tok_emb_; }
  quant::WeightFakeQuant& pos_emb_hook() { return *pos_emb_; }
  quant::WeightFakeQuant& seg_emb_hook() { return *seg_emb_; }
  quant::WeightFakeQuant& pooler_hook() { return *pooler_w_; }
  quant::WeightFakeQuant& classifier_hook() { return *classifier_w_; }
  quant::ActFakeQuant& emb_act_hook() { return *emb_act_; }
  quant::ActFakeQuant& final_act_hook() { return *final_act_; }

 private:
  nn::BertModel& model_;
  FqQuantConfig config_;
  bool attached_ = false;

  std::unique_ptr<quant::WeightFakeQuant> tok_emb_, pos_emb_, seg_emb_;
  std::unique_ptr<quant::WeightFakeQuant> pooler_w_, classifier_w_;
  std::unique_ptr<quant::ActFakeQuant> emb_act_, final_act_, pooled_act_;
  std::unique_ptr<quant::FixedGridFakeQuant> emb_ln_gamma_, emb_ln_beta_;
  std::vector<std::unique_ptr<LayerHooks>> layer_hooks_;
};

}  // namespace fqbert::core
