// Binary (de)serialization of the quantized engine.
//
// Format: magic + version, model/quant configs, the CPU-side float
// tables, then per layer: activation scales and each QuantLinear with
// int4-packed weight codes. The integer kernels (softmax LUT, GELU LUT,
// IntLayerNorm, requantizers) are deterministic functions of the stored
// scales and are rebuilt at load, so a round-trip engine is bit-exact.
#include <cmath>
#include <cstring>
#include <fstream>

#include "core/fq_bert.h"

namespace fqbert::core {

namespace {

constexpr char kMagic[8] = {'F', 'Q', 'B', 'E', 'R', 'T', '0', '1'};

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  return v;
}

template <typename T>
void write_vec(std::ostream& os, const std::vector<T>& v) {
  write_pod<uint64_t>(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::istream& is) {
  const auto n = read_pod<uint64_t>(is);
  std::vector<T> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  return v;
}

void write_tensor(std::ostream& os, const Tensor& t) {
  write_pod<uint64_t>(os, t.rank());
  for (size_t i = 0; i < t.rank(); ++i) write_pod<int64_t>(os, t.dim(i));
  write_vec(os, t.storage());
}

Tensor read_tensor(std::istream& is) {
  const auto rank = read_pod<uint64_t>(is);
  Shape shape(rank);
  for (auto& d : shape) d = read_pod<int64_t>(is);
  return Tensor(shape, read_vec<float>(is));
}

void write_quant_linear(std::ostream& os, const QuantLinear& q) {
  write_pod<int64_t>(os, q.in);
  write_pod<int64_t>(os, q.out);
  write_pod<int32_t>(os, q.weight_bits);
  write_pod<double>(os, q.w_scale);
  write_pod<double>(os, q.in_scale);
  write_pod<double>(os, q.out_scale);
  // Weights travel packed (the deployable format streams nibbles).
  write_pod<uint64_t>(os, q.w_codes16.size());
  write_vec(os, q.packed_weights());
  write_vec(os, q.bias_q);
}

QuantLinear read_quant_linear(std::istream& is) {
  QuantLinear q;
  q.in = read_pod<int64_t>(is);
  q.out = read_pod<int64_t>(is);
  q.weight_bits = read_pod<int32_t>(is);
  q.w_scale = read_pod<double>(is);
  q.in_scale = read_pod<double>(is);
  q.out_scale = read_pod<double>(is);
  const auto n_codes = read_pod<uint64_t>(is);
  const auto packed = read_vec<uint8_t>(is);
  if (q.weight_bits <= 4) {
    q.set_codes(quant::unpack_int4(packed, n_codes));
  } else {
    q.set_codes(std::vector<int8_t>(packed.begin(), packed.end()));
  }
  q.bias_q = read_vec<int32_t>(is);
  q.rq = quant::Requantizer::from_scale(q.out_scale /
                                        (q.in_scale * q.w_scale));
  return q;
}

void write_config(std::ostream& os, const nn::BertConfig& c) {
  for (int64_t v : {c.vocab_size, c.hidden, c.num_layers, c.num_heads,
                    c.ffn_dim, c.max_seq_len, c.num_segments, c.num_classes})
    write_pod<int64_t>(os, v);
}

nn::BertConfig read_config(std::istream& is) {
  nn::BertConfig c;
  c.vocab_size = read_pod<int64_t>(is);
  c.hidden = read_pod<int64_t>(is);
  c.num_layers = read_pod<int64_t>(is);
  c.num_heads = read_pod<int64_t>(is);
  c.ffn_dim = read_pod<int64_t>(is);
  c.max_seq_len = read_pod<int64_t>(is);
  c.num_segments = read_pod<int64_t>(is);
  c.num_classes = read_pod<int64_t>(is);
  return c;
}

void write_fq_config(std::ostream& os, const FqQuantConfig& q) {
  write_pod<int32_t>(os, q.weight_bits);
  write_pod<int32_t>(os, q.act_bits);
  write_pod<int32_t>(os, static_cast<int32_t>(q.clip));
  write_pod<double>(os, q.clip_percentile);
  write_pod<uint8_t>(os, q.quantize_weights_acts ? 1 : 0);
  write_pod<uint8_t>(os, q.quantize_scales ? 1 : 0);
  write_pod<uint8_t>(os, q.quantize_softmax ? 1 : 0);
  write_pod<uint8_t>(os, q.quantize_layernorm ? 1 : 0);
}

FqQuantConfig read_fq_config(std::istream& is) {
  FqQuantConfig q;
  q.weight_bits = read_pod<int32_t>(is);
  q.act_bits = read_pod<int32_t>(is);
  q.clip = static_cast<quant::ClipMode>(read_pod<int32_t>(is));
  q.clip_percentile = read_pod<double>(is);
  q.quantize_weights_acts = read_pod<uint8_t>(is) != 0;
  q.quantize_scales = read_pod<uint8_t>(is) != 0;
  q.quantize_softmax = read_pod<uint8_t>(is) != 0;
  q.quantize_layernorm = read_pod<uint8_t>(is) != 0;
  return q;
}

}  // namespace

bool FqBertModel::save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  os.write(kMagic, sizeof(kMagic));
  write_config(os, config_);
  write_fq_config(os, quant_config_);
  write_pod<double>(os, emb_scale_);
  write_tensor(os, tok_table_);
  write_tensor(os, pos_table_);
  write_tensor(os, seg_table_);
  write_vec(os, emb_ln_gamma_);
  write_vec(os, emb_ln_beta_);

  write_pod<uint64_t>(os, layers_.size());
  for (const FqEncoderLayer& l : layers_) {
    for (double s : {l.in_scale, l.q_scale, l.k_scale, l.v_scale,
                     l.ctx_scale, l.attn_out_scale, l.ffn_in_scale,
                     l.pre_gelu_scale, l.ffn_mid_scale, l.ffn_out_scale,
                     l.out_scale})
      write_pod<double>(os, s);
    for (const QuantLinear* q :
         {&l.wq, &l.wk, &l.wv, &l.wo, &l.ffn1, &l.ffn2})
      write_quant_linear(os, *q);
    write_vec(os, l.ln1_gamma);
    write_vec(os, l.ln1_beta);
    write_vec(os, l.ln2_gamma);
    write_vec(os, l.ln2_beta);
  }

  write_tensor(os, pooler_w_);
  write_tensor(os, classifier_w_);
  write_vec(os, pooler_b_);
  write_vec(os, classifier_b_);
  return static_cast<bool>(os);
}

FqBertModel FqBertModel::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open " + path);
  char magic[8];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("not an FQ-BERT model file: " + path);

  FqBertModel m;
  m.config_ = read_config(is);
  m.quant_config_ = read_fq_config(is);
  m.weight_bits_ = m.quant_config_.weight_bits;
  m.emb_scale_ = read_pod<double>(is);
  m.tok_table_ = read_tensor(is);
  m.pos_table_ = read_tensor(is);
  m.seg_table_ = read_tensor(is);
  m.emb_ln_gamma_ = read_vec<float>(is);
  m.emb_ln_beta_ = read_vec<float>(is);

  const auto n_layers = read_pod<uint64_t>(is);
  m.layers_.resize(n_layers);
  for (FqEncoderLayer& l : m.layers_) {
    l.hidden = m.config_.hidden;
    l.ffn_dim = m.config_.ffn_dim;
    l.num_heads = m.config_.num_heads;
    l.head_dim = m.config_.head_dim();
    l.use_int_softmax = m.quant_config_.quantize_softmax;
    l.use_int_layernorm = m.quant_config_.quantize_layernorm;
    for (double* s : {&l.in_scale, &l.q_scale, &l.k_scale, &l.v_scale,
                      &l.ctx_scale, &l.attn_out_scale, &l.ffn_in_scale,
                      &l.pre_gelu_scale, &l.ffn_mid_scale, &l.ffn_out_scale,
                      &l.out_scale})
      *s = read_pod<double>(is);
    for (QuantLinear* q : {&l.wq, &l.wk, &l.wv, &l.wo, &l.ffn1, &l.ffn2})
      *q = read_quant_linear(is);
    l.ln1_gamma = read_vec<float>(is);
    l.ln1_beta = read_vec<float>(is);
    l.ln2_gamma = read_vec<float>(is);
    l.ln2_beta = read_vec<float>(is);

    // Rebuild the derived integer kernels.
    l.softmax = std::make_unique<quant::IntSoftmax>(
        l.q_scale * l.k_scale * std::sqrt(static_cast<double>(l.head_dim)));
    l.gelu = std::make_unique<quant::IntGelu>(l.pre_gelu_scale,
                                              l.ffn_mid_scale);
    l.ln1 = std::make_unique<quant::IntLayerNorm>(l.ln1_gamma, l.ln1_beta,
                                                  l.ffn_in_scale);
    l.ln2 = std::make_unique<quant::IntLayerNorm>(l.ln2_gamma, l.ln2_beta,
                                                  l.out_scale);
    l.ctx_rq =
        quant::Requantizer::from_scale(l.ctx_scale / (255.0 * l.v_scale));
    l.res1_rq = quant::Requantizer::from_scale(l.attn_out_scale / l.in_scale);
    l.res2_rq =
        quant::Requantizer::from_scale(l.ffn_out_scale / l.ffn_in_scale);
  }

  m.pooler_w_ = read_tensor(is);
  m.classifier_w_ = read_tensor(is);
  m.pooler_b_ = read_vec<float>(is);
  m.classifier_b_ = read_vec<float>(is);
  if (!is) throw std::runtime_error("truncated FQ-BERT model file: " + path);
  return m;
}

}  // namespace fqbert::core
