// Binary (de)serialization of the quantized engine.
//
// Two on-disk formats share the metadata layout:
//
//   FQBERT01 — streamed. Weight codes travel int4-packed inline; load()
//   reads and unpacks them into owned storage.
//
//   FQBERT02 — mapped. The file is [magic | u64 weights_base | metadata
//   | weight region]. Each QuantLinear's metadata record carries a
//   relative offset into the weight region instead of inline codes, and
//   the region stores the arrays in their KERNEL-RESIDENT width (int8
//   for weight_bits <= 4, int16 above), 64-byte aligned. load_mapped()
//   mmaps the file read-only and points the engine's weight views
//   straight into the mapping: loading is O(page faults), and every
//   process serving the same file shares one physical copy of the
//   weight pages.
//
// The integer kernels (softmax LUT, GELU LUT, IntLayerNorm,
// requantizers) are deterministic functions of the stored scales and
// are rebuilt at load, so a round-trip engine is bit-exact in both
// formats.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "core/fq_bert.h"

namespace fqbert::core {

namespace {

constexpr char kMagic[8] = {'F', 'Q', 'B', 'E', 'R', 'T', '0', '1'};
constexpr char kMagicMapped[8] = {'F', 'Q', 'B', 'E', 'R', 'T', '0', '2'};
constexpr size_t kWeightAlign = 64;

size_t align_up(size_t v, size_t a) { return (v + a - 1) / a * a; }

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  return v;
}

template <typename T>
void write_vec(std::ostream& os, const std::vector<T>& v) {
  write_pod<uint64_t>(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::istream& is) {
  const auto n = read_pod<uint64_t>(is);
  std::vector<T> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  return v;
}

/// Bounds-checked cursor over the mapped file's metadata section. Any
/// overrun poisons `ok` and subsequent reads return zero values, so the
/// caller can validate once at the end (mirrors how istream sticks in a
/// failed state).
struct ByteReader {
  const uint8_t* p = nullptr;
  size_t n = 0;
  size_t off = 0;
  bool ok = true;

  bool take(void* dst, size_t bytes) {
    if (!ok || bytes > n - off) {
      ok = false;
      return false;
    }
    std::memcpy(dst, p + off, bytes);
    off += bytes;
    return true;
  }
};

template <typename T>
T read_pod(ByteReader& r) {
  T v{};
  r.take(&v, sizeof(T));
  return v;
}

template <typename T>
std::vector<T> read_vec(ByteReader& r) {
  const auto count = read_pod<uint64_t>(r);
  if (!r.ok || count > (r.n - r.off) / sizeof(T)) {
    r.ok = false;
    return {};
  }
  std::vector<T> v(static_cast<size_t>(count));
  r.take(v.data(), static_cast<size_t>(count) * sizeof(T));
  return v;
}

void write_tensor(std::ostream& os, const Tensor& t) {
  write_pod<uint64_t>(os, t.rank());
  for (size_t i = 0; i < t.rank(); ++i) write_pod<int64_t>(os, t.dim(i));
  write_vec(os, t.storage());
}

template <typename Reader>
Tensor read_tensor(Reader& is) {
  const auto rank = read_pod<uint64_t>(is);
  Shape shape(rank);
  for (auto& d : shape) d = read_pod<int64_t>(is);
  return Tensor(shape, read_vec<float>(is));
}

void write_quant_linear(std::ostream& os, const QuantLinear& q) {
  write_pod<int64_t>(os, q.in);
  write_pod<int64_t>(os, q.out);
  write_pod<int32_t>(os, q.weight_bits);
  write_pod<double>(os, q.w_scale);
  write_pod<double>(os, q.in_scale);
  write_pod<double>(os, q.out_scale);
  // Weights travel packed (the deployable format streams nibbles).
  write_pod<uint64_t>(os, static_cast<uint64_t>(q.in * q.out));
  write_vec(os, q.packed_weights());
  write_vec(os, q.bias_q);
}

QuantLinear read_quant_linear(std::istream& is) {
  QuantLinear q;
  q.in = read_pod<int64_t>(is);
  q.out = read_pod<int64_t>(is);
  q.weight_bits = read_pod<int32_t>(is);
  q.w_scale = read_pod<double>(is);
  q.in_scale = read_pod<double>(is);
  q.out_scale = read_pod<double>(is);
  const auto n_codes = read_pod<uint64_t>(is);
  const auto packed = read_vec<uint8_t>(is);
  if (q.weight_bits <= 4) {
    q.set_codes(quant::unpack_int4(packed, n_codes));
  } else {
    q.set_codes(std::vector<int8_t>(packed.begin(), packed.end()));
  }
  q.bias_q = read_vec<int32_t>(is);
  q.rq = quant::Requantizer::from_scale(q.out_scale /
                                        (q.in_scale * q.w_scale));
  return q;
}

/// FQBERT02 QuantLinear record: same scalar prefix as v1, then the
/// weight blob's relative offset in the weight region instead of the
/// inline packed codes.
void write_quant_linear_mapped(std::ostream& os, const QuantLinear& q,
                               uint64_t rel_offset) {
  write_pod<int64_t>(os, q.in);
  write_pod<int64_t>(os, q.out);
  write_pod<int32_t>(os, q.weight_bits);
  write_pod<double>(os, q.w_scale);
  write_pod<double>(os, q.in_scale);
  write_pod<double>(os, q.out_scale);
  write_pod<uint64_t>(os, rel_offset);
  write_vec(os, q.bias_q);
}

void write_config(std::ostream& os, const nn::BertConfig& c) {
  for (int64_t v : {c.vocab_size, c.hidden, c.num_layers, c.num_heads,
                    c.ffn_dim, c.max_seq_len, c.num_segments, c.num_classes})
    write_pod<int64_t>(os, v);
}

template <typename Reader>
nn::BertConfig read_config(Reader& is) {
  nn::BertConfig c;
  c.vocab_size = read_pod<int64_t>(is);
  c.hidden = read_pod<int64_t>(is);
  c.num_layers = read_pod<int64_t>(is);
  c.num_heads = read_pod<int64_t>(is);
  c.ffn_dim = read_pod<int64_t>(is);
  c.max_seq_len = read_pod<int64_t>(is);
  c.num_segments = read_pod<int64_t>(is);
  c.num_classes = read_pod<int64_t>(is);
  return c;
}

void write_fq_config(std::ostream& os, const FqQuantConfig& q) {
  write_pod<int32_t>(os, q.weight_bits);
  write_pod<int32_t>(os, q.act_bits);
  write_pod<int32_t>(os, static_cast<int32_t>(q.clip));
  write_pod<double>(os, q.clip_percentile);
  write_pod<uint8_t>(os, q.quantize_weights_acts ? 1 : 0);
  write_pod<uint8_t>(os, q.quantize_scales ? 1 : 0);
  write_pod<uint8_t>(os, q.quantize_softmax ? 1 : 0);
  write_pod<uint8_t>(os, q.quantize_layernorm ? 1 : 0);
}

template <typename Reader>
FqQuantConfig read_fq_config(Reader& is) {
  FqQuantConfig q;
  q.weight_bits = read_pod<int32_t>(is);
  q.act_bits = read_pod<int32_t>(is);
  q.clip = static_cast<quant::ClipMode>(read_pod<int32_t>(is));
  q.clip_percentile = read_pod<double>(is);
  q.quantize_weights_acts = read_pod<uint8_t>(is) != 0;
  q.quantize_scales = read_pod<uint8_t>(is) != 0;
  q.quantize_softmax = read_pod<uint8_t>(is) != 0;
  q.quantize_layernorm = read_pod<uint8_t>(is) != 0;
  return q;
}

}  // namespace

bool FqBertModel::save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  os.write(kMagic, sizeof(kMagic));
  write_config(os, config_);
  write_fq_config(os, quant_config_);
  write_pod<double>(os, emb_scale_);
  write_tensor(os, tok_table_);
  write_tensor(os, pos_table_);
  write_tensor(os, seg_table_);
  write_vec(os, emb_ln_gamma_);
  write_vec(os, emb_ln_beta_);

  write_pod<uint64_t>(os, layers_.size());
  for (const FqEncoderLayer& l : layers_) {
    for (double s : {l.in_scale, l.q_scale, l.k_scale, l.v_scale,
                     l.ctx_scale, l.attn_out_scale, l.ffn_in_scale,
                     l.pre_gelu_scale, l.ffn_mid_scale, l.ffn_out_scale,
                     l.out_scale})
      write_pod<double>(os, s);
    for (const QuantLinear* q :
         {&l.wq, &l.wk, &l.wv, &l.wo, &l.ffn1, &l.ffn2})
      write_quant_linear(os, *q);
    write_vec(os, l.ln1_gamma);
    write_vec(os, l.ln1_beta);
    write_vec(os, l.ln2_gamma);
    write_vec(os, l.ln2_beta);
  }

  write_tensor(os, pooler_w_);
  write_tensor(os, classifier_w_);
  write_vec(os, pooler_b_);
  write_vec(os, classifier_b_);
  return static_cast<bool>(os);
}

FqBertModel FqBertModel::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open " + path);
  char magic[8];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("not an FQ-BERT model file: " + path);

  FqBertModel m;
  m.config_ = read_config(is);
  m.quant_config_ = read_fq_config(is);
  m.weight_bits_ = m.quant_config_.weight_bits;
  m.emb_scale_ = read_pod<double>(is);
  m.tok_table_ = read_tensor(is);
  m.pos_table_ = read_tensor(is);
  m.seg_table_ = read_tensor(is);
  m.emb_ln_gamma_ = read_vec<float>(is);
  m.emb_ln_beta_ = read_vec<float>(is);

  const auto n_layers = read_pod<uint64_t>(is);
  m.layers_.resize(n_layers);
  for (FqEncoderLayer& l : m.layers_) {
    l.hidden = m.config_.hidden;
    l.ffn_dim = m.config_.ffn_dim;
    l.num_heads = m.config_.num_heads;
    l.head_dim = m.config_.head_dim();
    l.use_int_softmax = m.quant_config_.quantize_softmax;
    l.use_int_layernorm = m.quant_config_.quantize_layernorm;
    for (double* s : {&l.in_scale, &l.q_scale, &l.k_scale, &l.v_scale,
                      &l.ctx_scale, &l.attn_out_scale, &l.ffn_in_scale,
                      &l.pre_gelu_scale, &l.ffn_mid_scale, &l.ffn_out_scale,
                      &l.out_scale})
      *s = read_pod<double>(is);
    for (QuantLinear* q : {&l.wq, &l.wk, &l.wv, &l.wo, &l.ffn1, &l.ffn2})
      *q = read_quant_linear(is);
    l.ln1_gamma = read_vec<float>(is);
    l.ln1_beta = read_vec<float>(is);
    l.ln2_gamma = read_vec<float>(is);
    l.ln2_beta = read_vec<float>(is);
    // The derived integer kernels are functions of the scales above.
    rebuild_derived_kernels(l);
  }

  m.pooler_w_ = read_tensor(is);
  m.classifier_w_ = read_tensor(is);
  m.pooler_b_ = read_vec<float>(is);
  m.classifier_b_ = read_vec<float>(is);
  if (!is) throw std::runtime_error("truncated FQ-BERT model file: " + path);
  return m;
}

bool FqBertModel::save_mapped(const std::string& path) const {
  // Pass 1: lay out the weight region. Each blob lands 64-byte aligned
  // at a relative offset, stored in its kernel-resident width, so a
  // mapped view of it is usable with zero rewriting.
  std::vector<const QuantLinear*> linears;
  for (const FqEncoderLayer& l : layers_)
    for (const QuantLinear* q :
         {&l.wq, &l.wk, &l.wv, &l.wo, &l.ffn1, &l.ffn2})
      linears.push_back(q);
  std::vector<uint64_t> rel(linears.size());
  size_t region = 0;
  for (size_t i = 0; i < linears.size(); ++i) {
    region = align_up(region, kWeightAlign);
    rel[i] = region;
    region += linears[i]->weight_bytes();
  }

  // Pass 2: metadata (v1 field order, mapped QuantLinear records) into
  // a memory buffer so weights_base is known before anything hits disk.
  std::ostringstream meta;
  write_config(meta, config_);
  write_fq_config(meta, quant_config_);
  write_pod<double>(meta, emb_scale_);
  write_tensor(meta, tok_table_);
  write_tensor(meta, pos_table_);
  write_tensor(meta, seg_table_);
  write_vec(meta, emb_ln_gamma_);
  write_vec(meta, emb_ln_beta_);
  write_pod<uint64_t>(meta, layers_.size());
  size_t li = 0;
  for (const FqEncoderLayer& l : layers_) {
    for (double s : {l.in_scale, l.q_scale, l.k_scale, l.v_scale,
                     l.ctx_scale, l.attn_out_scale, l.ffn_in_scale,
                     l.pre_gelu_scale, l.ffn_mid_scale, l.ffn_out_scale,
                     l.out_scale})
      write_pod<double>(meta, s);
    for (const QuantLinear* q :
         {&l.wq, &l.wk, &l.wv, &l.wo, &l.ffn1, &l.ffn2})
      write_quant_linear_mapped(meta, *q, rel[li++]);
    write_vec(meta, l.ln1_gamma);
    write_vec(meta, l.ln1_beta);
    write_vec(meta, l.ln2_gamma);
    write_vec(meta, l.ln2_beta);
  }
  write_tensor(meta, pooler_w_);
  write_tensor(meta, classifier_w_);
  write_vec(meta, pooler_b_);
  write_vec(meta, classifier_b_);
  const std::string meta_bytes = meta.str();

  const uint64_t weights_base = align_up(
      sizeof(kMagicMapped) + sizeof(uint64_t) + meta_bytes.size(),
      kWeightAlign);
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  os.write(kMagicMapped, sizeof(kMagicMapped));
  write_pod<uint64_t>(os, weights_base);
  os.write(meta_bytes.data(),
           static_cast<std::streamsize>(meta_bytes.size()));
  const auto pad_to = [&os](uint64_t from, uint64_t to) {
    static constexpr char zeros[kWeightAlign] = {};
    for (uint64_t at = from; at < to; at += sizeof(zeros))
      os.write(zeros, static_cast<std::streamsize>(
                          std::min<uint64_t>(sizeof(zeros), to - at)));
  };
  pad_to(sizeof(kMagicMapped) + sizeof(uint64_t) + meta_bytes.size(),
         weights_base);
  uint64_t cursor = 0;
  for (size_t i = 0; i < linears.size(); ++i) {
    pad_to(cursor, rel[i]);
    const QuantLinear& q = *linears[i];
    const char* bytes = q.narrow_storage()
                            ? reinterpret_cast<const char*>(q.narrow_data())
                            : reinterpret_cast<const char*>(q.wide_data());
    os.write(bytes, static_cast<std::streamsize>(q.weight_bytes()));
    cursor = rel[i] + q.weight_bytes();
  }
  return static_cast<bool>(os);
}

FqBertModel FqBertModel::load_mapped(const std::string& path) {
  auto mapping = std::make_shared<platform::MappedFile>();
  if (!mapping->open(path)) throw std::runtime_error(mapping->error());
  const uint8_t* base = mapping->data();
  const size_t file_size = mapping->size();
  constexpr size_t kPrefix = sizeof(kMagicMapped) + sizeof(uint64_t);
  if (file_size < kPrefix ||
      std::memcmp(base, kMagicMapped, sizeof(kMagicMapped)) != 0)
    throw std::runtime_error("not an FQBERT02 engine file: " + path);
  uint64_t weights_base = 0;
  std::memcpy(&weights_base, base + sizeof(kMagicMapped),
              sizeof(weights_base));
  if (weights_base < kPrefix || weights_base > file_size)
    throw std::runtime_error("corrupt FQBERT02 engine file: " + path);
  const size_t region_size = file_size - static_cast<size_t>(weights_base);

  ByteReader is{base + kPrefix, static_cast<size_t>(weights_base) - kPrefix,
                0, true};
  FqBertModel m;
  m.config_ = read_config(is);
  m.quant_config_ = read_fq_config(is);
  m.weight_bits_ = m.quant_config_.weight_bits;
  m.emb_scale_ = read_pod<double>(is);
  m.tok_table_ = read_tensor(is);
  m.pos_table_ = read_tensor(is);
  m.seg_table_ = read_tensor(is);
  m.emb_ln_gamma_ = read_vec<float>(is);
  m.emb_ln_beta_ = read_vec<float>(is);

  const auto n_layers = read_pod<uint64_t>(is);
  if (!is.ok || n_layers > (1u << 20))
    throw std::runtime_error("corrupt FQBERT02 engine file: " + path);
  m.layers_.resize(static_cast<size_t>(n_layers));
  for (FqEncoderLayer& l : m.layers_) {
    l.hidden = m.config_.hidden;
    l.ffn_dim = m.config_.ffn_dim;
    l.num_heads = m.config_.num_heads;
    l.head_dim = m.config_.head_dim();
    l.use_int_softmax = m.quant_config_.quantize_softmax;
    l.use_int_layernorm = m.quant_config_.quantize_layernorm;
    for (double* s : {&l.in_scale, &l.q_scale, &l.k_scale, &l.v_scale,
                      &l.ctx_scale, &l.attn_out_scale, &l.ffn_in_scale,
                      &l.pre_gelu_scale, &l.ffn_mid_scale, &l.ffn_out_scale,
                      &l.out_scale})
      *s = read_pod<double>(is);
    for (QuantLinear* qp : {&l.wq, &l.wk, &l.wv, &l.wo, &l.ffn1, &l.ffn2}) {
      QuantLinear q;
      q.in = read_pod<int64_t>(is);
      q.out = read_pod<int64_t>(is);
      q.weight_bits = read_pod<int32_t>(is);
      q.w_scale = read_pod<double>(is);
      q.in_scale = read_pod<double>(is);
      q.out_scale = read_pod<double>(is);
      const auto rel = read_pod<uint64_t>(is);
      q.bias_q = read_vec<int32_t>(is);
      if (!is.ok || q.in < 0 || q.out < 0 ||
          (q.out != 0 &&
           q.in > static_cast<int64_t>(SIZE_MAX / 2) / q.out))
        throw std::runtime_error("corrupt FQBERT02 engine file: " + path);
      const size_t elems = static_cast<size_t>(q.in * q.out);
      const size_t width = q.weight_bits <= 4 ? 1 : sizeof(int16_t);
      if (rel % kWeightAlign != 0 || rel > region_size ||
          elems > (region_size - static_cast<size_t>(rel)) / width)
        throw std::runtime_error("corrupt FQBERT02 engine file: " + path);
      const uint8_t* wptr = base + weights_base + rel;
      if (q.narrow_storage())
        q.w_map8 = reinterpret_cast<const int8_t*>(wptr);
      else
        q.w_map16 = reinterpret_cast<const int16_t*>(wptr);
      q.rq = quant::Requantizer::from_scale(q.out_scale /
                                            (q.in_scale * q.w_scale));
      *qp = std::move(q);
    }
    l.ln1_gamma = read_vec<float>(is);
    l.ln1_beta = read_vec<float>(is);
    l.ln2_gamma = read_vec<float>(is);
    l.ln2_beta = read_vec<float>(is);
    rebuild_derived_kernels(l);
  }

  m.pooler_w_ = read_tensor(is);
  m.classifier_w_ = read_tensor(is);
  m.pooler_b_ = read_vec<float>(is);
  m.classifier_b_ = read_vec<float>(is);
  if (!is.ok)
    throw std::runtime_error("truncated FQBERT02 engine file: " + path);
  // The weight views above stay valid exactly as long as this mapping
  // does; the model owns it (and copies of the model share it).
  m.mapping_ = std::move(mapping);
  return m;
}

FqBertModel FqBertModel::load_any(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open " + path);
  char magic[8] = {};
  is.read(magic, sizeof(magic));
  const bool mapped =
      is && std::memcmp(magic, kMagicMapped, sizeof(kMagicMapped)) == 0;
  is.close();
  return mapped ? load_mapped(path) : load(path);
}

}  // namespace fqbert::core
