#include "core/fq_bert.h"

#include <cmath>

#include "core/model_size.h"
#include "nn/layers.h"

namespace fqbert::core {

using quant::clip_threshold;
using quant::quantize_scale_8bit;
using quant::Requantizer;
using quant::scale_from_threshold;

namespace {

/// Activation scale from a calibrated EMA hook.
double act_scale_of(quant::ActFakeQuant& hook, const FqQuantConfig& cfg) {
  if (!hook.observer().initialized()) {
    throw std::runtime_error(
        "activation observer not calibrated; run QatBert::calibrate first");
  }
  double scale = scale_from_threshold(hook.observer().value(), cfg.act_bits);
  if (cfg.quantize_scales) scale = quantize_scale_8bit(scale);
  return scale;
}

/// Weight scale recomputed from the final trained weights.
double weight_scale_of(const Tensor& w, const FqQuantConfig& cfg) {
  const double t = clip_threshold(w, cfg.clip, cfg.clip_percentile);
  double s = scale_from_threshold(t, cfg.weight_bits);
  if (cfg.quantize_scales) s = quantize_scale_8bit(s);
  return s;
}

QuantLinear make_quant_linear(const nn::Linear& lin, double in_scale,
                              double out_scale, const FqQuantConfig& cfg) {
  QuantLinear q;
  q.in = lin.in_features();
  q.out = lin.out_features();
  q.weight_bits = cfg.weight_bits;
  q.in_scale = in_scale;
  q.out_scale = out_scale;
  q.w_scale = weight_scale_of(lin.weight.value, cfg);

  std::vector<int8_t> codes(static_cast<size_t>(q.out * q.in));
  for (int64_t i = 0; i < lin.weight.value.numel(); ++i)
    codes[static_cast<size_t>(i)] = static_cast<int8_t>(
        quant::quantize_value(lin.weight.value[i], q.w_scale, cfg.weight_bits));
  q.set_codes(codes);

  // Eq. 4: biases on the accumulator grid s_in * s_w.
  q.bias_q.resize(static_cast<size_t>(q.out));
  const double sbias = q.in_scale * q.w_scale;
  for (int64_t i = 0; i < q.out; ++i)
    q.bias_q[static_cast<size_t>(i)] = static_cast<int32_t>(
        std::nearbyint(static_cast<double>(lin.bias.value[i]) * sbias));

  // Eq. 5: sf = s_y / (s_a * s_w).
  q.rq = Requantizer::from_scale(out_scale / sbias);
  return q;
}

/// Dequantized copy of a weight tensor (what the "CPU side" computes with:
/// the low-bit codes expanded back to float).
Tensor dequantized_weights(const Tensor& w, const FqQuantConfig& cfg) {
  const double s = weight_scale_of(w, cfg);
  return quant::fake_quantize_tensor(w, s, cfg.weight_bits);
}

std::vector<float> maybe_fixed_grid(const Tensor& v, bool quantize,
                                    double grid_scale) {
  std::vector<float> out(static_cast<size_t>(v.numel()));
  for (int64_t i = 0; i < v.numel(); ++i) {
    out[static_cast<size_t>(i)] =
        quantize ? static_cast<float>(
                       std::nearbyint(v[i] * grid_scale) / grid_scale)
                 : v[i];
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// QuantLinear
// ---------------------------------------------------------------------------

void QuantLinear::forward_i8(const std::vector<int8_t>& x,
                             std::vector<int8_t>& y, int64_t rows) const {
  // Grow-only thread-local scratch keeps the const API reentrant and
  // the standalone call allocation-free in steady state.
  static thread_local std::vector<int32_t> acc;
  static thread_local std::vector<int16_t> panel;
  forward_i8(x, y, rows, acc, panel);
}

void QuantLinear::forward_i8(const std::vector<int8_t>& x,
                             std::vector<int8_t>& y, int64_t rows,
                             std::vector<int32_t>& acc,
                             std::vector<int16_t>& panel) const {
  // Width dispatch to the templated panel kernel: both instantiations
  // widen every weight to int32 in the multiply, so the narrow (int8)
  // and wide (int16) resident layouts are bit-identical.
  if (narrow_storage())
    int_matmul_wt_panel(x, narrow_data(), acc, rows, in, out, panel);
  else
    int_matmul_wt_panel(x, wide_data(), acc, rows, in, out, panel);
  requantize_i8(acc, bias_q, rq, y, rows, out);
}

void QuantLinear::set_codes(const std::vector<int8_t>& codes) {
  w_map8 = nullptr;
  w_map16 = nullptr;
  if (narrow_storage()) {
    w_own8 = codes;
    w_own16.clear();
    w_own16.shrink_to_fit();
  } else {
    w_own16.assign(codes.begin(), codes.end());
    w_own8.clear();
    w_own8.shrink_to_fit();
  }
}

std::vector<int8_t> QuantLinear::narrow_codes() const {
  const auto n = static_cast<size_t>(in * out);
  std::vector<int8_t> codes(n);
  if (narrow_storage()) {
    const int8_t* src = narrow_data();
    std::copy(src, src + n, codes.begin());
  } else {
    const int16_t* src = wide_data();
    for (size_t i = 0; i < n; ++i) codes[i] = static_cast<int8_t>(src[i]);
  }
  return codes;
}

std::vector<uint8_t> QuantLinear::packed_weights() const {
  const std::vector<int8_t> codes = narrow_codes();
  if (weight_bits > 4) {
    return std::vector<uint8_t>(codes.begin(), codes.end());
  }
  return quant::pack_int4(codes);
}

// ---------------------------------------------------------------------------
// FqEncoderLayer
// ---------------------------------------------------------------------------

void FqEncoderLayer::forward(const std::vector<int8_t>& x,
                             std::vector<int8_t>& y, int64_t s_len) const {
  // One integer compute path: the single-request forward is a batch of
  // one sequence over the panel kernel. The thread-local scratch keeps
  // the const API reentrant and the call allocation-free in steady
  // state; it is distinct from the model-level forward_batch scratch,
  // so callers handing in their own buffers never alias it.
  static thread_local FqBatchScratch scratch;
  static thread_local std::vector<int64_t> one_seq(1);
  one_seq[0] = s_len;
  forward_batch(x, y, one_seq, scratch);
}

void FqEncoderLayer::forward_batch(const std::vector<int8_t>& x,
                                   std::vector<int8_t>& y,
                                   const std::vector<int64_t>& seq_lens,
                                   FqBatchScratch& s) const {
  int64_t total = 0;
  for (int64_t len : seq_lens) total += len;

  // Projections batched over every row of every sequence: one matmul
  // per weight matrix instead of one per sequence.
  std::vector<int8_t>&q = s.q, &k = s.k, &v = s.v;
  wq.forward_i8(x, q, total, s.acc, s.panel);
  wk.forward_i8(x, k, total, s.acc, s.panel);
  wv.forward_i8(x, v, total, s.acc, s.panel);

  // Attention is the only token-mixing stage, so it runs per sequence;
  // everything else below stays row-local and batches freely.
  std::vector<int8_t>& ctx = s.ctx;
  ctx.resize(static_cast<size_t>(total * hidden));
  std::vector<int8_t>&qh = s.qh, &kh = s.kh, &vh = s.vh;
  std::vector<int32_t>&scores = s.scores, &probs = s.probs,
                      &ctx_acc = s.ctx_acc;

  int64_t off = 0;
  for (const int64_t s_len : seq_lens) {
    qh.resize(static_cast<size_t>(s_len * head_dim));
    kh.resize(static_cast<size_t>(s_len * head_dim));
    vh.resize(static_cast<size_t>(s_len * head_dim));
    for (int64_t h = 0; h < num_heads; ++h) {
      for (int64_t r = 0; r < s_len; ++r) {
        const int64_t row = off + r;
        const int8_t* qrow = q.data() + row * hidden + h * head_dim;
        const int8_t* krow = k.data() + row * hidden + h * head_dim;
        const int8_t* vrow = v.data() + row * hidden + h * head_dim;
        std::copy(qrow, qrow + head_dim, qh.data() + r * head_dim);
        std::copy(krow, krow + head_dim, kh.data() + r * head_dim);
        std::copy(vrow, vrow + head_dim, vh.data() + r * head_dim);
      }
      // QK^T through the panel kernel too: K is tiny per head, so
      // widening it once is far cheaper than the scalar kernel's
      // per-element extensions (bit-identical either way).
      s.kh16.assign(kh.begin(), kh.end());
      int_matmul_wt_panel(qh, s.kh16, scores, s_len, head_dim, s_len,
                          s.panel);
      apply_softmax(scores, probs, s_len);
      int_matmul_pv(probs, vh, ctx_acc, s_len, s_len, head_dim);
      for (int64_t r = 0; r < s_len; ++r) {
        int8_t* crow = ctx.data() + (off + r) * hidden + h * head_dim;
        const int32_t* arow = ctx_acc.data() + r * head_dim;
        for (int64_t c = 0; c < head_dim; ++c)
          crow[c] = static_cast<int8_t>(
              quant::saturate_signed(ctx_rq.apply(arow[c]), 8));
      }
    }
    off += s_len;
  }

  std::vector<int8_t>& attn_out = s.attn_out;
  wo.forward_i8(ctx, attn_out, total, s.acc, s.panel);

  std::vector<int32_t>& res = s.res;
  res.resize(static_cast<size_t>(total * hidden));
  for (int64_t i = 0; i < total * hidden; ++i)
    res[static_cast<size_t>(i)] =
        static_cast<int32_t>(attn_out[static_cast<size_t>(i)]) +
        res1_rq.apply(x[static_cast<size_t>(i)]);

  std::vector<int8_t>& ffn_x = s.ffn_x;
  apply_layernorm(res, ffn_x, total, /*first=*/true);

  std::vector<int8_t>&pre = s.pre, &mid = s.mid, &fo = s.fo;
  ffn1.forward_i8(ffn_x, pre, total, s.acc, s.panel);
  mid.resize(pre.size());
  for (size_t i = 0; i < pre.size(); ++i) mid[i] = gelu->apply(pre[i]);
  ffn2.forward_i8(mid, fo, total, s.acc, s.panel);

  for (int64_t i = 0; i < total * hidden; ++i)
    res[static_cast<size_t>(i)] =
        static_cast<int32_t>(fo[static_cast<size_t>(i)]) +
        res2_rq.apply(ffn_x[static_cast<size_t>(i)]);
  apply_layernorm(res, y, total, /*first=*/false);
}

void FqEncoderLayer::apply_softmax(const std::vector<int32_t>& scores,
                                   std::vector<int32_t>& probs,
                                   int64_t s_len) const {
  if (use_int_softmax) {
    softmax->apply(scores, probs, s_len, s_len);
    return;
  }
  // Float softmax on dequantized scores; the output still lands on the
  // 255 grid (it must be 8-bit to enter the next matmul).
  const double score_scale =
      q_scale * k_scale * std::sqrt(static_cast<double>(head_dim));
  probs.resize(static_cast<size_t>(s_len * s_len));
  std::vector<float> row(static_cast<size_t>(s_len));
  std::vector<float> prow(static_cast<size_t>(s_len));
  for (int64_t r = 0; r < s_len; ++r) {
    for (int64_t c = 0; c < s_len; ++c)
      row[static_cast<size_t>(c)] = static_cast<float>(
          scores[static_cast<size_t>(r * s_len + c)] / score_scale);
    quant::softmax_reference(row.data(), prow.data(), s_len);
    for (int64_t c = 0; c < s_len; ++c)
      probs[static_cast<size_t>(r * s_len + c)] = static_cast<int32_t>(
          std::nearbyint(prow[static_cast<size_t>(c)] * 255.0));
  }
}

void FqEncoderLayer::apply_layernorm(const std::vector<int32_t>& res,
                                     std::vector<int8_t>& out, int64_t s_len,
                                     bool first) const {
  if (use_int_layernorm) {
    const quant::IntLayerNorm& ln = first ? *ln1 : *ln2;
    ln.apply(res, out, s_len);
    return;
  }
  // Float fallback: dequantize the residual (scale of the second residual
  // operand), normalize in float, requantize to the stage output grid.
  const double res_scale = first ? attn_out_scale : ffn_out_scale;
  const double o_scale = first ? ffn_in_scale : out_scale;
  const std::vector<float>& gamma = first ? ln1_gamma : ln2_gamma;
  const std::vector<float>& beta = first ? ln1_beta : ln2_beta;

  out.resize(static_cast<size_t>(s_len * hidden));
  std::vector<double> row(static_cast<size_t>(hidden));
  for (int64_t r = 0; r < s_len; ++r) {
    const int32_t* xr = res.data() + r * hidden;
    double mu = 0.0;
    for (int64_t c = 0; c < hidden; ++c) {
      row[static_cast<size_t>(c)] = static_cast<double>(xr[c]) / res_scale;
      mu += row[static_cast<size_t>(c)];
    }
    mu /= static_cast<double>(hidden);
    double var = 0.0;
    for (int64_t c = 0; c < hidden; ++c) {
      const double d = row[static_cast<size_t>(c)] - mu;
      var += d * d;
    }
    var /= static_cast<double>(hidden);
    const double inv_std = 1.0 / std::sqrt(var + 1e-5);
    for (int64_t c = 0; c < hidden; ++c) {
      const double y = (row[static_cast<size_t>(c)] - mu) * inv_std *
                           gamma[static_cast<size_t>(c)] +
                       beta[static_cast<size_t>(c)];
      out[static_cast<size_t>(r * hidden + c)] = static_cast<int8_t>(
          quant::quantize_value(static_cast<float>(y), o_scale, 8));
    }
  }
}

// ---------------------------------------------------------------------------
// FqBertModel
// ---------------------------------------------------------------------------

FqBertModel FqBertModel::convert(QatBert& qat) {
  nn::BertModel& m = qat.model();
  const FqQuantConfig& cfg = qat.config();
  if (!cfg.quantize_weights_acts) {
    throw std::invalid_argument(
        "conversion requires quantize_weights_acts=true (the float "
        "baseline is the nn::BertModel itself)");
  }

  FqBertModel out;
  out.config_ = m.config();
  out.quant_config_ = cfg;
  out.weight_bits_ = cfg.weight_bits;

  // CPU-side front: dequantized low-bit embedding tables.
  out.tok_table_ = dequantized_weights(m.tok_emb.table.value, cfg);
  out.pos_table_ = dequantized_weights(m.pos_emb.table.value, cfg);
  out.seg_table_ = dequantized_weights(m.seg_emb.table.value, cfg);
  const double ln_grid = 1 << quant::IntLayerNorm::kGammaFracBits;
  out.emb_ln_gamma_ = maybe_fixed_grid(m.emb_ln.gamma.value,
                                       cfg.quantize_layernorm, ln_grid);
  out.emb_ln_beta_ = maybe_fixed_grid(m.emb_ln.beta.value,
                                      cfg.quantize_layernorm, ln_grid);

  const size_t num_layers = m.layers.size();
  out.layers_.resize(num_layers);
  for (size_t l = 0; l < num_layers; ++l) {
    const LayerHooks& h = qat.layer_hooks(l);
    nn::EncoderLayer& src = *m.layers[l];
    FqEncoderLayer& dst = out.layers_[l];

    dst.hidden = out.config_.hidden;
    dst.ffn_dim = out.config_.ffn_dim;
    dst.num_heads = out.config_.num_heads;
    dst.head_dim = out.config_.head_dim();
    dst.use_int_softmax = cfg.quantize_softmax;
    dst.use_int_layernorm = cfg.quantize_layernorm;

    dst.in_scale = act_scale_of(*h.input, cfg);
    dst.q_scale = act_scale_of(*h.q, cfg);
    dst.k_scale = act_scale_of(*h.k, cfg);
    dst.v_scale = act_scale_of(*h.v, cfg);
    dst.ctx_scale = act_scale_of(*h.ctx, cfg);
    dst.attn_out_scale = act_scale_of(*h.attn_out, cfg);
    dst.ffn_in_scale = act_scale_of(*h.ffn_in, cfg);
    dst.pre_gelu_scale = act_scale_of(*h.pre_gelu, cfg);
    dst.ffn_mid_scale = act_scale_of(*h.ffn_mid, cfg);
    dst.ffn_out_scale = act_scale_of(*h.ffn_out, cfg);
    dst.out_scale = l + 1 < num_layers
                        ? act_scale_of(*qat.layer_hooks(l + 1).input, cfg)
                        : act_scale_of(qat.final_act_hook(), cfg);

    dst.wq = make_quant_linear(src.attn.wq, dst.in_scale, dst.q_scale, cfg);
    dst.wk = make_quant_linear(src.attn.wk, dst.in_scale, dst.k_scale, cfg);
    dst.wv = make_quant_linear(src.attn.wv, dst.in_scale, dst.v_scale, cfg);
    dst.wo = make_quant_linear(src.attn.wo, dst.ctx_scale,
                               dst.attn_out_scale, cfg);
    dst.ffn1 = make_quant_linear(src.ffn1, dst.ffn_in_scale,
                                 dst.pre_gelu_scale, cfg);
    dst.ffn2 = make_quant_linear(src.ffn2, dst.ffn_mid_scale,
                                 dst.ffn_out_scale, cfg);

    dst.ln1_gamma = maybe_fixed_grid(src.ln1.gamma.value,
                                     cfg.quantize_layernorm, ln_grid);
    dst.ln1_beta = maybe_fixed_grid(src.ln1.beta.value,
                                    cfg.quantize_layernorm, ln_grid);
    dst.ln2_gamma = maybe_fixed_grid(src.ln2.gamma.value,
                                     cfg.quantize_layernorm, ln_grid);
    dst.ln2_beta = maybe_fixed_grid(src.ln2.beta.value,
                                    cfg.quantize_layernorm, ln_grid);
    rebuild_derived_kernels(dst);
  }

  out.emb_scale_ = out.layers_.empty()
                       ? act_scale_of(qat.emb_act_hook(), cfg)
                       : out.layers_[0].in_scale;

  // CPU-side head.
  out.pooler_w_ = dequantized_weights(m.pooler.weight.value, cfg);
  out.classifier_w_ = dequantized_weights(m.classifier.weight.value, cfg);
  out.pooler_b_.assign(m.pooler.bias.value.data(),
                       m.pooler.bias.value.data() +
                           m.pooler.bias.value.numel());
  out.classifier_b_.assign(m.classifier.bias.value.data(),
                           m.classifier.bias.value.data() +
                               m.classifier.bias.value.numel());
  return out;
}

std::vector<int8_t> FqBertModel::embed(const nn::Example& ex) const {
  std::vector<int8_t> codes(ex.tokens.size() *
                            static_cast<size_t>(config_.hidden));
  embed_into(ex, codes.data());
  return codes;
}

void FqBertModel::embed_into(const nn::Example& ex, int8_t* codes) const {
  const int64_t s_len = static_cast<int64_t>(ex.tokens.size());
  const int64_t hdim = config_.hidden;

  for (int64_t r = 0; r < s_len; ++r) {
    // Sum of the three (dequantized) embedding rows.
    std::vector<double> row(static_cast<size_t>(hdim));
    const float* tok = tok_table_.row(ex.tokens[static_cast<size_t>(r)]);
    const float* pos = pos_table_.row(r);
    const float* seg = seg_table_.row(ex.segments[static_cast<size_t>(r)]);
    for (int64_t c = 0; c < hdim; ++c)
      row[static_cast<size_t>(c)] =
          static_cast<double>(tok[c]) + pos[c] + seg[c];

    // Float LayerNorm (CPU side), then quantize to the encoder grid.
    double mu = 0.0;
    for (double vv : row) mu += vv;
    mu /= static_cast<double>(hdim);
    double var = 0.0;
    for (double vv : row) var += (vv - mu) * (vv - mu);
    var /= static_cast<double>(hdim);
    const double inv_std = 1.0 / std::sqrt(var + 1e-5);
    for (int64_t c = 0; c < hdim; ++c) {
      const double xhat = (row[static_cast<size_t>(c)] - mu) * inv_std;
      const double yv = xhat * emb_ln_gamma_[static_cast<size_t>(c)] +
                        emb_ln_beta_[static_cast<size_t>(c)];
      codes[static_cast<size_t>(r * hdim + c)] = static_cast<int8_t>(
          quant::quantize_value(static_cast<float>(yv), emb_scale_, 8));
    }
  }
}

Tensor FqBertModel::head(const std::vector<int8_t>& final_codes) const {
  return head_row(final_codes.data());
}

Tensor FqBertModel::head_row(const int8_t* cls_codes) const {
  const int64_t hdim = config_.hidden;
  const double final_scale =
      layers_.empty() ? emb_scale_ : layers_.back().out_scale;

  // CPU-side head on the dequantized CLS row.
  Tensor cls(Shape{1, hdim});
  for (int64_t c = 0; c < hdim; ++c)
    cls[c] = static_cast<float>(cls_codes[c] / final_scale);

  Tensor pooled;
  matmul_bt(cls, pooler_w_, pooled);
  for (int64_t c = 0; c < hdim; ++c)
    pooled[c] = std::tanh(pooled[c] + pooler_b_[static_cast<size_t>(c)]);

  Tensor logits;
  matmul_bt(pooled, classifier_w_, logits);
  for (int64_t c = 0; c < config_.num_classes; ++c)
    logits[c] += classifier_b_[static_cast<size_t>(c)];
  return logits.reshaped(Shape{config_.num_classes});
}

Tensor FqBertModel::forward(const nn::Example& ex) const {
  // Batch of one through the unified panel-kernel path: same integer
  // arithmetic, same scratch reuse, bit-identical logits.
  std::vector<Tensor> logits = forward_batch({&ex});
  return std::move(logits[0]);
}

std::vector<Tensor> FqBertModel::forward_batch(
    const std::vector<const nn::Example*>& batch) const {
  if (batch.empty()) return {};

  // Pack the examples into one ragged int8 batch (no padding): example
  // i's rows start at offsets[i].
  std::vector<int64_t> seq_lens(batch.size());
  std::vector<int64_t> offsets(batch.size());
  int64_t total = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    seq_lens[i] = static_cast<int64_t>(batch[i]->tokens.size());
    offsets[i] = total;
    total += seq_lens[i];
  }

  // Per-thread grow-only scratch: the serving hot loop stays
  // allocation-free in steady state, which is where most of the
  // batching win over per-example forward() comes from on CPU.
  static thread_local FqBatchScratch scratch;

  const int64_t hdim = config_.hidden;
  std::vector<int8_t>* x = &scratch.act_a;
  std::vector<int8_t>* y = &scratch.act_b;
  x->resize(static_cast<size_t>(total * hdim));
  for (size_t i = 0; i < batch.size(); ++i)
    embed_into(*batch[i], x->data() + offsets[i] * hdim);

  for (const FqEncoderLayer& layer : layers_) {
    layer.forward_batch(*x, *y, seq_lens, scratch);
    std::swap(x, y);
  }

  std::vector<Tensor> logits;
  logits.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i)
    logits.push_back(head_row(x->data() + offsets[i] * hdim));
  return logits;
}

std::vector<Tensor> FqBertModel::forward_batch(
    const std::vector<nn::Example>& batch) const {
  std::vector<const nn::Example*> ptrs;
  ptrs.reserve(batch.size());
  for (const nn::Example& ex : batch) ptrs.push_back(&ex);
  return forward_batch(ptrs);
}

int32_t FqBertModel::predict(const nn::Example& ex) const {
  Tensor logits = forward(ex);
  return static_cast<int32_t>(argmax(logits.data(), logits.numel()));
}

double FqBertModel::accuracy(const std::vector<nn::Example>& data) const {
  if (data.empty()) return 0.0;
  int64_t correct = 0;
  for (const nn::Example& ex : data)
    if (predict(ex) == ex.label) ++correct;
  return 100.0 * static_cast<double>(correct) /
         static_cast<double>(data.size());
}

quant::SizeReport FqBertModel::size_report() const {
  return model_size_report(config_, quant_config_);
}

void rebuild_derived_kernels(FqEncoderLayer& layer) {
  const double score_scale =
      layer.q_scale * layer.k_scale *
      std::sqrt(static_cast<double>(layer.head_dim));
  layer.softmax = std::make_unique<quant::IntSoftmax>(score_scale);
  layer.gelu = std::make_unique<quant::IntGelu>(layer.pre_gelu_scale,
                                                layer.ffn_mid_scale);
  layer.ln1 = std::make_unique<quant::IntLayerNorm>(layer.ln1_gamma,
                                                    layer.ln1_beta,
                                                    layer.ffn_in_scale);
  layer.ln2 = std::make_unique<quant::IntLayerNorm>(layer.ln2_gamma,
                                                    layer.ln2_beta,
                                                    layer.out_scale);
  layer.ctx_rq =
      Requantizer::from_scale(layer.ctx_scale / (255.0 * layer.v_scale));
  layer.res1_rq =
      Requantizer::from_scale(layer.attn_out_scale / layer.in_scale);
  layer.res2_rq =
      Requantizer::from_scale(layer.ffn_out_scale / layer.ffn_in_scale);
}

namespace {

/// Rescale one quantized linear layer onto a new bit-width's grid.
/// The weight scale moves by qmax(new)/qmax(old) so the represented
/// float range is preserved; codes and biases are re-rounded by the
/// exact factor the scale actually moved (which differs from the pure
/// ratio when 8-bit scale quantization re-snaps it).
QuantLinear derive_quant_linear(const QuantLinear& src, int new_bits,
                                const FqQuantConfig& cfg) {
  QuantLinear q;
  q.in = src.in;
  q.out = src.out;
  q.weight_bits = new_bits;
  q.in_scale = src.in_scale;
  q.out_scale = src.out_scale;

  const double ratio =
      static_cast<double>(quant::qmax_signed(new_bits)) /
      static_cast<double>(quant::qmax_signed(src.weight_bits));
  double s_new = src.w_scale * ratio;
  if (cfg.quantize_scales) s_new = quantize_scale_8bit(s_new);
  q.w_scale = s_new;
  const double factor = s_new / src.w_scale;

  const std::vector<int8_t> old_codes = src.narrow_codes();
  std::vector<int8_t> codes(old_codes.size());
  const int64_t qmax = quant::qmax_signed(new_bits);
  for (size_t i = 0; i < old_codes.size(); ++i) {
    const auto scaled = static_cast<int64_t>(
        std::nearbyint(static_cast<double>(old_codes[i]) * factor));
    codes[i] = static_cast<int8_t>(
        std::max(-qmax, std::min(qmax, scaled)));
  }
  q.set_codes(codes);

  q.bias_q.resize(src.bias_q.size());
  for (size_t i = 0; i < src.bias_q.size(); ++i)
    q.bias_q[i] = static_cast<int32_t>(
        std::nearbyint(static_cast<double>(src.bias_q[i]) * factor));

  // Eq. 5 on the new weight grid.
  q.rq = Requantizer::from_scale(q.out_scale / (q.in_scale * q.w_scale));
  return q;
}

}  // namespace

FqBertModel FqBertModel::derive_tier(int new_bits) const {
  if (new_bits < 2 || new_bits > 8)
    throw std::invalid_argument(
        "derive_tier: weight bits must be in [2, 8]");

  FqBertModel out;
  out.config_ = config_;
  out.quant_config_ = quant_config_;
  out.quant_config_.weight_bits = new_bits;
  out.weight_bits_ = new_bits;

  // The CPU-side front and head are float-compute over already
  // dequantized tables; the tier's bit-width governs the encoder's
  // integer weights, so these carry over unchanged.
  out.tok_table_ = tok_table_;
  out.pos_table_ = pos_table_;
  out.seg_table_ = seg_table_;
  out.emb_ln_gamma_ = emb_ln_gamma_;
  out.emb_ln_beta_ = emb_ln_beta_;
  out.emb_scale_ = emb_scale_;
  out.pooler_w_ = pooler_w_;
  out.classifier_w_ = classifier_w_;
  out.pooler_b_ = pooler_b_;
  out.classifier_b_ = classifier_b_;

  out.layers_.resize(layers_.size());
  for (size_t l = 0; l < layers_.size(); ++l) {
    const FqEncoderLayer& src = layers_[l];
    FqEncoderLayer& dst = out.layers_[l];
    dst.hidden = src.hidden;
    dst.ffn_dim = src.ffn_dim;
    dst.num_heads = src.num_heads;
    dst.head_dim = src.head_dim;
    dst.use_int_softmax = src.use_int_softmax;
    dst.use_int_layernorm = src.use_int_layernorm;
    dst.in_scale = src.in_scale;
    dst.q_scale = src.q_scale;
    dst.k_scale = src.k_scale;
    dst.v_scale = src.v_scale;
    dst.ctx_scale = src.ctx_scale;
    dst.attn_out_scale = src.attn_out_scale;
    dst.ffn_in_scale = src.ffn_in_scale;
    dst.pre_gelu_scale = src.pre_gelu_scale;
    dst.ffn_mid_scale = src.ffn_mid_scale;
    dst.ffn_out_scale = src.ffn_out_scale;
    dst.out_scale = src.out_scale;
    dst.ln1_gamma = src.ln1_gamma;
    dst.ln1_beta = src.ln1_beta;
    dst.ln2_gamma = src.ln2_gamma;
    dst.ln2_beta = src.ln2_beta;

    dst.wq = derive_quant_linear(src.wq, new_bits, out.quant_config_);
    dst.wk = derive_quant_linear(src.wk, new_bits, out.quant_config_);
    dst.wv = derive_quant_linear(src.wv, new_bits, out.quant_config_);
    dst.wo = derive_quant_linear(src.wo, new_bits, out.quant_config_);
    dst.ffn1 = derive_quant_linear(src.ffn1, new_bits, out.quant_config_);
    dst.ffn2 = derive_quant_linear(src.ffn2, new_bits, out.quant_config_);

    rebuild_derived_kernels(dst);
  }
  return out;
}

size_t FqBertModel::resident_weight_bytes() const {
  size_t total = 0;
  for (const FqEncoderLayer& layer : layers_)
    for (const QuantLinear* q : {&layer.wq, &layer.wk, &layer.wv, &layer.wo,
                                 &layer.ffn1, &layer.ffn2})
      total += q->weight_bytes();
  return total;
}

}  // namespace fqbert::core
