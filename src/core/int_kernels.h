// Integer matrix kernels used by the FQ-BERT inference engine.
//
// These are the *functional* counterparts of the accelerator datapath:
// int8 activations times int4/int8 weights accumulated in int32, then
// requantized. The cycle-level simulator in src/accel executes the same
// arithmetic through its BIM model; tests assert both paths agree
// bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "quant/fixed_point.h"

namespace fqbert::core {

/// acc[m,n] = sum_k a[m,k] * w[n,k]  (weight row-major [n, k], i.e. the
/// usual [out, in] layout; both operands as int8 codes). This is the
/// paper-reference kernel, kept as the oracle that tests compare the
/// production panel kernel against — it is not on any inference path.
void int_matmul_wt(const std::vector<int8_t>& a, const std::vector<int8_t>& w,
                   std::vector<int32_t>& acc, int64_t m, int64_t k, int64_t n);

/// Row-panel blocked kernel used by every inference path (single-request
/// and batched): weights arrive in their resident width — int8 codes for
/// bit-widths <= 4, int16 for wider — and activations are widened one
/// 4-row panel at a time into `panel`, so the inner loops compile to
/// widening multiply-adds and every weight load is shared by four rows.
/// Remainder rows (m % 4, including the m < 4 short-sequence case) are
/// specialized to read activations directly, without panel staging or
/// padding. Bit-identical to int_matmul_wt — integer dot products are
/// exact under reordering (accumulators stay far below int32 range), and
/// widening int8 weights is value-preserving, so both widths agree. The
/// pointer overloads carry no weight-size check; callers pass arrays of
/// exactly n*k elements (the vector overload asserts it).
void int_matmul_wt_panel(const std::vector<int8_t>& a, const int16_t* w16,
                         std::vector<int32_t>& acc, int64_t m, int64_t k,
                         int64_t n, std::vector<int16_t>& panel);
void int_matmul_wt_panel(const std::vector<int8_t>& a, const int8_t* w8,
                         std::vector<int32_t>& acc, int64_t m, int64_t k,
                         int64_t n, std::vector<int16_t>& panel);
void int_matmul_wt_panel(const std::vector<int8_t>& a,
                         const std::vector<int16_t>& w16,
                         std::vector<int32_t>& acc, int64_t m, int64_t k,
                         int64_t n, std::vector<int16_t>& panel);

/// acc[m,n] = sum_k a[m,k] * b[n,k]ᵀ for two activation matrices
/// (QKᵀ: both int8).
inline void int_matmul_bt(const std::vector<int8_t>& a,
                          const std::vector<int8_t>& b,
                          std::vector<int32_t>& acc, int64_t m, int64_t k,
                          int64_t n) {
  int_matmul_wt(a, b, acc, m, k, n);
}

/// acc[m,n] = sum_k p[m,k] * v[k,n] with p unsigned 8-bit codes (0..255,
/// stored in int32) and v int8 (probs · V).
void int_matmul_pv(const std::vector<int32_t>& p, const std::vector<int8_t>& v,
                   std::vector<int32_t>& acc, int64_t m, int64_t k, int64_t n);

/// Requantize an int32 accumulator tensor (+ per-output-channel bias) to
/// int8 codes: out = saturate(requant(acc + bias)).
void requantize_i8(const std::vector<int32_t>& acc,
                   const std::vector<int32_t>& bias_per_col,
                   const quant::Requantizer& rq, std::vector<int8_t>& out,
                   int64_t rows, int64_t cols);

}  // namespace fqbert::core
