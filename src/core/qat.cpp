#include "core/qat.h"

#include "quant/int_layernorm.h"

namespace fqbert::core {

using quant::ActFakeQuant;
using quant::FakeQuantConfig;
using quant::FixedGridFakeQuant;
using quant::SoftmaxLutFakeQuant;
using quant::WeightFakeQuant;

namespace {

FakeQuantConfig weight_fq(const FqQuantConfig& c) {
  FakeQuantConfig f;
  f.bits = c.weight_bits;
  f.clip = c.clip;
  f.percentile = c.clip_percentile;
  f.quantize_scale = c.quantize_scales;
  return f;
}

FakeQuantConfig act_fq(const FqQuantConfig& c) {
  FakeQuantConfig f;
  f.bits = c.act_bits;
  f.clip = quant::ClipMode::kNone;
  f.quantize_scale = c.quantize_scales;
  return f;
}

}  // namespace

QatBert::QatBert(nn::BertModel& model, const FqQuantConfig& config)
    : model_(model), config_(config) {
  if (!config.quantize_weights_acts) return;  // float baseline: no hooks

  const FakeQuantConfig wcfg = weight_fq(config);
  const FakeQuantConfig acfg = act_fq(config);
  const double mom = config.ema_momentum;

  auto make_w = [&] { return std::make_unique<WeightFakeQuant>(wcfg); };
  auto make_a = [&] { return std::make_unique<ActFakeQuant>(acfg, mom); };

  // Embedding tables and the head (paper: full quantization of weights).
  tok_emb_ = make_w();
  pos_emb_ = make_w();
  seg_emb_ = make_w();
  pooler_w_ = make_w();
  classifier_w_ = make_w();
  emb_act_ = make_a();
  final_act_ = make_a();
  pooled_act_ = make_a();

  model_.tok_emb.weight_hook = tok_emb_.get();
  model_.pos_emb.weight_hook = pos_emb_.get();
  model_.seg_emb.weight_hook = seg_emb_.get();
  model_.pooler.weight_hook = pooler_w_.get();
  model_.classifier.weight_hook = classifier_w_.get();
  model_.emb_node.hook = emb_act_.get();
  model_.final_node.hook = final_act_.get();
  model_.pooled_node.hook = pooled_act_.get();

  if (config.quantize_layernorm) {
    const double gscale = 1 << quant::IntLayerNorm::kGammaFracBits;
    emb_ln_gamma_ = std::make_unique<FixedGridFakeQuant>(
        FixedGridFakeQuant::signed_bits(gscale, 8));
    emb_ln_beta_ = std::make_unique<FixedGridFakeQuant>(
        FixedGridFakeQuant::signed_bits(gscale, 8));
    model_.emb_ln.gamma_hook = emb_ln_gamma_.get();
    model_.emb_ln.beta_hook = emb_ln_beta_.get();
  }

  layer_hooks_.clear();
  for (auto& layer : model_.layers) {
    auto h = std::make_unique<LayerHooks>();
    h->wq = make_w();
    h->wk = make_w();
    h->wv = make_w();
    h->wo = make_w();
    h->ffn1 = make_w();
    h->ffn2 = make_w();
    layer->attn.wq.weight_hook = h->wq.get();
    layer->attn.wk.weight_hook = h->wk.get();
    layer->attn.wv.weight_hook = h->wv.get();
    layer->attn.wo.weight_hook = h->wo.get();
    layer->ffn1.weight_hook = h->ffn1.get();
    layer->ffn2.weight_hook = h->ffn2.get();

    h->input = make_a();
    h->q = make_a();
    h->k = make_a();
    h->v = make_a();
    h->ctx = make_a();
    h->attn_out = make_a();
    h->ffn_in = make_a();
    h->pre_gelu = make_a();
    h->ffn_mid = make_a();
    h->ffn_out = make_a();
    layer->input_node.hook = h->input.get();
    layer->attn.q_node.hook = h->q.get();
    layer->attn.k_node.hook = h->k.get();
    layer->attn.v_node.hook = h->v.get();
    layer->attn.ctx_node.hook = h->ctx.get();
    layer->attn_out_node.hook = h->attn_out.get();
    layer->ffn_in_node.hook = h->ffn_in.get();
    layer->pre_gelu_node.hook = h->pre_gelu.get();
    layer->ffn_mid_node.hook = h->ffn_mid.get();
    layer->ffn_out_node.hook = h->ffn_out.get();

    if (config.quantize_softmax) {
      h->probs_lut = std::make_unique<SoftmaxLutFakeQuant>();
      layer->attn.probs_node.hook = h->probs_lut.get();
    } else {
      // Plain 8-bit activation quantization on the fixed [0,1] range.
      h->probs_linear = std::make_unique<FixedGridFakeQuant>(
          FixedGridFakeQuant::unsigned_bits(255.0, 8));
      layer->attn.probs_node.hook = h->probs_linear.get();
    }

    if (config.quantize_layernorm) {
      const double gscale = 1 << quant::IntLayerNorm::kGammaFracBits;
      h->ln1_gamma = std::make_unique<FixedGridFakeQuant>(
          FixedGridFakeQuant::signed_bits(gscale, 8));
      h->ln1_beta = std::make_unique<FixedGridFakeQuant>(
          FixedGridFakeQuant::signed_bits(gscale, 8));
      h->ln2_gamma = std::make_unique<FixedGridFakeQuant>(
          FixedGridFakeQuant::signed_bits(gscale, 8));
      h->ln2_beta = std::make_unique<FixedGridFakeQuant>(
          FixedGridFakeQuant::signed_bits(gscale, 8));
      layer->ln1.gamma_hook = h->ln1_gamma.get();
      layer->ln1.beta_hook = h->ln1_beta.get();
      layer->ln2.gamma_hook = h->ln2_gamma.get();
      layer->ln2.beta_hook = h->ln2_beta.get();
    }

    layer_hooks_.push_back(std::move(h));
  }
  attached_ = true;
}

void QatBert::set_training(bool training) {
  if (!attached_) return;
  emb_act_->set_training(training);
  final_act_->set_training(training);
  pooled_act_->set_training(training);
  for (auto& h : layer_hooks_) {
    for (ActFakeQuant* a : {h->input.get(), h->q.get(), h->k.get(),
                            h->v.get(), h->ctx.get(), h->attn_out.get(), h->ffn_in.get(),
                            h->pre_gelu.get(), h->ffn_mid.get(),
                            h->ffn_out.get()})
      a->set_training(training);
  }
}

void QatBert::calibrate(const std::vector<nn::Example>& data) {
  if (!attached_) return;
  set_training(true);
  for (const nn::Example& ex : data) model_.forward(ex);
  set_training(false);
}

void QatBert::detach() {
  if (!attached_) return;
  model_.tok_emb.weight_hook = nullptr;
  model_.pos_emb.weight_hook = nullptr;
  model_.seg_emb.weight_hook = nullptr;
  model_.pooler.weight_hook = nullptr;
  model_.classifier.weight_hook = nullptr;
  model_.emb_node.hook = nullptr;
  model_.final_node.hook = nullptr;
  model_.pooled_node.hook = nullptr;
  model_.emb_ln.gamma_hook = nullptr;
  model_.emb_ln.beta_hook = nullptr;
  for (auto& layer : model_.layers) {
    layer->attn.wq.weight_hook = nullptr;
    layer->attn.wk.weight_hook = nullptr;
    layer->attn.wv.weight_hook = nullptr;
    layer->attn.wo.weight_hook = nullptr;
    layer->ffn1.weight_hook = nullptr;
    layer->ffn2.weight_hook = nullptr;
    layer->input_node.hook = nullptr;
    layer->attn.q_node.hook = nullptr;
    layer->attn.k_node.hook = nullptr;
    layer->attn.v_node.hook = nullptr;
    layer->attn.ctx_node.hook = nullptr;
    layer->attn_out_node.hook = nullptr;
    layer->ffn_in_node.hook = nullptr;
    layer->pre_gelu_node.hook = nullptr;
    layer->ffn_mid_node.hook = nullptr;
    layer->ffn_out_node.hook = nullptr;
    layer->attn.probs_node.hook = nullptr;
    layer->ln1.gamma_hook = nullptr;
    layer->ln1.beta_hook = nullptr;
    layer->ln2.gamma_hook = nullptr;
    layer->ln2.beta_hook = nullptr;
  }
  attached_ = false;
}

}  // namespace fqbert::core
