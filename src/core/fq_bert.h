// FQ-BERT: the integer-only inference engine (the paper's primary
// contribution, Sec. II).
//
// A trained, QAT-instrumented float model is *converted* into this
// engine: weights become int4/int8 codes, biases 32-bit integers
// (Eq. 4), every activation an int8 code on a calibrated scale, and the
// per-matmul rescaling a 32-bit fixed-point requantizer (Eq. 5). Softmax
// runs through the 256-entry exp LUT, LayerNorm through the integer LN
// kernel, GELU through a code-to-code LUT.
//
// Deployment split follows the paper's Fig. 2: embeddings and the task
// head are computed "CPU-side" (float arithmetic over *dequantized*
// low-bit weights), while the encoder stack is strictly integer — the
// part the FPGA executes.
//
// Per-part toggles (FqQuantConfig) select float fallbacks for softmax /
// LayerNorm / scale precision so the Table II ablation runs through the
// very same engine.
#pragma once

#include <memory>
#include <vector>

#include "core/fq_config.h"
#include "core/int_kernels.h"
#include "core/qat.h"
#include "platform/mapped_file.h"
#include "quant/int_gelu.h"
#include "quant/int_layernorm.h"
#include "quant/int_softmax.h"
#include "quant/packing.h"

namespace fqbert::core {

/// Reusable scratch for the batched forward path. A batch touches
/// buffers proportional to batch-rows x ffn_dim; reusing them across
/// batches keeps the serving hot loop allocation-free (large per-batch
/// allocations otherwise fall into mmap'd chunks whose page faults
/// dominate the batching win).
struct FqBatchScratch {
  std::vector<int8_t> act_a, act_b;  // ping-pong activations [rows, hidden]
  std::vector<int8_t> q, k, v, ctx, attn_out, ffn_x, pre, mid, fo;
  std::vector<int8_t> qh, kh, vh;
  std::vector<int16_t> panel;  // widened 4-row activation panel
  std::vector<int16_t> kh16;   // widened K head (QK^T panel operand)
  std::vector<int32_t> acc, res, scores, probs, ctx_acc;
};

/// A quantized linear layer: int8 activations x int4/int8 weights ->
/// int32 accumulators -> requantized int8 outputs.
///
/// Weights are resident in the NARROWEST width the panel kernel can
/// consume for the layer's bit-width: int8 codes when weight_bits <= 4
/// (half the memory of the old always-int16 layout — the property that
/// lets an int4 tier serve next to an int8 tier at ~half the resident
/// weight bytes), int16 codes otherwise. Widening is value-preserving,
/// so both storage widths produce bit-identical accumulators.
///
/// Storage is either OWNED (w_own8/w_own16, filled by conversion,
/// stream load, or tier derivation) or a MAPPED VIEW (w_map8/w_map16,
/// pointing into a read-only mmap of an FQBERT02 engine file; the
/// mapping is kept alive by the owning FqBertModel). Accessors pick
/// whichever is active; a mapped view takes precedence.
struct QuantLinear {
  int64_t in = 0, out = 0;
  int weight_bits = 4;
  std::vector<int8_t> w_own8;    // [out, in] row-major (weight_bits <= 4)
  std::vector<int16_t> w_own16;  // [out, in] row-major (weight_bits > 4)
  const int8_t* w_map8 = nullptr;    // view into a mapped engine file
  const int16_t* w_map16 = nullptr;  // (both null unless mmap-loaded)
  std::vector<int32_t> bias_q;   // round(bias * s_in * s_w), Eq. 4
  double w_scale = 1.0;
  double in_scale = 1.0;
  double out_scale = 1.0;
  quant::Requantizer rq;  // s_out / (s_in * s_w), Eq. 5

  /// True when the resident width for this bit-width is int8.
  bool narrow_storage() const { return weight_bits <= 4; }
  const int8_t* narrow_data() const {
    return w_map8 != nullptr ? w_map8 : w_own8.data();
  }
  const int16_t* wide_data() const {
    return w_map16 != nullptr ? w_map16 : w_own16.data();
  }
  /// Resident bytes of the weight codes (owned or mapped).
  size_t weight_bytes() const {
    const auto n = static_cast<size_t>(in * out);
    return narrow_storage() ? n : n * sizeof(int16_t);
  }

  /// x: int8 codes [rows, in] on in_scale -> y: int8 codes [rows, out]
  /// through the panel kernel. Reentrant-const (thread-local scratch).
  void forward_i8(const std::vector<int8_t>& x, std::vector<int8_t>& y,
                  int64_t rows) const;

  /// Same, with caller-provided scratch (the batched serving hot loop
  /// reuses one accumulator / panel pair across all layers).
  void forward_i8(const std::vector<int8_t>& x, std::vector<int8_t>& y,
                  int64_t rows, std::vector<int32_t>& acc,
                  std::vector<int16_t>& panel) const;

  /// Install the trained/loaded int8 weight codes into the resident
  /// width selected by weight_bits (drops any mapped view).
  void set_codes(const std::vector<int8_t>& codes);

  /// The int8 weight codes, narrowed/copied from the resident store
  /// (exact: every code fits int8 for any supported bit-width).
  std::vector<int8_t> narrow_codes() const;

  /// Packed (2-per-byte) weight bytes for size accounting / streaming.
  std::vector<uint8_t> packed_weights() const;
};

/// One integer encoder layer.
struct FqEncoderLayer {
  int64_t hidden = 0, ffn_dim = 0, num_heads = 0, head_dim = 0;
  bool use_int_softmax = true;
  bool use_int_layernorm = true;

  QuantLinear wq, wk, wv, wo, ffn1, ffn2;

  // Activation scales (from QAT calibration).
  double in_scale = 1.0;        // layer input (LN2 output of prev layer)
  double q_scale = 1.0, k_scale = 1.0, v_scale = 1.0;
  double ctx_scale = 1.0;       // concat output entering Wo
  double attn_out_scale = 1.0;  // Wo output
  double ffn_in_scale = 1.0;    // LN1 output
  double pre_gelu_scale = 1.0;
  double ffn_mid_scale = 1.0;
  double ffn_out_scale = 1.0;
  double out_scale = 1.0;       // LN2 output

  // Integer kernels (built at conversion time).
  std::unique_ptr<quant::IntSoftmax> softmax;
  std::unique_ptr<quant::IntGelu> gelu;
  std::unique_ptr<quant::IntLayerNorm> ln1, ln2;
  quant::Requantizer ctx_rq;   // 1/255 * (255*s_v -> s_ctx)
  quant::Requantizer res1_rq;  // in_scale -> attn_out_scale grid
  quant::Requantizer res2_rq;  // ffn_in_scale -> ffn_out_scale grid

  // Float LN parameters for the non-quantized-LN fallback.
  std::vector<float> ln1_gamma, ln1_beta, ln2_gamma, ln2_beta;

  /// x: int8 [S, hidden] on in_scale -> int8 [S, hidden] on out_scale.
  /// Delegates to forward_batch with a single sequence and a
  /// thread-local scratch, so single-request and batched inference run
  /// the identical panel-kernel compute path. Reentrant-const.
  void forward(const std::vector<int8_t>& x, std::vector<int8_t>& y,
               int64_t s_len) const;

  /// Ragged-batched forward: `x` holds several sequences concatenated
  /// row-wise (sequence i spans seq_lens[i] rows, no padding between
  /// them). The four projections and the FFN run as single matmuls over
  /// all rows; attention runs per sequence, so every sequence's output
  /// is bit-identical to a standalone forward() call. All intermediates
  /// live in `scratch` (grow-only; reuse it across batches to keep the
  /// serving hot loop allocation-free). Reentrant-const as long as each
  /// thread uses its own scratch.
  void forward_batch(const std::vector<int8_t>& x, std::vector<int8_t>& y,
                     const std::vector<int64_t>& seq_lens,
                     FqBatchScratch& scratch) const;

  /// LN1 (first=true) or LN2 over int32 residual rows; integer kernel or
  /// float fallback depending on use_int_layernorm.  The residual input
  /// is on the attn_out (LN1) / ffn_out (LN2) scale. Public so the
  /// accelerator's functional simulator can replay the exact pipeline.
  void apply_layernorm(const std::vector<int32_t>& res,
                       std::vector<int8_t>& out, int64_t s_len,
                       bool first) const;

  /// Integer softmax step on one head's scores (see forward); exposed
  /// for the functional simulator.
  void apply_softmax(const std::vector<int32_t>& scores,
                     std::vector<int32_t>& probs, int64_t s_len) const;
};

/// Full FQ-BERT classifier.
class FqBertModel {
 public:
  /// Convert a trained, instrumented model. The QAT hooks must have seen
  /// data (train or calibrate) so every EMA observer is initialized.
  static FqBertModel convert(QatBert& qat);

  /// Float logits for one example (head computed CPU-side). Runs as a
  /// batch of one through the unified panel-kernel path; reentrant-const.
  Tensor forward(const nn::Example& ex) const;

  /// Batched logits: the examples are packed into one ragged int8 batch
  /// (no padding) and run through the encoder with the projections /
  /// FFN batched across all rows. logits[i] is bit-identical to
  /// forward(*batch[i]). Reentrant-const: safe to call concurrently
  /// from many serving workers on a shared engine.
  std::vector<Tensor> forward_batch(
      const std::vector<const nn::Example*>& batch) const;
  std::vector<Tensor> forward_batch(const std::vector<nn::Example>& batch) const;

  int32_t predict(const nn::Example& ex) const;
  double accuracy(const std::vector<nn::Example>& data) const;

  const nn::BertConfig& config() const { return config_; }
  const FqQuantConfig& quant_config() const { return quant_config_; }
  const std::vector<FqEncoderLayer>& encoder_layers() const { return layers_; }

  /// Byte-level size accounting over this model's parameters.
  quant::SizeReport size_report() const;

  /// Encoder input codes for a given example (exposed so the accelerator
  /// simulator can be fed exactly what the engine computes).
  std::vector<int8_t> embed(const nn::Example& ex) const;

  /// embed() writing straight into a packed batch buffer at `dst`
  /// (must hold tokens.size() * hidden int8 codes).
  void embed_into(const nn::Example& ex, int8_t* dst) const;
  double embed_scale() const { return emb_scale_; }

  /// CPU-side task head applied to the final encoder codes (the
  /// accelerator simulator runs the encoder itself and hands back here).
  Tensor head(const std::vector<int8_t>& final_codes) const;

  /// head() on a raw CLS row pointer (used by the batched path, where
  /// each example's CLS row lives at an offset inside the packed batch).
  Tensor head_row(const int8_t* cls_codes) const;

  /// Serialize the quantized model (int4-packed weights, scales, LUT
  /// parameters) to a deployable binary; load reconstructs a fully
  /// functional engine whose outputs are bit-identical.
  bool save(const std::string& path) const;
  static FqBertModel load(const std::string& path);

  /// Serialize in the mmap-ready FQBERT02 layout: weight arrays stored
  /// in their kernel-resident width, 64-byte aligned, so load_mapped
  /// can point the engine straight at the file pages.
  bool save_mapped(const std::string& path) const;
  /// Zero-copy load of an FQBERT02 file: weights stay in the page
  /// cache (PROT_READ, MAP_SHARED mapping held for the model's
  /// lifetime — N processes loading one file share one physical copy);
  /// only the small sections (scales, embeddings, LN parameters,
  /// biases) are parsed into owned memory. Hot LOAD cost is O(page
  /// faults), not O(read + widen).
  static FqBertModel load_mapped(const std::string& path);
  /// Sniff the magic and dispatch: FQBERT01 -> load (stream),
  /// FQBERT02 -> load_mapped (zero-copy). The registry's entry point.
  static FqBertModel load_any(const std::string& path);

  /// Derive a lower-precision tier from this engine using the
  /// quantizer's range math: each layer's weight codes and bias are
  /// rescaled onto the new bit-width's grid (scale ratio
  /// qmax(new)/qmax(old), re-applying 8-bit scale quantization when the
  /// config asks for it) and the requantizers/kernels are rebuilt.
  /// `new_bits` must be in [2, 8]; deriving at the engine's own
  /// bit-width returns an identical engine. The result is a normal
  /// owned-storage engine (an int4 derivation is ~half the resident
  /// weight bytes of its int8 parent).
  FqBertModel derive_tier(int new_bits) const;

  /// Resident bytes of every weight-code store (owned or mapped) —
  /// the number the per-tier memory accounting reports.
  size_t resident_weight_bytes() const;

 private:
  nn::BertConfig config_;
  FqQuantConfig quant_config_;

  // CPU-side front: dequantized low-bit embedding tables + float LN.
  Tensor tok_table_, pos_table_, seg_table_;
  std::vector<float> emb_ln_gamma_, emb_ln_beta_;
  double emb_scale_ = 1.0;  // int8 scale of the encoder input

  std::vector<FqEncoderLayer> layers_;

  // CPU-side head: dequantized weights, float compute.
  Tensor pooler_w_, classifier_w_;
  std::vector<float> pooler_b_, classifier_b_;

  // Size bookkeeping of the low-bit parameter stores.
  int weight_bits_ = 4;

  // Alive iff this engine was load_mapped(): owns the read-only mmap
  // that every layer's w_map8/w_map16 view points into.
  std::shared_ptr<const platform::MappedFile> mapping_;
};

/// Rebuild the derived integer kernels (softmax / GELU / LayerNorm /
/// residual + context requantizers) of one encoder layer from its
/// scales and LN parameters. Shared by stream load, mapped load and
/// tier derivation; conversion builds the same recipe inline.
void rebuild_derived_kernels(FqEncoderLayer& layer);

}  // namespace fqbert::core
