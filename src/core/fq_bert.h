// FQ-BERT: the integer-only inference engine (the paper's primary
// contribution, Sec. II).
//
// A trained, QAT-instrumented float model is *converted* into this
// engine: weights become int4/int8 codes, biases 32-bit integers
// (Eq. 4), every activation an int8 code on a calibrated scale, and the
// per-matmul rescaling a 32-bit fixed-point requantizer (Eq. 5). Softmax
// runs through the 256-entry exp LUT, LayerNorm through the integer LN
// kernel, GELU through a code-to-code LUT.
//
// Deployment split follows the paper's Fig. 2: embeddings and the task
// head are computed "CPU-side" (float arithmetic over *dequantized*
// low-bit weights), while the encoder stack is strictly integer — the
// part the FPGA executes.
//
// Per-part toggles (FqQuantConfig) select float fallbacks for softmax /
// LayerNorm / scale precision so the Table II ablation runs through the
// very same engine.
#pragma once

#include <memory>
#include <vector>

#include "core/fq_config.h"
#include "core/int_kernels.h"
#include "core/qat.h"
#include "quant/int_gelu.h"
#include "quant/int_layernorm.h"
#include "quant/int_softmax.h"
#include "quant/packing.h"

namespace fqbert::core {

/// A quantized linear layer: int8 activations x int4/int8 weights ->
/// int32 accumulators -> requantized int8 outputs.
struct QuantLinear {
  int64_t in = 0, out = 0;
  int weight_bits = 4;
  std::vector<int8_t> w_codes;  // [out, in] row-major
  std::vector<int32_t> bias_q;  // round(bias * s_in * s_w), Eq. 4
  double w_scale = 1.0;
  double in_scale = 1.0;
  double out_scale = 1.0;
  quant::Requantizer rq;  // s_out / (s_in * s_w), Eq. 5

  /// x: int8 codes [S, in] on in_scale -> y: int8 codes [S, out].
  void forward_i8(const std::vector<int8_t>& x, std::vector<int8_t>& y,
                  int64_t s_len) const;

  /// Packed (2-per-byte) weight bytes for size accounting / streaming.
  std::vector<uint8_t> packed_weights() const;
};

/// One integer encoder layer.
struct FqEncoderLayer {
  int64_t hidden = 0, ffn_dim = 0, num_heads = 0, head_dim = 0;
  bool use_int_softmax = true;
  bool use_int_layernorm = true;

  QuantLinear wq, wk, wv, wo, ffn1, ffn2;

  // Activation scales (from QAT calibration).
  double in_scale = 1.0;        // layer input (LN2 output of prev layer)
  double q_scale = 1.0, k_scale = 1.0, v_scale = 1.0;
  double ctx_scale = 1.0;       // concat output entering Wo
  double attn_out_scale = 1.0;  // Wo output
  double ffn_in_scale = 1.0;    // LN1 output
  double pre_gelu_scale = 1.0;
  double ffn_mid_scale = 1.0;
  double ffn_out_scale = 1.0;
  double out_scale = 1.0;       // LN2 output

  // Integer kernels (built at conversion time).
  std::unique_ptr<quant::IntSoftmax> softmax;
  std::unique_ptr<quant::IntGelu> gelu;
  std::unique_ptr<quant::IntLayerNorm> ln1, ln2;
  quant::Requantizer ctx_rq;   // 1/255 * (255*s_v -> s_ctx)
  quant::Requantizer res1_rq;  // in_scale -> attn_out_scale grid
  quant::Requantizer res2_rq;  // ffn_in_scale -> ffn_out_scale grid

  // Float LN parameters for the non-quantized-LN fallback.
  std::vector<float> ln1_gamma, ln1_beta, ln2_gamma, ln2_beta;

  /// x: int8 [S, hidden] on in_scale -> int8 [S, hidden] on out_scale.
  void forward(const std::vector<int8_t>& x, std::vector<int8_t>& y,
               int64_t s_len) const;

  /// LN1 (first=true) or LN2 over int32 residual rows; integer kernel or
  /// float fallback depending on use_int_layernorm.  The residual input
  /// is on the attn_out (LN1) / ffn_out (LN2) scale. Public so the
  /// accelerator's functional simulator can replay the exact pipeline.
  void apply_layernorm(const std::vector<int32_t>& res,
                       std::vector<int8_t>& out, int64_t s_len,
                       bool first) const;

  /// Integer softmax step on one head's scores (see forward); exposed
  /// for the functional simulator.
  void apply_softmax(const std::vector<int32_t>& scores,
                     std::vector<int32_t>& probs, int64_t s_len) const;
};

/// Full FQ-BERT classifier.
class FqBertModel {
 public:
  /// Convert a trained, instrumented model. The QAT hooks must have seen
  /// data (train or calibrate) so every EMA observer is initialized.
  static FqBertModel convert(QatBert& qat);

  /// Float logits for one example (head computed CPU-side).
  Tensor forward(const nn::Example& ex) const;

  int32_t predict(const nn::Example& ex) const;
  double accuracy(const std::vector<nn::Example>& data) const;

  const nn::BertConfig& config() const { return config_; }
  const FqQuantConfig& quant_config() const { return quant_config_; }
  const std::vector<FqEncoderLayer>& encoder_layers() const { return layers_; }

  /// Byte-level size accounting over this model's parameters.
  quant::SizeReport size_report() const;

  /// Encoder input codes for a given example (exposed so the accelerator
  /// simulator can be fed exactly what the engine computes).
  std::vector<int8_t> embed(const nn::Example& ex) const;
  double embed_scale() const { return emb_scale_; }

  /// CPU-side task head applied to the final encoder codes (the
  /// accelerator simulator runs the encoder itself and hands back here).
  Tensor head(const std::vector<int8_t>& final_codes) const;

  /// Serialize the quantized model (int4-packed weights, scales, LUT
  /// parameters) to a deployable binary; load reconstructs a fully
  /// functional engine whose outputs are bit-identical.
  bool save(const std::string& path) const;
  static FqBertModel load(const std::string& path);

 private:
  nn::BertConfig config_;
  FqQuantConfig quant_config_;

  // CPU-side front: dequantized low-bit embedding tables + float LN.
  Tensor tok_table_, pos_table_, seg_table_;
  std::vector<float> emb_ln_gamma_, emb_ln_beta_;
  double emb_scale_ = 1.0;  // int8 scale of the encoder input

  std::vector<FqEncoderLayer> layers_;

  // CPU-side head: dequantized weights, float compute.
  Tensor pooler_w_, classifier_w_;
  std::vector<float> pooler_b_, classifier_b_;

  // Size bookkeeping of the low-bit parameter stores.
  int weight_bits_ = 4;
};

}  // namespace fqbert::core
