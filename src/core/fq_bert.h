// FQ-BERT: the integer-only inference engine (the paper's primary
// contribution, Sec. II).
//
// A trained, QAT-instrumented float model is *converted* into this
// engine: weights become int4/int8 codes, biases 32-bit integers
// (Eq. 4), every activation an int8 code on a calibrated scale, and the
// per-matmul rescaling a 32-bit fixed-point requantizer (Eq. 5). Softmax
// runs through the 256-entry exp LUT, LayerNorm through the integer LN
// kernel, GELU through a code-to-code LUT.
//
// Deployment split follows the paper's Fig. 2: embeddings and the task
// head are computed "CPU-side" (float arithmetic over *dequantized*
// low-bit weights), while the encoder stack is strictly integer — the
// part the FPGA executes.
//
// Per-part toggles (FqQuantConfig) select float fallbacks for softmax /
// LayerNorm / scale precision so the Table II ablation runs through the
// very same engine.
#pragma once

#include <memory>
#include <vector>

#include "core/fq_config.h"
#include "core/int_kernels.h"
#include "core/qat.h"
#include "quant/int_gelu.h"
#include "quant/int_layernorm.h"
#include "quant/int_softmax.h"
#include "quant/packing.h"

namespace fqbert::core {

/// Reusable scratch for the batched forward path. A batch touches
/// buffers proportional to batch-rows x ffn_dim; reusing them across
/// batches keeps the serving hot loop allocation-free (large per-batch
/// allocations otherwise fall into mmap'd chunks whose page faults
/// dominate the batching win).
struct FqBatchScratch {
  std::vector<int8_t> act_a, act_b;  // ping-pong activations [rows, hidden]
  std::vector<int8_t> q, k, v, ctx, attn_out, ffn_x, pre, mid, fo;
  std::vector<int8_t> qh, kh, vh;
  std::vector<int16_t> panel;  // widened 4-row activation panel
  std::vector<int16_t> kh16;   // widened K head (QK^T panel operand)
  std::vector<int32_t> acc, res, scores, probs, ctx_acc;
};

/// A quantized linear layer: int8 activations x int4/int8 weights ->
/// int32 accumulators -> requantized int8 outputs.
///
/// Weights are stored once, pre-widened to int16 (`w_codes16`) — the
/// operand format of the panel kernel that every inference path runs
/// through. The int8 code values themselves are preserved exactly
/// (widening is value-preserving), so `narrow_codes()` reconstructs the
/// nibble-packable codes for serialization, size accounting and the
/// accelerator simulator without keeping a second copy resident.
struct QuantLinear {
  int64_t in = 0, out = 0;
  int weight_bits = 4;
  std::vector<int16_t> w_codes16;  // [out, in] row-major, int8-range values
  std::vector<int32_t> bias_q;     // round(bias * s_in * s_w), Eq. 4
  double w_scale = 1.0;
  double in_scale = 1.0;
  double out_scale = 1.0;
  quant::Requantizer rq;  // s_out / (s_in * s_w), Eq. 5

  /// x: int8 codes [rows, in] on in_scale -> y: int8 codes [rows, out]
  /// through the panel kernel. Reentrant-const (thread-local scratch).
  void forward_i8(const std::vector<int8_t>& x, std::vector<int8_t>& y,
                  int64_t rows) const;

  /// Same, with caller-provided scratch (the batched serving hot loop
  /// reuses one accumulator / panel pair across all layers).
  void forward_i8(const std::vector<int8_t>& x, std::vector<int8_t>& y,
                  int64_t rows, std::vector<int32_t>& acc,
                  std::vector<int16_t>& panel) const;

  /// Install the trained/loaded int8 weight codes (widens into
  /// w_codes16, the only resident copy).
  void set_codes(const std::vector<int8_t>& codes);

  /// The int8 weight codes, narrowed back from w_codes16 (exact).
  std::vector<int8_t> narrow_codes() const;

  /// Packed (2-per-byte) weight bytes for size accounting / streaming.
  std::vector<uint8_t> packed_weights() const;
};

/// One integer encoder layer.
struct FqEncoderLayer {
  int64_t hidden = 0, ffn_dim = 0, num_heads = 0, head_dim = 0;
  bool use_int_softmax = true;
  bool use_int_layernorm = true;

  QuantLinear wq, wk, wv, wo, ffn1, ffn2;

  // Activation scales (from QAT calibration).
  double in_scale = 1.0;        // layer input (LN2 output of prev layer)
  double q_scale = 1.0, k_scale = 1.0, v_scale = 1.0;
  double ctx_scale = 1.0;       // concat output entering Wo
  double attn_out_scale = 1.0;  // Wo output
  double ffn_in_scale = 1.0;    // LN1 output
  double pre_gelu_scale = 1.0;
  double ffn_mid_scale = 1.0;
  double ffn_out_scale = 1.0;
  double out_scale = 1.0;       // LN2 output

  // Integer kernels (built at conversion time).
  std::unique_ptr<quant::IntSoftmax> softmax;
  std::unique_ptr<quant::IntGelu> gelu;
  std::unique_ptr<quant::IntLayerNorm> ln1, ln2;
  quant::Requantizer ctx_rq;   // 1/255 * (255*s_v -> s_ctx)
  quant::Requantizer res1_rq;  // in_scale -> attn_out_scale grid
  quant::Requantizer res2_rq;  // ffn_in_scale -> ffn_out_scale grid

  // Float LN parameters for the non-quantized-LN fallback.
  std::vector<float> ln1_gamma, ln1_beta, ln2_gamma, ln2_beta;

  /// x: int8 [S, hidden] on in_scale -> int8 [S, hidden] on out_scale.
  /// Delegates to forward_batch with a single sequence and a
  /// thread-local scratch, so single-request and batched inference run
  /// the identical panel-kernel compute path. Reentrant-const.
  void forward(const std::vector<int8_t>& x, std::vector<int8_t>& y,
               int64_t s_len) const;

  /// Ragged-batched forward: `x` holds several sequences concatenated
  /// row-wise (sequence i spans seq_lens[i] rows, no padding between
  /// them). The four projections and the FFN run as single matmuls over
  /// all rows; attention runs per sequence, so every sequence's output
  /// is bit-identical to a standalone forward() call. All intermediates
  /// live in `scratch` (grow-only; reuse it across batches to keep the
  /// serving hot loop allocation-free). Reentrant-const as long as each
  /// thread uses its own scratch.
  void forward_batch(const std::vector<int8_t>& x, std::vector<int8_t>& y,
                     const std::vector<int64_t>& seq_lens,
                     FqBatchScratch& scratch) const;

  /// LN1 (first=true) or LN2 over int32 residual rows; integer kernel or
  /// float fallback depending on use_int_layernorm.  The residual input
  /// is on the attn_out (LN1) / ffn_out (LN2) scale. Public so the
  /// accelerator's functional simulator can replay the exact pipeline.
  void apply_layernorm(const std::vector<int32_t>& res,
                       std::vector<int8_t>& out, int64_t s_len,
                       bool first) const;

  /// Integer softmax step on one head's scores (see forward); exposed
  /// for the functional simulator.
  void apply_softmax(const std::vector<int32_t>& scores,
                     std::vector<int32_t>& probs, int64_t s_len) const;
};

/// Full FQ-BERT classifier.
class FqBertModel {
 public:
  /// Convert a trained, instrumented model. The QAT hooks must have seen
  /// data (train or calibrate) so every EMA observer is initialized.
  static FqBertModel convert(QatBert& qat);

  /// Float logits for one example (head computed CPU-side). Runs as a
  /// batch of one through the unified panel-kernel path; reentrant-const.
  Tensor forward(const nn::Example& ex) const;

  /// Batched logits: the examples are packed into one ragged int8 batch
  /// (no padding) and run through the encoder with the projections /
  /// FFN batched across all rows. logits[i] is bit-identical to
  /// forward(*batch[i]). Reentrant-const: safe to call concurrently
  /// from many serving workers on a shared engine.
  std::vector<Tensor> forward_batch(
      const std::vector<const nn::Example*>& batch) const;
  std::vector<Tensor> forward_batch(const std::vector<nn::Example>& batch) const;

  int32_t predict(const nn::Example& ex) const;
  double accuracy(const std::vector<nn::Example>& data) const;

  const nn::BertConfig& config() const { return config_; }
  const FqQuantConfig& quant_config() const { return quant_config_; }
  const std::vector<FqEncoderLayer>& encoder_layers() const { return layers_; }

  /// Byte-level size accounting over this model's parameters.
  quant::SizeReport size_report() const;

  /// Encoder input codes for a given example (exposed so the accelerator
  /// simulator can be fed exactly what the engine computes).
  std::vector<int8_t> embed(const nn::Example& ex) const;

  /// embed() writing straight into a packed batch buffer at `dst`
  /// (must hold tokens.size() * hidden int8 codes).
  void embed_into(const nn::Example& ex, int8_t* dst) const;
  double embed_scale() const { return emb_scale_; }

  /// CPU-side task head applied to the final encoder codes (the
  /// accelerator simulator runs the encoder itself and hands back here).
  Tensor head(const std::vector<int8_t>& final_codes) const;

  /// head() on a raw CLS row pointer (used by the batched path, where
  /// each example's CLS row lives at an offset inside the packed batch).
  Tensor head_row(const int8_t* cls_codes) const;

  /// Serialize the quantized model (int4-packed weights, scales, LUT
  /// parameters) to a deployable binary; load reconstructs a fully
  /// functional engine whose outputs are bit-identical.
  bool save(const std::string& path) const;
  static FqBertModel load(const std::string& path);

 private:
  nn::BertConfig config_;
  FqQuantConfig quant_config_;

  // CPU-side front: dequantized low-bit embedding tables + float LN.
  Tensor tok_table_, pos_table_, seg_table_;
  std::vector<float> emb_ln_gamma_, emb_ln_beta_;
  double emb_scale_ = 1.0;  // int8 scale of the encoder input

  std::vector<FqEncoderLayer> layers_;

  // CPU-side head: dequantized weights, float compute.
  Tensor pooler_w_, classifier_w_;
  std::vector<float> pooler_b_, classifier_b_;

  // Size bookkeeping of the low-bit parameter stores.
  int weight_bits_ = 4;
};

}  // namespace fqbert::core
