#include "core/int_kernels.h"

#include <cassert>

namespace fqbert::core {

void int_matmul_wt(const std::vector<int8_t>& a, const std::vector<int8_t>& w,
                   std::vector<int32_t>& acc, int64_t m, int64_t k,
                   int64_t n) {
  assert(static_cast<int64_t>(a.size()) == m * k);
  assert(static_cast<int64_t>(w.size()) == n * k);
  acc.assign(static_cast<size_t>(m * n), 0);
  for (int64_t i = 0; i < m; ++i) {
    const int8_t* arow = a.data() + i * k;
    int32_t* crow = acc.data() + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const int8_t* wrow = w.data() + j * k;
      int32_t s = 0;
      for (int64_t p = 0; p < k; ++p)
        s += static_cast<int32_t>(arow[p]) * static_cast<int32_t>(wrow[p]);
      crow[j] = s;
    }
  }
}

void int_matmul_wt_panel(const std::vector<int8_t>& a,
                         const std::vector<int16_t>& w16,
                         std::vector<int32_t>& acc, int64_t m, int64_t k,
                         int64_t n, std::vector<int16_t>& panel) {
  constexpr int64_t kPanelRows = 4;
  assert(static_cast<int64_t>(a.size()) == m * k);
  assert(static_cast<int64_t>(w16.size()) == n * k);
  acc.resize(static_cast<size_t>(m * n));
  panel.resize(static_cast<size_t>(kPanelRows * k));

  int64_t i = 0;
  for (; i + kPanelRows <= m; i += kPanelRows) {
    for (int64_t r = 0; r < kPanelRows; ++r)
      for (int64_t p = 0; p < k; ++p)
        panel[static_cast<size_t>(r * k + p)] = a[(i + r) * k + p];
    const int16_t* a0 = panel.data();
    const int16_t* a1 = a0 + k;
    const int16_t* a2 = a1 + k;
    const int16_t* a3 = a2 + k;
    for (int64_t j = 0; j < n; ++j) {
      const int16_t* wrow = w16.data() + j * k;
      int32_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
      for (int64_t p = 0; p < k; ++p) {
        const int32_t wv = wrow[p];
        s0 += a0[p] * wv;
        s1 += a1[p] * wv;
        s2 += a2[p] * wv;
        s3 += a3[p] * wv;
      }
      acc[static_cast<size_t>((i + 0) * n + j)] = s0;
      acc[static_cast<size_t>((i + 1) * n + j)] = s1;
      acc[static_cast<size_t>((i + 2) * n + j)] = s2;
      acc[static_cast<size_t>((i + 3) * n + j)] = s3;
    }
  }
  for (; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p)
      panel[static_cast<size_t>(p)] = a[i * k + p];
    for (int64_t j = 0; j < n; ++j) {
      const int16_t* wrow = w16.data() + j * k;
      int32_t s = 0;
      for (int64_t p = 0; p < k; ++p)
        s += panel[static_cast<size_t>(p)] * static_cast<int32_t>(wrow[p]);
      acc[static_cast<size_t>(i * n + j)] = s;
    }
  }
}

void int_matmul_pv(const std::vector<int32_t>& p, const std::vector<int8_t>& v,
                   std::vector<int32_t>& acc, int64_t m, int64_t k,
                   int64_t n) {
  assert(static_cast<int64_t>(p.size()) == m * k);
  assert(static_cast<int64_t>(v.size()) == k * n);
  acc.assign(static_cast<size_t>(m * n), 0);
  for (int64_t i = 0; i < m; ++i) {
    const int32_t* prow = p.data() + i * k;
    int32_t* crow = acc.data() + i * n;
    for (int64_t q = 0; q < k; ++q) {
      const int32_t pv = prow[q];
      if (pv == 0) continue;
      const int8_t* vrow = v.data() + q * n;
      for (int64_t j = 0; j < n; ++j)
        crow[j] += pv * static_cast<int32_t>(vrow[j]);
    }
  }
}

void requantize_i8(const std::vector<int32_t>& acc,
                   const std::vector<int32_t>& bias_per_col,
                   const quant::Requantizer& rq, std::vector<int8_t>& out,
                   int64_t rows, int64_t cols) {
  assert(static_cast<int64_t>(acc.size()) == rows * cols);
  assert(bias_per_col.empty() ||
         static_cast<int64_t>(bias_per_col.size()) == cols);
  out.resize(static_cast<size_t>(rows * cols));
  for (int64_t r = 0; r < rows; ++r) {
    const int32_t* arow = acc.data() + r * cols;
    int8_t* orow = out.data() + r * cols;
    for (int64_t c = 0; c < cols; ++c) {
      const int64_t with_bias =
          static_cast<int64_t>(arow[c]) +
          (bias_per_col.empty() ? 0 : bias_per_col[static_cast<size_t>(c)]);
      orow[c] = static_cast<int8_t>(
          quant::saturate_signed(rq.apply(with_bias), 8));
    }
  }
}

}  // namespace fqbert::core
