#include "core/int_kernels.h"

#include <cassert>

namespace fqbert::core {

void int_matmul_wt(const std::vector<int8_t>& a, const std::vector<int8_t>& w,
                   std::vector<int32_t>& acc, int64_t m, int64_t k,
                   int64_t n) {
  assert(static_cast<int64_t>(a.size()) == m * k);
  assert(static_cast<int64_t>(w.size()) == n * k);
  acc.assign(static_cast<size_t>(m * n), 0);
  for (int64_t i = 0; i < m; ++i) {
    const int8_t* arow = a.data() + i * k;
    int32_t* crow = acc.data() + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const int8_t* wrow = w.data() + j * k;
      int32_t s = 0;
      for (int64_t p = 0; p < k; ++p)
        s += static_cast<int32_t>(arow[p]) * static_cast<int32_t>(wrow[p]);
      crow[j] = s;
    }
  }
}

namespace {

/// The panel kernel body, parametric in the weight element type. Both
/// instantiations produce identical accumulators for identical weight
/// VALUES: every weight element is widened to int32 before the multiply.
template <typename WT>
void panel_impl(const std::vector<int8_t>& a, const WT* wbase,
                std::vector<int32_t>& acc, int64_t m, int64_t k, int64_t n,
                std::vector<int16_t>& panel) {
  constexpr int64_t kPanelRows = 4;
  assert(static_cast<int64_t>(a.size()) == m * k);
  acc.resize(static_cast<size_t>(m * n));
  if (m >= kPanelRows) panel.resize(static_cast<size_t>(kPanelRows * k));

  int64_t i = 0;
  for (; i + kPanelRows <= m; i += kPanelRows) {
    for (int64_t r = 0; r < kPanelRows; ++r)
      for (int64_t p = 0; p < k; ++p)
        panel[static_cast<size_t>(r * k + p)] = a[(i + r) * k + p];
    const int16_t* a0 = panel.data();
    const int16_t* a1 = a0 + k;
    const int16_t* a2 = a1 + k;
    const int16_t* a3 = a2 + k;
    // 4x2 register block: every activation load feeds two weight rows,
    // every weight load feeds four activation rows.
    int64_t j = 0;
    for (; j + 2 <= n; j += 2) {
      const WT* w0 = wbase + j * k;
      const WT* w1 = w0 + k;
      int32_t s00 = 0, s01 = 0, s10 = 0, s11 = 0;
      int32_t s20 = 0, s21 = 0, s30 = 0, s31 = 0;
      for (int64_t p = 0; p < k; ++p) {
        const int32_t w0v = w0[p], w1v = w1[p];
        const int32_t a0v = a0[p], a1v = a1[p];
        const int32_t a2v = a2[p], a3v = a3[p];
        s00 += a0v * w0v;
        s01 += a0v * w1v;
        s10 += a1v * w0v;
        s11 += a1v * w1v;
        s20 += a2v * w0v;
        s21 += a2v * w1v;
        s30 += a3v * w0v;
        s31 += a3v * w1v;
      }
      int32_t* c0 = acc.data() + (i + 0) * n + j;
      int32_t* c1 = acc.data() + (i + 1) * n + j;
      int32_t* c2 = acc.data() + (i + 2) * n + j;
      int32_t* c3 = acc.data() + (i + 3) * n + j;
      c0[0] = s00; c0[1] = s01;
      c1[0] = s10; c1[1] = s11;
      c2[0] = s20; c2[1] = s21;
      c3[0] = s30; c3[1] = s31;
    }
    for (; j < n; ++j) {
      const WT* wrow = wbase + j * k;
      int32_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
      for (int64_t p = 0; p < k; ++p) {
        const int32_t wv = wrow[p];
        s0 += a0[p] * wv;
        s1 += a1[p] * wv;
        s2 += a2[p] * wv;
        s3 += a3[p] * wv;
      }
      acc[static_cast<size_t>((i + 0) * n + j)] = s0;
      acc[static_cast<size_t>((i + 1) * n + j)] = s1;
      acc[static_cast<size_t>((i + 2) * n + j)] = s2;
      acc[static_cast<size_t>((i + 3) * n + j)] = s3;
    }
  }

  // Remainder rows (m % 4): read activations straight from `a` — the
  // widening happens in the multiply, so short sequences and batch-1
  // tails pay neither the panel staging copy nor 4-row padding work.
  // Both tails keep the 2-wide weight-row block so activation loads are
  // still shared.
  if (i + 2 <= m) {
    const int8_t* a0 = a.data() + i * k;
    const int8_t* a1 = a0 + k;
    int64_t j = 0;
    for (; j + 2 <= n; j += 2) {
      const WT* w0 = wbase + j * k;
      const WT* w1 = w0 + k;
      int32_t s00 = 0, s01 = 0, s10 = 0, s11 = 0;
      for (int64_t p = 0; p < k; ++p) {
        const int32_t w0v = w0[p], w1v = w1[p];
        const int32_t a0v = static_cast<int16_t>(a0[p]);
        const int32_t a1v = static_cast<int16_t>(a1[p]);
        s00 += a0v * w0v;
        s01 += a0v * w1v;
        s10 += a1v * w0v;
        s11 += a1v * w1v;
      }
      acc[static_cast<size_t>((i + 0) * n + j)] = s00;
      acc[static_cast<size_t>((i + 0) * n + j + 1)] = s01;
      acc[static_cast<size_t>((i + 1) * n + j)] = s10;
      acc[static_cast<size_t>((i + 1) * n + j + 1)] = s11;
    }
    for (; j < n; ++j) {
      const WT* wrow = wbase + j * k;
      int32_t s0 = 0, s1 = 0;
      for (int64_t p = 0; p < k; ++p) {
        const int32_t wv = wrow[p];
        s0 += static_cast<int16_t>(a0[p]) * wv;
        s1 += static_cast<int16_t>(a1[p]) * wv;
      }
      acc[static_cast<size_t>((i + 0) * n + j)] = s0;
      acc[static_cast<size_t>((i + 1) * n + j)] = s1;
    }
    i += 2;
  }
  if (i < m) {
    const int8_t* arow = a.data() + i * k;
    int64_t j = 0;
    for (; j + 2 <= n; j += 2) {
      const WT* w0 = wbase + j * k;
      const WT* w1 = w0 + k;
      int32_t s0 = 0, s1 = 0;
      for (int64_t p = 0; p < k; ++p) {
        const int32_t av = static_cast<int16_t>(arow[p]);
        s0 += av * static_cast<int32_t>(w0[p]);
        s1 += av * static_cast<int32_t>(w1[p]);
      }
      acc[static_cast<size_t>(i * n + j)] = s0;
      acc[static_cast<size_t>(i * n + j + 1)] = s1;
    }
    for (; j < n; ++j) {
      const WT* wrow = wbase + j * k;
      int32_t s = 0;
      for (int64_t p = 0; p < k; ++p)
        s += static_cast<int16_t>(arow[p]) * static_cast<int32_t>(wrow[p]);
      acc[static_cast<size_t>(i * n + j)] = s;
    }
  }
}

}  // namespace

void int_matmul_wt_panel(const std::vector<int8_t>& a, const int16_t* w16,
                         std::vector<int32_t>& acc, int64_t m, int64_t k,
                         int64_t n, std::vector<int16_t>& panel) {
  panel_impl(a, w16, acc, m, k, n, panel);
}

void int_matmul_wt_panel(const std::vector<int8_t>& a, const int8_t* w8,
                         std::vector<int32_t>& acc, int64_t m, int64_t k,
                         int64_t n, std::vector<int16_t>& panel) {
  panel_impl(a, w8, acc, m, k, n, panel);
}

void int_matmul_wt_panel(const std::vector<int8_t>& a,
                         const std::vector<int16_t>& w16,
                         std::vector<int32_t>& acc, int64_t m, int64_t k,
                         int64_t n, std::vector<int16_t>& panel) {
  assert(static_cast<int64_t>(w16.size()) == n * k);
  panel_impl(a, w16.data(), acc, m, k, n, panel);
}

void int_matmul_pv(const std::vector<int32_t>& p, const std::vector<int8_t>& v,
                   std::vector<int32_t>& acc, int64_t m, int64_t k,
                   int64_t n) {
  assert(static_cast<int64_t>(p.size()) == m * k);
  assert(static_cast<int64_t>(v.size()) == k * n);
  acc.assign(static_cast<size_t>(m * n), 0);
  for (int64_t i = 0; i < m; ++i) {
    const int32_t* prow = p.data() + i * k;
    int32_t* crow = acc.data() + i * n;
    for (int64_t q = 0; q < k; ++q) {
      const int32_t pv = prow[q];
      if (pv == 0) continue;
      const int8_t* vrow = v.data() + q * n;
      for (int64_t j = 0; j < n; ++j)
        crow[j] += pv * static_cast<int32_t>(vrow[j]);
    }
  }
}

void requantize_i8(const std::vector<int32_t>& acc,
                   const std::vector<int32_t>& bias_per_col,
                   const quant::Requantizer& rq, std::vector<int8_t>& out,
                   int64_t rows, int64_t cols) {
  assert(static_cast<int64_t>(acc.size()) == rows * cols);
  assert(bias_per_col.empty() ||
         static_cast<int64_t>(bias_per_col.size()) == cols);
  out.resize(static_cast<size_t>(rows * cols));

  // Branch-free inner loop, value-identical to
  // saturate_signed(rq.apply(v), 8). Requantization is ~1/3 of the
  // epilogue-bound layers' runtime, and the per-element sign/saturation
  // branches of the generic helpers mispredict on mixed-sign
  // accumulators, so this loop is worth hand-flattening (the compiler
  // then vectorizes it).
  const int64_t mult = rq.multiplier;
  const int shift = rq.shift;  // in [0, 62] by Requantizer::from_scale
  const int64_t half = shift > 0 ? (1ll << (shift - 1)) : 0;
  const int32_t* bias = bias_per_col.empty() ? nullptr : bias_per_col.data();
  for (int64_t r = 0; r < rows; ++r) {
    const int32_t* arow = acc.data() + r * cols;
    int8_t* orow = out.data() + r * cols;
    if (shift > 0) {
      for (int64_t c = 0; c < cols; ++c) {
        const int64_t with_bias =
            static_cast<int64_t>(arow[c]) + (bias ? bias[c] : 0);
        orow[c] = quant::clamp_i8(quant::rounding_shift_right_branchless(
            with_bias * mult, shift, half));
      }
    } else {
      for (int64_t c = 0; c < cols; ++c) {
        const int64_t with_bias =
            static_cast<int64_t>(arow[c]) + (bias ? bias[c] : 0);
        orow[c] = quant::clamp_i8(with_bias * mult);
      }
    }
  }
}

}  // namespace fqbert::core
