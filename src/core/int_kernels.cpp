#include "core/int_kernels.h"

#include <cassert>

namespace fqbert::core {

void int_matmul_wt(const std::vector<int8_t>& a, const std::vector<int8_t>& w,
                   std::vector<int32_t>& acc, int64_t m, int64_t k,
                   int64_t n) {
  assert(static_cast<int64_t>(a.size()) == m * k);
  assert(static_cast<int64_t>(w.size()) == n * k);
  acc.assign(static_cast<size_t>(m * n), 0);
  for (int64_t i = 0; i < m; ++i) {
    const int8_t* arow = a.data() + i * k;
    int32_t* crow = acc.data() + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const int8_t* wrow = w.data() + j * k;
      int32_t s = 0;
      for (int64_t p = 0; p < k; ++p)
        s += static_cast<int32_t>(arow[p]) * static_cast<int32_t>(wrow[p]);
      crow[j] = s;
    }
  }
}

void int_matmul_pv(const std::vector<int32_t>& p, const std::vector<int8_t>& v,
                   std::vector<int32_t>& acc, int64_t m, int64_t k,
                   int64_t n) {
  assert(static_cast<int64_t>(p.size()) == m * k);
  assert(static_cast<int64_t>(v.size()) == k * n);
  acc.assign(static_cast<size_t>(m * n), 0);
  for (int64_t i = 0; i < m; ++i) {
    const int32_t* prow = p.data() + i * k;
    int32_t* crow = acc.data() + i * n;
    for (int64_t q = 0; q < k; ++q) {
      const int32_t pv = prow[q];
      if (pv == 0) continue;
      const int8_t* vrow = v.data() + q * n;
      for (int64_t j = 0; j < n; ++j)
        crow[j] += pv * static_cast<int32_t>(vrow[j]);
    }
  }
}

void requantize_i8(const std::vector<int32_t>& acc,
                   const std::vector<int32_t>& bias_per_col,
                   const quant::Requantizer& rq, std::vector<int8_t>& out,
                   int64_t rows, int64_t cols) {
  assert(static_cast<int64_t>(acc.size()) == rows * cols);
  assert(bias_per_col.empty() ||
         static_cast<int64_t>(bias_per_col.size()) == cols);
  out.resize(static_cast<size_t>(rows * cols));
  for (int64_t r = 0; r < rows; ++r) {
    const int32_t* arow = acc.data() + r * cols;
    int8_t* orow = out.data() + r * cols;
    for (int64_t c = 0; c < cols; ++c) {
      const int64_t with_bias =
          static_cast<int64_t>(arow[c]) +
          (bias_per_col.empty() ? 0 : bias_per_col[static_cast<size_t>(c)]);
      orow[c] = static_cast<int8_t>(
          quant::saturate_signed(rq.apply(with_bias), 8));
    }
  }
}

}  // namespace fqbert::core
