// Parameter inventory and model-size accounting (Table I compression).
//
// Works from a BertConfig alone so the BERT-base 7.94x figure can be
// computed exactly even though only MiniBERT is trainable here: float
// model stores every parameter in 32 bits; FQ-BERT stores weight
// matrices and embedding tables at weight_bits (packed), biases at 32-bit
// integer, LayerNorm parameters at 8 bits, per-tensor scale factors at
// 8 bits, plus the two 256-entry LUTs (softmax exp, GELU).
#pragma once

#include "core/fq_config.h"
#include "nn/bert.h"
#include "quant/packing.h"

namespace fqbert::core {

struct ParamInventory {
  int64_t embedding = 0;     // token + position + segment tables
  int64_t enc_weights = 0;   // QKVO + FFN matrices
  int64_t enc_biases = 0;
  int64_t ln_params = 0;     // all LayerNorm gamma/beta (incl. embedding LN)
  int64_t head_weights = 0;  // pooler + classifier matrices
  int64_t head_biases = 0;
  int64_t weight_tensors = 0;  // count of quantized weight tensors (scales)
  int64_t act_nodes = 0;       // count of activation scale factors

  int64_t total_params() const {
    return embedding + enc_weights + enc_biases + ln_params + head_weights +
           head_biases;
  }

  static ParamInventory from_config(const nn::BertConfig& c) {
    ParamInventory inv;
    inv.embedding =
        (c.vocab_size + c.max_seq_len + c.num_segments) * c.hidden;
    inv.enc_weights = c.num_layers * (4 * c.hidden * c.hidden +
                                      2 * c.hidden * c.ffn_dim);
    inv.enc_biases = c.num_layers * (4 * c.hidden + c.ffn_dim + c.hidden);
    inv.ln_params = (2 * c.num_layers + 1) * 2 * c.hidden;
    inv.head_weights = c.hidden * c.hidden + c.hidden * c.num_classes;
    inv.head_biases = c.hidden + c.num_classes;
    inv.weight_tensors = 3 + 6 * c.num_layers + 2;
    inv.act_nodes = 3 + 11 * c.num_layers;
    return inv;
  }
};

/// Full-model compression accounting.
inline quant::SizeReport model_size_report(const nn::BertConfig& c,
                                           const FqQuantConfig& q) {
  const ParamInventory inv = ParamInventory::from_config(c);
  quant::SizeReport r;
  r.add(inv.embedding, 32, q.weight_bits);
  r.add(inv.enc_weights, 32, q.weight_bits);
  r.add(inv.enc_biases, 32, 32);  // biases stay 32-bit integers (Eq. 4)
  r.add(inv.ln_params, 32, q.quantize_layernorm ? 8 : 32);
  r.add(inv.head_weights, 32, q.weight_bits);
  r.add(inv.head_biases, 32, 32);
  // Scale factors: one 8-bit value per quantized tensor / activation node
  // (the float model has none, hence float side 0 bits).
  r.quant_bytes += inv.weight_tensors + inv.act_nodes;
  // LUT parameter buffers: softmax exp table + GELU table.
  if (q.quantize_softmax) r.quant_bytes += 256;
  r.quant_bytes += 256;  // GELU LUT
  return r;
}

}  // namespace fqbert::core
