// FQ-BERT quantization configuration.
//
// The per-part toggles mirror the columns of the paper's Table II
// ablation: weights/activations, scale factors, softmax, layer norm. The
// full FQ-BERT of Table I is all four enabled with w4/a8.
#pragma once

#include "quant/quantizer.h"

namespace fqbert::core {

struct FqQuantConfig {
  int weight_bits = 4;
  int act_bits = 8;

  // Clip-threshold policy for weights (Fig. 3).
  quant::ClipMode clip = quant::ClipMode::kPercentile;
  double clip_percentile = 0.997;

  // Table II toggles (cumulative in the paper's ablation).
  bool quantize_weights_acts = true;
  bool quantize_scales = false;     // 8-bit scale factors
  bool quantize_softmax = false;    // LUT softmax (8-bit exp + output)
  bool quantize_layernorm = false;  // 8-bit fixed-point LN parameters

  double ema_momentum = 0.95;

  /// Full FQ-BERT (Table I row): everything quantized, w4/a8, CLIP.
  static FqQuantConfig full() {
    FqQuantConfig c;
    c.quantize_weights_acts = true;
    c.quantize_scales = true;
    c.quantize_softmax = true;
    c.quantize_layernorm = true;
    return c;
  }

  /// Float baseline (nothing quantized).
  static FqQuantConfig baseline() {
    FqQuantConfig c;
    c.quantize_weights_acts = false;
    return c;
  }
};

}  // namespace fqbert::core
