// Synthetic GLUE-like tasks standing in for SST-2 and MNLI.
//
// synth-SST2 (binary sentiment): sentences are filler tokens with a few
// sentiment-bearing tokens; a negator flips the polarity of the *next*
// sentiment token (a compositional effect that requires attention) and an
// intensifier doubles its weight. The label is the sign of the summed
// signed weights. Label noise sets the accuracy ceiling, mirroring the
// irreducible error of the real dataset.
//
// synth-MNLI (3-class entailment): a premise of content words and a
// hypothesis that is (entailment) a shuffled subset of the premise with
// some synonym substitutions, (contradiction) the same but with one word
// replaced by its antonym, or (neutral) the same but with one *new*
// content word not present in the premise. Distinguishing the classes
// requires comparing hypothesis tokens against the premise across the
// [SEP] boundary. A "mismatched" evaluation split draws from a shifted
// genre (different filler distribution and rarer content words).
#pragma once

#include <vector>

#include "data/vocab.h"
#include "nn/bert.h"
#include "tensor/rng.h"

namespace fqbert::data {

using nn::Example;

struct Sst2Config {
  Vocab vocab;
  int min_len = 6;
  int max_len = 22;       // token budget before [CLS]/[SEP]
  int max_sentiment = 3;  // sentiment tokens per sentence
  double p_negator = 0.35;
  double p_intensifier = 0.25;
  double label_noise = 0.045;
  int max_seq_len = 32;
};

struct MnliConfig {
  Vocab vocab;
  int min_premise = 5;
  int max_premise = 11;
  int hypothesis_len = 4;      // content words in the hypothesis
  double p_synonym = 0.0;      // reserved; antonym pairing is the signal
  double label_noise = 0.11;
  int max_seq_len = 32;
  /// Genre shift for the mismatched split: restrict content words to the
  /// upper part of the content range (rare in training) when true.
  bool mismatched_genre = false;
};

/// Deterministic dataset generation (same seed => same data).
std::vector<Example> make_sst2(const Sst2Config& config, int count,
                               uint64_t seed);
std::vector<Example> make_mnli(const MnliConfig& config, int count,
                               uint64_t seed);

/// Class balance check used by tests: fraction of examples with label c.
double label_fraction(const std::vector<Example>& data, int32_t label);

}  // namespace fqbert::data
