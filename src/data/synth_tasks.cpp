#include "data/synth_tasks.h"

#include <algorithm>

namespace fqbert::data {

namespace {

int32_t pick_in_range(Rng& rng, int32_t begin, int32_t end) {
  return static_cast<int32_t>(rng.randint(begin, end - 1));
}

}  // namespace

std::vector<Example> make_sst2(const Sst2Config& config, int count,
                               uint64_t seed) {
  const Vocab& v = config.vocab;
  Rng rng(seed);
  std::vector<Example> out;
  out.reserve(static_cast<size_t>(count));

  while (static_cast<int>(out.size()) < count) {
    const int len = static_cast<int>(
        rng.randint(config.min_len, config.max_len));
    const int n_sent =
        static_cast<int>(rng.randint(1, config.max_sentiment));

    // Build the body: sentiment "clauses" at random positions, filler
    // elsewhere. A clause is [negator?] [intensifier?] sentiment-word.
    std::vector<int32_t> body;
    body.reserve(static_cast<size_t>(len) + 6);
    int score = 0;
    std::vector<int> clause_at(static_cast<size_t>(n_sent));
    for (int i = 0; i < n_sent; ++i)
      clause_at[static_cast<size_t>(i)] =
          static_cast<int>(rng.randint(0, len - 1));
    std::sort(clause_at.begin(), clause_at.end());

    int next_clause = 0;
    for (int pos = 0; pos < len; ++pos) {
      if (next_clause < n_sent && clause_at[static_cast<size_t>(next_clause)] == pos) {
        ++next_clause;
        const bool negated = rng.flip(config.p_negator);
        const bool intense = rng.flip(config.p_intensifier);
        if (negated) body.push_back(pick_in_range(rng, v.negator_begin, v.negator_end));
        if (intense) body.push_back(pick_in_range(rng, v.intens_begin, v.intens_end));
        const bool positive = rng.flip(0.5);
        body.push_back(positive ? pick_in_range(rng, v.pos_begin, v.pos_end)
                                : pick_in_range(rng, v.neg_begin, v.neg_end));
        int w = intense ? 2 : 1;
        int polarity = positive ? 1 : -1;
        if (negated) polarity = -polarity;
        score += polarity * w;
      } else {
        body.push_back(pick_in_range(rng, v.filler_begin, v.filler_end));
      }
    }
    if (score == 0) continue;  // ambiguous sentence; resample

    Example ex;
    ex.tokens.push_back(Vocab::kCls);
    for (int32_t t : body) ex.tokens.push_back(t);
    ex.tokens.push_back(Vocab::kSep);
    if (static_cast<int>(ex.tokens.size()) > config.max_seq_len)
      ex.tokens.resize(static_cast<size_t>(config.max_seq_len));
    ex.segments.assign(ex.tokens.size(), 0);
    ex.label = score > 0 ? 1 : 0;
    if (rng.flip(config.label_noise)) ex.label = 1 - ex.label;
    out.push_back(std::move(ex));
  }
  return out;
}

std::vector<Example> make_mnli(const MnliConfig& config, int count,
                               uint64_t seed) {
  const Vocab& v = config.vocab;
  Rng rng(seed);
  std::vector<Example> out;
  out.reserve(static_cast<size_t>(count));

  // Genre shift: the content range is split into two pair-aligned halves
  // ("genres"). The matched distribution draws mostly from the lower
  // half, the mismatched mostly from the upper half — every word appears
  // in both, so the shift is distributional (word frequencies), like the
  // real MNLI genre split, not an out-of-vocabulary cliff.
  const int32_t n_content = v.num_content();
  const int32_t mid = v.content_begin + ((n_content / 2) & ~1);
  const double p_lower = config.mismatched_genre ? 0.25 : 0.85;
  auto pick_content = [&](Rng& r) {
    return r.flip(p_lower) ? pick_in_range(r, v.content_begin, mid)
                           : pick_in_range(r, mid, v.content_end);
  };

  while (static_cast<int>(out.size()) < count) {
    const int plen = static_cast<int>(
        rng.randint(config.min_premise, config.max_premise));

    // Premise: distinct content words (avoid a word and its antonym both
    // appearing, which would make contradiction ill-defined).
    std::vector<int32_t> premise;
    while (static_cast<int>(premise.size()) < plen) {
      const int32_t w = pick_content(rng);
      bool clash = false;
      for (int32_t p : premise)
        if (p == w || p == v.antonym(w)) clash = true;
      if (!clash) premise.push_back(w);
    }

    const int32_t label = static_cast<int32_t>(rng.randint(0, 2));
    // 0 = entailment, 1 = neutral, 2 = contradiction.

    // Hypothesis: subset of the premise...
    const int hlen = std::min(config.hypothesis_len, plen);
    std::vector<int32_t> hyp(premise.begin(), premise.begin() + plen);
    rng.shuffle(hyp);
    hyp.resize(static_cast<size_t>(hlen));

    if (label == 2) {
      // ...with one word replaced by its antonym (contradiction).
      const size_t k = static_cast<size_t>(rng.randint(0, hlen - 1));
      hyp[k] = v.antonym(hyp[k]);
    } else if (label == 1) {
      // ...with one *new* content word absent from the premise (neutral).
      const size_t k = static_cast<size_t>(rng.randint(0, hlen - 1));
      int32_t w;
      for (;;) {
        w = pick_content(rng);
        bool clash = false;
        for (int32_t p : premise)
          if (p == w || p == v.antonym(w)) clash = true;
        if (!clash) break;
      }
      hyp[k] = w;
    }

    Example ex;
    ex.tokens.push_back(Vocab::kCls);
    ex.segments.push_back(0);
    for (int32_t t : premise) {
      ex.tokens.push_back(t);
      ex.segments.push_back(0);
    }
    ex.tokens.push_back(Vocab::kSep);
    ex.segments.push_back(0);
    for (int32_t t : hyp) {
      ex.tokens.push_back(t);
      ex.segments.push_back(1);
    }
    ex.tokens.push_back(Vocab::kSep);
    ex.segments.push_back(1);
    if (static_cast<int>(ex.tokens.size()) > config.max_seq_len) {
      ex.tokens.resize(static_cast<size_t>(config.max_seq_len));
      ex.segments.resize(static_cast<size_t>(config.max_seq_len));
    }

    ex.label = label;
    if (rng.flip(config.label_noise)) {
      ex.label = static_cast<int32_t>((label + 1 + rng.randint(0, 1)) % 3);
    }
    out.push_back(std::move(ex));
  }
  return out;
}

double label_fraction(const std::vector<Example>& data, int32_t label) {
  if (data.empty()) return 0.0;
  int64_t n = 0;
  for (const Example& ex : data)
    if (ex.label == label) ++n;
  return static_cast<double>(n) / static_cast<double>(data.size());
}

}  // namespace fqbert::data
