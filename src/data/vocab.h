// Synthetic vocabulary with role-structured token ids.
//
// Since GLUE data and a pretrained tokenizer are unavailable offline, the
// synthetic tasks draw from a structured vocabulary: ids are partitioned
// into special tokens, sentiment-bearing words, negators, intensifiers,
// paired content words (with synonym/antonym structure for the NLI task)
// and neutral filler. The partition gives the generators compositional
// levers (negation scope, antonym substitution) so that a model must use
// attention — not just token counting — to reach ceiling accuracy.
#pragma once

#include <cstdint>
#include <vector>

namespace fqbert::data {

struct Vocab {
  // Special tokens (BERT conventions).
  static constexpr int32_t kPad = 0;
  static constexpr int32_t kCls = 1;
  static constexpr int32_t kSep = 2;
  static constexpr int32_t kUnk = 3;

  int32_t size = 512;

  // Role ranges [begin, end).
  int32_t pos_begin = 4, pos_end = 44;          // positive sentiment
  int32_t neg_begin = 44, neg_end = 84;         // negative sentiment
  int32_t negator_begin = 84, negator_end = 92; // polarity flippers
  int32_t intens_begin = 92, intens_end = 100;  // intensifiers
  int32_t content_begin = 100, content_end = 300;  // NLI content words
  int32_t filler_begin = 300, filler_end = 512;    // neutral filler

  int32_t num_positive() const { return pos_end - pos_begin; }
  int32_t num_negative() const { return neg_end - neg_begin; }
  int32_t num_content() const { return content_end - content_begin; }
  int32_t num_filler() const { return filler_end - filler_begin; }

  bool is_positive(int32_t id) const { return id >= pos_begin && id < pos_end; }
  bool is_negative(int32_t id) const { return id >= neg_begin && id < neg_end; }
  bool is_negator(int32_t id) const {
    return id >= negator_begin && id < negator_end;
  }
  bool is_intensifier(int32_t id) const {
    return id >= intens_begin && id < intens_end;
  }
  bool is_content(int32_t id) const {
    return id >= content_begin && id < content_end;
  }
  bool is_filler(int32_t id) const {
    return id >= filler_begin && id < filler_end;
  }

  /// Content words are paired: 2k <-> 2k+1 are antonyms of each other.
  int32_t antonym(int32_t content_id) const {
    const int32_t off = content_id - content_begin;
    return content_begin + (off ^ 1);
  }
};

}  // namespace fqbert::data
