#include "pipeline/pipeline.h"

#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace fqbert::pipeline {

BertConfig mini_config(int num_classes) {
  BertConfig c;
  c.vocab_size = 512;
  c.hidden = 64;
  c.num_layers = 2;
  c.num_heads = 4;
  c.ffn_dim = 256;
  c.max_seq_len = 32;
  c.num_classes = num_classes;
  return c;
}

data::Sst2Config sst2_generator_config() {
  data::Sst2Config cfg;
  cfg.max_sentiment = 1;    // one (possibly negated) sentiment clause
  cfg.label_noise = 0.045;  // irreducible-error ceiling ~95.5%
  return cfg;
}

data::MnliConfig mnli_generator_config() {
  data::MnliConfig cfg;
  // A compact content vocabulary (20 antonym pairs) keeps the premise/
  // hypothesis matching learnable from scratch by the MiniBERT.
  cfg.vocab.content_end = cfg.vocab.content_begin + 40;
  cfg.min_premise = 4;
  cfg.max_premise = 6;
  cfg.hypothesis_len = 3;
  // Noise above ~10% prevents the attention-matching circuit from
  // emerging at all during from-scratch training, so the ceiling is kept
  // high; see EXPERIMENTS.md for the tuning record.
  cfg.label_noise = 0.06;
  return cfg;
}

TaskData make_sst2_task(bool fast) {
  TaskData t;
  t.name = "SST-2";
  t.num_classes = 2;
  const data::Sst2Config cfg = sst2_generator_config();
  t.train = data::make_sst2(cfg, fast ? 600 : 5000, 101);
  t.eval = data::make_sst2(cfg, fast ? 200 : 600, 202);
  return t;
}

TaskData make_mnli_task(bool fast) {
  TaskData t;
  t.name = "MNLI";
  t.num_classes = 3;
  const data::MnliConfig cfg = mnli_generator_config();
  t.train = data::make_mnli(cfg, fast ? 800 : 8000, 303);
  t.eval = data::make_mnli(cfg, fast ? 200 : 600, 404);
  data::MnliConfig mm = cfg;
  mm.mismatched_genre = true;
  t.eval_extra = data::make_mnli(mm, fast ? 200 : 600, 505);
  return t;
}

TaskData make_named_task(const std::string& name, bool fast) {
  if (name == "sst2" || name == "SST-2") return make_sst2_task(fast);
  if (name == "mnli" || name == "MNLI") return make_mnli_task(fast);
  throw std::invalid_argument("unknown task: " + name +
                              " (expected sst2 or mnli)");
}

int float_epochs_for(const TaskData& task, bool fast) {
  if (fast) return 3;
  // The NLI matching task converges late (the attention-matching circuit
  // only emerges after several epochs); sentiment converges quickly.
  return task.num_classes == 3 ? 14 : 8;
}

float float_lr_for(const TaskData& task) {
  // The matching task trains stably only at a lower peak rate.
  return task.num_classes == 3 ? 8e-4f : 1.5e-3f;
}

namespace {

/// FNV-1a over the cache-relevant inputs: a checkpoint is only reused
/// when the task, its generated size, the model config, the training
/// recipe AND the seed all match. (Keying on the task name alone let
/// concurrent or differently-configured runs silently adopt a foreign
/// checkpoint.)
uint64_t float_cache_key(const TaskData& task, const BertConfig& cfg,
                         const nn::TrainConfig& tc, bool fast,
                         uint64_t seed) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (char c : task.name) mix(static_cast<uint64_t>(c));
  mix(task.train.size());
  mix(static_cast<uint64_t>(task.num_classes));
  mix(static_cast<uint64_t>(cfg.vocab_size));
  mix(static_cast<uint64_t>(cfg.hidden));
  mix(static_cast<uint64_t>(cfg.num_layers));
  mix(static_cast<uint64_t>(cfg.num_heads));
  mix(static_cast<uint64_t>(cfg.ffn_dim));
  mix(static_cast<uint64_t>(cfg.max_seq_len));
  mix(static_cast<uint64_t>(tc.epochs));
  mix(static_cast<uint64_t>(tc.batch_size));
  uint64_t lr_bits = 0;
  static_assert(sizeof(tc.adam.lr) == 4);
  std::memcpy(&lr_bits, &tc.adam.lr, sizeof(tc.adam.lr));
  mix(lr_bits);
  mix(fast ? 1 : 0);
  mix(seed);
  return h;
}

}  // namespace

std::unique_ptr<BertModel> train_float(const TaskData& task, bool fast,
                                       uint64_t seed, bool verbose,
                                       const std::string& cache_dir) {
  Rng rng(seed);
  const BertConfig model_cfg = mini_config(task.num_classes);
  auto model = std::make_unique<BertModel>(model_cfg, rng);
  nn::TrainConfig key_tc;
  key_tc.epochs = float_epochs_for(task, fast);
  key_tc.batch_size = 16;
  key_tc.adam.lr = float_lr_for(task);
  char key_hex[17];
  std::snprintf(key_hex, sizeof(key_hex), "%016llx",
                static_cast<unsigned long long>(float_cache_key(
                    task, model_cfg, key_tc, fast, seed)));
  const std::string cache =
      cache_dir.empty()
          ? ""
          : cache_dir + "/fqbert_float_" + task.name + "_" + key_hex +
                ".bin";
  if (!cache.empty() && nn::load_state(*model, cache)) {
    std::printf("[%s] loaded cached float model (%s), eval acc %.2f%%\n",
                task.name.c_str(), cache.c_str(), model->accuracy(task.eval));
    return model;
  }
  nn::TrainConfig tc = key_tc;
  tc.verbose = verbose;
  nn::train(*model, task.train, task.eval, tc);
  if (!cache.empty()) nn::save_state(*model, cache);
  return model;
}

std::unique_ptr<BertModel> clone_model(BertModel& src, const BertConfig& cfg) {
  Rng rng(1);
  auto dst = std::make_unique<BertModel>(cfg, rng);
  nn::vector_to_state(*dst, nn::state_to_vector(src));
  return dst;
}

double qat_finetune(QatBert& qat, const TaskData& task, bool fast) {
  nn::TrainConfig tc;
  tc.epochs = fast ? 1 : 2;
  tc.batch_size = 16;
  tc.adam.lr = 4e-4f;  // gentler than from-scratch training
  qat.set_training(true);
  nn::train(qat.model(), task.train, task.eval, tc);
  qat.set_training(false);
  return qat.model().accuracy(task.eval);
}

FqBertModel quantize_pipeline(BertModel& float_model, const TaskData& task,
                              const FqQuantConfig& cfg, bool fast) {
  auto model = clone_model(float_model, float_model.config());
  QatBert qat(*model, cfg);
  qat_finetune(qat, task, fast);
  qat.calibrate(task.train);
  return FqBertModel::convert(qat);
}

std::shared_ptr<const FqBertModel> build_and_register_engine(
    serve::EngineRegistry& registry, const std::string& name,
    const std::string& task_name, const FqQuantConfig& cfg, bool fast) {
  TaskData task = make_named_task(task_name, fast);
  auto float_model = train_float(task, fast);
  auto engine = std::make_shared<const FqBertModel>(
      quantize_pipeline(*float_model, task, cfg, fast));
  registry.register_model(name, engine);
  return engine;
}

}  // namespace fqbert::pipeline
