// The end-to-end FQ-BERT workflow as a library: task construction
// (tuned synthetic stand-ins for SST-2/MNLI), float training, QAT
// fine-tuning and conversion to the integer engine.
//
// Used by the bench harnesses, the examples and the fqbert_cli tool, so
// every consumer runs the identical pipeline.
#pragma once

#include <memory>
#include <string>

#include "core/fq_bert.h"
#include "data/synth_tasks.h"
#include "nn/trainer.h"
#include "serve/engine_registry.h"

namespace fqbert::pipeline {

using core::FqBertModel;
using core::FqQuantConfig;
using core::QatBert;
using nn::BertConfig;
using nn::BertModel;
using nn::Example;

struct TaskData {
  std::string name;
  std::vector<Example> train;
  std::vector<Example> eval;
  std::vector<Example> eval_extra;  // MNLI mismatched split
  int num_classes = 2;
};

/// MiniBERT used for all accuracy experiments (see DESIGN.md).
BertConfig mini_config(int num_classes);

/// Tuned generator configurations (see EXPERIMENTS.md for the tuning).
data::Sst2Config sst2_generator_config();
data::MnliConfig mnli_generator_config();

TaskData make_sst2_task(bool fast);
TaskData make_mnli_task(bool fast);

/// Dispatch by name: "sst2" or "mnli".
TaskData make_named_task(const std::string& name, bool fast);

int float_epochs_for(const TaskData& task, bool fast);
float float_lr_for(const TaskData& task);

/// Train the float MiniBERT from scratch. When `cache_dir` is non-empty,
/// trained weights are cached there and reused on the next call.
std::unique_ptr<BertModel> train_float(const TaskData& task, bool fast,
                                       uint64_t seed = 7,
                                       bool verbose = false,
                                       const std::string& cache_dir = "/tmp");

/// Clone a model's parameters into a fresh instance.
std::unique_ptr<BertModel> clone_model(BertModel& src, const BertConfig& cfg);

/// QAT fine-tune an instrumented model; returns the fake-quantized
/// model's eval accuracy.
double qat_finetune(QatBert& qat, const TaskData& task, bool fast);

/// Full pipeline: clone -> instrument -> fine-tune -> calibrate ->
/// convert.
FqBertModel quantize_pipeline(BertModel& float_model, const TaskData& task,
                              const FqQuantConfig& cfg, bool fast);

/// Run the full train(+cache) -> quantize pipeline for `task_name` and
/// publish the engine in-memory under `name`. This is the demo path for
/// `fqbert_cli serve --task ...` and the serving benches when no
/// pre-built engine file is supplied.
std::shared_ptr<const FqBertModel> build_and_register_engine(
    serve::EngineRegistry& registry, const std::string& name,
    const std::string& task_name, const FqQuantConfig& cfg, bool fast);

}  // namespace fqbert::pipeline
