// FPGA device catalog (paper Table III header rows) and accelerator
// configuration.
#pragma once

#include <cstdint>
#include <string>

namespace fqbert::accel {

/// Target-device resource envelope and board characteristics.
struct FpgaDevice {
  std::string name;
  int64_t bram18k = 0;
  int64_t dsp48 = 0;
  int64_t ff = 0;
  int64_t lut = 0;
  bool has_uram = false;       // ZCU111 maps large buffers to URAM
  double axi_bytes_per_cycle = 32.0;  // effective off-chip bandwidth
  double static_power_w = 0.0;        // PS + PL static + board overhead

  static FpgaDevice zcu102() {
    FpgaDevice d;
    d.name = "ZCU102";
    d.bram18k = 1824;
    d.dsp48 = 2520;
    d.ff = 548160;
    d.lut = 274080;
    d.has_uram = false;
    d.axi_bytes_per_cycle = 32.0;
    d.static_power_w = 3.8;
    return d;
  }

  static FpgaDevice zcu111() {
    FpgaDevice d;
    d.name = "ZCU111";
    d.bram18k = 2160;
    d.dsp48 = 4272;
    d.ff = 850560;
    d.lut = 425280;
    d.has_uram = true;
    d.axi_bytes_per_cycle = 64.0;
    d.static_power_w = 4.1;
    return d;
  }
};

/// Accelerator instantiation parameters (paper: H=12 PUs; Table III
/// examines (N, M) = PEs per PU and multipliers per BIM).
struct AcceleratorConfig {
  int num_pus = 12;        // H
  int pes_per_pu = 8;      // N
  int bim_mults = 16;      // M
  int bim_type_a = 1;      // 1 = Type A (default; cheaper), 0 = Type B
  double clock_mhz = 214.0;

  // On-chip buffer sizing (bytes). The weight buffer is double buffered:
  // each half holds one sub-stage weight tile.
  int64_t weight_buffer_bytes = 256 * 1024;
  bool double_buffer_weights = true;

  // SIMD lane counts of the special-function cores. The softmax and LN
  // cores are built from the same vector datapath as the BIM columns, so
  // their width follows M; -1 means "match bim_mults".
  int softmax_lanes = -1;
  int ln_lanes = -1;

  int resolved_softmax_lanes() const {
    return softmax_lanes > 0 ? softmax_lanes : bim_mults;
  }
  int resolved_ln_lanes() const {
    return ln_lanes > 0 ? ln_lanes : bim_mults;
  }

  int64_t total_pes() const {
    return static_cast<int64_t>(num_pus) * pes_per_pu;
  }
  int64_t total_mults() const { return total_pes() * bim_mults; }

  static AcceleratorConfig zcu102_8_16() {
    AcceleratorConfig c;
    c.pes_per_pu = 8;
    c.bim_mults = 16;
    return c;
  }
  static AcceleratorConfig zcu102_16_8() {
    AcceleratorConfig c;
    c.pes_per_pu = 16;
    c.bim_mults = 8;
    return c;
  }
  static AcceleratorConfig zcu111_16_16() {
    AcceleratorConfig c;
    c.pes_per_pu = 16;
    c.bim_mults = 16;
    return c;
  }
};

}  // namespace fqbert::accel
