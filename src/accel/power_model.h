// Board-level power estimation (paper Table IV: 9.8 W on ZCU102,
// 13.2 W on ZCU111).
//
// Structural model: static (PS + PL leakage + board overhead) plus
// dynamic contributions per active DSP, BRAM, logic cell (LUT+FF) and
// AXI byte-lane. Coefficients are calibrated against the paper's two
// measured operating points; they land within ~4% of both and are used
// to *predict* power for unreported configurations such as (16,8) and
// the BIM Type-B variant.
#pragma once

#include "accel/resource_model.h"

namespace fqbert::accel {

class PowerModel {
 public:
  static constexpr double kDspW = 1.3e-3;    // per active DSP48
  static constexpr double kBramW = 1.0e-3;   // per BRAM18K
  static constexpr double kUramW = 8.0e-3;   // per URAM block
  static constexpr double kLogicW = 9.0e-6;  // per LUT or FF
  static constexpr double kAxiW = 0.01;      // per byte/cycle of AXI width

  static double estimate_w(const AcceleratorConfig& cfg,
                           const FpgaDevice& dev) {
    const ResourceUsage r = ResourceModel::estimate(cfg, dev);
    return estimate_w(r, cfg, dev);
  }

  static double estimate_w(const ResourceUsage& r,
                           const AcceleratorConfig& cfg,
                           const FpgaDevice& dev) {
    double p = dev.static_power_w;
    p += kDspW * static_cast<double>(r.dsp48);
    p += kBramW * static_cast<double>(r.bram18k);
    p += kUramW * static_cast<double>(r.uram);
    p += kLogicW * static_cast<double>(r.ff + r.lut);
    p += kAxiW * dev.axi_bytes_per_cycle;
    // Scale dynamic parts with clock relative to the calibration point.
    const double f_ratio = cfg.clock_mhz / 214.0;
    return dev.static_power_w + (p - dev.static_power_w) * f_ratio;
  }
};

}  // namespace fqbert::accel
