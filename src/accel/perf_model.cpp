#include "accel/perf_model.h"

#include <algorithm>
#include <cmath>

namespace fqbert::accel {

namespace {
int64_t ceil_div(int64_t a, int64_t b) { return (a + b - 1) / b; }
}  // namespace

int64_t PerfModel::matmul_cycles(int64_t rows, int64_t k, int64_t cols,
                                 bool mode_8x8) const {
  const int64_t lanes = mode_8x8 ? cfg_.bim_mults / 2 : cfg_.bim_mults;
  const int64_t outputs = rows * cols;
  const int64_t tiles = ceil_div(outputs, cfg_.total_pes());
  const int64_t dot_cycles = ceil_div(k, lanes);
  return tiles * (dot_cycles + kTileOverheadCycles);
}

int64_t PerfModel::softmax_cycles(int64_t rows, int64_t cols) const {
  // Max-scan, LUT+sum, divide: three SIMD passes per row.
  return rows * kSoftmaxPassesPerRow *
             ceil_div(cols, cfg_.resolved_softmax_lanes()) +
         kStageControlCycles;
}

int64_t PerfModel::layernorm_cycles(int64_t rows, int64_t width) const {
  // The 3-stage pipelined SIMD unit (Sec. III-B "LN Core").
  return rows * kLnPassesPerRow * ceil_div(width, cfg_.resolved_ln_lanes()) +
         kStageControlCycles;
}

int64_t PerfModel::transfer_cycles(int64_t bytes) const {
  return static_cast<int64_t>(
      std::ceil(static_cast<double>(bytes) / dev_.axi_bytes_per_cycle));
}

StageStats PerfModel::weight_stage(const std::string& name, int64_t rows,
                                   int64_t k, int64_t cols,
                                   int64_t weight_bytes, bool overlap) const {
  StageStats st;
  st.name = name;
  st.weight_bytes = weight_bytes;
  st.compute_cycles = matmul_cycles(rows, k, cols, /*mode_8x8=*/false);
  st.transfer_cycles = transfer_cycles(weight_bytes);

  const int64_t half_buf = cfg_.weight_buffer_bytes / 2;
  const int sub = static_cast<int>(
      std::max<int64_t>(1, ceil_div(weight_bytes, half_buf)));
  st.sub_stages = sub;

  const int64_t load_per_sub = ceil_div(st.transfer_cycles, sub);
  const int64_t comp_per_sub = ceil_div(st.compute_cycles, sub);
  if (overlap) {
    // Fig. 5: the first tile's load is exposed; afterwards load i+1 runs
    // under compute i.
    st.total_cycles = load_per_sub +
                      (sub - 1) * std::max(load_per_sub, comp_per_sub) +
                      comp_per_sub + kStageControlCycles;
    st.stall_cycles = st.total_cycles - st.compute_cycles -
                      kStageControlCycles;
    if (st.stall_cycles < 0) st.stall_cycles = 0;
  } else {
    st.total_cycles =
        st.transfer_cycles + st.compute_cycles + kStageControlCycles;
    st.stall_cycles = st.transfer_cycles;
  }
  return st;
}

LatencyReport PerfModel::estimate(const nn::BertConfig& m,
                                  int64_t seq_len) const {
  return estimate_impl(m, seq_len, cfg_.double_buffer_weights);
}

LatencyReport PerfModel::estimate_no_overlap(const nn::BertConfig& m,
                                             int64_t seq_len) const {
  return estimate_impl(m, seq_len, false);
}

LatencyReport PerfModel::estimate_impl(const nn::BertConfig& m,
                                       int64_t seq_len, bool overlap) const {
  const int64_t s_len = seq_len;
  const int64_t hd = m.hidden;
  const int64_t f = m.ffn_dim;
  const int64_t heads = m.num_heads;
  const int64_t dh = m.head_dim();

  // 4-bit weights, two per byte; biases (32b) and scales ride along.
  auto wbytes = [](int64_t k, int64_t cols) {
    return k * cols / 2 + cols * 4 + 16;
  };

  LatencyReport rep;
  rep.num_layers = static_cast<int>(m.num_layers);

  auto add = [&rep](StageStats st) {
    rep.cycles_per_layer += st.total_cycles;
    rep.stages.push_back(std::move(st));
  };

  // --- Fig. 5 stage sequence, one encoder layer ---
  add(weight_stage("X*Wq", s_len, hd, hd, wbytes(hd, hd), overlap));
  add(weight_stage("X*Wk", s_len, hd, hd, wbytes(hd, hd), overlap));
  add(weight_stage("X*Wv", s_len, hd, hd, wbytes(hd, hd), overlap));

  StageStats qk;
  qk.name = "Q*K^T";
  qk.compute_cycles = matmul_cycles(heads * s_len, dh, s_len, true);
  qk.total_cycles = qk.compute_cycles + kStageControlCycles;
  add(qk);

  StageStats sm;
  sm.name = "Softmax";
  sm.compute_cycles = softmax_cycles(heads * s_len, s_len);
  sm.total_cycles = sm.compute_cycles + kStageControlCycles;
  add(sm);

  StageStats av;
  av.name = "Attn*V";
  av.compute_cycles = matmul_cycles(heads * s_len, s_len, dh, true);
  av.total_cycles = av.compute_cycles + kStageControlCycles;
  add(av);

  add(weight_stage("O_A*Ws", s_len, hd, hd, wbytes(hd, hd), overlap));

  StageStats ln1;
  ln1.name = "Add&LN1";
  ln1.compute_cycles = layernorm_cycles(s_len, hd);
  ln1.total_cycles = ln1.compute_cycles + kStageControlCycles;
  add(ln1);

  add(weight_stage("FFN1+GELU", s_len, hd, f, wbytes(hd, f), overlap));
  add(weight_stage("FFN2", s_len, f, hd, wbytes(f, hd), overlap));

  StageStats ln2;
  ln2.name = "Add&LN2";
  ln2.compute_cycles = layernorm_cycles(s_len, hd);
  ln2.total_cycles = ln2.compute_cycles + kStageControlCycles;
  add(ln2);

  rep.total_cycles = rep.cycles_per_layer * m.num_layers;
  rep.fpga_ms = static_cast<double>(rep.total_cycles) /
                (cfg_.clock_mhz * 1e3);

  // CPU-side share (Sec. III-A): embeddings gathered and task head
  // evaluated on the host. Simple ops/throughput model of a desktop core.
  const double cpu_ops =
      static_cast<double>(3 * s_len * hd)        // table gathers + adds
      + static_cast<double>(2 * s_len * hd)      // embedding LayerNorm
      + static_cast<double>(2 * hd * hd)         // pooler
      + static_cast<double>(2 * hd * m.num_classes);
  constexpr double kCpuOpsPerSec = 2.0e9;
  constexpr double kCpuFixedMs = 0.25;  // driver + DMA setup
  rep.cpu_side_ms = cpu_ops / kCpuOpsPerSec * 1e3 + kCpuFixedMs;

  rep.total_ms = rep.fpga_ms + rep.cpu_side_ms;
  return rep;
}

}  // namespace fqbert::accel
