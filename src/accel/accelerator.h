// Facade: evaluate an accelerator configuration end to end —
// resources, latency, power, energy efficiency (the quantities the
// paper's Tables III and IV report).
#pragma once

#include "accel/perf_model.h"
#include "accel/power_model.h"
#include "accel/resource_model.h"

namespace fqbert::accel {

struct AcceleratorReport {
  AcceleratorConfig config;
  FpgaDevice device;
  ResourceUsage resources;
  LatencyReport latency;
  double power_w = 0.0;
  double fps = 0.0;
  double fps_per_w = 0.0;
};

inline AcceleratorReport evaluate(const AcceleratorConfig& cfg,
                                  const FpgaDevice& dev,
                                  const nn::BertConfig& model_cfg,
                                  int64_t seq_len) {
  AcceleratorReport rep;
  rep.config = cfg;
  rep.device = dev;
  rep.resources = ResourceModel::estimate(cfg, dev);
  rep.latency = PerfModel(cfg, dev).estimate(model_cfg, seq_len);
  rep.power_w = PowerModel::estimate_w(rep.resources, cfg, dev);
  rep.fps = rep.latency.fps();
  rep.fps_per_w = rep.fps / rep.power_w;
  return rep;
}

}  // namespace fqbert::accel
