// On-chip buffer inventory (paper Fig. 2).
//
// The accelerator holds six buffer classes on chip:
//   * input/output buffers    — one sequence of activations each,
//   * weight buffer           — double-buffered sub-stage tiles,
//   * psum buffers            — per-PE, double-buffered (Sec. III-B),
//   * parameter buffer        — scales, softmax LUT, GELU LUT, LN params,
//   * intermediate buffer     — Q, K, V and the attention matrix.
//
// This module sizes each buffer from the model/accelerator configuration
// and maps bytes to BRAM18K blocks, giving a *structural* BRAM estimate
// that tests cross-check against the calibrated ResourceModel total, and
// a capacity-feasibility check for a given device.
#pragma once

#include <algorithm>
#include <cstdint>

#include "accel/device.h"
#include "nn/bert.h"

namespace fqbert::accel {

struct BufferBudget {
  int64_t input_bytes = 0;
  int64_t output_bytes = 0;
  int64_t weight_bytes = 0;        // both halves of the double buffer
  int64_t psum_bytes = 0;          // all PEs, both banks
  int64_t param_bytes = 0;
  int64_t intermediate_bytes = 0;  // Q, K, V, attention matrix

  int64_t total_bytes() const {
    return input_bytes + output_bytes + weight_bytes + psum_bytes +
           param_bytes + intermediate_bytes;
  }

  /// BRAM18K blocks: 18 Kbit = 2304 bytes per block, with per-buffer
  /// granularity (each logical buffer rounds up to whole blocks, and
  /// banking forces at least 2 blocks per independently-addressed
  /// memory).
  int64_t bram18k(int64_t pe_count) const {
    auto blocks = [](int64_t bytes) {
      return std::max<int64_t>(1, (bytes + 2303) / 2304);
    };
    int64_t total = 0;
    total += blocks(input_bytes);
    total += blocks(output_bytes);
    total += 2 * blocks(weight_bytes / 2);  // two independent halves
    // psum buffers are per-PE dual-bank memories: tiny but block-granular.
    total += pe_count;  // ~1 block per PE covers both banks at N<=32
    total += blocks(param_bytes);
    total += blocks(intermediate_bytes);
    return total;
  }
};

inline BufferBudget plan_buffers(const nn::BertConfig& m, int64_t seq_len,
                                 const AcceleratorConfig& cfg) {
  BufferBudget b;
  const int64_t s_len = seq_len;
  const int64_t h = m.hidden;
  const int64_t heads = m.num_heads;

  // 8-bit activations.
  b.input_bytes = s_len * h;
  b.output_bytes = s_len * h;
  b.weight_bytes = cfg.weight_buffer_bytes;
  // 32-bit psums, double buffered, one outstanding output per PE bank.
  b.psum_bytes = cfg.total_pes() * 2 * 4;
  // Scales (a few hundred), softmax LUT (256 B), GELU LUT (256 B),
  // LN gamma/beta for the active layer (2 * h), biases of the largest
  // matmul (ffn_dim * 4 B).
  b.param_bytes = 512 + 256 + 256 + 2 * h + m.ffn_dim * 4;
  // Q, K, V (8-bit) and the attention matrix for all heads (8-bit);
  // the FFN mid activations reuse the Q/K/V region (S*ffn exceeds it,
  // so take the max of the two working sets).
  const int64_t qkv = 3 * s_len * h;
  const int64_t attn = heads * s_len * s_len;
  const int64_t ffn_mid = s_len * m.ffn_dim;
  b.intermediate_bytes = std::max(qkv, ffn_mid) + attn;
  return b;
}

/// Does the plan fit the device's BRAM (plus URAM offload when present)?
inline bool buffers_fit(const BufferBudget& b, const AcceleratorConfig& cfg,
                        const FpgaDevice& dev) {
  int64_t blocks = b.bram18k(cfg.total_pes());
  if (dev.has_uram) {
    // The weight double-buffer moves to URAM on devices that have it.
    blocks -= 2 * std::max<int64_t>(1, (cfg.weight_buffer_bytes / 2 + 2303) / 2304);
  }
  return blocks <= dev.bram18k;
}

}  // namespace fqbert::accel
