// Full-model functional accelerator simulation.
//
// Runs a complete FqBertModel inference through the BIM datapath —
// every layer, bit-exact — while accounting per-stage datapath cycles,
// and converts them to a wall-clock estimate using the configured
// PE-array parallelism and the special-function core widths. This is an
// *executable* latency estimate, independent of the analytical PerfModel;
// the two are cross-checked in tests and in bench_schedule_ablation.
#pragma once

#include <string>
#include <vector>

#include "accel/device.h"
#include "accel/functional.h"
#include "core/fq_bert.h"

namespace fqbert::accel {

struct FullSimStage {
  std::string name;
  int64_t mac_count = 0;
  int64_t pe_cycles = 0;  // cycles on the full PE array
};

struct FullSimReport {
  Tensor logits;             // bit-exact model output
  int32_t predicted = 0;
  std::vector<FullSimStage> per_layer;  // aggregated over layers
  int64_t total_pe_cycles = 0;
  int64_t total_special_cycles = 0;  // softmax + LN cores
  double fpga_ms = 0.0;
};

/// Execute `example` through the engine on the simulated datapath.
FullSimReport run_full_model(const core::FqBertModel& engine,
                             const nn::Example& example,
                             const AcceleratorConfig& cfg);

}  // namespace fqbert::accel
