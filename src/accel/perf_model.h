// Cycle-level performance model: executes the Fig. 5 dataflow
// stage-by-stage (and sub-stage by sub-stage) and accounts compute
// cycles, weight-transfer cycles, and their overlap under double
// buffering.
//
// Mapping (Sec. III): output elements of a matrix product are spread
// across the H*N PEs; each PE's BIM consumes `lanes(mode)` operand pairs
// per cycle, so a K-deep dot product takes ceil(K/lanes) cycles.
// Weight-bearing stages stream 4-bit weights from DDR through the
// double-buffered weight buffer; a stage is split into sub-stages whose
// tiles fit half the buffer, and sub-stage i+1's load overlaps sub-stage
// i's compute ("the off-chip transfer can be completely overlapped by
// computing" — when the bandwidth suffices).
#pragma once

#include <string>
#include <vector>

#include "accel/device.h"
#include "nn/bert.h"

namespace fqbert::accel {

/// One scheduled stage of the dataflow (Fig. 5).
struct StageStats {
  std::string name;
  int64_t compute_cycles = 0;
  int64_t transfer_cycles = 0;  // weight streaming
  int64_t stall_cycles = 0;     // transfer not hidden by compute
  int64_t total_cycles = 0;     // what the stage contributes end-to-end
  int64_t weight_bytes = 0;
  int sub_stages = 1;
};

struct LatencyReport {
  std::vector<StageStats> stages;  // one encoder layer's stages
  int num_layers = 1;
  int64_t cycles_per_layer = 0;
  int64_t total_cycles = 0;   // all layers
  double fpga_ms = 0.0;       // encoder on FPGA
  double cpu_side_ms = 0.0;   // embedding + task head on the host CPU
  double total_ms = 0.0;

  double fps() const { return total_ms > 0 ? 1000.0 / total_ms : 0.0; }
};

class PerfModel {
 public:
  PerfModel(AcceleratorConfig cfg, FpgaDevice dev)
      : cfg_(cfg), dev_(dev) {}

  /// Latency of one batch-1 inference of `model_cfg` at seq_len tokens.
  LatencyReport estimate(const nn::BertConfig& model_cfg,
                         int64_t seq_len) const;

  /// Ablation switch: disable load/compute overlap (double buffering).
  LatencyReport estimate_no_overlap(const nn::BertConfig& model_cfg,
                                    int64_t seq_len) const;

  const AcceleratorConfig& config() const { return cfg_; }
  const FpgaDevice& device() const { return dev_; }

  // ---- stage primitives (exposed for unit tests) ----

  /// Compute cycles of an [rows x k] x [k x cols] product in a mode.
  int64_t matmul_cycles(int64_t rows, int64_t k, int64_t cols,
                        bool mode_8x8) const;

  /// Cycles for the softmax core over `rows` rows of `cols` entries.
  int64_t softmax_cycles(int64_t rows, int64_t cols) const;

  /// Cycles for the LN core over `rows` rows of `width` features.
  int64_t layernorm_cycles(int64_t rows, int64_t width) const;

  /// Transfer cycles for `bytes` of weights over AXI.
  int64_t transfer_cycles(int64_t bytes) const;

 private:
  LatencyReport estimate_impl(const nn::BertConfig& model_cfg,
                              int64_t seq_len, bool overlap) const;

  /// Schedule one weight-bearing stage with sub-stage tiling.
  StageStats weight_stage(const std::string& name, int64_t rows, int64_t k,
                          int64_t cols, int64_t weight_bytes,
                          bool overlap) const;

  AcceleratorConfig cfg_;
  FpgaDevice dev_;

  // Pipeline constants (fill of the PE pipeline per output tile, quant
  // unit latency, stage-switch control overhead). Calibrated together
  // with the throughput model against the paper's Table III latencies.
  static constexpr int64_t kTileOverheadCycles = 2;
  static constexpr int64_t kStageControlCycles = 64;
  static constexpr int64_t kSoftmaxPassesPerRow = 3;
  static constexpr int64_t kLnPassesPerRow = 3;
};

}  // namespace fqbert::accel
