#include "accel/bim.h"

#include <cassert>

namespace fqbert::accel {

namespace {
bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }
}  // namespace

Bim::Bim(int m_mults, BimType type) : m_(m_mults), type_(type) {
  if (!is_pow2(m_mults) || m_mults < 2) {
    throw std::invalid_argument("BIM multiplier count must be a power of two >= 2");
  }
}

int32_t Bim::mult_8x4(int8_t a, int8_t w_nibble, bool a_signed,
                      bool w_signed) {
  const int32_t av = a_signed ? static_cast<int32_t>(a)
                              : static_cast<int32_t>(static_cast<uint8_t>(a));
  const int32_t wv = w_signed ? static_cast<int32_t>(w_nibble)
                              : static_cast<int32_t>(
                                    static_cast<uint8_t>(w_nibble) & 0x0Fu);
  assert(w_signed ? (wv >= -8 && wv <= 7) : (wv >= 0 && wv <= 15));
  return av * wv;
}

int32_t Bim::dot_8x4(std::span<const int8_t> a, std::span<const int8_t> w,
                     bool a_signed, bool w_signed) const {
  assert(a.size() <= static_cast<size_t>(m_) && a.size() == w.size());
  // Two m-input adder trees: even lanes feed tree0, odd lanes tree1; in
  // 8x4 mode the trees' outputs are added with no shift.
  int32_t tree0 = 0, tree1 = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const int32_t p = mult_8x4(a[i], w[i], a_signed, w_signed);
    (i % 2 == 0 ? tree0 : tree1) += p;
  }
  return tree0 + tree1;
}

int32_t Bim::dot_8x8(std::span<const int8_t> a, std::span<const int8_t> w,
                     bool a_signed, bool w_signed) const {
  assert(a.size() <= static_cast<size_t>(m_ / 2) && a.size() == w.size());
  if (type_ == BimType::kTypeB) {
    // Type B: shift-add per multiplier pair, one tree over pair results.
    int32_t sum = 0;
    for (size_t j = 0; j < a.size(); ++j) {
      const int8_t w_hi = static_cast<int8_t>(w[j] >> 4);  // arithmetic
      const int8_t w_lo = static_cast<int8_t>(w[j] & 0x0F);
      const int32_t p_hi = mult_8x4(a[j], w_hi, a_signed, w_signed);
      const int32_t p_lo = mult_8x4(a[j], w_lo, a_signed, /*w_signed=*/false);
      sum += (p_hi << 4) + p_lo;
    }
    return sum;
  }
  // Type A: all low nibbles through tree0, all high nibbles through
  // tree1, single shift at the tree output (operands rearranged so each
  // nibble class lands on its tree).
  int32_t tree_lo = 0, tree_hi = 0;
  for (size_t j = 0; j < a.size(); ++j) {
    const int8_t w_hi = static_cast<int8_t>(w[j] >> 4);
    const int8_t w_lo = static_cast<int8_t>(w[j] & 0x0F);
    tree_hi += mult_8x4(a[j], w_hi, a_signed, w_signed);
    tree_lo += mult_8x4(a[j], w_lo, a_signed, /*w_signed=*/false);
  }
  return (tree_hi << 4) + tree_lo;
}

int32_t Bim::dot(std::span<const int8_t> a, std::span<const int8_t> w,
                 BimMode mode, int64_t* cycles_out, bool a_signed) const {
  assert(a.size() == w.size());
  const size_t lane = static_cast<size_t>(lanes(mode));
  int64_t cycles = 0;
  int64_t acc = 0;
  for (size_t off = 0; off < a.size(); off += lane) {
    const size_t n = std::min(lane, a.size() - off);
    const auto asub = a.subspan(off, n);
    const auto wsub = w.subspan(off, n);
    acc += mode == BimMode::k8x4 ? dot_8x4(asub, wsub, a_signed)
                                 : dot_8x8(asub, wsub, a_signed);
    ++cycles;
  }
  if (cycles_out != nullptr) *cycles_out = cycles;
  return static_cast<int32_t>(acc);
}

int64_t bim_matmul_wt(const Bim& bim, BimMode mode,
                      const std::vector<int8_t>& a,
                      const std::vector<int8_t>& w,
                      std::vector<int32_t>& acc, int64_t rows, int64_t k,
                      int64_t cols, bool a_signed) {
  assert(static_cast<int64_t>(a.size()) == rows * k);
  assert(static_cast<int64_t>(w.size()) == cols * k);
  acc.assign(static_cast<size_t>(rows * cols), 0);
  int64_t total_cycles = 0;
  for (int64_t r = 0; r < rows; ++r) {
    std::span<const int8_t> arow(a.data() + r * k, static_cast<size_t>(k));
    for (int64_t c = 0; c < cols; ++c) {
      std::span<const int8_t> wrow(w.data() + c * k, static_cast<size_t>(k));
      int64_t cyc = 0;
      acc[static_cast<size_t>(r * cols + c)] =
          bim.dot(arow, wrow, mode, &cyc, a_signed);
      total_cycles += cyc;
    }
  }
  return total_cycles;
}

}  // namespace fqbert::accel
