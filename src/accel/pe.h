// Structural PE / PU model (paper Fig. 2).
//
// A PE couples one BIM with an accumulator, a double-buffered partial-
// sum buffer and the requantization unit: while the quant unit drains
// psum bank A, the BIM accumulates the next output into bank B — the
// reason "the Psum Buf is double buffered to ensure the calculation can
// be pipelined" (Sec. III-B).
//
// A PU broadcasts one activation vector to its N PEs, each working on a
// different output element. Pu::matmul executes a full matrix product
// tile-by-tile, producing bit-exact outputs *and* a cycle count that the
// analytical PerfModel must agree with (cross-checked in tests).
#pragma once

#include <cstdint>
#include <vector>

#include "accel/bim.h"
#include "core/int_kernels.h"

namespace fqbert::accel {

/// Cycle cost bookkeeping for a PE tile.
struct PeCycleStats {
  int64_t bim_cycles = 0;    // operand chunks consumed
  int64_t quant_cycles = 0;  // psum drain (hidden when <= bim_cycles)
  int64_t stalls = 0;        // quant not hidden by the next tile
};

/// One processing element: BIM + accumulator + double-buffered psum +
/// requant. Latency of the quant pipeline per output.
class Pe {
 public:
  static constexpr int64_t kQuantLatency = 4;

  Pe(int bim_mults, BimType type) : bim_(bim_mults, type) {}

  const Bim& bim() const { return bim_; }

  /// Accumulate a full dot product (arbitrary K) through the BIM.
  int32_t dot(std::span<const int8_t> a, std::span<const int8_t> w,
              BimMode mode, PeCycleStats& stats, bool a_signed = true) const {
    int64_t cycles = 0;
    const int32_t acc = bim_.dot(a, w, mode, &cycles, a_signed);
    stats.bim_cycles += cycles;
    // The requant of this output drains while the next dot computes; it
    // is exposed only if the next dot is shorter than the pipeline.
    stats.quant_cycles += kQuantLatency;
    if (cycles < kQuantLatency) stats.stalls += kQuantLatency - cycles;
    return acc;
  }

 private:
  Bim bim_;
};

/// A processing unit: N PEs sharing a broadcast activation operand.
class Pu {
 public:
  Pu(int num_pes, int bim_mults, BimType type) {
    pes_.reserve(static_cast<size_t>(num_pes));
    for (int i = 0; i < num_pes; ++i) pes_.emplace_back(bim_mults, type);
  }

  int num_pes() const { return static_cast<int>(pes_.size()); }

  /// acc[r, c] = sum_k a[r, k] * w[c, k], outputs distributed over the
  /// PEs round-robin; all PEs in a tile share the broadcast row of `a`.
  /// Returns PU cycles (max over PEs per tile, summed over tiles).
  int64_t matmul(const std::vector<int8_t>& a, const std::vector<int8_t>& w,
                 std::vector<int32_t>& acc, int64_t rows, int64_t k,
                 int64_t cols, BimMode mode, bool a_signed = true) const {
    acc.assign(static_cast<size_t>(rows * cols), 0);
    const int64_t n = num_pes();
    int64_t total_cycles = 0;
    for (int64_t r = 0; r < rows; ++r) {
      std::span<const int8_t> arow(a.data() + r * k, static_cast<size_t>(k));
      for (int64_t c0 = 0; c0 < cols; c0 += n) {
        // One tile: PEs 0..n-1 take consecutive output columns.
        int64_t tile_cycles = 0;
        const int64_t c1 = std::min(c0 + n, cols);
        for (int64_t c = c0; c < c1; ++c) {
          PeCycleStats st;
          std::span<const int8_t> wrow(w.data() + c * k,
                                       static_cast<size_t>(k));
          acc[static_cast<size_t>(r * cols + c)] =
              pes_[static_cast<size_t>(c - c0)].dot(arow, wrow, mode, st,
                                                    a_signed);
          tile_cycles = std::max(tile_cycles, st.bim_cycles + st.stalls);
        }
        total_cycles += tile_cycles;
      }
    }
    return total_cycles;
  }

 private:
  std::vector<Pe> pes_;
};

}  // namespace fqbert::accel
