#include "accel/full_sim.h"

#include <cmath>

namespace fqbert::accel {

namespace {
int64_t ceil_div(int64_t a, int64_t b) { return (a + b - 1) / b; }
}  // namespace

FullSimReport run_full_model(const core::FqBertModel& engine,
                             const nn::Example& example,
                             const AcceleratorConfig& cfg) {
  FullSimReport rep;
  const int64_t s_len = static_cast<int64_t>(example.tokens.size());
  const int64_t pes = cfg.total_pes();
  const Bim bim(cfg.bim_mults,
                cfg.bim_type_a != 0 ? BimType::kTypeA : BimType::kTypeB);

  std::vector<int8_t> x = engine.embed(example);
  std::vector<int8_t> y;

  FullSimStage mat84{"matmul 8x4 (XW, FFN)", 0, 0};
  FullSimStage mat88{"matmul 8x8 (QK^T, Attn*V)", 0, 0};

  for (const core::FqEncoderLayer& layer : engine.encoder_layers()) {
    const FunctionalRunStats st = run_layer_on_bim(layer, bim, x, y, s_len);
    x.swap(y);

    // The functional pass measures single-PE cycles; on the array the
    // outputs are spread over all PEs.
    mat84.pe_cycles += ceil_div(st.bim_cycles_8x4, pes);
    mat88.pe_cycles += ceil_div(st.bim_cycles_8x8, pes);
    mat84.mac_count +=
        st.mac_count;  // split below; exact split not tracked per mode

    // Special-function cores (same widths as the analytical model).
    const int64_t sm = layer.num_heads * s_len * 3 *
                       ceil_div(s_len, cfg.resolved_softmax_lanes());
    const int64_t ln =
        2 * s_len * 3 * ceil_div(layer.hidden, cfg.resolved_ln_lanes());
    rep.total_special_cycles += sm + ln;
  }

  rep.per_layer.push_back(mat84);
  rep.per_layer.push_back(mat88);
  rep.total_pe_cycles = mat84.pe_cycles + mat88.pe_cycles;
  rep.fpga_ms =
      static_cast<double>(rep.total_pe_cycles + rep.total_special_cycles) /
      (cfg.clock_mhz * 1e3);

  rep.logits = engine.head(x);
  rep.predicted = static_cast<int32_t>(
      argmax(rep.logits.data(), rep.logits.numel()));
  return rep;
}

}  // namespace fqbert::accel
