#include "accel/functional.h"

#include <cassert>

namespace fqbert::accel {

namespace {

/// Route one QuantLinear through the BIM (8x4 mode) and requantize.
int64_t quant_linear_on_bim(const core::QuantLinear& ql, const Bim& bim,
                            const std::vector<int8_t>& x,
                            std::vector<int8_t>& y, int64_t s_len) {
  std::vector<int32_t> acc;
  // The BIM datapath consumes the int8 codes; narrow them back from the
  // engine's widened store (exact, and off the serving hot path).
  const int64_t cycles =
      bim_matmul_wt(bim, BimMode::k8x4, x, ql.narrow_codes(), acc, s_len,
                    ql.in, ql.out);
  core::requantize_i8(acc, ql.bias_q, ql.rq, y, s_len, ql.out);
  return cycles;
}

}  // namespace

FunctionalRunStats run_layer_on_bim(const core::FqEncoderLayer& layer,
                                    const Bim& bim,
                                    const std::vector<int8_t>& x,
                                    std::vector<int8_t>& y,
                                    int64_t seq_len) {
  FunctionalRunStats stats;
  const int64_t hidden = layer.hidden;
  const int64_t dh = layer.head_dim;

  std::vector<int8_t> q, k, v;
  stats.bim_cycles_8x4 += quant_linear_on_bim(layer.wq, bim, x, q, seq_len);
  stats.bim_cycles_8x4 += quant_linear_on_bim(layer.wk, bim, x, k, seq_len);
  stats.bim_cycles_8x4 += quant_linear_on_bim(layer.wv, bim, x, v, seq_len);
  stats.mac_count += 3 * seq_len * hidden * hidden;

  std::vector<int8_t> ctx(static_cast<size_t>(seq_len * hidden));
  std::vector<int8_t> qh(static_cast<size_t>(seq_len * dh));
  std::vector<int8_t> kh(static_cast<size_t>(seq_len * dh));
  std::vector<int8_t> vh(static_cast<size_t>(seq_len * dh));

  for (int64_t h = 0; h < layer.num_heads; ++h) {
    for (int64_t r = 0; r < seq_len; ++r) {
      const int8_t* qrow = q.data() + r * hidden + h * dh;
      const int8_t* krow = k.data() + r * hidden + h * dh;
      const int8_t* vrow = v.data() + r * hidden + h * dh;
      std::copy(qrow, qrow + dh, qh.data() + r * dh);
      std::copy(krow, krow + dh, kh.data() + r * dh);
      std::copy(vrow, vrow + dh, vh.data() + r * dh);
    }

    // QKᵀ through the BIM in 8x8 mode (both operands 8-bit signed).
    std::vector<int32_t> scores;
    stats.bim_cycles_8x8 += bim_matmul_wt(bim, BimMode::k8x8, qh, kh, scores,
                                          seq_len, dh, seq_len);
    stats.mac_count += seq_len * seq_len * dh;

    std::vector<int32_t> probs;
    layer.apply_softmax(scores, probs, seq_len);

    // Attn·V in 8x8 mode with *unsigned* probabilities. The probability
    // codes (0..255) are reinterpreted as raw bytes; the BIM multiplier
    // sign flag handles them. V must be presented column-major (the
    // intermediate buffer holds it transposed for this stage).
    std::vector<int8_t> probs_u8(static_cast<size_t>(seq_len * seq_len));
    for (size_t i = 0; i < probs_u8.size(); ++i) {
      assert(probs[i] >= 0 && probs[i] <= 255);
      probs_u8[i] = static_cast<int8_t>(static_cast<uint8_t>(probs[i]));
    }
    std::vector<int8_t> vt(static_cast<size_t>(dh * seq_len));
    for (int64_t r = 0; r < seq_len; ++r)
      for (int64_t c = 0; c < dh; ++c)
        vt[static_cast<size_t>(c * seq_len + r)] =
            vh[static_cast<size_t>(r * dh + c)];

    std::vector<int32_t> ctx_acc;
    stats.bim_cycles_8x8 +=
        bim_matmul_wt(bim, BimMode::k8x8, probs_u8, vt, ctx_acc, seq_len,
                      seq_len, dh, /*a_signed=*/false);
    stats.mac_count += seq_len * dh * seq_len;

    for (int64_t r = 0; r < seq_len; ++r) {
      int8_t* crow = ctx.data() + r * hidden + h * dh;
      const int32_t* arow = ctx_acc.data() + r * dh;
      for (int64_t c = 0; c < dh; ++c)
        crow[c] = static_cast<int8_t>(
            quant::saturate_signed(layer.ctx_rq.apply(arow[c]), 8));
    }
  }

  std::vector<int8_t> attn_out;
  stats.bim_cycles_8x4 +=
      quant_linear_on_bim(layer.wo, bim, ctx, attn_out, seq_len);
  stats.mac_count += seq_len * hidden * hidden;

  std::vector<int32_t> res(static_cast<size_t>(seq_len * hidden));
  for (int64_t i = 0; i < seq_len * hidden; ++i)
    res[static_cast<size_t>(i)] =
        static_cast<int32_t>(attn_out[static_cast<size_t>(i)]) +
        layer.res1_rq.apply(x[static_cast<size_t>(i)]);

  std::vector<int8_t> ffn_x;
  layer.apply_layernorm(res, ffn_x, seq_len, /*first=*/true);

  std::vector<int8_t> pre, mid, fo;
  stats.bim_cycles_8x4 +=
      quant_linear_on_bim(layer.ffn1, bim, ffn_x, pre, seq_len);
  stats.mac_count += seq_len * hidden * layer.ffn_dim;
  mid.resize(pre.size());
  for (size_t i = 0; i < pre.size(); ++i) mid[i] = layer.gelu->apply(pre[i]);
  stats.bim_cycles_8x4 +=
      quant_linear_on_bim(layer.ffn2, bim, mid, fo, seq_len);
  stats.mac_count += seq_len * hidden * layer.ffn_dim;

  for (int64_t i = 0; i < seq_len * hidden; ++i)
    res[static_cast<size_t>(i)] =
        static_cast<int32_t>(fo[static_cast<size_t>(i)]) +
        layer.res2_rq.apply(ffn_x[static_cast<size_t>(i)]);
  layer.apply_layernorm(res, y, seq_len, /*first=*/false);
  return stats;
}

}  // namespace fqbert::accel
