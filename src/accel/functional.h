// Functional (bit-exact) accelerator simulation.
//
// Runs an FqEncoderLayer's arithmetic through the PE/BIM datapath
// instead of the plain integer kernels: every multiply goes through the
// Bit-split Inner-product Module with the mode the real stage uses
// (8x4 for weight matmuls, 8x8 for QKᵀ and Attn·V — the latter with the
// unsigned-activation sign flag for softmax probabilities). Tests assert
// the outputs equal FqEncoderLayer::forward bit-for-bit; the returned
// cycle counts cross-check PerfModel's stage arithmetic.
#pragma once

#include <cstdint>
#include <vector>

#include "accel/bim.h"
#include "accel/device.h"
#include "core/fq_bert.h"

namespace fqbert::accel {

struct FunctionalRunStats {
  int64_t bim_cycles_8x4 = 0;  // cycles if one PE did all the work
  int64_t bim_cycles_8x8 = 0;
  int64_t mac_count = 0;
};

/// Execute one encoder layer through the BIM datapath. x/y are int8 code
/// vectors [seq_len * hidden] as in FqEncoderLayer::forward.
FunctionalRunStats run_layer_on_bim(const core::FqEncoderLayer& layer,
                                    const Bim& bim,
                                    const std::vector<int8_t>& x,
                                    std::vector<int8_t>& y, int64_t seq_len);

}  // namespace fqbert::accel
