// Post-synthesis resource estimation (paper Table III).
//
// The model is structural: every resource total is a sum of
// per-multiplier, per-PE, per-BIM-column and fixed (softmax core, LN
// core, controller, AXI) contributions. The per-unit coefficients were
// calibrated against the paper's three Vivado HLS 2019.1 operating
// points — (N,M) = (8,16) and (16,8) on ZCU102 and (16,16) on ZCU111 —
// and the structural form then predicts any other configuration.
//
//   DSP  = mults + kDspPerBimCol*M + kDspFixed
//          (one DSP48E per 8x4 multiplier; the requant/shift-add pipeline
//           scales with BIM width; LN/softmax cores are fixed)
//   FF   = kFfPerPe*PEs + kFfPerMult*mults + kFfFixed
//   LUT  = kLutPerPe*PEs + kLutPerMult*mults + kLutFixed
//   BRAM = kBramFixed + kBramPerPe*PEs (psum double buffers), with the
//          weight buffer moved to URAM when the device has it (the
//          paper's footnote on ZCU111).
//
// BIM Type B spends extra LUT/FF on per-pair shift-adders (M/2 of them
// per BIM instead of one shared shifter) — the Fig. 4 trade-off.
#pragma once

#include "accel/device.h"

namespace fqbert::accel {

struct ResourceUsage {
  int64_t bram18k = 0;
  int64_t dsp48 = 0;
  int64_t ff = 0;
  int64_t lut = 0;
  int64_t uram = 0;

  double dsp_utilization(const FpgaDevice& d) const {
    return static_cast<double>(dsp48) / static_cast<double>(d.dsp48);
  }
  bool fits(const FpgaDevice& d) const {
    return bram18k <= d.bram18k && dsp48 <= d.dsp48 && ff <= d.ff &&
           lut <= d.lut;
  }
};

class ResourceModel {
 public:
  // Calibrated coefficients (see header comment).
  static constexpr double kDspPerBimCol = 10.0;
  static constexpr double kDspFixed = 55.0;
  static constexpr double kFfPerPe = 276.8;
  static constexpr double kFfPerMult = 32.85;
  static constexpr double kFfFixed = 47402.0;
  static constexpr double kLutPerPe = 323.3;
  static constexpr double kLutPerMult = 23.13;
  static constexpr double kLutFixed = 56590.0;
  static constexpr double kBramFixed = 799.0;
  static constexpr double kBramPerPe = 0.40625;
  // URAM offload: weight double-buffer (in BRAM18K equivalents / URAMs).
  static constexpr int64_t kUramOffloadBram = 198;
  static constexpr int64_t kUramBlocks = 25;
  // Type B surcharge: per-pair shift-adders instead of one per tree.
  static constexpr double kTypeBLutPerPair = 14.0;
  static constexpr double kTypeBFfPerPair = 9.0;

  static ResourceUsage estimate(const AcceleratorConfig& cfg,
                                const FpgaDevice& dev) {
    const double pes = static_cast<double>(cfg.total_pes());
    const double mults = static_cast<double>(cfg.total_mults());
    ResourceUsage r;
    r.dsp48 = static_cast<int64_t>(mults + kDspPerBimCol * cfg.bim_mults +
                                   kDspFixed);
    r.ff = static_cast<int64_t>(kFfPerPe * pes + kFfPerMult * mults +
                                kFfFixed);
    r.lut = static_cast<int64_t>(kLutPerPe * pes + kLutPerMult * mults +
                                 kLutFixed);
    if (cfg.bim_type_a == 0) {
      const double pairs = pes * (cfg.bim_mults / 2.0);
      r.lut += static_cast<int64_t>(kTypeBLutPerPair * pairs);
      r.ff += static_cast<int64_t>(kTypeBFfPerPair * pairs);
    }
    double bram = kBramFixed + kBramPerPe * pes;
    if (dev.has_uram) {
      bram -= static_cast<double>(kUramOffloadBram);
      r.uram = kUramBlocks;
    }
    r.bram18k = static_cast<int64_t>(bram);
    return r;
  }
};

}  // namespace fqbert::accel
