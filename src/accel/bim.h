// BIM — Bit-split Inner-product Module (paper Fig. 4, Sec. III-B).
//
// A BIM is the arithmetic heart of a PE: M = 2^m multipliers, each
// 8-bit x 4-bit, two adder trees and shift-add logic, run-time
// reconfigurable between
//   * 8x4 mode: M independent a(8b) x w(4b) products per cycle, and
//   * 8x8 mode: M/2 a(8b) x w(8b) products per cycle, each 8-bit weight
//     split into a signed high nibble and an unsigned low nibble
//     (bit-fusion style):  a*w = (a*w_hi << 4) + a*w_lo.
//
// The shift-add placement distinguishes the two variants:
//   * Type B shifts per multiplier pair, then sums M/2 pair results;
//   * Type A sums all low-nibble products in one tree and all high-nibble
//     products in the other, applying a single <<4 at the tree output —
//     cheaper in LUTs, but the operands must be rearranged so that lo/hi
//     nibbles land on the correct tree (the "rearrange the input data"
//     cost mentioned in the paper).
// Both types produce bit-identical sums; tests sweep operand space to
// prove it, and the resource model charges them differently.
//
// Every multiplier carries a sign flag so unsigned operands (softmax
// probabilities in Attn·V) are supported.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace fqbert::accel {

enum class BimType { kTypeA, kTypeB };
enum class BimMode { k8x4, k8x8 };

class Bim {
 public:
  /// m_mults must be a power of two >= 2.
  Bim(int m_mults, BimType type);

  int m() const { return m_; }
  BimType type() const { return type_; }

  /// Lanes consumed per cycle in a mode.
  int lanes(BimMode mode) const {
    return mode == BimMode::k8x4 ? m_ : m_ / 2;
  }

  /// One cycle of 8x4 dot product: a has up to M int8 values, w up to M
  /// int4 codes (stored in int8, range [-8,7] signed or [0,15] unsigned
  /// depending on flags). Shorter spans are zero-padded.
  int32_t dot_8x4(std::span<const int8_t> a, std::span<const int8_t> w,
                  bool a_signed = true, bool w_signed = true) const;

  /// One cycle of 8x8 dot product: up to M/2 activation/weight pairs.
  /// a_signed=false handles the unsigned softmax probabilities.
  int32_t dot_8x8(std::span<const int8_t> a, std::span<const int8_t> w,
                  bool a_signed = true, bool w_signed = true) const;

  /// Multi-cycle dot product of arbitrary length (the PE loop): returns
  /// the accumulated int32 and, via cycles_out, the cycle count consumed.
  int32_t dot(std::span<const int8_t> a, std::span<const int8_t> w,
              BimMode mode, int64_t* cycles_out = nullptr,
              bool a_signed = true) const;

 private:
  /// The physical 8x4 multiplier: 8-bit (signed/unsigned) activation
  /// times 4-bit (signed/unsigned) weight nibble.
  static int32_t mult_8x4(int8_t a, int8_t w_nibble, bool a_signed,
                          bool w_signed);

  int m_;
  BimType type_;
};

/// Matrix product routed through a BIM, used to prove the datapath is
/// bit-exact against the plain integer kernels: acc[r, c] =
/// sum_k a[r, k] * w[c, k]. Returns total BIM cycles.
int64_t bim_matmul_wt(const Bim& bim, BimMode mode,
                      const std::vector<int8_t>& a,
                      const std::vector<int8_t>& w,
                      std::vector<int32_t>& acc, int64_t rows, int64_t k,
                      int64_t cols, bool a_signed = true);

}  // namespace fqbert::accel
