#include "serve/engine_pool.h"

#include <algorithm>

#include "serve/flight_recorder.h"
#include "tensor/tensor_ops.h"

namespace fqbert::serve {

void EnginePool::start(std::shared_ptr<const core::FqBertModel> engine,
                       int num_workers) {
  engine_ = std::move(engine);
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w)
    workers_.emplace_back([this] { worker_loop(*engine_); });
}

void EnginePool::join() {
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
  workers_.clear();
}

void execute_batch(const core::FqBertModel& engine, ServeStats& stats,
                   std::vector<ServeRequest>& batch,
                   const std::string& model) {
  const TimePoint formed = Clock::now();
  std::vector<const nn::Example*> examples;
  examples.reserve(batch.size());
  for (const ServeRequest& req : batch) examples.push_back(&req.example);

  FlightRecorder& recorder = FlightRecorder::instance();
  const uint8_t batch_tier = batch.empty() ? 0 : batch.front().tier;
  recorder.record(FlightEventType::kWorkerStart, model, 0, batch_tier, 0,
                  static_cast<uint32_t>(batch.size()));

  std::vector<Tensor> logits;
  bool failed = false;
  const TimePoint start = Clock::now();
  try {
    logits = engine.forward_batch(examples);
  } catch (const std::exception&) {
    failed = true;
  }

  const TimePoint done = Clock::now();
  stats.record_batch(batch.size());
  const auto rel_us = [](TimePoint t, TimePoint base) {
    return std::chrono::duration_cast<Micros>(t - base).count();
  };
  recorder.record(FlightEventType::kWorkerEnd, model, 0, batch_tier, 0,
                  static_cast<uint32_t>(batch.size()),
                  static_cast<uint64_t>(std::max<int64_t>(
                      rel_us(done, start), 0)));
  for (size_t i = 0; i < batch.size(); ++i) {
    ServeRequest& req = batch[i];
    ServeResponse resp;
    resp.request_id = req.id;
    resp.tier = req.tier;
    resp.batch_size = static_cast<int32_t>(batch.size());
    resp.queue_us = rel_us(formed, req.enqueue_time);
    resp.latency_us = rel_us(done, req.enqueue_time);
    if (req.trace_id != 0) {
      resp.trace_id = req.trace_id;
      resp.admitted_at = req.enqueue_time;
      resp.trace = {
          {TraceStage::kAdmitted, 0},
          {TraceStage::kBatchFormed, rel_us(formed, req.enqueue_time)},
          {TraceStage::kWorkerStart, rel_us(start, req.enqueue_time)},
          {TraceStage::kWorkerEnd, rel_us(done, req.enqueue_time)},
      };
    }
    if (failed) {
      resp.status = RequestStatus::kEngineError;
      stats.record_failure();
    } else {
      resp.status = RequestStatus::kOk;
      const Tensor& l = logits[i];
      resp.logits.assign(l.data(), l.data() + l.numel());
      resp.predicted = static_cast<int32_t>(argmax(l.data(), l.numel()));
      stats.record_response(resp.latency_us, resp.queue_us);
      // Retain a slow exemplar with its full stage breakdown, built
      // here even for untraced requests (the timestamps exist either
      // way; only the candidacy check rides the hot path).
      if (recorder.slow_candidate(resp.latency_us)) {
        recorder.note_slow(
            model, resp.tier, req.trace_id, resp.latency_us,
            {{TraceStage::kAdmitted, 0},
             {TraceStage::kBatchFormed, rel_us(formed, req.enqueue_time)},
             {TraceStage::kWorkerStart, rel_us(start, req.enqueue_time)},
             {TraceStage::kWorkerEnd, rel_us(done, req.enqueue_time)}});
      }
    }
    req.promise.set_value(std::move(resp));
  }
}

void EnginePool::worker_loop(const core::FqBertModel& engine) {
  std::vector<ServeRequest> batch;
  while (batcher_.next_batch(batch)) execute_batch(engine, stats_, batch);
}

}  // namespace fqbert::serve
