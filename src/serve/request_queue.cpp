#include "serve/request_queue.h"

namespace fqbert::serve {

const char* request_status_name(RequestStatus s) {
  switch (s) {
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kRejectedQueueFull: return "rejected-queue-full";
    case RequestStatus::kRejectedDeadline: return "rejected-deadline";
    case RequestStatus::kRejectedInvalid: return "rejected-invalid";
    case RequestStatus::kTimedOut: return "timed-out";
    case RequestStatus::kEngineError: return "engine-error";
    case RequestStatus::kShutdown: return "shutdown";
    case RequestStatus::kRejectedUnknownModel: return "rejected-unknown-model";
    case RequestStatus::kRejectedUnknownTier: return "rejected-unknown-tier";
  }
  return "unknown";
}

const char* admit_result_name(AdmitResult r) {
  switch (r) {
    case AdmitResult::kOk: return "ok";
    case AdmitResult::kQueueFull: return "queue-full";
    case AdmitResult::kDeadlineExpired: return "deadline-expired";
    case AdmitResult::kInvalidExample: return "invalid-example";
    case AdmitResult::kClosed: return "closed";
    case AdmitResult::kUnknownModel: return "unknown-model";
    case AdmitResult::kUnknownTier: return "unknown-tier";
  }
  return "unknown";
}

AdmitResult RequestQueue::submit(ServeRequest&& req) {
  MutexLock lock(mu_);
  if (closed_) return AdmitResult::kClosed;
  if (req.expired(Clock::now())) return AdmitResult::kDeadlineExpired;
  if (pending_.size() >= cfg_.capacity) return AdmitResult::kQueueFull;
  pending_.push_back(std::move(req));
  cv_.notify_one();
  return AdmitResult::kOk;
}

void RequestQueue::drain_into(std::vector<ServeRequest>& out) {
  MutexLock lock(mu_);
  while (!pending_.empty()) {
    out.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
}

bool RequestQueue::wait_until(TimePoint until) {
  MutexLock lock(mu_);
  // Explicit loop instead of the predicate overload: the predicate
  // would be a lambda reading guarded members, opaque to the
  // thread-safety analysis.
  while (pending_.empty() && !closed_) {
    if (cv_.wait_until(lock.native(), until) == std::cv_status::timeout)
      break;
  }
  return !pending_.empty();
}

void RequestQueue::close() {
  MutexLock lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  MutexLock lock(mu_);
  return closed_;
}

size_t RequestQueue::size() const {
  MutexLock lock(mu_);
  return pending_.size();
}

}  // namespace fqbert::serve
