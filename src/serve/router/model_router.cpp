#include "serve/router/model_router.h"

#include <algorithm>
#include <chrono>

namespace fqbert::serve {

namespace {

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

/// Cap on any worker park so a lost wakeup can only add bounded
/// latency, mirroring DynamicBatcher::next_batch's own cap.
constexpr auto kWorkerParkCap = std::chrono::milliseconds(50);

void set_error(std::string* error, const std::string& message) {
  if (error) *error = message;
}

}  // namespace

ModelRouter::ModelRouter(EngineRegistry& registry, const RouterConfig& cfg)
    : registry_(registry), cfg_(cfg) {
  if (cfg_.num_workers < 1) cfg_.num_workers = 1;
}

ModelRouter::~ModelRouter() { shutdown(/*drain=*/true); }

bool ModelRouter::start() {
  if (started_.exchange(true)) return true;
  workers_.reserve(static_cast<size_t>(cfg_.num_workers));
  for (int w = 0; w < cfg_.num_workers; ++w)
    workers_.emplace_back(
        [this, w] { worker_loop(static_cast<size_t>(w)); });
  start_ns_ = now_ns();
  return true;
}

void ModelRouter::shutdown(bool drain) {
  if (!started_ || stopped_.exchange(true)) return;
  // Refuse new lanes and snapshot the existing ones in ONE critical
  // section: a load_model racing this shutdown either lands before the
  // snapshot (its queue gets closed below) or fails — never a lane the
  // workers would poll forever waiting for it to drain.
  std::vector<std::shared_ptr<Lane>> lanes;
  {
    MutexLock lock(lanes_mu_);
    accepting_lanes_ = false;
    lanes.reserve(lanes_.size());
    for (const auto& [name, lane] : lanes_) lanes.push_back(lane);
  }
  // Same ordering discipline as InferenceServer::shutdown: in abort
  // mode, stop batch handout BEFORE the close() wakeups, and fail
  // leftovers only after the workers are gone.
  if (!drain)
    for (const auto& lane : lanes) lane->batcher.abort();
  for (const auto& lane : lanes) lane->queue.close();
  stopping_ = true;
  wake_workers();
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
  if (!drain)
    for (const auto& lane : lanes)
      lane->batcher.fail_pending(RequestStatus::kShutdown);
  stop_ns_ = now_ns();
}

bool ModelRouter::insert_lane(
    const std::string& name,
    std::shared_ptr<const core::FqBertModel> engine, std::string* error) {
  auto lane = std::make_shared<Lane>(name, std::move(engine), cfg_);
  {
    MutexLock lock(lanes_mu_);
    if (!accepting_lanes_) {
      set_error(error, "router is shutting down");
      return false;
    }
    if (lanes_.count(name) > 0) {
      set_error(error, "model '" + name + "' is already being served");
      return false;
    }
    if (default_model_.empty()) default_model_ = name;
    lanes_.emplace(name, std::move(lane));
  }
  wake_workers();  // workers must start polling the new lane
  return true;
}

bool ModelRouter::add_model(const std::string& name, std::string* error) {
  std::shared_ptr<const core::FqBertModel> engine = registry_.get(name);
  if (!engine) {
    set_error(error, "model '" + name + "' is not in the engine registry");
    return false;
  }
  return insert_lane(name, std::move(engine), error);
}

bool ModelRouter::load_model(const std::string& name,
                             const std::string& path, std::string* error) {
  MutexLock admin(admin_mu_);
  if (has_model(name)) {
    set_error(error, "model '" + name + "' is already being served");
    return false;
  }
  // The expensive file load happens here, on the control-plane thread;
  // live lanes never notice.
  if (!registry_.register_file(name, path)) {
    set_error(error,
              "cannot load engine file '" + path + "' for model '" + name +
                  "'");
    return false;
  }
  if (!add_model(name, error)) {
    // Lane refused (e.g. shutdown raced in): don't leave the name
    // dangling in the registry — unless some lane does serve it.
    if (!has_model(name)) registry_.unregister(name);
    return false;
  }
  return true;
}

bool ModelRouter::lane_drained(const Lane& lane) {
  // Order-independent given inflight is raised before poll_batch: a
  // request is always visible in the queue, the buckets, or under a
  // nonzero inflight (see Lane::inflight).
  return lane.queue.size() == 0 && lane.batcher.pending() == 0 &&
         lane.inflight.load() == 0;
}

bool ModelRouter::unload_model(const std::string& name, std::string* error) {
  MutexLock admin(admin_mu_);
  std::shared_ptr<Lane> lane = find_lane(name);
  if (!lane) {
    set_error(error, "model '" + name + "' is not being served");
    return false;
  }

  // Stop admissions; in-flight and queued work still completes (a
  // closed queue force-flushes partial buckets on the next poll).
  lane->closing = true;
  lane->queue.close();
  wake_workers();

  if (running()) {
    // Drain: other lanes keep serving — only this caller blocks. The
    // timed re-check makes a lost notify cost latency, never a hang.
    MutexLock lock(lanes_mu_);
    while (!lane_drained(*lane))
      drain_cv_.wait_for(lock.native(), std::chrono::milliseconds(20));
  } else {
    // No workers will ever run this lane's work (never started, or
    // already shut down): fail whatever is parked instead of hanging.
    lane->batcher.abort();
    lane->batcher.fail_pending(RequestStatus::kShutdown);
  }

  {
    MutexLock lock(lanes_mu_);
    lanes_.erase(name);
  }
  registry_.unregister(name);
  return true;
}

std::future<ServeResponse> ModelRouter::submit(
    const std::string& model, nn::Example example,
    std::optional<Micros> deadline_budget, AdmitResult* admit,
    uint64_t trace_id) {
  ServeRequest req;
  req.id = next_id_.fetch_add(1);
  req.trace_id = trace_id;
  req.example = std::move(example);
  req.enqueue_time = Clock::now();
  if (deadline_budget) req.deadline = req.enqueue_time + *deadline_budget;
  std::future<ServeResponse> fut = req.promise.get_future();

  std::shared_ptr<Lane> lane;
  if (running()) lane = find_lane(model);

  AdmitResult result = AdmitResult::kClosed;
  if (!running()) {
    result = AdmitResult::kClosed;
  } else if (!lane) {
    result = AdmitResult::kUnknownModel;
  } else if (lane->closing) {
    result = AdmitResult::kClosed;
  } else if (!example_valid_for(req.example, lane->config)) {
    result = AdmitResult::kInvalidExample;
  } else {
    result = lane->queue.submit(std::move(req));
  }
  if (admit) *admit = result;

  ServeResponse resp;
  resp.request_id = req.id;
  resp.trace_id = trace_id;
  switch (result) {
    case AdmitResult::kOk:
      lane->stats.record_admitted();
      wake_workers();
      return fut;
    case AdmitResult::kQueueFull:
      lane->stats.record_rejected_full();
      resp.status = RequestStatus::kRejectedQueueFull;
      break;
    case AdmitResult::kDeadlineExpired:
      lane->stats.record_rejected_deadline();
      resp.status = RequestStatus::kRejectedDeadline;
      break;
    case AdmitResult::kInvalidExample:
      lane->stats.record_rejected_invalid();
      resp.status = RequestStatus::kRejectedInvalid;
      break;
    case AdmitResult::kClosed:
      if (lane) lane->stats.record_rejected_closed();
      resp.status = RequestStatus::kShutdown;
      break;
    case AdmitResult::kUnknownModel:
      unknown_rejected_.fetch_add(1);
      resp.status = RequestStatus::kRejectedUnknownModel;
      break;
  }
  req.promise.set_value(std::move(resp));
  return fut;
}

void ModelRouter::worker_loop(size_t worker_index) {
  std::vector<ServeRequest> batch;
  size_t rr = worker_index;  // stagger the lane scan start per worker
  for (;;) {
    const std::vector<std::shared_ptr<Lane>> lanes = snapshot_lanes();

    // Epoch read BEFORE polling: a submit that lands mid-scan bumps the
    // epoch, so the wait below falls through and we re-scan.
    uint64_t epoch;
    {
      MutexLock lock(wake_mu_);
      epoch = work_epoch_;
    }

    bool executed = false;
    bool all_drained = true;
    TimePoint next_flush = TimePoint::max();
    for (size_t k = 0; k < lanes.size() && !executed; ++k) {
      Lane& lane = *lanes[(rr + k) % lanes.size()];
      lane.inflight.fetch_add(1);
      TimePoint lane_flush = TimePoint::max();
      const DynamicBatcher::Poll poll =
          lane.batcher.poll_batch(batch, &lane_flush);
      if (poll == DynamicBatcher::Poll::kBatch) {
        execute_batch(*lane.engine, lane.stats, batch);
        executed = true;
      }
      lane.inflight.fetch_sub(1);
      if (lane.closing) {
        // unload_model may be parked on this lane's drain.
        MutexLock lock(lanes_mu_);
        drain_cv_.notify_all();
      }
      if (poll != DynamicBatcher::Poll::kDrained) all_drained = false;
      if (poll == DynamicBatcher::Poll::kIdle)
        next_flush = std::min(next_flush, lane_flush);
    }
    ++rr;
    if (executed) continue;  // scan again from the next lane
    if (stopping_ && all_drained) return;

    const TimePoint cap = Clock::now() + kWorkerParkCap;
    MutexLock lock(wake_mu_);
    // Explicit loop: a lambda predicate reading work_epoch_ would be
    // opaque to the thread-safety analysis.
    while (work_epoch_ == epoch && !stopping_) {
      if (wake_cv_.wait_until(lock.native(), std::min(next_flush, cap)) ==
          std::cv_status::timeout)
        break;
    }
  }
}

void ModelRouter::wake_workers() {
  {
    MutexLock lock(wake_mu_);
    ++work_epoch_;
  }
  wake_cv_.notify_all();
}

std::vector<std::shared_ptr<ModelRouter::Lane>> ModelRouter::snapshot_lanes()
    const {
  MutexLock lock(lanes_mu_);
  std::vector<std::shared_ptr<Lane>> out;
  out.reserve(lanes_.size());
  for (const auto& [name, lane] : lanes_) out.push_back(lane);
  return out;
}

std::shared_ptr<ModelRouter::Lane> ModelRouter::find_lane(
    const std::string& name) const {
  MutexLock lock(lanes_mu_);
  const std::string& resolved = name.empty() ? default_model_ : name;
  auto it = lanes_.find(resolved);
  return it == lanes_.end() ? nullptr : it->second;
}

bool ModelRouter::has_model(const std::string& name) const {
  return find_lane(name) != nullptr;
}

std::vector<std::string> ModelRouter::model_names() const {
  MutexLock lock(lanes_mu_);
  std::vector<std::string> out;
  out.reserve(lanes_.size());
  for (const auto& [name, lane] : lanes_) out.push_back(name);
  return out;
}

std::optional<nn::BertConfig> ModelRouter::model_config(
    const std::string& name) const {
  const std::shared_ptr<Lane> lane = find_lane(name);
  if (!lane) return std::nullopt;
  return lane->config;
}

std::optional<ServeStats::Report> ModelRouter::stats_report(
    const std::string& name) const {
  const std::shared_ptr<Lane> lane = find_lane(name);
  if (!lane) return std::nullopt;
  return lane->stats.report();
}

std::vector<std::pair<std::string, ServeStats::Report>>
ModelRouter::all_stats() const {
  std::vector<std::shared_ptr<Lane>> lanes = snapshot_lanes();
  std::vector<std::pair<std::string, ServeStats::Report>> out;
  out.reserve(lanes.size());
  for (const auto& lane : lanes)
    out.emplace_back(lane->name, lane->stats.report());
  return out;
}

std::vector<std::pair<std::string, size_t>> ModelRouter::queue_depths()
    const {
  std::vector<std::shared_ptr<Lane>> lanes = snapshot_lanes();
  std::vector<std::pair<std::string, size_t>> out;
  out.reserve(lanes.size());
  for (const auto& lane : lanes)
    out.emplace_back(lane->name,
                     lane->queue.size() + lane->batcher.pending());
  return out;
}

std::string ModelRouter::default_model() const {
  MutexLock lock(lanes_mu_);
  return default_model_;
}

double ModelRouter::uptime_s() const {
  const int64_t start = start_ns_;
  if (start == 0) return 0.0;
  const int64_t stop = stop_ns_;
  const int64_t end = stop != 0 ? stop : now_ns();
  return static_cast<double>(end - start) / 1e9;
}

}  // namespace fqbert::serve
