#include "serve/router/model_router.h"

#include <algorithm>
#include <chrono>

#include "serve/flight_recorder.h"

namespace fqbert::serve {

namespace {

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

/// Cap on any worker park so a lost wakeup can only add bounded
/// latency, mirroring DynamicBatcher::next_batch's own cap.
constexpr auto kWorkerParkCap = std::chrono::milliseconds(50);

void set_error(std::string* error, const std::string& message) {
  if (error) *error = message;
}

std::string lane_label(const std::string& name, int bits) {
  return "model '" + name + "' tier int" + std::to_string(bits);
}

}  // namespace

ModelRouter::ModelRouter(EngineRegistry& registry, const RouterConfig& cfg)
    : registry_(registry), cfg_(cfg) {
  if (cfg_.num_workers < 1) cfg_.num_workers = 1;
}

ModelRouter::~ModelRouter() { shutdown(/*drain=*/true); }

bool ModelRouter::start() {
  if (started_.exchange(true)) return true;
  workers_.reserve(static_cast<size_t>(cfg_.num_workers));
  for (int w = 0; w < cfg_.num_workers; ++w)
    workers_.emplace_back(
        [this, w] { worker_loop(static_cast<size_t>(w)); });
  start_ns_ = now_ns();
  return true;
}

void ModelRouter::shutdown(bool drain) {
  if (!started_ || stopped_.exchange(true)) return;
  // Refuse new lanes and snapshot the existing ones in ONE critical
  // section: a load_model racing this shutdown either lands before the
  // snapshot (its queue gets closed below) or fails — never a lane the
  // workers would poll forever waiting for it to drain.
  std::vector<std::shared_ptr<Lane>> lanes;
  {
    MutexLock lock(lanes_mu_);
    accepting_lanes_ = false;
    lanes.reserve(lanes_.size());
    for (const auto& [key, lane] : lanes_) lanes.push_back(lane);
  }
  // Same ordering discipline as InferenceServer::shutdown: in abort
  // mode, stop batch handout BEFORE the close() wakeups, and fail
  // leftovers only after the workers are gone.
  if (!drain)
    for (const auto& lane : lanes) lane->batcher.abort();
  for (const auto& lane : lanes) lane->queue.close();
  stopping_ = true;
  wake_workers();
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
  if (!drain)
    for (const auto& lane : lanes)
      lane->batcher.fail_pending(RequestStatus::kShutdown);
  stop_ns_ = now_ns();
}

bool ModelRouter::insert_lane(
    const std::string& name, int bits,
    std::shared_ptr<const core::FqBertModel> engine, std::string* error) {
  auto lane = std::make_shared<Lane>(name, bits, std::move(engine), cfg_);
  // Stamp the lane identity on its batcher BEFORE publication so every
  // kBatchFormed / kRequestTimedOut journal entry names its lane.
  lane->batcher.set_event_tag(name, static_cast<uint8_t>(bits));
  {
    MutexLock lock(lanes_mu_);
    if (!accepting_lanes_) {
      set_error(error, "router is shutting down");
      return false;
    }
    const LaneKey key{name, bits};
    if (lanes_.count(key) > 0) {
      set_error(error, lane_label(name, bits) + " is already being served");
      return false;
    }
    if (default_model_.empty()) default_model_ = name;
    default_tier_.emplace(name, bits);  // no-op when the model has lanes
    lanes_.emplace(key, std::move(lane));
  }
  FlightRecorder::instance().record(FlightEventType::kModelLoaded, name, 0,
                                    static_cast<uint8_t>(bits));
  wake_workers();  // workers must start polling the new lane
  return true;
}

bool ModelRouter::add_model(const std::string& name, std::string* error) {
  const std::vector<int> tiers = registry_.tiers(name);
  if (tiers.empty()) {
    set_error(error, "model '" + name + "' is not in the engine registry");
    return false;
  }
  // Open the default tier's lane first so it becomes the model's
  // tier-0 target, then every sibling tier.
  std::vector<int> ordered;
  ordered.push_back(registry_.default_tier(name));
  for (int bits : tiers)
    if (bits != ordered.front()) ordered.push_back(bits);
  for (int bits : ordered) {
    std::shared_ptr<const core::FqBertModel> engine =
        registry_.get(name, bits);
    if (!engine) {
      set_error(error, lane_label(name, bits) + " vanished from the registry");
      return false;
    }
    if (!insert_lane(name, bits, std::move(engine), error)) return false;
  }
  return true;
}

bool ModelRouter::add_tier(const std::string& name, int bits,
                           std::string* error) {
  std::shared_ptr<const core::FqBertModel> engine = registry_.get(name, bits);
  if (!engine) {
    set_error(error, lane_label(name, bits) + " is not in the engine registry");
    return false;
  }
  const int resolved = bits == 0 ? registry_.default_tier(name) : bits;
  return insert_lane(name, resolved, std::move(engine), error);
}

bool ModelRouter::load_model(const std::string& name, const std::string& path,
                             std::string* error, int bits) {
  MutexLock admin(admin_mu_);
  if (path.empty()) {
    // Derive-only load: mint `bits` from the model's registered
    // default tier.
    if (bits == 0) {
      set_error(error, "deriving a tier for '" + name +
                           "' requires an explicit bit-width");
      return false;
    }
    if (has_tier(name, bits)) {
      set_error(error, lane_label(name, bits) + " is already being served");
      return false;
    }
    if (!registry_.register_derived(name, bits)) {
      set_error(error, "cannot derive " + lane_label(name, bits) +
                           " (model unknown or bits out of [2, 8])");
      return false;
    }
    if (!add_tier(name, bits, error)) {
      if (!has_tier(name, bits)) registry_.unregister_tier(name, bits);
      return false;
    }
    return true;
  }

  if (bits != 0 && has_tier(name, bits)) {
    set_error(error, lane_label(name, bits) + " is already being served");
    return false;
  }
  // The expensive file load happens here, on the control-plane thread;
  // live lanes never notice. FQBERT02 files mmap in O(page faults).
  // Re-registering a (name, tier) that is already bound REPLACES the
  // registry binding; a lane serving the old engine keeps it alive
  // through its own shared_ptr.
  if (!registry_.register_file(name, path)) {
    set_error(error, "cannot load engine file '" + path + "' for model '" +
                         name + "'");
    return false;
  }
  const int native = registry_.get(name)
                         ? registry_.get(name)->quant_config().weight_bits
                         : 0;
  int target = bits == 0 ? native : bits;
  if (bits != 0 && bits != native && !registry_.contains(name, bits)) {
    if (!registry_.register_derived(name, bits)) {
      set_error(error, "cannot derive " + lane_label(name, bits) +
                           " from '" + path + "'");
      return false;
    }
  }
  if (has_tier(name, target)) {
    set_error(error, lane_label(name, target) + " is already being served");
    return false;
  }
  if (!add_tier(name, target, error)) {
    // Lane refused (e.g. shutdown raced in): don't leave the tier
    // dangling in the registry — unless some lane does serve it.
    if (!has_tier(name, target)) registry_.unregister_tier(name, target);
    return false;
  }
  return true;
}

bool ModelRouter::lane_drained(const Lane& lane) {
  // Order-independent given inflight is raised before poll_batch: a
  // request is always visible in the queue, the buckets, or under a
  // nonzero inflight (see Lane::inflight).
  return lane.queue.size() == 0 && lane.batcher.pending() == 0 &&
         lane.inflight.load() == 0;
}

void ModelRouter::retire_lane(const std::shared_ptr<Lane>& lane) {
  // Stop admissions; in-flight and queued work still completes (a
  // closed queue force-flushes partial buckets on the next poll).
  lane->closing = true;
  lane->queue.close();
  wake_workers();
  const uint64_t drain_start_ns = flight_now_ns();

  if (running()) {
    // Drain: other lanes keep serving — only this caller blocks. The
    // timed re-check makes a lost notify cost latency, never a hang.
    MutexLock lock(lanes_mu_);
    while (!lane_drained(*lane))
      drain_cv_.wait_for(lock.native(), std::chrono::milliseconds(20));
  } else {
    // No workers will ever run this lane's work (never started, or
    // already shut down): fail whatever is parked instead of hanging.
    lane->batcher.abort();
    lane->batcher.fail_pending(RequestStatus::kShutdown);
  }

  {
    MutexLock lock(lanes_mu_);
    lanes_.erase(LaneKey{lane->name, lane->tier});
    // Re-point the model's default tier at the lowest survivor, or
    // forget the model entirely when its last lane is gone.
    auto dt = default_tier_.find(lane->name);
    if (dt != default_tier_.end()) {
      int lowest = 0;
      for (const auto& [key, other] : lanes_) {
        if (key.first != lane->name) continue;
        if (lowest == 0 || key.second < lowest) lowest = key.second;
      }
      if (lowest == 0) {
        default_tier_.erase(dt);
      } else if (dt->second == lane->tier) {
        dt->second = lowest;
      }
    }
  }
  FlightRecorder& recorder = FlightRecorder::instance();
  recorder.record(FlightEventType::kLaneDrained, lane->name, 0,
                  static_cast<uint8_t>(lane->tier), 0, 0,
                  (flight_now_ns() - drain_start_ns) / 1000);
  recorder.record(FlightEventType::kModelUnloaded, lane->name, 0,
                  static_cast<uint8_t>(lane->tier));
}

bool ModelRouter::unload_model(const std::string& name, std::string* error,
                               int bits) {
  MutexLock admin(admin_mu_);
  std::vector<std::shared_ptr<Lane>> doomed;
  {
    MutexLock lock(lanes_mu_);
    const std::string& resolved = name.empty() ? default_model_ : name;
    for (const auto& [key, lane] : lanes_) {
      if (key.first != resolved) continue;
      if (bits == 0 || key.second == bits) doomed.push_back(lane);
    }
  }
  if (doomed.empty()) {
    set_error(error, bits == 0
                         ? "model '" + name + "' is not being served"
                         : lane_label(name, bits) + " is not being served");
    return false;
  }
  for (const auto& lane : doomed) {
    retire_lane(lane);
    if (bits != 0) {
      registry_.unregister_tier(lane->name, lane->tier);
    }
  }
  if (bits == 0) registry_.unregister(doomed.front()->name);
  return true;
}

std::future<ServeResponse> ModelRouter::submit(
    const std::string& model, nn::Example example,
    std::optional<Micros> deadline_budget, AdmitResult* admit,
    uint64_t trace_id, int tier) {
  ServeRequest req;
  req.id = next_id_.fetch_add(1);
  req.trace_id = trace_id;
  req.example = std::move(example);
  req.enqueue_time = Clock::now();
  if (deadline_budget) req.deadline = req.enqueue_time + *deadline_budget;
  std::future<ServeResponse> fut = req.promise.get_future();

  std::shared_ptr<Lane> lane;
  bool model_known = false;
  if (running()) {
    lane = find_lane(model, tier, &model_known);
    if (!lane && model_known &&
        cfg_.tier_fallback == TierFallback::kFallbackToDefault)
      lane = find_lane(model, 0);
  }

  AdmitResult result = AdmitResult::kClosed;
  if (!running()) {
    result = AdmitResult::kClosed;
  } else if (!lane) {
    result = model_known ? AdmitResult::kUnknownTier
                         : AdmitResult::kUnknownModel;
  } else if (lane->closing) {
    result = AdmitResult::kClosed;
  } else if (!example_valid_for(req.example, lane->config)) {
    result = AdmitResult::kInvalidExample;
  } else {
    req.tier = static_cast<uint8_t>(lane->tier);
    result = lane->queue.submit(std::move(req));
  }
  if (admit) *admit = result;

  ServeResponse resp;
  resp.request_id = req.id;
  resp.trace_id = trace_id;
  resp.tier = lane ? static_cast<uint8_t>(lane->tier) : 0;
  FlightRecorder& recorder = FlightRecorder::instance();
  switch (result) {
    case AdmitResult::kOk: {
      lane->stats.record_admitted();
      // Journal the admission with the observed backlog, and ratchet
      // the lane's lifetime high-watermark (CAS max) — a new maximum
      // gets its own event so saturation onset is timestamped.
      const size_t depth = lane->queue.size();
      recorder.record(FlightEventType::kRequestAdmitted, lane->name,
                      trace_id, req.tier, 0,
                      static_cast<uint32_t>(depth));
      size_t hwm = lane->depth_high_watermark.load(std::memory_order_relaxed);
      while (depth > hwm) {
        if (lane->depth_high_watermark.compare_exchange_weak(
                hwm, depth, std::memory_order_relaxed)) {
          recorder.record(FlightEventType::kQueueHighWatermark, lane->name,
                          trace_id, req.tier, 0, 0, depth);
          break;
        }
      }
      wake_workers();
      return fut;
    }
    case AdmitResult::kQueueFull:
      lane->stats.record_rejected_full();
      resp.status = RequestStatus::kRejectedQueueFull;
      break;
    case AdmitResult::kDeadlineExpired:
      lane->stats.record_rejected_deadline();
      resp.status = RequestStatus::kRejectedDeadline;
      break;
    case AdmitResult::kInvalidExample:
      lane->stats.record_rejected_invalid();
      resp.status = RequestStatus::kRejectedInvalid;
      break;
    case AdmitResult::kClosed:
      if (lane) lane->stats.record_rejected_closed();
      resp.status = RequestStatus::kShutdown;
      break;
    case AdmitResult::kUnknownModel:
      unknown_rejected_.fetch_add(1);
      resp.status = RequestStatus::kRejectedUnknownModel;
      break;
    case AdmitResult::kUnknownTier:
      unknown_tier_rejected_.fetch_add(1);
      resp.status = RequestStatus::kRejectedUnknownTier;
      break;
  }
  recorder.record(FlightEventType::kRequestRejected,
                  lane ? lane->name : model, trace_id, resp.tier,
                  static_cast<uint16_t>(resp.status));
  req.promise.set_value(std::move(resp));
  return fut;
}

void ModelRouter::worker_loop(size_t worker_index) {
  std::vector<ServeRequest> batch;
  size_t rr = worker_index;  // stagger the lane scan start per worker
  for (;;) {
    const std::vector<std::shared_ptr<Lane>> lanes = snapshot_lanes();

    // Epoch read BEFORE polling: a submit that lands mid-scan bumps the
    // epoch, so the wait below falls through and we re-scan.
    uint64_t epoch;
    {
      MutexLock lock(wake_mu_);
      epoch = work_epoch_;
    }

    bool executed = false;
    bool all_drained = true;
    TimePoint next_flush = TimePoint::max();
    for (size_t k = 0; k < lanes.size() && !executed; ++k) {
      Lane& lane = *lanes[(rr + k) % lanes.size()];
      lane.inflight.fetch_add(1);
      TimePoint lane_flush = TimePoint::max();
      const DynamicBatcher::Poll poll =
          lane.batcher.poll_batch(batch, &lane_flush);
      if (poll == DynamicBatcher::Poll::kBatch) {
        execute_batch(*lane.engine, lane.stats, batch, lane.name);
        executed = true;
      }
      lane.inflight.fetch_sub(1);
      if (lane.closing) {
        // unload_model may be parked on this lane's drain.
        MutexLock lock(lanes_mu_);
        drain_cv_.notify_all();
      }
      if (poll != DynamicBatcher::Poll::kDrained) all_drained = false;
      if (poll == DynamicBatcher::Poll::kIdle)
        next_flush = std::min(next_flush, lane_flush);
    }
    ++rr;
    if (executed) continue;  // scan again from the next lane
    if (stopping_ && all_drained) return;

    const TimePoint cap = Clock::now() + kWorkerParkCap;
    MutexLock lock(wake_mu_);
    // Explicit loop: a lambda predicate reading work_epoch_ would be
    // opaque to the thread-safety analysis.
    while (work_epoch_ == epoch && !stopping_) {
      if (wake_cv_.wait_until(lock.native(), std::min(next_flush, cap)) ==
          std::cv_status::timeout)
        break;
    }
  }
}

void ModelRouter::wake_workers() {
  {
    MutexLock lock(wake_mu_);
    ++work_epoch_;
  }
  wake_cv_.notify_all();
}

std::vector<std::shared_ptr<ModelRouter::Lane>> ModelRouter::snapshot_lanes()
    const {
  MutexLock lock(lanes_mu_);
  std::vector<std::shared_ptr<Lane>> out;
  out.reserve(lanes_.size());
  for (const auto& [key, lane] : lanes_) out.push_back(lane);
  return out;
}

std::shared_ptr<ModelRouter::Lane> ModelRouter::find_lane(
    const std::string& name, int bits, bool* model_known) const {
  MutexLock lock(lanes_mu_);
  const std::string& resolved = name.empty() ? default_model_ : name;
  auto dt = default_tier_.find(resolved);
  if (model_known) *model_known = dt != default_tier_.end();
  if (dt == default_tier_.end()) return nullptr;
  const int tier = bits == 0 ? dt->second : bits;
  auto it = lanes_.find(LaneKey{resolved, tier});
  return it == lanes_.end() ? nullptr : it->second;
}

bool ModelRouter::has_model(const std::string& name) const {
  bool model_known = false;
  find_lane(name, 0, &model_known);
  return model_known;
}

bool ModelRouter::has_tier(const std::string& name, int bits) const {
  return find_lane(name, bits) != nullptr;
}

std::vector<std::string> ModelRouter::model_names() const {
  MutexLock lock(lanes_mu_);
  std::vector<std::string> out;
  for (const auto& [key, lane] : lanes_)
    if (out.empty() || out.back() != key.first) out.push_back(key.first);
  return out;
}

std::vector<int> ModelRouter::served_tiers(const std::string& name) const {
  MutexLock lock(lanes_mu_);
  const std::string& resolved = name.empty() ? default_model_ : name;
  std::vector<int> out;
  for (const auto& [key, lane] : lanes_)
    if (key.first == resolved) out.push_back(key.second);
  return out;
}

std::optional<nn::BertConfig> ModelRouter::model_config(
    const std::string& name, int bits) const {
  const std::shared_ptr<Lane> lane = find_lane(name, bits);
  if (!lane) return std::nullopt;
  return lane->config;
}

std::optional<ServeStats::Report> ModelRouter::stats_report(
    const std::string& name, int bits) const {
  const std::shared_ptr<Lane> lane = find_lane(name, bits);
  if (!lane) return std::nullopt;
  return lane->stats.report();
}

std::vector<ModelRouter::LaneStats> ModelRouter::all_stats() const {
  std::vector<std::shared_ptr<Lane>> lanes = snapshot_lanes();
  std::vector<LaneStats> out;
  out.reserve(lanes.size());
  for (const auto& lane : lanes)
    out.push_back(LaneStats{lane->name, lane->tier, lane->stats.report()});
  return out;
}

std::vector<ModelRouter::LaneDepth> ModelRouter::queue_depths() const {
  std::vector<std::shared_ptr<Lane>> lanes = snapshot_lanes();
  std::vector<LaneDepth> out;
  out.reserve(lanes.size());
  for (const auto& lane : lanes)
    out.push_back(LaneDepth{
        lane->name, lane->tier,
        lane->queue.size() + lane->batcher.pending(),
        lane->inflight.load(),
        lane->depth_high_watermark.load(std::memory_order_relaxed)});
  return out;
}

std::string ModelRouter::default_model() const {
  MutexLock lock(lanes_mu_);
  return default_model_;
}

int ModelRouter::default_tier(const std::string& name) const {
  MutexLock lock(lanes_mu_);
  const std::string& resolved = name.empty() ? default_model_ : name;
  auto it = default_tier_.find(resolved);
  return it == default_tier_.end() ? 0 : it->second;
}

double ModelRouter::uptime_s() const {
  const int64_t start = start_ns_;
  if (start == 0) return 0.0;
  const int64_t stop = stop_ns_;
  const int64_t end = stop != 0 ? stop : now_ns();
  return static_cast<double>(end - start) / 1e9;
}

}  // namespace fqbert::serve
