// ModelRouter: multi-tenant serving facade. Fronts N named engines in
// ONE process — and each name is served at one or more PRECISION
// TIERS. A serving lane is keyed by (model, tier): its own
// RequestQueue + DynamicBatcher + ServeStats around that tier's
// engine, with every lane multiplexed onto one shared worker set, so
// K lanes cost K engine bindings (tiers derived from one checkpoint
// share nothing but are individually mmap-shareable) and only one
// thread pool. Requests carry the model name AND a tier (weight_bits;
// 0 = the model's default tier); the empty name routes to the default
// model (the first lane added), which is how protocol-v1 clients keep
// working.
//
//   EngineRegistry registry;
//   registry.register_file("sst2", "sst2.bin");   // native int8
//   registry.register_derived("sst2", 4);         // int4 sibling
//   ModelRouter router(registry, cfg);
//   router.add_model("sst2");        // lanes for every registered tier
//   router.start();
//   auto fut = router.submit("sst2", ex, Micros(50'000),
//                            nullptr, 0, /*tier=*/4);
//   router.load_model("mnli", "mnli.bin");       // hot, native tier
//   router.load_model("sst2", "", nullptr, 2);   // hot, derive int2
//   router.unload_model("sst2", nullptr, 4);     // drains ONLY int4
//   router.unload_model("sst2");                 // drains all tiers
//   router.shutdown(/*drain=*/true);
//
// Hot load/unload: load_model() publishes the tier's engine and lane
// without pausing other lanes; unload_model() closes the target
// lane(s)' admission queues, waits until their queued + batched +
// in-flight work has fully completed (other lanes keep serving
// throughout, including sibling tiers of the same model), then removes
// the lane(s) and the registry binding. Admission, execution, and
// stats are strictly per-lane, so each (model, tier)'s `admitted ==
// completed + timed_out + failed` balances independently.
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "platform/thread_annotations.h"
#include "serve/engine_pool.h"
#include "serve/engine_registry.h"
#include "serve/server.h"

namespace fqbert::serve {

/// What to do with a request naming a tier the model does not serve.
enum class TierFallback {
  kStrict,             // reject with kRejectedUnknownTier
  kFallbackToDefault,  // serve it on the model's default tier
};

struct RouterConfig {
  /// Shared worker threads executing batches across ALL lanes.
  int num_workers = 2;
  /// Per-lane admission queue and batching policy (every lane gets its
  /// own instances with these settings).
  RequestQueueConfig queue;
  BatcherConfig batcher;
  TierFallback tier_fallback = TierFallback::kStrict;
};

class ModelRouter {
 public:
  /// Per-lane stats row: which model, which tier, the lane's report.
  struct LaneStats {
    std::string model;
    int tier = 0;
    ServeStats::Report report;
  };
  struct LaneDepth {
    std::string model;
    int tier = 0;
    size_t depth = 0;
    /// Batches of this lane currently executing on workers.
    int inflight = 0;
    /// Lifetime maximum admission-queue depth observed at submit time
    /// (the /debug/lanes saturation signal).
    size_t high_watermark = 0;
  };

  explicit ModelRouter(EngineRegistry& registry, const RouterConfig& cfg = {});
  ~ModelRouter();

  ModelRouter(const ModelRouter&) = delete;
  ModelRouter& operator=(const ModelRouter&) = delete;

  /// Spawn the shared workers. Lanes may be added before or after; a
  /// router with zero lanes idles until load_model()/add_model().
  bool start();

  /// Stop every lane and join the workers. drain=true completes all
  /// admitted work first; drain=false fails it with kShutdown.
  /// Idempotent.
  void shutdown(bool drain = true);

  /// Open serving lanes for EVERY registered tier of a model already
  /// in the registry. False (with *error set) when the name is unknown
  /// to the registry or any lane already serves it. The first model
  /// added becomes the default model.
  bool add_model(const std::string& name, std::string* error = nullptr);

  /// Open a lane for one (name, bits) tier already in the registry
  /// (bits 0 = the registry's default tier for the name). False when
  /// that tier is unknown or its lane already exists.
  bool add_tier(const std::string& name, int bits,
                std::string* error = nullptr);

  /// Hot-load one tier under live traffic. With a path: read the
  /// engine file (mmap zero-copy for FQBERT02), publish it in the
  /// registry under `name`, and open its lane. bits 0 serves the
  /// file's native tier; bits != native derives that tier from the
  /// loaded engine first. With an empty path: derive `bits` from the
  /// model's already-registered default tier. Other lanes — including
  /// sibling tiers of `name` — never pause. False when the target
  /// (name, tier) lane already exists or loading/derivation fails.
  bool load_model(const std::string& name, const std::string& path,
                  std::string* error = nullptr, int bits = 0);

  /// Hot-unload: stop admissions on the target lane(s), drain their
  /// queued and in-flight work (every admitted request reaches a
  /// terminal state), then drop the lane(s) and registry binding(s).
  /// bits 0 unloads EVERY tier of `name`; bits != 0 unloads that tier
  /// only, and sibling tiers serve uninterrupted. False when nothing
  /// matches.
  bool unload_model(const std::string& name, std::string* error = nullptr,
                    int bits = 0);

  /// Route one request to (model, tier). "" = default model; tier 0 =
  /// the model's default tier; a tier the model does not serve is
  /// rejected or falls back per RouterConfig::tier_fallback. The
  /// returned future always completes; rejections (unknown model,
  /// unknown tier, queue full, dead deadline, malformed example,
  /// closed lane) resolve immediately with the corresponding status.
  /// A nonzero `trace_id` marks the request traced: its response
  /// carries per-stage timestamps (admission, batch formation, worker
  /// start/end) under that id. The response's `tier` field reports the
  /// weight_bits that actually served the request.
  std::future<ServeResponse> submit(const std::string& model,
                                    nn::Example example,
                                    std::optional<Micros> deadline_budget =
                                        std::nullopt,
                                    AdmitResult* admit = nullptr,
                                    uint64_t trace_id = 0, int tier = 0);

  /// True when any tier of `name` has a lane (tier-specific overload
  /// below).
  bool has_model(const std::string& name) const;
  bool has_tier(const std::string& name, int bits) const;
  std::vector<std::string> model_names() const;
  /// Ascending tiers currently served for `name` ("" = default model).
  std::vector<int> served_tiers(const std::string& name) const;
  /// Engine shape of a served model ("" = default; tier 0 = default
  /// tier). nullopt when the lane does not exist.
  std::optional<nn::BertConfig> model_config(const std::string& name,
                                             int bits = 0) const;
  /// Per-lane stats snapshot ("" = default; tier 0 = default tier).
  /// nullopt when no lane.
  std::optional<ServeStats::Report> stats_report(const std::string& name,
                                                 int bits = 0) const;
  /// One row per lane, (name, tier)-ordered.
  std::vector<LaneStats> all_stats() const;

  /// Instantaneous per-lane backlog (admission queue + batcher
  /// pending), (name, tier)-ordered. A point-in-time gauge for the
  /// metrics endpoint.
  std::vector<LaneDepth> queue_depths() const;

  /// Name the empty model id routes to ("" when no lane was ever
  /// added). Unloading the default leaves the name dangling — v1/empty
  /// requests then get kRejectedUnknownModel until it is reloaded.
  std::string default_model() const;
  /// Tier that tier-0 requests for `name` ride ("" = default model; 0
  /// when the model has no lanes).
  int default_tier(const std::string& name) const;

  /// Requests rejected because no lane served their model name (these
  /// have no lane to count them in).
  uint64_t unknown_model_rejections() const { return unknown_rejected_; }
  /// Requests rejected because the model is served but not at the
  /// requested tier (strict fallback policy only).
  uint64_t unknown_tier_rejections() const { return unknown_tier_rejected_; }

  size_t num_workers() const { return workers_.size(); }
  bool running() const { return started_ && !stopped_; }
  double uptime_s() const;

 private:
  /// One (model, tier) serving lane. Owned via shared_ptr so workers
  /// can hold a snapshot across an unload (the lane object outlives
  /// its map entry until the last worker drops it).
  struct Lane {
    Lane(std::string model_name, int tier_bits,
         std::shared_ptr<const core::FqBertModel> model,
         const RouterConfig& cfg)
        : name(std::move(model_name)),
          tier(tier_bits),
          engine(std::move(model)),
          config(engine->config()),
          queue(cfg.queue),
          batcher(queue, cfg.batcher, &stats) {}

    const std::string name;
    const int tier;  // weight_bits this lane serves
    const std::shared_ptr<const core::FqBertModel> engine;
    const nn::BertConfig config;
    ServeStats stats;
    RequestQueue queue;
    DynamicBatcher batcher;
    /// Workers parked on this lane's poll/execute window. Incremented
    /// BEFORE poll_batch so (queue empty && batcher empty && inflight
    /// == 0) can never be observed while a popped batch is unresolved.
    std::atomic<int> inflight{0};
    std::atomic<bool> closing{false};
    /// Lifetime max queue depth seen at admission (monotone CAS max).
    std::atomic<size_t> depth_high_watermark{0};
  };
  using LaneKey = std::pair<std::string, int>;

  void worker_loop(size_t worker_index);
  std::vector<std::shared_ptr<Lane>> snapshot_lanes() const;
  /// Resolve (name, bits) to a lane. Strict: no cross-tier fallback
  /// (that policy is applied in submit()). `model_known` reports
  /// whether ANY tier of the resolved name has a lane, so the caller
  /// can distinguish unknown-model from unknown-tier.
  std::shared_ptr<Lane> find_lane(const std::string& name, int bits,
                                  bool* model_known = nullptr) const;
  bool insert_lane(const std::string& name, int bits,
                   std::shared_ptr<const core::FqBertModel> engine,
                   std::string* error);
  /// Close + drain + erase one lane (admin_mu_ held by caller).
  void retire_lane(const std::shared_ptr<Lane>& lane);
  /// Bump the work epoch and wake every worker (new request / new lane /
  /// closing lane / shutdown).
  void wake_workers();
  /// True once the lane holds no queued, batched, or in-flight work.
  static bool lane_drained(const Lane& lane);

  EngineRegistry& registry_;
  RouterConfig cfg_;

  mutable Mutex lanes_mu_;
  std::map<LaneKey, std::shared_ptr<Lane>> lanes_ GUARDED_BY(lanes_mu_);
  /// Tier a bits-0 request rides, per model (first tier whose lane was
  /// added; re-pointed at the lowest remaining tier when that lane is
  /// unloaded).
  std::map<std::string, int> default_tier_ GUARDED_BY(lanes_mu_);
  /// Cleared (under lanes_mu_) at the top of shutdown(), atomically
  /// with the lane snapshot whose queues shutdown closes — so a racing
  /// load_model can never publish a lane shutdown would miss.
  bool accepting_lanes_ GUARDED_BY(lanes_mu_) = true;
  std::string default_model_ GUARDED_BY(lanes_mu_);
  /// Signaled by workers when a closing lane's work recedes;
  /// unload_model waits on it under lanes_mu_.
  std::condition_variable drain_cv_;

  /// Serializes load/unload against each other (the data plane never
  /// takes this).
  Mutex admin_mu_;

  Mutex wake_mu_;
  std::condition_variable wake_cv_;
  uint64_t work_epoch_ GUARDED_BY(wake_mu_) = 0;

  std::vector<std::thread> workers_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> unknown_rejected_{0};
  std::atomic<uint64_t> unknown_tier_rejected_{0};
  std::atomic<int64_t> start_ns_{0};
  std::atomic<int64_t> stop_ns_{0};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> stopping_{false};
};

}  // namespace fqbert::serve
