// ModelRouter: multi-tenant serving facade. Fronts N named engines in
// ONE process — each model gets its own serving lane (RequestQueue +
// DynamicBatcher + per-model ServeStats) and all lanes are multiplexed
// onto one shared worker set, so K models cost K weight copies but only
// one thread pool. Requests carry the model name; the empty name routes
// to the default model (the first lane added), which is how protocol-v1
// clients keep working.
//
//   EngineRegistry registry;
//   registry.register_file("sst2", "sst2.bin");
//   ModelRouter router(registry, cfg);
//   router.add_model("sst2");
//   router.start();
//   auto fut = router.submit("sst2", example, Micros(50'000));
//   router.load_model("mnli", "mnli.bin");     // hot, under live traffic
//   router.unload_model("sst2");               // drains ONLY that lane
//   router.shutdown(/*drain=*/true);
//
// Hot load/unload: load_model() reads the engine file and publishes the
// lane without pausing other models; unload_model() closes the lane's
// admission queue, waits until its queued + batched + in-flight work has
// fully completed (other lanes keep serving throughout), then removes
// the lane and unregisters the name. Admission, execution, and stats are
// strictly per-lane, so each lane's `admitted == completed + timed_out +
// failed` balances independently.
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "platform/thread_annotations.h"
#include "serve/engine_pool.h"
#include "serve/engine_registry.h"
#include "serve/server.h"

namespace fqbert::serve {

struct RouterConfig {
  /// Shared worker threads executing batches across ALL lanes.
  int num_workers = 2;
  /// Per-lane admission queue and batching policy (every lane gets its
  /// own instances with these settings).
  RequestQueueConfig queue;
  BatcherConfig batcher;
};

class ModelRouter {
 public:
  explicit ModelRouter(EngineRegistry& registry, const RouterConfig& cfg = {});
  ~ModelRouter();

  ModelRouter(const ModelRouter&) = delete;
  ModelRouter& operator=(const ModelRouter&) = delete;

  /// Spawn the shared workers. Lanes may be added before or after; a
  /// router with zero lanes idles until load_model()/add_model().
  bool start();

  /// Stop every lane and join the workers. drain=true completes all
  /// admitted work first; drain=false fails it with kShutdown.
  /// Idempotent.
  void shutdown(bool drain = true);

  /// Open a serving lane for an engine already in the registry. False
  /// (with *error set) when the name is unknown to the registry or a
  /// lane already serves it. The first lane added becomes the default
  /// model.
  bool add_model(const std::string& name, std::string* error = nullptr);

  /// Hot-load: read a serialized engine file, publish it in the
  /// registry under `name`, and open its lane — all without touching
  /// other lanes. False when the name is already served or the file
  /// cannot be loaded.
  bool load_model(const std::string& name, const std::string& path,
                  std::string* error = nullptr);

  /// Hot-unload: stop admissions on the lane, drain its queued and
  /// in-flight work (every admitted request reaches a terminal state),
  /// then drop the lane and unregister the name. Other lanes serve
  /// uninterrupted. False when no lane serves `name`.
  bool unload_model(const std::string& name, std::string* error = nullptr);

  /// Route one request to `model` ("" = default model). The returned
  /// future always completes; rejections (unknown model, queue full,
  /// dead deadline, malformed example, closed lane) resolve immediately
  /// with the corresponding status. A nonzero `trace_id` marks the
  /// request traced: its response carries per-stage timestamps
  /// (admission, batch formation, worker start/end) under that id.
  std::future<ServeResponse> submit(const std::string& model,
                                    nn::Example example,
                                    std::optional<Micros> deadline_budget =
                                        std::nullopt,
                                    AdmitResult* admit = nullptr,
                                    uint64_t trace_id = 0);

  bool has_model(const std::string& name) const;
  std::vector<std::string> model_names() const;
  /// Engine shape of a served model ("" = default). nullopt when the
  /// name has no lane.
  std::optional<nn::BertConfig> model_config(const std::string& name) const;
  /// Per-lane stats snapshot ("" = default). nullopt when no lane.
  std::optional<ServeStats::Report> stats_report(
      const std::string& name) const;
  /// (name, report) for every lane, name-ordered.
  std::vector<std::pair<std::string, ServeStats::Report>> all_stats() const;

  /// Instantaneous per-lane backlog (admission queue + batcher pending),
  /// name-ordered. A point-in-time gauge for the metrics endpoint.
  std::vector<std::pair<std::string, size_t>> queue_depths() const;

  /// Name the empty model id routes to ("" when no lane was ever
  /// added). Unloading the default leaves the name dangling — v1/empty
  /// requests then get kRejectedUnknownModel until it is reloaded.
  std::string default_model() const;

  /// Requests rejected because no lane served their model name (these
  /// have no lane to count them in).
  uint64_t unknown_model_rejections() const { return unknown_rejected_; }

  size_t num_workers() const { return workers_.size(); }
  bool running() const { return started_ && !stopped_; }
  double uptime_s() const;

 private:
  /// One model's serving lane. Owned via shared_ptr so workers can hold
  /// a snapshot across an unload (the lane object outlives its map
  /// entry until the last worker drops it).
  struct Lane {
    Lane(std::string model_name,
         std::shared_ptr<const core::FqBertModel> model,
         const RouterConfig& cfg)
        : name(std::move(model_name)),
          engine(std::move(model)),
          config(engine->config()),
          queue(cfg.queue),
          batcher(queue, cfg.batcher, &stats) {}

    const std::string name;
    const std::shared_ptr<const core::FqBertModel> engine;
    const nn::BertConfig config;
    ServeStats stats;
    RequestQueue queue;
    DynamicBatcher batcher;
    /// Workers parked on this lane's poll/execute window. Incremented
    /// BEFORE poll_batch so (queue empty && batcher empty && inflight
    /// == 0) can never be observed while a popped batch is unresolved.
    std::atomic<int> inflight{0};
    std::atomic<bool> closing{false};
  };

  void worker_loop(size_t worker_index);
  std::vector<std::shared_ptr<Lane>> snapshot_lanes() const;
  std::shared_ptr<Lane> find_lane(const std::string& name) const;
  bool insert_lane(const std::string& name,
                   std::shared_ptr<const core::FqBertModel> engine,
                   std::string* error);
  /// Bump the work epoch and wake every worker (new request / new lane /
  /// closing lane / shutdown).
  void wake_workers();
  /// True once the lane holds no queued, batched, or in-flight work.
  static bool lane_drained(const Lane& lane);

  EngineRegistry& registry_;
  RouterConfig cfg_;

  mutable Mutex lanes_mu_;
  std::map<std::string, std::shared_ptr<Lane>> lanes_ GUARDED_BY(lanes_mu_);
  /// Cleared (under lanes_mu_) at the top of shutdown(), atomically
  /// with the lane snapshot whose queues shutdown closes — so a racing
  /// load_model can never publish a lane shutdown would miss.
  bool accepting_lanes_ GUARDED_BY(lanes_mu_) = true;
  std::string default_model_ GUARDED_BY(lanes_mu_);
  /// Signaled by workers when a closing lane's work recedes;
  /// unload_model waits on it under lanes_mu_.
  std::condition_variable drain_cv_;

  /// Serializes load/unload against each other (the data plane never
  /// takes this).
  Mutex admin_mu_;

  Mutex wake_mu_;
  std::condition_variable wake_cv_;
  uint64_t work_epoch_ GUARDED_BY(wake_mu_) = 0;

  std::vector<std::thread> workers_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> unknown_rejected_{0};
  std::atomic<int64_t> start_ns_{0};
  std::atomic<int64_t> stop_ns_{0};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> stopping_{false};
};

}  // namespace fqbert::serve
