#include "serve/stats.h"

#include <algorithm>

namespace fqbert::serve {

void ServeStats::record_admitted() {
  MutexLock lock(mu_);
  ++admitted_;
}

void ServeStats::record_rejected_full() {
  MutexLock lock(mu_);
  ++rejected_full_;
}

void ServeStats::record_rejected_deadline() {
  MutexLock lock(mu_);
  ++rejected_deadline_;
}

void ServeStats::record_rejected_invalid() {
  MutexLock lock(mu_);
  ++rejected_invalid_;
}

void ServeStats::record_rejected_closed() {
  MutexLock lock(mu_);
  ++rejected_closed_;
}

void ServeStats::record_timeout() {
  MutexLock lock(mu_);
  ++timed_out_;
}

void ServeStats::record_failure() {
  MutexLock lock(mu_);
  ++failed_;
}

void ServeStats::record_batch(size_t batch_size) {
  MutexLock lock(mu_);
  ++batches_;
  batched_requests_ += batch_size;
}

void ServeStats::record_response(int64_t latency_us, int64_t queue_us) {
  MutexLock lock(mu_);
  ++completed_;
  queue_us_sum_ += queue_us;
  latencies_us_.record(latency_us);
}

ServeStats::Report ServeStats::aggregate(const std::vector<Report>& parts) {
  Report agg;
  double queue_ms_weighted = 0.0, occupancy_weighted = 0.0;
  double p50_weighted = 0.0, p95_weighted = 0.0;
  double p99_weighted = 0.0, p999_weighted = 0.0;
  for (const Report& r : parts) {
    agg.admitted += r.admitted;
    agg.rejected_full += r.rejected_full;
    agg.rejected_deadline += r.rejected_deadline;
    agg.rejected_invalid += r.rejected_invalid;
    agg.rejected_closed += r.rejected_closed;
    agg.timed_out += r.timed_out;
    agg.completed += r.completed;
    agg.failed += r.failed;
    agg.batches += r.batches;
    agg.latency_samples += r.latency_samples;
    queue_ms_weighted += r.mean_queue_ms * static_cast<double>(r.completed);
    occupancy_weighted +=
        r.mean_batch_occupancy * static_cast<double>(r.batches);
    const double w = static_cast<double>(r.latency_samples);
    p50_weighted += r.p50_ms * w;
    p95_weighted += r.p95_ms * w;
    p99_weighted += r.p99_ms * w;
    p999_weighted += r.p999_ms * w;
    agg.max_ms = std::max(agg.max_ms, r.max_ms);
    agg.latency_sketch.merge(r.latency_sketch);
  }
  if (agg.completed > 0)
    agg.mean_queue_ms = queue_ms_weighted / static_cast<double>(agg.completed);
  if (agg.batches > 0)
    agg.mean_batch_occupancy =
        occupancy_weighted / static_cast<double>(agg.batches);
  if (agg.latency_sketch.count() >= agg.latency_samples &&
      agg.latency_sketch.count() > 0) {
    // Every part carried its sketch: exact-mergeable quantiles,
    // identical to a single sketch over the pooled samples.
    agg.p50_ms = agg.latency_sketch.quantile_ms(0.50);
    agg.p95_ms = agg.latency_sketch.quantile_ms(0.95);
    agg.p99_ms = agg.latency_sketch.quantile_ms(0.99);
    agg.p999_ms = agg.latency_sketch.quantile_ms(0.999);
  } else if (agg.latency_samples > 0) {
    // At least one part claimed samples without shipping a sketch (a
    // pre-v3 wire report): fall back to sample-weighted means.
    const double w = static_cast<double>(agg.latency_samples);
    agg.p50_ms = p50_weighted / w;
    agg.p95_ms = p95_weighted / w;
    agg.p99_ms = p99_weighted / w;
    agg.p999_ms = p999_weighted / w;
  }
  return agg;
}

ServeStats::Report ServeStats::report() const {
  MutexLock lock(mu_);
  Report r;
  r.admitted = admitted_;
  r.rejected_full = rejected_full_;
  r.rejected_deadline = rejected_deadline_;
  r.rejected_invalid = rejected_invalid_;
  r.rejected_closed = rejected_closed_;
  r.timed_out = timed_out_;
  r.completed = completed_;
  r.failed = failed_;
  r.latency_samples = latencies_us_.count();
  r.batches = batches_;
  r.mean_batch_occupancy =
      batches_ > 0 ? static_cast<double>(batched_requests_) /
                         static_cast<double>(batches_)
                   : 0.0;
  r.mean_queue_ms = r.completed > 0
                        ? static_cast<double>(queue_us_sum_) /
                              static_cast<double>(r.completed) / 1000.0
                        : 0.0;
  r.p50_ms = latencies_us_.quantile_ms(0.50);
  r.p95_ms = latencies_us_.quantile_ms(0.95);
  r.p99_ms = latencies_us_.quantile_ms(0.99);
  r.p999_ms = latencies_us_.quantile_ms(0.999);
  r.max_ms = static_cast<double>(latencies_us_.max_us()) / 1000.0;
  r.latency_sketch = latencies_us_;
  return r;
}

void ServeStats::reset() {
  MutexLock lock(mu_);
  admitted_ = rejected_full_ = rejected_deadline_ = 0;
  rejected_invalid_ = rejected_closed_ = 0;
  timed_out_ = failed_ = batches_ = batched_requests_ = 0;
  completed_ = 0;
  queue_us_sum_ = 0;
  latencies_us_.clear();
}

}  // namespace fqbert::serve
