// Prometheus text-exposition renderers: turn a ModelRouter's or a
// ShardProxy's instantaneous state into the plain-text format every
// scraper understands (`text/plain; version=0.0.4`). Pure functions —
// the HTTP plumbing lives in metrics_http.h, so the renderers can be
// unit-tested by string inspection without a socket in sight.
//
// Metric families (all prefixed `fqbert_`). Every per-model family
// carries a `tier` label — the lane's weight bit-width (so one logical
// model served at int8 and int4 scrapes as two series; the
// counter-balance invariant admitted = completed + failed + timed_out
// holds per (model, tier) row):
//   serve (per model,tier label):
//     fqbert_requests_total{model,tier,outcome}  counter, outcome one of
//         admitted|completed|failed|timed_out|rejected_full|
//         rejected_deadline|rejected_invalid|rejected_closed
//     fqbert_batches_total{model,tier}           counter
//     fqbert_batch_occupancy{model,tier}         gauge (mean reqs/batch)
//     fqbert_queue_depth{model,tier}             gauge (queued + batching)
//     fqbert_queue_ms_mean{model,tier}           gauge
//     fqbert_latency_ms{model,tier,quantile}     summary (.5/.95/.99/.999)
//     fqbert_latency_ms_count{model,tier}        lifetime sample count
//     fqbert_latency_max_ms{model,tier}          gauge (exact)
//     fqbert_unknown_model_rejections_total      counter
//     fqbert_unknown_tier_rejections_total       counter
//     fqbert_uptime_seconds / fqbert_workers     gauges
//   proxy:
//     fqbert_proxy_*_total                   the ShardProxy counters
//     fqbert_backend_state{backend,state}    one-hot gauge
//     fqbert_backend_health_checks_total{backend,result}
//     fqbert_backend_forwards_total{backend,result}
//     fqbert_backend_recoveries_total{backend}
//     plus the same fqbert_requests_total / fqbert_latency_ms families
//     as serve, aggregated fleet-wide via exact sketch merges.
#pragma once

#include <string>

namespace fqbert::serve {

class ModelRouter;

namespace shard {
class ShardProxy;
}

/// Exposition body for one serving process (per-lane counters,
/// quantiles, queue depths, batch occupancy).
std::string render_router_metrics(const ModelRouter& router);

/// Exposition body for a shard proxy: proxy counters, per-backend
/// health, and fleet-wide per-model stats (blocking STATS fan-out to
/// the backends — scrape-path cost, not data-path).
std::string render_proxy_metrics(shard::ShardProxy& proxy);

}  // namespace fqbert::serve
