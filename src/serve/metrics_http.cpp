#include "serve/metrics_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

namespace fqbert::serve {

namespace {

/// Poll tick for the accept loop: how quickly stop() is observed.
constexpr int kLoopTickMs = 100;

bool send_all(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

std::string http_response(const char* status_line, const char* content_type,
                          const std::string& body) {
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.1 ";
  out += status_line;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(Renderer renderer)
    : renderer_(std::move(renderer)) {}

void MetricsHttpServer::add_endpoint(const std::string& path,
                                     Handler handler,
                                     const std::string& content_type) {
  endpoints_[path] = Endpoint{std::move(handler), content_type};
}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

bool MetricsHttpServer::start(const std::string& bind_address,
                              uint16_t port) {
  if (running_) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    std::perror("metrics: socket");
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "metrics: bad bind address %s\n",
                 bind_address.c_str());
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 16) != 0) {
    std::perror("metrics: bind/listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  stopping_ = false;
  running_ = true;
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void MetricsHttpServer::stop() {
  if (!running_) return;
  stopping_ = true;
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  running_ = false;
}

void MetricsHttpServer::serve_loop() {
  while (!stopping_) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kLoopTickMs);
    if (ready <= 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    handle_connection(fd);
    ::close(fd);
  }
}

void MetricsHttpServer::handle_connection(int fd) {
  // Read until the end of the request head (blank line), a bound, or
  // the deadline. The body, if a client sends one, is ignored: the
  // response is written and the connection closed regardless. The
  // deadline is ABSOLUTE for the whole read — a slow-loris client
  // trickling one byte per poll cannot reset it.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(limits_.request_deadline_ms);
  std::string req;
  char buf[2048];
  while (req.find("\r\n\r\n") == std::string::npos &&
         req.find("\n\n") == std::string::npos) {
    if (req.size() >= limits_.max_request_bytes || stopping_) return;
    // An over-long request LINE is dropped as soon as it exceeds its
    // own cap, long before the head cap.
    if (req.find_first_of("\r\n") == std::string::npos &&
        req.size() > limits_.max_request_line)
      return;
    const auto remaining = std::chrono::duration_cast<
        std::chrono::milliseconds>(deadline - std::chrono::steady_clock::now())
        .count();
    if (remaining <= 0) return;
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(
        &pfd, 1,
        static_cast<int>(std::min<long long>(remaining, kLoopTickMs)));
    if (ready < 0 && errno != EINTR) return;
    if (ready <= 0) continue;  // tick: re-check deadline and stopping_
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    req.append(buf, static_cast<size_t>(n));
  }

  // Request line: METHOD SP PATH SP VERSION. Anything shorter than a
  // full line is a hangup mid-request: no answer owed.
  const size_t eol = req.find_first_of("\r\n");
  if (eol == std::string::npos) return;
  if (eol > limits_.max_request_line) return;
  const std::string line = req.substr(0, eol);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    send_all(fd, http_response("400 Bad Request", "text/plain",
                               "bad request\n"));
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string query;
  const size_t qmark = path.find('?');
  if (qmark != std::string::npos) {
    query = path.substr(qmark + 1);
    path.resize(qmark);
  }

  if (method != "GET") {
    send_all(fd, http_response("405 Method Not Allowed", "text/plain",
                               "only GET is served here\n"));
    return;
  }
  if (path == "/metrics") {
    send_all(fd, http_response("200 OK", "text/plain; version=0.0.4",
                               renderer_ ? renderer_() : std::string()));
    return;
  }
  const auto it = endpoints_.find(path);
  if (it == endpoints_.end()) {
    send_all(fd, http_response("404 Not Found", "text/plain",
                               "try /metrics\n"));
    return;
  }
  send_all(fd, http_response("200 OK", it->second.content_type.c_str(),
                             it->second.handler ? it->second.handler(query)
                                                : std::string()));
}

}  // namespace fqbert::serve
