#include "serve/flight_recorder.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <unistd.h>

#include <algorithm>

#include "serve/build_info.h"

namespace fqbert::serve {

namespace {

const char* const kEventTypeNames[] = {
    "admitted",         // kRequestAdmitted
    "rejected",         // kRequestRejected
    "timed_out",        // kRequestTimedOut
    "batch_formed",     // kBatchFormed
    "worker_start",     // kWorkerStart
    "worker_end",       // kWorkerEnd
    "queue_hwm",        // kQueueHighWatermark
    "model_loaded",     // kModelLoaded
    "model_unloaded",   // kModelUnloaded
    "lane_drained",     // kLaneDrained
    "health_transition",  // kHealthTransition
    "failover_retry",   // kFailoverRetry
    "placement_changed",  // kPlacementChanged
    "backend_added",    // kBackendAdded
    "backend_removed",  // kBackendRemoved
};
static_assert(sizeof(kEventTypeNames) / sizeof(kEventTypeNames[0]) ==
                  kLastFlightEventType + 1,
              "event name table out of sync with FlightEventType");

/// Crash banner, preformatted at recorder construction so the signal
/// handler only ever write(2)s static memory.
char g_crash_banner[512];

std::atomic<bool> g_crash_handler_installed{false};

// ---------------------------------------------------------------------------
// Async-signal-safe output: write(2) plus hand-rolled decimal/hex
// formatting into stack buffers. No stdio, no allocation, no locks.
// ---------------------------------------------------------------------------

void write_all(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // a failing postmortem write has nowhere to report
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
}

/// Bounded append of a C string into buf; returns the new cursor.
size_t append_str(char* buf, size_t cap, size_t pos, const char* s) {
  while (*s != '\0' && pos + 1 < cap) buf[pos++] = *s++;
  return pos;
}

size_t append_u64(char* buf, size_t cap, size_t pos, uint64_t v) {
  char digits[20];
  size_t n = 0;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0 && pos + 1 < cap) buf[pos++] = digits[--n];
  return pos;
}

size_t append_hex64(char* buf, size_t cap, size_t pos, uint64_t v) {
  static const char* kHex = "0123456789abcdef";
  pos = append_str(buf, cap, pos, "0x");
  bool started = false;
  for (int shift = 60; shift >= 0; shift -= 4) {
    const unsigned nibble = (v >> shift) & 0xF;
    if (!started && nibble == 0 && shift != 0) continue;
    started = true;
    if (pos + 1 < cap) buf[pos++] = kHex[nibble];
  }
  return pos;
}

extern "C" void fqbert_crash_signal_handler(int sig) {
  FlightRecorder::instance().dump_to_fd(STDERR_FILENO);
  // SA_RESETHAND restored the default disposition when we entered, so
  // re-raising terminates with the original signal (core dump intact).
  ::raise(sig);
}

}  // namespace

const char* flight_event_type_name(FlightEventType type) {
  const uint8_t t = static_cast<uint8_t>(type);
  return t <= kLastFlightEventType ? kEventTypeNames[t] : "unknown";
}

uint64_t flight_now_ns() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

FlightRecorder::FlightRecorder() {
  // Normal (non-signal) context: formatting with snprintf is fine, and
  // the handler later only writes the finished buffer.
  std::snprintf(g_crash_banner, sizeof(g_crash_banner),
                "==== FQBERT FLIGHT RECORDER DUMP ====\nbuild: %s\n",
                build_info_string().c_str());
}

FlightRecorder& FlightRecorder::instance() {
  // Leaked on purpose: the journal must outlive every other static so
  // crash dumps during teardown still work.
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

FlightRecorder::Ring* FlightRecorder::claim_ring() {
  struct Handle {
    Ring* ring = nullptr;
    bool owns = false;
    ~Handle() {
      // Release for reuse; the events stay readable after the thread
      // dies — a crashed worker's tail is exactly what a postmortem
      // wants.
      if (ring != nullptr && owns)
        ring->claimed.store(false, std::memory_order_release);
    }
  };
  thread_local Handle handle;
  if (handle.ring != nullptr) return handle.ring;

  MutexLock lock(claim_mu_);
  const size_t n = num_rings_.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    Ring* ring = rings_[i].load(std::memory_order_acquire);
    bool expected = false;
    if (ring != nullptr &&
        ring->claimed.compare_exchange_strong(expected, true)) {
      handle.ring = ring;
      handle.owns = true;
      return ring;
    }
  }
  if (n < kMaxRings) {
    Ring* ring = new Ring();  // never freed; registry is append-only
    ring->claimed.store(true, std::memory_order_relaxed);
    rings_[n].store(ring, std::memory_order_release);
    num_rings_.store(n + 1, std::memory_order_release);
    handle.ring = ring;
    handle.owns = true;
    return ring;
  }
  // More live threads than kMaxRings: share ring 0. Contended but
  // correct (every append locks), and far beyond any real deployment.
  handle.ring = rings_[0].load(std::memory_order_acquire);
  handle.owns = false;
  return handle.ring;
}

void FlightRecorder::record(FlightEventType type, std::string_view tag,
                            uint64_t trace_id, uint8_t tier, uint16_t detail,
                            uint32_t a, uint64_t b) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  Ring* ring = claim_ring();
  FlightEvent ev;
  ev.t_ns = flight_now_ns();
  ev.trace_id = trace_id;
  ev.type = static_cast<uint8_t>(type);
  ev.tier = tier;
  ev.detail = detail;
  ev.a = a;
  ev.b = b;
  const size_t n = std::min(tag.size(), sizeof(ev.tag) - 1);
  // lint-wire: bounded copy into the journal slot's tag, no wire data
  std::memcpy(ev.tag, tag.data(), n);
  ev.tag[n] = '\0';

  MutexLock lock(ring->mu);
  const uint64_t seq = ring->seq.load(std::memory_order_relaxed);
  ring->slots[seq % kRingCapacity] = ev;
  ring->seq.store(seq + 1, std::memory_order_release);
}

void FlightRecorder::copy_ring(const Ring& ring, uint64_t since_ns,
                               std::vector<FlightEvent>* out) const {
  MutexLock lock(ring.mu);
  const uint64_t seq = ring.seq.load(std::memory_order_relaxed);
  const size_t count = static_cast<size_t>(
      std::min<uint64_t>(seq, kRingCapacity));
  for (size_t i = 0; i < count; ++i) {
    const FlightEvent& ev =
        ring.slots[(seq - count + i) % kRingCapacity];
    if (ev.t_ns >= since_ns) out->push_back(ev);
  }
}

std::vector<FlightEvent> FlightRecorder::snapshot(uint64_t since_ns,
                                                  size_t max_events) const {
  std::vector<FlightEvent> events;
  const size_t n = num_rings_.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    const Ring* ring = rings_[i].load(std::memory_order_acquire);
    if (ring != nullptr) copy_ring(*ring, since_ns, &events);
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FlightEvent& x, const FlightEvent& y) {
                     return x.t_ns < y.t_ns;
                   });
  if (max_events > 0 && events.size() > max_events)
    events.erase(events.begin(),
                 events.end() - static_cast<ptrdiff_t>(max_events));
  return events;
}

bool FlightRecorder::slow_candidate(int64_t latency_us) const {
  if (!enabled_.load(std::memory_order_relaxed)) return false;
  if (latency_us < slow_threshold_us_.load(std::memory_order_relaxed))
    return false;
  return latency_us >= slow_floor_us_.load(std::memory_order_relaxed);
}

void FlightRecorder::note_slow(const std::string& model, uint8_t tier,
                               uint64_t trace_id, int64_t latency_us,
                               std::vector<TraceEvent> stages) {
  if (latency_us < slow_threshold_us_.load(std::memory_order_relaxed))
    return;
  MutexLock lock(slow_mu_);
  if (slow_.size() >= kSlowK) {
    if (latency_us <= slow_.back().latency_us) return;
    slow_.pop_back();
  }
  SlowExemplar ex;
  ex.trace_id = trace_id;
  ex.latency_us = latency_us;
  ex.tier = tier;
  ex.model = model;
  ex.stages = std::move(stages);
  const auto pos = std::upper_bound(
      slow_.begin(), slow_.end(), latency_us,
      [](int64_t v, const SlowExemplar& e) { return v > e.latency_us; });
  slow_.insert(pos, std::move(ex));
  if (slow_.size() >= kSlowK)
    slow_floor_us_.store(slow_.back().latency_us,
                         std::memory_order_relaxed);
}

std::vector<SlowExemplar> FlightRecorder::slow_exemplars() const {
  MutexLock lock(slow_mu_);
  return slow_;
}

void FlightRecorder::set_slow_threshold_us(int64_t threshold_us) {
  slow_threshold_us_.store(threshold_us, std::memory_order_relaxed);
}

int64_t FlightRecorder::slow_threshold_us() const {
  return slow_threshold_us_.load(std::memory_order_relaxed);
}

void FlightRecorder::clear_slow_exemplars() {
  MutexLock lock(slow_mu_);
  slow_.clear();
  slow_floor_us_.store(0, std::memory_order_relaxed);
}

void FlightRecorder::install_crash_handler() {
  bool expected = false;
  if (!g_crash_handler_installed.compare_exchange_strong(expected, true))
    return;
  struct sigaction sa{};
  sa.sa_handler = &fqbert_crash_signal_handler;
  sigemptyset(&sa.sa_mask);
  // One shot: the disposition resets to default on entry, so the
  // re-raise inside the handler terminates instead of recursing.
  sa.sa_flags = SA_RESETHAND;
  ::sigaction(SIGSEGV, &sa, nullptr);
  ::sigaction(SIGABRT, &sa, nullptr);
  ::sigaction(SIGBUS, &sa, nullptr);
}

void FlightRecorder::dump_ring_unlocked(const Ring& ring, int fd,
                                        size_t max_per_ring) const {
  const uint64_t seq = ring.seq.load(std::memory_order_acquire);
  const size_t held = static_cast<size_t>(
      std::min<uint64_t>(seq, kRingCapacity));
  const size_t count = std::min(held, max_per_ring);
  for (size_t i = 0; i < count; ++i) {
    const FlightEvent& ev =
        ring.slots[(seq - count + i) % kRingCapacity];
    char line[256];
    size_t pos = 0;
    pos = append_str(line, sizeof(line), pos, "  t_ns=");
    pos = append_u64(line, sizeof(line), pos, ev.t_ns);
    pos = append_str(line, sizeof(line), pos, " type=");
    pos = append_str(line, sizeof(line), pos,
                     flight_event_type_name(
                         static_cast<FlightEventType>(ev.type)));
    pos = append_str(line, sizeof(line), pos, " tag=");
    pos = append_str(line, sizeof(line), pos, ev.tag);
    pos = append_str(line, sizeof(line), pos, " tier=");
    pos = append_u64(line, sizeof(line), pos, ev.tier);
    pos = append_str(line, sizeof(line), pos, " trace=");
    pos = append_hex64(line, sizeof(line), pos, ev.trace_id);
    pos = append_str(line, sizeof(line), pos, " detail=");
    pos = append_u64(line, sizeof(line), pos, ev.detail);
    pos = append_str(line, sizeof(line), pos, " a=");
    pos = append_u64(line, sizeof(line), pos, ev.a);
    pos = append_str(line, sizeof(line), pos, " b=");
    pos = append_u64(line, sizeof(line), pos, ev.b);
    pos = append_str(line, sizeof(line), pos, "\n");
    write_all(fd, line, pos);
  }
}

void FlightRecorder::dump_to_fd(int fd, size_t max_per_ring) const {
  write_all(fd, g_crash_banner, std::strlen(g_crash_banner));
  const size_t n = num_rings_.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    const Ring* ring = rings_[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    char head[64];
    size_t pos = 0;
    pos = append_str(head, sizeof(head), pos, "ring ");
    pos = append_u64(head, sizeof(head), pos, i);
    pos = append_str(head, sizeof(head), pos, " events=");
    pos = append_u64(head, sizeof(head), pos,
                     ring->seq.load(std::memory_order_acquire));
    pos = append_str(head, sizeof(head), pos, ":\n");
    write_all(fd, head, pos);
    dump_ring_unlocked(*ring, fd, max_per_ring);
  }
  const char* tail = "==== END FLIGHT RECORDER DUMP ====\n";
  write_all(fd, tail, std::strlen(tail));
}

}  // namespace fqbert::serve
