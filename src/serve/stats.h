// Serving-side metrics: admission counters, latency quantiles and batch
// occupancy. One collector is shared by the queue, the batcher and the
// worker pool; everything is mutex-guarded and cheap enough to sit on
// the request path.
//
// Latency samples live in a bounded sliding window (default 64Ki
// samples, configurable per collector), so a server that stays up for
// millions of requests holds O(window) memory and report() costs
// O(window log window) regardless of history length. The tradeoff:
// percentiles describe the most recent `latency_window` completions
// rather than all-time history — for a long-running server that is
// usually the more useful number anyway (it tracks current load), but
// max_ms is likewise windowed. Counters (admitted / completed / failed /
// timed out / rejected) remain exact over the full lifetime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace fqbert::serve {

class ServeStats {
 public:
  static constexpr size_t kDefaultLatencyWindow = 1 << 16;

  explicit ServeStats(size_t latency_window = kDefaultLatencyWindow)
      : latency_window_(latency_window > 0 ? latency_window : 1) {}

  struct Report {
    uint64_t admitted = 0;
    uint64_t rejected_full = 0;
    uint64_t rejected_deadline = 0;
    uint64_t rejected_invalid = 0;  // malformed for the target engine
    uint64_t rejected_closed = 0;   // submitted after shutdown
    uint64_t timed_out = 0;   // admitted but expired before execution
    uint64_t completed = 0;   // exact lifetime count (not windowed)
    uint64_t failed = 0;      // engine error or shutdown-failed
    uint64_t batches = 0;
    uint64_t latency_samples = 0;  // samples behind the percentiles
    double mean_batch_occupancy = 0.0;  // batched requests / batches
    double mean_queue_ms = 0.0;         // admission -> batch formation
    // Quantiles over the most recent latency_samples completions.
    double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0, max_ms = 0.0;

    double throughput_rps(double wall_s) const {
      return wall_s > 0.0 ? static_cast<double>(completed) / wall_s : 0.0;
    }

    /// Every admitted request reaches exactly one terminal state.
    bool accounting_balances() const {
      return admitted == completed + timed_out + failed;
    }
  };

  /// Merge per-replica reports into one shard-level view (the proxy's
  /// STATS fan-out): counters sum exactly (so the aggregate balances
  /// iff every part does); mean_queue_ms / mean_batch_occupancy are
  /// re-weighted by completions / batches; p50/p95/p99 are
  /// sample-weighted means of the replica percentiles — an
  /// approximation (exact shard-wide quantiles need a mergeable
  /// sketch; see ROADMAP) — and max_ms is the true max.
  static Report aggregate(const std::vector<Report>& parts);

  void record_admitted();
  void record_rejected_full();
  void record_rejected_deadline();
  void record_rejected_invalid();
  void record_rejected_closed();
  void record_timeout();
  /// Terminal failure of an *admitted* request: engine error while
  /// executing its batch, or failed by an abort-mode shutdown.
  void record_failure();
  void record_batch(size_t batch_size);
  void record_response(int64_t latency_us, int64_t queue_us);

  Report report() const;
  void reset();

 private:
  const size_t latency_window_;
  mutable std::mutex mu_;
  uint64_t admitted_ = 0, rejected_full_ = 0, rejected_deadline_ = 0;
  uint64_t rejected_invalid_ = 0, rejected_closed_ = 0;
  uint64_t timed_out_ = 0, failed_ = 0, batches_ = 0, batched_requests_ = 0;
  uint64_t completed_ = 0;
  int64_t queue_us_sum_ = 0;
  // Ring buffer of the last latency_window_ response latencies.
  std::vector<int64_t> latencies_us_;
  size_t latency_next_ = 0;
};

}  // namespace fqbert::serve
