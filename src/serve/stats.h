// Serving-side metrics: admission counters, latency quantiles and batch
// occupancy. One collector is shared by the queue, the batcher and the
// worker pool; everything is mutex-guarded and cheap enough to sit on
// the request path.
//
// Latency lives in a mergeable DDSketch-style quantile sketch (see
// quantile_sketch.h): O(log-range) memory regardless of history length,
// every quantile within the sketch's relative error (default 1%) of the
// true lifetime quantile, and — the property the shard proxy's STATS
// fan-out relies on — merging per-replica sketches is bit-for-bit
// identical to sketching the pooled samples, so `aggregate` yields
// exact shard-wide quantiles instead of sample-weighted guesses.
// Counters (admitted / completed / failed / timed out / rejected)
// remain exact over the full lifetime, as does max_ms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "platform/thread_annotations.h"
#include "serve/quantile_sketch.h"

namespace fqbert::serve {

class ServeStats {
 public:
  explicit ServeStats(double alpha = QuantileSketch::kDefaultAlpha)
      : latencies_us_(alpha) {}

  struct Report {
    uint64_t admitted = 0;
    uint64_t rejected_full = 0;
    uint64_t rejected_deadline = 0;
    uint64_t rejected_invalid = 0;  // malformed for the target engine
    uint64_t rejected_closed = 0;   // submitted after shutdown
    uint64_t timed_out = 0;   // admitted but expired before execution
    uint64_t completed = 0;   // exact lifetime count (not windowed)
    uint64_t failed = 0;      // engine error or shutdown-failed
    uint64_t batches = 0;
    uint64_t latency_samples = 0;  // lifetime samples behind the sketch
    double mean_batch_occupancy = 0.0;  // batched requests / batches
    double mean_queue_ms = 0.0;         // admission -> batch formation
    // Lifetime quantiles, within the sketch's relative error.
    double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0, p999_ms = 0.0;
    double max_ms = 0.0;  // exact, not bucket-rounded
    // The sketch the quantiles came from; carried so aggregate() can
    // merge exactly and the v3 STATS wire format can ship it. A report
    // decoded from a v1/v2 peer has an empty sketch but non-zero
    // quantile fields.
    QuantileSketch latency_sketch;

    double throughput_rps(double wall_s) const {
      return wall_s > 0.0 ? static_cast<double>(completed) / wall_s : 0.0;
    }

    /// Every admitted request reaches exactly one terminal state.
    bool accounting_balances() const {
      return admitted == completed + timed_out + failed;
    }
  };

  /// Merge per-replica reports into one shard-level view (the proxy's
  /// STATS fan-out): counters sum exactly (so the aggregate balances
  /// iff every part does); mean_queue_ms / mean_batch_occupancy are
  /// re-weighted by completions / batches; quantiles come from the
  /// MERGED latency sketches, so they are exactly what a single
  /// collector over the pooled samples would report. Parts whose
  /// sketch is empty but that claim samples (reports decoded from a
  /// pre-sketch wire peer) degrade those quantiles to the old
  /// sample-weighted mean, flagged by latency_samples exceeding the
  /// merged sketch count.
  static Report aggregate(const std::vector<Report>& parts);

  void record_admitted();
  void record_rejected_full();
  void record_rejected_deadline();
  void record_rejected_invalid();
  void record_rejected_closed();
  void record_timeout();
  /// Terminal failure of an *admitted* request: engine error while
  /// executing its batch, or failed by an abort-mode shutdown.
  void record_failure();
  void record_batch(size_t batch_size);
  void record_response(int64_t latency_us, int64_t queue_us);

  Report report() const;
  void reset();

 private:
  mutable Mutex mu_;
  uint64_t admitted_ GUARDED_BY(mu_) = 0;
  uint64_t rejected_full_ GUARDED_BY(mu_) = 0;
  uint64_t rejected_deadline_ GUARDED_BY(mu_) = 0;
  uint64_t rejected_invalid_ GUARDED_BY(mu_) = 0;
  uint64_t rejected_closed_ GUARDED_BY(mu_) = 0;
  uint64_t timed_out_ GUARDED_BY(mu_) = 0;
  uint64_t failed_ GUARDED_BY(mu_) = 0;
  uint64_t batches_ GUARDED_BY(mu_) = 0;
  uint64_t batched_requests_ GUARDED_BY(mu_) = 0;
  uint64_t completed_ GUARDED_BY(mu_) = 0;
  int64_t queue_us_sum_ GUARDED_BY(mu_) = 0;
  QuantileSketch latencies_us_ GUARDED_BY(mu_);
};

}  // namespace fqbert::serve
