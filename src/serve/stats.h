// Serving-side metrics: admission counters, latency quantiles and batch
// occupancy. One collector is shared by the queue, the batcher and the
// worker pool; everything is mutex-guarded and cheap enough to sit on
// the request path.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace fqbert::serve {

class ServeStats {
 public:
  struct Report {
    uint64_t admitted = 0;
    uint64_t rejected_full = 0;
    uint64_t rejected_deadline = 0;
    uint64_t timed_out = 0;   // admitted but expired before execution
    uint64_t completed = 0;
    uint64_t batches = 0;
    double mean_batch_occupancy = 0.0;  // completed / batches
    double mean_queue_ms = 0.0;         // admission -> batch formation
    double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0, max_ms = 0.0;

    double throughput_rps(double wall_s) const {
      return wall_s > 0.0 ? static_cast<double>(completed) / wall_s : 0.0;
    }
  };

  void record_admitted();
  void record_rejected_full();
  void record_rejected_deadline();
  void record_timeout();
  void record_batch(size_t batch_size);
  void record_response(int64_t latency_us, int64_t queue_us);

  Report report() const;
  void reset();

 private:
  mutable std::mutex mu_;
  uint64_t admitted_ = 0, rejected_full_ = 0, rejected_deadline_ = 0;
  uint64_t timed_out_ = 0, batches_ = 0, batched_requests_ = 0;
  int64_t queue_us_sum_ = 0;
  std::vector<int64_t> latencies_us_;
};

}  // namespace fqbert::serve
