// FlightRecorder: an always-on, in-process black box for the serving
// stack. Every layer appends typed, fixed-size binary events (request
// admitted/rejected/timed-out, batch formed, worker start/end, queue
// high-watermarks, hot LOAD/UNLOAD lifecycle, proxy health transitions
// and failover retries) into a fixed-capacity per-thread ring journal.
// Events are stamped with a CLOCK_MONOTONIC nanosecond timestamp —
// machine-wide comparable, so a proxy's journal and its backends'
// journals merge into one timeline on the same host — and carry the
// wire trace id, so journal entries join against v3/v4 traces.
//
// Design constraints, in order:
//   * recording must be cheap enough to never turn off: one
//     thread-local lookup, one uncontended per-thread mutex, one
//     clock_gettime, a fixed-size slot write. bench_flight_recorder
//     FAILS a Release build where this costs > 100 ns/event or moves
//     serve p50 by > 2%.
//   * lock-light, not lock-free: each ring's mutex is only ever
//     contended by a snapshot (rare: a /debug scrape, a DUMP_EVENTS
//     frame), so the write path pays an uncontended futex. This keeps
//     the whole structure inside PR 7's Clang thread-safety regime
//     (GUARDED_BY on the slots, provable at compile time) instead of
//     a seqlock TSan cannot vouch for.
//   * crash-safe: install_crash_handler() arms SIGSEGV/SIGABRT/SIGBUS
//     to async-signal-safely dump the last events and the build info
//     to stderr (write(2) + preformatted buffers only, no locks, no
//     allocation) before re-raising, turning any crash into a
//     postmortem artifact.
//
// Rings are claimed by threads on first record() and released (but
// never freed or cleared) at thread exit, so a dead worker's last
// events stay visible to snapshots and a new thread reuses the slot —
// memory is bounded by peak thread concurrency, not thread churn.
#pragma once

#include <atomic>
#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "platform/thread_annotations.h"
#include "serve/trace.h"

namespace fqbert::serve {

/// Journal event types. Appended-only (values travel in kEventDump
/// frames as u8); kLastFlightEventType gates hostile decodes.
enum class FlightEventType : uint8_t {
  kRequestAdmitted = 0,   // a=queue depth after admit
  kRequestRejected = 1,   // detail=RequestStatus code
  kRequestTimedOut = 2,   // expired in queue; b=age us
  kBatchFormed = 3,       // a=batch size, detail=seq bucket, b=wait us
  kWorkerStart = 4,       // a=batch size
  kWorkerEnd = 5,         // a=batch size, b=compute us
  kQueueHighWatermark = 6,  // b=new high-watermark depth
  kModelLoaded = 7,       // hot LOAD: tag=model, tier
  kModelUnloaded = 8,     // hot UNLOAD issued: tag=model, tier
  kLaneDrained = 9,       // retire drain completed; b=drain wait us
  kHealthTransition = 10,  // tag=backend, detail=(from<<4)|to BackendState
  kFailoverRetry = 11,    // tag=next backend, detail=attempt number
  kPlacementChanged = 12,  // tag=model or "", b=new placement epoch
  kBackendAdded = 13,     // tag=backend address, b=new placement epoch
  kBackendRemoved = 14,   // tag=backend address, b=new placement epoch
};
inline constexpr uint8_t kLastFlightEventType =
    static_cast<uint8_t>(FlightEventType::kBackendRemoved);

/// Stable short name ("admitted", "batch_formed", ...) for JSON, the
/// CLI and the crash dump. Returns a static string; async-signal-safe.
const char* flight_event_type_name(FlightEventType type);

/// One journal entry. Fixed-size POD so a ring slot write is a plain
/// member-wise copy; `tag` is the model name or backend address,
/// truncated and NUL-terminated.
struct FlightEvent {
  uint64_t t_ns = 0;      // CLOCK_MONOTONIC, comparable across processes
  uint64_t trace_id = 0;  // joins wire traces; 0 = untraced
  uint8_t type = 0;       // FlightEventType
  uint8_t tier = 0;       // weight_bits, 0 = default/none
  uint16_t detail = 0;    // type-specific small code (see enum)
  uint32_t a = 0;         // type-specific count
  uint64_t b = 0;         // type-specific value
  char tag[24] = {};      // model / backend, truncated, NUL-terminated
};

/// A retained slow-request exemplar: the full per-stage breakdown of a
/// completed request whose latency cleared the slow threshold, kept in
/// a bounded top-K (slowest-first) store.
struct SlowExemplar {
  uint64_t trace_id = 0;
  int64_t latency_us = 0;
  uint8_t tier = 0;
  std::string model;
  std::vector<TraceEvent> stages;  // relative us since admission
};

/// CLOCK_MONOTONIC now, in nanoseconds. Async-signal-safe.
uint64_t flight_now_ns();

class FlightRecorder {
 public:
  static constexpr size_t kRingCapacity = 1024;  // events per thread
  static constexpr size_t kMaxRings = 256;       // peak thread bound
  static constexpr size_t kSlowK = 16;           // retained exemplars
  static constexpr size_t kDefaultSnapshotMax = 4096;

  /// The process-wide journal. First call constructs it (and formats
  /// the crash banner); never destroyed.
  static FlightRecorder& instance();

  /// Append one event to the calling thread's ring. Safe from any
  /// thread, including while holding serving-stack locks (the ring
  /// mutex is a leaf). `tag` is truncated to fit the slot.
  void record(FlightEventType type, std::string_view tag,
              uint64_t trace_id = 0, uint8_t tier = 0, uint16_t detail = 0,
              uint32_t a = 0, uint64_t b = 0);

  /// Merge every ring into one timestamp-ordered view of events with
  /// t_ns >= since_ns, keeping at most the `max_events` most recent.
  std::vector<FlightEvent> snapshot(
      uint64_t since_ns = 0, size_t max_events = kDefaultSnapshotMax) const;

  /// Cheap pre-check for the exemplar store: true when a completed
  /// request of this latency would be retained (clears the threshold
  /// and the current top-K floor). Lets the worker skip building the
  /// stage vector for the common fast request.
  bool slow_candidate(int64_t latency_us) const;

  /// Retain a completed slow request. Inserted at most once per call;
  /// evicts the fastest retained exemplar once kSlowK are held.
  void note_slow(const std::string& model, uint8_t tier, uint64_t trace_id,
                 int64_t latency_us, std::vector<TraceEvent> stages);

  /// Slowest-first copy of the retained exemplars.
  std::vector<SlowExemplar> slow_exemplars() const;

  /// Requests at or above this latency are exemplar candidates.
  /// Default 0: every completed request competes and the store keeps
  /// the K slowest — so /debug/slow is non-empty on any live server.
  void set_slow_threshold_us(int64_t threshold_us);
  int64_t slow_threshold_us() const;

  /// Drop every retained exemplar (test isolation; the journal itself
  /// is never cleared).
  void clear_slow_exemplars();

  /// A/B switch for bench_flight_recorder only — production keeps the
  /// recorder always on. Disabled record() is a single relaxed load.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Arm SIGSEGV/SIGABRT/SIGBUS to dump the journal tail + build info
  /// to stderr and re-raise with default disposition. Idempotent.
  void install_crash_handler();

  /// Write the crash-dump format (banner, build info, the last
  /// `max_per_ring` events of every ring) to `fd`. Async-signal-safe:
  /// write(2) and integer formatting only, no locks taken — under a
  /// live writer the tail slot may be torn, which a postmortem
  /// tolerates and no test exercises concurrently.
  void dump_to_fd(int fd, size_t max_per_ring = 64) const;

 private:
  struct Ring {
    mutable Mutex mu;
    std::array<FlightEvent, kRingCapacity> slots GUARDED_BY(mu);
    /// Events ever appended; next write lands at seq % kRingCapacity.
    /// Atomic so the crash dump can read it lock-free.
    std::atomic<uint64_t> seq{0};
    std::atomic<bool> claimed{false};
  };

  FlightRecorder();
  ~FlightRecorder() = delete;  // process-lifetime singleton

  Ring* claim_ring();
  void copy_ring(const Ring& ring, uint64_t since_ns,
                 std::vector<FlightEvent>* out) const;
  void dump_ring_unlocked(const Ring& ring, int fd,
                          size_t max_per_ring) const
      NO_THREAD_SAFETY_ANALYSIS;

  /// Append-only registry: slots are published with a release store at
  /// num_rings_, never moved or freed, so the signal handler can walk
  /// them without a lock.
  std::array<std::atomic<Ring*>, kMaxRings> rings_{};
  std::atomic<size_t> num_rings_{0};
  Mutex claim_mu_;  // serializes ring claim/reuse, not recording

  mutable Mutex slow_mu_;
  std::vector<SlowExemplar> slow_ GUARDED_BY(slow_mu_);  // latency desc
  std::atomic<int64_t> slow_threshold_us_{0};
  /// Latency of the fastest retained exemplar once the store is full;
  /// below it a candidate cannot place (relaxed pre-check only).
  std::atomic<int64_t> slow_floor_us_{0};

  std::atomic<bool> enabled_{true};

  friend struct FlightRecorderTestPeer;
};

}  // namespace fqbert::serve
