#include "serve/debug_text.h"

#include <algorithm>
#include <cstdio>

#include "serve/router/model_router.h"
#include "serve/shard/shard_proxy.h"

namespace fqbert::serve {

namespace {

void append_u64_field(std::string& out, const char* key, uint64_t v,
                      bool first = false) {
  if (!first) out += ',';
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(v);
}

void append_str_field(std::string& out, const char* key,
                      std::string_view v, bool first = false) {
  if (!first) out += ',';
  out += '"';
  out += key;
  out += "\":\"";
  out += json_escape(v);
  out += '"';
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c) & 0xFF);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

uint64_t debug_query_u64(std::string_view query, std::string_view key,
                         uint64_t fallback) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string_view::npos) end = query.size();
    const std::string_view pair = query.substr(pos, end - pos);
    const size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      const std::string_view value = pair.substr(eq + 1);
      if (value.empty()) return fallback;
      uint64_t parsed = 0;
      for (const char c : value) {
        if (c < '0' || c > '9') return fallback;
        parsed = parsed * 10 + static_cast<uint64_t>(c - '0');
      }
      return parsed;
    }
    pos = end + 1;
  }
  return fallback;
}

std::string render_debug_events(const FlightRecorder& recorder,
                                uint64_t since_ns, size_t max_events) {
  const std::vector<FlightEvent> events =
      recorder.snapshot(since_ns, max_events);
  std::string out;
  out.reserve(events.size() * 160 + 64);
  out += "{\"now_ns\":";
  out += std::to_string(flight_now_ns());
  out += ",\"count\":";
  out += std::to_string(events.size());
  out += ",\"events\":[";
  bool first_event = true;
  for (const FlightEvent& ev : events) {
    if (!first_event) out += ',';
    first_event = false;
    out += '{';
    append_u64_field(out, "t_ns", ev.t_ns, /*first=*/true);
    append_str_field(out, "type",
                     flight_event_type_name(
                         static_cast<FlightEventType>(ev.type)));
    append_str_field(out, "tag", ev.tag);
    append_u64_field(out, "tier", ev.tier);
    // Decimal string: a u64 trace id does not survive a double.
    append_str_field(out, "trace_id", std::to_string(ev.trace_id));
    append_u64_field(out, "detail", ev.detail);
    append_u64_field(out, "a", ev.a);
    append_u64_field(out, "b", ev.b);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string render_debug_slow(const FlightRecorder& recorder) {
  const std::vector<SlowExemplar> exemplars = recorder.slow_exemplars();
  std::string out;
  out.reserve(exemplars.size() * 256 + 64);
  out += "{\"threshold_us\":";
  out += std::to_string(recorder.slow_threshold_us());
  out += ",\"exemplars\":[";
  bool first_ex = true;
  for (const SlowExemplar& ex : exemplars) {
    if (!first_ex) out += ',';
    first_ex = false;
    out += '{';
    append_str_field(out, "trace_id", std::to_string(ex.trace_id),
                     /*first=*/true);
    append_str_field(out, "model", ex.model);
    append_u64_field(out, "tier", ex.tier);
    out += ",\"latency_us\":";
    out += std::to_string(ex.latency_us);
    out += ",\"stages\":[";
    bool first_stage = true;
    for (const TraceEvent& stage : ex.stages) {
      if (!first_stage) out += ',';
      first_stage = false;
      out += "{\"stage\":\"";
      out += trace_stage_name(stage.stage);
      out += "\",\"t_us\":";
      out += std::to_string(stage.t_us);
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string render_debug_lanes(const ModelRouter& router) {
  const std::vector<ModelRouter::LaneDepth> lanes = router.queue_depths();
  std::string out;
  out.reserve(lanes.size() * 96 + 32);
  out += "{\"lanes\":[";
  bool first_lane = true;
  for (const ModelRouter::LaneDepth& lane : lanes) {
    if (!first_lane) out += ',';
    first_lane = false;
    out += '{';
    append_str_field(out, "model", lane.model, /*first=*/true);
    append_u64_field(out, "tier", lane.tier);
    out += ",\"depth\":";
    out += std::to_string(lane.depth);
    out += ",\"inflight\":";
    out += std::to_string(lane.inflight);
    out += ",\"high_watermark\":";
    out += std::to_string(lane.high_watermark);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string render_debug_placement(const shard::ShardProxy& proxy) {
  const net::WirePlacement placement = proxy.placement_view();
  std::string out;
  out.reserve(placement.backends.size() * 160 + 96);
  out += "{\"epoch\":";
  out += std::to_string(placement.epoch);
  append_str_field(out, "policy",
                   shard::placement_policy_name(
                       static_cast<shard::PlacementPolicy>(placement.policy)));
  append_str_field(out, "default_model", placement.default_model);
  out += ",\"backends\":[";
  bool first_backend = true;
  for (const net::WireBackendPlacement& backend : placement.backends) {
    if (!first_backend) out += ',';
    first_backend = false;
    out += '{';
    append_str_field(out, "address", backend.address, /*first=*/true);
    append_str_field(out, "state",
                     shard::backend_state_name(
                         static_cast<shard::BackendState>(backend.state)));
    out += ",\"models\":[";
    bool first_model = true;
    for (const net::WireModelEntry& cell : backend.models) {
      if (!first_model) out += ',';
      first_model = false;
      out += '{';
      append_str_field(out, "model", cell.name, /*first=*/true);
      append_u64_field(out, "tier", cell.tier);
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::vector<net::WireEvent> wire_events(const FlightRecorder& recorder,
                                        uint64_t since_ns,
                                        uint32_t max_events) {
  const size_t cap =
      max_events == 0
          ? FlightRecorder::kDefaultSnapshotMax
          : std::min<size_t>(max_events, net::kMaxDumpEvents);
  const std::vector<FlightEvent> events = recorder.snapshot(since_ns, cap);
  std::vector<net::WireEvent> out;
  out.reserve(events.size());
  for (const FlightEvent& ev : events) {
    net::WireEvent w;
    w.t_ns = ev.t_ns;
    w.trace_id = ev.trace_id;
    w.type = ev.type;
    w.tier = ev.tier;
    w.detail = ev.detail;
    w.a = ev.a;
    w.b = ev.b;
    w.tag = ev.tag;
    out.push_back(std::move(w));
  }
  return out;
}

}  // namespace fqbert::serve
