#include "serve/quantile_sketch.h"

#include <algorithm>
#include <cmath>

namespace fqbert::serve {

QuantileSketch::QuantileSketch(double alpha)
    : alpha_(alpha > 0.0 && alpha < 1.0 ? alpha : kDefaultAlpha) {
  log_gamma_ = std::log((1.0 + alpha_) / (1.0 - alpha_));
}

QuantileSketch QuantileSketch::from_parts(
    double alpha, uint64_t zero_count, int64_t max_us,
    const std::vector<std::pair<int32_t, uint64_t>>& buckets) {
  QuantileSketch s(alpha);
  s.zero_count_ = zero_count;
  s.count_ = zero_count;
  s.max_us_ = max_us;
  for (const auto& [index, cnt] : buckets) {
    if (cnt == 0) continue;
    s.buckets_[index] += cnt;
    s.count_ += cnt;
  }
  return s;
}

int32_t QuantileSketch::bucket_index(int64_t value_us) const {
  // value_us >= 1 here (non-positive goes to the zero bucket).
  return static_cast<int32_t>(
      std::ceil(std::log(static_cast<double>(value_us)) / log_gamma_));
}

int64_t QuantileSketch::bucket_value(int32_t index) const {
  // Geometric midpoint of (gamma^(i-1), gamma^i].
  const double v =
      std::exp((static_cast<double>(index) - 0.5) * log_gamma_);
  return static_cast<int64_t>(std::llround(v));
}

void QuantileSketch::record(int64_t value_us) {
  ++count_;
  max_us_ = std::max(max_us_, value_us);
  if (value_us <= 0) {
    ++zero_count_;
    return;
  }
  ++buckets_[bucket_index(value_us)];
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  max_us_ = std::max(max_us_, other.max_us_);
  if (alpha_ == other.alpha_) {
    zero_count_ += other.zero_count_;
    count_ += other.count_;
    for (const auto& [index, cnt] : other.buckets_) buckets_[index] += cnt;
    return;
  }
  // Mismatched alphas: re-bucket the other sketch's representative
  // values. Counts stay exact; the exact-merge guarantee does not.
  zero_count_ += other.zero_count_;
  count_ += other.zero_count_;
  for (const auto& [index, cnt] : other.buckets_) {
    buckets_[bucket_index(other.bucket_value(index))] += cnt;
    count_ += cnt;
  }
}

int64_t QuantileSketch::quantile_us(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  if (q >= 1.0) return max_us_;
  // Rank of the target sample among count_ values (0-based), zero
  // bucket first, then log buckets in increasing index order.
  const uint64_t rank = static_cast<uint64_t>(
      q * static_cast<double>(count_ - 1));
  if (rank < zero_count_) return 0;
  uint64_t seen = zero_count_;
  for (const auto& [index, cnt] : buckets_) {
    seen += cnt;
    if (rank < seen) return std::min(bucket_value(index), max_us_);
  }
  return max_us_;
}

void QuantileSketch::clear() {
  zero_count_ = 0;
  count_ = 0;
  max_us_ = 0;
  buckets_.clear();
}

}  // namespace fqbert::serve
