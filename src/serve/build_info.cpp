#include "serve/build_info.h"

namespace fqbert::serve {

#ifndef FQBERT_VERSION
#define FQBERT_VERSION "0.9.0"
#endif

#ifndef FQBERT_GIT_SHA
#define FQBERT_GIT_SHA "unknown"
#endif

const char* build_version() { return FQBERT_VERSION; }

const char* build_git_sha() { return FQBERT_GIT_SHA; }

const char* build_compiler() {
#if defined(__clang_major__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

const char* build_sanitizer() {
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
  return "address";
#elif __has_feature(thread_sanitizer)
  return "thread";
#endif
#endif
#if defined(__SANITIZE_ADDRESS__)
  return "address";
#elif defined(__SANITIZE_THREAD__)
  return "thread";
#else
  return "none";
#endif
}

std::string build_info_string() {
  std::string out;
  out += "version=";
  out += build_version();
  out += " git_sha=";
  out += build_git_sha();
  out += " compiler=";
  out += build_compiler();
  out += " sanitizer=";
  out += build_sanitizer();
  return out;
}

}  // namespace fqbert::serve
