// InferenceServer: the serving facade. Wires a RequestQueue (deadline-
// aware admission) -> DynamicBatcher (seq-length bucketing, max-batch /
// max-wait flush) -> EnginePool (N workers sharing the one immutable
// engine from the EngineRegistry), with a ServeStats collector across
// all stages.
//
//   EngineRegistry registry;
//   registry.register_file("sst2", "fq.bin");
//   InferenceServer server(registry, "sst2", cfg);
//   server.start();
//   auto fut = server.submit(example, std::chrono::milliseconds(50));
//   ServeResponse r = fut.get();   // r.predicted, r.latency_us, ...
//   server.shutdown(/*drain=*/true);
#pragma once

#include <atomic>

#include "serve/engine_pool.h"
#include "serve/engine_registry.h"

namespace fqbert::serve {

struct ServerConfig {
  int num_workers = 2;
  RequestQueueConfig queue;
  BatcherConfig batcher;
};

/// True when `ex` is well-formed for an engine of shape `cfg`
/// (non-empty, within max_seq_len, ids in range, segments aligned).
/// Shared by InferenceServer and ModelRouter admission.
bool example_valid_for(const nn::Example& ex, const nn::BertConfig& cfg);

class InferenceServer {
 public:
  InferenceServer(EngineRegistry& registry, std::string engine_name,
                  const ServerConfig& cfg = {});
  ~InferenceServer();

  /// Resolve the shared engine and spawn the workers (all workers share
  /// the registry's one immutable instance — forward_batch is
  /// reentrant-const, so per-worker weight replicas would only multiply
  /// memory). False when the engine name cannot be resolved.
  bool start();

  /// Enqueue one example. The returned future always completes; on
  /// rejection (queue full, dead-on-arrival deadline, or an example
  /// that is malformed for this engine) it carries the kRejected*
  /// status immediately. `deadline_budget` is the wall-time budget
  /// from now; requests that exceed it in the queue are failed with
  /// kTimedOut. `admit` (optional) receives the admission verdict.
  std::future<ServeResponse> submit(nn::Example example,
                                    std::optional<Micros> deadline_budget =
                                        std::nullopt,
                                    AdmitResult* admit = nullptr);

  /// Stop the server. drain=true completes everything already admitted;
  /// drain=false fails pending requests with kShutdown. Idempotent.
  void shutdown(bool drain = true);

  ServeStats& stats() { return stats_; }
  const ServerConfig& config() const { return cfg_; }
  /// Shape of the engine this server runs (valid after start()); the
  /// network transport advertises it so remote clients can synthesize
  /// well-formed examples without the engine file.
  const nn::BertConfig& model_config() const { return model_config_; }
  size_t num_workers() const { return pool_.num_workers(); }
  bool running() const { return started_ && !stopped_; }
  /// Seconds from start() to now (or to shutdown once stopped).
  double uptime_s() const;

 private:
  EngineRegistry& registry_;
  std::string engine_name_;
  ServerConfig cfg_;
  ServeStats stats_;
  RequestQueue queue_;
  DynamicBatcher batcher_;
  EnginePool pool_;
  nn::BertConfig model_config_{};  // set by start()
  std::atomic<uint64_t> next_id_{1};
  // Nanosecond timestamps (atomic: uptime_s() races with shutdown()).
  std::atomic<int64_t> start_ns_{0};
  std::atomic<int64_t> stop_ns_{0};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
};

}  // namespace fqbert::serve
