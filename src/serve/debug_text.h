// JSON renderers for the /debug introspection plane served by
// MetricsHttpServer, plus the FlightEvent -> wire conversion shared by
// the transport's and the proxy's DUMP_EVENTS handlers. Like the
// Prometheus renderers in metrics_text.h these are pure functions of a
// snapshot: dependency-free string building, safe to call from the
// metrics listener thread while the serving stack runs hot.
//
//   /debug/events?since_ns=N&max=K  recent journal events, oldest first
//   /debug/slow                     retained slow-request exemplars with
//                                   full per-stage trace breakdowns
//   /debug/lanes                    per-(model,tier) queue depth /
//                                   inflight / high-watermark snapshot
//   /debug/placement                shard proxy only: placement epoch,
//                                   policy, and per-backend assignments
//                                   with live health state
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/flight_recorder.h"
#include "serve/net/frame.h"

namespace fqbert::serve {

class ModelRouter;

namespace shard {
class ShardProxy;
}  // namespace shard

/// {"now_ns":...,"events":[...]} — events with t_ns >= since_ns, at
/// most max_events most recent, timestamp order. Trace ids are decimal
/// strings (u64 does not survive an IEEE double).
std::string render_debug_events(const FlightRecorder& recorder,
                                uint64_t since_ns, size_t max_events);

/// {"threshold_us":...,"exemplars":[...]} — slowest first, each with
/// its per-stage relative-microsecond breakdown.
std::string render_debug_slow(const FlightRecorder& recorder);

/// {"lanes":[...]} — one entry per live (model, tier) lane: current
/// queue depth, in-flight batch count, and the lifetime queue-depth
/// high-watermark.
std::string render_debug_lanes(const ModelRouter& router);

/// {"epoch":...,"policy":"...","default_model":"...","backends":[...]}
/// — the proxy's current placement generation: every member backend in
/// join order with its live health state and (model, tier) cells.
std::string render_debug_placement(const shard::ShardProxy& proxy);

/// Journal snapshot in wire form for a kEventDump response.
/// max_events == 0 means the default snapshot cap.
std::vector<net::WireEvent> wire_events(const FlightRecorder& recorder,
                                        uint64_t since_ns,
                                        uint32_t max_events);

/// Parse `key` out of an HTTP query string ("a=1&b=2"); `fallback`
/// when absent or malformed.
uint64_t debug_query_u64(std::string_view query, std::string_view key,
                         uint64_t fallback);

/// Minimal JSON string escaping (quotes, backslash, control chars) for
/// model names and tags that came from CLI input.
std::string json_escape(std::string_view s);

}  // namespace fqbert::serve
