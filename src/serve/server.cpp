#include "serve/server.h"

#include <algorithm>

namespace fqbert::serve {

namespace {

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

}  // namespace

InferenceServer::InferenceServer(EngineRegistry& registry,
                                 std::string engine_name,
                                 const ServerConfig& cfg)
    : registry_(registry),
      engine_name_(std::move(engine_name)),
      cfg_(cfg),
      queue_(cfg.queue),
      batcher_(queue_, cfg.batcher, &stats_),
      pool_(batcher_, stats_) {}

InferenceServer::~InferenceServer() { shutdown(/*drain=*/true); }

bool InferenceServer::start() {
  if (started_) return true;
  std::shared_ptr<const core::FqBertModel> engine =
      registry_.get(engine_name_);
  if (!engine) return false;
  model_config_ = engine->config();
  // 0 workers would admit requests that are never served (futures
  // block forever); clamp like BatcherConfig clamps max_batch.
  pool_.start(std::move(engine), std::max(1, cfg_.num_workers));
  start_ns_ = now_ns();
  started_ = true;
  return true;
}

bool example_valid_for(const nn::Example& ex, const nn::BertConfig& cfg) {
  const int64_t len = static_cast<int64_t>(ex.tokens.size());
  if (len < 1 || len > cfg.max_seq_len) return false;
  if (ex.segments.size() != ex.tokens.size()) return false;
  for (const int32_t tok : ex.tokens)
    if (tok < 0 || tok >= cfg.vocab_size) return false;
  for (const int32_t seg : ex.segments)
    if (seg < 0 || seg >= cfg.num_segments) return false;
  return true;
}

std::future<ServeResponse> InferenceServer::submit(
    nn::Example example, std::optional<Micros> deadline_budget,
    AdmitResult* admit) {
  ServeRequest req;
  req.id = next_id_.fetch_add(1);
  req.example = std::move(example);
  req.enqueue_time = Clock::now();
  if (deadline_budget) req.deadline = req.enqueue_time + *deadline_budget;
  std::future<ServeResponse> fut = req.promise.get_future();

  // On any rejection the queue leaves `req` untouched (the move only
  // happens on kOk), so the promise below is still ours to fail.
  AdmitResult result = AdmitResult::kClosed;
  if (running()) {
    result = example_valid_for(req.example, model_config_)
                 ? queue_.submit(std::move(req))
                 : AdmitResult::kInvalidExample;
  }
  if (admit) *admit = result;

  ServeResponse resp;
  resp.request_id = req.id;
  switch (result) {
    case AdmitResult::kOk:
      stats_.record_admitted();
      return fut;
    case AdmitResult::kQueueFull:
      stats_.record_rejected_full();
      resp.status = RequestStatus::kRejectedQueueFull;
      break;
    case AdmitResult::kDeadlineExpired:
      stats_.record_rejected_deadline();
      resp.status = RequestStatus::kRejectedDeadline;
      break;
    case AdmitResult::kInvalidExample:
      stats_.record_rejected_invalid();
      resp.status = RequestStatus::kRejectedInvalid;
      break;
    case AdmitResult::kClosed:
      stats_.record_rejected_closed();
      resp.status = RequestStatus::kShutdown;
      break;
    case AdmitResult::kUnknownModel:  // router-only; unreachable here
      resp.status = RequestStatus::kRejectedUnknownModel;
      break;
    case AdmitResult::kUnknownTier:  // router-only; unreachable here
      resp.status = RequestStatus::kRejectedUnknownTier;
      break;
  }
  req.promise.set_value(std::move(resp));
  return fut;
}

void InferenceServer::shutdown(bool drain) {
  if (!started_ || stopped_.exchange(true)) return;
  // Abort mode: stop batch handout BEFORE waking the workers via
  // close(), then fail whatever is left only after they have exited —
  // otherwise a woken worker can force-drain the buckets and complete
  // requests this shutdown promised to fail (racy on multi-core).
  if (!drain) batcher_.abort();
  queue_.close();
  pool_.join();
  if (!drain) batcher_.fail_pending(RequestStatus::kShutdown);
  stop_ns_ = now_ns();
}

double InferenceServer::uptime_s() const {
  const int64_t start = start_ns_;
  if (start == 0) return 0.0;
  const int64_t stop = stop_ns_;
  const int64_t end = stop != 0 ? stop : now_ns();
  return static_cast<double>(end - start) / 1e9;
}

}  // namespace fqbert::serve
