#include "serve/loadgen.h"

#include <algorithm>
#include <thread>

namespace fqbert::serve {

nn::Example synth_example(Rng& rng, int64_t seq_len,
                          const nn::BertConfig& config) {
  const int64_t len =
      std::clamp<int64_t>(seq_len, 2, config.max_seq_len);
  nn::Example ex;
  ex.tokens.resize(static_cast<size_t>(len));
  ex.tokens[0] = 0;  // CLS anchor
  for (int64_t i = 1; i < len; ++i)
    ex.tokens[static_cast<size_t>(i)] =
        static_cast<int32_t>(rng.randint(1, config.vocab_size - 1));
  ex.segments.assign(static_cast<size_t>(len), 0);
  return ex;
}

LoadgenReport run_loadgen(InferenceServer& server,
                          const nn::BertConfig& engine_config,
                          const LoadgenConfig& cfg) {
  LoadgenReport report;
  std::mutex report_mu;

  const TimePoint t0 = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(cfg.num_clients));
  for (int c = 0; c < cfg.num_clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(cfg.seed * 7919 + static_cast<uint64_t>(c));
      uint64_t sent = 0, ok = 0, rejected = 0, timed_out = 0, failed = 0;
      for (int i = 0; i < cfg.requests_per_client; ++i) {
        const int64_t len = cfg.seq_len_mix.empty()
                                ? engine_config.max_seq_len
                                : rng.choice(cfg.seq_len_mix);
        nn::Example ex = synth_example(rng, len, engine_config);
        auto fut = server.submit(std::move(ex), cfg.deadline_budget);
        ++sent;
        const ServeResponse resp = fut.get();  // closed loop
        switch (resp.status) {
          case RequestStatus::kOk: ++ok; break;
          case RequestStatus::kRejectedQueueFull:
          case RequestStatus::kRejectedDeadline:
          case RequestStatus::kRejectedInvalid: ++rejected; break;
          case RequestStatus::kTimedOut: ++timed_out; break;
          case RequestStatus::kEngineError:
          case RequestStatus::kShutdown: ++failed; break;
        }
      }
      std::lock_guard<std::mutex> lock(report_mu);
      report.sent += sent;
      report.ok += ok;
      report.rejected += rejected;
      report.timed_out += timed_out;
      report.failed += failed;
    });
  }
  for (std::thread& t : clients) t.join();
  report.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  return report;
}

}  // namespace fqbert::serve
