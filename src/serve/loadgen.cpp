#include "serve/loadgen.h"

#include <algorithm>
#include <iterator>
#include <thread>

#include "platform/thread_annotations.h"
#include "serve/net/transport_client.h"

namespace fqbert::serve {

namespace {

/// Per-client tallies, merged into the shared report once per thread.
struct ClientTally {
  uint64_t sent = 0, ok = 0, rejected = 0, timed_out = 0, failed = 0;
  QuantileSketch latency_us;
  std::vector<TraceSample> traces;
  std::vector<RequestRecord> records;

  void count(RequestStatus status, int64_t wall_us) {
    switch (status) {
      case RequestStatus::kOk:
        ++ok;
        latency_us.record(wall_us);
        break;
      case RequestStatus::kRejectedQueueFull:
      case RequestStatus::kRejectedDeadline:
      case RequestStatus::kRejectedInvalid:
      case RequestStatus::kRejectedUnknownModel:
      case RequestStatus::kRejectedUnknownTier: ++rejected; break;
      case RequestStatus::kTimedOut: ++timed_out; break;
      case RequestStatus::kEngineError:
      case RequestStatus::kShutdown: ++failed; break;
    }
  }

  void merge_into(LoadgenReport& report, Mutex& mu) {
    MutexLock lock(mu);
    report.sent += sent;
    report.ok += ok;
    report.rejected += rejected;
    report.timed_out += timed_out;
    report.failed += failed;
    report.latency_us.merge(latency_us);
    report.traces.insert(report.traces.end(),
                         std::make_move_iterator(traces.begin()),
                         std::make_move_iterator(traces.end()));
    report.records.insert(report.records.end(),
                          std::make_move_iterator(records.begin()),
                          std::make_move_iterator(records.end()));
  }
};

int64_t us_since(TimePoint t0) {
  return std::chrono::duration_cast<Micros>(Clock::now() - t0).count();
}

int64_t pick_len(Rng& rng, const LoadgenConfig& cfg,
                 const nn::BertConfig& engine_config) {
  return cfg.seq_len_mix.empty() ? engine_config.max_seq_len
                                 : rng.choice(cfg.seq_len_mix);
}

}  // namespace

nn::Example synth_example(Rng& rng, int64_t seq_len,
                          const nn::BertConfig& config) {
  // Admission accepts [1, max_seq_len]; prefer >= 2 (a CLS anchor plus
  // at least one content token) when the engine allows it. The bounds
  // are ordered even for degenerate configs — std::clamp with lo > hi
  // and randint over an empty range are UB, not just wrong.
  const int64_t hi = std::max<int64_t>(1, config.max_seq_len);
  const int64_t lo = std::min<int64_t>(2, hi);
  const int64_t len = std::clamp<int64_t>(seq_len, lo, hi);
  nn::Example ex;
  ex.tokens.resize(static_cast<size_t>(len));
  ex.tokens[0] = 0;  // CLS anchor
  for (int64_t i = 1; i < len; ++i)
    ex.tokens[static_cast<size_t>(i)] =
        config.vocab_size > 1
            ? static_cast<int32_t>(rng.randint(1, config.vocab_size - 1))
            : 0;
  ex.segments.assign(static_cast<size_t>(len), 0);
  return ex;
}

LoadgenReport run_loadgen(InferenceServer& server,
                          const nn::BertConfig& engine_config,
                          const LoadgenConfig& cfg) {
  LoadgenReport report;
  Mutex report_mu;

  const TimePoint t0 = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(cfg.num_clients));
  for (int c = 0; c < cfg.num_clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(cfg.seed * 7919 + static_cast<uint64_t>(c));
      ClientTally tally;
      for (int i = 0; i < cfg.requests_per_client; ++i) {
        nn::Example ex =
            synth_example(rng, pick_len(rng, cfg, engine_config),
                          engine_config);
        const TimePoint sent_at = Clock::now();
        auto fut = server.submit(std::move(ex), cfg.deadline_budget);
        ++tally.sent;
        const ServeResponse resp = fut.get();  // closed loop
        const int64_t wall = us_since(sent_at);
        tally.count(resp.status, wall);
        if (cfg.collect_records)
          tally.records.push_back(
              {resp.trace_id, "", resp.tier, resp.status, wall, resp.trace});
      }
      tally.merge_into(report, report_mu);
    });
  }
  for (std::thread& t : clients) t.join();
  report.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  return report;
}

LoadgenReport run_loadgen_remote(const std::string& host, uint16_t port,
                                 const nn::BertConfig& engine_config,
                                 const LoadgenConfig& cfg) {
  return run_loadgen_remote(host, port,
                            {RemoteModelTarget{"", engine_config}}, cfg);
}

LoadgenReport run_loadgen_remote(
    const std::string& host, uint16_t port,
    const std::vector<RemoteModelTarget>& models, const LoadgenConfig& cfg) {
  LoadgenReport report;
  Mutex report_mu;
  if (models.empty()) return report;

  const TimePoint t0 = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(cfg.num_clients));
  for (int c = 0; c < cfg.num_clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(cfg.seed * 7919 + static_cast<uint64_t>(c));
      net::TransportClient client;
      ClientTally tally;
      for (int i = 0; i < cfg.requests_per_client; ++i) {
        ++tally.sent;
        // The model draw happens even on skipped iterations so the
        // request stream per model is reconnect-independent.
        const RemoteModelTarget& target =
            models.size() == 1
                ? models.front()
                : models[static_cast<size_t>(rng.randint(
                      0, static_cast<int64_t>(models.size()) - 1))];
        if (!client.connected() && !client.connect(host, port)) {
          ++tally.failed;
          if (cfg.collect_records)
            tally.records.push_back({0, target.name, target.tier,
                                     RequestStatus::kEngineError, 0, {}});
          continue;
        }
        const nn::Example ex =
            synth_example(rng, pick_len(rng, cfg, target.config),
                          target.config);
        // Every trace_every-th request per client carries a minted
        // trace id; its response comes back with per-stage timestamps.
        const bool traced =
            cfg.trace_every > 0 && i % cfg.trace_every == 0;
        const uint64_t trace_id = traced ? mint_trace_id() : 0;
        const TimePoint sent_at = Clock::now();
        const std::optional<ServeResponse> resp =
            client.call(ex, cfg.deadline_budget, target.name, trace_id,
                        target.tier);
        if (!resp) {
          // Transport failure; the client closed itself and the next
          // iteration reconnects.
          ++tally.failed;
          if (cfg.collect_records)
            tally.records.push_back({trace_id, target.name, target.tier,
                                     RequestStatus::kEngineError,
                                     us_since(sent_at),
                                     {}});
          continue;
        }
        const int64_t wall = us_since(sent_at);
        tally.count(resp->status, wall);
        if (traced && resp->trace_id != 0 && !resp->trace.empty())
          tally.traces.push_back({resp->trace_id, wall, resp->trace});
        if (cfg.collect_records)
          tally.records.push_back({resp->trace_id, target.name, resp->tier,
                                   resp->status, wall, resp->trace});
      }
      tally.merge_into(report, report_mu);
    });
  }
  for (std::thread& t : clients) t.join();
  report.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  return report;
}

}  // namespace fqbert::serve
