#include "serve/batcher.h"

#include <algorithm>
#include <cstring>

#include "serve/flight_recorder.h"

namespace fqbert::serve {

void DynamicBatcher::set_event_tag(std::string_view model, uint8_t tier) {
  const size_t n = std::min(model.size(), sizeof(event_tag_) - 1);
  // lint-wire: bounded copy into a process-local tag buffer, no wire data
  std::memcpy(event_tag_, model.data(), n);
  event_tag_[n] = '\0';
  event_tier_ = tier;
}

int64_t DynamicBatcher::bucket_of(int64_t seq_len) const {
  const int64_t g = std::max<int64_t>(1, cfg_.bucket_granularity);
  return (seq_len + g - 1) / g * g;
}

size_t DynamicBatcher::pending() const {
  MutexLock lock(mu_);
  return pending_;
}

void DynamicBatcher::pump_locked() {
  std::vector<ServeRequest> incoming;
  queue_.drain_into(incoming);
  const TimePoint now = Clock::now();
  for (ServeRequest& req : incoming) {
    if (req.expired(now)) {
      ServeResponse resp;
      resp.request_id = req.id;
      resp.tier = req.tier;
      resp.status = RequestStatus::kTimedOut;
      resp.latency_us = std::chrono::duration_cast<Micros>(
                            now - req.enqueue_time)
                            .count();
      const uint64_t age_us = static_cast<uint64_t>(resp.latency_us);
      req.promise.set_value(std::move(resp));
      if (stats_) stats_->record_timeout();
      FlightRecorder::instance().record(
          FlightEventType::kRequestTimedOut, event_tag_, req.trace_id,
          req.tier, 0, 0, age_us);
      continue;
    }
    buckets_[bucket_of(req.seq_len())].push_back(std::move(req));
    ++pending_;
  }
}

bool DynamicBatcher::pop_batch_locked(std::vector<ServeRequest>& out,
                                      TimePoint now, bool force,
                                      TimePoint* next_flush) {
  // A chosen bucket can drain entirely through expired deadlines, so
  // keep reselecting until a non-empty batch forms or nothing is due.
  for (;;) {
    *next_flush = TimePoint::max();

    // Priority 1: the bucket holding the globally oldest request, when
    // that request has exhausted its max_wait (or we are draining) —
    // checked before any full bucket so a minority-length request can
    // never starve behind a steady stream of popular lengths.
    // Priority 2: a full bucket (oldest front wins among full ones).
    auto chosen = buckets_.end();
    auto full = buckets_.end();
    auto oldest = buckets_.end();
    for (auto it = buckets_.begin(); it != buckets_.end(); ++it) {
      if (it->second.empty()) continue;
      const TimePoint front_t = it->second.front().enqueue_time;
      if (static_cast<int64_t>(it->second.size()) >= cfg_.max_batch &&
          (full == buckets_.end() ||
           front_t < full->second.front().enqueue_time))
        full = it;
      if (oldest == buckets_.end() ||
          front_t < oldest->second.front().enqueue_time)
        oldest = it;
    }
    if (oldest != buckets_.end()) {
      const TimePoint flush_at =
          oldest->second.front().enqueue_time + cfg_.max_wait;
      if (force || flush_at <= now) {
        chosen = oldest;
      } else {
        chosen = full;
        if (chosen == buckets_.end()) *next_flush = flush_at;
      }
    }
    if (chosen == buckets_.end()) return false;

    const int64_t bucket_key = chosen->first;
    std::deque<ServeRequest>& bucket = chosen->second;
    while (!bucket.empty() &&
           static_cast<int64_t>(out.size()) < cfg_.max_batch) {
      ServeRequest req = std::move(bucket.front());
      bucket.pop_front();
      --pending_;
      if (req.expired(now)) {
        ServeResponse resp;
        resp.request_id = req.id;
        resp.tier = req.tier;
        resp.status = RequestStatus::kTimedOut;
        resp.latency_us = std::chrono::duration_cast<Micros>(
                              now - req.enqueue_time)
                              .count();
        const uint64_t age_us = static_cast<uint64_t>(resp.latency_us);
        req.promise.set_value(std::move(resp));
        if (stats_) stats_->record_timeout();
        FlightRecorder::instance().record(
            FlightEventType::kRequestTimedOut, event_tag_, req.trace_id,
            req.tier, 0, 0, age_us);
        continue;
      }
      out.push_back(std::move(req));
    }
    if (bucket.empty()) buckets_.erase(chosen);
    if (!out.empty()) {
      // Journal the formed batch: size, bucket, and how long its oldest
      // request waited — the numbers a p99 postmortem starts from.
      uint64_t trace = 0;
      for (const ServeRequest& r : out)
        if (r.trace_id != 0) {
          trace = r.trace_id;
          break;
        }
      const int64_t wait_us = std::chrono::duration_cast<Micros>(
                                  now - out.front().enqueue_time)
                                  .count();
      FlightRecorder::instance().record(
          FlightEventType::kBatchFormed, event_tag_, trace, event_tier_,
          static_cast<uint16_t>(std::min<int64_t>(bucket_key, 0xFFFF)),
          static_cast<uint32_t>(out.size()),
          static_cast<uint64_t>(std::max<int64_t>(wait_us, 0)));
      return true;
    }
  }
}

void DynamicBatcher::abort() {
  MutexLock lock(mu_);
  aborted_ = true;
}

bool DynamicBatcher::next_batch(std::vector<ServeRequest>& out) {
  out.clear();
  for (;;) {
    // Read the closed flag *before* pumping: anything admitted before
    // close() is visible to the pump below, so a true value here plus
    // an empty pump means fully drained.
    const bool closed = queue_.closed();
    TimePoint next_flush = TimePoint::max();
    {
      MutexLock lock(mu_);
      // Aborting: pending work is fail_pending's to resolve, not ours.
      if (aborted_) return false;
      pump_locked();
      if (pop_batch_locked(out, Clock::now(), /*force=*/closed,
                           &next_flush))
        return true;
      if (closed && pending_ == 0) return false;
    }
    // Nothing ready: sleep until new work arrives or the earliest
    // max-wait flush comes due (bounded so a closed-flag race can
    // never park a worker forever).
    const TimePoint cap = Clock::now() + std::chrono::milliseconds(50);
    queue_.wait_until(std::min(next_flush, cap));
  }
}

DynamicBatcher::Poll DynamicBatcher::poll_batch(
    std::vector<ServeRequest>& out, TimePoint* next_flush) {
  out.clear();
  *next_flush = TimePoint::max();
  // Same closed-before-pump ordering as next_batch: anything admitted
  // before close() is visible to the pump, so closed + empty pump means
  // fully drained.
  const bool closed = queue_.closed();
  MutexLock lock(mu_);
  if (aborted_) return Poll::kDrained;  // fail_pending owns the rest
  pump_locked();
  if (pop_batch_locked(out, Clock::now(), /*force=*/closed, next_flush))
    return Poll::kBatch;
  return closed && pending_ == 0 ? Poll::kDrained : Poll::kIdle;
}

void DynamicBatcher::fail_pending(RequestStatus status) {
  MutexLock lock(mu_);
  pump_locked();
  const TimePoint now = Clock::now();
  for (auto& [len, bucket] : buckets_) {
    for (ServeRequest& req : bucket) {
      ServeResponse resp;
      resp.request_id = req.id;
      resp.tier = req.tier;
      resp.status = status;
      resp.latency_us = std::chrono::duration_cast<Micros>(
                            now - req.enqueue_time)
                            .count();
      req.promise.set_value(std::move(resp));
      // Shutdown-failed requests are terminal for admitted work: without
      // this, admitted != completed + timed_out + failed at shutdown.
      if (stats_) stats_->record_failure();
    }
    pending_ -= bucket.size();
  }
  buckets_.clear();
}

}  // namespace fqbert::serve
