#include "serve/engine_registry.h"

namespace fqbert::serve {

std::shared_ptr<const core::FqBertModel> EngineRegistry::bind(
    const std::string& name, int bits,
    std::shared_ptr<const core::FqBertModel> model, const std::string& path) {
  MutexLock lock(mu_);
  ModelEntry& me = entries_[name];
  if (me.tiers.empty()) me.default_bits = bits;
  std::shared_ptr<const core::FqBertModel> displaced;
  auto it = me.tiers.find(bits);
  if (it != me.tiers.end()) displaced = std::move(it->second.model);
  me.tiers[bits] = Entry{std::move(model), path};
  return displaced;
}

void EngineRegistry::register_model(
    const std::string& name, std::shared_ptr<const core::FqBertModel> model) {
  const int bits = model->quant_config().weight_bits;
  // A replaced engine's last reference may be dropped here, outside the
  // lock, so a multi-MB destructor never runs under the registry mutex.
  auto displaced = bind(name, bits, std::move(model), "");
}

bool EngineRegistry::register_file(const std::string& name,
                                   const std::string& path) {
  std::shared_ptr<const core::FqBertModel> proto;
  try {
    proto = std::make_shared<const core::FqBertModel>(
        core::FqBertModel::load_any(path));
  } catch (const std::exception&) {
    return false;
  }
  const int bits = proto->quant_config().weight_bits;
  auto displaced = bind(name, bits, std::move(proto), path);
  return true;
}

bool EngineRegistry::register_derived(const std::string& name, int bits) {
  std::shared_ptr<const core::FqBertModel> base = get(name);
  if (base == nullptr || bits < 2 || bits > 8) return false;
  std::shared_ptr<const core::FqBertModel> derived;
  try {
    derived = std::make_shared<const core::FqBertModel>(
        base->derive_tier(bits));
  } catch (const std::exception&) {
    return false;
  }
  auto displaced = bind(name, bits, std::move(derived), "");
  return true;
}

bool EngineRegistry::unregister(const std::string& name) {
  std::map<int, Entry> doomed;
  {
    MutexLock lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) return false;
    // The potentially last references are dropped outside the lock so
    // multi-MB engine destructors never run under the registry mutex.
    doomed = std::move(it->second.tiers);
    entries_.erase(it);
  }
  return true;
}

bool EngineRegistry::unregister_tier(const std::string& name, int bits) {
  std::shared_ptr<const core::FqBertModel> doomed;
  {
    MutexLock lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) return false;
    ModelEntry& me = it->second;
    auto tit = me.tiers.find(bits == 0 ? me.default_bits : bits);
    if (tit == me.tiers.end()) return false;
    doomed = std::move(tit->second.model);
    const int removed = tit->first;
    me.tiers.erase(tit);
    if (me.tiers.empty()) {
      entries_.erase(it);
    } else if (me.default_bits == removed) {
      me.default_bits = me.tiers.begin()->first;
    }
  }
  return true;
}

std::shared_ptr<const core::FqBertModel> EngineRegistry::get(
    const std::string& name, int bits) const {
  MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;
  const ModelEntry& me = it->second;
  auto tit = me.tiers.find(bits == 0 ? me.default_bits : bits);
  return tit == me.tiers.end() ? nullptr : tit->second.model;
}

int EngineRegistry::default_tier(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.default_bits;
}

std::vector<int> EngineRegistry::tiers(const std::string& name) const {
  MutexLock lock(mu_);
  std::vector<int> out;
  auto it = entries_.find(name);
  if (it == entries_.end()) return out;
  out.reserve(it->second.tiers.size());
  for (const auto& [bits, entry] : it->second.tiers) out.push_back(bits);
  return out;
}

std::string EngineRegistry::source_path(const std::string& name,
                                        int bits) const {
  MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return "";
  const ModelEntry& me = it->second;
  auto tit = me.tiers.find(bits == 0 ? me.default_bits : bits);
  return tit == me.tiers.end() ? "" : tit->second.path;
}

bool EngineRegistry::contains(const std::string& name) const {
  MutexLock lock(mu_);
  return entries_.count(name) > 0;
}

bool EngineRegistry::contains(const std::string& name, int bits) const {
  MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  return it->second.tiers.count(bits == 0 ? it->second.default_bits : bits) >
         0;
}

std::vector<std::string> EngineRegistry::names() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

}  // namespace fqbert::serve
