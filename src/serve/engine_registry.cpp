#include "serve/engine_registry.h"

namespace fqbert::serve {

void EngineRegistry::register_model(
    const std::string& name, std::shared_ptr<const core::FqBertModel> model) {
  MutexLock lock(mu_);
  entries_[name] = Entry{std::move(model), ""};
}

bool EngineRegistry::register_file(const std::string& name,
                                   const std::string& path) {
  std::shared_ptr<const core::FqBertModel> proto;
  try {
    proto = std::make_shared<const core::FqBertModel>(
        core::FqBertModel::load(path));
  } catch (const std::exception&) {
    return false;
  }
  MutexLock lock(mu_);
  entries_[name] = Entry{std::move(proto), path};
  return true;
}

bool EngineRegistry::unregister(const std::string& name) {
  std::shared_ptr<const core::FqBertModel> doomed;
  {
    MutexLock lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) return false;
    // The potentially last reference is dropped outside the lock so a
    // multi-MB engine destructor never runs under the registry mutex.
    doomed = std::move(it->second.model);
    entries_.erase(it);
  }
  return true;
}

std::shared_ptr<const core::FqBertModel> EngineRegistry::get(
    const std::string& name) const {
  MutexLock lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.model;
}

std::string EngineRegistry::source_path(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? "" : it->second.path;
}

bool EngineRegistry::contains(const std::string& name) const {
  MutexLock lock(mu_);
  return entries_.count(name) > 0;
}

std::vector<std::string> EngineRegistry::names() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

}  // namespace fqbert::serve
