// TransportClient: a small blocking client for the frame protocol.
// One connection, synchronous request/response (the closed-loop model
// the load generator uses); every decode is the same strict
// bounds-checked codec the server runs, so a misbehaving server cannot
// make the client read wild lengths either.
//
//   TransportClient client;                       // speaks protocol v2
//   client.set_timeouts(Micros(2'000'000), Micros(5'000'000));
//   if (!client.connect("127.0.0.1", port)) die(client.error());
//   auto info = client.query_info("sst2");        // engine shape
//   auto resp = client.call(example, Micros(5000), "sst2");
//   if (!resp) {
//     if (client.error_kind() == ClientError::kTimedOut) retry();
//     else die(client.error());                   // transport failure
//   }
//   // resp->status distinguishes serving-level rejection from success.
//   client.load_model("mnli", "mnli.bin");        // control plane
//
// A client constructed with protocol version 1 emits exactly the
// pre-router wire format (no model strings, no control frames) — used
// to prove old clients still get served on the default model.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "platform/thread_annotations.h"
#include "serve/net/frame.h"

namespace fqbert::serve::net {

/// Where a transport-level failure came from; kTimedOut distinguishes
/// an expired connect/receive timeout from a dead peer.
enum class ClientError {
  kNone,
  kConnect,   // resolution / connection establishment failed
  kTimedOut,  // connect or receive timeout expired
  kClosed,    // peer closed the connection
  kProtocol,  // malformed or unexpected frame from the server
  kIo,        // send/recv syscall error
};

class TransportClient {
 public:
  /// `protocol_version` pins the wire format (1 = legacy single-model
  /// frames; model arguments must then be empty and admin calls fail).
  explicit TransportClient(uint8_t protocol_version = kProtocolVersion)
      : version_(protocol_version) {}
  ~TransportClient();

  TransportClient(const TransportClient&) = delete;
  TransportClient& operator=(const TransportClient&) = delete;

  /// Bound the blocking syscalls. Zero (the default) means block
  /// forever, preserving the original behavior. The receive timeout
  /// bounds each WHOLE response frame (header + payload), measured from
  /// the first byte awaited: a peer that stalls — or trickles bytes to
  /// reset a naive per-recv() timer — cannot hold a call hostage past
  /// the budget. On expiry the call fails with ClientError::kTimedOut
  /// and the connection is closed immediately: a stream abandoned
  /// mid-frame is desynchronized, and reusing it would hand a later
  /// call stale payload bytes as a fresh header. Takes effect at the
  /// next connect().
  void set_timeouts(Micros connect_timeout, Micros recv_timeout) {
    connect_timeout_ = connect_timeout;
    recv_timeout_ = recv_timeout;
  }

  /// Connect to host:port (IPv4 literal or resolvable name, e.g.
  /// "localhost"). False on failure; see error().
  bool connect(const std::string& host, uint16_t port);
  void close();
  /// Half-close the socket from ANOTHER thread to abort a blocked
  /// send/recv (a proxy shutting down while a forward is in flight):
  /// the owner's blocked call fails promptly and closes the client as
  /// usual. Guarded against a concurrent close(), so a recycled
  /// descriptor number is never touched.
  void shutdown_socket();
  bool connected() const {
    return fd_.load(std::memory_order_acquire) >= 0;
  }

  /// Ask the server for the shape of `model` ("" = its default model).
  /// A nonzero `tier` (weight bits, v4 connections only) names one of
  /// its precision tiers; 0 = the model's default tier.
  std::optional<nn::BertConfig> query_info(const std::string& model = "",
                                           uint8_t tier = 0);

  /// One blocking inference round trip against `model` ("" = default).
  /// nullopt on *transport* failure (send/recv error, timeout, protocol
  /// violation, correlation mismatch — the connection is closed);
  /// serving-level failures come back as a ServeResponse with a non-kOk
  /// status (including kRejectedUnknownModel / kRejectedUnknownTier). A
  /// nonzero `trace_id` (mint_trace_id()) requests end-to-end tracing
  /// on a v3+ connection: the response's `trace` then carries per-stage
  /// timestamps. Ignored on a version-pinned v1/v2 client (no wire
  /// field to carry it). A nonzero `tier` (weight bits) asks for that
  /// precision tier of the model on a v4 connection; on older pinned
  /// versions it cannot travel and the call fails client-side.
  std::optional<ServeResponse> call(
      const nn::Example& example,
      std::optional<Micros> deadline_budget = std::nullopt,
      const std::string& model = "", uint64_t trace_id = 0,
      uint8_t tier = 0);

  // -------------------------------------------------------------------
  // Control plane (protocol v2). Each returns false / nullopt on
  // transport failure; admin-level failures (unknown model, unloadable
  // file) return false with the server's message in *message / error().
  // -------------------------------------------------------------------

  /// Hot-load a serialized engine file as `name` on the server. On a
  /// v4 connection a nonzero `tier` asks the server to serve the engine
  /// at that bit-width (deriving it when it differs from the file's
  /// native width); an empty `path` with nonzero `tier` mints the tier
  /// from the model's already-loaded default engine.
  bool load_model(const std::string& name, const std::string& path,
                  std::string* message = nullptr, uint8_t tier = 0);
  /// Hot-unload `name` (drains its lane(s) server-side before
  /// returning). Nonzero `tier` (v4) drains only that tier's lane; 0
  /// unloads every tier.
  bool unload_model(const std::string& name, std::string* message = nullptr,
                    uint8_t tier = 0);
  /// Names of every model currently served (deduplicated across tiers).
  std::optional<std::vector<std::string>> list_models();
  /// Every served (model, tier) row. On a pre-v4 connection tiers read
  /// 0 (the wire has no tier column).
  std::optional<std::vector<WireModelEntry>> list_models_tiered();
  /// Per-model serving stats ("" = default model; tier 0 = its default
  /// tier, nonzero = that tier's lane on a v4 connection).
  std::optional<WireStats> query_stats(const std::string& model = "",
                                       uint8_t tier = 0);
  /// Pull the server's flight-recorder journal: events with timestamp
  /// > `since_ns` (0 = everything retained), newest-biased, at most
  /// `max_events` rows (0 = the server's default cap). Through a proxy
  /// this fans out and merges every backend's journal with the proxy's
  /// own.
  std::optional<std::vector<WireEvent>> dump_events(uint64_t since_ns = 0,
                                                    uint32_t max_events = 0);

  // -------------------------------------------------------------------
  // Proxy-admin plane (protocol v5): mutate / inspect a shard proxy's
  // live placement table. Same failure rules as the v2 control plane —
  // in-band refusals come back as false with the proxy's message. A
  // plain backend refuses these ops in-band.
  // -------------------------------------------------------------------

  /// Register a new backend at host:port serving the given (model,
  /// tier) cells; the proxy health-checks it and flips the placement
  /// epoch on success.
  bool add_backend(const std::string& host, uint16_t port,
                   const std::vector<WireModelEntry>& models,
                   std::string* message = nullptr);
  /// Drain and retire the backend at `address` ("host:port"). The
  /// proxy flips the epoch first, waits out in-flight forwards, then
  /// retires its pooled connections — no request is dropped.
  bool remove_backend(const std::string& address,
                      std::string* message = nullptr);
  /// Zero-drop migration: LOAD (model, tier) on `to` (from `path`, or
  /// the target's already-loaded engine when empty), flip the epoch,
  /// drain the source, UNLOAD there. Blocks until the move completes.
  bool move_model(const std::string& model, uint8_t tier,
                  const std::string& from, const std::string& to,
                  const std::string& path = "",
                  std::string* message = nullptr);
  /// The proxy's current placement generation.
  std::optional<WirePlacement> get_placement();

  // -------------------------------------------------------------------
  // Raw frame I/O (shard proxy forwarding path): ship pre-encoded frame
  // bytes and receive one frame without interpreting its payload. The
  // same failure rules apply — any transport error (including a receive
  // timeout mid-frame) closes the connection.
  // -------------------------------------------------------------------

  /// Send one or more pre-encoded frames verbatim. The pointer flavor
  /// lets a proxy forward bytes straight out of its receive buffer
  /// without an intermediate copy.
  bool send_raw(const std::vector<uint8_t>& frames);
  bool send_raw(const uint8_t* data, size_t len);
  /// Receive exactly one frame of any type (header validated, payload
  /// bytes untouched), bounded by the whole-frame receive timeout.
  bool recv_raw(FrameHeader* hdr, std::vector<uint8_t>& payload);

  const std::string& error() const { return error_; }
  ClientError error_kind() const { return error_kind_; }
  uint8_t protocol_version() const { return version_; }

 private:
  /// Latch the "not connected" / "needs protocol v2" preconditions
  /// shared by every request method.
  bool require_connected(bool needs_v2);
  /// A wire string over its cap would be silently truncated by the
  /// encoder — and then name a DIFFERENT model/path server-side. Fail
  /// loudly client-side instead.
  bool require_str_fits(const std::string& value, uint32_t cap,
                        const char* what);
  /// A nonzero tier has no wire field before v4 (dropping it silently
  /// would serve the wrong precision) and must be a representable
  /// weight bit-width.
  bool require_tier_fits(uint8_t tier);
  /// Proxy-admin frames do not exist before v5; a version-pinned older
  /// client must fail loudly instead of emitting an alien type.
  bool require_v5(const char* what);
  /// Send an admin frame and decode the kAdminResponse round trip:
  /// true on ok=1; false with the server's message latched (and copied
  /// to *message) on an in-band failure or transport error.
  bool admin_roundtrip(const std::vector<uint8_t>& frame,
                       std::string* message);
  bool send_all(const std::vector<uint8_t>& bytes);
  bool send_all(const uint8_t* data, size_t len);
  /// Read exactly one frame (any type) into hdr/payload.
  bool recv_frame(FrameHeader* hdr, std::vector<uint8_t>& payload);
  /// Read one frame of `expect`ed type. When the server answers with an
  /// in-band kAdminResponse failure instead, returns false with
  /// kNone/kProtocol semantics controlled by `admin_failure`: the
  /// connection stays open and *admin_failure receives the message.
  bool recv_expected(FrameType expect, std::vector<uint8_t>& payload,
                     std::string* admin_failure = nullptr);
  bool fail(ClientError kind, const std::string& message);
  /// recv() bounded by `deadline` (the whole-frame budget; a default-
  /// constructed TimePoint means no bound). False on timeout/EOF/error;
  /// every failure closes the connection.
  bool recv_exact(uint8_t* out, size_t n, TimePoint deadline);

  /// Guards fd_ lifecycle transitions (connect/close) against a
  /// cross-thread shutdown_socket(), so a recycled descriptor number is
  /// never shut down. fd_ itself is atomic — NOT guarded — because the
  /// owner thread's send/recv loops read it lock-free while a failing
  /// call (or a concurrent shutdown_socket) races with close(); a plain
  /// int here is a TSan-visible data race.
  Mutex fd_mu_;
  std::atomic<int> fd_{-1};
  uint8_t version_ = kProtocolVersion;
  Micros connect_timeout_{0};
  Micros recv_timeout_{0};
  uint64_t next_correlation_ = 1;
  std::string error_;
  ClientError error_kind_ = ClientError::kNone;
};

}  // namespace fqbert::serve::net
