// TransportClient: a small blocking client for the frame protocol.
// One connection, synchronous request/response (the closed-loop model
// the load generator uses); every decode is the same strict
// bounds-checked codec the server runs, so a misbehaving server cannot
// make the client read wild lengths either.
//
//   TransportClient client;
//   if (!client.connect("127.0.0.1", port)) die(client.error());
//   auto info = client.query_info();              // engine shape
//   auto resp = client.call(example, Micros(5000));
//   if (!resp) die(client.error());               // transport failure
//   // resp->status distinguishes serving-level rejection from success.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/net/frame.h"

namespace fqbert::serve::net {

class TransportClient {
 public:
  TransportClient() = default;
  ~TransportClient();

  TransportClient(const TransportClient&) = delete;
  TransportClient& operator=(const TransportClient&) = delete;

  /// Connect to host:port (IPv4 literal or resolvable name, e.g.
  /// "localhost"). False on failure; see error().
  bool connect(const std::string& host, uint16_t port);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// Ask the server for the engine shape it serves.
  std::optional<nn::BertConfig> query_info();

  /// One blocking inference round trip. nullopt on *transport* failure
  /// (send/recv error, protocol violation, correlation mismatch — the
  /// connection is closed); serving-level failures come back as a
  /// ServeResponse with a non-kOk status.
  std::optional<ServeResponse> call(
      const nn::Example& example,
      std::optional<Micros> deadline_budget = std::nullopt);

  const std::string& error() const { return error_; }

 private:
  bool send_all(const std::vector<uint8_t>& bytes);
  /// Read exactly one frame of the expected type into `payload`.
  bool recv_frame(FrameType expect, std::vector<uint8_t>& payload);
  bool fail(const std::string& message);  // latch error, close, false

  int fd_ = -1;
  uint64_t next_correlation_ = 1;
  std::string error_;
};

}  // namespace fqbert::serve::net
