#include "serve/net/client_pool.h"

namespace fqbert::serve::net {

void ClientPool::Handle::discard() {
  if (pool_ != nullptr && client_ != nullptr) pool_->forget(client_.get());
  client_.reset();
  pool_ = nullptr;
}

void ClientPool::Handle::release() {
  if (pool_ != nullptr && client_ != nullptr)
    pool_->give_back(std::move(client_));
  client_.reset();
  pool_ = nullptr;
}

ClientPool::ClientPool(std::string host, uint16_t port,
                       const ClientPoolConfig& cfg)
    : host_(std::move(host)), port_(port), cfg_(cfg) {}

ClientPool::Handle ClientPool::checkout(std::string* error) {
  {
    MutexLock lock(mu_);
    if (closed_) {
      if (error != nullptr) *error = "pool is shut down";
      return Handle();
    }
    if (!idle_.empty()) {
      std::unique_ptr<TransportClient> client = std::move(idle_.back());
      idle_.pop_back();
      ++stats_.reused;
      outstanding_.insert(client.get());
      return Handle(this, std::move(client), /*reused=*/true);
    }
  }
  auto client = std::make_unique<TransportClient>(cfg_.protocol_version);
  client->set_timeouts(cfg_.connect_timeout, cfg_.recv_timeout);
  if (!client->connect(host_, port_)) {
    if (error != nullptr) *error = client->error();
    return Handle();
  }
  MutexLock lock(mu_);
  if (closed_) {
    // shutdown_all ran while we were dialing: this connection would
    // escape the sweep, so it must not be leased.
    if (error != nullptr) *error = "pool is shut down";
    return Handle();
  }
  ++stats_.created;
  outstanding_.insert(client.get());
  return Handle(this, std::move(client), /*reused=*/false);
}

void ClientPool::give_back(std::unique_ptr<TransportClient> client) {
  MutexLock lock(mu_);
  outstanding_.erase(client.get());
  // The reuse rule: only a connection whose last operation left the
  // stream aligned (connected, no transport-level error latched) may
  // serve another request. Everything else is already closed or
  // untrustworthy — drop it.
  if (client->connected() && client->error_kind() == ClientError::kNone &&
      idle_.size() < cfg_.capacity) {
    idle_.push_back(std::move(client));
    ++stats_.pooled;
  } else {
    ++stats_.discarded;
  }
}

void ClientPool::forget(TransportClient* client) {
  MutexLock lock(mu_);
  outstanding_.erase(client);
  ++stats_.discarded;
}

void ClientPool::clear() {
  MutexLock lock(mu_);
  idle_.clear();
}

void ClientPool::shutdown_all() {
  MutexLock lock(mu_);
  closed_ = true;
  for (const auto& client : idle_) client->shutdown_socket();
  for (TransportClient* client : outstanding_) client->shutdown_socket();
}

void ClientPool::reopen() {
  MutexLock lock(mu_);
  closed_ = false;
}

ClientPool::Stats ClientPool::stats() const {
  MutexLock lock(mu_);
  Stats s = stats_;
  s.idle = idle_.size();
  return s;
}

}  // namespace fqbert::serve::net
