#include "serve/net/frame.h"

#include <algorithm>
#include <cstring>

#include "serve/flight_recorder.h"

namespace fqbert::serve::net {

namespace {

// ---------------------------------------------------------------------------
// Little-endian primitives. Byte-at-a-time so the codec is independent
// of host endianness and alignment.
// ---------------------------------------------------------------------------

void put_u8(std::vector<uint8_t>& out, uint8_t v) { out.push_back(v); }

void put_u16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void put_u32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void put_i32(std::vector<uint8_t>& out, int32_t v) {
  put_u32(out, static_cast<uint32_t>(v));
}

void put_i64(std::vector<uint8_t>& out, int64_t v) {
  put_u64(out, static_cast<uint64_t>(v));
}

void put_f32(std::vector<uint8_t>& out, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u32(out, bits);
}

void put_f64(std::vector<uint8_t>& out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

/// u16 length + raw bytes. Callers must have validated the cap; encode
/// truncates defensively so a frame is never malformed.
void put_str(std::vector<uint8_t>& out, const std::string& s, uint32_t cap) {
  const size_t n = std::min<size_t>(s.size(), cap);
  put_u16(out, static_cast<uint16_t>(n));
  out.insert(out.end(), s.begin(), s.begin() + static_cast<ptrdiff_t>(n));
}

/// Bounds-checked sequential reader over one payload. Every take_*
/// fails (and latches failure) instead of reading past `len`.
struct Cursor {
  const uint8_t* data;
  size_t len;
  size_t pos = 0;
  bool ok = true;

  bool have(size_t n) {
    if (!ok || len - pos < n) ok = false;
    return ok;
  }
  uint8_t take_u8() {
    if (!have(1)) return 0;
    return data[pos++];
  }
  uint16_t take_u16() {
    if (!have(2)) return 0;
    uint16_t v = static_cast<uint16_t>(
        data[pos] | (static_cast<uint16_t>(data[pos + 1]) << 8));
    pos += 2;
    return v;
  }
  uint32_t take_u32() {
    if (!have(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<uint32_t>(data[pos + static_cast<size_t>(i)])
           << (8 * i);
    pos += 4;
    return v;
  }
  uint64_t take_u64() {
    if (!have(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<uint64_t>(data[pos + static_cast<size_t>(i)])
           << (8 * i);
    pos += 8;
    return v;
  }
  int32_t take_i32() { return static_cast<int32_t>(take_u32()); }
  int64_t take_i64() { return static_cast<int64_t>(take_u64()); }
  float take_f32() {
    const uint32_t bits = take_u32();
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  double take_f64() {
    const uint64_t bits = take_u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  /// u16 length + bytes; fails on a length over `cap` or past the end.
  bool take_str(std::string* out, uint32_t cap) {
    const uint16_t n = take_u16();
    if (!ok || n > cap || !have(n)) {
      ok = false;
      return false;
    }
    out->assign(reinterpret_cast<const char*>(data + pos), n);
    pos += n;
    return true;
  }
  /// Fully consumed and no read ever ran off the end.
  bool done() const { return ok && pos == len; }
};

/// Patch the payload_len field once the payload size is known.
void begin_frame(std::vector<uint8_t>& out, FrameType type,
                 uint8_t version = kProtocolVersion) {
  put_u32(out, kFrameMagic);
  put_u8(out, version);
  put_u8(out, static_cast<uint8_t>(type));
  put_u16(out, 0);           // reserved
  put_u32(out, 0);           // payload_len, patched by end_frame
}

void end_frame(std::vector<uint8_t>& out, size_t frame_start) {
  const size_t payload = out.size() - frame_start - kHeaderSize;
  for (int i = 0; i < 4; ++i)
    out[frame_start + 8 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(payload >> (8 * i));
}

void put_config(std::vector<uint8_t>& out, const nn::BertConfig& cfg) {
  put_i64(out, cfg.vocab_size);
  put_i64(out, cfg.hidden);
  put_i64(out, cfg.num_layers);
  put_i64(out, cfg.num_heads);
  put_i64(out, cfg.ffn_dim);
  put_i64(out, cfg.max_seq_len);
  put_i64(out, cfg.num_segments);
  put_i64(out, cfg.num_classes);
}

void take_config(Cursor& c, nn::BertConfig* cfg) {
  cfg->vocab_size = c.take_i64();
  cfg->hidden = c.take_i64();
  cfg->num_layers = c.take_i64();
  cfg->num_heads = c.take_i64();
  cfg->ffn_dim = c.take_i64();
  cfg->max_seq_len = c.take_i64();
  cfg->num_segments = c.take_i64();
  cfg->num_classes = c.take_i64();
}

}  // namespace

DecodeStatus decode_header(const uint8_t* data, size_t len,
                           FrameHeader* out) {
  if (len < kHeaderSize) return DecodeStatus::kNeedMore;
  Cursor c{data, kHeaderSize};
  const uint32_t magic = c.take_u32();
  const uint8_t version = c.take_u8();
  const uint8_t type = c.take_u8();
  const uint8_t r0 = c.take_u8();
  const uint8_t r1 = c.take_u8();
  const uint32_t payload_len = c.take_u32();
  if (magic != kFrameMagic || version < kMinProtocolVersion ||
      version > kProtocolVersion || r0 != 0 || r1 != 0)
    return DecodeStatus::kError;
  // Type gating follows the version that introduced each plane:
  // control-plane types exist only from v2 on, proxy-admin types only
  // from v5 on. A header declaring a type its version cannot carry is a
  // protocol violation, not a silently tolerated frame.
  const uint8_t last_type = version >= 5   ? kLastFrameType
                            : version >= 2 ? kLastV4FrameType
                                           : kLastV1FrameType;
  if (type < static_cast<uint8_t>(FrameType::kInfoRequest) ||
      type > last_type)
    return DecodeStatus::kError;
  if (payload_len > kMaxPayload) return DecodeStatus::kError;
  out->version = version;
  out->type = static_cast<FrameType>(type);
  out->payload_len = payload_len;
  return DecodeStatus::kFrame;
}

bool decode_info_request(const uint8_t* payload, size_t len, uint8_t version,
                         std::string* model_out, uint8_t* tier) {
  model_out->clear();
  if (tier) *tier = 0;
  if (version < 2) return len == 0;  // v1 info request is empty
  Cursor c{payload, len};
  if (!c.take_str(model_out, kMaxNameLen)) return false;
  if (version >= 4) {
    const uint8_t t = c.take_u8();
    if (!c.ok || !wire_tier_valid(t)) return false;
    if (tier) *tier = t;
  }
  return c.done();
}

bool decode_info_response(const uint8_t* payload, size_t len,
                          uint8_t version, WireInfo* out) {
  Cursor c{payload, len};
  out->model.clear();
  out->tier = 0;
  if (version >= 2 && !c.take_str(&out->model, kMaxNameLen)) return false;
  if (version >= 4) {
    out->tier = c.take_u8();
    if (!c.ok || !wire_tier_valid(out->tier)) return false;
  }
  take_config(c, &out->config);
  return c.done();
}

bool decode_serve_request(const uint8_t* payload, size_t len,
                          uint8_t version, WireRequest* out) {
  Cursor c{payload, len};
  out->correlation_id = c.take_u64();
  out->deadline_budget_us = c.take_i64();
  out->trace_id = version >= 3 ? c.take_u64() : 0;
  out->tier = 0;
  if (version >= 4) {
    out->tier = c.take_u8();
    if (!c.ok || !wire_tier_valid(out->tier)) return false;
  }
  out->model.clear();
  if (version >= 2 && !c.take_str(&out->model, kMaxNameLen)) return false;
  const uint32_t num_tokens = c.take_u32();
  const uint32_t num_segments = c.take_u32();
  if (!c.ok || num_tokens > kMaxTokens || num_segments > kMaxTokens)
    return false;
  // A-priori size check so a lying count cannot trigger a large resize
  // before the per-element reads fail.
  if (len - c.pos != (static_cast<size_t>(num_tokens) +
                      static_cast<size_t>(num_segments)) *
                         4)
    return false;
  out->example.tokens.resize(num_tokens);
  out->example.segments.resize(num_segments);
  for (uint32_t i = 0; i < num_tokens; ++i)
    out->example.tokens[i] = c.take_i32();
  for (uint32_t i = 0; i < num_segments; ++i)
    out->example.segments[i] = c.take_i32();
  return c.done();
}

namespace {

/// The v3 trailing trace section: u64 trace_id, u8 num_stages,
/// num_stages x (u8 stage, i64 t_us). Strict on stage codes.
bool take_trace_section(Cursor& c, uint64_t* trace_id,
                        std::vector<TraceEvent>* stages) {
  *trace_id = c.take_u64();
  const uint8_t num_stages = c.take_u8();
  if (!c.ok || num_stages > kMaxTraceStages) return false;
  if (c.len - c.pos < static_cast<size_t>(num_stages) * 9) return false;
  stages->clear();
  stages->reserve(num_stages);
  for (uint8_t i = 0; i < num_stages; ++i) {
    const uint8_t stage = c.take_u8();
    const int64_t t_us = c.take_i64();
    if (stage > kLastTraceStage) return false;
    stages->push_back({static_cast<TraceStage>(stage), t_us});
  }
  return c.ok;
}

}  // namespace

bool decode_serve_response(const uint8_t* payload, size_t len,
                           uint8_t version, WireResponse* out) {
  Cursor c{payload, len};
  out->correlation_id = c.take_u64();
  const uint8_t status = c.take_u8();
  if (status > static_cast<uint8_t>(kLastRequestStatus)) return false;
  out->response.status = static_cast<RequestStatus>(status);
  out->response.predicted = c.take_i32();
  out->response.queue_us = c.take_i64();
  out->response.latency_us = c.take_i64();
  out->response.batch_size = c.take_i32();
  const uint32_t num_logits = c.take_u32();
  if (!c.ok || num_logits > kMaxLogits) return false;
  const size_t logits_bytes = static_cast<size_t>(num_logits) * 4;
  if (version >= 3) {
    // Logits plus at least the fixed trace prefix (u64 + u8), plus the
    // trailing resolved-tier byte from v4 on.
    const size_t tail = version >= 4 ? 10 : 9;
    if (len - c.pos < logits_bytes + tail) return false;
  } else {
    if (len - c.pos != logits_bytes) return false;
  }
  out->response.logits.resize(num_logits);
  for (uint32_t i = 0; i < num_logits; ++i)
    out->response.logits[i] = c.take_f32();
  out->response.trace_id = 0;
  out->response.trace.clear();
  if (version >= 3 &&
      !take_trace_section(c, &out->response.trace_id, &out->response.trace))
    return false;
  out->response.tier = 0;
  if (version >= 4) {
    out->response.tier = c.take_u8();
    if (!c.ok || !wire_tier_valid(out->response.tier)) return false;
  }
  return c.done();
}

namespace {

/// The v4 trailing tier byte shared by the control frames: absent
/// before v4 (reads 0), strictly validated from v4 on.
bool take_tier_suffix(Cursor& c, uint8_t version, uint8_t* tier) {
  *tier = 0;
  if (version < 4) return true;
  const uint8_t t = c.take_u8();
  if (!c.ok || !wire_tier_valid(t)) return false;
  *tier = t;
  return true;
}

}  // namespace

bool decode_load_model(const uint8_t* payload, size_t len, uint8_t version,
                       std::string* name, std::string* path, uint8_t* tier) {
  Cursor c{payload, len};
  if (!c.take_str(name, kMaxNameLen)) return false;
  if (!c.take_str(path, kMaxPathLen)) return false;
  if (!take_tier_suffix(c, version, tier)) return false;
  return c.done();
}

bool decode_unload_model(const uint8_t* payload, size_t len, uint8_t version,
                         std::string* name, uint8_t* tier) {
  Cursor c{payload, len};
  if (!c.take_str(name, kMaxNameLen)) return false;
  if (!take_tier_suffix(c, version, tier)) return false;
  return c.done();
}

bool decode_stats_request(const uint8_t* payload, size_t len, uint8_t version,
                          std::string* name, uint8_t* tier) {
  Cursor c{payload, len};
  if (!c.take_str(name, kMaxNameLen)) return false;
  if (!take_tier_suffix(c, version, tier)) return false;
  return c.done();
}

bool decode_admin_response(const uint8_t* payload, size_t len, bool* ok,
                           std::string* message) {
  Cursor c{payload, len};
  const uint8_t flag = c.take_u8();
  if (!c.ok || flag > 1) return false;
  *ok = flag == 1;
  if (!c.take_str(message, kMaxMessageLen)) return false;
  return c.done();
}

bool decode_model_list(const uint8_t* payload, size_t len, uint8_t version,
                       std::vector<WireModelEntry>* entries) {
  Cursor c{payload, len};
  const uint32_t count = c.take_u32();
  if (!c.ok || count > kMaxModelCount) return false;
  entries->clear();
  entries->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WireModelEntry entry;
    if (!c.take_str(&entry.name, kMaxNameLen)) return false;
    if (version >= 4) {
      entry.tier = c.take_u8();
      if (!c.ok || !wire_tier_valid(entry.tier)) return false;
    }
    entries->push_back(std::move(entry));
  }
  return c.done();
}

bool decode_stats_response(const uint8_t* payload, size_t len,
                           uint8_t version, WireStats* out) {
  Cursor c{payload, len};
  if (!c.take_str(&out->model, kMaxNameLen)) return false;
  out->tier = 0;
  if (version >= 4) {
    out->tier = c.take_u8();
    if (!c.ok || !wire_tier_valid(out->tier)) return false;
  }
  ServeStats::Report& r = out->report;
  r.admitted = c.take_u64();
  r.rejected_full = c.take_u64();
  r.rejected_deadline = c.take_u64();
  r.rejected_invalid = c.take_u64();
  r.rejected_closed = c.take_u64();
  r.timed_out = c.take_u64();
  r.completed = c.take_u64();
  r.failed = c.take_u64();
  r.batches = c.take_u64();
  r.latency_samples = c.take_u64();
  r.mean_batch_occupancy = c.take_f64();
  r.mean_queue_ms = c.take_f64();
  r.p50_ms = c.take_f64();
  r.p95_ms = c.take_f64();
  r.p99_ms = c.take_f64();
  r.max_ms = c.take_f64();
  r.p999_ms = 0.0;
  r.latency_sketch = QuantileSketch();
  if (version >= 3) {
    r.p999_ms = c.take_f64();
    const double alpha = c.take_f64();
    const uint64_t zero_count = c.take_u64();
    const int64_t max_us = c.take_i64();
    const uint32_t num_buckets = c.take_u32();
    if (!c.ok || num_buckets > kMaxSketchBuckets) return false;
    if (!(alpha > 0.0 && alpha < 1.0)) return false;  // NaN rejects too
    if (len - c.pos != static_cast<size_t>(num_buckets) * 12) return false;
    std::vector<std::pair<int32_t, uint64_t>> buckets;
    buckets.reserve(num_buckets);
    for (uint32_t i = 0; i < num_buckets; ++i) {
      const int32_t index = c.take_i32();
      const uint64_t cnt = c.take_u64();
      buckets.emplace_back(index, cnt);
    }
    if (!c.ok) return false;
    r.latency_sketch =
        QuantileSketch::from_parts(alpha, zero_count, max_us, buckets);
  }
  return c.done();
}

bool decode_dump_events(const uint8_t* payload, size_t len,
                        uint64_t* since_ns, uint32_t* max_events) {
  Cursor c{payload, len};
  *since_ns = c.take_u64();
  *max_events = c.take_u32();
  if (!c.ok || *max_events > kMaxDumpEvents) return false;
  return c.done();
}

bool decode_event_dump(const uint8_t* payload, size_t len,
                       std::vector<WireEvent>* events) {
  Cursor c{payload, len};
  const uint32_t count = c.take_u32();
  if (!c.ok || count > kMaxDumpEvents) return false;
  // A-priori size floor (fixed fields + the 2-byte tag length each) so
  // a lying count cannot trigger a large reserve before the per-event
  // reads fail.
  if (len - c.pos < static_cast<size_t>(count) * 34) return false;
  events->clear();
  events->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WireEvent ev;
    ev.t_ns = c.take_u64();
    ev.trace_id = c.take_u64();
    ev.type = c.take_u8();
    ev.tier = c.take_u8();
    ev.detail = c.take_u16();
    ev.a = c.take_u32();
    ev.b = c.take_u64();
    if (!c.ok || ev.type > kLastFlightEventType ||
        !wire_tier_valid(ev.tier))
      return false;
    if (!c.take_str(&ev.tag, kMaxNameLen)) return false;
    events->push_back(std::move(ev));
  }
  return c.done();
}

bool decode_add_backend(const uint8_t* payload, size_t len, std::string* host,
                        uint16_t* port, std::vector<WireModelEntry>* models) {
  Cursor c{payload, len};
  if (!c.take_str(host, kMaxNameLen)) return false;
  *port = c.take_u16();
  const uint32_t count = c.take_u32();
  if (!c.ok || count == 0 || count > kMaxModelCount) return false;
  models->clear();
  models->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WireModelEntry entry;
    if (!c.take_str(&entry.name, kMaxNameLen)) return false;
    entry.tier = c.take_u8();
    if (!c.ok || !wire_tier_valid(entry.tier)) return false;
    models->push_back(std::move(entry));
  }
  return c.done();
}

bool decode_remove_backend(const uint8_t* payload, size_t len,
                           std::string* address) {
  Cursor c{payload, len};
  if (!c.take_str(address, kMaxNameLen)) return false;
  return c.done();
}

bool decode_move_model(const uint8_t* payload, size_t len, std::string* model,
                       uint8_t* tier, std::string* from, std::string* to,
                       std::string* path) {
  Cursor c{payload, len};
  if (!c.take_str(model, kMaxNameLen)) return false;
  const uint8_t t = c.take_u8();
  if (!c.ok || !wire_tier_valid(t)) return false;
  *tier = t;
  if (!c.take_str(from, kMaxNameLen)) return false;
  if (!c.take_str(to, kMaxNameLen)) return false;
  if (!c.take_str(path, kMaxPathLen)) return false;
  return c.done();
}

bool decode_get_placement(const uint8_t* payload, size_t len) {
  (void)payload;
  return len == 0;
}

bool decode_placement(const uint8_t* payload, size_t len, WirePlacement* out) {
  Cursor c{payload, len};
  out->epoch = c.take_u64();
  out->policy = c.take_u8();
  if (!c.ok || out->policy > 1) return false;
  if (!c.take_str(&out->default_model, kMaxNameLen)) return false;
  const uint32_t count = c.take_u32();
  if (!c.ok || count > kMaxModelCount) return false;
  out->backends.clear();
  out->backends.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WireBackendPlacement backend;
    if (!c.take_str(&backend.address, kMaxNameLen)) return false;
    backend.state = c.take_u8();
    const uint32_t cells = c.take_u32();
    // Backend states pack into the nibble the health journal uses.
    if (!c.ok || backend.state > 15 || cells > kMaxModelCount) return false;
    backend.models.reserve(cells);
    for (uint32_t j = 0; j < cells; ++j) {
      WireModelEntry entry;
      if (!c.take_str(&entry.name, kMaxNameLen)) return false;
      entry.tier = c.take_u8();
      if (!c.ok || !wire_tier_valid(entry.tier)) return false;
      backend.models.push_back(std::move(entry));
    }
    out->backends.push_back(std::move(backend));
  }
  return c.done();
}

bool peek_serve_request(const uint8_t* payload, size_t len, uint8_t version,
                        uint64_t* correlation_id, uint64_t* trace_id,
                        uint8_t* tier, std::string* model) {
  Cursor c{payload, len};
  *correlation_id = c.take_u64();
  (void)c.take_i64();  // deadline budget: forwarded, not interpreted
  *trace_id = version >= 3 ? c.take_u64() : 0;
  *tier = 0;
  if (version >= 4) {
    *tier = c.take_u8();
    if (!c.ok || !wire_tier_valid(*tier)) return false;
  }
  model->clear();
  if (version >= 2 && !c.take_str(model, kMaxNameLen)) return false;
  const uint32_t num_tokens = c.take_u32();
  const uint32_t num_segments = c.take_u32();
  if (!c.ok || num_tokens > kMaxTokens || num_segments > kMaxTokens)
    return false;
  // Arithmetic-only array check: the remaining bytes must be exactly
  // the declared i32 arrays. No element is read.
  return len - c.pos == (static_cast<size_t>(num_tokens) +
                         static_cast<size_t>(num_segments)) *
                            4;
}

bool peek_serve_response(const uint8_t* payload, size_t len,
                         uint64_t* correlation_id, RequestStatus* status) {
  Cursor c{payload, len};
  *correlation_id = c.take_u64();
  const uint8_t s = c.take_u8();
  if (!c.ok || s > static_cast<uint8_t>(kLastRequestStatus)) return false;
  *status = static_cast<RequestStatus>(s);
  return true;
}

bool split_serve_response_trace(const uint8_t* payload, size_t len,
                                uint8_t version, size_t* trace_start,
                                uint64_t* trace_id,
                                std::vector<TraceEvent>* stages,
                                uint8_t* tier) {
  if (tier) *tier = 0;
  Cursor c{payload, len};
  (void)c.take_u64();  // correlation
  const uint8_t status = c.take_u8();
  if (!c.ok || status > static_cast<uint8_t>(kLastRequestStatus))
    return false;
  (void)c.take_i32();  // predicted
  (void)c.take_i64();  // queue_us
  (void)c.take_i64();  // latency_us
  (void)c.take_i32();  // batch_size
  const uint32_t num_logits = c.take_u32();
  if (!c.ok || num_logits > kMaxLogits) return false;
  const size_t logits_bytes = static_cast<size_t>(num_logits) * 4;
  const size_t tail = version >= 4 ? 10 : 9;
  if (len - c.pos < logits_bytes + tail) return false;
  c.pos += logits_bytes;  // skip, don't materialize
  *trace_start = c.pos;
  if (!take_trace_section(c, trace_id, stages)) return false;
  if (version >= 4) {
    const uint8_t t = c.take_u8();
    if (!c.ok || !wire_tier_valid(t)) return false;
    if (tier) *tier = t;
  }
  return c.done();
}

void encode_trace_section(uint64_t trace_id,
                          const std::vector<TraceEvent>& stages,
                          std::vector<uint8_t>& out) {
  const size_t n = std::min<size_t>(stages.size(), kMaxTraceStages);
  put_u64(out, trace_id);
  put_u8(out, static_cast<uint8_t>(n));
  for (size_t i = 0; i < n; ++i) {
    put_u8(out, static_cast<uint8_t>(stages[i].stage));
    put_i64(out, stages[i].t_us);
  }
}

bool rewrite_serve_request_model(const uint8_t* frame, size_t frame_len,
                                 const std::string& model, uint64_t trace_id,
                                 std::vector<uint8_t>* out, uint8_t tier) {
  FrameHeader hdr;
  if (decode_header(frame, frame_len, &hdr) != DecodeStatus::kFrame ||
      hdr.type != FrameType::kServeRequest ||
      frame_len != kHeaderSize + hdr.payload_len ||
      model.size() > kMaxNameLen || !wire_tier_valid(tier))
    return false;
  const uint8_t* payload = frame + kHeaderSize;
  Cursor c{payload, hdr.payload_len};
  (void)c.take_u64();
  (void)c.take_i64();
  const uint64_t old_trace = hdr.version >= 3 ? c.take_u64() : 0;
  uint8_t old_tier = 0;
  if (hdr.version >= 4) {
    old_tier = c.take_u8();
    if (!c.ok || !wire_tier_valid(old_tier)) return false;
  }
  std::string old_model;
  if (hdr.version >= 2 && !c.take_str(&old_model, kMaxNameLen)) return false;
  if (!c.ok) return false;
  // `c.pos` now sits right after the old model field; everything from
  // there on (counts + arrays) is carried over byte-for-byte. The
  // output is always emitted in the v4 dialect; `tier` overrides the
  // incoming tier when non-zero (a placement decision at this hop).
  out->clear();
  const size_t start = out->size();
  begin_frame(*out, FrameType::kServeRequest, /*version=*/4);
  out->insert(out->end(), payload, payload + 16);  // correlation + deadline
  put_u64(*out, old_trace != 0 ? old_trace : trace_id);
  put_u8(*out, tier != 0 ? tier : old_tier);
  put_str(*out, model, kMaxNameLen);
  out->insert(out->end(), payload + c.pos, payload + hdr.payload_len);
  end_frame(*out, start);
  return true;
}

void encode_frame_header(const FrameHeader& hdr, std::vector<uint8_t>& out) {
  put_u32(out, kFrameMagic);
  put_u8(out, hdr.version);
  put_u8(out, static_cast<uint8_t>(hdr.type));
  put_u16(out, 0);
  put_u32(out, hdr.payload_len);
}

void encode_info_request(const std::string& model, std::vector<uint8_t>& out,
                         uint8_t version, uint8_t tier) {
  const size_t start = out.size();
  begin_frame(out, FrameType::kInfoRequest, version);
  if (version >= 2) put_str(out, model, kMaxNameLen);
  if (version >= 4) put_u8(out, tier);
  end_frame(out, start);
}

void encode_info_response(const WireInfo& info, std::vector<uint8_t>& out,
                          uint8_t version) {
  const size_t start = out.size();
  begin_frame(out, FrameType::kInfoResponse, version);
  if (version >= 2) put_str(out, info.model, kMaxNameLen);
  if (version >= 4) put_u8(out, info.tier);
  put_config(out, info.config);
  end_frame(out, start);
}

void encode_serve_request(const WireRequest& req, std::vector<uint8_t>& out,
                          uint8_t version) {
  const size_t start = out.size();
  begin_frame(out, FrameType::kServeRequest, version);
  put_u64(out, req.correlation_id);
  put_i64(out, req.deadline_budget_us);
  if (version >= 3) put_u64(out, req.trace_id);
  if (version >= 4) put_u8(out, req.tier);
  if (version >= 2) put_str(out, req.model, kMaxNameLen);
  put_u32(out, static_cast<uint32_t>(req.example.tokens.size()));
  put_u32(out, static_cast<uint32_t>(req.example.segments.size()));
  for (const int32_t tok : req.example.tokens) put_i32(out, tok);
  for (const int32_t seg : req.example.segments) put_i32(out, seg);
  end_frame(out, start);
}

void encode_serve_response(const WireResponse& resp,
                           std::vector<uint8_t>& out, uint8_t version) {
  const size_t start = out.size();
  begin_frame(out, FrameType::kServeResponse, version);
  put_u64(out, resp.correlation_id);
  put_u8(out, static_cast<uint8_t>(resp.response.status));
  put_i32(out, resp.response.predicted);
  put_i64(out, resp.response.queue_us);
  put_i64(out, resp.response.latency_us);
  put_i32(out, resp.response.batch_size);
  put_u32(out, static_cast<uint32_t>(resp.response.logits.size()));
  for (const float v : resp.response.logits) put_f32(out, v);
  if (version >= 3)
    encode_trace_section(resp.response.trace_id, resp.response.trace, out);
  // Resolved tier rides as the very last payload byte so a relay can
  // still truncate at the trace boundary for older clients.
  if (version >= 4) put_u8(out, resp.response.tier);
  end_frame(out, start);
}

void encode_load_model(const std::string& name, const std::string& path,
                       std::vector<uint8_t>& out, uint8_t version,
                       uint8_t tier) {
  const size_t start = out.size();
  const uint8_t v = std::max<uint8_t>(version, 2);
  begin_frame(out, FrameType::kLoadModel, v);
  put_str(out, name, kMaxNameLen);
  put_str(out, path, kMaxPathLen);
  if (v >= 4) put_u8(out, tier);
  end_frame(out, start);
}

void encode_unload_model(const std::string& name, std::vector<uint8_t>& out,
                         uint8_t version, uint8_t tier) {
  const size_t start = out.size();
  const uint8_t v = std::max<uint8_t>(version, 2);
  begin_frame(out, FrameType::kUnloadModel, v);
  put_str(out, name, kMaxNameLen);
  if (v >= 4) put_u8(out, tier);
  end_frame(out, start);
}

void encode_list_models(std::vector<uint8_t>& out, uint8_t version) {
  const size_t start = out.size();
  begin_frame(out, FrameType::kListModels, std::max<uint8_t>(version, 2));
  end_frame(out, start);
}

void encode_stats_request(const std::string& name, std::vector<uint8_t>& out,
                          uint8_t version, uint8_t tier) {
  const size_t start = out.size();
  const uint8_t v = std::max<uint8_t>(version, 2);
  begin_frame(out, FrameType::kStatsRequest, v);
  put_str(out, name, kMaxNameLen);
  if (v >= 4) put_u8(out, tier);
  end_frame(out, start);
}

void encode_admin_response(bool ok, const std::string& message,
                           std::vector<uint8_t>& out) {
  const size_t start = out.size();
  begin_frame(out, FrameType::kAdminResponse);
  put_u8(out, ok ? 1 : 0);
  put_str(out, message, kMaxMessageLen);
  end_frame(out, start);
}

void encode_model_list(const std::vector<WireModelEntry>& entries,
                       std::vector<uint8_t>& out, uint8_t version) {
  const size_t start = out.size();
  const uint8_t v = std::max<uint8_t>(version, 2);
  begin_frame(out, FrameType::kModelList, v);
  // Mirror decode_model_list's cap: past kMaxModelCount entries the
  // frame would be rejected by every client, making LIST unusable on a
  // healthy server — a truncated (but valid) list is strictly better.
  const size_t count = std::min<size_t>(entries.size(), kMaxModelCount);
  put_u32(out, static_cast<uint32_t>(count));
  for (size_t i = 0; i < count; ++i) {
    put_str(out, entries[i].name, kMaxNameLen);
    if (v >= 4) put_u8(out, entries[i].tier);
  }
  end_frame(out, start);
}

void encode_stats_response(const WireStats& stats, std::vector<uint8_t>& out,
                           uint8_t version) {
  const size_t start = out.size();
  begin_frame(out, FrameType::kStatsResponse, version);
  put_str(out, stats.model, kMaxNameLen);
  if (version >= 4) put_u8(out, stats.tier);
  const ServeStats::Report& r = stats.report;
  put_u64(out, r.admitted);
  put_u64(out, r.rejected_full);
  put_u64(out, r.rejected_deadline);
  put_u64(out, r.rejected_invalid);
  put_u64(out, r.rejected_closed);
  put_u64(out, r.timed_out);
  put_u64(out, r.completed);
  put_u64(out, r.failed);
  put_u64(out, r.batches);
  put_u64(out, r.latency_samples);
  put_f64(out, r.mean_batch_occupancy);
  put_f64(out, r.mean_queue_ms);
  put_f64(out, r.p50_ms);
  put_f64(out, r.p95_ms);
  put_f64(out, r.p99_ms);
  put_f64(out, r.max_ms);
  if (version >= 3) {
    put_f64(out, r.p999_ms);
    const QuantileSketch& s = r.latency_sketch;
    put_f64(out, s.alpha());
    put_u64(out, s.zero_count());
    put_i64(out, s.max_us());
    const size_t count =
        std::min<size_t>(s.buckets().size(), kMaxSketchBuckets);
    put_u32(out, static_cast<uint32_t>(count));
    size_t written = 0;
    for (const auto& [index, cnt] : s.buckets()) {
      if (written++ == count) break;
      put_i32(out, index);
      put_u64(out, cnt);
    }
  }
  end_frame(out, start);
}

void encode_dump_events(uint64_t since_ns, uint32_t max_events,
                        std::vector<uint8_t>& out, uint8_t version) {
  const size_t start = out.size();
  begin_frame(out, FrameType::kDumpEvents, std::max<uint8_t>(version, 2));
  put_u64(out, since_ns);
  put_u32(out, std::min(max_events, kMaxDumpEvents));
  end_frame(out, start);
}

void encode_event_dump(const std::vector<WireEvent>& events,
                       std::vector<uint8_t>& out, uint8_t version) {
  const size_t start = out.size();
  begin_frame(out, FrameType::kEventDump, std::max<uint8_t>(version, 2));
  // Keep the MOST RECENT kMaxDumpEvents when over the cap: the tail of
  // the journal is the part a postmortem wants.
  const size_t count = std::min<size_t>(events.size(), kMaxDumpEvents);
  const size_t first = events.size() - count;
  put_u32(out, static_cast<uint32_t>(count));
  for (size_t i = first; i < events.size(); ++i) {
    const WireEvent& ev = events[i];
    put_u64(out, ev.t_ns);
    put_u64(out, ev.trace_id);
    put_u8(out, ev.type);
    put_u8(out, ev.tier);
    put_u16(out, ev.detail);
    put_u32(out, ev.a);
    put_u64(out, ev.b);
    put_str(out, ev.tag, kMaxNameLen);
  }
  end_frame(out, start);
}

void encode_add_backend(const std::string& host, uint16_t port,
                        const std::vector<WireModelEntry>& models,
                        std::vector<uint8_t>& out, uint8_t version) {
  const size_t start = out.size();
  begin_frame(out, FrameType::kAddBackend, std::max<uint8_t>(version, 5));
  put_str(out, host, kMaxNameLen);
  put_u16(out, port);
  const size_t count = std::min<size_t>(models.size(), kMaxModelCount);
  put_u32(out, static_cast<uint32_t>(count));
  for (size_t i = 0; i < count; ++i) {
    put_str(out, models[i].name, kMaxNameLen);
    put_u8(out, models[i].tier);
  }
  end_frame(out, start);
}

void encode_remove_backend(const std::string& address,
                           std::vector<uint8_t>& out, uint8_t version) {
  const size_t start = out.size();
  begin_frame(out, FrameType::kRemoveBackend, std::max<uint8_t>(version, 5));
  put_str(out, address, kMaxNameLen);
  end_frame(out, start);
}

void encode_move_model(const std::string& model, uint8_t tier,
                       const std::string& from, const std::string& to,
                       const std::string& path, std::vector<uint8_t>& out,
                       uint8_t version) {
  const size_t start = out.size();
  begin_frame(out, FrameType::kMoveModel, std::max<uint8_t>(version, 5));
  put_str(out, model, kMaxNameLen);
  put_u8(out, tier);
  put_str(out, from, kMaxNameLen);
  put_str(out, to, kMaxNameLen);
  put_str(out, path, kMaxPathLen);
  end_frame(out, start);
}

void encode_get_placement(std::vector<uint8_t>& out, uint8_t version) {
  const size_t start = out.size();
  begin_frame(out, FrameType::kGetPlacement, std::max<uint8_t>(version, 5));
  end_frame(out, start);
}

void encode_placement(const WirePlacement& placement,
                      std::vector<uint8_t>& out, uint8_t version) {
  const size_t start = out.size();
  begin_frame(out, FrameType::kPlacement, std::max<uint8_t>(version, 5));
  put_u64(out, placement.epoch);
  put_u8(out, placement.policy);
  put_str(out, placement.default_model, kMaxNameLen);
  const size_t count =
      std::min<size_t>(placement.backends.size(), kMaxModelCount);
  put_u32(out, static_cast<uint32_t>(count));
  for (size_t i = 0; i < count; ++i) {
    const WireBackendPlacement& backend = placement.backends[i];
    put_str(out, backend.address, kMaxNameLen);
    put_u8(out, backend.state);
    const size_t cells =
        std::min<size_t>(backend.models.size(), kMaxModelCount);
    put_u32(out, static_cast<uint32_t>(cells));
    for (size_t j = 0; j < cells; ++j) {
      put_str(out, backend.models[j].name, kMaxNameLen);
      put_u8(out, backend.models[j].tier);
    }
  }
  end_frame(out, start);
}

}  // namespace fqbert::serve::net
